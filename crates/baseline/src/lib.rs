//! The comparison baseline: a **complete-octree immersed** pipeline in the
//! style of Dendro \[51, 56\] + the immersed octree framework of Xu et al.
//! \[66\] / Saurabh et al. \[52, 53\], which Tables 2, 4, and 5 of the paper
//! measure against.
//!
//! Differences from `carve-core`, faithfully reproduced:
//!
//! 1. **Complete tree**: the object is *immersed*, not carved — every
//!    subtree keeps all `2^d` children. Void (inside-object) octants are
//!    built, balanced, partitioned, and stored; they are skipped during the
//!    physics but still cost memory and traversal (the `f_elem`/`f_DOF`
//!    overheads of Table 2).
//! 2. **Build-then-filter construction** for carving comparisons: the
//!    complete tree is constructed first, then void octants are cancelled —
//!    the approach of \[66\] that Algorithm 1/2's proactive pruning replaces.
//! 3. **Element-to-node-map MATVEC**: a classic `e2n` gather/scatter with
//!    indirect addressing instead of the traversal-based bucketing of §3.5.
//! 4. **Partitioning over the complete tree**: equal element counts
//!    *including void elements*, which is precisely the load imbalance
//!    Table 4 attributes to Dendro.

use carve_core::nodes::{elem_node_coord, lattice_index, nodes_per_elem};
use carve_core::{resolve_slot, Mesh, SlotRef};
use carve_geom::{RegionLabel, Subdomain};
use carve_sfc::{Curve, Octant};

/// Wraps an object subdomain so that nothing is carved (the object is
/// immersed): carved regions are retained, boundary labels survive so
/// refinement still tracks the object surface, and point classification is
/// unchanged (interior nodes get Dirichlet-masked, as in the paper's Fig 1).
pub struct Immersed<'a, const DIM: usize> {
    pub object: &'a dyn Subdomain<DIM>,
}

impl<'a, const DIM: usize> Subdomain<DIM> for Immersed<'a, DIM> {
    fn classify_region(&self, min: &[f64; DIM], side: f64) -> RegionLabel {
        match self.object.classify_region(min, side) {
            RegionLabel::Carved => {
                // IMGA-style immersed meshing refines a band on *both*
                // sides of the surface: an inside-the-object region is
                // still flagged for refinement if its one-element-inflated
                // neighborhood touches ∂C. This is what produces the
                // interior fine band (and the Table 2 DOF excess) in the
                // immersed baselines [52, 53].
                let mut inflated_min = [0.0; DIM];
                for k in 0..DIM {
                    inflated_min[k] = min[k] - 0.5 * side;
                }
                match self.object.classify_region(&inflated_min, 2.0 * side) {
                    RegionLabel::RetainBoundary => RegionLabel::RetainBoundary,
                    _ => RegionLabel::RetainInternal,
                }
            }
            other => other,
        }
    }
    fn point_in_carved(&self, p: &[f64; DIM]) -> bool {
        self.object.point_in_carved(p)
    }
}

/// A complete-octree immersed mesh with a classic element-to-node map.
pub struct ImmersedMesh<const DIM: usize> {
    pub mesh: Mesh<DIM>,
    /// Per-element object label (against the *object*, so `Carved` marks
    /// void elements that a carved approach would have removed).
    pub object_labels: Vec<RegionLabel>,
    /// Element-to-node map with hanging stencils: `e2n[e][slot]`.
    pub e2n: Vec<Vec<SlotRef>>,
}

impl<const DIM: usize> ImmersedMesh<DIM> {
    /// Builds the complete immersed mesh: same two-level refinement spec as
    /// the carved pipeline, but keeping the full octree.
    pub fn build(
        object: &dyn Subdomain<DIM>,
        curve: Curve,
        base_level: u8,
        boundary_level: u8,
        order: u64,
    ) -> Self {
        let immersed = Immersed { object };
        let mesh = Mesh::build(&immersed, curve, base_level, boundary_level, order);
        Self::from_mesh(object, mesh)
    }

    /// Builds the e2n map for an existing complete mesh.
    pub fn from_mesh(object: &dyn Subdomain<DIM>, mesh: Mesh<DIM>) -> Self {
        let object_labels: Vec<RegionLabel> = mesh
            .elems
            .iter()
            .map(|e| {
                let (min, side) = e.bounds_unit();
                object.classify_region(&min, side)
            })
            .collect();
        let p = mesh.order;
        let npe = nodes_per_elem::<DIM>(p);
        let e2n = mesh
            .elems
            .iter()
            .map(|e| {
                (0..npe)
                    .map(|lin| {
                        let idx = lattice_index::<DIM>(lin, p);
                        let c = elem_node_coord(e, p, &idx);
                        resolve_slot(&mesh.nodes, e, &c)
                    })
                    .collect()
            })
            .collect();
        ImmersedMesh {
            mesh,
            object_labels,
            e2n,
        }
    }

    /// Number of *void* elements (inside the object — pure overhead).
    pub fn void_elems(&self) -> usize {
        self.object_labels
            .iter()
            .filter(|l| **l == RegionLabel::Carved)
            .count()
    }

    /// Classic e2n-map MATVEC with indirect gather/scatter:
    /// `v_glob[map[e*npe+i]] += v_loc[i]`. Void elements are *skipped* in
    /// the physics (they are Dirichlet-masked) but still traversed —
    /// exactly the cost structure the paper describes.
    pub fn matvec<K>(&self, x: &[f64], y: &mut [f64], kernel: &mut K) -> usize
    where
        K: FnMut(&Octant<DIM>, &[f64], &mut [f64]),
    {
        let npe = nodes_per_elem::<DIM>(self.mesh.order);
        let mut u_e = vec![0.0; npe];
        let mut v_e = vec![0.0; npe];
        let mut active = 0usize;
        for (ei, e) in self.mesh.elems.iter().enumerate() {
            if self.object_labels[ei] == RegionLabel::Carved {
                continue; // void element: traversed but not solved
            }
            active += 1;
            // Indirect gather.
            for (slot, uref) in self.e2n[ei].iter().zip(u_e.iter_mut()) {
                *uref = match slot {
                    SlotRef::Direct(i) => x[*i],
                    SlotRef::Hanging(st) => st.iter().map(|(i, w)| x[*i] * w).sum(),
                };
            }
            v_e.iter_mut().for_each(|v| *v = 0.0);
            kernel(e, &u_e, &mut v_e);
            // Indirect scatter.
            for (slot, v) in self.e2n[ei].iter().zip(&v_e) {
                match slot {
                    SlotRef::Direct(i) => y[*i] += v,
                    SlotRef::Hanging(st) => {
                        for (i, w) in st {
                            y[*i] += w * v;
                        }
                    }
                }
            }
        }
        active
    }
}

/// Build-complete-then-filter carving (the \[66\] approach that Table 4's
/// mesh-creation times expose): constructs the *complete* immersed tree
/// first, then removes carved octants. Returns (carved tree, complete-tree
/// size built along the way).
pub fn build_then_filter<const DIM: usize>(
    object: &dyn Subdomain<DIM>,
    curve: Curve,
    base_level: u8,
    boundary_level: u8,
) -> (Vec<Octant<DIM>>, usize) {
    let immersed = Immersed { object };
    let adaptive =
        carve_core::construct_boundary_refined(&immersed, curve, base_level, boundary_level);
    let complete = carve_core::construct_balanced(&immersed, curve, &adaptive);
    let complete_size = complete.len();
    let filtered: Vec<Octant<DIM>> = complete
        .iter()
        .filter(|e| {
            let (min, side) = e.bounds_unit();
            object.classify_region(&min, side) != RegionLabel::Carved
        })
        .copied()
        .collect();
    (filtered, complete_size)
}

/// Per-rank active-element counts when the *complete* tree is partitioned
/// equally (Dendro-style): the source of the FEM load imbalance in Table 4.
pub fn complete_tree_partition_active_counts(
    object_labels: &[RegionLabel],
    nparts: usize,
) -> Vec<usize> {
    let n = object_labels.len();
    (0..nparts)
        .map(|r| {
            let lo = r * n / nparts;
            let hi = (r + 1) * n / nparts;
            object_labels[lo..hi]
                .iter()
                .filter(|l| **l != RegionLabel::Carved)
                .count()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_core::traversal_matvec;
    use carve_geom::{CarvedSolids, Sphere};
    use rand::{Rng, SeedableRng};

    fn sphere_obj() -> CarvedSolids<2> {
        CarvedSolids::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.3))])
    }

    #[test]
    fn immersed_mesh_is_complete() {
        let obj = sphere_obj();
        let imm = ImmersedMesh::build(&obj, Curve::Hilbert, 3, 5, 1);
        // Complete tree: leaf areas tile the unit square.
        let area: f64 = imm
            .mesh
            .elems
            .iter()
            .map(|e| {
                let s = e.bounds_unit().1;
                s * s
            })
            .sum();
        assert!((area - 1.0).abs() < 1e-12);
        assert!(imm.void_elems() > 0, "interior-of-disk elements retained");
    }

    #[test]
    fn immersed_has_more_elements_and_dofs_than_carved() {
        // The Table 2 effect.
        let obj = sphere_obj();
        let imm = ImmersedMesh::build(&obj, Curve::Hilbert, 3, 6, 1);
        let carved = Mesh::build(&obj, Curve::Hilbert, 3, 6, 1);
        let f_elem = imm.mesh.num_elems() as f64 / carved.num_elems() as f64;
        let f_dof = imm.mesh.num_dofs() as f64 / carved.num_dofs() as f64;
        assert!(f_elem > 1.05, "f_elem {f_elem}");
        assert!(f_dof > 1.02, "f_dof {f_dof}");
        assert!(
            f_elem > f_dof,
            "element excess exceeds DOF excess (CG sharing)"
        );
    }

    #[test]
    fn e2n_matvec_matches_traversal_on_carved_mesh() {
        // Both matvec implementations on the same carved mesh must agree:
        // the e2n map is an independent oracle for the traversal code.
        let obj = sphere_obj();
        let carved = Mesh::build(&obj, Curve::Morton, 3, 5, 2);
        let baseline = ImmersedMesh::from_mesh(&carve_geom::FullDomain, carved.clone());
        let n = carved.num_dofs();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut kernel = |e: &Octant<2>, u: &[f64], v: &mut [f64]| {
            let h = e.bounds_unit().1;
            let sum: f64 = u.iter().sum();
            for (i, vi) in v.iter_mut().enumerate() {
                *vi = h * (u[i] * 3.0 + sum);
            }
        };
        let mut y1 = vec![0.0; n];
        baseline.matvec(&x, &mut y1, &mut kernel);
        let mut y2 = vec![0.0; n];
        traversal_matvec(
            &carved.elems,
            0..carved.elems.len(),
            Curve::Morton,
            &carved.nodes,
            &x,
            &mut y2,
            &mut kernel,
        );
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn build_then_filter_matches_proactive_carving_up_to_balance() {
        // Filtering a complete tree leaves the same *active* elements near
        // the boundary; interiors differ only in carved cells. The filtered
        // complete tree must cover every carved-tree element's region.
        let obj = sphere_obj();
        let (filtered, complete_size) = build_then_filter(&obj, Curve::Morton, 3, 5);
        let carved = Mesh::build(&obj, Curve::Morton, 3, 5, 1);
        assert!(complete_size > filtered.len());
        // The filtered tree has at least as many elements as the carved one
        // (balance ripple inside the object creates extra boundary-adjacent
        // refinement that survives filtering).
        assert!(filtered.len() >= carved.num_elems());
    }

    #[test]
    fn partition_imbalance_from_void_elements() {
        let obj = sphere_obj();
        let imm = ImmersedMesh::build(&obj, Curve::Morton, 4, 6, 1);
        let counts = complete_tree_partition_active_counts(&imm.object_labels, 8);
        let total: usize = counts.iter().sum();
        let ideal = total as f64 / 8.0;
        let imbalance = counts.iter().copied().max().unwrap() as f64 / ideal;
        // Some rank must carry measurably more active work than ideal.
        assert!(imbalance > 1.05, "imbalance {imbalance} counts {counts:?}");
    }
}
