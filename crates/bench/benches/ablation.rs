//! Ablations ◆ for the design decisions DESIGN.md calls out:
//! * dense elemental apply vs sum-factorized tensor apply (the
//!   `O((p+1)^{2d})` vs `O(d(p+1)^{d+1})` trade, Fig. 12's complexity),
//! * scalar vs batched SoA tensor apply by order and batch width (the
//!   §6h panel payoff: ns/element as lanes fill),
//! * cached reference stiffness vs quadrature-on-the-fly elemental
//!   matrices (why constant-coefficient operators fly and NS doesn't),
//! * Morton vs Hilbert ordering for the traversal MATVEC.

use carve_core::{traversal_matvec, Mesh};
use carve_fem::poisson::reference_stiffness;
use carve_fem::ElementCache;
use carve_geom::{CarvedSolids, Sphere};
use carve_sfc::{Curve, Octant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("leaf_kernel");
    g.sample_size(20);
    for p in [1usize, 2] {
        let npe = (p + 1).pow(3);
        let u: Vec<f64> = (0..npe).map(|i| (i as f64).sin()).collect();
        g.bench_with_input(BenchmarkId::new("dense", p), &p, |b, &p| {
            let cache = ElementCache::<3>::new(p);
            let mut v = vec![0.0; npe];
            b.iter(|| {
                v.iter_mut().for_each(|x| *x = 0.0);
                cache.apply_stiffness_dense(0.25, &u, &mut v);
                v[0]
            })
        });
        g.bench_with_input(BenchmarkId::new("tensor", p), &p, |b, &p| {
            let mut cache = ElementCache::<3>::new(p);
            let mut v = vec![0.0; npe];
            b.iter(|| {
                v.iter_mut().for_each(|x| *x = 0.0);
                cache.apply_stiffness_tensor(0.25, &u, &mut v);
                v[0]
            })
        });
        g.bench_with_input(BenchmarkId::new("quadrature_on_the_fly", p), &p, |b, &p| {
            // Rebuild the elemental matrix every call (the NS regime).
            let mut v = vec![0.0; npe];
            b.iter(|| {
                let k = reference_stiffness::<3>(p);
                k.matvec(&u, &mut v);
                v[0]
            })
        });
    }
    g.finish();

    // Scalar loop vs batched SoA panel at equal element counts: the batched
    // apply's per-element op sequence is identical, so any delta is pure
    // layout/vectorization. Throughput is reported per panel (8 applies for
    // scalar vs one batched call on 8 lanes at width 8).
    let mut g = c.benchmark_group("batch_ablation");
    g.sample_size(20);
    for p in [1usize, 2] {
        let npe = (p + 1).pow(3);
        for width in [1usize, 4, 8] {
            let panel: Vec<f64> = (0..npe * width).map(|i| (i as f64).sin()).collect();
            g.bench_with_input(
                BenchmarkId::new(format!("scalar_x{width}"), p),
                &p,
                |b, &p| {
                    let mut cache = ElementCache::<3>::new(p);
                    let u: Vec<f64> = (0..npe).map(|i| (i as f64).sin()).collect();
                    let mut v = vec![0.0; npe];
                    b.iter(|| {
                        let mut acc = 0.0;
                        for _ in 0..width {
                            v.iter_mut().for_each(|x| *x = 0.0);
                            cache.apply_stiffness_tensor_scaled(0.25, &u, &mut v);
                            acc += v[0];
                        }
                        acc
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("batched_x{width}"), p),
                &p,
                |b, &p| {
                    let mut cache = ElementCache::<3>::new(p);
                    let mut v = vec![0.0; npe * width];
                    b.iter(|| {
                        v.iter_mut().for_each(|x| *x = 0.0);
                        cache.apply_stiffness_tensor_batched(0.25, width, &panel, &mut v);
                        v[0]
                    })
                },
            );
        }
    }
    g.finish();

    let mut g = c.benchmark_group("curve_choice");
    g.sample_size(10);
    for curve in [Curve::Morton, Curve::Hilbert] {
        let domain = CarvedSolids::new(vec![Box::new(Sphere::new([0.5; 3], 0.25))]);
        let mesh = Mesh::build(&domain, curve, 4, 6, 1);
        let n = mesh.num_dofs();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        g.bench_with_input(
            BenchmarkId::new("traversal_matvec", format!("{curve:?}")),
            &mesh,
            |b, mesh| {
                let mut cache = ElementCache::<3>::new(1);
                let mut y = vec![0.0; n];
                b.iter(|| {
                    y.iter_mut().for_each(|v| *v = 0.0);
                    traversal_matvec(
                        &mesh.elems,
                        0..mesh.elems.len(),
                        mesh.curve,
                        &mesh.nodes,
                        &x,
                        &mut y,
                        &mut |e: &Octant<3>, u: &[f64], v: &mut [f64]| {
                            cache.apply_stiffness_tensor(e.bounds_unit().1, u, v);
                        },
                    );
                    y[0]
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
