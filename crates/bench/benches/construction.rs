//! Ablation ◆: proactive pruning (Algorithms 1–2) vs build-complete-then-
//! filter (the \[66\] approach) for incomplete-octree construction, plus the
//! cost of 2:1 balancing.

use carve_baseline::build_then_filter;
use carve_core::{construct_balanced, construct_boundary_refined};
use carve_geom::{CarvedSolids, RetainBox, Sphere};
use carve_sfc::Curve;
use criterion::{criterion_group, criterion_main, Criterion};

fn sphere_domain() -> CarvedSolids<3> {
    CarvedSolids::new(vec![Box::new(Sphere::new([0.5; 3], 0.25))])
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction");
    g.sample_size(10);
    let (base, boundary) = (4u8, 6u8);

    g.bench_function("carve_proactive_sphere", |b| {
        b.iter(|| {
            let domain = sphere_domain();
            let t = construct_boundary_refined(&domain, Curve::Hilbert, base, boundary);
            construct_balanced(&domain, Curve::Hilbert, &t)
        })
    });
    g.bench_function("build_then_filter_sphere", |b| {
        b.iter(|| {
            let domain = sphere_domain();
            build_then_filter(&domain, Curve::Hilbert, base, boundary)
        })
    });

    // The anisotropic case is where proactive pruning shines: the channel
    // occupies 1/256 of its bounding cube.
    g.bench_function("carve_proactive_channel", |b| {
        b.iter(|| {
            let domain = RetainBox::<3>::channel([1.0, 1.0 / 16.0, 1.0 / 16.0]);
            let t = construct_boundary_refined(&domain, Curve::Hilbert, 5, 7);
            construct_balanced(&domain, Curve::Hilbert, &t)
        })
    });
    g.bench_function("build_then_filter_channel", |b| {
        b.iter(|| {
            let domain = RetainBox::<3>::channel([1.0, 1.0 / 16.0, 1.0 / 16.0]);
            build_then_filter(&domain, Curve::Hilbert, 5, 7)
        })
    });

    // Balance cost alone.
    let domain = sphere_domain();
    let adaptive = construct_boundary_refined(&domain, Curve::Hilbert, base, boundary);
    g.bench_function("balance_2to1_sphere", |b| {
        b.iter(|| construct_balanced(&domain, Curve::Hilbert, &adaptive))
    });

    // F-evaluation pruning effect: classify call count is what differs; time
    // the uniform construction at a deeper level to expose it.
    g.bench_function("construct_uniform_carved_l6", |b| {
        b.iter(|| {
            let domain = sphere_domain();
            carve_core::construct_uniform(&domain, Curve::Morton, 6)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
