//! MATVEC implementations on the same carved sphere mesh: traversal-based
//! (§3.5, no element-to-node map) vs classic e2n gather/scatter vs
//! assembled CSR, for linear and quadratic elements — one row per paper
//! MATVEC configuration.

use carve_baseline::ImmersedMesh;
use carve_core::{traversal_assemble, traversal_matvec, Mesh};
use carve_fem::ElementCache;
use carve_geom::{CarvedSolids, FullDomain, Sphere};
use carve_la::CooBuilder;
use carve_sfc::{Curve, Octant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn sphere_mesh(order: u64) -> Mesh<3> {
    let domain = CarvedSolids::new(vec![Box::new(Sphere::new([0.5; 3], 0.25))]);
    Mesh::build(&domain, Curve::Hilbert, 4, 6, order)
}

fn bench_matvec(c: &mut Criterion) {
    let mut g = c.benchmark_group("matvec");
    g.sample_size(10);
    for order in [1u64, 2] {
        let mesh = sphere_mesh(order);
        let n = mesh.num_dofs();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let p = order as usize;

        // Traversal-based, sum-factorized kernel.
        g.bench_with_input(
            BenchmarkId::new("traversal_tensor", format!("p{order}")),
            &mesh,
            |b, mesh| {
                let mut cache = ElementCache::<3>::new(p);
                let mut y = vec![0.0; n];
                b.iter(|| {
                    y.iter_mut().for_each(|v| *v = 0.0);
                    traversal_matvec(
                        &mesh.elems,
                        0..mesh.elems.len(),
                        mesh.curve,
                        &mesh.nodes,
                        &x,
                        &mut y,
                        &mut |e: &Octant<3>, u: &[f64], v: &mut [f64]| {
                            cache.apply_stiffness_tensor(e.bounds_unit().1, u, v);
                        },
                    );
                    y[0]
                })
            },
        );

        // e2n-map baseline (same kernel).
        let baseline = ImmersedMesh::from_mesh(&FullDomain, mesh.clone());
        g.bench_with_input(
            BenchmarkId::new("e2n_map_tensor", format!("p{order}")),
            &baseline,
            |b, baseline| {
                let mut cache = ElementCache::<3>::new(p);
                let mut y = vec![0.0; n];
                b.iter(|| {
                    y.iter_mut().for_each(|v| *v = 0.0);
                    baseline.matvec(
                        &x,
                        &mut y,
                        &mut |e: &Octant<3>, u: &[f64], v: &mut [f64]| {
                            cache.apply_stiffness_tensor(e.bounds_unit().1, u, v);
                        },
                    );
                    y[0]
                })
            },
        );

        // Assembled CSR.
        let cache = ElementCache::<3>::new(p);
        let mut coo = CooBuilder::new(n);
        let ids: Vec<u32> = (0..n as u32).collect();
        traversal_assemble(
            &mesh.elems,
            0..mesh.elems.len(),
            mesh.curve,
            &mesh.nodes,
            &ids,
            &mut coo,
            &mut |e: &Octant<3>| cache.stiffness(e.bounds_unit().1),
        );
        let a = coo.build();
        g.bench_with_input(
            BenchmarkId::new("assembled_csr", format!("p{order}")),
            &a,
            |b, a| {
                let mut y = vec![0.0; n];
                b.iter(|| {
                    a.matvec(&x, &mut y);
                    y[0]
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_matvec);
criterion_main!(benches);
