//! TreeSort (comparison-free MSD radix, SFC-permuted buckets) vs a
//! comparison sort — the memory-locality claim of \[23, 30\].

use carve_sfc::{sfc_cmp, treesort, Curve, Octant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn random_octants(n: usize, max_level: u8, seed: u64) -> Vec<Octant<3>> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let level = rng.gen_range(1..=max_level);
            let mut o = Octant::<3>::ROOT;
            for _ in 0..level {
                o = o.child(rng.gen_range(0..8));
            }
            o
        })
        .collect()
}

fn bench_sorts(c: &mut Criterion) {
    let mut g = c.benchmark_group("treesort");
    g.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let input = random_octants(n, 8, 42);
        for curve in [Curve::Morton, Curve::Hilbert] {
            g.bench_with_input(
                BenchmarkId::new(format!("treesort_{curve:?}"), n),
                &input,
                |b, input| {
                    b.iter(|| {
                        let mut v = input.clone();
                        treesort(&mut v, curve);
                        v
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("comparison_sort_{curve:?}"), n),
                &input,
                |b, input| {
                    b.iter(|| {
                        let mut v = input.clone();
                        v.sort_by(|x, y| sfc_cmp(curve, x, y));
                        v
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sorts);
criterion_main!(benches);
