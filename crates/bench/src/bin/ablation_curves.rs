//! Ablation ◆ — Morton vs Hilbert space-filling curve: partition surface
//! quality (ghost nodes = communication volume) on the same carved meshes.
//! The paper builds on Dendro's SFC machinery where Hilbert ordering is the
//! locality-preserving option; this quantifies what it buys on carved
//! domains.

use carve_bench::analyze_partition;
use carve_core::Mesh;
use carve_geom::{CarvedSolids, RetainBox, Sphere, Subdomain};
use carve_io::Table;
use carve_sfc::Curve;

fn sweep<const DIM: usize>(
    name: &str,
    domain: &dyn Subdomain<3>,
    base: u8,
    boundary: u8,
    table: &mut Table,
) {
    let _ = DIM;
    for curve in [Curve::Morton, Curve::Hilbert] {
        let mesh = Mesh::build(domain, curve, base, boundary, 1);
        for ranks in [64usize, 256, 1024] {
            if mesh.num_elems() < ranks * 4 {
                continue;
            }
            let a = analyze_partition(&mesh, ranks);
            let (mean_g, std_g, eta) = a.ghost_stats();
            let total_ghost: usize = a.loads.iter().map(|l| l.ghost_nodes).sum();
            table.row(&[
                name.to_string(),
                format!("{curve:?}"),
                mesh.num_elems().to_string(),
                ranks.to_string(),
                total_ghost.to_string(),
                format!("{mean_g:.1}"),
                format!("{std_g:.1}"),
                format!("{eta:.4}"),
            ]);
        }
    }
}

fn main() {
    let mut table = Table::new(
        "Ablation: Morton vs Hilbert partition surface (total/mean ghost nodes; lower = less communication)",
        &[
            "mesh", "curve", "elements", "ranks", "total ghosts", "mean ghosts", "std", "eta",
        ],
    );
    let sphere = CarvedSolids::new(vec![Box::new(Sphere::new([0.5; 3], 0.25))]);
    sweep::<3>("sphere", &sphere, 4, 6, &mut table);
    let channel = RetainBox::<3>::channel([1.0, 1.0 / 16.0, 1.0 / 16.0]);
    sweep::<3>("channel", &channel, 5, 7, &mut table);
    table.print();
    println!("\nexpected: Hilbert's face-continuity yields fewer ghosts per rank than");
    println!("Morton's jumps, with the gap widening at higher rank counts.");
    table
        .to_csv(std::path::Path::new("results/ablation_curves.csv"))
        .ok();
}
