//! Emits the canonical transient adapt trace for the CI adapt-determinism
//! stage: 3 simulated ranks, transient heat on the 2-D carved sphere,
//! three adapt cycles with both refinement and coarsening. Traversal
//! threads come from `CARVE_PAR_THREADS` and ambient chaos from
//! `CARVE_CHAOS`, so the stage can rerun this binary across a
//! threads × chaos matrix and diff the serialized `carve-adapt-trace-v1`
//! documents bitwise.
//!
//! Usage: `adapt_trace [OUT.json]` — writes to the path, or stdout.

use carve_comm::run_spmd;
use carve_fem::{run_transient, TransientConfig};
use carve_geom::{CarvedSolids, Sphere};
use carve_io::adapt_trace_to_json;

fn main() {
    let texts = run_spmd(3, |c| {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))]);
        let cfg = TransientConfig {
            steps: 6,
            adapt_every: 2,
            base_level: 3,
            boundary_level: 5,
            max_level: 6,
            min_level: 2,
            repart_tol: 2.0,
            dt: 2e-3,
            threads: 0, // CARVE_PAR_THREADS decides
            ..TransientConfig::default()
        };
        let init = |p: &[f64; 2]| {
            let dx = p[0] - 0.18;
            let dy = p[1] - 0.18;
            (-(dx * dx + dy * dy) / 0.008).exp()
        };
        let res = run_transient(c, &domain, &cfg, &init);
        adapt_trace_to_json(&res.trace).to_string_pretty()
    });
    for t in &texts[1..] {
        assert_eq!(*t, texts[0], "ranks disagree on the adapt trace");
    }
    let mut out = texts.into_iter().next().unwrap();
    out.push('\n');
    match std::env::args().nth(1) {
        Some(path) => std::fs::write(&path, out).expect("write adapt trace"),
        None => print!("{out}"),
    }
}
