//! Request-replay serving bench emitter for the CI `serve-gate` stage.
//!
//! ```sh
//! bench_serve OUT.json          # replay, gate latency + rounds, write full report
//! bench_serve --check OUT.json  # replay, gate rounds only, write the
//!                               # latency-stripped (deterministic) document
//! ```
//!
//! The gate runs the full mode once (enforcing the hit-vs-miss latency
//! floor and the block-CG round budget), then replays `--check` across a
//! threads × chaos matrix and byte-compares the stripped documents: every
//! count, round total, and the solution/read digest must be a pure
//! function of the trace.

use carve_bench::serve::{gate_failures, run_replay};
use carve_io::{serve_report_strip_latency, serve_report_to_json};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (check_only, out_path) = match args.as_slice() {
        [flag, out] if flag == "--check" => (true, out.clone()),
        [out] => (false, out.clone()),
        _ => {
            eprintln!("usage: bench_serve OUT.json | bench_serve --check OUT.json");
            return ExitCode::FAILURE;
        }
    };
    let report = run_replay();
    let failures = gate_failures(&report, !check_only);
    let json = serve_report_to_json(&report);
    let doc = if check_only {
        serve_report_strip_latency(&json)
    } else {
        json
    };
    let mut text = doc.to_string_pretty();
    text.push('\n');
    if let Err(e) = std::fs::write(&out_path, text) {
        eprintln!("bench_serve: write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    if failures.is_empty() {
        println!(
            "bench_serve: wrote {out_path} — {} requests, hit/miss speedup {:.1}×, \
             block {} vs sequential {} rounds",
            report.requests, report.hit_miss_speedup, report.block_rounds, report.seq_rounds
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_serve: GATE FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
