//! Smoke benchmark emitter / comparator for the CI perf gate.
//!
//! ```sh
//! bench_smoke BENCH_PR2.json              # run workloads, write report
//! bench_smoke --compare OLD.json NEW.json # diff reports, exit 1 on regression
//! ```
//!
//! Comparison knobs (env): `BENCH_GATE_TOLERANCE` (fractional slowdown
//! allowed on a phase's mean seconds, default 0.25) and
//! `BENCH_GATE_MIN_SECS` (phases faster than this in both reports are
//! ignored as noise, default 0.005).

use carve_bench::smoke::{compare_reports, run_smoke, same_machine};
use carve_io::Json;
use std::process::ExitCode;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, old_path, new_path] if flag == "--compare" => {
            let (old, new) = match (load(old_path), load(new_path)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("bench_smoke: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let tolerance = env_f64("BENCH_GATE_TOLERANCE", 0.25);
            let min_secs = env_f64("BENCH_GATE_MIN_SECS", 0.005);
            let failures = compare_reports(&old, &new, tolerance, min_secs);
            if failures.is_empty() {
                if same_machine(&old, &new) {
                    println!(
                        "bench_smoke: {new_path} within {:.0}% of {old_path}",
                        tolerance * 100.0
                    );
                } else {
                    println!(
                        "bench_smoke: {old_path} was recorded on different hardware — \
                         structure matches {new_path}; timings not compared"
                    );
                }
                ExitCode::SUCCESS
            } else {
                for f in &failures {
                    eprintln!("bench_smoke: REGRESSION: {f}");
                }
                ExitCode::FAILURE
            }
        }
        [out_path] => {
            let report = run_smoke();
            let mut text = report.to_string_pretty();
            text.push('\n');
            if let Err(e) = std::fs::write(out_path, text) {
                eprintln!("bench_smoke: write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("bench_smoke: wrote {out_path}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: bench_smoke OUT.json | bench_smoke --compare OLD.json NEW.json");
            ExitCode::FAILURE
        }
    }
}
