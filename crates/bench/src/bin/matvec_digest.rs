//! Emits an FNV-1a digest of the traversal MATVEC output bits for the CI
//! leaf-kernel-determinism stage: carved-sphere meshes (2-D and 3-D, with
//! hanging nodes from boundary refinement) at orders 1 and 2, applied
//! through the batched stiffness kernel. Traversal threads come from
//! `CARVE_PAR_THREADS` and the leaf-panel width from `CARVE_BATCH_WIDTH`,
//! so the stage reruns this binary across a width × threads matrix and
//! byte-compares the documents — the panel path must be bitwise identical
//! to the scalar path under any schedule.
//!
//! Usage: `matvec_digest [OUT.txt]` — writes to the path, or stdout.

use carve_core::{traversal_matvec_par, Mesh, TraversalWorkspace};
use carve_fem::StiffnessKernel;
use carve_geom::{CarvedSolids, Sphere};
use carve_sfc::Curve;

/// FNV-1a over the raw bit patterns, so `-0.0 != +0.0` and NaN payloads
/// would all show up as digest differences.
fn fnv1a(bits: impl Iterator<Item = u64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bits {
        for byte in b.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn digest<const DIM: usize>(domain: &CarvedSolids<DIM>, p: u64) -> u64 {
    let mesh = Mesh::<DIM>::build(domain, Curve::Hilbert, 3, 5, p);
    let n = mesh.num_dofs();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin() + 0.01).collect();
    let mut y = vec![0.0f64; n];
    // Env-resolved workspace: CARVE_PAR_THREADS and CARVE_BATCH_WIDTH apply.
    let mut ws = TraversalWorkspace::<DIM>::new();
    let make_kernel = || StiffnessKernel::<DIM>::new(p as usize, 16.0);
    // Two rounds through the same workspace so arena/pool reuse is covered.
    for _ in 0..2 {
        y.iter_mut().for_each(|v| *v = 0.0);
        traversal_matvec_par(
            &mesh.elems,
            0..mesh.elems.len(),
            mesh.curve,
            &mesh.nodes,
            &x,
            &mut y,
            &mut ws,
            &make_kernel,
        );
    }
    fnv1a(y.iter().map(|v| v.to_bits()))
}

fn main() {
    let d2 = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))]);
    let d3 = CarvedSolids::<3>::new(vec![Box::new(Sphere::new([0.5; 3], 0.28))]);
    let mut out = String::from("carve-matvec-digest-v1\n");
    for p in [1u64, 2] {
        out.push_str(&format!("dim=2 p={p} digest={:016x}\n", digest(&d2, p)));
        out.push_str(&format!("dim=3 p={p} digest={:016x}\n", digest(&d3, p)));
    }
    match std::env::args().nth(1) {
        Some(path) => std::fs::write(&path, out).expect("write matvec digest"),
        None => print!("{out}"),
    }
}
