//! Fig. 11 — ghost-node distribution vs processor count for the carved
//! sphere: mean ± std of ghost nodes per rank (communication volume proxy)
//! and the ratio η = N_G/N_L, which the paper shows scales like 1/(p+1) —
//! the mechanism behind quadratic elements scaling *better* than linear.
//!
//! These quantities are machine-independent: the partition replay computes
//! them exactly from the real partitioning/ownership algorithms.

use carve_bench::{analyze_partition, SphereWorkload};
use carve_io::Table;

fn main() {
    let (base, boundary): (u8, u8) = match std::env::var("CARVE_MESH").as_deref() {
        Ok("large") => (5, 8),
        _ => (4, 7),
    };
    let w = SphereWorkload::new();
    let mut table = Table::new(
        "Fig 11: ghost nodes per rank and eta = N_G/N_L (sphere carved from 10^3 cube)",
        &[
            "ranks",
            "order",
            "mean ghosts",
            "std ghosts",
            "mean eta",
            "eta(p2)/eta(p1)",
        ],
    );
    let ranks: Vec<usize> = std::env::var("CARVE_RANKS")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![28, 56, 112, 224, 448, 896, 1792]);
    let mesh1 = w.mesh(base, boundary, 1);
    let mesh2 = w.mesh(base, boundary, 2);
    println!(
        "mesh: {} elements; {} dofs (p=1), {} dofs (p=2)\n",
        mesh1.num_elems(),
        mesh1.num_dofs(),
        mesh2.num_dofs()
    );
    for &p_ranks in &ranks {
        if p_ranks * 4 > mesh1.num_elems() {
            continue; // below ~4 elements/rank the partition degenerates
        }
        let a1 = analyze_partition(&mesh1, p_ranks);
        let a2 = analyze_partition(&mesh2, p_ranks);
        let (m1, s1, e1) = a1.ghost_stats();
        let (m2, s2, e2) = a2.ghost_stats();
        table.row(&[
            p_ranks.to_string(),
            "linear".into(),
            format!("{m1:.1}"),
            format!("{s1:.1}"),
            format!("{e1:.4}"),
            String::new(),
        ]);
        table.row(&[
            p_ranks.to_string(),
            "quadratic".into(),
            format!("{m2:.1}"),
            format!("{s2:.1}"),
            format!("{e2:.4}"),
            format!("{:.3}", e2 / e1.max(1e-300)),
        ]);
    }
    table.print();
    println!("\npaper shape check: quadratic mean ghosts > linear (more face nodes),");
    println!("but eta(p=2)/eta(p=1) ~ (1+1)/(2+1) = 0.67 (eta ∝ 1/(p+1));");
    println!("eta grows with rank count toward the 1-element-per-rank limit.");
    table
        .to_csv(std::path::Path::new("results/fig11_ghost_nodes.csv"))
        .ok();
}
