//! Fig. 12 — roofline placement of the Poisson elemental MATVEC for linear
//! vs quadratic bases on two meshes, against a measured STREAM-like memory
//! roof.
//!
//! The paper (Intel Advisor on Frontera) reports AI 0.072 (p=1) and 0.121
//! (p=2) with ~4 / ~7 GFLOP/s at ~60 GB/s — memory-bound either way, AI
//! rising with order because FLOPs grow as d(p+1)^{d+1} but data as
//! (p+1)^d. Advisor measures actual DRAM traffic; here bytes come from an
//! analytic minimum-traffic model (elemental vectors + scratch), so the
//! absolute AI differs — the reproducible content is the ordering
//! AI(p2) > AI(p1), the ~1.7× AI ratio, the higher GFLOP/s at higher
//! order, and the memory-bound placement (achieved bandwidth a large
//! fraction of the roof while GFLOP/s sits far below compute peak).

use carve_bench::{ChannelWorkload, SphereWorkload};
use carve_core::Mesh;
use carve_fem::flops::tensor_apply_flops;
use carve_fem::ElementCache;
use carve_io::Table;
use std::time::Instant;

/// Crude STREAM-triad bandwidth measurement (bytes/s).
fn stream_bandwidth() -> f64 {
    let n = 8_000_000usize;
    let a = vec![1.0f64; n];
    let b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    let t0 = Instant::now();
    let reps = 5;
    for _ in 0..reps {
        for i in 0..n {
            c[i] = a[i] + 0.5 * b[i];
        }
        std::hint::black_box(&c);
    }
    let secs = t0.elapsed().as_secs_f64() / reps as f64;
    (3 * n * 8) as f64 / secs
}

/// Streams the elemental tensor kernel over every element of the mesh
/// (contiguous per-element input/output buffers — the paper's "leaf
/// MATVEC"), returning (seconds per sweep, flops per sweep, bytes per
/// sweep).
fn kernel_sweep(mesh: &Mesh<3>, p: usize, reps: usize) -> (f64, u64, u64) {
    let ne = mesh.num_elems();
    let npe = (p + 1).pow(3);
    let mut cache = ElementCache::<3>::new(p);
    let hs: Vec<f64> = mesh.elems.iter().map(|e| e.bounds_unit().1).collect();
    let u: Vec<f64> = (0..ne * npe).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut v = vec![0.0f64; ne * npe];
    // Warm up.
    for (ei, &h) in hs.iter().enumerate() {
        cache.apply_stiffness_tensor(
            h,
            &u[ei * npe..(ei + 1) * npe],
            &mut v[ei * npe..(ei + 1) * npe],
        );
    }
    let t0 = Instant::now();
    for _ in 0..reps {
        v.iter_mut().for_each(|x| *x = 0.0);
        for (ei, &h) in hs.iter().enumerate() {
            cache.apply_stiffness_tensor(
                h,
                &u[ei * npe..(ei + 1) * npe],
                &mut v[ei * npe..(ei + 1) * npe],
            );
        }
        std::hint::black_box(&v);
    }
    let secs = t0.elapsed().as_secs_f64() / reps as f64;
    let flops = tensor_apply_flops(3, p) * ne as u64;
    // Minimum-traffic model: read u_e, zero+write v_e, and the scratch
    // arrays of the sum-factorized apply touched ~4 times per axis pass.
    let bytes = ((2 + 4 * 3) * npe * 8) as u64 * ne as u64;
    (secs, flops, bytes)
}

/// Same sweep through SoA panels of `width` elements (the §6h batched
/// leaf path): elements are packed lane-innermost and processed by one
/// `apply_stiffness_tensor_batched` call per panel. The per-element FP
/// work is identical to the scalar sweep, so flops/bytes reuse the same
/// model; only the layout (and thus achieved GFLOP/s) changes.
fn kernel_sweep_batched(mesh: &Mesh<3>, p: usize, width: usize, reps: usize) -> (f64, u64, u64) {
    let ne = mesh.num_elems();
    let npe = (p + 1).pow(3);
    let mut cache = ElementCache::<3>::new(p);
    // The batched apply takes one geometric scale per panel, so panels are
    // same-level runs in mesh (SFC) order — exactly what the traversal's
    // panel builder produces. At d = 3 the stiffness scale h^{d-2} is h.
    let scales: Vec<f64> = mesh.elems.iter().map(|e| e.bounds_unit().1).collect();
    let mut runs: Vec<(usize, usize)> = Vec::new(); // (start, len)
    let mut start = 0usize;
    for ei in 1..=ne {
        if ei == ne || scales[ei] != scales[start] || ei - start == width {
            runs.push((start, ei - start));
            start = ei;
        }
    }
    let u: Vec<f64> = (0..ne * npe).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut panel = vec![0.0f64; npe * width];
    let mut vout = vec![0.0f64; npe * width];
    let mut sweep = |black: bool| {
        for &(s, len) in &runs {
            for lin in 0..npe {
                for b in 0..len {
                    panel[lin * len + b] = u[(s + b) * npe + lin];
                }
            }
            cache.apply_stiffness_tensor_batched(
                scales[s],
                len,
                &panel[..npe * len],
                &mut vout[..npe * len],
            );
        }
        if black {
            std::hint::black_box(&vout);
        }
    };
    sweep(false); // warm up
    let t0 = Instant::now();
    for _ in 0..reps {
        sweep(true);
    }
    let secs = t0.elapsed().as_secs_f64() / reps as f64;
    let flops = tensor_apply_flops(3, p) * ne as u64;
    let bytes = ((2 + 4 * 3) * npe * 8) as u64 * ne as u64;
    (secs, flops, bytes)
}

fn main() {
    let bw = stream_bandwidth();
    println!(
        "measured memory roof (STREAM-like triad): {:.2} GB/s\n",
        bw / 1e9
    );
    let mut table = Table::new(
        "Fig 12: elemental (leaf) MATVEC roofline data (paper: AI 0.072/0.121, ~4/~7 GFLOP/s, memory bound)",
        &[
            "mesh", "order", "elements", "AI (flop/byte)", "GFLOP/s", "GB/s (model)",
            "% of roof", "sweep (s)",
        ],
    );
    let chan = ChannelWorkload::new();
    let sph = SphereWorkload::new();
    let mut ai = [[0.0f64; 2]; 2];
    for (mi, (name, m1, m2)) in [
        ("channel", chan.mesh(5, 8, 1), chan.mesh(5, 8, 2)),
        ("sphere", sph.mesh(4, 7, 1), sph.mesh(4, 7, 2)),
    ]
    .iter()
    .enumerate()
    {
        for (pi, (p, mesh)) in [(1usize, m1), (2usize, m2)].iter().enumerate() {
            let base = if *p == 1 { "linear" } else { "quadratic" };
            let (secs, flops, bytes) = kernel_sweep(mesh, *p, 5);
            let this_ai = flops as f64 / bytes as f64;
            ai[mi][pi] = this_ai;
            table.row(&[
                name.to_string(),
                base.into(),
                mesh.num_elems().to_string(),
                format!("{this_ai:.3}"),
                format!("{:.2}", flops as f64 / secs / 1e9),
                format!("{:.2}", bytes as f64 / secs / 1e9),
                format!("{:.0}%", 100.0 * bytes as f64 / secs / bw),
                format!("{secs:.4}"),
            ]);
            // Batched point: same FP work through width-8 SoA panels.
            let (bsecs, bflops, bbytes) = kernel_sweep_batched(mesh, *p, 8, 5);
            table.row(&[
                name.to_string(),
                format!("{base}-batched8"),
                mesh.num_elems().to_string(),
                format!("{:.3}", bflops as f64 / bbytes as f64),
                format!("{:.2}", bflops as f64 / bsecs / 1e9),
                format!("{:.2}", bbytes as f64 / bsecs / 1e9),
                format!("{:.0}%", 100.0 * bbytes as f64 / bsecs / bw),
                format!("{bsecs:.4}"),
            ]);
        }
    }
    table.print();
    println!(
        "\nAI ratio quadratic/linear: channel {:.2}, sphere {:.2} (paper: 0.121/0.072 = 1.68)",
        ai[0][1] / ai[0][0],
        ai[1][1] / ai[1][0]
    );
    println!("paper shape check: AI and GFLOP/s rise with order; bandwidth is a large");
    println!("fraction of the roof (memory bound) while GFLOP/s is far below peak.");
    table
        .to_csv(std::path::Path::new("results/fig12_roofline.csv"))
        .ok();
}
