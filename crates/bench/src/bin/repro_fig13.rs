//! Fig. 13 — drag coefficient of a sphere across Reynolds numbers,
//! including the drag crisis.
//!
//! The paper validates its VMS solver against Achenbach's experiments and
//! Almedeij's all-regime correlation \[4\] (cited in the paper) over
//! Re ∈ O(1…10⁶), capturing the crisis (C_d drops from ~0.5 to ~0.1 near
//! Re ≈ 3×10⁵). On this machine the full 40M-element LES is out of reach;
//! the harness (a) prints the reference correlation across the whole sweep
//! — the curve the paper's Fig. 13 overlays — and (b) *runs the actual
//! carved-mesh VMS solver* at the low-Re points where the default mesh
//! resolves the flow, reporting solver C_d vs correlation. Add more solved
//! points with CARVE_SOLVE_RE=100,300,... and a finer mesh with
//! CARVE_MESH=large.

use carve_bench::DragSphereWorkload;
use carve_core::NodeFlags;
use carve_io::Table;
use carve_ns::{drag_on_surrogate, FlowSolver, NodeBc, VmsParams};

/// Almedeij (2008): drag coefficient of a smooth sphere for all Re,
/// including the drag crisis.
fn almedeij_cd(re: f64) -> f64 {
    let phi1 = (24.0 / re).powi(10)
        + (21.0 / re.powf(0.67)).powi(10)
        + (4.0 / re.powf(0.33)).powi(10)
        + 0.4f64.powi(10);
    let phi2 = 1.0 / ((0.148 * re.powf(0.11)).powi(-10) + 0.5f64.powi(-10));
    let phi3 = (1.57e8 / re.powf(1.625)).powi(10);
    let phi4 = 1.0 / ((6e-17 * re.powf(2.63)).powi(-10) + 0.2f64.powi(-10));
    (1.0 / ((phi1 + phi2).recip() + phi3.recip()) + phi4).powf(0.1)
}

fn solve_cd(re: f64, base: u8, boundary: u8) -> (f64, usize) {
    let w = DragSphereWorkload::new();
    let mesh = w.mesh(base, boundary, 1);
    let scale = w.scale;
    let d_phys = 1.0; // sphere diameter in physical units
    let u_in = 1.0;
    let nu = u_in * d_phys / re;
    let center = w.sphere.center;
    let bc = move |x: &[f64; 3], fl: NodeFlags| -> NodeBc<3> {
        let eps = 1e-9;
        if x[0] >= 1.0 - eps {
            return NodeBc::Pressure(0.0); // outlet
        }
        if fl.is_carved_boundary() {
            // Distinguish sphere surface (no-slip) from domain walls
            // (free-stream velocity, per the paper's setup).
            let dx = x[0] - center[0];
            let dy = x[1] - center[1];
            let dz = x[2] - center[2];
            if (dx * dx + dy * dy + dz * dz).sqrt() < 0.1 {
                return NodeBc::Velocity([0.0, 0.0, 0.0]);
            }
            return NodeBc::Velocity([u_in, 0.0, 0.0]);
        }
        NodeBc::Free
    };
    let params = VmsParams::new(nu, 0.25);
    let mut solver = FlowSolver::new(&mesh, params, scale, &bc);
    let zero = |_: &[f64; 3]| [0.0; 3];
    let steps: usize = std::env::var("CARVE_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    // Bounded inner solves: the 1-core container cannot afford fully
    // converged BiCGStab at every Picard step; the traction integral is
    // already meaningful from a partially converged steady state (raise
    // CARVE_STEPS for a tighter Cd).
    solver.max_picard = 2;
    solver.lin_max_iter = 2_500;
    let _rep = solver.run_to_steady(&zero, steps, 1e-4);
    let on_sphere = move |x: &[f64; 3]| {
        let dx = x[0] - center[0];
        let dy = x[1] - center[1];
        let dz = x[2] - center[2];
        (dx * dx + dy * dy + dz * dz).sqrt() < 0.1
    };
    let f = drag_on_surrogate(&solver, &on_sphere);
    // Cd = F / (1/2 rho U^2 A), A = pi d^2 / 4 (physical units; force from
    // the solver is already in physical units via `scale`).
    let area = std::f64::consts::PI * d_phys * d_phys / 4.0;
    let cd = f[0] / (0.5 * u_in * u_in * area);
    (cd, mesh.num_elems())
}

fn main() {
    let re_sweep = [10.0, 100.0, 1000.0, 1.6e4, 1e5, 1.6e5, 3e5, 1e6, 2e6];
    let solve_re: Vec<f64> = std::env::var("CARVE_SOLVE_RE")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![100.0]);
    let (base, boundary) = if std::env::var("CARVE_MESH").as_deref() == Ok("large") {
        (5u8, 7u8)
    } else {
        (4, 6)
    };
    let mut table = Table::new(
        "Fig 13: sphere drag coefficient across the drag-crisis regime",
        &["Re", "Cd (correlation)", "Cd (VMS solver)", "elements"],
    );
    for &re in &re_sweep {
        let reference = almedeij_cd(re);
        let solved = solve_re.iter().any(|r| (r - re).abs() < 1e-9);
        let (cd_s, ne) = if solved {
            let (cd, ne) = solve_cd(re, base, boundary);
            (format!("{cd:.3}"), ne.to_string())
        } else {
            ("-".into(), "-".into())
        };
        table.row(&[format!("{re:.1e}"), format!("{reference:.3}"), cd_s, ne]);
    }
    table.print();
    println!("\npaper shape check: correlation Cd ~0.4-0.5 subcritical (Re 1e4-2e5),");
    println!("crisis drop to ~0.1-0.2 by Re 1e6-2e6 — the curve the paper overlays;");
    println!("solver Cd at the solved low-Re points should sit within ~30% of the");
    println!("correlation at this voxel resolution.");
    table
        .to_csv(std::path::Path::new("results/fig13_drag_crisis.csv"))
        .ok();
}
