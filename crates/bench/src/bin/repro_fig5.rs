//! Fig. 5 — signed-distance error of the voxelized geometry vs refinement.
//!
//! The paper voxelizes the Stanford dragon and reports the max |signed
//! distance| from octree boundary nodes to the STL surface, observing
//! first-order convergence. We use the procedural dragon-like body (a real
//! `dragon.stl` can be passed as argv\[1\]); the error metric and pipeline
//! are identical.

use carve_core::Mesh;
use carve_geom::domain::Solid;
use carve_geom::dragon::{dragon_mesh, DragonParams};
use carve_geom::{CarvedSolids, TriMeshSolid};
use carve_io::Table;
use carve_sfc::Curve;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tri = if args.len() > 1 {
        println!("loading STL {}", args[1]);
        carve_geom::stl::read_stl(std::path::Path::new(&args[1])).expect("readable STL")
    } else {
        dragon_mesh(&DragonParams::default())
    };
    println!(
        "body: {} triangles, area {:.4}, volume {:.5}, watertight: {}",
        tri.tris.len(),
        tri.area(),
        tri.signed_volume(),
        tri.is_watertight()
    );
    let solid = TriMeshSolid::new(tri);
    let max_level: u8 = std::env::var("CARVE_MAX_LEVEL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    let mut table = Table::new(
        "Fig 5: max |signed distance| at voxel boundary nodes (paper: 1st-order decay)",
        &["level", "h", "boundary nodes", "max |d|", "rate"],
    );
    let mut prev: Option<f64> = None;
    for level in 4..=max_level {
        // One solid instance per level to keep borrows simple.
        let domain = CarvedSolids::new(vec![Box::new(TriMeshSolid::new(if args.len() > 1 {
            carve_geom::stl::read_stl(std::path::Path::new(&args[1])).unwrap()
        } else {
            dragon_mesh(&DragonParams::default())
        }))]);
        let mesh = Mesh::build(&domain, Curve::Hilbert, 4, level, 1);
        let mut max_d: f64 = 0.0;
        let mut nb = 0usize;
        for i in 0..mesh.num_dofs() {
            if mesh.nodes.flags[i].is_carved_boundary() {
                nb += 1;
                let x = mesh.nodes.unit_coords(i);
                max_d = max_d.max(solid.signed_distance(&x).abs());
            }
        }
        let h = 1.0 / (1u64 << level) as f64;
        let rate = prev
            .map(|p| format!("{:.2}", (p / max_d).log2()))
            .unwrap_or_else(|| "-".into());
        table.row(&[
            level.to_string(),
            format!("{h:.5}"),
            nb.to_string(),
            format!("{max_d:.5e}"),
            rate,
        ]);
        prev = Some(max_d);
    }
    table.print();
    println!("\npaper shape check: rate column should hover near 1.0 (first order).");
    table
        .to_csv(std::path::Path::new("results/fig5_signed_distance.csv"))
        .ok();
}
