//! Fig. 6 — convergence of the Poisson operator on a 2D disk (R = 0.5,
//! center (0.5, 0.5), f = 1, exact u = (R² − r²)/4): naive voxel-boundary
//! Dirichlet is first order; the Shifted Boundary Method recovers second
//! order in both L2 and L∞.

use carve_core::Mesh;
use carve_fem::{l2_linf_error, solve_poisson, BcMode, PoissonProblem, SbmParams};
use carve_geom::{RetainSolid, Solid, Sphere};
use carve_io::Table;
use carve_sfc::Curve;

fn main() {
    let max_level: u8 = std::env::var("CARVE_MAX_LEVEL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let disk = Sphere::<2>::new([0.5, 0.5], 0.5);
    let domain = RetainSolid::new(disk);
    let one = |_: &[f64; 2]| 1.0;
    let zero = |_: &[f64; 2]| 0.0;
    let closest = move |x: &[f64; 2]| disk.closest_boundary_point(x);
    let exact = |x: &[f64; 2]| {
        let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
        0.25 * (0.25 - r2)
    };

    let mut table = Table::new(
        "Fig 6: Poisson on a disk, naive BC vs Shifted Boundary Method (linear elements)",
        &[
            "level",
            "dofs",
            "naive L2",
            "naive Linf",
            "SBM L2",
            "SBM Linf",
            "L2 rate naive",
            "L2 rate SBM",
        ],
    );
    let mut prev_naive: Option<f64> = None;
    let mut prev_sbm: Option<f64> = None;
    for level in 4..=max_level {
        let mesh = Mesh::build(&domain, Curve::Morton, level, level, 1);
        let mut norms = Vec::new();
        for bc in [BcMode::Naive, BcMode::Sbm(SbmParams::default())] {
            let prob = PoissonProblem {
                scale: 1.0,
                f: &one,
                dirichlet: &zero,
                closest_boundary: Some(&closest),
                strong_cube_bc: false,
                bc,
            };
            let sol = solve_poisson(&mesh, &domain, &prob);
            if !sol.krylov.converged {
                eprintln!("warning: level {level} solve stalled: {:?}", sol.krylov);
            }
            norms.push(l2_linf_error(&mesh, &domain, &sol.u, &exact, 1.0));
        }
        let rate = |prev: &Option<f64>, cur: f64| {
            prev.map(|p| format!("{:.2}", (p / cur).log2()))
                .unwrap_or_else(|| "-".into())
        };
        table.row(&[
            level.to_string(),
            mesh.num_dofs().to_string(),
            format!("{:.3e}", norms[0].l2),
            format!("{:.3e}", norms[0].linf),
            format!("{:.3e}", norms[1].l2),
            format!("{:.3e}", norms[1].linf),
            rate(&prev_naive, norms[0].l2),
            rate(&prev_sbm, norms[1].l2),
        ]);
        prev_naive = Some(norms[0].l2);
        prev_sbm = Some(norms[1].l2);
    }
    table.print();
    println!("\npaper shape check: naive rate ~1, SBM rate ~2, SBM error far below naive.");
    table
        .to_csv(std::path::Path::new("results/fig6_convergence.csv"))
        .ok();
}
