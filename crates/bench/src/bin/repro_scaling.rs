//! Figs. 7–10 + Table 3 — strong and weak MATVEC scaling for the elongated
//! channel (16×1×1) and the carved sphere, linear vs quadratic elements,
//! with the per-phase breakdown (leaf compute / traversal / communication).
//!
//! Meshes, partitions, and ghost volumes come from the real algorithms;
//! wall-clock at rank counts beyond this box is produced by the calibrated
//! partition-replay model (DESIGN.md §2). Mesh sizes are scaled down from
//! the paper's 13.5M/17.5M elements (override: CARVE_MESH=large).
//!
//! Modes:
//! - (no args)          — legacy Table 3 run at modest rank counts.
//! - `--artifact [path]` — build the versioned `carve-scaling-report-v1`
//!   artifact (P = 256…28672, exact per-rank replay + pinned reference
//!   model, plus this box's calibrated constants) and write it to `path`
//!   (default `SCALING_PR8.json`).
//! - `--check <path>`   — regenerate the artifact structure from source
//!   (reference model only) and diff it against the committed baseline;
//!   exit 1 on any drift. This is the CI scaling-gate.

use carve_bench::{
    analyze_partition, build_artifact, calibrate, check_artifact, ChannelWorkload, SphereWorkload,
    SCALING_PR,
};
use carve_core::Mesh;
use carve_io::{scaling_report_from_json, scaling_report_to_json, Json, ScalingReport, Table};

fn strong_scaling(name: &str, mesh_p1: &Mesh<3>, mesh_p2: &Mesh<3>, ranks: &[usize]) -> (f64, f64) {
    let mut table = Table::new(
        &format!(
            "Fig 7/9 (strong, {name}): parallel cost = time x ranks; {} elements, {} dofs (p1) / {} dofs (p2)",
            mesh_p1.num_elems(),
            mesh_p1.num_dofs(),
            mesh_p2.num_dofs()
        ),
        &[
            "ranks", "order", "t_leaf", "t_traversal", "t_comm", "t_total", "cost (t x P)",
            "efficiency",
        ],
    );
    let (model1, _) = calibrate(mesh_p1, 2);
    let (model2, _) = calibrate(mesh_p2, 2);
    let mut eff = (0.0, 0.0);
    for (order, mesh, model) in [(1u64, mesh_p1, &model1), (2, mesh_p2, &model2)] {
        let mut base_cost = None;
        for &p in ranks {
            // Keep the grain in the paper's regime (>= ~60 elements/rank;
            // the paper's strong runs span ~60K down to ~500).
            if mesh.num_elems() / p < 60 {
                continue;
            }
            let a = analyze_partition(mesh, p);
            let (total, leaf, trav, comm) = a.modeled_time(model);
            let cost = total * p as f64;
            let base = *base_cost.get_or_insert(cost);
            let e = base / cost;
            table.row(&[
                p.to_string(),
                if order == 1 {
                    "linear".into()
                } else {
                    "quadratic".into()
                },
                format!("{leaf:.4e}"),
                format!("{trav:.4e}"),
                format!("{comm:.4e}"),
                format!("{total:.4e}"),
                format!("{cost:.4e}"),
                format!("{e:.2}"),
            ]);
            if order == 1 {
                eff.0 = e;
            } else {
                eff.1 = e;
            }
        }
    }
    table.print();
    table
        .to_csv(std::path::Path::new(&format!(
            "results/strong_scaling_{name}.csv"
        )))
        .ok();
    println!();
    eff
}

fn weak_scaling(
    name: &str,
    meshes: &[(usize, Mesh<3>, Mesh<3>)], // (ranks, p1 mesh, p2 mesh)
) -> (f64, f64) {
    let mut table = Table::new(
        &format!("Fig 8/10 (weak, {name}): MATVEC execution time at fixed elements/rank"),
        &[
            "ranks",
            "order",
            "elements",
            "elems/rank",
            "dofs",
            "t_total",
            "efficiency",
        ],
    );
    let mut eff = (0.0, 0.0);
    for (order_idx, order_name) in ["linear", "quadratic"].iter().enumerate() {
        let mut base_time = None;
        // One machine model per series, calibrated on the largest mesh —
        // the hardware doesn't change between weak-scaling points.
        let cal_mesh = if order_idx == 0 {
            &meshes.last().unwrap().1
        } else {
            &meshes.last().unwrap().2
        };
        let (model, _) = calibrate(cal_mesh, 2);
        for (p, m1, m2) in meshes {
            let mesh = if order_idx == 0 { m1 } else { m2 };
            let a = analyze_partition(mesh, *p);
            let (total, _, _, _) = a.modeled_time(&model);
            let base = *base_time.get_or_insert(total);
            let e = base / total;
            table.row(&[
                p.to_string(),
                order_name.to_string(),
                mesh.num_elems().to_string(),
                (mesh.num_elems() / p).to_string(),
                mesh.num_dofs().to_string(),
                format!("{total:.4e}"),
                format!("{e:.2}"),
            ]);
            if order_idx == 0 {
                eff.0 = e;
            } else {
                eff.1 = e;
            }
        }
    }
    table.print();
    table
        .to_csv(std::path::Path::new(&format!(
            "results/weak_scaling_{name}.csv"
        )))
        .ok();
    println!();
    eff
}

/// Builds a weak-scaling series with truly fixed grain: rank count per mesh
/// is elements / grain, where the grain comes from the coarsest mesh at 7
/// ranks.
fn weak_meshes_fixed_grain(
    build: &dyn Fn(u8, u8, u64) -> Mesh<3>,
    levels: &[(u8, u8)],
) -> Vec<(usize, Mesh<3>, Mesh<3>)> {
    let mut out = Vec::new();
    let mut grain = 0usize;
    for (i, &(b, f)) in levels.iter().enumerate() {
        let m1 = build(b, f, 1);
        let m2 = build(b, f, 2);
        if i == 0 {
            grain = (m1.num_elems() / 7).max(1);
        }
        let p = (m1.num_elems() / grain).max(1);
        out.push((p, m1, m2));
    }
    out
}

/// Prints the artifact's efficiency curves as a Table 3-style summary.
fn print_artifact_summary(report: &ScalingReport) {
    let mut table = Table::new(
        &format!(
            "carve-scaling-report-v1 (PR {}): grain-normalized efficiency at P = {:?} \
             (paper Table 3 anchors: channel 0.81/0.90 strong, 0.82/0.86 weak; \
             sphere 0.90/0.96 strong, 0.74/0.83 weak)",
            report.pr, report.ranks
        ),
        &[
            "case",
            "order",
            "kind",
            "elems(top)",
            "eff@16K",
            "eff@28K",
            "floor",
        ],
    );
    for c in &report.cases {
        let eff_at = |ranks: u64| {
            c.points
                .iter()
                .find(|p| p.ranks == ranks)
                .map_or("-".to_string(), |p| format!("{:.2}", p.efficiency))
        };
        table.row(&[
            c.name.clone(),
            if c.order == 1 {
                "linear".into()
            } else {
                "quadratic".into()
            },
            c.kind.clone(),
            c.points.last().map_or(0, |p| p.elems).to_string(),
            eff_at(16384),
            eff_at(28672),
            format!("{:.2}", c.efficiency_floor),
        ]);
    }
    table.print();
}

fn run_artifact(path: &str) {
    let report = build_artifact(true, &mut |msg| eprintln!("[artifact] {msg}"));
    let text = scaling_report_to_json(&report).to_string_pretty();
    std::fs::write(path, text + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    print_artifact_summary(&report);
    println!("\nwrote {path}");
}

fn run_check(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("scaling-gate: cannot read baseline {path}: {e}");
        std::process::exit(1);
    });
    let baseline = Json::parse(&text)
        .map_err(|e| format!("{e:?}"))
        .and_then(|j| scaling_report_from_json(&j))
        .unwrap_or_else(|e| {
            eprintln!("scaling-gate: malformed baseline {path}: {e}");
            std::process::exit(1);
        });
    let drift = check_artifact(&baseline, &mut |msg| eprintln!("[check] {msg}"));
    print_artifact_summary(&baseline);
    if drift.is_empty() {
        println!(
            "\nscaling-gate OK: {path} matches source (per-rank structure, digests, \
             reference-model efficiencies)"
        );
        return;
    }
    eprintln!("\nscaling-gate FAILED: {} drift(s) vs {path}:", drift.len());
    for d in &drift {
        eprintln!("  - {d}");
    }
    eprintln!(
        "If the change is intentional, regenerate with \
         `repro_scaling --artifact {path}` and commit the result."
    );
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--artifact") => {
            let default = format!("SCALING_PR{SCALING_PR}.json");
            return run_artifact(args.get(1).map_or(default.as_str(), String::as_str));
        }
        Some("--check") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: repro_scaling --check <baseline.json>");
                std::process::exit(2);
            };
            return run_check(path);
        }
        Some(other) => {
            eprintln!("unknown option '{other}' (expected --artifact [path] | --check <path>)");
            std::process::exit(2);
        }
        None => {}
    }
    let large = std::env::var("CARVE_MESH").as_deref() == Ok("large");
    // --- Channel ---------------------------------------------------------
    let chan = ChannelWorkload::new();
    let (cb, cf) = if large { (6, 9) } else { (5, 8) };
    let chan_p1 = chan.mesh(cb, cf, 1);
    let chan_p2 = chan.mesh(cb, cf, 2);
    let ranks = [28usize, 56, 112, 224, 448, 896, 1792, 3584];
    let chan_strong = strong_scaling("channel", &chan_p1, &chan_p2, &ranks);
    // Weak: grow boundary refinement with rank count at fixed grain; rank
    // counts are derived from the element counts so elements/rank is
    // actually constant (the paper's setup).
    let weak_levels: &[(u8, u8)] = if large {
        &[(4, 7), (5, 8), (6, 9)]
    } else {
        &[(4, 6), (4, 7), (5, 8)]
    };
    let chan_weak_meshes = weak_meshes_fixed_grain(&|b, f, o| chan.mesh(b, f, o), weak_levels);
    let chan_weak = weak_scaling("channel", &chan_weak_meshes);

    // --- Sphere ----------------------------------------------------------
    let sph = SphereWorkload::new();
    let (sb, sf) = if large { (5, 8) } else { (4, 7) };
    let sph_p1 = sph.mesh(sb, sf, 1);
    let sph_p2 = sph.mesh(sb, sf, 2);
    let sph_strong = strong_scaling("sphere", &sph_p1, &sph_p2, &ranks);
    let sph_weak_levels: &[(u8, u8)] = if large {
        &[(4, 7), (5, 8), (6, 9)]
    } else {
        &[(3, 6), (4, 7), (5, 8)]
    };
    let sph_weak_meshes = weak_meshes_fixed_grain(&|b, f, o| sph.mesh(b, f, o), sph_weak_levels);
    let sph_weak = weak_scaling("sphere", &sph_weak_meshes);

    // --- Table 3 summary ---------------------------------------------------
    let mut t3 = Table::new(
        "Table 3: scaling-efficiency summary (paper: channel 0.81/0.90 strong, 0.82/0.86 weak; sphere 0.90/0.96 strong, 0.74/0.83 weak)",
        &["case", "order", "strong eff", "weak eff"],
    );
    t3.row(&[
        "channel".into(),
        "linear".into(),
        format!("{:.2}", chan_strong.0),
        format!("{:.2}", chan_weak.0),
    ]);
    t3.row(&[
        "channel".into(),
        "quadratic".into(),
        format!("{:.2}", chan_strong.1),
        format!("{:.2}", chan_weak.1),
    ]);
    t3.row(&[
        "sphere".into(),
        "linear".into(),
        format!("{:.2}", sph_strong.0),
        format!("{:.2}", sph_weak.0),
    ]);
    t3.row(&[
        "sphere".into(),
        "quadratic".into(),
        format!("{:.2}", sph_strong.1),
        format!("{:.2}", sph_weak.1),
    ]);
    t3.print();
    println!("\npaper shape check: quadratic scales better than linear (eta ∝ 1/(p+1));");
    println!("strong-scaling cost stays near-flat until elements/rank gets small.");
    t3.to_csv(std::path::Path::new("results/table3_summary.csv"))
        .ok();
}
