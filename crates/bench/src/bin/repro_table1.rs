//! Table 1 — condition number of the 2D Laplace operator on an elongated
//! channel: complete octree with stretched elements vs incomplete octree
//! with unit-aspect elements.
//!
//! Paper setup: channel of physical size `L × 1`, `L ∈ {1,2,4,8,16}`, grid
//! resolution fixed at 32 elements along the long axis. The complete-octree
//! route stretches every element to aspect `L`; the carved route keeps
//! square elements and simply has fewer of them (1089 vs 99 DOFs at L=16).
//! Condition numbers via the Hager–Higham 1-norm estimate (Matlab
//! `condest`).

use carve_core::{enumerate_nodes, resolve_slot, SlotRef};
use carve_fem::poisson::stiffness_matrix_anisotropic;
use carve_geom::{FullDomain, RetainBox, Subdomain};
use carve_io::Table;
use carve_la::{condest, CooBuilder};
use carve_sfc::Curve;

/// Assembles the Dirichlet-constrained 2D Laplacian over a mesh whose
/// elements get the given per-axis physical sizes (as a function of their
/// unit-cube size), then estimates cond₁.
fn channel_condition(
    domain: &dyn Subdomain<2>,
    level: u8,
    elem_h: &dyn Fn(f64) -> [f64; 2],
) -> (usize, f64) {
    let elems = carve_core::construct_uniform(domain, Curve::Morton, level);
    let nodes = enumerate_nodes(domain, &elems, 1);
    let n = nodes.len();
    let mut coo = CooBuilder::new(n);
    for e in &elems {
        let (_, h_u) = e.bounds_unit();
        let ke = stiffness_matrix_anisotropic::<2>(1, &elem_h(h_u));
        // Direct scatter (uniform grid: no hanging nodes).
        let slots: Vec<usize> = (0..4)
            .map(|lin| {
                let idx = carve_core::nodes::lattice_index::<2>(lin, 1);
                let c = carve_core::nodes::elem_node_coord(e, 1, &idx);
                match resolve_slot(&nodes, e, &c) {
                    SlotRef::Direct(i) => i,
                    SlotRef::Hanging(_) => unreachable!("uniform grid"),
                }
            })
            .collect();
        for i in 0..4 {
            for j in 0..4 {
                coo.add(slots[i], slots[j], ke[(i, j)]);
            }
        }
    }
    let mut a = coo.build();
    // Dirichlet on every boundary node (walls for the channel; square
    // perimeter for the full domain).
    for i in 0..n {
        if nodes.flags[i].is_any_boundary() {
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                a.vals[k] = if a.cols[k] as usize == i { 1.0 } else { 0.0 };
            }
        }
    }
    (n, condest(&a.to_dense()))
}

fn main() {
    let level: u8 = std::env::var("CARVE_LEVEL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5); // 32x32 base grid = 1089 DOFs, as in the paper
    let mut table = Table::new(
        "Table 1: condition number, stretched complete octree vs incomplete octree",
        &[
            "channel length",
            "complete DOFs",
            "complete cond",
            "incomplete DOFs",
            "incomplete cond",
        ],
    );
    for aspect in [1u32, 2, 4, 8, 16] {
        let l = aspect as f64;
        // Complete: full unit square, every element stretched to aspect L
        // (physical element L/32 x 1/32).
        let (n_c, cond_c) = channel_condition(&FullDomain, level, &|h_u| [h_u * l, h_u]);
        // Incomplete: carve the channel [0,1]x[0,1/L] out of the square,
        // scale the whole cube by L: square physical elements of size L/32.
        let channel = RetainBox::<2>::channel([1.0, 1.0 / l]);
        let (n_i, cond_i) = channel_condition(&channel, level, &|h_u| [h_u * l, h_u * l]);
        table.row(&[
            aspect.to_string(),
            n_c.to_string(),
            format!("{cond_c:.1}"),
            n_i.to_string(),
            format!("{cond_i:.1}"),
        ]);
    }
    table.print();
    println!("\npaper: complete cond grows 402.6 -> 10580.5 as length 1 -> 16;");
    println!("       incomplete cond *drops* 402.6 -> 5.0 with DOFs 1089 -> 99.");
    table
        .to_csv(std::path::Path::new("results/table1_conditioning.csv"))
        .ok();
}
