//! Table 2 — element and DOF overhead of *immersing* vs *carving*: the
//! ratios `f_elem` and `f_DOF` for a sphere and the dragon, base refinement
//! 4, object refinement swept.
//!
//! The paper sweeps object levels 11–14 at Frontera scale and reports
//! f_elem ≈ 1.75–1.92 and f_DOF ≈ 1.30–1.43; the ratios are governed by the
//! object's surface/volume and plateau with level, so a scaled-down sweep
//! (default 6–9, override with CARVE_LEVELS=a,b,...) reproduces the shape.

use carve_baseline::ImmersedMesh;
use carve_core::Mesh;
use carve_geom::dragon::{dragon_mesh, DragonParams};
use carve_geom::{CarvedSolids, Sphere, TriMeshSolid};
use carve_io::Table;
use carve_sfc::Curve;

fn levels() -> Vec<u8> {
    std::env::var("CARVE_LEVELS")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![6, 7, 8, 9])
}

fn sweep(name: &str, make_domain: &dyn Fn() -> CarvedSolids<3>, table: &mut Table) {
    for level in levels() {
        let domain = make_domain();
        let carved = Mesh::build(&domain, Curve::Hilbert, 4, level, 1);
        let domain2 = make_domain();
        let immersed = ImmersedMesh::build(&domain2, Curve::Hilbert, 4, level, 1);
        let f_elem = immersed.mesh.num_elems() as f64 / carved.num_elems() as f64;
        let f_dof = immersed.mesh.num_dofs() as f64 / carved.num_dofs() as f64;
        table.row(&[
            name.to_string(),
            level.to_string(),
            carved.num_elems().to_string(),
            immersed.mesh.num_elems().to_string(),
            format!("{f_elem:.2}"),
            format!("{f_dof:.2}"),
        ]);
    }
}

fn main() {
    let mut table = Table::new(
        "Table 2: immersed/carved ratios (paper: sphere f_elem 1.75-1.82, f_DOF 1.30-1.33; dragon 1.84-1.92 / 1.36-1.43)",
        &["object", "refine level", "carved elems", "immersed elems", "f_elem", "f_DOF"],
    );
    sweep(
        "sphere",
        &|| CarvedSolids::new(vec![Box::new(Sphere::new([0.5; 3], 0.25))]),
        &mut table,
    );
    sweep(
        "dragon",
        &|| {
            CarvedSolids::new(vec![Box::new(TriMeshSolid::new(dragon_mesh(
                &DragonParams::default(),
            )))])
        },
        &mut table,
    );
    table.print();
    println!("\npaper shape check: f_elem ~1.8-1.9 >> f_DOF ~1.3-1.4 (CG node sharing),");
    println!("dragon ratios above sphere ratios (higher surface/volume), both rising with level.");
    table
        .to_csv(std::path::Path::new(
            "results/table2_immersed_vs_carved.csv",
        ))
        .ok();
}
