//! Table 4 — comparison with the complete-octree (Dendro-style) framework
//! on the `128×4×1` microfluidic channel: mesh-generation time and
//! Navier–Stokes MATVEC time.
//!
//! Paper shape: ~20× faster mesh generation, ~5× faster MATVEC; Dendro runs
//! out of memory at base refinement ≥ 12 because the complete tree fills
//! the bounding cube with void octants. Here both pipelines run for real
//! (sequentially, with the per-rank times modeled from the measured
//! sequential cost and the replayed partition): the carved pipeline prunes
//! during construction, the baseline builds the complete immersed tree and
//! filters afterwards, and its partition balances void octants.

use carve_baseline::{complete_tree_partition_active_counts, Immersed};
use carve_bench::LongChannelWorkload;
use carve_core::Mesh;
use carve_geom::RegionLabel;
use carve_io::Table;
use carve_ns::{element_ns_system, VmsParams};
use carve_sfc::{Curve, Octant};
use std::time::Instant;

/// NS-like heavy leaf kernel (the elemental VMS operator is rebuilt per
/// element — the "leaf MATVEC dominates" regime of Table 4).
fn ns_leaf_cost(elems: &[Octant<3>], scale: f64) -> f64 {
    let params = VmsParams::new(1e-3, 0.1);
    let a = vec![0.1; 8 * 3];
    let uo = vec![0.0; 8 * 3];
    let f = |_: &[f64; 3]| [0.0; 3];
    let t0 = Instant::now();
    for e in elems {
        let (emin_u, h_u) = e.bounds_unit();
        let emin = [emin_u[0] * scale, emin_u[1] * scale, emin_u[2] * scale];
        let (ke, _) = element_ns_system::<3>(&params, &emin, h_u * scale, &a, &uo, &f);
        std::hint::black_box(&ke);
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let w = LongChannelWorkload::new();
    let configs: Vec<(u8, u8)> = std::env::var("CARVE_MESH")
        .ok()
        .filter(|s| s == "large")
        .map(|_| vec![(7u8, 9u8), (7, 10), (8, 9), (8, 10)])
        .unwrap_or_else(|| vec![(6, 8), (6, 9), (7, 8), (7, 9)]);
    let procs = [448usize, 896, 1792];

    let mut table = Table::new(
        "Table 4: mesh generation + NS MATVEC, Dendro-style complete octree vs carved (modeled at P ranks from measured sequential cost)",
        &[
            "base", "boundary", "elems (carved)", "P", "dendro mesh (s)", "dendro matvec (s)",
            "carve mesh (s)", "carve matvec (s)", "mesh speedup", "matvec speedup",
        ],
    );
    for (base, boundary) in configs {
        // --- carved pipeline: proactive pruning --------------------------
        let t0 = Instant::now();
        let carved = Mesh::build(&w.domain, Curve::Hilbert, base, boundary, 1);
        let t_mesh_carve = t0.elapsed().as_secs_f64();
        // --- Dendro-style: complete immersed tree, then filter ------------
        let t0 = Instant::now();
        let immersed = Immersed { object: &w.domain };
        let complete = {
            let adaptive =
                carve_core::construct_boundary_refined(&immersed, Curve::Hilbert, base, boundary);
            carve_core::construct_balanced(&immersed, Curve::Hilbert, &adaptive)
        };
        let labels: Vec<RegionLabel> = complete
            .iter()
            .map(|e| carve_core::classify_octant(&w.domain, e))
            .collect();
        let _filtered: Vec<&Octant<3>> = complete
            .iter()
            .zip(&labels)
            .filter(|(_, l)| **l != RegionLabel::Carved)
            .map(|(e, _)| e)
            .collect();
        // Complete-tree pipeline also enumerates nodes over the full tree.
        let _nodes = carve_core::enumerate_nodes(&immersed, &complete, 1);
        let t_mesh_dendro = t0.elapsed().as_secs_f64();

        // --- sequential NS leaf cost --------------------------------------
        let active: Vec<Octant<3>> = complete
            .iter()
            .zip(&labels)
            .filter(|(_, l)| **l != RegionLabel::Carved)
            .map(|(e, _)| *e)
            .collect();
        let t_active = ns_leaf_cost(&carved.elems, w.scale);
        let per_elem = t_active / carved.num_elems() as f64;

        for &p in &procs {
            // Carved: equal split of active elements.
            let carve_mv = (carved.num_elems() as f64 / p as f64) * per_elem;
            // Dendro: complete tree split equally; the busiest rank's active
            // count sets the time (void octants occupy partition slots).
            let counts = complete_tree_partition_active_counts(&labels, p);
            let max_active = counts.iter().copied().max().unwrap_or(0);
            let dendro_mv = max_active as f64 * per_elem;
            // Mesh generation: measured sequential, divided by P (both
            // pipelines parallelize construction); Dendro pays the complete
            // tree.
            let carve_mesh_p = t_mesh_carve / p as f64;
            let dendro_mesh_p = t_mesh_dendro / p as f64;
            table.row(&[
                base.to_string(),
                boundary.to_string(),
                carved.num_elems().to_string(),
                p.to_string(),
                format!("{dendro_mesh_p:.4}"),
                format!("{dendro_mv:.4}"),
                format!("{carve_mesh_p:.4}"),
                format!("{carve_mv:.4}"),
                format!("{:.1}x", dendro_mesh_p / carve_mesh_p),
                format!("{:.1}x", dendro_mv / carve_mv),
            ]);
        }
        println!(
            "base {base} boundary {boundary}: complete tree {} vs carved {} elements ({} active in complete)",
            complete.len(),
            carved.num_elems(),
            active.len()
        );
    }
    table.print();
    println!("\npaper shape check: mesh-generation speedup >> matvec speedup; matvec");
    println!("speedup driven by void-octant load imbalance; speedups grow with the");
    println!("carvable volume fraction (this channel fills ~1/32 of its bounding cube).");
    table
        .to_csv(std::path::Path::new("results/table4_dendro_comparison.csv"))
        .ok();
}
