//! Table 5 — classroom case: immersed (IMGA-style complete octree) vs
//! carved-out, mesh-construction and solve time, and the excess-element
//! fraction `f_excess`.
//!
//! Paper shape: ~50% more elements immersed, ~2.2× mesh-creation and ~2.8×
//! solve speedup from carving — smaller than the channel case because the
//! furniture/mannequins have high surface-to-volume ratio (little volume to
//! carve, expensive In/Out tests at every refinement pass).

use carve_baseline::ImmersedMesh;
use carve_core::Mesh;
use carve_geom::classroom::ClassroomScene;
use carve_io::Table;
use carve_ns::{FlowSolver, NodeBc, VmsParams};
use carve_sfc::Curve;
use std::time::Instant;

fn solve_time(mesh: &Mesh<3>, scene: &ClassroomScene, steps: usize) -> f64 {
    let scale = scene.scale;
    let room = carve_geom::classroom::ROOM;
    let bc = move |x: &[f64; 3], fl: carve_core::NodeFlags| -> NodeBc<3> {
        let phys = [x[0] * scale, x[1] * scale, x[2] * scale];
        let on_ceiling = (phys[2] - room[2]).abs() < 1e-6;
        if on_ceiling {
            // inlets blow downward; outlets fix pressure; rest of ceiling
            // is a wall.
            if scene_is_inlet(scene, &phys) {
                return NodeBc::Velocity([0.0, 0.0, -1.0]);
            }
            if scene_is_outlet(scene, &phys) {
                return NodeBc::Pressure(0.0);
            }
            return NodeBc::Velocity([0.0; 3]);
        }
        if fl.is_any_boundary() {
            return NodeBc::Velocity([0.0; 3]); // walls, furniture, people
        }
        NodeBc::Free
    };
    // Re = 1e5 on room height => nu = 1/1e5 (paper's setup).
    let params = VmsParams::new(1e-5, 0.2);
    let mut solver = FlowSolver::new(mesh, params, scale, &bc);
    solver.max_picard = 3;
    let zero = |_: &[f64; 3]| [0.0; 3];
    let t0 = Instant::now();
    for _ in 0..steps {
        solver.step(&zero);
    }
    t0.elapsed().as_secs_f64()
}

fn scene_is_inlet(scene: &ClassroomScene, phys: &[f64; 3]) -> bool {
    scene.is_inlet(phys)
}
fn scene_is_outlet(scene: &ClassroomScene, phys: &[f64; 3]) -> bool {
    scene.is_outlet(phys)
}

fn main() {
    // Paper configs: (base, exit, body) = (6,8,10), (6,9,10), (7,9,11);
    // scaled default (5,6,7), (5,6,8); override CARVE_MESH=large for
    // (6,7,9).
    let configs: Vec<(u8, u8)> = if std::env::var("CARVE_MESH").as_deref() == Ok("large") {
        vec![(6, 9)]
    } else {
        vec![(5, 6), (5, 7)]
    };
    let steps: usize = std::env::var("CARVE_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut table = Table::new(
        "Table 5: classroom — immersed vs carved (f_excess = immersed/carved elements)",
        &[
            "base",
            "body",
            "carved elems",
            "immersed elems",
            "f_excess",
            "imm mesh (s)",
            "carve mesh (s)",
            "imm solve (s)",
            "carve solve (s)",
            "mesh speedup",
            "solve speedup",
        ],
    );
    for (base, body) in configs {
        let scene = ClassroomScene::new(true, (1, 1));
        let t0 = Instant::now();
        let carved = Mesh::build(&scene.domain, Curve::Hilbert, base, body, 1);
        let t_carve_mesh = t0.elapsed().as_secs_f64();

        let scene2 = ClassroomScene::new(true, (1, 1));
        let t0 = Instant::now();
        let immersed = ImmersedMesh::build(&scene2.domain, Curve::Hilbert, base, body, 1);
        let t_imm_mesh = t0.elapsed().as_secs_f64();

        let f_excess = immersed.mesh.num_elems() as f64 / carved.num_elems() as f64;

        let t_carve_solve = solve_time(&carved, &scene, steps);
        let t_imm_solve = solve_time(&immersed.mesh, &scene2, steps);

        table.row(&[
            base.to_string(),
            body.to_string(),
            carved.num_elems().to_string(),
            immersed.mesh.num_elems().to_string(),
            format!("{f_excess:.2}"),
            format!("{t_imm_mesh:.2}"),
            format!("{t_carve_mesh:.2}"),
            format!("{t_imm_solve:.2}"),
            format!("{t_carve_solve:.2}"),
            format!("{:.1}x", t_imm_mesh / t_carve_mesh),
            format!("{:.1}x", t_imm_solve / t_carve_solve),
        ]);
    }
    table.print();
    println!("\npaper shape check: f_excess ~1.4-1.6 (high surface/volume objects),");
    println!("solve speedup > mesh speedup > 1, both smaller than the channel case.");
    table
        .to_csv(std::path::Path::new("results/table5_classroom.csv"))
        .ok();
}
