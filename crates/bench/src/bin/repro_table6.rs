//! Table 6 — classroom strong scaling: total-solve efficiency with rank
//! count, for two refinement configurations (paper: ~90% at 16× ranks).
//!
//! Built from the real classroom mesh + the partition-replay model with a
//! solve-dominated cost (the NS solve cost per element measured on this
//! machine dominates, so efficiency follows the element balance — which the
//! carved partition keeps near-perfect because it never sees void octants).

use carve_bench::{analyze_partition, MachineModel};
use carve_core::Mesh;
use carve_geom::classroom::ClassroomScene;
use carve_io::Table;
use carve_sfc::Curve;

fn main() {
    let configs: Vec<(u8, u8)> = if std::env::var("CARVE_MESH").as_deref() == Ok("large") {
        vec![(6, 9), (7, 9)]
    } else {
        vec![(5, 7), (5, 8)]
    };
    let procs = [224usize, 448, 896, 1792, 3584];
    let mut table = Table::new(
        "Table 6: classroom strong scaling (paper: eff 1.0 -> 0.90 over 16x ranks)",
        &[
            "base",
            "body",
            "elements",
            "ranks",
            "modeled time (s)",
            "efficiency",
        ],
    );
    // Solve-dominated cost: measured NS elemental-assembly cost dominates;
    // use a representative per-element solve cost with the replayed
    // partition structure.
    let model = MachineModel {
        t_leaf: 2e-5, // NS elemental assembly+solve share per element
        ..MachineModel::default()
    };
    for (base, body) in configs {
        let scene = ClassroomScene::new(true, (1, 1));
        let mesh = Mesh::build(&scene.domain, Curve::Hilbert, base, body, 1);
        let mut base_cost: Option<f64> = None;
        for &p in &procs {
            if p * 2 > mesh.num_elems() {
                continue;
            }
            let a = analyze_partition(&mesh, p);
            let (t, _, _, _) = a.modeled_time(&model);
            let cost = t * p as f64;
            let b = *base_cost.get_or_insert(cost);
            table.row(&[
                base.to_string(),
                body.to_string(),
                mesh.num_elems().to_string(),
                p.to_string(),
                format!("{t:.4e}"),
                format!("{:.2}", b / cost),
            ]);
        }
    }
    table.print();
    println!("\npaper shape check: efficiency stays ~0.9 over a 16x rank increase");
    println!("because the carved partition balances *active* elements exactly.");
    table
        .to_csv(std::path::Path::new("results/table6_classroom_scaling.csv"))
        .ok();
}
