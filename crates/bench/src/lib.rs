//! Reproduction harness: workload builders for every experiment in the
//! paper's evaluation, plus the partition-replay performance model that
//! stands in for the 448-28K-core Frontera runs (see DESIGN.md §2).
//!
//! Everything algorithmic is *real* — meshes, partitions, ghost structure,
//! per-rank work counts come from the actual `carve-core` algorithms; only
//! wall-clock at scale is modeled, with kernel unit costs calibrated by
//! measuring the real single-rank kernels on this machine and an α-β model
//! on the exact communication volumes.

pub mod model;
pub mod scaling;
pub mod serve;
pub mod smoke;
pub mod workloads;

pub use model::{
    analyze_partition, calibrate, calibrate_collectives, copy_estimate, MachineModel,
    PartitionAnalysis, RankLoad,
};
pub use scaling::{
    artifact_specs, build_artifact, build_report_from_specs, check_artifact, digest_loads,
    CaseSpec, SCALING_PR, SCALING_RANKS,
};
pub use serve::{gate_failures, run_replay, HIT_SPEEDUP_FLOOR, SERVE_PR, SERVE_RANKS};
pub use smoke::{compare_reports, run_smoke, same_machine, strip_secs};
pub use workloads::*;
