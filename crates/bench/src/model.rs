//! Partition-replay performance model.
//!
//! The paper's scaling figures ran on up to 28K Frontera cores. On one box
//! we reproduce them by splitting the model into (a) *exact structure* —
//! per-rank element counts, node ownership, ghost sets, and traversal copy
//! counts computed by the real partitioning and node-resolution algorithms —
//! and (b) *calibrated unit costs* — seconds per leaf kernel and per bucket
//! copy measured from the real traversal MATVEC on this machine, plus an
//! α–β communication model applied to the exact ghost byte counts.

use carve_core::nodes::{elem_node_coord, lattice_index, nodes_per_elem};
use carve_core::{resolve_slot, traversal_matvec, Mesh, SlotRef};
use carve_fem::ElementCache;
use carve_sfc::{sfc_cmp, Octant};
use std::cmp::Ordering;

/// Calibrated machine constants.
#[derive(Clone, Copy, Debug)]
pub struct MachineModel {
    /// Seconds per leaf elemental apply.
    pub t_leaf: f64,
    /// Seconds per (node × level) bucket copy in top-down + bottom-up.
    pub t_copy: f64,
    /// Network latency per communication round (α).
    pub alpha: f64,
    /// Seconds per byte of ghost exchange (β = 1/bandwidth).
    pub beta: f64,
}

impl Default for MachineModel {
    fn default() -> Self {
        // Representative HPC interconnect: 1 µs latency, 10 GB/s per rank.
        Self {
            t_leaf: 1e-6,
            t_copy: 5e-9,
            alpha: 1e-6,
            beta: 1e-10,
        }
    }
}

/// Analytic copy-count estimator used consistently by calibration and
/// replay: every leaf's `npe` nodes are bucketed once per tree level on the
/// path from the root.
pub fn copy_estimate<const DIM: usize>(elems: &[Octant<DIM>], order: u64) -> usize {
    let npe = nodes_per_elem::<DIM>(order);
    elems.iter().map(|e| npe * (e.level as usize + 1)).sum()
}

/// Measures `t_leaf` and `t_copy` by running the real traversal MATVEC with
/// the sum-factorized Poisson kernel on the given mesh (α and β keep their
/// modeled defaults). Returns the model and the measured per-MATVEC time.
pub fn calibrate<const DIM: usize>(mesh: &Mesh<DIM>, reps: usize) -> (MachineModel, f64) {
    let n = mesh.num_dofs();
    let p = mesh.order as usize;
    let mut cache = ElementCache::<DIM>::new(p);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut y = vec![0.0; n];
    // Phase timings come from the observability layer; the thread-local
    // snapshot diff is immune to concurrent activity on other threads.
    let _e = carve_obs::force_enabled();
    let before = carve_obs::thread_snapshot();
    for _ in 0..reps.max(1) {
        y.iter_mut().for_each(|v| *v = 0.0);
        traversal_matvec(
            &mesh.elems,
            0..mesh.elems.len(),
            mesh.curve,
            &mesh.nodes,
            &x,
            &mut y,
            &mut |e: &Octant<DIM>, u: &[f64], v: &mut [f64]| {
                let h = e.bounds_unit().1;
                cache.apply_stiffness_tensor(h, u, v);
            },
        );
    }
    let d = carve_obs::thread_snapshot().diff(&before);
    let phase = |name: &str| d.phases.get(name).cloned().unwrap_or_default();
    let (leaf, top_down, bottom_up) = (
        phase("matvec/leaf"),
        phase("matvec/top_down"),
        phase("matvec/bottom_up"),
    );
    let leaves = leaf.counters.get("leaves").copied().unwrap_or(0);
    let wall = phase("matvec").secs / reps.max(1) as f64;
    let copies = copy_estimate(&mesh.elems, mesh.order) * reps.max(1);
    let model = MachineModel {
        t_leaf: leaf.secs / leaves.max(1) as f64,
        t_copy: (top_down.secs + bottom_up.secs) / copies.max(1) as f64,
        ..MachineModel::default()
    };
    (model, wall)
}

/// Exact per-rank structure of one partition.
#[derive(Clone, Copy, Debug, Default)]
pub struct RankLoad {
    pub elems: usize,
    pub owned_nodes: usize,
    pub ghost_nodes: usize,
    /// Traversal copy-count estimate for this rank's slice.
    pub copies: usize,
    /// Bytes received per scalar ghost-read.
    pub ghost_bytes: u64,
}

/// Full analysis of an equal-count SFC partition into `nparts` ranks.
#[derive(Clone, Debug)]
pub struct PartitionAnalysis {
    pub loads: Vec<RankLoad>,
    pub total_dofs: usize,
}

impl PartitionAnalysis {
    /// η = N_G/N_L statistics over ranks: (mean ghost, std ghost, mean η).
    pub fn ghost_stats(&self) -> (f64, f64, f64) {
        let n = self.loads.len() as f64;
        let mean_g = self.loads.iter().map(|l| l.ghost_nodes as f64).sum::<f64>() / n;
        let var = self
            .loads
            .iter()
            .map(|l| (l.ghost_nodes as f64 - mean_g).powi(2))
            .sum::<f64>()
            / n;
        let mean_eta = self
            .loads
            .iter()
            .map(|l| {
                if l.owned_nodes == 0 {
                    0.0
                } else {
                    l.ghost_nodes as f64 / l.owned_nodes as f64
                }
            })
            .sum::<f64>()
            / n;
        (mean_g, var.sqrt(), mean_eta)
    }

    /// Modeled MATVEC wall time and its breakdown
    /// `(total, leaf, traversal, comm)` under the machine model.
    pub fn modeled_time(&self, m: &MachineModel) -> (f64, f64, f64, f64) {
        let p = self.loads.len();
        let leaf = self
            .loads
            .iter()
            .map(|l| l.elems as f64 * m.t_leaf)
            .fold(0.0, f64::max);
        let trav = self
            .loads
            .iter()
            .map(|l| l.copies as f64 * m.t_copy)
            .fold(0.0, f64::max);
        let max_bytes = self
            .loads
            .iter()
            .map(|l| l.ghost_bytes as f64)
            .fold(0.0, f64::max);
        // Two ghost exchanges per MATVEC (read x, accumulate y).
        let comm = 2.0 * (m.alpha * (p as f64).log2().max(1.0) + m.beta * max_bytes);
        (leaf + trav + comm, leaf, trav, comm)
    }
}

/// Replays the equal-count SFC partition of a mesh over `nparts` ranks and
/// computes each rank's exact element/node/ghost structure, using the same
/// node-ownership rule as the distributed implementation (natural SFC bin
/// when the bin rank is a user, else minimum user).
pub fn analyze_partition<const DIM: usize>(mesh: &Mesh<DIM>, nparts: usize) -> PartitionAnalysis {
    let ne = mesh.num_elems();
    let nn = mesh.num_dofs();
    let p = mesh.order;
    let npe = nodes_per_elem::<DIM>(p);
    let bounds: Vec<usize> = (0..=nparts).map(|r| r * ne / nparts).collect();
    // Users per node: (node, rank) pairs.
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(ne * npe);
    for r in 0..nparts {
        for e in &mesh.elems[bounds[r]..bounds[r + 1]] {
            for lin in 0..npe {
                let idx = lattice_index::<DIM>(lin, p);
                let c = elem_node_coord(e, p, &idx);
                match resolve_slot(&mesh.nodes, e, &c) {
                    SlotRef::Direct(i) => pairs.push((i as u32, r as u32)),
                    SlotRef::Hanging(st) => {
                        for (i, _) in st {
                            pairs.push((i as u32, r as u32));
                        }
                    }
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    // Natural bin per node: rank whose element range contains the node's
    // containing finest cell (by splitter comparison).
    let splitters: Vec<Octant<DIM>> = (0..nparts)
        .map(|r| mesh.elems[bounds[r].min(ne - 1)])
        .collect();
    let natural_bin = |node: usize| -> usize {
        let c = &mesh.nodes.coords[node];
        let mut pt = [0u64; DIM];
        for k in 0..DIM {
            pt[k] = c[k] / p;
        }
        let cell = carve_sfc::morton::finest_cell_of_point(&pt);
        let mut bin = 0;
        for (r, s) in splitters.iter().enumerate() {
            if sfc_cmp(mesh.curve, s, &cell) != Ordering::Greater {
                bin = r;
            } else {
                break;
            }
        }
        bin
    };
    let mut loads = vec![RankLoad::default(); nparts];
    for r in 0..nparts {
        loads[r].elems = bounds[r + 1] - bounds[r];
        loads[r].copies = copy_estimate(&mesh.elems[bounds[r]..bounds[r + 1]], p);
    }
    // Walk user groups per node.
    let mut i = 0;
    while i < pairs.len() {
        let node = pairs[i].0 as usize;
        let mut j = i;
        while j < pairs.len() && pairs[j].0 as usize == node {
            j += 1;
        }
        let users = &pairs[i..j];
        let bin = natural_bin(node) as u32;
        let owner = if users.iter().any(|&(_, r)| r == bin) {
            bin
        } else {
            users.iter().map(|&(_, r)| r).min().expect("nonempty")
        };
        for &(_, r) in users {
            if r == owner {
                loads[r as usize].owned_nodes += 1;
            } else {
                loads[r as usize].ghost_nodes += 1;
                loads[r as usize].ghost_bytes += 8;
            }
        }
        i = j;
    }
    PartitionAnalysis {
        loads,
        total_dofs: nn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_comm::run_spmd;
    use carve_core::DistMesh;
    use carve_geom::{CarvedSolids, Sphere};
    use carve_sfc::Curve;

    fn disk_domain() -> CarvedSolids<2> {
        CarvedSolids::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))])
    }

    #[test]
    fn replay_conserves_ownership() {
        let domain = disk_domain();
        let mesh = Mesh::build(&domain, Curve::Hilbert, 3, 5, 1);
        for parts in [1usize, 2, 4, 7] {
            let a = analyze_partition(&mesh, parts);
            let owned: usize = a.loads.iter().map(|l| l.owned_nodes).sum();
            assert_eq!(owned, mesh.num_dofs(), "parts={parts}");
            let elems: usize = a.loads.iter().map(|l| l.elems).sum();
            assert_eq!(elems, mesh.num_elems());
        }
    }

    #[test]
    fn replay_matches_threaded_distmesh() {
        // The replay analysis must reproduce the ghost structure of the
        // real threaded DistMesh (same partition rule, same ownership
        // election).
        let p = 3usize;
        let stats: Vec<(usize, usize)> = run_spmd(p, |c| {
            let domain = disk_domain();
            let m = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 5, 1);
            let s = m.ghost_stats();
            (s.owned_nodes, s.ghost_nodes)
        });
        let domain = disk_domain();
        let mesh = Mesh::build(&domain, Curve::Hilbert, 3, 5, 1);
        let a = analyze_partition(&mesh, p);
        for (r, s) in stats.iter().enumerate().take(p) {
            assert_eq!(
                (a.loads[r].owned_nodes, a.loads[r].ghost_nodes),
                *s,
                "rank {r}"
            );
        }
    }

    #[test]
    fn eta_decreases_with_order() {
        // Fig. 11's law: η ∝ 1/(p+1).
        let domain = disk_domain();
        let m1 = Mesh::build(&domain, Curve::Hilbert, 4, 5, 1);
        let m2 = Mesh::build(&domain, Curve::Hilbert, 4, 5, 2);
        let a1 = analyze_partition(&m1, 8);
        let a2 = analyze_partition(&m2, 8);
        let (_, _, eta1) = a1.ghost_stats();
        let (_, _, eta2) = a2.ghost_stats();
        assert!(eta2 < eta1, "eta1={eta1} eta2={eta2}");
        // Ratio should be near (p1+1)/(p2+1) = 2/3; allow wide band.
        let ratio = eta2 / eta1;
        assert!(ratio > 0.4 && ratio < 0.95, "ratio {ratio}");
    }

    #[test]
    fn calibration_produces_positive_costs() {
        let domain = disk_domain();
        let mesh = Mesh::build(&domain, Curve::Hilbert, 4, 5, 1);
        let (m, wall) = calibrate(&mesh, 2);
        assert!(m.t_leaf > 0.0 && m.t_leaf < 1e-2);
        assert!(m.t_copy > 0.0);
        assert!(wall > 0.0);
    }

    #[test]
    fn modeled_time_decreases_then_flattens_with_ranks() {
        let domain = disk_domain();
        let mesh = Mesh::build(&domain, Curve::Hilbert, 4, 6, 1);
        let model = MachineModel::default();
        let t1 = analyze_partition(&mesh, 1).modeled_time(&model).0;
        let t8 = analyze_partition(&mesh, 8).modeled_time(&model).0;
        let t64 = analyze_partition(&mesh, 64).modeled_time(&model).0;
        assert!(t8 < t1, "speedup to 8 ranks: {t1} -> {t8}");
        assert!(t64 <= t8 * 1.05, "no catastrophic slowdown: {t8} -> {t64}");
        // Parallel cost (t * P) grows once comm dominates.
        assert!(t64 * 64.0 > t1 * 0.9);
    }
}
