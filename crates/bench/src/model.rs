//! Partition-replay performance model.
//!
//! The paper's scaling figures ran on up to 28K Frontera cores. On one box
//! we reproduce them by splitting the model into (a) *exact structure* —
//! per-rank element counts, node ownership, ghost sets, and traversal copy
//! counts computed by the real partitioning and node-resolution algorithms —
//! and (b) *calibrated unit costs* — seconds per leaf kernel and per bucket
//! copy measured from the real traversal MATVEC on this machine, plus an
//! α–β communication model applied to the exact ghost byte counts.

use carve_core::nodes::{elem_node_coord, lattice_index, nodes_per_elem};
use carve_core::{resolve_slot, traversal_matvec, Mesh, SlotRef};
use carve_fem::ElementCache;
use carve_sfc::{sfc_cmp, Octant};
use std::cmp::Ordering;

/// Calibrated machine constants (the α-β-γ model of DESIGN.md §2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineModel {
    /// Seconds per leaf elemental apply.
    pub t_leaf: f64,
    /// Seconds per (node × level) bucket copy in top-down + bottom-up.
    pub t_copy: f64,
    /// Network latency per collective round (α): collectives cost
    /// α·ceil(log2 P), matching the tree-structured implementations in
    /// `carve-comm`.
    pub alpha: f64,
    /// Seconds per byte of ghost exchange (β = 1/bandwidth).
    pub beta: f64,
    /// Per-neighbor message overhead (γ): each ghost-exchange lane costs a
    /// fixed software/injection overhead on top of its β·bytes volume.
    pub gamma: f64,
}

impl Default for MachineModel {
    fn default() -> Self {
        // Representative HPC interconnect: 1 µs latency, 10 GB/s per rank,
        // 0.5 µs per-message injection overhead.
        Self {
            t_leaf: 1e-6,
            t_copy: 5e-9,
            alpha: 1e-6,
            beta: 1e-10,
            gamma: 5e-7,
        }
    }
}

impl MachineModel {
    /// The pinned reference model used for the committed scaling artifact
    /// (`SCALING_PR<k>.json`): machine-independent, so the CI gate can
    /// compare efficiencies exactly across boxes. The calibrated model is
    /// recorded alongside for information only.
    pub fn reference() -> Self {
        Self::default()
    }
}

/// Analytic copy-count estimator used consistently by calibration and
/// replay: every leaf's `npe` nodes are bucketed once per tree level on the
/// path from the root.
pub fn copy_estimate<const DIM: usize>(elems: &[Octant<DIM>], order: u64) -> usize {
    let npe = nodes_per_elem::<DIM>(order);
    elems.iter().map(|e| npe * (e.level as usize + 1)).sum()
}

/// Measures `t_leaf` and `t_copy` by running the real traversal MATVEC with
/// the sum-factorized Poisson kernel on the given mesh (α and β keep their
/// modeled defaults). Returns the model and the measured per-MATVEC time.
pub fn calibrate<const DIM: usize>(mesh: &Mesh<DIM>, reps: usize) -> (MachineModel, f64) {
    let n = mesh.num_dofs();
    let p = mesh.order as usize;
    let mut cache = ElementCache::<DIM>::new(p);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut y = vec![0.0; n];
    // Phase timings come from the observability layer; the thread-local
    // snapshot diff is immune to concurrent activity on other threads.
    let _e = carve_obs::force_enabled();
    let before = carve_obs::thread_snapshot();
    for _ in 0..reps.max(1) {
        y.iter_mut().for_each(|v| *v = 0.0);
        traversal_matvec(
            &mesh.elems,
            0..mesh.elems.len(),
            mesh.curve,
            &mesh.nodes,
            &x,
            &mut y,
            &mut |e: &Octant<DIM>, u: &[f64], v: &mut [f64]| {
                let h = e.bounds_unit().1;
                cache.apply_stiffness_tensor(h, u, v);
            },
        );
    }
    let d = carve_obs::thread_snapshot().diff(&before);
    let phase = |name: &str| d.phases.get(name).cloned().unwrap_or_default();
    let (leaf, top_down, bottom_up) = (
        phase("matvec/leaf"),
        phase("matvec/top_down"),
        phase("matvec/bottom_up"),
    );
    let leaves = leaf.counters.get("leaves").copied().unwrap_or(0);
    let wall = phase("matvec").secs / reps.max(1) as f64;
    let copies = copy_estimate(&mesh.elems, mesh.order) * reps.max(1);
    let model = MachineModel {
        t_leaf: leaf.secs / leaves.max(1) as f64,
        t_copy: (top_down.secs + bottom_up.secs) / copies.max(1) as f64,
        ..MachineModel::default()
    };
    (model, wall)
}

/// Exact per-rank structure of one partition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankLoad {
    pub elems: usize,
    pub owned_nodes: usize,
    pub ghost_nodes: usize,
    /// Traversal copy-count estimate for this rank's slice.
    pub copies: usize,
    /// Bytes received per scalar ghost-read.
    pub ghost_bytes: u64,
    /// Bytes sent per scalar ghost-read (owned values that other ranks
    /// ghost).
    pub ghost_send_bytes: u64,
    /// Ranks this rank exchanges ghost data with (send or receive).
    pub neighbors: usize,
}

/// Full analysis of an equal-count SFC partition into `nparts` ranks.
#[derive(Clone, Debug)]
pub struct PartitionAnalysis {
    pub loads: Vec<RankLoad>,
    pub total_dofs: usize,
}

impl PartitionAnalysis {
    /// η = N_G/N_L statistics over ranks: (mean ghost, std ghost, mean η).
    pub fn ghost_stats(&self) -> (f64, f64, f64) {
        let n = self.loads.len() as f64;
        let mean_g = self.loads.iter().map(|l| l.ghost_nodes as f64).sum::<f64>() / n;
        let var = self
            .loads
            .iter()
            .map(|l| (l.ghost_nodes as f64 - mean_g).powi(2))
            .sum::<f64>()
            / n;
        let mean_eta = self
            .loads
            .iter()
            .map(|l| {
                if l.owned_nodes == 0 {
                    0.0
                } else {
                    l.ghost_nodes as f64 / l.owned_nodes as f64
                }
            })
            .sum::<f64>()
            / n;
        (mean_g, var.sqrt(), mean_eta)
    }

    /// Modeled MATVEC wall time and its breakdown
    /// `(total, leaf, traversal, comm)` under the α-β-γ machine model.
    pub fn modeled_time(&self, m: &MachineModel) -> (f64, f64, f64, f64) {
        let p = self.loads.len();
        let leaf = self
            .loads
            .iter()
            .map(|l| l.elems as f64 * m.t_leaf)
            .fold(0.0, f64::max);
        let trav = self
            .loads
            .iter()
            .map(|l| l.copies as f64 * m.t_copy)
            .fold(0.0, f64::max);
        let max_bytes = self
            .loads
            .iter()
            .map(|l| l.ghost_bytes.max(l.ghost_send_bytes) as f64)
            .fold(0.0, f64::max);
        let max_neighbors = self
            .loads
            .iter()
            .map(|l| l.neighbors as f64)
            .fold(0.0, f64::max);
        // ceil(log2 P) collective rounds, matching the tree collectives.
        let hops = if p > 1 {
            (usize::BITS - (p - 1).leading_zeros()) as f64
        } else {
            0.0
        };
        // Two ghost exchanges per MATVEC (read x, accumulate y): each pays
        // the collective latency, a per-neighbor-lane overhead, and the
        // widest rank's wire volume.
        let comm = 2.0 * (m.alpha * hops + m.gamma * max_neighbors + m.beta * max_bytes);
        (leaf + trav + comm, leaf, trav, comm)
    }
}

/// Replays the equal-count SFC partition of a mesh over `nparts` ranks and
/// computes each rank's exact element/node/ghost structure, using the same
/// node-ownership rule as the distributed implementation (natural SFC bin
/// when the bin rank is a user, else minimum user).
pub fn analyze_partition<const DIM: usize>(mesh: &Mesh<DIM>, nparts: usize) -> PartitionAnalysis {
    let ne = mesh.num_elems();
    let nn = mesh.num_dofs();
    let p = mesh.order;
    let npe = nodes_per_elem::<DIM>(p);
    let bounds: Vec<usize> = (0..=nparts).map(|r| r * ne / nparts).collect();
    // Users per node: (node, rank) pairs.
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(ne * npe);
    for r in 0..nparts {
        for e in &mesh.elems[bounds[r]..bounds[r + 1]] {
            for lin in 0..npe {
                let idx = lattice_index::<DIM>(lin, p);
                let c = elem_node_coord(e, p, &idx);
                match resolve_slot(&mesh.nodes, e, &c) {
                    SlotRef::Direct(i) => pairs.push((i as u32, r as u32)),
                    SlotRef::Hanging(st) => {
                        for (i, _) in st {
                            pairs.push((i as u32, r as u32));
                        }
                    }
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    // Natural bin per node: rank whose element range contains the node's
    // containing finest cell. The splitters are SFC-sorted (they are the
    // first elements of consecutive ranges of the sorted element array), so
    // the bin is a binary search — O(N log P) overall, which is what makes
    // the 16K/28K-rank replays tractable.
    let splitters: Vec<Octant<DIM>> = (0..nparts)
        .map(|r| mesh.elems[bounds[r].min(ne - 1)])
        .collect();
    let natural_bin = |node: usize| -> usize {
        let c = &mesh.nodes.coords[node];
        let mut pt = [0u64; DIM];
        for k in 0..DIM {
            pt[k] = c[k] / p;
        }
        let cell = carve_sfc::morton::finest_cell_of_point(&pt);
        // First splitter strictly greater than the cell; the bin is the
        // rank before it (rank 0 when every splitter compares greater).
        let idx = splitters.partition_point(|s| sfc_cmp(mesh.curve, s, &cell) != Ordering::Greater);
        idx.saturating_sub(1)
    };
    let mut loads = vec![RankLoad::default(); nparts];
    for r in 0..nparts {
        loads[r].elems = bounds[r + 1] - bounds[r];
        loads[r].copies = copy_estimate(&mesh.elems[bounds[r]..bounds[r + 1]], p);
    }
    // Walk user groups per node; collect owner<->ghost-user adjacency for
    // the per-rank neighbor counts.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < pairs.len() {
        let node = pairs[i].0 as usize;
        let mut j = i;
        while j < pairs.len() && pairs[j].0 as usize == node {
            j += 1;
        }
        let users = &pairs[i..j];
        let bin = natural_bin(node) as u32;
        let owner = if users.iter().any(|&(_, r)| r == bin) {
            bin
        } else {
            users.iter().map(|&(_, r)| r).min().expect("nonempty")
        };
        for &(_, r) in users {
            if r == owner {
                loads[r as usize].owned_nodes += 1;
            } else {
                loads[r as usize].ghost_nodes += 1;
                loads[r as usize].ghost_bytes += 8;
                loads[owner as usize].ghost_send_bytes += 8;
                edges.push((owner, r));
                edges.push((r, owner));
            }
        }
        i = j;
    }
    edges.sort_unstable();
    edges.dedup();
    for chunk in edges.chunk_by(|a, b| a.0 == b.0) {
        loads[chunk[0].0 as usize].neighbors = chunk.len();
    }
    PartitionAnalysis {
        loads,
        total_dofs: nn,
    }
}

/// Measures α (per collective hop) and γ (per neighbor message) from the
/// threaded-mode runtime itself: the tree-structured collectives give
/// ceil(log2 P) rounds per barrier, and sparse `all_to_allv` lanes give a
/// per-message cost, so the replay model's log/lane terms can be calibrated
/// against real (if intra-box) transport overheads. β keeps its modeled
/// default — channel throughput on one box says nothing about a network.
pub fn calibrate_collectives() -> (f64, f64) {
    const REPS: u32 = 64;
    let mut alpha_samples = Vec::new();
    let mut gamma_samples = Vec::new();
    for parts in [2usize, 4, 8] {
        let hops = (usize::BITS - (parts - 1).leading_zeros()) as f64;
        let timings = carve_comm::run_spmd(parts, |c| {
            c.barrier();
            let t0 = std::time::Instant::now();
            for _ in 0..REPS {
                c.barrier();
            }
            let barrier = t0.elapsed().as_secs_f64() / f64::from(REPS);
            // Ring exchange: ceil(log2 P) bitmap messages + 2 data lanes.
            let t0 = std::time::Instant::now();
            for _ in 0..REPS {
                let mut sends: Vec<Vec<f64>> = vec![Vec::new(); c.size()];
                sends[(c.rank() + 1) % c.size()] = vec![1.0];
                sends[(c.rank() + c.size() - 1) % c.size()] = vec![2.0];
                let _ = c.all_to_allv(sends);
            }
            let ring = t0.elapsed().as_secs_f64() / f64::from(REPS);
            (barrier, ring)
        });
        let barrier = timings.iter().map(|t| t.0).fold(0.0, f64::max);
        let ring = timings.iter().map(|t| t.1).fold(0.0, f64::max);
        alpha_samples.push(barrier / hops);
        // The ring round repeats the barrier's log-structure for its bitmap
        // phase; the two extra neighbor lanes carry the γ signal.
        gamma_samples.push((ring - barrier).max(0.0) / 2.0);
    }
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    (mean(&alpha_samples), mean(&gamma_samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_comm::run_spmd;
    use carve_core::DistMesh;
    use carve_geom::{CarvedSolids, Sphere};
    use carve_sfc::Curve;

    fn disk_domain() -> CarvedSolids<2> {
        CarvedSolids::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))])
    }

    #[test]
    fn replay_conserves_ownership() {
        let domain = disk_domain();
        let mesh = Mesh::build(&domain, Curve::Hilbert, 3, 5, 1);
        for parts in [1usize, 2, 4, 7] {
            let a = analyze_partition(&mesh, parts);
            let owned: usize = a.loads.iter().map(|l| l.owned_nodes).sum();
            assert_eq!(owned, mesh.num_dofs(), "parts={parts}");
            let elems: usize = a.loads.iter().map(|l| l.elems).sum();
            assert_eq!(elems, mesh.num_elems());
        }
    }

    #[test]
    fn replay_matches_threaded_distmesh() {
        // The replay analysis must reproduce the ghost structure of the
        // real threaded DistMesh (same partition rule, same ownership
        // election).
        let p = 3usize;
        let stats: Vec<(usize, usize)> = run_spmd(p, |c| {
            let domain = disk_domain();
            let m = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 5, 1);
            let s = m.ghost_stats();
            (s.owned_nodes, s.ghost_nodes)
        });
        let domain = disk_domain();
        let mesh = Mesh::build(&domain, Curve::Hilbert, 3, 5, 1);
        let a = analyze_partition(&mesh, p);
        for (r, s) in stats.iter().enumerate().take(p) {
            assert_eq!(
                (a.loads[r].owned_nodes, a.loads[r].ghost_nodes),
                *s,
                "rank {r}"
            );
        }
    }

    #[test]
    fn replay_counts_match_runtime_comm_stats() {
        // The scaling artifact stands on analyze_partition's per-rank
        // element/node/ghost-byte counts being *exact*, not modeled: at
        // small P they must equal what the threaded runtime actually
        // observes — element and node counts from DistMesh, wire bytes from
        // CommStats around a real ghost-read, neighbor counts from the
        // exchange lanes.
        for p in [2usize, 4, 8] {
            let observed = run_spmd(p, |c| {
                let domain = disk_domain();
                let m = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 5, 1);
                let s = m.ghost_stats();
                let mut vals = vec![c.rank() as f64; s.owned_nodes + s.ghost_nodes];
                let before = c.stats();
                m.ghost_read(c, &mut vals);
                let after = c.stats();
                (
                    m.num_owned_elems(),
                    s.owned_nodes,
                    s.ghost_nodes,
                    s.neighbors,
                    after.bytes_sent - before.bytes_sent,
                    after.bytes_received - before.bytes_received,
                )
            });
            let domain = disk_domain();
            let mesh = Mesh::build(&domain, Curve::Hilbert, 3, 5, 1);
            let a = analyze_partition(&mesh, p);
            for (r, &(elems, owned, ghost, neighbors, sent, received)) in
                observed.iter().enumerate()
            {
                let l = &a.loads[r];
                assert_eq!(l.elems, elems, "p={p} rank {r} elems");
                assert_eq!(l.owned_nodes, owned, "p={p} rank {r} owned nodes");
                assert_eq!(l.ghost_nodes, ghost, "p={p} rank {r} ghost nodes");
                assert_eq!(l.neighbors, neighbors, "p={p} rank {r} neighbors");
                assert_eq!(l.ghost_send_bytes, sent, "p={p} rank {r} sent bytes");
                assert_eq!(l.ghost_bytes, received, "p={p} rank {r} received bytes");
            }
        }
    }

    #[test]
    fn collective_calibration_produces_positive_costs() {
        let (alpha, gamma) = calibrate_collectives();
        assert!(alpha > 0.0 && alpha < 1.0, "alpha {alpha}");
        assert!((0.0..1.0).contains(&gamma), "gamma {gamma}");
    }

    #[test]
    fn eta_decreases_with_order() {
        // Fig. 11's law: η ∝ 1/(p+1).
        let domain = disk_domain();
        let m1 = Mesh::build(&domain, Curve::Hilbert, 4, 5, 1);
        let m2 = Mesh::build(&domain, Curve::Hilbert, 4, 5, 2);
        let a1 = analyze_partition(&m1, 8);
        let a2 = analyze_partition(&m2, 8);
        let (_, _, eta1) = a1.ghost_stats();
        let (_, _, eta2) = a2.ghost_stats();
        assert!(eta2 < eta1, "eta1={eta1} eta2={eta2}");
        // Ratio should be near (p1+1)/(p2+1) = 2/3; allow wide band.
        let ratio = eta2 / eta1;
        assert!(ratio > 0.4 && ratio < 0.95, "ratio {ratio}");
    }

    #[test]
    fn calibration_produces_positive_costs() {
        let domain = disk_domain();
        let mesh = Mesh::build(&domain, Curve::Hilbert, 4, 5, 1);
        let (m, wall) = calibrate(&mesh, 2);
        assert!(m.t_leaf > 0.0 && m.t_leaf < 1e-2);
        assert!(m.t_copy > 0.0);
        assert!(wall > 0.0);
    }

    #[test]
    fn modeled_time_decreases_then_flattens_with_ranks() {
        let domain = disk_domain();
        let mesh = Mesh::build(&domain, Curve::Hilbert, 4, 6, 1);
        let model = MachineModel::default();
        let t1 = analyze_partition(&mesh, 1).modeled_time(&model).0;
        let t8 = analyze_partition(&mesh, 8).modeled_time(&model).0;
        let t64 = analyze_partition(&mesh, 64).modeled_time(&model).0;
        assert!(t8 < t1, "speedup to 8 ranks: {t1} -> {t8}");
        assert!(t64 <= t8 * 1.05, "no catastrophic slowdown: {t8} -> {t64}");
        // Parallel cost (t * P) grows once comm dominates.
        assert!(t64 * 64.0 > t1 * 0.9);
    }
}
