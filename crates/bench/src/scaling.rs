//! Rank-by-rank replay harness behind the committed scaling artifact
//! (`SCALING_PR<k>.json`) and its CI gate.
//!
//! The paper's headline claim is MATVEC scaling to 16K/28K Frontera ranks
//! (Figs. 7–10, Table 3). On one box we cannot time 28K ranks, but we *can*
//! compute, exactly, what every one of those ranks would hold: the real
//! SFC partition, node-ownership election, ghost sets, wire bytes, and
//! neighbor lanes all come from the production algorithms
//! (`analyze_partition`), evaluated per rank at P ∈ {256 … 28672}. The
//! pinned α-β-γ reference model then turns those exact structures into
//! modeled times and efficiency curves. Because the structure is exact and
//! the model is pinned, the whole artifact is deterministic — so CI can
//! regenerate it from source and fail on any drift in partitioning, node
//! resolution, ghost layout, or the model itself.

use crate::model::{analyze_partition, calibrate, calibrate_collectives, MachineModel};
use crate::workloads::{ChannelWorkload, SphereWorkload};
use carve_core::Mesh;
use carve_io::{ModelConstants, ScalingCase, ScalingPoint, ScalingReport};
use std::collections::HashMap;

/// Rank counts of the artifact series — up through the paper's 16K/28K
/// Frontera configurations.
pub const SCALING_RANKS: [usize; 5] = [256, 1024, 4096, 16384, 28672];

/// This PR's artifact number (`SCALING_PR8.json`).
pub const SCALING_PR: u64 = 8;

/// One scaling series: a named workload at a fixed element order, with one
/// `(ranks, base_level, boundary_level)` mesh point per rank count. Strong
/// series repeat one mesh across all rank counts; weak series grow the mesh
/// with the rank count (re-using the top mesh once the box's build budget
/// is exhausted — the grain-normalized efficiency stays honest about it).
pub struct CaseSpec {
    pub name: &'static str,
    pub order: u64,
    /// `"strong"` or `"weak"` (reporting label; the efficiency formula is
    /// grain-normalized and identical for both).
    pub kind: &'static str,
    pub points: Vec<(usize, u8, u8)>,
}

/// The committed artifact's series: strong and weak curves for the channel
/// and carved-sphere workloads at linear and quadratic order, mirroring
/// Figs. 7–10 / Table 3.
pub fn artifact_specs() -> Vec<CaseSpec> {
    let strong = |name, order, b, f| CaseSpec {
        name,
        order,
        kind: "strong",
        points: SCALING_RANKS.iter().map(|&p| (p, b, f)).collect(),
    };
    let weak = |name, order, levels: [(u8, u8); 5]| CaseSpec {
        name,
        order,
        kind: "weak",
        points: SCALING_RANKS
            .iter()
            .zip(levels)
            .map(|(&p, (b, f))| (p, b, f))
            .collect(),
    };
    vec![
        strong("channel", 1, 7, 10),
        strong("channel", 2, 6, 9),
        strong("sphere", 1, 6, 9),
        strong("sphere", 2, 5, 8),
        weak("channel", 1, [(4, 7), (5, 8), (6, 9), (7, 10), (7, 10)]),
        weak("channel", 2, [(4, 7), (5, 8), (6, 9), (6, 9), (6, 9)]),
        weak("sphere", 1, [(4, 7), (5, 8), (6, 9), (6, 9), (6, 9)]),
        weak("sphere", 2, [(3, 6), (4, 7), (5, 8), (5, 8), (5, 8)]),
    ]
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Order-fixed FNV-1a fold of the complete per-rank load array — pins every
/// rank's element count, node ownership, ghost volume, send volume, and
/// neighbor degree, not just the per-point summaries.
pub fn digest_loads(a: &crate::model::PartitionAnalysis) -> u64 {
    let mut h = FNV_OFFSET;
    for l in &a.loads {
        h = fnv_u64(h, l.elems as u64);
        h = fnv_u64(h, l.owned_nodes as u64);
        h = fnv_u64(h, l.ghost_nodes as u64);
        h = fnv_u64(h, l.ghost_bytes);
        h = fnv_u64(h, l.ghost_send_bytes);
        h = fnv_u64(h, l.neighbors as u64);
    }
    h
}

fn model_constants(m: &MachineModel) -> ModelConstants {
    ModelConstants {
        t_leaf: m.t_leaf,
        t_copy: m.t_copy,
        alpha: m.alpha,
        beta: m.beta,
        gamma: m.gamma,
    }
}

fn build_mesh(name: &str, base: u8, boundary: u8, order: u64) -> Mesh<3> {
    match name {
        "channel" => ChannelWorkload::new().mesh(base, boundary, order),
        "sphere" => SphereWorkload::new().mesh(base, boundary, order),
        other => panic!("unknown scaling workload '{other}'"),
    }
}

/// Cache key for one (workload, base, boundary, order, ranks) analysis;
/// the value carries the finished point plus its grain (elems/rank).
type AnalysisCache = HashMap<(String, u8, u8, u64, usize), (ScalingPoint, f64)>;

/// Builds a report from explicit specs. Meshes and partition analyses are
/// cached across cases (strong/weak series share meshes, and the top weak
/// points repeat whole (mesh, P) pairs).
pub fn build_report_from_specs(
    pr: u64,
    ranks: &[usize],
    specs: &[CaseSpec],
    with_calibration: bool,
    log: &mut dyn FnMut(String),
) -> ScalingReport {
    let reference = MachineModel::reference();
    let mut meshes: HashMap<(String, u8, u8, u64), Mesh<3>> = HashMap::new();
    let mut analyses: AnalysisCache = HashMap::new();
    let mut cases = Vec::new();
    for spec in specs {
        let mut points = Vec::new();
        for &(p, b, f) in &spec.points {
            let akey = (spec.name.to_string(), b, f, spec.order, p);
            let (point, grain) = *analyses.entry(akey).or_insert_with(|| {
                let mkey = (spec.name.to_string(), b, f, spec.order);
                let mesh = meshes.entry(mkey).or_insert_with(|| {
                    log(format!(
                        "mesh {} base={b} boundary={f} order={}",
                        spec.name, spec.order
                    ));
                    build_mesh(spec.name, b, f, spec.order)
                });
                log(format!(
                    "analyze {} order={} P={p} ({} elems)",
                    spec.name,
                    spec.order,
                    mesh.num_elems()
                ));
                let a = analyze_partition(mesh, p);
                let loads = &a.loads;
                let point = ScalingPoint {
                    ranks: p as u64,
                    elems: mesh.num_elems() as u64,
                    dofs: mesh.num_dofs() as u64,
                    elems_per_rank_min: loads.iter().map(|l| l.elems as u64).min().unwrap(),
                    elems_per_rank_max: loads.iter().map(|l| l.elems as u64).max().unwrap(),
                    owned_nodes_max: loads.iter().map(|l| l.owned_nodes as u64).max().unwrap(),
                    ghost_nodes_max: loads.iter().map(|l| l.ghost_nodes as u64).max().unwrap(),
                    ghost_bytes_max: loads.iter().map(|l| l.ghost_bytes).max().unwrap(),
                    send_bytes_max: loads.iter().map(|l| l.ghost_send_bytes).max().unwrap(),
                    neighbors_max: loads.iter().map(|l| l.neighbors as u64).max().unwrap(),
                    digest: digest_loads(&a),
                    t_model: a.modeled_time(&reference).0,
                    efficiency: 0.0, // filled per case below
                };
                let grain = mesh.num_elems() as f64 / p as f64;
                (point, grain)
            });
            points.push((point, grain));
        }
        // Grain-normalized efficiency vs the series' first point: the ratio
        // of per-element parallel cost. For strong series (constant elems)
        // this reduces to the classical (T_b·P_b)/(T_P·P).
        let (t0, g0) = (points[0].0.t_model, points[0].1);
        for (pt, g) in &mut points {
            pt.efficiency = (t0 / g0) / (pt.t_model / *g);
        }
        let min_eff = points
            .iter()
            .map(|(pt, _)| pt.efficiency)
            .fold(f64::INFINITY, f64::min);
        // Floor with a 0.05 margin under the generated curve, rounded down
        // to 2 decimals: tightens automatically when the curves improve.
        let efficiency_floor = (((min_eff - 0.05).max(0.0) * 100.0).floor()) / 100.0;
        cases.push(ScalingCase {
            name: spec.name.to_string(),
            order: spec.order,
            kind: spec.kind.to_string(),
            efficiency_floor,
            points: points.into_iter().map(|(pt, _)| pt).collect(),
        });
    }
    let calibrated_model = if with_calibration {
        log("calibrate kernel + collective constants".into());
        let mesh = meshes
            .remove(&("channel".to_string(), 5, 8, 1))
            .unwrap_or_else(|| build_mesh("channel", 5, 8, 1));
        let (m, _) = calibrate(&mesh, 3);
        let (alpha, gamma) = calibrate_collectives();
        Some(ModelConstants {
            t_leaf: m.t_leaf,
            t_copy: m.t_copy,
            alpha,
            beta: m.beta,
            gamma,
        })
    } else {
        None
    };
    ScalingReport {
        pr,
        ranks: ranks.iter().map(|&p| p as u64).collect(),
        reference_model: model_constants(&reference),
        calibrated_model,
        cases,
    }
}

/// Builds the committed artifact: the full 256→28672 series over all eight
/// cases, plus (optionally) this box's calibrated constants for context.
pub fn build_artifact(with_calibration: bool, log: &mut dyn FnMut(String)) -> ScalingReport {
    build_report_from_specs(
        SCALING_PR,
        &SCALING_RANKS,
        &artifact_specs(),
        with_calibration,
        log,
    )
}

fn close(a: f64, b: f64) -> bool {
    // Reference-model arithmetic is deterministic; the tolerance only
    // absorbs float-formatting round trips and compiler re-association.
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-30)
}

/// Regenerates the artifact structure from source (reference model only —
/// no calibration, so the check is machine-independent) and diffs it
/// against `baseline`. Returns one message per drift; empty means the gate
/// passes.
pub fn check_artifact(baseline: &ScalingReport, log: &mut dyn FnMut(String)) -> Vec<String> {
    let mut drift = Vec::new();
    let current =
        build_report_from_specs(baseline.pr, &SCALING_RANKS, &artifact_specs(), false, log);
    if baseline.ranks != current.ranks {
        drift.push(format!(
            "rank series: baseline {:?} vs source {:?}",
            baseline.ranks, current.ranks
        ));
    }
    if baseline.reference_model != current.reference_model {
        drift.push("reference model constants changed".to_string());
    }
    let case_id = |c: &ScalingCase| format!("{}/p{}/{}", c.name, c.order, c.kind);
    if baseline.cases.len() != current.cases.len() {
        drift.push(format!(
            "case count: baseline {} vs source {}",
            baseline.cases.len(),
            current.cases.len()
        ));
        return drift;
    }
    for (b, c) in baseline.cases.iter().zip(&current.cases) {
        let id = case_id(b);
        if case_id(c) != id {
            drift.push(format!(
                "case order: baseline {id} vs source {}",
                case_id(c)
            ));
            continue;
        }
        if b.points.len() != c.points.len() {
            drift.push(format!("{id}: point count changed"));
            continue;
        }
        for (bp, cp) in b.points.iter().zip(&c.points) {
            let pid = format!("{id} P={}", bp.ranks);
            let counts = |p: &ScalingPoint| {
                [
                    p.ranks,
                    p.elems,
                    p.dofs,
                    p.elems_per_rank_min,
                    p.elems_per_rank_max,
                    p.owned_nodes_max,
                    p.ghost_nodes_max,
                    p.ghost_bytes_max,
                    p.send_bytes_max,
                    p.neighbors_max,
                ]
            };
            if counts(bp) != counts(cp) {
                drift.push(format!(
                    "{pid}: per-rank structure counts changed ({:?} vs {:?})",
                    counts(bp),
                    counts(cp)
                ));
            }
            if bp.digest != cp.digest {
                drift.push(format!(
                    "{pid}: per-rank load digest {:016x} vs {:016x}",
                    bp.digest, cp.digest
                ));
            }
            if !close(bp.t_model, cp.t_model) {
                drift.push(format!(
                    "{pid}: modeled time {} vs {}",
                    bp.t_model, cp.t_model
                ));
            }
            if !close(bp.efficiency, cp.efficiency) {
                drift.push(format!(
                    "{pid}: efficiency {} vs {}",
                    bp.efficiency, cp.efficiency
                ));
            }
            // The floor guards against *regressions* even when the baseline
            // is regenerated: fresh efficiencies must clear the committed
            // floor on their own.
            if cp.efficiency < b.efficiency_floor {
                drift.push(format!(
                    "{pid}: efficiency {:.3} below committed floor {:.2}",
                    cp.efficiency, b.efficiency_floor
                ));
            }
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_io::{scaling_report_from_json, scaling_report_to_json, Json};

    /// Miniature specs so the gate logic is testable in seconds: the same
    /// builder/checker code paths as the committed artifact, on a small
    /// channel mesh at toy rank counts.
    fn tiny_specs() -> Vec<CaseSpec> {
        vec![
            CaseSpec {
                name: "channel",
                order: 1,
                kind: "strong",
                points: vec![(2, 3, 6), (4, 3, 6), (8, 3, 6)],
            },
            CaseSpec {
                name: "channel",
                order: 1,
                kind: "weak",
                points: vec![(2, 3, 5), (4, 3, 6), (8, 3, 6)],
            },
        ]
    }

    fn tiny_report() -> ScalingReport {
        build_report_from_specs(8, &[2, 4, 8], &tiny_specs(), false, &mut |_| {})
    }

    #[test]
    fn report_is_deterministic_and_round_trips() {
        let a = tiny_report();
        let b = tiny_report();
        assert_eq!(a, b, "replay structure must be deterministic");
        let text = scaling_report_to_json(&a).to_string_pretty();
        let back = scaling_report_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, a, "artifact must survive the JSON round trip");
        // Sanity on the content itself.
        for c in &a.cases {
            assert_eq!(c.points[0].efficiency, 1.0, "base point is the anchor");
            for p in &c.points {
                assert!(p.efficiency > 0.0 && p.efficiency <= 1.5);
                assert!(p.efficiency >= c.efficiency_floor);
                assert!(p.t_model > 0.0);
                assert!(p.elems_per_rank_min <= p.elems_per_rank_max);
            }
        }
        // Strong series: mesh constant across points.
        let strong = &a.cases[0];
        assert!(strong
            .points
            .iter()
            .all(|p| p.elems == strong.points[0].elems));
    }

    #[test]
    fn digest_covers_every_load_field() {
        let mesh = build_mesh("channel", 3, 6, 1);
        let a = analyze_partition(&mesh, 4);
        let base = digest_loads(&a);
        let mut tweaked = a.clone();
        tweaked.loads[3].neighbors += 1;
        assert_ne!(base, digest_loads(&tweaked));
        let mut tweaked = a.clone();
        tweaked.loads[0].ghost_send_bytes += 8;
        assert_ne!(base, digest_loads(&tweaked));
    }

    #[test]
    fn tampered_baseline_fails_the_check() {
        // check_artifact regenerates the full artifact (too slow for a unit
        // test), so exercise the comparison core on the tiny report via the
        // same field-by-field logic: a self-diff of tiny reports through the
        // JSON round trip must be empty, and single-field tampering must
        // produce drift. We inline the comparison by diffing two reports
        // with the check's helpers.
        let a = tiny_report();
        let text = scaling_report_to_json(&a).to_string_pretty();
        let b = scaling_report_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(a, b);
        // Tamper: flip one digest → reports differ.
        let mut t = b.clone();
        t.cases[0].points[1].digest ^= 1;
        assert_ne!(a, t);
        // Tamper: nudge an efficiency beyond the check tolerance.
        let mut t = b.clone();
        t.cases[1].points[2].efficiency *= 1.001;
        assert!(!close(
            a.cases[1].points[2].efficiency,
            t.cases[1].points[2].efficiency
        ));
        // Within-tolerance formatting noise is accepted.
        assert!(close(1.0, 1.0 + 1e-12));
    }
}
