//! Request-replay serving bench behind the CI `serve-gate` stage.
//!
//! Replays a fixed, deterministic trace of mixed requests — cache-miss
//! build+solve, cache-hit solve, k-lane block solve, point-query burst —
//! against the `fem::serve` scenario cache on [`SERVE_RANKS`] simulated
//! ranks, for both smoke workloads (the §4.5.1 channel and the carved
//! sphere). The emitted `carve-serve-report-v1` document carries two kinds
//! of numbers:
//!
//! * **Deterministic**: request/cache/eviction counts, collective-round
//!   costs of the block vs sequential solves (`CommStats`), and a
//!   `result_digest` folding every solution and point read bit-for-bit.
//!   Pure functions of the trace — the serve-gate byte-compares them
//!   across threads × chaos.
//! * **Machine-dependent**: per-class p50/p99/mean latency and overall
//!   throughput, gated by floors (hit ≥ [`HIT_SPEEDUP_FLOOR`]× faster than
//!   miss; block-CG ≤ 1/3 the rounds of sequential CG).

use carve_comm::run_spmd;
use carve_fem::serve::{geometry_hash, ScenarioCache, ScenarioSpec, ServedField};
use carve_geom::{CarvedSolids, RetainBox, Sphere, Subdomain};
use carve_io::{ServeClassStats, ServeReport};
use carve_sfc::Curve;
use std::time::Instant;

/// Simulated ranks for the replay.
pub const SERVE_RANKS: usize = 2;

/// PR number stamped into the serve report.
pub const SERVE_PR: u64 = 10;

/// Gate floor: cache-hit solve p50 must be at least this many times lower
/// than cache-miss p50, on every scenario.
pub const HIT_SPEEDUP_FLOOR: f64 = 5.0;

/// Fixed CG iteration budget per solve: with `rtol = 0` every solve runs
/// exactly this many iterations, so round counts and solution bits are
/// pure functions of the trace.
const SOLVE_ITERS: usize = 6;

/// Lanes per block-solve request (the acceptance point: ≤ 1/3 the rounds
/// of 4 sequential solves).
const BLOCK_K: usize = 4;

/// Cache-hit solves replayed per scenario; the middle [`BLOCK_K`] of them
/// double as the sequential-round baseline for the block comparison.
const HIT_SOLVES: usize = 6;

/// Points per point-query burst, bursts per scenario.
const QUERY_POINTS: usize = 48;
const QUERY_BURSTS: usize = 2;

/// One serving scenario — the two smoke workloads, same shapes and levels
/// as `smoke::CASES`.
struct ServeCase {
    name: &'static str,
    domain: fn() -> Box<dyn Subdomain<3>>,
    spec: ScenarioSpec,
}

fn channel_domain() -> Box<dyn Subdomain<3>> {
    Box::new(RetainBox::channel([1.0, 1.0 / 16.0, 1.0 / 16.0]))
}

fn carved_sphere_domain() -> Box<dyn Subdomain<3>> {
    Box::new(CarvedSolids::new(vec![Box::new(Sphere::new(
        [0.5; 3], 0.2,
    ))]))
}

fn serve_cases() -> Vec<ServeCase> {
    vec![
        ServeCase {
            name: "channel",
            domain: channel_domain,
            spec: ScenarioSpec {
                geometry: geometry_hash("channel:1,1/16,1/16"),
                curve: Curve::Hilbert,
                base_level: 3,
                boundary_level: 5,
                order: 1,
                scale: 16.0,
                mg_min_level: Some(2),
            },
        },
        ServeCase {
            name: "carved_sphere",
            domain: carved_sphere_domain,
            spec: ScenarioSpec {
                geometry: geometry_hash("carved_sphere:0.5,r0.2"),
                curve: Curve::Hilbert,
                base_level: 3,
                boundary_level: 4,
                order: 1,
                scale: 10.0,
                mg_min_level: Some(2),
            },
        },
    ]
}

/// Order-fixed FNV-1a fold.
fn fnv_fold(h: u64, bits: u64) -> u64 {
    let mut h = h;
    for shift in [0, 8, 16, 24, 32, 40, 48, 56] {
        h = (h ^ ((bits >> shift) & 0xff)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fold_slice(h: u64, xs: &[f64]) -> u64 {
    xs.iter().fold(h, |h, v| fnv_fold(h, v.to_bits()))
}

/// `sorted` ascending; nearest-rank quantile.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Smooth coordinate-keyed source term — identical across rank layouts.
fn source(x: &[f64; 3]) -> f64 {
    (3.1 * x[0]).sin() * (2.3 * x[1]).cos() + (1.7 * x[2]).sin() + 1.0
}

/// Deterministic strictly-interior probe points for the query bursts.
/// Constrained to y, z ∈ (0, 1/16) so they lie inside the retained region
/// of *both* scenarios (the channel is only 1/16 tall/deep; the sphere
/// carve at the cube center is far away).
fn probe_points(burst: usize) -> Vec<[f64; 3]> {
    (0..QUERY_POINTS)
        .map(|i| {
            let t = (i + burst * QUERY_POINTS) as f64 / (QUERY_POINTS * QUERY_BURSTS) as f64;
            [
                0.5 + 0.27 * (6.3 * t).cos() * t,
                0.031 + 0.02 * (5.1 * t).sin(),
                0.033 + 0.02 * (7.7 * t).cos(),
            ]
        })
        .collect()
}

/// Everything one rank brings back from the replay.
struct RankReplay {
    /// `(class index, seconds)` per timed request, in trace order.
    samples: Vec<(usize, f64)>,
    stats: carve_fem::serve::CacheStats,
    digest: u64,
    block_rounds: u64,
    seq_rounds: u64,
    total_secs: f64,
}

/// Class index layout: 4 classes per case, trace order.
fn class_names(cases: &[ServeCase]) -> Vec<String> {
    let mut names = Vec::new();
    for c in cases {
        for kind in ["miss_solve", "hit_solve", "block_solve", "point_query"] {
            names.push(format!("{}/{kind}", c.name));
        }
    }
    names
}

fn replay_on_rank(c: &carve_comm::Comm) -> RankReplay {
    let cases = serve_cases();
    let mut cache = ScenarioCache::<3>::with_cap_bytes(usize::MAX);
    let mut samples = Vec::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut block_rounds = 0u64;
    let mut seq_rounds = 0u64;
    let t0 = Instant::now();
    for (ci, case) in cases.iter().enumerate() {
        let class0 = ci * 4;
        let domain = (case.domain)();

        // Cache-miss build + solve.
        let t = Instant::now();
        let entry = cache.get_or_build(c, &*domain, case.spec);
        let b0: Vec<f64> = carve_fem::serve::coord_field(&entry.dm, &source);
        let mut x = vec![0.0; b0.len()];
        entry.solve(c, &b0, &mut x, 0.0, SOLVE_ITERS);
        samples.push((class0, t.elapsed().as_secs_f64()));
        digest = fold_slice(digest, &x[..entry.dm.n_owned_nodes]);

        // Warm cache-hit solves; the middle BLOCK_K are the sequential
        // round baseline the block solve is compared against.
        for j in 0..HIT_SOLVES {
            let t = Instant::now();
            let entry = cache.get_or_build(c, &*domain, case.spec);
            let b: Vec<f64> = b0.iter().map(|v| v * (1.0 + j as f64 * 0.05)).collect();
            let mut x = vec![0.0; b.len()];
            let rounds0 = c.stats().collective_calls;
            entry.solve(c, &b, &mut x, 0.0, SOLVE_ITERS);
            if (1..1 + BLOCK_K).contains(&j) {
                seq_rounds += c.stats().collective_calls - rounds0;
            }
            samples.push((class0 + 1, t.elapsed().as_secs_f64()));
            digest = fold_slice(digest, &x[..entry.dm.n_owned_nodes]);
        }

        // One k-lane block solve over the same RHS family as the
        // sequential baseline (lanes j = 1..=BLOCK_K).
        {
            let t = Instant::now();
            let entry = cache.get_or_build(c, &*domain, case.spec);
            let bs: Vec<Vec<f64>> = (1..=BLOCK_K)
                .map(|j| b0.iter().map(|v| v * (1.0 + j as f64 * 0.05)).collect())
                .collect();
            let mut xs: Vec<Vec<f64>> = vec![vec![0.0; b0.len()]; BLOCK_K];
            let rounds0 = c.stats().collective_calls;
            {
                let b_refs: Vec<&[f64]> = bs.iter().map(|b| b.as_slice()).collect();
                let mut x_refs: Vec<&mut [f64]> = xs.iter_mut().map(|x| x.as_mut_slice()).collect();
                entry.block_solve(c, &b_refs, &mut x_refs, 0.0, SOLVE_ITERS);
            }
            block_rounds += c.stats().collective_calls - rounds0;
            samples.push((class0 + 2, t.elapsed().as_secs_f64()));
            for x in &xs {
                digest = fold_slice(digest, &x[..entry.dm.n_owned_nodes]);
            }
        }

        // Point-query bursts against the last solved field.
        for burst in 0..QUERY_BURSTS {
            let t = Instant::now();
            let entry = cache.get_or_build(c, &*domain, case.spec);
            let u = carve_fem::serve::coord_field(&entry.dm, &source);
            let sf = ServedField { entry, u: &u };
            let vals = sf.eval_points(c, &probe_points(burst));
            samples.push((class0 + 3, t.elapsed().as_secs_f64()));
            digest = fold_slice(digest, &vals);
        }
    }

    // Eviction epilogue: zero the budget (everything out), then rebuild
    // the first scenario — exercises `cache_evictions` and the
    // rebuild-after-evict miss deterministically.
    cache.set_cap_bytes(0);
    {
        let domain = (cases[0].domain)();
        let t = Instant::now();
        let entry = cache.get_or_build(c, &*domain, cases[0].spec);
        let b: Vec<f64> = carve_fem::serve::coord_field(&entry.dm, &source);
        let mut x = vec![0.0; b.len()];
        entry.solve(c, &b, &mut x, 0.0, SOLVE_ITERS);
        samples.push((0, t.elapsed().as_secs_f64()));
        digest = fold_slice(digest, &x[..entry.dm.n_owned_nodes]);
    }

    RankReplay {
        samples,
        stats: cache.stats(),
        digest,
        block_rounds,
        seq_rounds,
        total_secs: t0.elapsed().as_secs_f64(),
    }
}

/// Runs the replay on [`SERVE_RANKS`] simulated ranks and aggregates the
/// report: latencies from rank 0, the digest folded over every rank's
/// owned solution bits in rank order.
pub fn run_replay() -> ServeReport {
    let cases = serve_cases();
    let names = class_names(&cases);
    let ranks = run_spmd(SERVE_RANKS, replay_on_rank);
    let digest = ranks
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, r| fnv_fold(h, r.digest));
    let r0 = &ranks[0];
    let mut by_class: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for &(class, secs) in &r0.samples {
        by_class[class].push(secs * 1e6);
    }
    let classes: Vec<ServeClassStats> = names
        .iter()
        .zip(&mut by_class)
        .map(|(name, lat)| {
            lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            ServeClassStats {
                class: name.clone(),
                requests: lat.len() as u64,
                p50_us: percentile(lat, 0.5),
                p99_us: percentile(lat, 0.99),
                mean_us: lat.iter().sum::<f64>() / lat.len().max(1) as f64,
            }
        })
        .collect();
    // Worst-case hit-vs-miss speedup over the scenarios.
    let speedup = (0..cases.len())
        .map(|ci| {
            let miss = classes[ci * 4].p50_us;
            let hit = classes[ci * 4 + 1].p50_us.max(1e-9);
            miss / hit
        })
        .fold(f64::INFINITY, f64::min);
    ServeReport {
        pr: SERVE_PR,
        ranks: SERVE_RANKS as u64,
        requests: r0.samples.len() as u64,
        scenarios: cases.len() as u64,
        cache_hits: r0.stats.hits,
        cache_misses: r0.stats.misses,
        cache_evictions: r0.stats.evictions,
        cache_admitted_bytes: r0.stats.admitted_bytes,
        block_rounds: r0.block_rounds,
        seq_rounds: r0.seq_rounds,
        result_digest: digest,
        hit_miss_speedup: speedup,
        throughput_rps: r0.samples.len() as f64 / r0.total_secs.max(1e-9),
        classes,
    }
}

/// Gate checks on a freshly generated report. Returns failure messages
/// (empty = pass). `check_latency` is off for the determinism matrix runs
/// (threads × chaos distort wall-clock, never the deterministic fields).
pub fn gate_failures(r: &ServeReport, check_latency: bool) -> Vec<String> {
    let mut fails = Vec::new();
    if 3 * r.block_rounds > r.seq_rounds {
        fails.push(format!(
            "block-CG used {} collective rounds vs {} sequential — wanted ≤ 1/3",
            r.block_rounds, r.seq_rounds
        ));
    }
    if r.cache_misses != 3 || r.cache_evictions != 2 {
        fails.push(format!(
            "cache counters drifted: misses {} (want 3), evictions {} (want 2)",
            r.cache_misses, r.cache_evictions
        ));
    }
    if check_latency && r.hit_miss_speedup < HIT_SPEEDUP_FLOOR {
        fails.push(format!(
            "cache-hit solve only {:.1}× faster than miss (floor {HIT_SPEEDUP_FLOOR}×)",
            r.hit_miss_speedup
        ));
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_deterministic_and_fuses_rounds() {
        let a = run_replay();
        let b = run_replay();
        // Deterministic fields are pure functions of the (fixed) trace.
        assert_eq!(a.result_digest, b.result_digest);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(
            (a.block_rounds, a.seq_rounds),
            (b.block_rounds, b.seq_rounds)
        );
        // 2 scenarios × (6 hits + 1 block + 2 queries) on a warm cache.
        assert_eq!(a.cache_hits, 18);
        assert!(
            gate_failures(&a, false).is_empty(),
            "{:?}",
            gate_failures(&a, false)
        );
        // The k=4 block shares rounds: strictly under the 1/3 bar.
        assert!(3 * a.block_rounds <= a.seq_rounds, "{a:?}");
        // Hit solves skip build+assembly entirely; even unoptimized debug
        // builds clear a lax floor (the release gate enforces 5×).
        assert!(
            a.hit_miss_speedup > 2.0,
            "hit vs miss speedup {:.2}",
            a.hit_miss_speedup
        );
    }
}
