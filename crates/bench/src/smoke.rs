//! Smoke benchmark behind `scripts/bench_gate.sh`: two fixed small
//! workloads (the §4.5.1 channel and a carved sphere) through the full
//! pipeline — distributed build + MATVECs on simulated ranks, then a
//! sequential Poisson solve — with every phase recorded by `carve-obs`.
//!
//! The emitted `BENCH_PR<k>.json` is deterministic modulo the `secs`
//! fields: same phases, same call counts, same counters on every run (see
//! `tests/smoke_determinism.rs`), so the CI gate can diff structure exactly
//! and timings within a tolerance.

use carve_comm::run_spmd;
use carve_core::{DistMesh, GhostState, Mesh};
use carve_fem::{solve_poisson, BcMode, PoissonProblem, StiffnessKernel};
use carve_geom::{CarvedSolids, RetainBox, Sphere, Subdomain};
use carve_io::{report_to_json, Json};
use carve_obs::Snapshot;
use carve_sfc::Curve;

/// Simulated ranks for the distributed stage of each workload.
pub const SMOKE_RANKS: usize = 2;

/// Schema tag written into every smoke report.
pub const SMOKE_SCHEMA: &str = "carve-bench-phase-report-v1";

/// One fixed-size smoke workload.
#[derive(Clone, Copy)]
struct SmokeCase {
    name: &'static str,
    /// Fresh domain per thread (trait objects are built rank-locally).
    domain: fn() -> Box<dyn Subdomain<3>>,
    base: u8,
    boundary: u8,
    /// Physical size of the root cube (for the stiffness kernel / solve).
    scale: f64,
}

fn channel_domain() -> Box<dyn Subdomain<3>> {
    Box::new(RetainBox::channel([1.0, 1.0 / 16.0, 1.0 / 16.0]))
}

fn carved_sphere_domain() -> Box<dyn Subdomain<3>> {
    Box::new(CarvedSolids::new(vec![Box::new(Sphere::new(
        [0.5; 3], 0.2,
    ))]))
}

const CASES: [SmokeCase; 2] = [
    SmokeCase {
        name: "channel",
        domain: channel_domain,
        base: 3,
        boundary: 5,
        scale: 16.0,
    },
    SmokeCase {
        name: "carved_sphere",
        domain: carved_sphere_domain,
        base: 3,
        boundary: 4,
        scale: 10.0,
    },
];

/// Distributed stage: build the `DistMesh` on [`SMOKE_RANKS`] simulated
/// ranks and apply three distributed Poisson MATVECs. Each rank thread is
/// fresh, so its thread snapshot contains exactly this workload's phases.
fn dist_snapshots(case: &SmokeCase) -> Vec<Snapshot> {
    let SmokeCase {
        domain,
        base,
        boundary,
        scale,
        ..
    } = *case;
    run_spmd(SMOKE_RANKS, move |c| {
        let domain = domain();
        let dm = DistMesh::<3>::build(c, &*domain, Curve::Hilbert, base, boundary, 1);
        let x: Vec<f64> = (0..dm.nodes.len())
            .map(|i| (i as f64 * 0.37).sin())
            .collect();
        let mut y = vec![0.0; dm.nodes.len()];
        // One workspace across the three applies: the second and third run
        // entirely from the bucket arena (`arena_reuse` in the report).
        let mut ws = carve_core::TraversalWorkspace::new();
        let make_kernel = || StiffnessKernel::<3>::new(1, scale);
        for _ in 0..3 {
            dm.matvec_par(c, &x, &mut y, &mut ws, GhostState::OwnedOnly, &make_kernel);
        }
        assert!(
            y.iter().all(|v| v.is_finite()),
            "matvec produced non-finite values"
        );
        // A few fused-reduction CG iterations through the same operator:
        // puts `reductions_fused` and the Krylov-loop exchange pattern
        // (2 rounds per apply, no trailing consistency read) on the record.
        let ws_cell = std::cell::RefCell::new(ws);
        let op = (dm.nodes.len(), |xv: &[f64], yv: &mut [f64]| {
            let mut kernel = make_kernel();
            dm.matvec_ws(
                c,
                xv,
                yv,
                &mut ws_cell.borrow_mut(),
                GhostState::OwnedOnly,
                &mut kernel,
            );
        });
        let mut sol = vec![0.0; dm.nodes.len()];
        let res = {
            let _obs = carve_obs::scope("krylov_dist");
            carve_la::cg_with(
                &op,
                &x,
                &mut sol,
                &carve_la::IdentityPrecond,
                1e-12,
                0.0,
                8,
                &dm.reducer(c),
            )
        };
        assert!(
            res.residual.is_finite(),
            "smoke CG produced a non-finite residual"
        );
        carve_obs::thread_snapshot()
    })
}

/// Sequential stage: assemble and solve `−Δu = 1` with homogeneous strong
/// boundary conditions, in its own thread so the snapshot is clean.
fn solve_snapshot(case: &SmokeCase) -> Snapshot {
    let SmokeCase {
        domain,
        base,
        boundary,
        scale,
        ..
    } = *case;
    std::thread::spawn(move || {
        let domain = domain();
        let mesh = Mesh::build(&*domain, Curve::Hilbert, base, boundary, 1);
        let f = |_: &[f64; 3]| 1.0;
        let zero = |_: &[f64; 3]| 0.0;
        let prob = PoissonProblem {
            scale,
            f: &f,
            dirichlet: &zero,
            closest_boundary: None,
            strong_cube_bc: true,
            bc: BcMode::Naive,
        };
        let sol = solve_poisson(&mesh, &*domain, &prob);
        assert!(
            sol.krylov.converged,
            "smoke solve diverged: {:?}",
            sol.krylov
        );
        carve_obs::thread_snapshot()
    })
    .join()
    .expect("smoke solve thread panicked")
}

/// Checkpoint cadence (iterations) for the recovery workload.
const RECOVERY_CKPT_EVERY: usize = 5;
/// Fixed CG iteration count per attempt of the recovery workload: with
/// `rtol = 0` the solve runs exactly this many iterations, so every call
/// count and loss counter in the report is a pure function of the chaos
/// seed — the determinism the smoke gate diffs on.
const RECOVERY_ITERS: usize = 40;

/// Recovery stage: a distributed CG solve under *lossy* chaos (frame drops
/// and corruption recovered by the lane retry protocol) with one injected
/// rank kill mid-solve. The solve supervisor relaunches the cluster, each
/// rank restores from its last [`carve_la::SolveCheckpoint`], and the
/// restarted solve finishes the job — putting `recovery/{retry, restore}`
/// phases and the `drops_detected`/`corrupt_detected` counters on the
/// record.
fn recovery_snapshots() -> Vec<Snapshot> {
    use carve_comm::{Comm, FaultPlan, SpmdOptions};
    use carve_core::{supervise_spmd, CheckpointStore};
    use carve_la::Checkpointer;
    use std::sync::Arc;

    let body = |c: &Comm, attempt: usize, store: &CheckpointStore| -> (u64, u64, Snapshot) {
        let domain = channel_domain();
        let dm = DistMesh::<3>::build(c, &*domain, Curve::Hilbert, 3, 4, 1);
        let n = dm.nodes.len();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let ws = std::cell::RefCell::new(carve_core::TraversalWorkspace::new());
        let make_kernel = || StiffnessKernel::<3>::new(1, 16.0);
        let op = (n, |xv: &[f64], yv: &mut [f64]| {
            let mut kernel = make_kernel();
            dm.matvec_ws(
                c,
                xv,
                yv,
                &mut ws.borrow_mut(),
                GhostState::OwnedOnly,
                &mut kernel,
            );
        });
        let rank = c.rank();
        let mut x = vec![0.0; n];
        let mut ck = Checkpointer::new(RECOVERY_CKPT_EVERY)
            .with_sink(|s: &carve_la::SolveCheckpoint| store.save(rank, s));
        if attempt > 0 {
            if let Some(snap) = store.load(rank) {
                let _rec = carve_obs::scope("recovery");
                let _res = carve_obs::scope("restore");
                carve_obs::counter("ranks_restored", 1);
                x.copy_from_slice(&snap.x);
                ck = Checkpointer::new(RECOVERY_CKPT_EVERY)
                    .with_sink(|s: &carve_la::SolveCheckpoint| store.save(rank, s))
                    .resume_from(&snap);
            }
        }
        let ops_cg_start = c.op_count();
        let res = {
            let _obs = carve_obs::scope("krylov_recovery");
            carve_la::cg_checkpointed(
                &op,
                &b,
                &mut x,
                &carve_la::IdentityPrecond,
                0.0,
                0.0,
                RECOVERY_ITERS,
                &dm.reducer(c),
                &mut ck,
            )
        };
        assert!(
            res.residual.is_finite(),
            "recovery CG produced a non-finite residual"
        );
        (ops_cg_start, c.op_count(), carve_obs::thread_snapshot())
    };

    // Fault-free probe: measures the CG stage's comm-op span on the victim
    // rank so the kill lands deterministically ~60% into the iteration —
    // past the first checkpoints, well before the end.
    let probe_store = CheckpointStore::new(SMOKE_RANKS);
    let spans = run_spmd(SMOKE_RANKS, |c| {
        let (lo, hi, _) = body(c, 0, &probe_store);
        (lo, hi)
    });
    let (lo, hi) = spans[1];
    let kill_at = lo + (hi - lo) * 6 / 10;

    // Heavier-than-ambient loss so both recovery paths (drop: retry-timer
    // fetch; corruption: checksum-mismatch fetch) fire many times per run.
    let mut fault = FaultPlan::lossy(41).with_kill(1, kill_at);
    fault.drop_prob = 0.25;
    fault.corrupt_prob = 0.25;
    let opts = SpmdOptions {
        fault: Some(fault),
        ..SpmdOptions::default()
    };

    let store = Arc::new(CheckpointStore::new(SMOKE_RANKS));
    std::thread::spawn(move || {
        let ranks = supervise_spmd(SMOKE_RANKS, opts, 2, move |c, attempt| {
            body(c, attempt, &store).2
        })
        .expect("supervisor must recover the smoke solve");
        // The supervisor thread's own snapshot carries the `recovery/retry`
        // phase and `solve_retries` counter.
        let mut snaps = ranks;
        snaps.push(carve_obs::thread_snapshot());
        snaps
    })
    .join()
    .expect("recovery smoke thread panicked")
}

/// Transient stage: the dynamic-AMR heat driver on a 2-D carved sphere —
/// estimator-driven refine/coarsen with incremental ghost patching — so
/// the `adapt/{mark,refine,repartition,patch}` phases and their counters
/// ride the perf gate alongside the static workloads.
fn transient_snapshots() -> Vec<Snapshot> {
    use carve_fem::{run_transient, TransientConfig};
    run_spmd(SMOKE_RANKS, |c| {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))]);
        let cfg = TransientConfig {
            steps: 4,
            adapt_every: 2,
            base_level: 3,
            boundary_level: 5,
            max_level: 6,
            repart_tol: 2.0,
            dt: 2e-3,
            threads: 1,
            ..TransientConfig::default()
        };
        let init = |p: &[f64; 2]| {
            let dx = p[0] - 0.18;
            let dy = p[1] - 0.18;
            (-(dx * dx + dy * dy) / 0.008).exp()
        };
        let res = run_transient(c, &domain, &cfg, &init);
        assert!(
            res.trace.cycles.len() >= 2,
            "transient smoke completed too few adapt cycles"
        );
        assert!(res.u.iter().all(|v| v.is_finite()));
        carve_obs::thread_snapshot()
    })
}

/// Serving stage: the scenario-cache replay in miniature — one cache-miss
/// build+solve, two cache-hit solves, a k=4 block solve, and a point-query
/// burst per workload, then an eviction sweep — so the `serve/*` phases
/// and the `cache_*`/`block_*`/`eval_points` counters ride the perf gate.
/// Fixed iteration counts with `rtol = 0` keep every counter a pure
/// function of the trace.
fn serve_snapshots() -> Vec<Snapshot> {
    use carve_fem::serve::{coord_field, geometry_hash, ScenarioCache, ScenarioSpec, ServedField};
    const SERVE_ITERS: usize = 6;
    run_spmd(SMOKE_RANKS, |c| {
        let _serve = carve_obs::scope("serve");
        let mut cache = ScenarioCache::<3>::with_cap_bytes(usize::MAX);
        for case in &CASES {
            let domain = (case.domain)();
            let spec = ScenarioSpec {
                geometry: geometry_hash(case.name),
                curve: Curve::Hilbert,
                base_level: case.base,
                boundary_level: case.boundary,
                order: 1,
                scale: case.scale,
                mg_min_level: None,
            };
            let source = |x: &[f64; 3]| (3.1 * x[0]).sin() * (2.3 * x[1]).cos() + x[2] + 1.0;
            let b = {
                let _m = carve_obs::scope("miss_solve");
                let entry = cache.get_or_build(c, &*domain, spec);
                let b = coord_field(&entry.dm, &source);
                let mut x = vec![0.0; b.len()];
                entry.solve(c, &b, &mut x, 0.0, SERVE_ITERS);
                b
            };
            for _ in 0..2 {
                let _h = carve_obs::scope("hit_solve");
                let entry = cache.get_or_build(c, &*domain, spec);
                let mut x = vec![0.0; b.len()];
                entry.solve(c, &b, &mut x, 0.0, SERVE_ITERS);
                assert!(x.iter().all(|v| v.is_finite()));
            }
            {
                let _bk = carve_obs::scope("block_solve");
                let entry = cache.get_or_build(c, &*domain, spec);
                let bs: Vec<Vec<f64>> = (0..4)
                    .map(|j| b.iter().map(|v| v * (1.0 + j as f64 * 0.1)).collect())
                    .collect();
                let mut xs: Vec<Vec<f64>> = vec![vec![0.0; b.len()]; 4];
                let b_refs: Vec<&[f64]> = bs.iter().map(|v| v.as_slice()).collect();
                let mut x_refs: Vec<&mut [f64]> = xs.iter_mut().map(|v| v.as_mut_slice()).collect();
                entry.block_solve(c, &b_refs, &mut x_refs, 0.0, SERVE_ITERS);
            }
            {
                let _q = carve_obs::scope("point_query");
                let entry = cache.get_or_build(c, &*domain, spec);
                let u = coord_field(&entry.dm, &source);
                let sf = ServedField { entry, u: &u };
                // Strictly interior of both retained regions: y, z within
                // the channel's 1/16 cross-section, clear of the sphere.
                let pts: Vec<[f64; 3]> = (0..32)
                    .map(|i| {
                        let t = i as f64 / 32.0;
                        [
                            0.5 + 0.3 * (6.3 * t).cos() * t,
                            0.031 + 0.02 * (5.1 * t).sin(),
                            0.033 + 0.02 * (7.7 * t).cos(),
                        ]
                    })
                    .collect();
                let vals = sf.eval_points(c, &pts);
                assert!(vals.iter().all(|v| v.is_finite()));
            }
        }
        // Eviction sweep: a zero budget must empty the cache (and count it).
        cache.set_cap_bytes(0);
        assert!(cache.is_empty());
        carve_obs::thread_snapshot()
    })
}

/// Stamps every `…/leaf` phase of a workload report with the derived
/// `leaf_ns_per_element` metric (mean per-rank leaf seconds over mean
/// per-rank leaves processed): the roofline-facing number the batched
/// kernels are gated on. Timing-valued, so [`strip_secs`] removes it.
fn add_leaf_ns_per_element(report: &mut Json) {
    let ranks = report
        .get("ranks")
        .and_then(Json::as_f64)
        .unwrap_or(1.0)
        .max(1.0);
    let mut ns_by_path: Vec<(String, f64)> = Vec::new();
    if let Some(Json::Obj(phases)) = report.get("phases") {
        for (path, phase) in phases {
            if path != "leaf" && !path.ends_with("/leaf") {
                continue;
            }
            let mean_secs = phase
                .get("secs")
                .and_then(|s| s.get("mean"))
                .and_then(Json::as_f64);
            let leaves = phase
                .get("counters")
                .and_then(|c| c.get("leaves"))
                .and_then(Json::as_f64);
            if let (Some(secs), Some(leaves)) = (mean_secs, leaves) {
                if leaves > 0.0 {
                    ns_by_path.push((path.clone(), secs * 1e9 / (leaves / ranks)));
                }
            }
        }
    }
    if let Json::Obj(fields) = report {
        for (k, v) in fields.iter_mut() {
            if k != "phases" {
                continue;
            }
            if let Json::Obj(phases) = v {
                for (path, phase) in phases.iter_mut() {
                    if let Some((_, ns)) = ns_by_path.iter().find(|(p, _)| p == path) {
                        if let Json::Obj(pf) = phase {
                            pf.push(("leaf_ns_per_element".into(), Json::Num(*ns)));
                        }
                    }
                }
            }
        }
    }
}

/// Runs the smoke workloads (two fixed meshes, the fault-recovery solve,
/// and the transient adapt loop) and returns the full report document:
/// `{"schema": ..., "workloads": {name: {"ranks": ..., "phases": ...}}}`.
pub fn run_smoke() -> Json {
    let _e = carve_obs::force_enabled();
    let mut workloads = Vec::new();
    for case in &CASES {
        let mut snaps = dist_snapshots(case);
        snaps.push(solve_snapshot(case));
        let report = carve_obs::aggregate(&snaps);
        let mut json = report_to_json(&report);
        add_leaf_ns_per_element(&mut json);
        workloads.push((case.name.to_string(), json));
    }
    let report = carve_obs::aggregate(&recovery_snapshots());
    workloads.push(("recovery".to_string(), report_to_json(&report)));
    let report = carve_obs::aggregate(&transient_snapshots());
    workloads.push(("transient".to_string(), report_to_json(&report)));
    let report = carve_obs::aggregate(&serve_snapshots());
    workloads.push(("serve".to_string(), report_to_json(&report)));
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    Json::Obj(vec![
        ("schema".into(), Json::Str(SMOKE_SCHEMA.into())),
        (
            "machine".into(),
            Json::Obj(vec![("cpus".into(), Json::Num(cpus as f64))]),
        ),
        ("workloads".into(), Json::Obj(workloads)),
    ])
}

/// Whether two reports were recorded on comparable hardware. Reports
/// predating the machine stamp (or with differing CPU counts) are not:
/// wall-clock comparisons across machines are noise, so the gate falls
/// back to structure-only checking for them.
pub fn same_machine(old: &Json, new: &Json) -> bool {
    let cpus = |j: &Json| {
        j.get("machine")
            .and_then(|m| m.get("cpus"))
            .and_then(Json::as_f64)
    };
    match (cpus(old), cpus(new)) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    }
}

/// Recursively drops every object field named `"secs"`, `"retries"`,
/// `"backoff_ns"`, or `"leaf_ns_per_element"` — the nondeterministic parts
/// of a smoke report. Wall clock (and the per-element rate derived from
/// it) is obvious; the retry counters are timing-dependent because a
/// dropped frame is recovered either by the receive-side retry timer
/// (counted) or by a racing duplicate/mangled arrival (not), while
/// `drops_detected`/`corrupt_detected` are keyed off the *injection* and
/// stay pure functions of the chaos seed.
pub fn strip_secs(j: &Json) -> Json {
    match j {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| {
                    k != "secs" && k != "retries" && k != "backoff_ns" && k != "leaf_ns_per_element"
                })
                .map(|(k, v)| (k.clone(), strip_secs(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_secs).collect()),
        other => other.clone(),
    }
}

/// Compares two smoke reports for the CI gate. Returns regression messages
/// (empty = pass): a workload or phase present in `old` but missing in
/// `new`, or a phase whose mean seconds grew beyond `1 + tolerance`
/// (phases faster than `min_secs` in both reports are exempt — they are
/// noise at smoke sizes). Timing checks only apply between reports from
/// the same machine ([`same_machine`]); structural checks always apply.
pub fn compare_reports(old: &Json, new: &Json, tolerance: f64, min_secs: f64) -> Vec<String> {
    let check_timings = same_machine(old, new);
    let mut failures = Vec::new();
    let old_workloads = match old.get("workloads") {
        Some(Json::Obj(w)) => w,
        _ => return vec!["old report: missing \"workloads\" object".into()],
    };
    for (wname, old_report) in old_workloads {
        let new_report = match new.get("workloads").and_then(|w| w.get(wname)) {
            Some(r) => r,
            None => {
                failures.push(format!(
                    "workload {wname:?} disappeared from the new report"
                ));
                continue;
            }
        };
        let old_phases = match old_report.get("phases") {
            Some(Json::Obj(p)) => p,
            _ => continue,
        };
        for (phase, old_p) in old_phases {
            let new_p = match new_report.get("phases").and_then(|p| p.get(phase)) {
                Some(p) => p,
                None => {
                    failures.push(format!("{wname}: phase {phase:?} disappeared"));
                    continue;
                }
            };
            if !check_timings {
                continue;
            }
            let mean = |p: &Json| {
                p.get("secs")
                    .and_then(|s| s.get("mean"))
                    .and_then(Json::as_f64)
            };
            let (old_mean, new_mean) = match (mean(old_p), mean(new_p)) {
                (Some(a), Some(b)) => (a, b),
                _ => continue,
            };
            if old_mean.max(new_mean) < min_secs {
                continue;
            }
            if new_mean > old_mean * (1.0 + tolerance) {
                failures.push(format!(
                    "{wname}: {phase} regressed {old_mean:.4}s -> {new_mean:.4}s \
                     (+{:.0}% > {:.0}% tolerance)",
                    (new_mean / old_mean - 1.0) * 100.0,
                    tolerance * 100.0,
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_on(mean: f64, cpus: u32) -> Json {
        Json::parse(&format!(
            r#"{{"schema": "carve-bench-phase-report-v1",
                 "machine": {{"cpus": {cpus}}}, "workloads": {{
                 "w": {{"ranks": 2, "phases": {{
                   "matvec": {{"calls": 6, "ranks": 2,
                     "secs": {{"min": {mean}, "mean": {mean}, "max": {mean}}},
                     "counters": {{}}}}}}}}}}}}"#
        ))
        .expect("valid test report")
    }

    fn report(mean: f64) -> Json {
        report_on(mean, 4)
    }

    #[test]
    fn comparator_flags_slowdowns_and_structure() {
        let old = report(0.1);
        assert!(compare_reports(&old, &report(0.11), 0.25, 0.005).is_empty());
        let fails = compare_reports(&old, &report(0.2), 0.25, 0.005);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("regressed"), "{fails:?}");
        // Below the floor, both directions pass.
        assert!(compare_reports(&report(0.001), &report(0.004), 0.25, 0.005).is_empty());
        // Structural losses fail loudly.
        let empty = Json::parse(r#"{"workloads": {}}"#).unwrap();
        let fails = compare_reports(&old, &empty, 0.25, 0.005);
        assert!(fails[0].contains("disappeared"), "{fails:?}");
    }

    #[test]
    fn cross_machine_comparison_checks_structure_only() {
        let old = report_on(0.1, 4);
        let slow = report_on(10.0, 1);
        assert!(!same_machine(&old, &slow));
        // A huge slowdown on different hardware is not a regression...
        assert!(compare_reports(&old, &slow, 0.25, 0.005).is_empty());
        // ...and a pre-stamp report never gets timing-compared either...
        let mut unstamped = report_on(10.0, 1);
        if let Json::Obj(fields) = &mut unstamped {
            fields.retain(|(k, _)| k != "machine");
        }
        assert!(compare_reports(&old, &unstamped, 0.25, 0.005).is_empty());
        // ...but a phase disappearing still fails across machines.
        let empty = Json::parse(r#"{"machine": {"cpus": 1}, "workloads": {}}"#).unwrap();
        let fails = compare_reports(&old, &empty, 0.25, 0.005);
        assert!(fails[0].contains("disappeared"), "{fails:?}");
    }

    #[test]
    fn strip_secs_removes_only_secs() {
        let j = report(0.5);
        let stripped = strip_secs(&j);
        let phase = stripped
            .get("workloads")
            .and_then(|w| w.get("w"))
            .and_then(|r| r.get("phases"))
            .and_then(|p| p.get("matvec"))
            .expect("phase kept");
        assert!(phase.get("secs").is_none());
        assert!(phase.get("calls").is_some());
    }
}
