//! Workload builders: the exact domains of the paper's evaluation section.

use carve_core::Mesh;
use carve_geom::{CarvedSolids, CompositeDomain, RetainBox, Sphere, Subdomain};
use carve_sfc::Curve;

/// §4.5.1: the `16×1×1` elongated channel carved from the unit cube
/// (scale = 16 physical units per cube side), refined at the channel walls.
pub struct ChannelWorkload {
    pub domain: RetainBox<3>,
    pub scale: f64,
}

impl ChannelWorkload {
    pub fn new() -> Self {
        Self {
            domain: RetainBox::channel([1.0, 1.0 / 16.0, 1.0 / 16.0]),
            scale: 16.0,
        }
    }

    pub fn mesh(&self, base: u8, boundary: u8, order: u64) -> Mesh<3> {
        Mesh::build(&self.domain, Curve::Hilbert, base, boundary, order)
    }
}

impl Default for ChannelWorkload {
    fn default() -> Self {
        Self::new()
    }
}

/// §4.5.2: a sphere of diameter 1 carved from a `10×10×10` cube
/// (unit-cube radius 0.05), with adaptive refinement toward the sphere.
pub struct SphereWorkload {
    pub domain: CarvedSolids<3>,
    pub sphere: Sphere<3>,
    pub scale: f64,
}

impl SphereWorkload {
    pub fn new() -> Self {
        let sphere = Sphere::new([0.5; 3], 0.05);
        Self {
            domain: CarvedSolids::new(vec![Box::new(sphere)]),
            sphere,
            scale: 10.0,
        }
    }

    pub fn mesh(&self, base: u8, boundary: u8, order: u64) -> Mesh<3> {
        Mesh::build(&self.domain, Curve::Hilbert, base, boundary, order)
    }
}

impl Default for SphereWorkload {
    fn default() -> Self {
        Self::new()
    }
}

/// §4.6 / Table 4: the `128×4×1` microfluidic channel (scale = 128).
pub struct LongChannelWorkload {
    pub domain: RetainBox<3>,
    pub scale: f64,
}

impl LongChannelWorkload {
    pub fn new() -> Self {
        Self {
            domain: RetainBox::channel([1.0, 4.0 / 128.0, 1.0 / 128.0]),
            scale: 128.0,
        }
    }

    pub fn mesh(&self, base: u8, boundary: u8, order: u64) -> Mesh<3> {
        Mesh::build(&self.domain, Curve::Hilbert, base, boundary, order)
    }
}

impl Default for LongChannelWorkload {
    fn default() -> Self {
        Self::new()
    }
}

/// §5 validation: flow past a sphere, `(10d, 6d, 6d)` domain, sphere d=1 at
/// `(3d, 3d, 3d)` — scale = 10, sphere radius 0.05 at (0.3, 0.3, 0.3).
pub struct DragSphereWorkload {
    pub domain: CompositeDomain<3>,
    pub sphere: Sphere<3>,
    pub scale: f64,
}

impl DragSphereWorkload {
    pub fn new() -> Self {
        let sphere = Sphere::new([0.3, 0.3, 0.3], 0.05);
        Self {
            domain: CompositeDomain {
                retain: RetainBox::new([0.0; 3], [1.0, 0.6, 0.6]),
                carved: CarvedSolids::new(vec![Box::new(sphere)]),
            },
            sphere,
            scale: 10.0,
        }
    }

    pub fn mesh(&self, base: u8, boundary: u8, order: u64) -> Mesh<3> {
        Mesh::build(&self.domain, Curve::Hilbert, base, boundary, order)
    }
}

impl Default for DragSphereWorkload {
    fn default() -> Self {
        Self::new()
    }
}

/// Sphere-in-unit-cube used by Table 2 (f_elem/f_DOF): base 4, object
/// refinement swept.
pub fn table2_sphere() -> CarvedSolids<3> {
    CarvedSolids::new(vec![Box::new(Sphere::new([0.5; 3], 0.25))])
}

/// A 2D channel of the given aspect ratio for the Table 1 conditioning
/// study: retain `\[0,1\] × [0,1/aspect]` so elements stay square.
pub fn table1_channel(aspect: u32) -> RetainBox<2> {
    RetainBox::channel([1.0, 1.0 / aspect as f64])
}

/// Counts (elements, dofs) of a mesh built over `domain`.
pub fn mesh_counts<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    base: u8,
    boundary: u8,
    order: u64,
) -> (usize, usize) {
    let m = Mesh::build(domain, Curve::Hilbert, base, boundary, order);
    (m.num_elems(), m.num_dofs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_keeps_unit_aspect_elements() {
        let w = ChannelWorkload::new();
        let m = w.mesh(5, 5, 1);
        // All elements are cubes by construction; the channel is 16 long,
        // 1 wide/high in physical units: level-5 elements are 16/32 = 0.5
        // physical units; counts: 32 × 2 × 2.
        assert_eq!(m.num_elems(), 32 * 2 * 2);
    }

    #[test]
    fn sphere_workload_carves() {
        let w = SphereWorkload::new();
        let m = w.mesh(4, 6, 1);
        let full = 1usize << (3 * 4);
        assert!(m.num_elems() > full / 2, "most of the cube is retained");
        // Some intercepted elements at the sphere.
        assert!(!m.intercepted_elems().is_empty());
    }

    #[test]
    fn long_channel_is_thin() {
        let w = LongChannelWorkload::new();
        let m = w.mesh(7, 7, 1);
        // 128 long, 4 wide, 1 high at level 7 (cell = 1 phys unit).
        assert_eq!(m.num_elems(), 128 * 4);
    }
}
