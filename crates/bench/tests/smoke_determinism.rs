//! The smoke benchmark must be deterministic modulo wall-clock: two runs in
//! the same process produce identical phases, call counts, and counters —
//! the property the CI perf gate relies on to diff structure exactly.

use carve_bench::smoke::{run_smoke, strip_secs};
use carve_io::Json;

fn phase<'a>(report: &'a Json, workload: &str, path: &str) -> &'a Json {
    report
        .get("workloads")
        .and_then(|w| w.get(workload))
        .and_then(|r| r.get("phases"))
        .and_then(|p| p.get(path))
        .unwrap_or_else(|| panic!("missing phase {path:?} in workload {workload:?}"))
}

fn calls(report: &Json, workload: &str, path: &str) -> f64 {
    phase(report, workload, path)
        .get("calls")
        .and_then(Json::as_f64)
        .expect("calls is a number")
}

fn counter(report: &Json, workload: &str, path: &str, name: &str) -> f64 {
    phase(report, workload, path)
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing counter {name:?} on {workload}/{path}"))
}

/// Sums a counter over every phase of a workload — for counters (like the
/// loss-recovery ones) that land on whichever phase was active when the
/// lane frame was recovered.
fn counter_sum(report: &Json, workload: &str, name: &str) -> f64 {
    fn walk(j: &Json, name: &str, acc: &mut f64) {
        if let Json::Obj(fields) = j {
            for (k, v) in fields {
                if k == "counters" {
                    if let Some(x) = v.get(name).and_then(Json::as_f64) {
                        *acc += x;
                    }
                } else {
                    walk(v, name, acc);
                }
            }
        }
    }
    let mut acc = 0.0;
    let w = report
        .get("workloads")
        .and_then(|w| w.get(workload))
        .unwrap_or_else(|| panic!("missing workload {workload:?}"));
    walk(w, name, &mut acc);
    acc
}

#[test]
fn smoke_report_is_deterministic_modulo_secs() {
    let a = run_smoke();
    let b = run_smoke();
    assert_eq!(
        strip_secs(&a).to_string_pretty(),
        strip_secs(&b).to_string_pretty(),
        "two smoke runs disagree beyond the secs fields"
    );

    // The acceptance phases: matvec breakdown and ghost-exchange bytes must
    // be present and non-zero in both workloads.
    for w in ["channel", "carved_sphere"] {
        for p in [
            "matvec",
            "matvec/top_down",
            "matvec/leaf",
            "matvec/bottom_up",
        ] {
            assert!(calls(&a, w, p) > 0.0, "{w}/{p} has zero calls");
        }
        assert!(counter(&a, w, "matvec/leaf", "leaves") > 0.0);
        assert!(counter(&a, w, "matvec/top_down", "node_copies") > 0.0);
        // Overlapped exchange: the post happens under `ghost_read` (bytes and
        // per-neighbor messages counted at send time), while the payloads
        // land inside the traversal's `matvec/ghost_wait` sub-phase.
        assert!(counter(&a, w, "ghost_read", "bytes_sent") > 0.0);
        assert!(counter(&a, w, "ghost_read", "msg_count") > 0.0);
        assert!(counter(&a, w, "ghost_read", "neighbor_ranks") > 0.0);
        assert!(calls(&a, w, "matvec/ghost_wait") > 0.0);
        assert!(counter(&a, w, "matvec/ghost_wait", "bytes_received") > 0.0);
        assert!(counter(&a, w, "ghost_accumulate", "bytes_sent") > 0.0);
        // Distributed Krylov stage: every inner-product batch rides one
        // fused all-reduce, and multi-pair batches record the saving.
        assert!(calls(&a, w, "krylov_dist/matvec") > 0.0);
        assert!(counter(&a, w, "krylov_dist", "reductions_fused") > 0.0);
        // Sequential solve phases from the same workload document.
        assert!(calls(&a, w, "assemble") > 0.0);
        assert!(counter(&a, w, "krylov", "iterations") > 0.0);
        // Mesh pipeline phases.
        for p in ["construct", "balance", "nodes", "treesort", "ownership"] {
            assert!(calls(&a, w, p) > 0.0, "{w}/{p} has zero calls");
        }
    }

    // Recovery workload: a lossy-chaos solve with one injected rank kill.
    // The supervisor retried exactly once, every rank restored from its
    // checkpoint, and the lane retry protocol recovered injected drops and
    // corruption (counts are seed-deterministic; the timing-dependent
    // `retries`/`backoff_ns` are stripped above instead of asserted).
    assert!(calls(&a, "recovery", "krylov_recovery") > 0.0);
    assert!(calls(&a, "recovery", "krylov_recovery/matvec") > 0.0);
    assert_eq!(
        counter(&a, "recovery", "recovery/retry", "solve_retries"),
        1.0
    );
    assert!(calls(&a, "recovery", "recovery/restore") > 0.0);
    assert!(counter_sum(&a, "recovery", "ranks_restored") > 0.0);
    assert!(
        counter_sum(&a, "recovery", "drops_detected") > 0.0,
        "lossy chaos must inject (and the lanes recover) dropped frames"
    );
    assert!(
        counter_sum(&a, "recovery", "corrupt_detected") > 0.0,
        "lossy chaos must inject (and the lanes recover) corrupted frames"
    );

    // Transient adapt workload: the dynamic-AMR phases are on record, the
    // marking and incremental-patch stages ran, and refine/coarsen both
    // fired. `full_rebuilds` counts only repartitioning cycles, so the
    // patch path (present below) really was incremental.
    for p in ["adapt", "adapt/mark", "adapt/refine", "adapt/patch"] {
        assert!(calls(&a, "transient", p) > 0.0, "transient/{p} missing");
    }
    assert!(counter_sum(&a, "transient", "elements_refined") > 0.0);
    assert!(counter_sum(&a, "transient", "elements_coarsened") > 0.0);
    assert!(counter_sum(&a, "transient", "nodes_interior_fast") > 0.0);
    assert!(counter_sum(&a, "transient", "iterations") > 0.0);

    // Serving workload: the scenario cache and block solver run a fixed
    // request trace, so every serve counter is a pure function of the seed
    // (and, via the strip_secs diff above, bitwise reproducible). Two
    // scenarios: one miss, two hits, one k=4 block solve, one 32-point
    // query burst each, then a full eviction sweep — counters are summed
    // over the two rank-local caches by the aggregator.
    assert_eq!(
        counter(&a, "serve", "serve/miss_solve", "cache_misses"),
        4.0
    );
    assert!(counter(&a, "serve", "serve/miss_solve", "cache_bytes") > 0.0);
    assert_eq!(counter(&a, "serve", "serve/hit_solve", "cache_hits"), 8.0);
    assert_eq!(counter(&a, "serve", "serve/hit_solve", "serve_solves"), 8.0);
    assert_eq!(
        counter(&a, "serve", "serve/block_solve", "block_solves"),
        4.0
    );
    assert_eq!(counter(&a, "serve", "serve/block_solve", "block_rhs"), 16.0);
    assert_eq!(
        counter(&a, "serve", "serve/point_query", "eval_points"),
        128.0
    );
    assert_eq!(counter(&a, "serve", "serve", "cache_evictions"), 4.0);
    // The warm solves ride fused reductions like every other Krylov stage.
    assert!(counter(&a, "serve", "serve/hit_solve", "reductions_fused") > 0.0);
}
