//! The per-rank communicator and the SPMD launcher.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

type Packet = (usize, u64, Box<dyn Any + Send>);

/// Reduction operator for [`Comm::all_reduce_f64`] / [`Comm::all_reduce_u64`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

/// Communication counters for one rank (exact byte accounting).
#[derive(Clone, Copy, Debug, Default)]
pub struct CommStats {
    /// Payload bytes sent by this rank (point-to-point and collectives).
    pub bytes_sent: u64,
    /// Number of messages sent.
    pub messages: u64,
}

struct BarrierState {
    count: Mutex<(usize, u64)>, // (arrived, generation)
    cv: Condvar,
}

/// One rank's handle to the simulated cluster.
///
/// Not `Sync`: each rank owns its handle on its own thread, like an MPI rank.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Packet>>>,
    receiver: Receiver<Packet>,
    /// Out-of-order messages parked until a matching `recv`.
    inbox: RefCell<Vec<Packet>>,
    barrier: Arc<BarrierState>,
    /// Monotonic collective-operation counter; identical across ranks because
    /// execution is SPMD, so it doubles as a collision-free message tag.
    op_counter: Cell<u64>,
    stats: Cell<CommStats>,
}

/// Tags with this bit set are reserved for user point-to-point traffic.
const USER_TAG_BIT: u64 = 1 << 63;

impl Comm {
    /// A size-1 communicator: collectives become no-ops/identity. Useful for
    /// running distributed algorithms sequentially.
    pub fn solo() -> Self {
        let (tx, rx) = unbounded();
        Comm {
            rank: 0,
            size: 1,
            senders: Arc::new(vec![tx]),
            receiver: rx,
            inbox: RefCell::new(Vec::new()),
            barrier: Arc::new(BarrierState {
                count: Mutex::new((0, 0)),
                cv: Condvar::new(),
            }),
            op_counter: Cell::new(0),
            stats: Cell::new(CommStats::default()),
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Exact communication counters accumulated so far on this rank.
    pub fn stats(&self) -> CommStats {
        self.stats.get()
    }

    fn account(&self, bytes: u64) {
        let mut s = self.stats.get();
        s.bytes_sent += bytes;
        s.messages += 1;
        self.stats.set(s);
    }

    fn next_tag(&self) -> u64 {
        let t = self.op_counter.get();
        self.op_counter.set(t + 1);
        t
    }

    fn send_raw<T: Send + 'static>(&self, to: usize, tag: u64, msg: T, bytes: u64) {
        self.account(bytes);
        self.senders[to]
            .send((self.rank, tag, Box::new(msg)))
            .expect("receiver alive");
    }

    fn recv_raw<T: Send + 'static>(&self, from: usize, tag: u64) -> T {
        // First check parked messages.
        {
            let mut inbox = self.inbox.borrow_mut();
            if let Some(pos) = inbox.iter().position(|(f, t, _)| *f == from && *t == tag) {
                let (_, _, b) = inbox.swap_remove(pos);
                return *b.downcast::<T>().expect("message type mismatch");
            }
        }
        loop {
            let (f, t, b) = self.receiver.recv().expect("senders alive");
            if f == from && t == tag {
                return *b.downcast::<T>().expect("message type mismatch");
            }
            self.inbox.borrow_mut().push((f, t, b));
        }
    }

    /// Point-to-point send of a typed vector. `tag` must fit in 63 bits.
    pub fn send<T: Send + 'static>(&self, to: usize, tag: u64, msg: Vec<T>) {
        let bytes = (msg.len() * std::mem::size_of::<T>()) as u64;
        self.send_raw(to, USER_TAG_BIT | tag, msg, bytes);
    }

    /// Matching receive for [`Comm::send`].
    pub fn recv<T: Send + 'static>(&self, from: usize, tag: u64) -> Vec<T> {
        self.recv_raw(from, USER_TAG_BIT | tag)
    }

    /// Barrier across all ranks.
    pub fn barrier(&self) {
        if self.size == 1 {
            return;
        }
        let mut guard = self.barrier.count.lock();
        let gen = guard.1;
        guard.0 += 1;
        if guard.0 == self.size {
            guard.0 = 0;
            guard.1 += 1;
            self.barrier.cv.notify_all();
        } else {
            while guard.1 == gen {
                self.barrier.cv.wait(&mut guard);
            }
        }
    }

    /// Gathers one value from every rank, returned on all ranks in rank
    /// order (MPI `Allgather`).
    pub fn all_gather<T: Clone + Send + 'static>(&self, v: T) -> Vec<T> {
        self.all_gatherv(vec![v])
            .into_iter()
            .map(|mut x| x.pop().expect("one element per rank"))
            .collect()
    }

    /// Gathers a vector from every rank (MPI `Allgatherv`); result `r[i]` is
    /// rank `i`'s contribution.
    pub fn all_gatherv<T: Clone + Send + 'static>(&self, v: Vec<T>) -> Vec<Vec<T>> {
        let tag = self.next_tag();
        if self.size == 1 {
            return vec![v];
        }
        let bytes = (v.len() * std::mem::size_of::<T>()) as u64;
        for to in 0..self.size {
            if to != self.rank {
                self.account(bytes);
                self.senders[to]
                    .send((self.rank, tag, Box::new(v.clone())))
                    .expect("receiver alive");
            }
        }
        let mut out: Vec<Vec<T>> = Vec::with_capacity(self.size);
        for from in 0..self.size {
            if from == self.rank {
                out.push(v.clone());
            } else {
                out.push(self.recv_raw(from, tag));
            }
        }
        out
    }

    /// All-reduce of `f64`/`usize`-like scalars via [`ReduceOp`].
    pub fn all_reduce_f64(&self, v: f64, op: ReduceOp) -> f64 {
        let all = self.all_gather(v);
        match op {
            ReduceOp::Sum => all.iter().sum(),
            ReduceOp::Min => all.iter().cloned().fold(f64::INFINITY, f64::min),
            ReduceOp::Max => all.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// All-reduce for u64.
    pub fn all_reduce_u64(&self, v: u64, op: ReduceOp) -> u64 {
        let all = self.all_gather(v);
        match op {
            ReduceOp::Sum => all.iter().sum(),
            ReduceOp::Min => all.iter().cloned().min().unwrap(),
            ReduceOp::Max => all.iter().cloned().max().unwrap(),
        }
    }

    /// Exclusive prefix sum across ranks (MPI `Exscan`; rank 0 gets 0).
    pub fn exscan_u64(&self, v: u64) -> u64 {
        let all = self.all_gather(v);
        all[..self.rank].iter().sum()
    }

    /// Personalized all-to-all (MPI `Alltoallv`): `sends[i]` goes to rank
    /// `i`; the result's `r[i]` is what rank `i` sent here.
    pub fn all_to_allv<T: Clone + Send + 'static>(&self, mut sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(sends.len(), self.size);
        let tag = self.next_tag();
        if self.size == 1 {
            return sends;
        }
        for to in 0..self.size {
            if to != self.rank {
                let payload = std::mem::take(&mut sends[to]);
                let bytes = (payload.len() * std::mem::size_of::<T>()) as u64;
                self.account(bytes);
                self.senders[to]
                    .send((self.rank, tag, Box::new(payload)))
                    .expect("receiver alive");
            }
        }
        let mut out: Vec<Vec<T>> = Vec::with_capacity(self.size);
        for from in 0..self.size {
            if from == self.rank {
                out.push(std::mem::take(&mut sends[from]));
            } else {
                out.push(self.recv_raw(from, tag));
            }
        }
        out
    }

    /// Broadcast from `root` to all ranks.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, v: Option<Vec<T>>) -> Vec<T> {
        let tag = self.next_tag();
        if self.size == 1 {
            return v.expect("root provides the value");
        }
        if self.rank == root {
            let v = v.expect("root provides the value");
            let bytes = (v.len() * std::mem::size_of::<T>()) as u64;
            for to in 0..self.size {
                if to != root {
                    self.account(bytes);
                    self.senders[to]
                        .send((self.rank, tag, Box::new(v.clone())))
                        .expect("receiver alive");
                }
            }
            v
        } else {
            self.recv_raw(root, tag)
        }
    }
}

/// Runs `f` as an SPMD program over `nranks` ranks (threads); returns every
/// rank's result in rank order.
pub fn run_spmd<R, F>(nranks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    assert!(nranks >= 1);
    if nranks == 1 {
        let comm = Comm::solo();
        return vec![f(&comm)];
    }
    let mut txs = Vec::with_capacity(nranks);
    let mut rxs = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let senders = Arc::new(txs);
    let barrier = Arc::new(BarrierState {
        count: Mutex::new((0, 0)),
        cv: Condvar::new(),
    });
    let mut results: Vec<Option<R>> = (0..nranks).map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (rank, rx) in rxs.into_iter().enumerate() {
            let senders = Arc::clone(&senders);
            let barrier = Arc::clone(&barrier);
            let f = &f;
            handles.push(s.spawn(move |_| {
                let comm = Comm {
                    rank,
                    size: nranks,
                    senders,
                    receiver: rx,
                    inbox: RefCell::new(Vec::new()),
                    barrier,
                    op_counter: Cell::new(0),
                    stats: Cell::new(CommStats::default()),
                };
                f(&comm)
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("rank panicked"));
        }
    })
    .expect("spmd scope");
    results.into_iter().map(|r| r.expect("joined")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gather_orders_by_rank() {
        let res = run_spmd(4, |c| c.all_gather(c.rank() * 10));
        for r in res {
            assert_eq!(r, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn all_reduce_ops() {
        let res = run_spmd(5, |c| {
            (
                c.all_reduce_f64(c.rank() as f64, ReduceOp::Sum),
                c.all_reduce_u64(c.rank() as u64 + 1, ReduceOp::Min),
                c.all_reduce_u64(c.rank() as u64, ReduceOp::Max),
            )
        });
        for (s, mn, mx) in res {
            assert_eq!(s, 10.0);
            assert_eq!(mn, 1);
            assert_eq!(mx, 4);
        }
    }

    #[test]
    fn exscan() {
        let res = run_spmd(4, |c| c.exscan_u64(c.rank() as u64 + 1));
        assert_eq!(res, vec![0, 1, 3, 6]);
    }

    #[test]
    fn all_to_allv_transposes() {
        let res = run_spmd(3, |c| {
            let sends: Vec<Vec<u32>> = (0..3)
                .map(|to| vec![(c.rank() * 100 + to) as u32])
                .collect();
            c.all_to_allv(sends)
        });
        // rank r receives [r, 100+r, 200+r]
        for (r, got) in res.iter().enumerate() {
            let flat: Vec<u32> = got.iter().flatten().copied().collect();
            assert_eq!(flat, vec![r as u32, 100 + r as u32, 200 + r as u32]);
        }
    }

    #[test]
    fn point_to_point_ring() {
        let res = run_spmd(4, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 7, vec![c.rank() as u64]);
            c.recv::<u64>(prev, 7)[0]
        });
        assert_eq!(res, vec![3, 0, 1, 2]);
    }

    #[test]
    fn out_of_order_tags_are_parked() {
        let res = run_spmd(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![1u8]);
                c.send(1, 2, vec![2u8]);
                0
            } else {
                // Receive in reverse order of sending.
                let b = c.recv::<u8>(0, 2)[0];
                let a = c.recv::<u8>(0, 1)[0];
                (a as usize) * 10 + b as usize
            }
        });
        assert_eq!(res[1], 12);
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let res = run_spmd(3, |c| {
            let v = if c.rank() == 2 { Some(vec![42u32, 7]) } else { None };
            c.bcast(2, v)
        });
        for r in res {
            assert_eq!(r, vec![42, 7]);
        }
    }

    #[test]
    fn stats_count_bytes() {
        let res = run_spmd(2, |c| {
            c.send((c.rank() + 1) % 2, 0, vec![0u64; 10]);
            let _ = c.recv::<u64>((c.rank() + 1) % 2, 0);
            c.stats()
        });
        for s in res {
            assert_eq!(s.bytes_sent, 80);
            assert_eq!(s.messages, 1);
        }
    }

    #[test]
    fn barrier_many_rounds() {
        let res = run_spmd(6, |c| {
            for _ in 0..50 {
                c.barrier();
            }
            c.rank()
        });
        assert_eq!(res, vec![0, 1, 2, 3, 4, 5]);
    }
}
