//! The per-rank communicator and the fault-tolerant SPMD launcher.
//!
//! Failure model (see DESIGN.md "Failure model"):
//!
//! * every rank runs under `catch_unwind`; a panic on one rank trips a
//!   cluster-wide **abort flag** instead of deadlocking the survivors;
//! * every blocking wait (`recv`, `barrier`, collectives) polls that flag
//!   and a **watchdog deadline** (`CARVE_COMM_TIMEOUT` seconds, or
//!   [`SpmdOptions::timeout`]); on expiry the rank emits a diagnostic
//!   naming what it awaited and which messages are parked, then aborts the
//!   cluster;
//! * all failures surface as structured [`CommError`]s collected into one
//!   [`SpmdError`] by [`try_run_spmd`] / [`run_spmd_with`];
//! * a seeded [`FaultPlan`] can delay, reorder, duplicate, drop, or corrupt
//!   deliveries, or kill a rank at a chosen op count, deterministically per
//!   seed;
//! * the sequenced lane frames of [`crate::ExchangeHandle`] recover dropped
//!   or corrupted deliveries through a bounded retransmit-retry protocol
//!   with exponential backoff (`CARVE_RETRY_BASE` / `CARVE_RETRY_MAX`), so
//!   a lossy schedule still converges to the bitwise fault-free result.

use std::any::{type_name, Any};
use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::error::{CommError, FailureKind, RankFailure, SpmdError};
use crate::fault::{ChaosProfile, FaultPlan};

type Packet = (usize, u64, Box<dyn Any + Send>);

/// How often blocking waits wake to re-check the abort flag and deadline.
const POLL: Duration = Duration::from_millis(2);

/// Environment variable holding the watchdog deadline in (fractional)
/// seconds for every blocking communication wait.
pub const TIMEOUT_ENV: &str = "CARVE_COMM_TIMEOUT";

/// Default watchdog deadline when neither [`TIMEOUT_ENV`] nor
/// [`SpmdOptions::timeout`] is set: generous enough for debug-build meshes,
/// far short of "hung forever".
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

fn default_timeout() -> Duration {
    std::env::var(TIMEOUT_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .map(Duration::from_secs_f64)
        .unwrap_or(DEFAULT_TIMEOUT)
}

/// Environment variable enabling ambient fault injection for every SPMD run
/// launched without an explicit [`FaultPlan`]. The value is
/// `seed[:profile]` where `profile` is `delay` (default), `chaos`, or
/// `lossy`; a seed of `0`, empty, or unset disables it. Used by CI to run
/// the whole test suite under adversarial message timing
/// (`CARVE_CHAOS=29`) and under frame loss + corruption
/// (`CARVE_CHAOS=29:lossy`) — results must stay bit-exact either way.
pub const CHAOS_ENV: &str = "CARVE_CHAOS";

/// Environment variable holding the initial per-lane receive timeout in
/// (fractional) seconds before the retransmit-retry path asks the
/// transport's retransmit buffer for a missing frame.
pub const RETRY_BASE_ENV: &str = "CARVE_RETRY_BASE";

/// Environment variable bounding the number of retransmit-retry attempts
/// per expected frame; once exhausted the wait falls through to the
/// watchdog deadline with the retry history in its diagnostic.
pub const RETRY_MAX_ENV: &str = "CARVE_RETRY_MAX";

/// Default initial per-lane receive timeout: long enough that a healthy
/// (merely delayed) frame almost always arrives first, short enough that a
/// genuinely dropped frame costs milliseconds, not the watchdog deadline.
pub const DEFAULT_RETRY_BASE: Duration = Duration::from_millis(25);

/// Default bound on retransmit-retry attempts per frame.
pub const DEFAULT_RETRY_MAX: u32 = 10;

/// Ambient plan from [`CHAOS_ENV`]: parses `seed[:profile]` and returns the
/// profile's seeded plan. Unknown profile names conservatively fall back to
/// delay-only (ambient injection must never turn a typo into a hard
/// failure or an unintended traffic perturbation).
fn env_chaos_plan() -> Option<FaultPlan> {
    let raw = std::env::var(CHAOS_ENV).ok()?;
    let raw = raw.trim();
    let (seed_part, profile) = match raw.split_once(':') {
        Some((s, p)) => (s, ChaosProfile::parse(p)),
        None => (raw, ChaosProfile::Delay),
    };
    let seed = seed_part.trim().parse::<u64>().ok().filter(|&s| s != 0)?;
    Some(profile.plan(seed))
}

fn default_retry_base() -> Duration {
    std::env::var(RETRY_BASE_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .map(Duration::from_secs_f64)
        .unwrap_or(DEFAULT_RETRY_BASE)
}

fn default_retry_max() -> u32 {
    std::env::var(RETRY_MAX_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .unwrap_or(DEFAULT_RETRY_MAX)
}

/// Mutex poisoning is irrelevant here: the abort protocol owns failure
/// propagation, so a lock held across a panic is still structurally sound.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn fmt_tag(tag: u64) -> String {
    if tag & USER_TAG_BIT != 0 {
        format!("user tag {}", tag & !USER_TAG_BIT)
    } else if tag & COLL_DATA_BIT != 0 {
        format!("collective op {} (data phase)", tag & !COLL_DATA_BIT)
    } else {
        format!("collective op {tag}")
    }
}

/// Reduction operator for [`Comm::all_reduce_f64`] / [`Comm::all_reduce_u64`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

/// Communication counters for one rank (exact byte accounting, both
/// directions; Fig. 11's raw data).
#[derive(Clone, Copy, Debug, Default)]
pub struct CommStats {
    /// Payload bytes sent by this rank (point-to-point and collectives).
    pub bytes_sent: u64,
    /// Number of messages sent.
    pub messages: u64,
    /// Payload bytes received by this rank; in a fault-free run the cluster
    /// totals of `bytes_sent` and `bytes_received` are equal.
    pub bytes_received: u64,
    /// Number of messages received.
    pub messages_received: u64,
    /// Number of collective operations this rank has entered (barrier,
    /// all_gather(v), all_reduce_*, exscan, all_to_allv, bcast).
    pub collective_calls: u64,
    /// Messages sent from inside collectives. With the tree-structured
    /// implementations, `collective_messages / collective_calls` is
    /// O(log2 size) + O(non-empty all_to_allv lanes) — asserted by the
    /// counter-complexity tests, so an accidental O(size) regression fails
    /// loudly.
    pub collective_messages: u64,
}

/// Sequence-numbered, checksummed payload of one exchange-lane message.
/// The sequence number pins the frame to its exchange round (rejecting
/// stale retransmitted or duplicated copies); the checksum covers the
/// sequence number and every payload bit, so in-flight corruption is
/// detected at the receiver and recovered from the retransmit store.
#[derive(Clone)]
pub(crate) struct Frame {
    seq: u64,
    checksum: u64,
    data: Vec<f64>,
}

/// Splitmix-style rolling hash over the frame identity and payload bits.
fn frame_checksum(seq: u64, data: &[f64]) -> u64 {
    let mut h = 0x243F_6A88_85A3_08D3u64 ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= (data.len() as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    for v in data {
        h ^= v.to_bits();
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

/// Deterministic backoff jitter: a pure function of the lane identity and
/// attempt number, so concurrent retry timers desynchronize without
/// introducing run-to-run nondeterminism.
fn retry_jitter(rank: usize, from: usize, tag: u64, attempt: u32) -> Duration {
    let mut z = ((rank as u64) << 32)
        ^ ((from as u64) << 16)
        ^ tag
        ^ ((attempt as u64) << 48)
        ^ 0x5851_F42D_4C95_7F2D;
    z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 31;
    Duration::from_micros(z % 1000)
}

/// The cluster's transport-level retransmit buffer. A frame the fault layer
/// drops or corrupts in flight parks its pristine copy here — every
/// reliable link layer keeps such a sender-side buffer — and the receiver's
/// bounded-retry path fetches it by exact identity `(from, to, tag, seq)`,
/// standing in for the NACK round-trip a real MPI progress engine would
/// service asynchronously.
/// Why a pristine frame copy was parked in the retransmit store. Recovery
/// counters key off this (not off which recovery path won), so
/// `drops_detected`/`corrupt_detected` stay pure functions of the fault
/// seed even when a retry timer races the delivery of a mangled copy.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LossKind {
    Dropped,
    Corrupted,
}

/// One stashed retransmit entry: `(from, to, tag, injected kind, frame)`.
type StashedFrame = (usize, usize, u64, LossKind, Frame);

#[derive(Default)]
struct RetransmitStore {
    frames: Mutex<Vec<StashedFrame>>,
}

impl RetransmitStore {
    fn stash(&self, from: usize, to: usize, tag: u64, kind: LossKind, frame: Frame) {
        lock_ignore_poison(&self.frames).push((from, to, tag, kind, frame));
    }

    fn fetch(&self, from: usize, to: usize, tag: u64, seq: u64) -> Option<(LossKind, Frame)> {
        let mut frames = lock_ignore_poison(&self.frames);
        frames
            .iter()
            .position(|(f, t, g, _, fr)| *f == from && *t == to && *g == tag && fr.seq == seq)
            .map(|pos| {
                let (_, _, _, kind, frame) = frames.swap_remove(pos);
                (kind, frame)
            })
    }
}

fn count_recovery(kind: LossKind) {
    match kind {
        LossKind::Dropped => carve_obs::counter("drops_detected", 1),
        LossKind::Corrupted => carve_obs::counter("corrupt_detected", 1),
    }
}

struct BarrierState {
    count: Mutex<(usize, u64)>, // (arrived, generation)
    cv: Condvar,
}

/// Cluster-wide abort flag: first failure wins the `origin` slot; every
/// blocking wait polls `flag`.
#[derive(Default)]
struct AbortState {
    flag: AtomicBool,
    origin: Mutex<Option<(usize, String)>>,
}

impl AbortState {
    fn trip(&self, rank: usize, reason: &str) {
        {
            let mut o = lock_ignore_poison(&self.origin);
            if o.is_none() {
                *o = Some((rank, reason.to_string()));
            }
        }
        self.flag.store(true, Ordering::SeqCst);
    }

    fn tripped(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> (usize, String) {
        lock_ignore_poison(&self.origin)
            .clone()
            .unwrap_or((usize::MAX, String::from("unknown origin")))
    }
}

/// Typed panic payload carrying a structured comm error through an unwind;
/// [`run_spmd_with`] downcasts it back into the [`SpmdError`] report.
pub(crate) struct CommFailure(pub(crate) CommError);

/// One rank's handle to the simulated cluster.
///
/// Not `Sync`: each rank owns its handle on its own thread, like an MPI rank.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Packet>>>,
    receiver: Receiver<Packet>,
    /// Out-of-order messages parked until a matching `recv`.
    inbox: RefCell<Vec<Packet>>,
    barrier: Arc<BarrierState>,
    abort: Arc<AbortState>,
    /// Monotonic collective-operation counter; identical across ranks because
    /// execution is SPMD, so it doubles as a collision-free message tag.
    op_counter: Cell<u64>,
    /// Total communication ops on this rank (collectives + point-to-point);
    /// drives fault-injection kill points and timeout diagnostics.
    ops: Cell<u64>,
    stats: Cell<CommStats>,
    /// Watchdog deadline for every blocking wait.
    timeout: Duration,
    fault: Option<FaultPlan>,
    /// Sends held back by fault-injection reordering, released after the
    /// next send (or at the next blocking op / drop).
    deferred: RefCell<Vec<(usize, Packet)>>,
    /// Cluster-shared retransmit buffer backing lossy-frame recovery.
    lost: Arc<RetransmitStore>,
    /// Initial backoff of the bounded lane-retry loop (`CARVE_RETRY_BASE`).
    retry_base: Duration,
    /// Maximum retransmit fetch attempts per lane wait (`CARVE_RETRY_MAX`).
    retry_max: u32,
    /// Human-readable description of the exchange currently in flight on
    /// this rank (neighbor ranks + posted-but-unmatched lane counts);
    /// appended to watchdog timeout diagnostics so a hung exchange names
    /// its peer.
    exchange_note: RefCell<String>,
}

/// Tags with this bit set are reserved for user point-to-point traffic.
const USER_TAG_BIT: u64 = 1 << 63;

/// Sub-channel bit for the payload phase of two-phase collectives.
/// `all_to_allv` runs a bitmap round and a payload round under a *single*
/// op tag (so the cluster-wide op count per collective call is unchanged);
/// the payload round sets this bit to keep the two message streams apart in
/// the `(from, tag)` matcher. It can never alias another tag: user tags
/// carry [`USER_TAG_BIT`] (bit 63) and plain collective tags come from the
/// op counter, which stays far below 2^62.
const COLL_DATA_BIT: u64 = 1 << 62;

impl Comm {
    /// A size-1 communicator: collectives become no-ops/identity. Useful for
    /// running distributed algorithms sequentially.
    pub fn solo() -> Self {
        let (tx, rx) = channel();
        Comm {
            rank: 0,
            size: 1,
            senders: Arc::new(vec![tx]),
            receiver: rx,
            inbox: RefCell::new(Vec::new()),
            barrier: Arc::new(BarrierState {
                count: Mutex::new((0, 0)),
                cv: Condvar::new(),
            }),
            abort: Arc::new(AbortState::default()),
            op_counter: Cell::new(0),
            ops: Cell::new(0),
            stats: Cell::new(CommStats::default()),
            timeout: default_timeout(),
            fault: None,
            deferred: RefCell::new(Vec::new()),
            lost: Arc::new(RetransmitStore::default()),
            retry_base: default_retry_base(),
            retry_max: default_retry_max(),
            exchange_note: RefCell::new(String::new()),
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Exact communication counters accumulated so far on this rank.
    pub fn stats(&self) -> CommStats {
        self.stats.get()
    }

    /// Total communication operations performed by this rank so far
    /// (collectives and point-to-point calls each count once). This is the
    /// counter [`FaultPlan`] kill points refer to.
    pub fn op_count(&self) -> u64 {
        self.ops.get()
    }

    /// The watchdog deadline applied to every blocking wait on this rank.
    pub fn watchdog_timeout(&self) -> Duration {
        self.timeout
    }

    // --- Failure machinery -----------------------------------------------

    /// Trips the cluster abort flag and unwinds this rank with a structured
    /// error. Never returns.
    fn fail(&self, err: CommError) -> ! {
        self.abort.trip(self.rank, &err.to_string());
        self.barrier.cv.notify_all();
        panic::panic_any(CommFailure(err));
    }

    /// Unwinds this rank because *another* rank tripped the abort flag.
    fn raise_cluster_abort(&self) -> ! {
        let (origin, reason) = self.abort.snapshot();
        panic::panic_any(CommFailure(CommError::ClusterAborted {
            rank: self.rank,
            origin,
            reason,
        }));
    }

    /// Raises a structured protocol-violation error (replaces the bare
    /// panics of pre-fault-tolerance call sites, e.g. "owner rank missing
    /// requested node"), aborting the whole cluster instead of deadlocking
    /// the survivors.
    pub fn protocol_error(&self, detail: impl Into<String>) -> ! {
        self.fail(CommError::Protocol {
            rank: self.rank,
            detail: detail.into(),
        })
    }

    fn check_abort(&self) {
        if self.abort.tripped() {
            self.raise_cluster_abort();
        }
    }

    /// Op-count bookkeeping at every public comm-op entry: abort check plus
    /// the fault-injection kill point.
    fn tick_op(&self) {
        self.check_abort();
        let n = self.ops.get() + 1;
        self.ops.set(n);
        if let Some(f) = &self.fault {
            if f.should_kill(self.rank, n) {
                self.fail(CommError::FaultInjected {
                    rank: self.rank,
                    op: n,
                });
            }
        }
    }

    // --- Accounting -------------------------------------------------------

    pub(crate) fn account_send(&self, bytes: u64) {
        let mut s = self.stats.get();
        s.bytes_sent += bytes;
        s.messages += 1;
        self.stats.set(s);
        // Mirror into the observability layer: the counter lands on the
        // phase active on this rank thread (e.g. ghost_read, treesort),
        // giving per-phase communication volumes for free.
        carve_obs::counter("bytes_sent", bytes);
        carve_obs::counter("msg_count", 1);
    }

    fn account_recv(&self, bytes: u64) {
        let mut s = self.stats.get();
        s.bytes_received += bytes;
        s.messages_received += 1;
        self.stats.set(s);
        carve_obs::counter("bytes_received", bytes);
    }

    pub(crate) fn next_tag(&self) -> u64 {
        self.tick_op();
        self.flush_deferred();
        let t = self.op_counter.get();
        self.op_counter.set(t + 1);
        t
    }

    // --- Transport --------------------------------------------------------

    /// Releases any fault-deferred sends (in original order, after whatever
    /// jumped the queue).
    fn flush_deferred(&self) {
        if self.fault.is_none() {
            return;
        }
        let packets: Vec<(usize, Packet)> = self.deferred.borrow_mut().drain(..).collect();
        for (to, pkt) in packets {
            if self.senders[to].send(pkt).is_err() {
                self.check_abort();
                self.fail(CommError::ChannelClosed {
                    rank: self.rank,
                    to,
                });
            }
        }
    }

    /// Sends one packet, applying fault-injection delay/reorder.
    pub(crate) fn dispatch(&self, to: usize, tag: u64, msg: Box<dyn Any + Send>, salt: u64) {
        if let Some(f) = &self.fault {
            let ops = self.ops.get();
            if let Some(d) = f.delay_for(self.rank, ops, salt) {
                std::thread::sleep(d);
            }
            if f.should_reorder(self.rank, ops, salt) {
                self.deferred.borrow_mut().push((to, (self.rank, tag, msg)));
                return;
            }
        }
        if self.senders[to].send((self.rank, tag, msg)).is_err() {
            self.check_abort();
            self.fail(CommError::ChannelClosed {
                rank: self.rank,
                to,
            });
        }
        // Anything deferred earlier now goes out *after* this packet: that
        // is the reorder.
        self.flush_deferred();
    }

    /// Fault-injection duplicate of a collective payload. The receiver's
    /// matcher consumes exactly one copy per `recv`; the spare parks in the
    /// inbox under a never-reused collective tag, so correctness requires
    /// (and chaos tests verify) that parked garbage is never matched.
    /// Duplicates are not accounted in [`CommStats`]: they are faults, not
    /// protocol traffic.
    pub(crate) fn maybe_duplicate<T: Clone + Send + 'static>(&self, to: usize, tag: u64, v: &[T]) {
        if let Some(f) = &self.fault {
            if f.should_duplicate(self.rank, self.ops.get(), to as u64) {
                let _ = self.senders[to].send((self.rank, tag, Box::new(v.to_vec())));
            }
        }
    }

    fn send_raw<T: Send + 'static>(&self, to: usize, tag: u64, msg: T, bytes: u64) {
        self.account_send(bytes);
        self.dispatch(to, tag, Box::new(msg), to as u64);
    }

    fn downcast_payload<T: Send + 'static>(
        &self,
        from: usize,
        tag: u64,
        b: Box<dyn Any + Send>,
    ) -> T {
        match b.downcast::<T>() {
            Ok(v) => *v,
            Err(_) => self.fail(CommError::TypeMismatch {
                rank: self.rank,
                from,
                tag: fmt_tag(tag),
                expected: type_name::<T>(),
            }),
        }
    }

    fn take_from_inbox(&self, from: usize, tag: u64) -> Option<Packet> {
        let mut inbox = self.inbox.borrow_mut();
        inbox
            .iter()
            .position(|(f, t, _)| *f == from && *t == tag)
            .map(|pos| inbox.swap_remove(pos))
    }

    /// Per-rank diagnostic attached to a watchdog timeout.
    fn recv_wait_context(&self, from: usize, tag: u64) -> String {
        let inbox = self.inbox.borrow();
        let mut parked: Vec<String> = inbox
            .iter()
            .take(16)
            .map(|(f, t, _)| format!("({f}, {})", fmt_tag(*t)))
            .collect();
        if inbox.len() > 16 {
            parked.push(format!("... {} more", inbox.len() - 16));
        }
        let mut ctx = format!(
            "waiting on recv(from rank {from}, {}); {} parked message(s) [{}]",
            fmt_tag(tag),
            inbox.len(),
            parked.join(", ")
        );
        let note = self.exchange_note.borrow();
        if !note.is_empty() {
            ctx.push_str("; outstanding exchange: ");
            ctx.push_str(&note);
        }
        ctx
    }

    /// Registers a description of the exchange in flight on this rank so a
    /// watchdog timeout can name the peer and lane state it was stuck on.
    pub(crate) fn set_exchange_note(&self, note: String) {
        *self.exchange_note.borrow_mut() = note;
    }

    pub(crate) fn clear_exchange_note(&self) {
        self.exchange_note.borrow_mut().clear();
    }

    /// Blocking matched receive with abort polling and watchdog deadline.
    fn recv_raw<T: Send + 'static>(&self, from: usize, tag: u64) -> T {
        self.flush_deferred();
        if let Some((f, t, b)) = self.take_from_inbox(from, tag) {
            return self.downcast_payload(f, t, b);
        }
        let start = Instant::now();
        loop {
            self.check_abort();
            let waited = start.elapsed();
            if waited >= self.timeout {
                self.fail(CommError::Timeout {
                    rank: self.rank,
                    op: self.ops.get(),
                    waited_secs: waited.as_secs_f64(),
                    context: self.recv_wait_context(from, tag),
                });
            }
            match self.receiver.recv_timeout(POLL) {
                Ok((f, t, b)) => {
                    if f == from && t == tag {
                        if let Some(fp) = &self.fault {
                            if let Some(d) =
                                fp.delay_for(self.rank, self.ops.get(), f as u64 | 0x8000)
                            {
                                std::thread::sleep(d);
                            }
                        }
                        return self.downcast_payload(f, t, b);
                    }
                    self.inbox.borrow_mut().push((f, t, b));
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable while this rank lives (it holds a sender to
                    // itself via the shared sender table), so treat it as a
                    // protocol violation rather than ignoring it.
                    self.protocol_error("all senders disconnected while receiving");
                }
            }
        }
    }

    /// Typed receive of a `Vec` payload, with exact-byte receive accounting.
    pub(crate) fn recv_vec<T: Send + 'static>(&self, from: usize, tag: u64) -> Vec<T> {
        let v: Vec<T> = self.recv_raw(from, tag);
        self.account_recv((v.len() * std::mem::size_of::<T>()) as u64);
        v
    }

    // --- Sequenced frame transport (exchange lanes) ------------------------

    /// Sends one sequence-numbered, checksummed exchange-lane frame. This is
    /// the only transport the fault layer's `drop_prob`/`corrupt_prob` apply
    /// to: a dropped frame parks its pristine copy in the cluster retransmit
    /// store instead of going out, and a corrupted frame goes out bit-flipped
    /// while the pristine copy parks — either way [`Comm::recv_frame`]
    /// recovers the original bits, so lossy chaos stays bitwise exact.
    ///
    /// Sends are accounted exactly once per frame here, whether or not the
    /// fault layer interferes, keeping byte/message balances seed-independent.
    pub(crate) fn send_frame(&self, to: usize, tag: u64, seq: u64, data: Vec<f64>) {
        self.account_send((data.len() * std::mem::size_of::<f64>()) as u64);
        let frame = Frame {
            seq,
            checksum: frame_checksum(seq, &data),
            data,
        };
        if let Some(f) = &self.fault {
            let ops = self.ops.get();
            if f.should_drop(self.rank, ops, to as u64) {
                self.lost
                    .stash(self.rank, to, tag, LossKind::Dropped, frame);
                return;
            }
            if f.should_corrupt(self.rank, ops, to as u64) {
                self.lost
                    .stash(self.rank, to, tag, LossKind::Corrupted, frame.clone());
                let mut mangled = frame;
                match mangled.data.first_mut() {
                    Some(v) => *v = f64::from_bits(v.to_bits() ^ 1),
                    None => mangled.checksum ^= 0xDEAD_BEEF,
                }
                self.dispatch(to, tag, Box::new(mangled), to as u64);
                return;
            }
            if f.should_duplicate(self.rank, ops, to as u64) {
                let _ = self.senders[to].send((self.rank, tag, Box::new(frame.clone())));
            }
        }
        self.dispatch(to, tag, Box::new(frame), to as u64);
    }

    /// Validates an incoming exchange-lane packet against the expected
    /// sequence number and its checksum. Returns the payload when the frame
    /// is good; silently discards stale-sequence frames (retransmit
    /// duplicates); recovers corrupted frames from the retransmit store.
    fn accept_frame(
        &self,
        from: usize,
        tag: u64,
        b: Box<dyn Any + Send>,
        seq: u64,
    ) -> Option<Vec<f64>> {
        let frame: Frame = self.downcast_payload(from, tag, b);
        if frame.seq != seq {
            return None;
        }
        if frame.checksum == frame_checksum(frame.seq, &frame.data) {
            self.account_recv((frame.data.len() * std::mem::size_of::<f64>()) as u64);
            return Some(frame.data);
        }
        // Checksum mismatch: the mangled copy arrived, which proves the
        // sender already parked the pristine copy — fetch it immediately.
        carve_obs::counter("retries", 1);
        match self.lost.fetch(from, self.rank, tag, seq) {
            Some((kind, pristine)) => {
                count_recovery(kind);
                self.account_recv((pristine.data.len() * std::mem::size_of::<f64>()) as u64);
                Some(pristine.data)
            }
            None => self.protocol_error(format!(
                "corrupt frame from rank {from} ({}) with no retransmit copy",
                fmt_tag(tag)
            )),
        }
    }

    /// Blocking receive of one exchange-lane frame with bounded retransmit
    /// retry. If the frame does not arrive within the current backoff
    /// window, the retransmit store is polled (standing in for a NACK
    /// round-trip); backoff doubles with deterministic jitter up to
    /// `retry_max` attempts, after which the wait falls through to the
    /// ordinary watchdog deadline with the retry history in its context.
    pub(crate) fn recv_frame(&self, from: usize, tag: u64, seq: u64, what: &str) -> Vec<f64> {
        self.flush_deferred();
        while let Some((f, t, b)) = self.take_from_inbox(from, tag) {
            if let Some(data) = self.accept_frame(f, t, b, seq) {
                return data;
            }
        }
        let start = Instant::now();
        let mut attempt: u32 = 0;
        let mut backoff = self.retry_base;
        let mut next_retry = (self.retry_max > 0).then(|| start + backoff);
        loop {
            self.check_abort();
            let waited = start.elapsed();
            if waited >= self.timeout {
                self.fail(CommError::Timeout {
                    rank: self.rank,
                    op: self.ops.get(),
                    waited_secs: waited.as_secs_f64(),
                    context: format!(
                        "{what}: {attempt} retransmit attempt(s) exhausted; {}",
                        self.recv_wait_context(from, tag)
                    ),
                });
            }
            if let Some(deadline) = next_retry {
                if Instant::now() >= deadline {
                    attempt += 1;
                    carve_obs::counter("retries", 1);
                    if let Some((kind, pristine)) = self.lost.fetch(from, self.rank, tag, seq) {
                        count_recovery(kind);
                        self.account_recv(
                            (pristine.data.len() * std::mem::size_of::<f64>()) as u64,
                        );
                        return pristine.data;
                    }
                    backoff = backoff * 2 + retry_jitter(self.rank, from, tag, attempt);
                    carve_obs::counter("backoff_ns", backoff.as_nanos() as u64);
                    next_retry = (attempt < self.retry_max).then(|| Instant::now() + backoff);
                }
            }
            match self.receiver.recv_timeout(POLL) {
                Ok((f, t, b)) => {
                    if f == from && t == tag {
                        if let Some(fp) = &self.fault {
                            if let Some(d) =
                                fp.delay_for(self.rank, self.ops.get(), f as u64 | 0x8000)
                            {
                                std::thread::sleep(d);
                            }
                        }
                        if let Some(data) = self.accept_frame(f, t, b, seq) {
                            return data;
                        }
                    } else {
                        self.inbox.borrow_mut().push((f, t, b));
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    self.protocol_error("all senders disconnected while receiving frame");
                }
            }
        }
    }

    /// Nonblocking matched receive: drains whatever is already queued on the
    /// channel (parking mismatches in the inbox, as [`Comm::recv_raw`] does)
    /// and returns the payload if the wanted message has arrived.
    pub(crate) fn try_match<T: Send + 'static>(&self, from: usize, tag: u64) -> Option<Vec<T>> {
        self.check_abort();
        self.flush_deferred();
        if let Some((f, t, b)) = self.take_from_inbox(from, tag) {
            let v: Vec<T> = self.downcast_payload(f, t, b);
            self.account_recv((v.len() * std::mem::size_of::<T>()) as u64);
            return Some(v);
        }
        while let Ok((f, t, b)) = self.receiver.try_recv() {
            if f == from && t == tag {
                if let Some(fp) = &self.fault {
                    if let Some(d) = fp.delay_for(self.rank, self.ops.get(), f as u64 | 0x8000) {
                        std::thread::sleep(d);
                    }
                }
                let v: Vec<T> = self.downcast_payload(f, t, b);
                self.account_recv((v.len() * std::mem::size_of::<T>()) as u64);
                return Some(v);
            }
            self.inbox.borrow_mut().push((f, t, b));
        }
        None
    }

    // --- Point-to-point ---------------------------------------------------

    /// Point-to-point send of a typed vector. `tag` must fit in 63 bits.
    pub fn send<T: Send + 'static>(&self, to: usize, tag: u64, msg: Vec<T>) {
        self.tick_op();
        if tag & USER_TAG_BIT != 0 {
            self.protocol_error("user tag must fit in 63 bits");
        }
        let bytes = (msg.len() * std::mem::size_of::<T>()) as u64;
        self.send_raw(to, USER_TAG_BIT | tag, msg, bytes);
    }

    /// Matching receive for [`Comm::send`].
    pub fn recv<T: Send + 'static>(&self, from: usize, tag: u64) -> Vec<T> {
        self.tick_op();
        self.recv_vec(from, USER_TAG_BIT | tag)
    }

    // --- Nonblocking point-to-point ---------------------------------------

    /// Nonblocking send: hands the payload to the transport immediately and
    /// returns. Delivery order and timing are still subject to fault
    /// injection (delay/reorder), exactly like [`Comm::send`]; the channel
    /// transport never blocks the sender, so no send handle is needed.
    pub fn isend<T: Send + 'static>(&self, to: usize, tag: u64, msg: Vec<T>) {
        self.send(to, tag, msg);
    }

    /// Posts a receive and returns a pollable [`RecvHandle`] without
    /// blocking. Matching is pull-based: the handle completes via
    /// [`RecvHandle::try_complete`] (nonblocking) or [`RecvHandle::wait`]
    /// (blocking, with the usual abort polling and watchdog deadline).
    pub fn irecv_post<T: Send + 'static>(&self, from: usize, tag: u64) -> RecvHandle<T> {
        self.tick_op();
        if tag & USER_TAG_BIT != 0 {
            self.protocol_error("user tag must fit in 63 bits");
        }
        RecvHandle::new(from, USER_TAG_BIT | tag)
    }

    // --- Collectives ------------------------------------------------------
    //
    // All collectives are tree-structured (DESIGN.md §2): dissemination
    // rounds for barrier/all_gather(v) (and the reductions/scans riding
    // them), a binomial tree for bcast, and a bitmap round + direct sparse
    // lanes for all_to_allv. Per-call message count per rank is
    // ceil(log2 P) (+ the non-empty lane count for all_to_allv) instead of
    // the P-1 lanes the linear implementations opened, which is what lets
    // threaded mode mirror the O(log P) collectives the replay model's
    // α·log2(P) term assumes. Gathered entries are forwarded verbatim and
    // reductions still fold the rank-ordered gather locally, so results
    // are bitwise identical to the linear path (property-tested below
    // against the `#[cfg(test)]` linear oracles, under chaos).

    /// Snapshot at collective entry for per-collective message counting.
    fn collective_enter(&self) -> u64 {
        self.stats.get().messages
    }

    /// Books the messages sent since [`Comm::collective_enter`] under the
    /// collective counters (`CommStats` + obs), so tests can assert the
    /// O(log P) complexity per call.
    fn collective_exit(&self, entry_messages: u64) {
        let mut s = self.stats.get();
        let sent = s.messages.saturating_sub(entry_messages);
        s.collective_calls += 1;
        s.collective_messages += sent;
        self.stats.set(s);
        carve_obs::counter("coll_calls", 1);
        carve_obs::counter("coll_msgs", sent);
    }

    /// Dissemination all-gather of one entry per rank: ceil(log2 P) rounds;
    /// in the round with offset `d = 2^k` each rank passes the
    /// `min(d, P - d)` entries it holds for ranks `(rank - min(d, P-d), rank]`
    /// to rank `(rank + d) % P` and receives the matching window from
    /// `(rank - d) % P`. Entries travel as `(origin_rank, payload)` pairs
    /// and are never combined, so the rank-ordered result is bitwise
    /// identical to a linear gather.
    ///
    /// Within one call every (sender, receiver) pair occurs at most once:
    /// the round offsets `2^k`, `k < ceil(log2 P)`, are distinct values in
    /// `(0, P)`, so the `(from, tag)` matcher never confuses rounds.
    fn disseminate_gatherv<T: Clone + Send + 'static>(&self, tag: u64, v: Vec<T>) -> Vec<Vec<T>> {
        let p = self.size;
        let mut have: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        have[self.rank] = Some(v);
        let mut d = 1usize;
        while d < p {
            let to = (self.rank + d) % p;
            let from = (self.rank + p - d) % p;
            // The receiver already holds d entries; it is missing at most
            // p - d, so the window never exceeds min(d, p - d).
            let window = d.min(p - d);
            let mut batch: Vec<(u32, Vec<T>)> = Vec::with_capacity(window);
            for off in (0..window).rev() {
                let r = (self.rank + p - off) % p;
                match &have[r] {
                    Some(e) => batch.push((r as u32, e.clone())),
                    None => self.protocol_error("disseminate_gatherv: window entry missing"),
                }
            }
            let bytes: u64 = batch
                .iter()
                .map(|(_, e)| (e.len() * std::mem::size_of::<T>()) as u64)
                .sum();
            self.account_send(bytes);
            self.maybe_duplicate(to, tag, &batch);
            self.dispatch(to, tag, Box::new(batch), to as u64);
            let got: Vec<(u32, Vec<T>)> = self.recv_raw(from, tag);
            let got_bytes: u64 = got
                .iter()
                .map(|(_, e)| (e.len() * std::mem::size_of::<T>()) as u64)
                .sum();
            self.account_recv(got_bytes);
            for (r, e) in got {
                have[r as usize] = Some(e);
            }
            d <<= 1;
        }
        have.into_iter()
            .enumerate()
            .map(|(r, e)| match e {
                Some(e) => e,
                None => self.protocol_error(format!("disseminate_gatherv: no entry for rank {r}")),
            })
            .collect()
    }

    /// Barrier across all ranks, with abort polling and watchdog deadline.
    ///
    /// Dissemination barrier: ceil(log2 P) zero-byte token rounds per rank;
    /// after round `k` every rank has (transitively) heard from the `2^(k+1)`
    /// ranks behind it, so completing all rounds proves every rank entered
    /// the barrier. (The finalize barrier keeps its condvar implementation:
    /// it must stay usable for deadline diagnostics after arbitrary user
    /// code, see `Comm::finalize_barrier`.)
    pub fn barrier(&self) {
        let tag = self.next_tag();
        if self.size == 1 {
            return;
        }
        let entry = self.collective_enter();
        let p = self.size;
        let mut d = 1usize;
        while d < p {
            let to = (self.rank + d) % p;
            let from = (self.rank + p - d) % p;
            self.account_send(0);
            self.maybe_duplicate::<u8>(to, tag, &[]);
            self.dispatch(to, tag, Box::new(Vec::<u8>::new()), to as u64);
            let _token: Vec<u8> = self.recv_raw(from, tag);
            self.account_recv(0);
            d <<= 1;
        }
        self.collective_exit(entry);
    }

    /// The finalize barrier run by the SPMD driver after user code returns.
    ///
    /// Uses a doubled deadline: a peer genuinely stuck in a *communication*
    /// op trips its own 1× watchdog first, so a rank parked here reports a
    /// sympathetic abort rather than racing the stuck rank for root-cause
    /// attribution. The 2× expiry only fires when a peer is wedged outside
    /// comm entirely (e.g. an infinite loop in user code), where this is
    /// the only diagnostic left.
    pub(crate) fn finalize_barrier(&self) {
        self.barrier_with_deadline(
            self.timeout.saturating_mul(2),
            "finalize barrier (peer never finished its closure)",
        );
    }

    fn barrier_with_deadline(&self, deadline: Duration, label: &str) {
        self.tick_op();
        self.flush_deferred();
        if self.size == 1 {
            return;
        }
        let start = Instant::now();
        let mut guard = lock_ignore_poison(&self.barrier.count);
        let gen = guard.1;
        guard.0 += 1;
        if guard.0 == self.size {
            guard.0 = 0;
            guard.1 += 1;
            self.barrier.cv.notify_all();
            return;
        }
        while guard.1 == gen {
            if self.abort.tripped() {
                drop(guard);
                self.raise_cluster_abort();
            }
            let waited = start.elapsed();
            if waited >= deadline {
                let arrived = guard.0;
                drop(guard);
                self.fail(CommError::Timeout {
                    rank: self.rank,
                    op: self.ops.get(),
                    waited_secs: waited.as_secs_f64(),
                    context: format!(
                        "waiting in {label} generation {gen}: {arrived}/{} ranks arrived",
                        self.size
                    ),
                });
            }
            let (g, _) = self
                .barrier
                .cv
                .wait_timeout(guard, POLL)
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
    }

    /// Gathers one value from every rank, returned on all ranks in rank
    /// order (MPI `Allgather`).
    pub fn all_gather<T: Clone + Send + 'static>(&self, v: T) -> Vec<T> {
        self.all_gatherv(vec![v])
            .into_iter()
            .map(|mut x| match x.pop() {
                Some(last) if x.is_empty() => last,
                _ => self.protocol_error("all_gather: expected exactly one element per rank"),
            })
            .collect()
    }

    /// Gathers a vector from every rank (MPI `Allgatherv`); result `r[i]` is
    /// rank `i`'s contribution. Dissemination-structured: ceil(log2 P)
    /// messages per rank instead of P-1.
    pub fn all_gatherv<T: Clone + Send + 'static>(&self, v: Vec<T>) -> Vec<Vec<T>> {
        let tag = self.next_tag();
        if self.size == 1 {
            return vec![v];
        }
        let entry = self.collective_enter();
        let out = self.disseminate_gatherv(tag, v);
        self.collective_exit(entry);
        out
    }

    /// All-reduce of `f64` scalars via [`ReduceOp`]. NaN propagates through
    /// **all** operators (including Min/Max, where `f64::min`/`f64::max`
    /// would silently drop it): every rank agrees on whether the reduction
    /// went bad, which the divergence guards in `carve-la` rely on.
    pub fn all_reduce_f64(&self, v: f64, op: ReduceOp) -> f64 {
        let all = self.all_gather(v);
        match op {
            ReduceOp::Sum => all.iter().sum(),
            ReduceOp::Min => all.iter().fold(f64::INFINITY, |a, &x| {
                if a.is_nan() || x.is_nan() {
                    f64::NAN
                } else {
                    a.min(x)
                }
            }),
            ReduceOp::Max => all.iter().fold(f64::NEG_INFINITY, |a, &x| {
                if a.is_nan() || x.is_nan() {
                    f64::NAN
                } else {
                    a.max(x)
                }
            }),
        }
    }

    /// Fused all-reduce of several `f64` scalars in **one** message per
    /// peer: the whole batch rides a single `all_gatherv` round instead of
    /// one collective per scalar. Element `k` of the result is the reduction
    /// of `vals[k]` across ranks, with the same NaN propagation as
    /// [`Comm::all_reduce_f64`]. This is the transport under the batched
    /// Krylov reductions (`carve-la`'s `Reduce::dots`).
    pub fn all_reduce_f64_many(&self, vals: &[f64], op: ReduceOp) -> Vec<f64> {
        let all = self.all_gatherv(vals.to_vec());
        let mut out = Vec::with_capacity(vals.len());
        for k in 0..vals.len() {
            let lane = all.iter().map(|v| v[k]);
            out.push(match op {
                ReduceOp::Sum => lane.sum(),
                ReduceOp::Min => lane.fold(f64::INFINITY, |a, x| {
                    if a.is_nan() || x.is_nan() {
                        f64::NAN
                    } else {
                        a.min(x)
                    }
                }),
                ReduceOp::Max => lane.fold(f64::NEG_INFINITY, |a, x| {
                    if a.is_nan() || x.is_nan() {
                        f64::NAN
                    } else {
                        a.max(x)
                    }
                }),
            });
        }
        out
    }

    /// All-reduce for u64.
    pub fn all_reduce_u64(&self, v: u64, op: ReduceOp) -> u64 {
        let all = self.all_gather(v);
        match op {
            ReduceOp::Sum => all.iter().sum(),
            ReduceOp::Min => all.iter().copied().min().unwrap_or(v),
            ReduceOp::Max => all.iter().copied().max().unwrap_or(v),
        }
    }

    /// Exclusive prefix sum across ranks (MPI `Exscan`; rank 0 gets 0).
    pub fn exscan_u64(&self, v: u64) -> u64 {
        let all = self.all_gather(v);
        all[..self.rank].iter().sum()
    }

    /// Personalized all-to-all (MPI `Alltoallv`): `sends[i]` goes to rank
    /// `i`; the result's `r[i]` is what rank `i` sent here.
    ///
    /// Sparse-lane structure: a dissemination round first gathers every
    /// rank's destination bitmap (who actually has data for whom), then
    /// payloads travel only on the non-empty lanes, under the same op tag
    /// with `COLL_DATA_BIT` set. Empty lanes cost no message at all and
    /// the self lane never leaves the rank, so a neighbor-sparse exchange
    /// costs ceil(log2 P) + #neighbors messages instead of P-1.
    pub fn all_to_allv<T: Clone + Send + 'static>(&self, mut sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        if sends.len() != self.size {
            self.protocol_error(format!(
                "all_to_allv: {} send lanes for {} ranks",
                sends.len(),
                self.size
            ));
        }
        let tag = self.next_tag();
        if self.size == 1 {
            return sends;
        }
        let entry = self.collective_enter();
        let p = self.size;
        // Round 1: gather destination bitmaps (bit `to` of rank r's bitmap
        // is set iff r has a non-empty lane for `to`).
        let words = p.div_ceil(64);
        let mut bitmap = vec![0u64; words];
        for (to, lane) in sends.iter().enumerate() {
            if to != self.rank && !lane.is_empty() {
                bitmap[to / 64] |= 1 << (to % 64);
            }
        }
        let bitmaps = self.disseminate_gatherv(tag, bitmap);
        // Round 2: payloads on the non-empty lanes only.
        let dtag = tag | COLL_DATA_BIT;
        for (to, lane) in sends.iter_mut().enumerate() {
            if to != self.rank && !lane.is_empty() {
                let payload = std::mem::take(lane);
                let bytes = (payload.len() * std::mem::size_of::<T>()) as u64;
                self.account_send(bytes);
                self.maybe_duplicate(to, dtag, &payload);
                self.dispatch(to, dtag, Box::new(payload), to as u64);
            }
        }
        let mut out: Vec<Vec<T>> = Vec::with_capacity(p);
        for (from, lane) in sends.iter_mut().enumerate() {
            if from == self.rank {
                out.push(std::mem::take(lane));
            } else if bitmaps[from][self.rank / 64] >> (self.rank % 64) & 1 == 1 {
                out.push(self.recv_vec(from, dtag));
            } else {
                out.push(Vec::new());
            }
        }
        self.collective_exit(entry);
        out
    }

    /// Broadcast from `root` to all ranks, over a binomial tree: the root
    /// sends to virtual ranks 1, 2, 4, ... and every recipient forwards to
    /// the subtree below it, so no rank sends more than ceil(log2 P)
    /// messages and the value reaches all ranks in ceil(log2 P) rounds.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, v: Option<Vec<T>>) -> Vec<T> {
        let tag = self.next_tag();
        let unwrap_root = |v: Option<Vec<T>>| match v {
            Some(v) => v,
            None => self.protocol_error("bcast: root must provide the value"),
        };
        if self.size == 1 {
            return unwrap_root(v);
        }
        let entry = self.collective_enter();
        let p = self.size;
        // Virtual rank: the tree is rooted at vrank 0 regardless of `root`.
        let vr = (self.rank + p - root) % p;
        let mut val: Option<Vec<T>> = if vr == 0 { Some(unwrap_root(v)) } else { None };
        let mut d = 1usize;
        while d < p {
            if vr < d {
                if vr + d < p {
                    let to = (vr + d + root) % p;
                    match &val {
                        Some(x) => {
                            let bytes = (x.len() * std::mem::size_of::<T>()) as u64;
                            self.account_send(bytes);
                            self.maybe_duplicate(to, tag, x);
                            self.dispatch(to, tag, Box::new(x.clone()), to as u64);
                        }
                        None => self.protocol_error("bcast: forwarding before receive"),
                    }
                }
            } else if vr < 2 * d {
                let from = (vr - d + root) % p;
                val = Some(self.recv_vec(from, tag));
            }
            d <<= 1;
        }
        self.collective_exit(entry);
        match val {
            Some(x) => x,
            None => self.protocol_error("bcast: no value after final round"),
        }
    }
}

/// Linear (O(P) lanes per call) reference implementations of the
/// collectives, kept as the oracle for the tree-structured rewrites: the
/// property tests below assert the tree results are bitwise identical to
/// these under seeded chaos. Test-only so production code cannot regress
/// onto the linear paths.
#[cfg(test)]
impl Comm {
    pub(crate) fn linear_all_gatherv<T: Clone + Send + 'static>(&self, v: Vec<T>) -> Vec<Vec<T>> {
        let tag = self.next_tag();
        if self.size == 1 {
            return vec![v];
        }
        let bytes = (v.len() * std::mem::size_of::<T>()) as u64;
        for to in 0..self.size {
            if to != self.rank {
                self.account_send(bytes);
                self.maybe_duplicate(to, tag, &v);
                self.dispatch(to, tag, Box::new(v.clone()), to as u64);
            }
        }
        let mut out: Vec<Vec<T>> = Vec::with_capacity(self.size);
        for from in 0..self.size {
            if from == self.rank {
                out.push(v.clone());
            } else {
                out.push(self.recv_vec(from, tag));
            }
        }
        out
    }

    pub(crate) fn linear_all_gather<T: Clone + Send + 'static>(&self, v: T) -> Vec<T> {
        self.linear_all_gatherv(vec![v])
            .into_iter()
            .map(|mut x| match x.pop() {
                Some(last) if x.is_empty() => last,
                _ => self.protocol_error("linear_all_gather: expected one element per rank"),
            })
            .collect()
    }

    pub(crate) fn linear_all_to_allv<T: Clone + Send + 'static>(
        &self,
        mut sends: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let tag = self.next_tag();
        if self.size == 1 {
            return sends;
        }
        for (to, lane) in sends.iter_mut().enumerate() {
            if to != self.rank {
                let payload = std::mem::take(lane);
                let bytes = (payload.len() * std::mem::size_of::<T>()) as u64;
                self.account_send(bytes);
                self.maybe_duplicate(to, tag, &payload);
                self.dispatch(to, tag, Box::new(payload), to as u64);
            }
        }
        let mut out: Vec<Vec<T>> = Vec::with_capacity(self.size);
        for (from, lane) in sends.iter_mut().enumerate() {
            if from == self.rank {
                out.push(std::mem::take(lane));
            } else {
                out.push(self.recv_vec(from, tag));
            }
        }
        out
    }

    pub(crate) fn linear_bcast<T: Clone + Send + 'static>(
        &self,
        root: usize,
        v: Option<Vec<T>>,
    ) -> Vec<T> {
        let tag = self.next_tag();
        let unwrap_root = |v: Option<Vec<T>>| match v {
            Some(v) => v,
            None => self.protocol_error("bcast: root must provide the value"),
        };
        if self.size == 1 {
            return unwrap_root(v);
        }
        if self.rank == root {
            let v = unwrap_root(v);
            let bytes = (v.len() * std::mem::size_of::<T>()) as u64;
            for to in 0..self.size {
                if to != root {
                    self.account_send(bytes);
                    self.maybe_duplicate(to, tag, &v);
                    self.dispatch(to, tag, Box::new(v.clone()), to as u64);
                }
            }
            v
        } else {
            self.recv_vec(root, tag)
        }
    }
}

/// A posted, not-yet-completed receive from [`Comm::irecv_post`] (or the
/// internal collective-tag variant used by [`crate::ExchangeHandle`]).
///
/// The handle is just the match key `(from, tag)`; completion pulls from the
/// owning rank's channel, so every completion call takes the `Comm` back.
/// Dropping an uncompleted handle leaks no resources — the unmatched message
/// simply parks in the inbox like any other out-of-order packet.
pub struct RecvHandle<T: Send + 'static> {
    from: usize,
    tag: u64,
    _payload: std::marker::PhantomData<fn() -> T>,
}

impl<T: Send + 'static> RecvHandle<T> {
    pub(crate) fn new(from: usize, tag: u64) -> Self {
        RecvHandle {
            from,
            tag,
            _payload: std::marker::PhantomData,
        }
    }

    /// The rank this handle is waiting on.
    pub fn from(&self) -> usize {
        self.from
    }

    /// Nonblocking poll: returns the payload if it has arrived. On `None`
    /// the handle stays postable; fault-injection receive delays apply on a
    /// successful match exactly as in the blocking path.
    pub fn try_complete(&self, comm: &Comm) -> Option<Vec<T>> {
        comm.try_match(self.from, self.tag)
    }

    /// Blocking completion with abort polling and the watchdog deadline —
    /// the same failure machinery as [`Comm::recv`], so a lost or misrouted
    /// message surfaces as a structured timeout naming this `(from, tag)`.
    pub fn wait(self, comm: &Comm) -> Vec<T> {
        comm.recv_vec(self.from, self.tag)
    }
}

impl Drop for Comm {
    fn drop(&mut self) {
        // Release fault-deferred sends so a *successfully finishing* rank
        // never silently swallows messages. A rank dropping mid-abort keeps
        // them: it is dead, and dead ranks do not deliver.
        if !self.abort.tripped() {
            let mut d = self.deferred.borrow_mut();
            for (to, pkt) in d.drain(..) {
                let _ = self.senders[to].send(pkt);
            }
        }
    }
}

/// Options for [`run_spmd_with`].
#[derive(Clone, Debug, Default)]
pub struct SpmdOptions {
    /// Watchdog deadline for blocking waits; defaults to `CARVE_COMM_TIMEOUT`
    /// seconds from the environment, then [`DEFAULT_TIMEOUT`].
    pub timeout: Option<Duration>,
    /// Seeded chaos injection; `None` runs clean.
    pub fault: Option<FaultPlan>,
}

impl SpmdOptions {
    pub fn with_timeout(timeout: Duration) -> Self {
        SpmdOptions {
            timeout: Some(timeout),
            fault: None,
        }
    }

    pub fn with_fault(fault: FaultPlan) -> Self {
        SpmdOptions {
            timeout: None,
            fault: Some(fault),
        }
    }

    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

fn failure_from_payload(rank: usize, payload: Box<dyn Any + Send>) -> RankFailure {
    let payload = match payload.downcast::<CommFailure>() {
        Ok(cf) => {
            return RankFailure {
                rank,
                kind: FailureKind::Comm(cf.0),
            }
        }
        Err(p) => p,
    };
    let msg = if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        String::from("<non-string panic payload>")
    };
    RankFailure {
        rank,
        kind: FailureKind::Panic(msg),
    }
}

/// Runs `f` as an SPMD program over `nranks` ranks (threads) with explicit
/// fault-tolerance options. Rank panics are contained: the first failure
/// trips the cluster abort flag, surviving ranks unwind at their next
/// blocking wait, and the whole outcome is reported as one [`SpmdError`].
pub fn run_spmd_with<R, F>(nranks: usize, opts: SpmdOptions, f: F) -> Result<Vec<R>, SpmdError>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    assert!(nranks >= 1);
    let timeout = opts.timeout.unwrap_or_else(default_timeout);
    let ambient_fault = opts.fault.clone().or_else(env_chaos_plan);
    let mut txs = Vec::with_capacity(nranks);
    let mut rxs = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    let senders = Arc::new(txs);
    let barrier = Arc::new(BarrierState {
        count: Mutex::new((0, 0)),
        cv: Condvar::new(),
    });
    let abort = Arc::new(AbortState::default());
    let lost = Arc::new(RetransmitStore::default());
    let retry_base = default_retry_base();
    let retry_max = default_retry_max();
    let outcomes: Vec<Result<R, RankFailure>> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(nranks);
        for (rank, rx) in rxs.into_iter().enumerate() {
            let senders = Arc::clone(&senders);
            let barrier = Arc::clone(&barrier);
            let abort = Arc::clone(&abort);
            let lost = Arc::clone(&lost);
            let fault = ambient_fault.clone();
            let f = &f;
            handles.push(s.spawn(move || {
                let comm = Comm {
                    rank,
                    size: nranks,
                    senders,
                    receiver: rx,
                    inbox: RefCell::new(Vec::new()),
                    barrier,
                    abort,
                    op_counter: Cell::new(0),
                    ops: Cell::new(0),
                    stats: Cell::new(CommStats::default()),
                    timeout,
                    fault,
                    deferred: RefCell::new(Vec::new()),
                    lost,
                    retry_base,
                    retry_max,
                    exchange_note: RefCell::new(String::new()),
                };
                match panic::catch_unwind(AssertUnwindSafe(|| {
                    let r = f(&comm);
                    // Finalize barrier (MPI_Finalize-style): no rank drops
                    // its receiver while peers may still hold protocol
                    // traffic for it — e.g. a fault-deferred send whose
                    // duplicate already satisfied the receiver. Barrier
                    // entry flushes this rank's deferred queue while every
                    // receiver is still alive. Runs on a relaxed deadline so
                    // a peer stuck in a real comm op keeps root-cause credit.
                    comm.finalize_barrier();
                    r
                })) {
                    Ok(v) => Ok(v),
                    Err(payload) => {
                        let failure = failure_from_payload(rank, payload);
                        // Contain the panic: poison the cluster so ranks
                        // blocked on this one unwind promptly (first trip
                        // wins the origin slot; comm-layer failures already
                        // tripped it inside `fail`).
                        comm.abort.trip(rank, &failure.to_string());
                        comm.barrier.cv.notify_all();
                        Err(failure)
                    }
                }
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| {
                h.join().unwrap_or_else(|_| {
                    Err(RankFailure {
                        rank,
                        kind: FailureKind::Panic(String::from("spmd runtime wrapper panicked")),
                    })
                })
            })
            .collect()
    });
    let mut results = Vec::with_capacity(nranks);
    let mut failures = Vec::new();
    for out in outcomes {
        match out {
            Ok(r) => results.push(r),
            Err(fl) => failures.push(fl),
        }
    }
    if failures.is_empty() {
        Ok(results)
    } else {
        Err(SpmdError { failures })
    }
}

/// Fault-tolerant SPMD launch with default options: returns every rank's
/// result in rank order, or a structured [`SpmdError`] naming the failing
/// rank(s).
pub fn try_run_spmd<R, F>(nranks: usize, f: F) -> Result<Vec<R>, SpmdError>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    run_spmd_with(nranks, SpmdOptions::default(), f)
}

/// Runs `f` as an SPMD program over `nranks` ranks (threads); returns every
/// rank's result in rank order. Panicking wrapper around [`try_run_spmd`]
/// for call sites that treat a distributed failure as fatal.
pub fn run_spmd<R, F>(nranks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    match try_run_spmd(nranks, f) {
        Ok(v) => v,
        Err(e) => panic!("run_spmd failed: {e}"),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn all_gather_orders_by_rank() {
        let res = run_spmd(4, |c| c.all_gather(c.rank() * 10));
        for r in res {
            assert_eq!(r, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn all_reduce_ops() {
        let res = run_spmd(5, |c| {
            (
                c.all_reduce_f64(c.rank() as f64, ReduceOp::Sum),
                c.all_reduce_u64(c.rank() as u64 + 1, ReduceOp::Min),
                c.all_reduce_u64(c.rank() as u64, ReduceOp::Max),
            )
        });
        for (s, mn, mx) in res {
            assert_eq!(s, 10.0);
            assert_eq!(mn, 1);
            assert_eq!(mx, 4);
        }
    }

    #[test]
    fn all_reduce_f64_propagates_nan_through_min_max() {
        // Regression: f64::min/f64::max silently swallow NaN, so ranks could
        // disagree on whether a reduction went bad; Sum propagated it but
        // Min/Max did not. All three must now agree on NaN everywhere.
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            let res = run_spmd(4, move |c| {
                let v = if c.rank() == 2 {
                    f64::NAN
                } else {
                    c.rank() as f64
                };
                c.all_reduce_f64(v, op)
            });
            for (r, x) in res.iter().enumerate() {
                assert!(x.is_nan(), "op {op:?} rank {r}: got {x}, want NaN");
            }
        }
        // And NaN-free reductions still give exact answers.
        let res = run_spmd(4, |c| {
            (
                c.all_reduce_f64(c.rank() as f64, ReduceOp::Min),
                c.all_reduce_f64(c.rank() as f64, ReduceOp::Max),
            )
        });
        for (mn, mx) in res {
            assert_eq!(mn, 0.0);
            assert_eq!(mx, 3.0);
        }
    }

    #[test]
    fn exscan() {
        let res = run_spmd(4, |c| c.exscan_u64(c.rank() as u64 + 1));
        assert_eq!(res, vec![0, 1, 3, 6]);
    }

    #[test]
    fn all_to_allv_transposes() {
        let res = run_spmd(3, |c| {
            let sends: Vec<Vec<u32>> = (0..3)
                .map(|to| vec![(c.rank() * 100 + to) as u32])
                .collect();
            c.all_to_allv(sends)
        });
        // rank r receives [r, 100+r, 200+r]
        for (r, got) in res.iter().enumerate() {
            let flat: Vec<u32> = got.iter().flatten().copied().collect();
            assert_eq!(flat, vec![r as u32, 100 + r as u32, 200 + r as u32]);
        }
    }

    #[test]
    fn point_to_point_ring() {
        let res = run_spmd(4, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 7, vec![c.rank() as u64]);
            c.recv::<u64>(prev, 7)[0]
        });
        assert_eq!(res, vec![3, 0, 1, 2]);
    }

    #[test]
    fn out_of_order_tags_are_parked() {
        let res = run_spmd(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![1u8]);
                c.send(1, 2, vec![2u8]);
                0
            } else {
                // Receive in reverse order of sending.
                let b = c.recv::<u8>(0, 2)[0];
                let a = c.recv::<u8>(0, 1)[0];
                (a as usize) * 10 + b as usize
            }
        });
        assert_eq!(res[1], 12);
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let res = run_spmd(3, |c| {
            let v = if c.rank() == 2 {
                Some(vec![42u32, 7])
            } else {
                None
            };
            c.bcast(2, v)
        });
        for r in res {
            assert_eq!(r, vec![42, 7]);
        }
    }

    #[test]
    fn stats_count_bytes_both_directions() {
        let res = run_spmd(2, |c| {
            c.send((c.rank() + 1) % 2, 0, vec![0u64; 10]);
            let _ = c.recv::<u64>((c.rank() + 1) % 2, 0);
            c.stats()
        });
        for s in res {
            assert_eq!(s.bytes_sent, 80);
            assert_eq!(s.messages, 1);
            assert_eq!(s.bytes_received, 80);
            assert_eq!(s.messages_received, 1);
        }
    }

    #[test]
    fn collective_receive_accounting_balances_sends() {
        // Every byte a collective sends must be counted once by its
        // receiver: cluster totals of sent and received agree exactly.
        let stats = run_spmd(4, |c| {
            let _ = c.all_gatherv(vec![c.rank() as u64; c.rank() + 1]);
            let sends: Vec<Vec<u32>> = (0..4).map(|to| vec![to as u32; 3]).collect();
            let _ = c.all_to_allv(sends);
            let _ = c.bcast(
                1,
                if c.rank() == 1 {
                    Some(vec![9u8; 5])
                } else {
                    None
                },
            );
            c.stats()
        });
        let sent: u64 = stats.iter().map(|s| s.bytes_sent).sum();
        let received: u64 = stats.iter().map(|s| s.bytes_received).sum();
        assert_eq!(sent, received, "stats {stats:?}");
        let msgs_sent: u64 = stats.iter().map(|s| s.messages).sum();
        let msgs_received: u64 = stats.iter().map(|s| s.messages_received).sum();
        assert_eq!(msgs_sent, msgs_received);
        // all_gatherv: rank r sends (r+1)*8 bytes to 3 peers and receives
        // every other rank's payload exactly once.
        let expect_gatherv_recv =
            |r: u64| -> u64 { (0..4u64).filter(|&q| q != r).map(|q| (q + 1) * 8).sum() };
        for (r, s) in stats.iter().enumerate() {
            assert!(
                s.bytes_received >= expect_gatherv_recv(r as u64),
                "rank {r} stats {s:?}"
            );
        }
    }

    #[test]
    fn barrier_many_rounds() {
        let res = run_spmd(6, |c| {
            for _ in 0..50 {
                c.barrier();
            }
            c.rank()
        });
        assert_eq!(res, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn rank_panic_is_contained_and_named() {
        let err = try_run_spmd(4, |c| {
            if c.rank() == 2 {
                panic!("rank 2 exploded");
            }
            // Survivors block on a barrier the dead rank never reaches; the
            // abort flag must wake them promptly.
            c.barrier();
            c.rank()
        })
        .unwrap_err();
        assert_eq!(err.failed_ranks(), vec![2]);
        let primary = err.primary();
        assert!(matches!(primary[0].kind, FailureKind::Panic(ref m) if m.contains("exploded")));
        // Survivors recorded sympathetic aborts, not hangs.
        assert!(err.failures.len() >= 2, "{err}");
    }

    #[test]
    fn watchdog_reports_mismatched_tag_instead_of_hanging() {
        let t0 = Instant::now();
        let err = run_spmd_with(
            2,
            SpmdOptions::with_timeout(Duration::from_millis(150)),
            |c| {
                if c.rank() == 0 {
                    c.send(1, 7, vec![1u8]);
                } else {
                    // Wrong tag: this would previously park rank 1 forever.
                    let _ = c.recv::<u8>(0, 8);
                }
                c.rank()
            },
        )
        .unwrap_err();
        assert!(t0.elapsed() < Duration::from_secs(5), "watchdog too slow");
        assert_eq!(err.failed_ranks(), vec![1]);
        match &err.primary()[0].kind {
            FailureKind::Comm(CommError::Timeout { context, .. }) => {
                assert!(context.contains("user tag 8"), "context: {context}");
                assert!(context.contains("parked"), "context: {context}");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn type_mismatch_is_a_structured_error() {
        let err = run_spmd_with(2, SpmdOptions::with_timeout(Duration::from_secs(5)), |c| {
            if c.rank() == 0 {
                c.send(1, 3, vec![1.0f64]);
            } else {
                let _ = c.recv::<u32>(0, 3);
            }
        })
        .unwrap_err();
        assert_eq!(err.failed_ranks(), vec![1]);
        assert!(
            matches!(
                &err.primary()[0].kind,
                FailureKind::Comm(CommError::TypeMismatch { expected, .. }) if expected.contains("u32")
            ),
            "{err}"
        );
    }

    #[test]
    fn run_spmd_panics_with_structured_message() {
        let caught = panic::catch_unwind(|| {
            run_spmd(2, |c| {
                if c.rank() == 0 {
                    panic!("boom");
                }
                c.barrier();
            })
        });
        let payload = caught.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("rank 0"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn solo_comm_collectives_are_identity() {
        let c = Comm::solo();
        assert_eq!(c.all_gather(5u32), vec![5]);
        assert_eq!(c.all_reduce_f64(2.5, ReduceOp::Max), 2.5);
        assert_eq!(c.exscan_u64(9), 0);
        c.barrier();
        let out = c.all_to_allv(vec![vec![1u8, 2]]);
        assert_eq!(out, vec![vec![1, 2]]);
    }

    /// One rank's collective workout, used by the tree-vs-linear oracle
    /// test. Every result is bit-encoded (f64 via `to_bits`) so NaN and
    /// signed-zero survive the comparison. `tree` selects the production
    /// tree-structured path or the `#[cfg(test)]` linear oracle.
    fn collective_workout(c: &Comm, tree: bool) -> Vec<u64> {
        let p = c.size();
        let r = c.rank();
        let mut out: Vec<u64> = Vec::new();
        let push_f64s = |out: &mut Vec<u64>, vals: &[f64]| {
            out.extend(vals.iter().map(|v| v.to_bits()));
        };
        let gatherv = |v: Vec<f64>| -> Vec<Vec<f64>> {
            if tree {
                c.all_gatherv(v)
            } else {
                c.linear_all_gatherv(v)
            }
        };
        // all_gather of a rank-dependent scalar (negative zero on rank 0).
        let x = if r == 0 { -0.0 } else { r as f64 * 0.5 };
        let g: Vec<f64> = if tree {
            c.all_gather(x)
        } else {
            c.linear_all_gather(x)
        };
        push_f64s(&mut out, &g);
        // all_gatherv with rank-dependent lengths, including an empty lane.
        let v: Vec<f64> = (0..r % 3).map(|k| (r * 10 + k) as f64).collect();
        for lane in gatherv(v) {
            out.push(lane.len() as u64);
            push_f64s(&mut out, &lane);
        }
        // Reductions, NaN-free and with a NaN contribution on one rank.
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            for poison in [false, true] {
                let val = if poison && r == p / 2 {
                    f64::NAN
                } else {
                    (r as f64 - 1.25) * 3.5
                };
                let (scalar, many) = if tree {
                    (
                        c.all_reduce_f64(val, op),
                        c.all_reduce_f64_many(&[val, -val, 0.125], op),
                    )
                } else {
                    // The oracle reductions are the same rank-ordered folds
                    // over the *linear* gather.
                    let all = c.linear_all_gather(val);
                    let fold = |vals: &[f64]| -> f64 {
                        match op {
                            ReduceOp::Sum => vals.iter().sum(),
                            ReduceOp::Min => vals.iter().fold(f64::INFINITY, |a, &x| {
                                if a.is_nan() || x.is_nan() {
                                    f64::NAN
                                } else {
                                    a.min(x)
                                }
                            }),
                            ReduceOp::Max => vals.iter().fold(f64::NEG_INFINITY, |a, &x| {
                                if a.is_nan() || x.is_nan() {
                                    f64::NAN
                                } else {
                                    a.max(x)
                                }
                            }),
                        }
                    };
                    let batch = c.linear_all_gatherv(vec![val, -val, 0.125]);
                    let many: Vec<f64> = (0..3)
                        .map(|k| {
                            let lane: Vec<f64> = batch.iter().map(|b| b[k]).collect();
                            fold(&lane)
                        })
                        .collect();
                    (fold(&all), many)
                };
                push_f64s(&mut out, &[scalar]);
                push_f64s(&mut out, &many);
            }
        }
        // u64 reduce + exscan (ride the gather in both paths).
        if tree {
            out.push(c.all_reduce_u64(r as u64 + 7, ReduceOp::Max));
            out.push(c.exscan_u64(r as u64 + 1));
        } else {
            let all = c.linear_all_gather(r as u64 + 7);
            out.push(all.iter().copied().max().unwrap_or(0));
            let all = c.linear_all_gather(r as u64 + 1);
            out.push(all[..r].iter().sum());
        }
        // bcast from first and last rank.
        for root in [0, p - 1] {
            let payload = if r == root {
                Some(vec![root as u64 * 31 + 5, 77])
            } else {
                None
            };
            let got = if tree {
                c.bcast(root, payload)
            } else {
                c.linear_bcast(root, payload)
            };
            out.extend(got);
        }
        // all_to_allv: ring pattern with a self lane, then fully empty.
        let mut sends: Vec<Vec<u64>> = vec![Vec::new(); p];
        sends[(r + 1) % p] = vec![r as u64 * 100, r as u64];
        sends[r].push(r as u64 * 1000);
        if p > 2 && r.is_multiple_of(2) {
            sends[(r + 2) % p] = vec![r as u64 + 13];
        }
        let round = |s: Vec<Vec<u64>>| -> Vec<Vec<u64>> {
            if tree {
                c.all_to_allv(s)
            } else {
                c.linear_all_to_allv(s)
            }
        };
        for lane in round(sends) {
            out.push(lane.len() as u64);
            out.extend(lane);
        }
        for lane in round(vec![Vec::new(); p]) {
            out.push(lane.len() as u64);
            out.extend(lane);
        }
        out
    }

    #[test]
    fn tree_collectives_match_linear_oracle_under_chaos() {
        // The tree-structured collectives must be bitwise identical to the
        // linear implementations they replaced — for every op, rank count,
        // and hostile schedule, including NaN propagation through Min/Max.
        let plans: [Option<FaultPlan>; 4] = [
            None,
            Some(FaultPlan::chaos(11)),
            Some(FaultPlan::chaos(97)),
            Some(FaultPlan::lossy(29)),
        ];
        for &p in &[1usize, 2, 3, 4, 7, 8, 16] {
            for plan in &plans {
                let run = |tree: bool| -> Vec<Vec<u64>> {
                    let opts = match plan {
                        Some(f) => SpmdOptions::with_fault(f.clone()),
                        None => SpmdOptions::default(),
                    };
                    match run_spmd_with(p, opts, |c| collective_workout(c, tree)) {
                        Ok(v) => v,
                        Err(e) => panic!("workout failed at p={p}: {e}"),
                    }
                };
                assert_eq!(
                    run(true),
                    run(false),
                    "tree vs linear mismatch at p={p}, plan={plan:?}"
                );
            }
        }
    }

    #[test]
    fn collective_message_counts_are_logarithmic() {
        // Messages-per-collective must stay O(log2 P): an accidental O(P)
        // regression fails loudly. Checked through CommStats and through
        // the obs coll_msgs/coll_calls counters.
        for &p in &[8usize, 16, 32] {
            let ceil_log2 = (usize::BITS - (p - 1).leading_zeros()) as u64;
            let per_op = run_spmd(p, |c| {
                let _obs = carve_obs::force_enabled();
                let obs_before = carve_obs::thread_snapshot();
                let delta = |f: &dyn Fn()| -> u64 {
                    let before = c.stats().messages;
                    f();
                    c.stats().messages - before
                };
                let barrier = delta(&|| c.barrier());
                let gather = delta(&|| {
                    c.all_gather(c.rank() as u64);
                });
                let reduce = delta(&|| {
                    c.all_reduce_f64(c.rank() as f64, ReduceOp::Sum);
                });
                let bcast = delta(&|| {
                    c.bcast(0, (c.rank() == 0).then(|| vec![1u8, 2]));
                });
                let ring = delta(&|| {
                    let mut sends: Vec<Vec<u64>> = vec![Vec::new(); c.size()];
                    sends[(c.rank() + 1) % c.size()] = vec![1];
                    sends[(c.rank() + c.size() - 1) % c.size()] = vec![2];
                    c.all_to_allv(sends);
                });
                let d = carve_obs::thread_snapshot().diff(&obs_before);
                let obs_count = |name: &str| -> u64 {
                    d.phases
                        .values()
                        .filter_map(|ph| ph.counters.get(name))
                        .sum()
                };
                let s = c.stats();
                (
                    barrier,
                    gather,
                    reduce,
                    bcast,
                    ring,
                    s.collective_calls,
                    s.collective_messages,
                    obs_count("coll_calls"),
                    obs_count("coll_msgs"),
                )
            });
            for (r, &(barrier, gather, reduce, bcast, ring, calls, msgs, oc, om)) in
                per_op.iter().enumerate()
            {
                let ctx = format!("p={p} rank={r}");
                assert_eq!(barrier, ceil_log2, "{ctx} barrier");
                assert_eq!(gather, ceil_log2, "{ctx} all_gather");
                assert_eq!(reduce, ceil_log2, "{ctx} all_reduce");
                assert!(bcast <= ceil_log2, "{ctx} bcast sent {bcast}");
                // Ring all_to_allv: one bitmap round + two neighbor lanes.
                assert_eq!(ring, ceil_log2 + 2, "{ctx} all_to_allv");
                // All of it strictly below the linear P-1 cost.
                for (what, n) in [
                    ("barrier", barrier),
                    ("all_gather", gather),
                    ("all_to_allv", ring),
                ] {
                    assert!(n < (p - 1) as u64, "{ctx} {what}: {n} not sublinear");
                }
                assert_eq!(calls, 5, "{ctx} collective_calls");
                assert_eq!(
                    msgs,
                    barrier + gather + reduce + bcast + ring,
                    "{ctx} collective_messages"
                );
                // The obs counters mirror CommStats exactly.
                assert_eq!(oc, calls, "{ctx} obs coll_calls");
                assert_eq!(om, msgs, "{ctx} obs coll_msgs");
            }
        }
    }

    #[test]
    fn all_to_allv_skips_empty_lanes() {
        // Regression for the dense-lane bug: empty lanes must cost zero
        // messages, self-sends must not leave the rank, and a fully-empty
        // round is bitmap traffic only.
        let res = run_spmd(4, |c| {
            let p = c.size();
            let r = c.rank();
            let log2p = 2u64; // ceil(log2 4)
            let mut obs = Vec::new();
            // Fully-empty round: no data-phase messages at all.
            let before = c.stats().messages;
            let out = c.all_to_allv(vec![Vec::<u64>::new(); p]);
            assert!(out.iter().all(Vec::is_empty), "rank {r}: {out:?}");
            obs.push(c.stats().messages - before == log2p);
            // Self-send-only round: the payload must come back untouched
            // without a single data message.
            let mut sends: Vec<Vec<u64>> = vec![Vec::new(); p];
            sends[r] = vec![r as u64 * 7 + 1];
            let before = c.stats().messages;
            let out = c.all_to_allv(sends);
            obs.push(c.stats().messages - before == log2p);
            assert_eq!(out[r], vec![r as u64 * 7 + 1], "rank {r}");
            assert!(out.iter().enumerate().all(|(q, l)| q == r || l.is_empty()));
            // Sparse round: one neighbor lane plus the self lane.
            let mut sends: Vec<Vec<u64>> = vec![Vec::new(); p];
            sends[(r + 1) % p] = vec![r as u64];
            sends[r] = vec![99];
            let before = c.stats().messages;
            let out = c.all_to_allv(sends);
            obs.push(c.stats().messages - before == log2p + 1);
            assert_eq!(out[(r + p - 1) % p], vec![(r + p - 1) as u64 % p as u64]);
            assert_eq!(out[r], vec![99]);
            obs
        });
        for (r, flags) in res.iter().enumerate() {
            assert!(
                flags.iter().all(|&ok| ok),
                "rank {r}: message-count flags {flags:?}"
            );
        }
    }
}
