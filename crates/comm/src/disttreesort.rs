//! DistTreeSort: distributed SFC sample sort of octants with duplicate /
//! overlap resolution — the partitioning workhorse of Algorithm 3.
//!
//! The key property inherited from the paper: the sort only ever sees the
//! octants it is given (the *active*, retained region of the incomplete
//! tree), so the resulting partition balances actual FEM work instead of
//! balancing void octants (the failure mode of complete-tree partitioners
//! that Table 4 measures).

use carve_sfc::{sfc_cmp, treesort, Curve, Octant};
use std::cmp::Ordering;

use crate::comm::Comm;

/// Number of regular samples each rank contributes to splitter selection.
const OVERSAMPLE: usize = 64;

/// Distributed TreeSort: globally sorts octants (SFC order, ancestors first),
/// removes exact duplicates and resolves ancestor/descendant overlaps across
/// rank boundaries *keeping the finer octants*, and leaves the result
/// distributed with balanced counts.
pub fn dist_tree_sort<const DIM: usize>(
    comm: &Comm,
    mut local: Vec<Octant<DIM>>,
    curve: Curve,
) -> Vec<Octant<DIM>> {
    let _obs = carve_obs::scope("treesort");
    treesort(&mut local, curve);
    if comm.size() > 1 {
        local = sample_sort_exchange(comm, local, curve);
    }
    local.dedup();
    carve_sfc::treesort::linearize_keep_finer(&mut local);
    if comm.size() > 1 {
        resolve_boundaries(comm, &mut local, curve);
        local = rebalance_equal_counts(comm, local);
    }
    local
}

/// Sample-sort exchange: pick P-1 splitter keys from gathered regular
/// samples, route every octant to its bucket rank, locally re-sort.
fn sample_sort_exchange<const DIM: usize>(
    comm: &Comm,
    local: Vec<Octant<DIM>>,
    curve: Curve,
) -> Vec<Octant<DIM>> {
    let p = comm.size();
    // Regular samples from the locally sorted data.
    let mut samples = Vec::new();
    if !local.is_empty() {
        let stride = (local.len() / OVERSAMPLE).max(1);
        samples.extend(local.iter().step_by(stride).copied());
    }
    let mut all_samples: Vec<Octant<DIM>> =
        comm.all_gatherv(samples).into_iter().flatten().collect();
    treesort(&mut all_samples, curve);
    all_samples.dedup();

    let mut splitters: Vec<Octant<DIM>> = Vec::with_capacity(p.saturating_sub(1));
    if !all_samples.is_empty() {
        for i in 1..p {
            let idx = (i * all_samples.len()) / p;
            splitters.push(all_samples[idx.min(all_samples.len() - 1)]);
        }
    }

    let mut sends: Vec<Vec<Octant<DIM>>> = (0..p).map(|_| Vec::new()).collect();
    for o in local {
        // Destination: number of splitters <= o.
        let dest = splitters.partition_point(|s| sfc_cmp(curve, s, &o) != Ordering::Greater);
        sends[dest.min(p - 1)].push(o);
    }
    let mut recv: Vec<Octant<DIM>> = comm.all_to_allv(sends).into_iter().flatten().collect();
    treesort(&mut recv, curve);
    recv
}

/// Cross-rank duplicate/overlap resolution: each rank learns the first
/// octant owned by any successor rank and pops its own tail while the tail
/// octant equals or is an ancestor of that head (finer octants win).
/// Iterates until globally quiescent (an ancestor chain can span ranks).
fn resolve_boundaries<const DIM: usize>(comm: &Comm, local: &mut Vec<Octant<DIM>>, _curve: Curve) {
    loop {
        let heads: Vec<Option<Octant<DIM>>> = comm.all_gather(local.first().copied());
        let next_head = heads[comm.rank() + 1..]
            .iter()
            .find_map(|h| h.as_ref().copied());
        let mut changed = 0u64;
        if let Some(head) = next_head {
            while let Some(last) = local.last() {
                if *last == head || last.is_ancestor_of(&head) {
                    local.pop();
                    changed = 1;
                } else {
                    break;
                }
            }
        }
        if comm.all_reduce_u64(changed, crate::comm::ReduceOp::Max) == 0 {
            break;
        }
    }
}

/// Re-partitions a globally sorted distributed list so every rank holds an
/// equal (±1) share, preserving global order.
pub fn rebalance_equal_counts<const DIM: usize>(
    comm: &Comm,
    local: Vec<Octant<DIM>>,
) -> Vec<Octant<DIM>> {
    let p = comm.size();
    let n_local = local.len() as u64;
    let total = comm.all_reduce_u64(n_local, crate::comm::ReduceOp::Sum);
    let offset = comm.exscan_u64(n_local);
    // Rank r's target range: [r*total/p, (r+1)*total/p).
    let target_start = |r: u64| (r * total) / p as u64;
    let mut sends: Vec<Vec<Octant<DIM>>> = (0..p).map(|_| Vec::new()).collect();
    for (i, o) in local.into_iter().enumerate() {
        let g = offset + i as u64;
        // Find destination rank: the r with target_start(r) <= g < target_start(r+1).
        let mut r = ((g * p as u64) / total.max(1)) as usize;
        r = r.min(p - 1);
        while r > 0 && g < target_start(r as u64) {
            r -= 1;
        }
        while r + 1 < p && g >= target_start(r as u64 + 1) {
            r += 1;
        }
        sends[r].push(o);
    }
    comm.all_to_allv(sends).into_iter().flatten().collect()
}

/// Global load imbalance factor: `max_rank(n_local) · p / total`. A
/// perfectly balanced partition gives 1.0; the dynamic-adapt repartition
/// trigger compares this against its tolerance before paying for a
/// migration + full mesh rebuild. Collective. An empty global list reports
/// 1.0 (nothing to balance).
pub fn load_imbalance(comm: &Comm, n_local: u64) -> f64 {
    let total = comm.all_reduce_u64(n_local, crate::comm::ReduceOp::Sum);
    let max = comm.all_reduce_u64(n_local, crate::comm::ReduceOp::Max);
    if total == 0 {
        return 1.0;
    }
    (max as f64) * (comm.size() as f64) / (total as f64)
}

/// Splitter selection with load tolerance for the *replay* (sequential
/// analysis) path: given per-element weights of a globally sorted tree and
/// optionally the element levels, returns `nparts + 1` boundary indices.
///
/// With `levels` provided and `tol > 0`, each cut may shift by up to
/// `tol * grain` elements to land on the coarsest available subtree boundary
/// — the paper's "large tolerance partitions the tree at coarse levels"
/// knob. `tol = 0` gives the exact equal-weight partition.
pub fn partition_splitters_by_weight(
    weights: &[f64],
    levels: Option<&[u8]>,
    nparts: usize,
    tol: f64,
) -> Vec<usize> {
    assert!(nparts >= 1);
    let n = weights.len();
    let total: f64 = weights.iter().sum();
    let mut prefix = Vec::with_capacity(n + 1);
    let mut acc = 0.0;
    prefix.push(0.0);
    for &w in weights {
        acc += w;
        prefix.push(acc);
    }
    let mut bounds = Vec::with_capacity(nparts + 1);
    bounds.push(0usize);
    for i in 1..nparts {
        let target = total * i as f64 / nparts as f64;
        // First index with prefix >= target.
        let mut cut = prefix.partition_point(|&x| x < target).min(n);
        if let Some(levels) = levels {
            if tol > 0.0 {
                let grain = (n / nparts).max(1);
                let slack = ((grain as f64) * tol).floor() as usize;
                let lo = cut.saturating_sub(slack).max(bounds[bounds.len() - 1]);
                let hi = (cut + slack).min(n);
                // Prefer the coarsest cut point in the window (a cut at index
                // j splits between elements j-1 and j; we pick j whose
                // element starts the shallowest subtree).
                let mut best = cut;
                let mut best_level = if cut < n { levels[cut] } else { u8::MAX };
                let window_end = hi.min(n.saturating_sub(1));
                for (j, &lvl) in levels.iter().enumerate().take(window_end + 1).skip(lo) {
                    if lvl < best_level {
                        best_level = lvl;
                        best = j;
                    }
                }
                cut = best;
            }
        }
        let floor = bounds[bounds.len() - 1];
        bounds.push(cut.max(floor));
    }
    bounds.push(n);
    bounds
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::comm::run_spmd;
    use rand::{Rng, SeedableRng};

    fn random_octants<const DIM: usize>(n: usize, max_level: u8, seed: u64) -> Vec<Octant<DIM>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let level = rng.gen_range(1..=max_level);
                let mut o = Octant::<DIM>::ROOT;
                for _ in 0..level {
                    o = o.child(rng.gen_range(0..(1 << DIM)));
                }
                o
            })
            .collect()
    }

    fn sequential_reference<const DIM: usize>(
        mut all: Vec<Octant<DIM>>,
        curve: Curve,
    ) -> Vec<Octant<DIM>> {
        treesort(&mut all, curve);
        all.dedup();
        carve_sfc::treesort::linearize_keep_finer(&mut all);
        all
    }

    #[test]
    fn dist_sort_matches_sequential() {
        for curve in [Curve::Morton, Curve::Hilbert] {
            for p in [1usize, 2, 3, 5] {
                let per_rank = 150;
                let res = run_spmd(p, |c| {
                    let local = random_octants::<3>(per_rank, 5, 42 + c.rank() as u64);
                    dist_tree_sort(c, local, curve)
                });
                let mut all: Vec<Octant<3>> = Vec::new();
                for r in 0..p {
                    all.extend(random_octants::<3>(per_rank, 5, 42 + r as u64));
                }
                let reference = sequential_reference(all, curve);
                let flat: Vec<Octant<3>> = res.into_iter().flatten().collect();
                assert_eq!(flat, reference, "curve {curve:?} p {p}");
            }
        }
    }

    #[test]
    fn dist_sort_balances_counts() {
        let p = 4;
        let res = run_spmd(p, |c| {
            let local = random_octants::<2>(200, 6, 7 + c.rank() as u64);
            dist_tree_sort(c, local, Curve::Hilbert).len()
        });
        let total: usize = res.iter().sum();
        for &n in &res {
            assert!(n.abs_diff(total / p) <= 1, "counts {res:?}");
        }
    }

    #[test]
    fn splitters_equal_weight() {
        let w = vec![1.0; 100];
        let b = partition_splitters_by_weight(&w, None, 4, 0.0);
        assert_eq!(b, vec![0, 25, 50, 75, 100]);
    }

    #[test]
    fn splitters_weighted() {
        // All weight in the first half: cuts crowd there.
        let mut w = vec![3.0; 50];
        w.extend(vec![1.0; 50]);
        let b = partition_splitters_by_weight(&w, None, 2, 0.0);
        assert!(b[1] < 50, "cut {b:?} should fall in heavy half");
        // Each part's weight within one element of half the total.
        let part0: f64 = w[..b[1]].iter().sum();
        assert!((part0 - 100.0).abs() <= 3.0);
    }

    #[test]
    fn splitters_snap_to_coarse_levels() {
        let n = 64;
        let w = vec![1.0; n];
        // Levels: mostly fine (5), one coarse boundary at index 30.
        let mut levels = vec![5u8; n];
        levels[30] = 2;
        let b = partition_splitters_by_weight(&w, Some(&levels), 2, 0.2);
        assert_eq!(b[1], 30, "cut should snap to the coarse subtree boundary");
        let b0 = partition_splitters_by_weight(&w, Some(&levels), 2, 0.0);
        assert_eq!(b0[1], 32, "zero tolerance keeps the exact split");
    }

    #[test]
    fn load_imbalance_reports_max_over_mean() {
        let res = run_spmd(4, |c| {
            // Ranks hold 10, 10, 10, 30 elements: max/mean = 30/15 = 2.0.
            let n = if c.rank() == 3 { 30 } else { 10 };
            let skewed = load_imbalance(c, n);
            let even = load_imbalance(c, 7);
            let empty = load_imbalance(c, 0);
            (skewed, even, empty)
        });
        for (skewed, even, empty) in res {
            assert_eq!(skewed, 2.0);
            assert_eq!(even, 1.0);
            assert_eq!(empty, 1.0, "empty global list is trivially balanced");
        }
    }

    #[test]
    fn splitters_monotone_and_cover() {
        let w: Vec<f64> = (0..37).map(|i| (i % 5) as f64 + 0.5).collect();
        for parts in 1..8 {
            let b = partition_splitters_by_weight(&w, None, parts, 0.0);
            assert_eq!(b.len(), parts + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), 37);
            assert!(b.windows(2).all(|x| x[0] <= x[1]));
        }
    }
}
