//! Structured errors for the SPMD runtime.
//!
//! The failure model (DESIGN.md "Failure model"): any rank that hits a
//! communication fault raises a [`CommError`], trips the cluster-wide abort
//! flag, and unwinds. Surviving ranks observe the flag inside their next
//! blocking wait (or op entry), raise [`CommError::ClusterAborted`], and
//! unwind too. [`crate::try_run_spmd`] catches every rank's unwind and
//! reports the whole cluster's outcome as one [`SpmdError`].

use std::fmt;

/// A communication-layer failure on one rank.
#[derive(Debug, Clone)]
pub enum CommError {
    /// A blocking wait (`recv`, `barrier`, collective) exceeded the watchdog
    /// deadline. `context` carries the per-rank diagnostic: what was awaited,
    /// which messages are parked, the barrier generation, and the op counter.
    Timeout {
        rank: usize,
        op: u64,
        waited_secs: f64,
        context: String,
    },
    /// A received message's payload type did not match the `recv` call.
    TypeMismatch {
        rank: usize,
        from: usize,
        tag: String,
        expected: &'static str,
    },
    /// A send found the destination rank's channel closed (rank exited or
    /// died without the abort flag being set first).
    ChannelClosed { rank: usize, to: usize },
    /// Another rank tripped the cluster abort flag; this rank unwound in
    /// sympathy. `origin` is the rank that failed first.
    ClusterAborted {
        rank: usize,
        origin: usize,
        reason: String,
    },
    /// An SPMD protocol invariant was violated (e.g. an owner rank missing a
    /// node that was routed to it).
    Protocol { rank: usize, detail: String },
    /// The rank was killed by a [`crate::FaultPlan`] at the given op count.
    FaultInjected { rank: usize, op: u64 },
}

impl CommError {
    /// The rank on which this error was raised.
    pub fn rank(&self) -> usize {
        match *self {
            CommError::Timeout { rank, .. }
            | CommError::TypeMismatch { rank, .. }
            | CommError::ChannelClosed { rank, .. }
            | CommError::ClusterAborted { rank, .. }
            | CommError::Protocol { rank, .. }
            | CommError::FaultInjected { rank, .. } => rank,
        }
    }

    /// True for the sympathetic unwind of a survivor, false for a root cause.
    pub fn is_sympathetic(&self) -> bool {
        matches!(self, CommError::ClusterAborted { .. })
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout {
                rank,
                op,
                waited_secs,
                context,
            } => write!(
                f,
                "rank {rank}: watchdog timeout after {waited_secs:.3}s at op {op}: {context}"
            ),
            CommError::TypeMismatch {
                rank,
                from,
                tag,
                expected,
            } => write!(
                f,
                "rank {rank}: message type mismatch receiving from rank {from} ({tag}): expected {expected}"
            ),
            CommError::ChannelClosed { rank, to } => {
                write!(f, "rank {rank}: channel to rank {to} closed")
            }
            CommError::ClusterAborted {
                rank,
                origin,
                reason,
            } => write!(
                f,
                "rank {rank}: aborted because rank {origin} failed: {reason}"
            ),
            CommError::Protocol { rank, detail } => {
                write!(f, "rank {rank}: protocol violation: {detail}")
            }
            CommError::FaultInjected { rank, op } => {
                write!(f, "rank {rank}: killed by fault injection at op {op}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Why one rank of an SPMD run failed.
#[derive(Debug, Clone)]
pub enum FailureKind {
    /// The rank's closure panicked (message extracted when possible).
    Panic(String),
    /// The communication layer raised a structured error.
    Comm(CommError),
}

/// One rank's failure record.
#[derive(Debug, Clone)]
pub struct RankFailure {
    pub rank: usize,
    pub kind: FailureKind,
}

impl RankFailure {
    /// Sympathetic failures are survivors unwinding on the abort flag; they
    /// are consequences, not causes.
    pub fn is_sympathetic(&self) -> bool {
        matches!(&self.kind, FailureKind::Comm(e) if e.is_sympathetic())
    }
}

impl fmt::Display for RankFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FailureKind::Panic(msg) => write!(f, "rank {} panicked: {msg}", self.rank),
            FailureKind::Comm(e) => write!(f, "{e}"),
        }
    }
}

/// Aggregate failure of an SPMD run: every rank that did not return a value.
#[derive(Debug, Clone)]
pub struct SpmdError {
    pub failures: Vec<RankFailure>,
}

impl SpmdError {
    /// Root-cause failures (everything except sympathetic cluster aborts).
    /// Falls back to all failures if only sympathetic ones were recorded.
    pub fn primary(&self) -> Vec<&RankFailure> {
        let roots: Vec<&RankFailure> = self
            .failures
            .iter()
            .filter(|f| !f.is_sympathetic())
            .collect();
        if roots.is_empty() {
            self.failures.iter().collect()
        } else {
            roots
        }
    }

    /// Ranks responsible for the failure (root causes only), ascending.
    pub fn failed_ranks(&self) -> Vec<usize> {
        let mut ranks: Vec<usize> = self.primary().iter().map(|f| f.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }
}

impl fmt::Display for SpmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let primary = self.primary();
        write!(f, "spmd run failed on {} rank(s): ", primary.len())?;
        for (i, p) in primary.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{p}")?;
        }
        let sympathetic = self.failures.len() - primary.len().min(self.failures.len());
        if sympathetic > 0 {
            write!(f, " ({sympathetic} rank(s) aborted in sympathy)")?;
        }
        Ok(())
    }
}

impl std::error::Error for SpmdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_filters_sympathetic_aborts() {
        let err = SpmdError {
            failures: vec![
                RankFailure {
                    rank: 0,
                    kind: FailureKind::Comm(CommError::ClusterAborted {
                        rank: 0,
                        origin: 2,
                        reason: "x".into(),
                    }),
                },
                RankFailure {
                    rank: 2,
                    kind: FailureKind::Comm(CommError::FaultInjected { rank: 2, op: 7 }),
                },
            ],
        };
        assert_eq!(err.failed_ranks(), vec![2]);
        let msg = err.to_string();
        assert!(msg.contains("rank 2"), "{msg}");
        assert!(msg.contains("fault injection"), "{msg}");
        assert!(msg.contains("sympathy"), "{msg}");
    }

    #[test]
    fn all_sympathetic_falls_back_to_everything() {
        let err = SpmdError {
            failures: vec![RankFailure {
                rank: 1,
                kind: FailureKind::Comm(CommError::ClusterAborted {
                    rank: 1,
                    origin: 0,
                    reason: "y".into(),
                }),
            }],
        };
        assert_eq!(err.failed_ranks(), vec![1]);
    }
}
