//! Persistent neighbor-sparse ghost exchange (the latency-hiding engine
//! under `DistMesh`'s ghost reads/accumulates).
//!
//! The dense `all_to_allv` path ships `p` lanes per exchange even when most
//! are empty; an [`ExchangeHandle`] is built **once** from the send/recv
//! plans and afterwards talks only to actual neighbors. Each exchange is
//! split into a *post* (pack + nonblocking sends + posted receives) and a
//! *wait* (complete receives + scatter), so callers can overlap computation
//! with the in-flight messages — the paper's §3.5 MATVEC structure.
//!
//! Buffer discipline: every lane owns one reusable payload `Vec`. A posted
//! send moves the lane's buffer into the transport; a completed receive
//! parks the arriving `Vec` in the matching lane. Because a ghost *read*
//! sends `|send_plan[q]|` values and receives `|recv_plan[q]|` while the
//! following *accumulate* does exactly the opposite, the buffers circulate
//! between the two directions and the steady-state read→accumulate cycle of
//! a Krylov iteration allocates nothing.
//!
//! Tag discipline: one collective tag per exchange round. `post_read` /
//! `accumulate` are **collective** — every rank must call them in the same
//! order (SPMD), including ranks with no neighbors, so the op counter stays
//! aligned across the cluster. Fault injection (delay / reorder / duplicate)
//! and the watchdog apply to every lane exactly as on the dense path.
//!
//! Loss tolerance: every lane payload travels as a sequence-numbered,
//! checksummed frame (`Comm::send_frame` / `Comm::recv_frame`). The handle's
//! monotonic round counter is the sequence number — identical across ranks
//! by SPMD discipline — so dropped frames are re-fetched from the transport's
//! retransmit buffer with bounded exponential backoff, corrupted frames are
//! detected by checksum and replaced with the pristine copy, and stale
//! retransmit duplicates are discarded by sequence check. Recovery restores
//! the original payload bits, so lossy chaos stays bitwise exact.

use crate::comm::Comm;

/// One neighbor's worth of exchange state: the peer rank, the local value
/// indices packed to / scattered from it, and the reusable payload buffer.
struct Lane {
    rank: usize,
    idx: Vec<u32>,
    buf: Vec<f64>,
}

impl Lane {
    /// Packs `values[idx]` into the lane's (recycled) buffer and takes it
    /// for sending.
    fn pack(&mut self, values: &[f64]) -> Vec<f64> {
        self.buf.clear();
        self.buf
            .extend(self.idx.iter().map(|&i| values[i as usize]));
        std::mem::take(&mut self.buf)
    }
}

/// An in-flight ghost read started by [`ExchangeHandle::post_read`] and
/// finished by [`ExchangeHandle::wait_read`]. Carries the exchange round's
/// collective tag + frame sequence number and the bytes this rank sent when
/// posting.
#[must_use = "a posted exchange must be completed with wait_read"]
pub struct PendingRead {
    tag: u64,
    seq: u64,
    bytes_sent: u64,
}

impl PendingRead {
    /// Payload bytes this rank sent when posting the read.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }
}

/// Persistent neighbor-sparse exchange plan: only ranks with nonempty lanes
/// are kept, and pack/unpack buffers are reused across calls.
pub struct ExchangeHandle {
    /// Lanes to ranks that need this rank's owned values (`send_plan`).
    send: Vec<Lane>,
    /// Lanes from the owners of this rank's ghost values (`recv_plan`).
    recv: Vec<Lane>,
    /// Distinct neighbor ranks across both directions (precomputed so the
    /// per-exchange obs counter allocates nothing).
    neighbors: usize,
    /// Monotonic exchange-round counter, the frame sequence number. Both
    /// `post_read` and `accumulate` bump it; SPMD discipline keeps it
    /// identical across ranks, so sender and receiver agree on the expected
    /// sequence without negotiation.
    rounds: u64,
}

impl ExchangeHandle {
    /// Builds the handle from dense per-rank plans (`plan[q]` = local value
    /// indices exchanged with rank `q`), dropping every empty lane.
    /// `send_plan[q]` indexes owned values rank `q` reads; `recv_plan[q]`
    /// indexes ghost values owned by rank `q`, ordered to match `q`'s send
    /// plan.
    pub fn new(send_plan: &[Vec<u32>], recv_plan: &[Vec<u32>]) -> Self {
        let keep = |plans: &[Vec<u32>]| -> Vec<Lane> {
            plans
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.is_empty())
                .map(|(rank, p)| Lane {
                    rank,
                    idx: p.clone(),
                    buf: Vec::with_capacity(p.len()),
                })
                .collect()
        };
        let send = keep(send_plan);
        let recv = keep(recv_plan);
        let mut ranks: Vec<usize> = send.iter().chain(&recv).map(|l| l.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ExchangeHandle {
            send,
            recv,
            neighbors: ranks.len(),
            rounds: 0,
        }
    }

    /// Rebuilds the lane structure *in place* from fresh plans while
    /// preserving the monotonic round counter — the incremental adapt patch
    /// path swaps neighbor lists without resetting frame sequence numbers,
    /// so in-flight retransmit state and the SPMD sequence discipline carry
    /// across mesh adaptations. Old lane payload buffers are recycled onto
    /// new lanes for the same peer rank, keeping the steady-state
    /// allocation-free property across adapts.
    pub fn rebuild(&mut self, send_plan: &[Vec<u32>], recv_plan: &[Vec<u32>]) {
        let mut spare: std::collections::HashMap<usize, Vec<f64>> =
            std::collections::HashMap::new();
        for lane in self.send.drain(..).chain(self.recv.drain(..)) {
            spare.entry(lane.rank).or_insert(lane.buf);
        }
        let mut keep = |plans: &[Vec<u32>]| -> Vec<Lane> {
            plans
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.is_empty())
                .map(|(rank, p)| Lane {
                    rank,
                    idx: p.clone(),
                    buf: spare
                        .remove(&rank)
                        .unwrap_or_else(|| Vec::with_capacity(p.len())),
                })
                .collect()
        };
        self.send = keep(send_plan);
        self.recv = keep(recv_plan);
        let mut ranks: Vec<usize> = self.send.iter().chain(&self.recv).map(|l| l.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        self.neighbors = ranks.len();
        // self.rounds deliberately untouched.
    }

    /// Exchange rounds completed so far (frame sequence counter).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Registers the posted-but-unmatched lane state with the watchdog: if a
    /// blocking wait times out while this exchange is outstanding, the
    /// diagnostic names the peer ranks still owed a message.
    fn note_outstanding(comm: &Comm, what: &str, seq: u64, lanes: &[Lane], matched: usize) {
        if lanes.len() == matched {
            comm.clear_exchange_note();
            return;
        }
        let peers: Vec<String> = lanes
            .iter()
            .skip(matched)
            .map(|l| l.rank.to_string())
            .collect();
        comm.set_exchange_note(format!(
            "{what} round {seq}: {} of {} lane(s) unmatched, awaiting rank(s) [{}]",
            lanes.len() - matched,
            lanes.len(),
            peers.join(", ")
        ));
    }

    /// Number of neighbor ranks this rank exchanges with (union of send and
    /// receive directions).
    pub fn neighbor_count(&self) -> usize {
        self.neighbors
    }

    /// Payload bytes one ghost read sends from this rank.
    pub fn read_bytes(&self) -> u64 {
        self.send.iter().map(|l| (l.idx.len() * 8) as u64).sum()
    }

    /// Posts the owner→user direction (ghost read) of `values`: packs and
    /// sends one message per nonempty send lane, posts one receive per
    /// nonempty recv lane. Collective (one tag tick on every rank); returns
    /// immediately so the caller can compute while messages are in flight.
    pub fn post_read(&mut self, comm: &Comm, values: &[f64]) -> PendingRead {
        let tag = comm.next_tag();
        let seq = self.rounds;
        self.rounds += 1;
        carve_obs::counter("neighbor_ranks", self.neighbors as u64);
        let mut bytes_sent = 0u64;
        for lane in &mut self.send {
            let payload = lane.pack(values);
            bytes_sent += (payload.len() * 8) as u64;
            comm.send_frame(lane.rank, tag, seq, payload);
        }
        // From here until wait_read completes, a watchdog timeout anywhere
        // on this rank names the peers still owed a lane message.
        Self::note_outstanding(comm, "ghost read", seq, &self.recv, 0);
        PendingRead {
            tag,
            seq,
            bytes_sent,
        }
    }

    /// Completes a posted read: blocks (abort-polled, watchdog-guarded) for
    /// each neighbor's payload and scatters it into the ghost slots of
    /// `values`. Arriving buffers are parked in their lanes for the next
    /// accumulate to reuse. Returns the bytes sent at post time.
    pub fn wait_read(&mut self, comm: &Comm, pending: PendingRead, values: &mut [f64]) -> u64 {
        for i in 0..self.recv.len() {
            Self::note_outstanding(comm, "ghost read", pending.seq, &self.recv, i);
            let payload =
                comm.recv_frame(self.recv[i].rank, pending.tag, pending.seq, "ghost read");
            let lane = &mut self.recv[i];
            if payload.len() != lane.idx.len() {
                comm.protocol_error(format!(
                    "ghost read from rank {}: got {} values for {} ghost slots",
                    lane.rank,
                    payload.len(),
                    lane.idx.len()
                ));
            }
            for (&slot, &v) in lane.idx.iter().zip(&payload) {
                values[slot as usize] = v;
            }
            lane.buf = payload;
        }
        comm.clear_exchange_note();
        pending.bytes_sent
    }

    /// Blocking ghost read: post + wait back to back. This is the fallback
    /// path for call sites with nothing to overlap; it still gets the
    /// neighbor-sparse lanes and recycled buffers.
    pub fn read(&mut self, comm: &Comm, values: &mut [f64]) -> u64 {
        let pending = self.post_read(comm, values);
        self.wait_read(comm, pending, values)
    }

    /// The user→owner direction (ghost accumulate): sends this rank's ghost
    /// partial sums to their owners and adds arriving contributions into the
    /// owned slots. Ghost entries are zeroed locally (their authoritative
    /// value now lives at the owner). Collective; returns bytes sent.
    pub fn accumulate(&mut self, comm: &Comm, values: &mut [f64]) -> u64 {
        let tag = comm.next_tag();
        let seq = self.rounds;
        self.rounds += 1;
        carve_obs::counter("neighbor_ranks", self.neighbors as u64);
        let mut bytes = 0u64;
        for lane in &mut self.recv {
            let payload = lane.pack(values);
            bytes += (payload.len() * 8) as u64;
            for &slot in &lane.idx {
                values[slot as usize] = 0.0;
            }
            comm.send_frame(lane.rank, tag, seq, payload);
        }
        for i in 0..self.send.len() {
            Self::note_outstanding(comm, "ghost accumulate", seq, &self.send, i);
            let payload = comm.recv_frame(self.send[i].rank, tag, seq, "ghost accumulate");
            let lane = &mut self.send[i];
            if payload.len() != lane.idx.len() {
                comm.protocol_error(format!(
                    "ghost accumulate from rank {}: got {} values for {} owned slots",
                    lane.rank,
                    payload.len(),
                    lane.idx.len()
                ));
            }
            for (&slot, &v) in lane.idx.iter().zip(&payload) {
                values[slot as usize] += v;
            }
            lane.buf = payload;
        }
        comm.clear_exchange_note();
        bytes
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::comm::{run_spmd, run_spmd_with, SpmdOptions};
    use crate::fault::FaultPlan;

    /// A 3-rank ring where rank r owns value r and ghosts the next rank's
    /// value: send_plan[prev] = [0] (owned slot), recv_plan[next] = [1]
    /// (ghost slot). Layout per rank: values = [owned, ghost].
    fn ring_plans(c: &Comm) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
        let p = c.size();
        let next = (c.rank() + 1) % p;
        let prev = (c.rank() + p - 1) % p;
        let mut send = vec![Vec::new(); p];
        let mut recv = vec![Vec::new(); p];
        send[prev] = vec![0];
        recv[next] = vec![1];
        (send, recv)
    }

    #[test]
    fn read_then_accumulate_roundtrip_on_ring() {
        let res = run_spmd(3, |c| {
            let (sp, rp) = ring_plans(c);
            let mut ex = ExchangeHandle::new(&sp, &rp);
            assert_eq!(ex.neighbor_count(), 2);
            let mut v = [10.0 * (c.rank() as f64 + 1.0), -1.0];
            let bytes = ex.read(c, &mut v);
            assert_eq!(bytes, 8);
            // Ghost slot now holds the next rank's owned value.
            let next = (c.rank() + 1) % 3;
            assert_eq!(v[1], 10.0 * (next as f64 + 1.0));
            // Accumulate a marker back to the owner.
            v[1] = 0.5;
            ex.accumulate(c, &mut v);
            assert_eq!(v[1], 0.0, "ghost zeroed after accumulate");
            v[0]
        });
        for (r, owned) in res.iter().enumerate() {
            assert_eq!(*owned, 10.0 * (r as f64 + 1.0) + 0.5, "rank {r}");
        }
    }

    #[test]
    fn overlapped_post_wait_allows_compute_between() {
        let res = run_spmd(3, |c| {
            let (sp, rp) = ring_plans(c);
            let mut ex = ExchangeHandle::new(&sp, &rp);
            let mut v = [c.rank() as f64, f64::NAN];
            let pending = ex.post_read(c, &v);
            // "Interior compute" while the exchange is in flight.
            let busy: f64 = (0..1000).map(|i| (i as f64).sqrt()).sum();
            assert!(busy > 0.0);
            ex.wait_read(c, pending, &mut v);
            v[1]
        });
        for (r, ghost) in res.iter().enumerate() {
            assert_eq!(*ghost, ((r + 1) % 3) as f64, "rank {r}");
        }
    }

    #[test]
    fn empty_lanes_are_dropped_and_empty_handle_is_collective() {
        // Rank pairs (0,1) exchange; rank 2 has no neighbors but must still
        // make the collective calls — tags stay aligned and nothing hangs.
        let res = run_spmd(3, |c| {
            let p = c.size();
            let mut send = vec![Vec::new(); p];
            let mut recv = vec![Vec::new(); p];
            if c.rank() == 0 {
                send[1] = vec![0];
            } else if c.rank() == 1 {
                recv[0] = vec![1];
            }
            let mut ex = ExchangeHandle::new(&send, &recv);
            let mut v = [7.0, -1.0];
            let b1 = ex.read(c, &mut v);
            let b2 = ex.accumulate(c, &mut v);
            // A later dense collective still matches across all ranks.
            let total = c.all_reduce_u64(1, crate::comm::ReduceOp::Sum);
            (ex.neighbor_count(), b1, b2, v[1], total)
        });
        assert_eq!(res[2].0, 0, "rank 2 keeps no lanes");
        assert_eq!(res[0].1, 8, "rank 0 sends its owned value");
        assert_eq!(res[1].1, 0, "rank 1 only receives on read");
        assert_eq!(res[1].3, 0.0, "ghost zeroed by accumulate");
        for r in &res {
            assert_eq!(r.4, 3);
        }
    }

    #[test]
    fn steady_state_reuses_buffers_across_rounds() {
        // After the first read+accumulate cycle the lane buffers circulate;
        // later rounds must produce identical values (and exercise the
        // recycled capacity) for many iterations.
        let res = run_spmd(4, |c| {
            let (sp, rp) = ring_plans(c);
            let mut ex = ExchangeHandle::new(&sp, &rp);
            let mut acc = 0.0;
            for round in 0..20 {
                let mut v = [c.rank() as f64 + round as f64, 0.0];
                ex.read(c, &mut v);
                acc += v[1];
                v[1] = 1.0;
                ex.accumulate(c, &mut v);
                acc += v[0];
            }
            acc
        });
        let expect = |r: usize| -> f64 {
            (0..20)
                .map(|k| ((r + 1) % 4) as f64 + k as f64 + (r as f64 + k as f64 + 1.0))
                .sum()
        };
        for (r, got) in res.iter().enumerate() {
            assert!((got - expect(r)).abs() < 1e-12, "rank {r}: {got}");
        }
    }

    #[test]
    fn rebuild_preserves_rounds_and_swaps_neighbors() {
        // Exchange on the forward ring, rebuild the handle onto the reverse
        // ring in place, and keep exchanging: the round counter must carry
        // across the rebuild (sequence numbers keep advancing, no stale
        // frame is matched) and the new topology must deliver the reverse
        // neighbor's value.
        let res = run_spmd(4, |c| {
            let p = c.size();
            let (sp, rp) = ring_plans(c);
            let mut ex = ExchangeHandle::new(&sp, &rp);
            let mut v = [c.rank() as f64 + 1.0, 0.0];
            ex.read(c, &mut v);
            let forward_ghost = v[1];
            let rounds_before = ex.rounds();
            // Reverse ring: ghost the *previous* rank's value instead.
            let next = (c.rank() + 1) % p;
            let prev = (c.rank() + p - 1) % p;
            let mut send = vec![Vec::new(); p];
            let mut recv = vec![Vec::new(); p];
            send[next] = vec![0];
            recv[prev] = vec![1];
            ex.rebuild(&send, &recv);
            assert_eq!(ex.rounds(), rounds_before, "rebuild must not reset rounds");
            assert_eq!(ex.neighbor_count(), 2);
            let mut v2 = [c.rank() as f64 + 1.0, 0.0];
            ex.read(c, &mut v2);
            (forward_ghost, v2[1], ex.rounds())
        });
        for (r, (fwd, rev, rounds)) in res.iter().enumerate() {
            assert_eq!(*fwd, ((r + 1) % 4) as f64 + 1.0, "rank {r} forward");
            assert_eq!(*rev, ((r + 3) % 4) as f64 + 1.0, "rank {r} reverse");
            assert_eq!(*rounds, 2, "rank {r} rounds");
        }
    }

    #[test]
    fn chaos_schedules_leave_exchange_values_exact() {
        // Delay/reorder/duplicate must not change a single exchanged value,
        // and the watchdog must stay quiet.
        let run = |fault: Option<FaultPlan>| {
            let mut opts = SpmdOptions::default().timeout(std::time::Duration::from_secs(20));
            opts.fault = fault;
            run_spmd_with(4, opts, |c| {
                let (sp, rp) = ring_plans(c);
                let mut ex = ExchangeHandle::new(&sp, &rp);
                let mut out = Vec::new();
                for round in 0..8 {
                    let mut v = [(c.rank() * 31 + round) as f64, 0.0];
                    let pending = ex.post_read(c, &v);
                    ex.wait_read(c, pending, &mut v);
                    v[1] += 0.25;
                    ex.accumulate(c, &mut v);
                    out.push(v[0]);
                    out.push(v[1]);
                }
                out
            })
            .expect("chaos must not break the exchange")
        };
        let clean = run(None);
        for seed in [5u64, 97] {
            assert_eq!(run(Some(FaultPlan::chaos(seed))), clean, "seed {seed}");
        }
    }

    #[test]
    fn lossy_chaos_recovers_bitwise_identical_values() {
        // Frame drops + corruption must be fully recovered: every exchanged
        // value bit-identical to the fault-free run, via checksum detection
        // and the retransmit store.
        let run = |fault: Option<FaultPlan>| {
            let mut opts = SpmdOptions::default().timeout(std::time::Duration::from_secs(20));
            opts.fault = fault;
            run_spmd_with(4, opts, |c| {
                let (sp, rp) = ring_plans(c);
                let mut ex = ExchangeHandle::new(&sp, &rp);
                let mut out = Vec::new();
                for round in 0..12 {
                    let mut v = [(c.rank() * 17 + round) as f64 + 0.125, 0.0];
                    let pending = ex.post_read(c, &v);
                    ex.wait_read(c, pending, &mut v);
                    v[1] += 0.25;
                    ex.accumulate(c, &mut v);
                    out.push(v[0]);
                    out.push(v[1]);
                }
                out
            })
            .expect("lossy chaos must not break the exchange")
        };
        let clean = run(None);
        for seed in [5u64, 29, 97] {
            assert_eq!(run(Some(FaultPlan::lossy(seed))), clean, "seed {seed}");
        }
    }

    #[test]
    fn every_frame_dropped_still_recovers_exactly() {
        // drop_prob = 1.0: no frame ever arrives directly; every lane wait
        // must go through the retry/backoff + retransmit-store path.
        let plan = FaultPlan {
            seed: 13,
            drop_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut opts = SpmdOptions::default().timeout(std::time::Duration::from_secs(20));
        opts.fault = Some(plan);
        let res = run_spmd_with(3, opts, |c| {
            let (sp, rp) = ring_plans(c);
            let mut ex = ExchangeHandle::new(&sp, &rp);
            let mut v = [10.0 * (c.rank() as f64 + 1.0), -1.0];
            ex.read(c, &mut v);
            v[1]
        })
        .expect("dropped frames must be recovered");
        for (r, ghost) in res.iter().enumerate() {
            assert_eq!(*ghost, 10.0 * (((r + 1) % 3) as f64 + 1.0), "rank {r}");
        }
    }

    #[test]
    fn every_frame_corrupted_still_recovers_exactly() {
        // corrupt_prob = 1.0: every frame arrives mangled; the checksum must
        // catch each one and the pristine copy must replace it.
        let plan = FaultPlan {
            seed: 13,
            corrupt_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut opts = SpmdOptions::default().timeout(std::time::Duration::from_secs(20));
        opts.fault = Some(plan);
        let res = run_spmd_with(3, opts, |c| {
            let (sp, rp) = ring_plans(c);
            let mut ex = ExchangeHandle::new(&sp, &rp);
            let mut acc = 0.0;
            for round in 0..4 {
                let mut v = [(c.rank() + round) as f64 + 0.5, 0.0];
                ex.read(c, &mut v);
                acc += v[1];
            }
            acc
        })
        .expect("corrupted frames must be recovered");
        for (r, got) in res.iter().enumerate() {
            let expect: f64 = (0..4).map(|k| (((r + 1) % 3) + k) as f64 + 0.5).sum();
            assert_eq!(*got, expect, "rank {r}");
        }
    }

    #[test]
    fn kill_between_post_and_wait_aborts_cleanly() {
        use crate::comm::ReduceOp;
        use crate::error::{CommError, FailureKind};

        let body = |c: &Comm| -> (u64, f64) {
            let (sp, rp) = ring_plans(c);
            let mut ex = ExchangeHandle::new(&sp, &rp);
            let mut v = [c.rank() as f64 + 1.0, 0.0];
            let pending = ex.post_read(c, &v);
            let at_post = c.op_count();
            // Overlap-window collective: the kill lands here, after the
            // victim posted its lanes but before it completed the wait.
            let s = c.all_reduce_f64(v[0], ReduceOp::Sum);
            ex.wait_read(c, pending, &mut v);
            (at_post, s + v[1])
        };
        // Probe run: find the victim's op count right after post_read.
        let at_post = run_spmd(3, body)[1].0;

        let mut opts = SpmdOptions::default().timeout(std::time::Duration::from_secs(20));
        opts.fault = Some(FaultPlan::chaos(11).with_kill(1, at_post + 1));
        let err = run_spmd_with(3, opts, body).expect_err("kill must abort the cluster");
        assert_eq!(err.failed_ranks(), vec![1]);
        assert!(
            matches!(
                &err.primary()[0].kind,
                FailureKind::Comm(CommError::FaultInjected { rank: 1, .. })
            ),
            "{err}"
        );
        // Survivors unwound sympathetically — no watchdog timeouts, no
        // protocol errors from poisoned lane buffers.
        for f in &err.failures {
            if f.rank != 1 {
                assert!(f.is_sympathetic(), "rank {} failure: {f}", f.rank);
            }
        }
    }

    #[test]
    fn watchdog_timeout_names_exchange_peer() {
        use crate::error::{CommError, FailureKind};
        // Rank 1 never posts its exchange round, so rank 0's wait_read must
        // time out *and name rank 1* via the outstanding-lane diagnostic.
        let mut opts = SpmdOptions::default().timeout(std::time::Duration::from_millis(200));
        opts.fault = None;
        let err = run_spmd_with(2, opts, |c| {
            let p = c.size();
            let mut send = vec![Vec::new(); p];
            let mut recv = vec![Vec::new(); p];
            if c.rank() == 0 {
                recv[1] = vec![1];
                let mut ex = ExchangeHandle::new(&send, &recv);
                let mut v = [0.0, -1.0];
                let pending = ex.post_read(c, &v);
                ex.wait_read(c, pending, &mut v);
            } else {
                // Deliberately absent: rank 1 owes rank 0 a lane message.
                send[0] = vec![0];
                let _ex = ExchangeHandle::new(&send, &recv);
                std::thread::sleep(std::time::Duration::from_millis(400));
            }
        })
        .expect_err("missing peer must trip the watchdog");
        match &err.primary()[0].kind {
            FailureKind::Comm(CommError::Timeout { context, .. }) => {
                assert!(context.contains("ghost read"), "context: {context}");
                assert!(
                    context.contains("awaiting rank(s) [1]"),
                    "context: {context}"
                );
                assert!(
                    context.contains("retransmit attempt(s) exhausted"),
                    "context: {context}"
                );
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn nonblocking_primitives_roundtrip_out_of_order() {
        let res = run_spmd(2, |c| {
            if c.rank() == 0 {
                // Post both receives before either message is sent.
                let h2 = c.irecv_post::<u8>(1, 2);
                let h1 = c.irecv_post::<u8>(1, 1);
                c.isend(1, 9, vec![3u8]);
                let b = h2.wait(c)[0];
                let a = h1.wait(c)[0];
                (a as usize) * 10 + b as usize
            } else {
                let h = c.irecv_post::<u8>(0, 9);
                c.isend(0, 2, vec![2u8]);
                c.isend(0, 1, vec![1u8]);
                // Poll until it lands (it may already have).
                loop {
                    if let Some(v) = h.try_complete(c) {
                        break v[0] as usize;
                    }
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(res, vec![12, 3]);
    }

    #[test]
    fn fused_all_reduce_matches_scalar_reductions() {
        use crate::comm::ReduceOp;
        let res = run_spmd(4, |c| {
            let r = c.rank() as f64;
            let vals = [r, r * r, -r];
            let fused_sum = c.all_reduce_f64_many(&vals, ReduceOp::Sum);
            let fused_max = c.all_reduce_f64_many(&vals, ReduceOp::Max);
            let scalar: Vec<f64> = vals
                .iter()
                .map(|&v| c.all_reduce_f64(v, ReduceOp::Sum))
                .collect();
            (fused_sum, fused_max, scalar)
        });
        for (fused_sum, fused_max, scalar) in res {
            assert_eq!(fused_sum, scalar, "fused batch equals scalar reductions");
            assert_eq!(fused_sum, vec![6.0, 14.0, -6.0]);
            assert_eq!(fused_max, vec![3.0, 9.0, -0.0]);
        }
    }

    #[test]
    fn fused_all_reduce_uses_one_round() {
        let res = run_spmd(3, |c| {
            let before = c.stats().messages;
            let _ = c.all_reduce_f64_many(&[1.0, 2.0, 3.0, 4.0], crate::comm::ReduceOp::Sum);
            c.stats().messages - before
        });
        for sent in res {
            assert_eq!(sent, 2, "one message per peer for the whole batch");
        }
    }
}
