//! Seeded chaos injection for the SPMD runtime.
//!
//! A [`FaultPlan`] attached to a run via [`crate::SpmdOptions`] perturbs the
//! communication schedule deterministically: every decision is a pure
//! function of `(seed, rank, op counter, salt)`, so a failing chaos test
//! replays bit-identically from its seed. Four perturbations:
//!
//! * **delay** — sleep a bounded pseudo-random duration before a send or
//!   after matching a receive, scrambling cross-rank interleavings;
//! * **reorder** — defer a point-to-point/collective send and release it
//!   after the *next* send, swapping in-channel delivery order (stresses the
//!   out-of-order inbox parking);
//! * **duplicate** — deliver a collective payload twice (the dup parks in
//!   the receiver's inbox; a correct matcher must never consume it);
//! * **kill** — panic a chosen rank once its op counter reaches a chosen
//!   value, exercising panic containment and cluster abort.
//! * **drop** — a sequenced lane frame is withheld from the channel (the
//!   transport keeps the pristine copy in its retransmit buffer, as any
//!   reliable link layer does); the receiver detects the gap via its
//!   per-lane timeout and recovers it through the bounded-retry path;
//! * **corrupt** — a lane frame is delivered with flipped payload bits; the
//!   receiver's checksum rejects it and recovery fetches the pristine copy.
//!
//! Drop and corrupt apply only to the sequence-numbered, checksummed lane
//! frames of `ExchangeHandle` — the one transport with a retransmit
//! protocol — so a lossy plan still converges to the bitwise-identical
//! result of a fault-free run.

use std::time::Duration;

/// Kill one rank at one op count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillSpec {
    pub rank: usize,
    pub at_op: u64,
}

/// Deterministic, seeded fault-injection plan for one SPMD run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub seed: u64,
    /// Kill this rank when its op counter reaches `at_op`.
    pub kill: Option<KillSpec>,
    /// Probability of delaying any single send/receive.
    pub delay_prob: f64,
    /// Upper bound on an injected delay.
    pub max_delay: Duration,
    /// Probability of deferring a send past the next one (reorder).
    pub reorder_prob: f64,
    /// Probability of duplicating a collective payload.
    pub duplicate_prob: f64,
    /// Probability of dropping a sequenced lane frame in flight (the
    /// transport's retransmit buffer keeps the pristine copy).
    pub drop_prob: f64,
    /// Probability of delivering a sequenced lane frame with corrupted
    /// payload bits (checksum-detectable).
    pub corrupt_prob: f64,
}

/// Named ambient-chaos profile selected by `CARVE_CHAOS=seed[:profile]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ChaosProfile {
    /// Timing-only delays (the conservative default): message counts and
    /// delivery order stay exact.
    #[default]
    Delay,
    /// Delays + reorders + duplicates (hostile schedules; breaks tests that
    /// count exact message traffic, so it is opt-in, never ambient CI).
    Chaos,
    /// Delays + frame drops + frame corruption: exercises the lane
    /// retry/backoff recovery protocol on every exchange in the suite.
    Lossy,
}

impl ChaosProfile {
    /// Parses a profile name; unknown names fall back to [`ChaosProfile::Delay`]
    /// (ambient injection must never turn a typo into a hard failure).
    pub fn parse(name: &str) -> ChaosProfile {
        match name.trim() {
            "chaos" => ChaosProfile::Chaos,
            "lossy" => ChaosProfile::Lossy,
            _ => ChaosProfile::Delay,
        }
    }

    /// The seeded plan this profile stands for.
    pub fn plan(self, seed: u64) -> FaultPlan {
        match self {
            ChaosProfile::Delay => FaultPlan::delay_only(seed),
            ChaosProfile::Chaos => FaultPlan::chaos(seed),
            ChaosProfile::Lossy => FaultPlan::lossy(seed),
        }
    }
}

impl FaultPlan {
    /// A hostile-schedule plan: delays, reorders, and duplicates, no kill.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            kill: None,
            delay_prob: 0.15,
            max_delay: Duration::from_micros(300),
            reorder_prob: 0.15,
            duplicate_prob: 0.10,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
        }
    }

    /// A lossy-link plan: timing delays plus frame drops and corruption on
    /// the sequenced exchange lanes. Delivery order and message counts of
    /// the unframed paths stay exact (like [`FaultPlan::delay_only`]), and
    /// the lane retry/backoff protocol must recover every lost or mangled
    /// frame bit-exactly — this is the ambient plan behind
    /// `CARVE_CHAOS=seed:lossy`.
    pub fn lossy(seed: u64) -> Self {
        FaultPlan {
            seed,
            kill: None,
            delay_prob: 0.20,
            max_delay: Duration::from_micros(200),
            reorder_prob: 0.0,
            duplicate_prob: 0.0,
            drop_prob: 0.03,
            corrupt_prob: 0.03,
        }
    }

    /// A timing-only plan: bounded random delays on sends/receives, no
    /// reordering, duplication, or kills. This is the ambient plan behind
    /// `CARVE_CHAOS`: it scrambles cross-rank interleavings (what the
    /// latency-hiding exchange paths must tolerate) while leaving message
    /// counts and delivery order exact, so traffic-counting tests still pass.
    pub fn delay_only(seed: u64) -> Self {
        FaultPlan {
            seed,
            kill: None,
            delay_prob: 0.25,
            max_delay: Duration::from_micros(200),
            reorder_prob: 0.0,
            duplicate_prob: 0.0,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
        }
    }

    /// A plan that only kills `rank` at op `at_op`.
    pub fn kill_rank(rank: usize, at_op: u64) -> Self {
        FaultPlan {
            kill: Some(KillSpec { rank, at_op }),
            ..FaultPlan::default()
        }
    }

    /// Builder: add a kill to an existing (e.g. chaos) plan.
    pub fn with_kill(mut self, rank: usize, at_op: u64) -> Self {
        self.kill = Some(KillSpec { rank, at_op });
        self
    }

    /// Should `rank` die now, given its op counter?
    pub(crate) fn should_kill(&self, rank: usize, ops: u64) -> bool {
        matches!(self.kill, Some(k) if k.rank == rank && ops >= k.at_op)
    }

    /// Deterministic unit draw for a decision site.
    fn draw(&self, rank: usize, ops: u64, salt: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((rank as u64) << 32)
            .wrapping_add(ops)
            .wrapping_add(salt.wrapping_mul(0xD1B5_4A32_D192_ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    pub(crate) fn delay_for(&self, rank: usize, ops: u64, salt: u64) -> Option<Duration> {
        if self.delay_prob <= 0.0 {
            return None;
        }
        let u = self.draw(rank, ops, salt);
        if u < self.delay_prob {
            let frac = self.draw(rank, ops, salt ^ 0xA5A5);
            Some(Duration::from_nanos(
                (self.max_delay.as_nanos() as f64 * frac) as u64,
            ))
        } else {
            None
        }
    }

    pub(crate) fn should_reorder(&self, rank: usize, ops: u64, salt: u64) -> bool {
        self.reorder_prob > 0.0 && self.draw(rank, ops, salt ^ 0x5A5A) < self.reorder_prob
    }

    pub(crate) fn should_duplicate(&self, rank: usize, ops: u64, salt: u64) -> bool {
        self.duplicate_prob > 0.0 && self.draw(rank, ops, salt ^ 0x3C3C) < self.duplicate_prob
    }

    pub(crate) fn should_drop(&self, rank: usize, ops: u64, salt: u64) -> bool {
        self.drop_prob > 0.0 && self.draw(rank, ops, salt ^ 0x0F0F) < self.drop_prob
    }

    pub(crate) fn should_corrupt(&self, rank: usize, ops: u64, salt: u64) -> bool {
        self.corrupt_prob > 0.0 && self.draw(rank, ops, salt ^ 0xC3C3) < self.corrupt_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultPlan::chaos(9);
        let b = FaultPlan::chaos(9);
        let c = FaultPlan::chaos(10);
        let mut differs = false;
        for ops in 0..200 {
            assert_eq!(
                a.delay_for(1, ops, 3).is_some(),
                b.delay_for(1, ops, 3).is_some()
            );
            assert_eq!(a.should_reorder(2, ops, 0), b.should_reorder(2, ops, 0));
            if a.should_reorder(2, ops, 0) != c.should_reorder(2, ops, 0) {
                differs = true;
            }
        }
        assert!(differs, "different seeds should give different schedules");
    }

    #[test]
    fn kill_triggers_at_threshold() {
        let p = FaultPlan::kill_rank(3, 10);
        assert!(!p.should_kill(3, 9));
        assert!(p.should_kill(3, 10));
        assert!(p.should_kill(3, 11));
        assert!(!p.should_kill(2, 99));
    }

    #[test]
    fn delay_only_plan_perturbs_timing_but_nothing_else() {
        let p = FaultPlan::delay_only(7);
        let mut delayed = false;
        for ops in 0..200 {
            delayed |= p.delay_for(0, ops, 0).is_some();
            assert!(!p.should_reorder(0, ops, 0));
            assert!(!p.should_duplicate(0, ops, 0));
            assert!(!p.should_kill(0, ops));
        }
        assert!(delayed, "delay_only should inject at least one delay");
    }

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        for ops in 0..100 {
            assert!(p.delay_for(0, ops, 0).is_none());
            assert!(!p.should_reorder(0, ops, 0));
            assert!(!p.should_duplicate(0, ops, 0));
            assert!(!p.should_kill(0, ops));
            assert!(!p.should_drop(0, ops, 0));
            assert!(!p.should_corrupt(0, ops, 0));
        }
    }

    #[test]
    fn lossy_plan_draws_are_seeded_deterministic() {
        let a = FaultPlan::lossy(11);
        let b = FaultPlan::lossy(11);
        let c = FaultPlan::lossy(12);
        let (mut drops, mut corrupts, mut differs) = (0, 0, false);
        for ops in 0..2000 {
            assert_eq!(a.should_drop(1, ops, 3), b.should_drop(1, ops, 3));
            assert_eq!(a.should_corrupt(1, ops, 3), b.should_corrupt(1, ops, 3));
            drops += a.should_drop(1, ops, 3) as usize;
            corrupts += a.should_corrupt(1, ops, 3) as usize;
            differs |= a.should_drop(1, ops, 3) != c.should_drop(1, ops, 3);
        }
        assert!(
            drops > 0 && corrupts > 0,
            "drops {drops} corrupts {corrupts}"
        );
        assert!(differs, "different seeds should drop different frames");
        // Ordering stays exact: lossy never reorders or duplicates.
        for ops in 0..200 {
            assert!(!a.should_reorder(0, ops, 0));
            assert!(!a.should_duplicate(0, ops, 0));
        }
    }

    #[test]
    fn chaos_profile_parses_and_maps_to_plans() {
        assert_eq!(ChaosProfile::parse("delay"), ChaosProfile::Delay);
        assert_eq!(ChaosProfile::parse("chaos"), ChaosProfile::Chaos);
        assert_eq!(ChaosProfile::parse("lossy"), ChaosProfile::Lossy);
        assert_eq!(ChaosProfile::parse("typo"), ChaosProfile::Delay);
        let p = ChaosProfile::Lossy.plan(5);
        assert!(p.drop_prob > 0.0 && p.corrupt_prob > 0.0);
        assert_eq!(p.reorder_prob, 0.0);
        let d = ChaosProfile::Delay.plan(5);
        assert_eq!(d.drop_prob, 0.0);
    }
}
