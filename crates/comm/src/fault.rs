//! Seeded chaos injection for the SPMD runtime.
//!
//! A [`FaultPlan`] attached to a run via [`crate::SpmdOptions`] perturbs the
//! communication schedule deterministically: every decision is a pure
//! function of `(seed, rank, op counter, salt)`, so a failing chaos test
//! replays bit-identically from its seed. Four perturbations:
//!
//! * **delay** — sleep a bounded pseudo-random duration before a send or
//!   after matching a receive, scrambling cross-rank interleavings;
//! * **reorder** — defer a point-to-point/collective send and release it
//!   after the *next* send, swapping in-channel delivery order (stresses the
//!   out-of-order inbox parking);
//! * **duplicate** — deliver a collective payload twice (the dup parks in
//!   the receiver's inbox; a correct matcher must never consume it);
//! * **kill** — panic a chosen rank once its op counter reaches a chosen
//!   value, exercising panic containment and cluster abort.

use std::time::Duration;

/// Kill one rank at one op count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillSpec {
    pub rank: usize,
    pub at_op: u64,
}

/// Deterministic, seeded fault-injection plan for one SPMD run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub seed: u64,
    /// Kill this rank when its op counter reaches `at_op`.
    pub kill: Option<KillSpec>,
    /// Probability of delaying any single send/receive.
    pub delay_prob: f64,
    /// Upper bound on an injected delay.
    pub max_delay: Duration,
    /// Probability of deferring a send past the next one (reorder).
    pub reorder_prob: f64,
    /// Probability of duplicating a collective payload.
    pub duplicate_prob: f64,
}

impl FaultPlan {
    /// A hostile-schedule plan: delays, reorders, and duplicates, no kill.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            kill: None,
            delay_prob: 0.15,
            max_delay: Duration::from_micros(300),
            reorder_prob: 0.15,
            duplicate_prob: 0.10,
        }
    }

    /// A timing-only plan: bounded random delays on sends/receives, no
    /// reordering, duplication, or kills. This is the ambient plan behind
    /// `CARVE_CHAOS`: it scrambles cross-rank interleavings (what the
    /// latency-hiding exchange paths must tolerate) while leaving message
    /// counts and delivery order exact, so traffic-counting tests still pass.
    pub fn delay_only(seed: u64) -> Self {
        FaultPlan {
            seed,
            kill: None,
            delay_prob: 0.25,
            max_delay: Duration::from_micros(200),
            reorder_prob: 0.0,
            duplicate_prob: 0.0,
        }
    }

    /// A plan that only kills `rank` at op `at_op`.
    pub fn kill_rank(rank: usize, at_op: u64) -> Self {
        FaultPlan {
            kill: Some(KillSpec { rank, at_op }),
            ..FaultPlan::default()
        }
    }

    /// Builder: add a kill to an existing (e.g. chaos) plan.
    pub fn with_kill(mut self, rank: usize, at_op: u64) -> Self {
        self.kill = Some(KillSpec { rank, at_op });
        self
    }

    /// Should `rank` die now, given its op counter?
    pub(crate) fn should_kill(&self, rank: usize, ops: u64) -> bool {
        matches!(self.kill, Some(k) if k.rank == rank && ops >= k.at_op)
    }

    /// Deterministic unit draw for a decision site.
    fn draw(&self, rank: usize, ops: u64, salt: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((rank as u64) << 32)
            .wrapping_add(ops)
            .wrapping_add(salt.wrapping_mul(0xD1B5_4A32_D192_ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    pub(crate) fn delay_for(&self, rank: usize, ops: u64, salt: u64) -> Option<Duration> {
        if self.delay_prob <= 0.0 {
            return None;
        }
        let u = self.draw(rank, ops, salt);
        if u < self.delay_prob {
            let frac = self.draw(rank, ops, salt ^ 0xA5A5);
            Some(Duration::from_nanos(
                (self.max_delay.as_nanos() as f64 * frac) as u64,
            ))
        } else {
            None
        }
    }

    pub(crate) fn should_reorder(&self, rank: usize, ops: u64, salt: u64) -> bool {
        self.reorder_prob > 0.0 && self.draw(rank, ops, salt ^ 0x5A5A) < self.reorder_prob
    }

    pub(crate) fn should_duplicate(&self, rank: usize, ops: u64, salt: u64) -> bool {
        self.duplicate_prob > 0.0 && self.draw(rank, ops, salt ^ 0x3C3C) < self.duplicate_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultPlan::chaos(9);
        let b = FaultPlan::chaos(9);
        let c = FaultPlan::chaos(10);
        let mut differs = false;
        for ops in 0..200 {
            assert_eq!(
                a.delay_for(1, ops, 3).is_some(),
                b.delay_for(1, ops, 3).is_some()
            );
            assert_eq!(a.should_reorder(2, ops, 0), b.should_reorder(2, ops, 0));
            if a.should_reorder(2, ops, 0) != c.should_reorder(2, ops, 0) {
                differs = true;
            }
        }
        assert!(differs, "different seeds should give different schedules");
    }

    #[test]
    fn kill_triggers_at_threshold() {
        let p = FaultPlan::kill_rank(3, 10);
        assert!(!p.should_kill(3, 9));
        assert!(p.should_kill(3, 10));
        assert!(p.should_kill(3, 11));
        assert!(!p.should_kill(2, 99));
    }

    #[test]
    fn delay_only_plan_perturbs_timing_but_nothing_else() {
        let p = FaultPlan::delay_only(7);
        let mut delayed = false;
        for ops in 0..200 {
            delayed |= p.delay_for(0, ops, 0).is_some();
            assert!(!p.should_reorder(0, ops, 0));
            assert!(!p.should_duplicate(0, ops, 0));
            assert!(!p.should_kill(0, ops));
        }
        assert!(delayed, "delay_only should inject at least one delay");
    }

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        for ops in 0..100 {
            assert!(p.delay_for(0, ops, 0).is_none());
            assert!(!p.should_reorder(0, ops, 0));
            assert!(!p.should_duplicate(0, ops, 0));
            assert!(!p.should_kill(0, ops));
        }
    }
}
