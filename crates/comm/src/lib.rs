//! Simulated-MPI SPMD runtime for the `carve` workspace.
//!
//! The paper runs on Frontera with MPI; Rust MPI bindings are thin and this
//! reproduction targets a single box, so the distributed-memory substrate is
//! built from scratch:
//!
//! * [`Comm`] — a per-rank communicator handle with MPI-style point-to-point
//!   (`send` / `recv`) and collectives (`barrier`, `all_gather`,
//!   `all_gatherv`, `all_reduce`, `exscan`, `all_to_allv`, `bcast`), carried
//!   over crossbeam channels between OS threads. Every byte sent is counted,
//!   so communication-volume results (Fig. 11) are exact.
//! * [`run_spmd`] — launches `P` ranks as scoped threads running the same
//!   closure (SPMD), returns every rank's result.
//! * [`disttreesort`] — the distributed sample-sort version of TreeSort used
//!   by Algorithm 3, with duplicate removal and keep-finer overlap
//!   resolution across rank boundaries, plus the load-tolerance splitter
//!   selection.
//!
//! Collectives are implemented with simple star/all-pairs exchanges: the
//! point of this substrate is *algorithmic fidelity and exact accounting*,
//! not network performance (wall-clock scaling is modeled separately in the
//! benchmark harness, see DESIGN.md §2).

pub mod comm;
pub mod disttreesort;

pub use comm::{run_spmd, Comm, CommStats, ReduceOp};
pub use disttreesort::{dist_tree_sort, partition_splitters_by_weight};
