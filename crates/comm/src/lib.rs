//! Simulated-MPI SPMD runtime for the `carve` workspace.
//!
//! The paper runs on Frontera with MPI; Rust MPI bindings are thin and this
//! reproduction targets a single box, so the distributed-memory substrate is
//! built from scratch:
//!
//! * [`Comm`] — a per-rank communicator handle with MPI-style point-to-point
//!   (`send` / `recv`) and collectives (`barrier`, `all_gather`,
//!   `all_gatherv`, `all_reduce`, `exscan`, `all_to_allv`, `bcast`), carried
//!   over std `mpsc` channels between OS threads. Every byte sent *and
//!   received* is counted, so communication-volume results (Fig. 11) are
//!   exact.
//! * [`run_spmd`] / [`try_run_spmd`] / [`run_spmd_with`] — launch `P` ranks
//!   as scoped threads running the same closure (SPMD). The runtime is
//!   fault-tolerant: rank panics are contained via `catch_unwind`, a
//!   cluster-wide abort flag unwinds the survivors promptly, every blocking
//!   wait carries a watchdog deadline (`CARVE_COMM_TIMEOUT`), and failures
//!   surface as structured [`SpmdError`]s naming the responsible rank(s).
//! * [`FaultPlan`] — seeded, deterministic chaos injection (delay / reorder /
//!   duplicate / drop / corrupt deliveries, kill a rank at a chosen op
//!   count) for stress testing the distributed algorithms. Exchange-lane
//!   traffic is sequence-numbered and checksummed, with bounded
//!   retry/backoff recovery from a retransmit store (`CARVE_RETRY_BASE`,
//!   `CARVE_RETRY_MAX`), so lossy chaos converges bit-identically.
//! * [`disttreesort`] — the distributed sample-sort version of TreeSort used
//!   by Algorithm 3, with duplicate removal and keep-finer overlap
//!   resolution across rank boundaries, plus the load-tolerance splitter
//!   selection.
//!
//! Collectives are implemented with simple star/all-pairs exchanges: the
//! point of this substrate is *algorithmic fidelity and exact accounting*,
//! not network performance (wall-clock scaling is modeled separately in the
//! benchmark harness, see DESIGN.md §2).

// Robustness policy: every "can't happen" in this crate must surface as a
// structured CommError, not an unwrap/expect panic. Tests are exempt.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod comm;
pub mod disttreesort;
pub mod error;
pub mod exchange;
pub mod fault;

pub use comm::{
    run_spmd, run_spmd_with, try_run_spmd, Comm, CommStats, RecvHandle, ReduceOp, SpmdOptions,
    CHAOS_ENV, RETRY_BASE_ENV, RETRY_MAX_ENV, TIMEOUT_ENV,
};
pub use disttreesort::{
    dist_tree_sort, load_imbalance, partition_splitters_by_weight, rebalance_equal_counts,
};
pub use error::{CommError, FailureKind, RankFailure, SpmdError};
pub use exchange::{ExchangeHandle, PendingRead};
pub use fault::{ChaosProfile, FaultPlan, KillSpec};
