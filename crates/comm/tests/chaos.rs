//! Chaos tests for the fault-tolerant SPMD runtime: a rank killed in the
//! middle of `dist_tree_sort` must surface as a structured [`SpmdError`]
//! naming the dead rank — promptly (no deadlock, no watchdog expiry) and
//! deterministically per seed. Hostile schedules (delays, reorders,
//! duplicated collective payloads) must not change any result.

use carve_comm::{dist_tree_sort, run_spmd_with, CommError, FailureKind, FaultPlan, SpmdOptions};
use carve_sfc::{Curve, Octant};
use std::time::{Duration, Instant};

/// Deterministic per-rank octant workload (splitmix64 walk, no rand dep).
fn seeded_octants<const DIM: usize>(n: usize, max_level: u8, seed: u64) -> Vec<Octant<DIM>> {
    let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    (0..n)
        .map(|_| {
            let level = 1 + (next() % max_level as u64) as u8;
            let mut o = Octant::<DIM>::ROOT;
            for _ in 0..level {
                o = o.child((next() % (1 << DIM)) as usize);
            }
            o
        })
        .collect()
}

fn sorted_under(
    plan: Option<FaultPlan>,
    p: usize,
) -> Result<Vec<Octant<3>>, carve_comm::SpmdError> {
    let mut opts = SpmdOptions::default().timeout(Duration::from_secs(20));
    opts.fault = plan;
    run_spmd_with(p, opts, |c| {
        let local = seeded_octants::<3>(120, 5, 1000 + c.rank() as u64);
        dist_tree_sort(c, local, Curve::Hilbert)
    })
    .map(|per_rank| per_rank.into_iter().flatten().collect())
}

/// The ISSUE acceptance criterion: kill one rank mid-sort; the run completes
/// well inside the watchdog deadline with a structured error naming exactly
/// the dead rank, and the outcome is identical on a re-run.
#[test]
fn kill_mid_sort_names_dead_rank_within_deadline() {
    const VICTIM: usize = 2;
    const AT_OP: u64 = 3;
    let deadline = Duration::from_secs(20);
    let start = Instant::now();
    let err = sorted_under(Some(FaultPlan::kill_rank(VICTIM, AT_OP)), 4)
        .expect_err("a killed rank must fail the run");
    let elapsed = start.elapsed();
    assert!(
        elapsed < deadline,
        "cluster took {elapsed:?} to unwind — watchdog deadline was the backstop, \
         abort-flag propagation should be near-instant"
    );

    // Exactly the victim is the root cause; survivors abort in sympathy.
    assert_eq!(err.failed_ranks(), vec![VICTIM]);
    let primary = err.primary();
    assert_eq!(primary.len(), 1);
    match &primary[0].kind {
        FailureKind::Comm(CommError::FaultInjected { rank, op }) => {
            assert_eq!(*rank, VICTIM);
            assert_eq!(*op, AT_OP);
        }
        other => panic!("expected FaultInjected root cause, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("rank 2"), "{msg}");
    assert!(msg.contains("fault injection"), "{msg}");

    // Deterministic per seed: an identical plan reproduces the identical
    // structured outcome, byte for byte.
    let again = sorted_under(Some(FaultPlan::kill_rank(VICTIM, AT_OP)), 4)
        .expect_err("re-run must fail identically");
    assert_eq!(again.to_string(), msg);
}

/// Killing at different points of the sort never hangs and always indicts
/// the right rank, whichever collective it dies inside.
#[test]
fn kill_points_across_the_sort_are_all_contained() {
    for (victim, at_op) in [(0usize, 1u64), (1, 2), (3, 4), (2, 6)] {
        let start = Instant::now();
        match sorted_under(Some(FaultPlan::kill_rank(victim, at_op)), 4) {
            Ok(_) => panic!("kill({victim}, {at_op}) never fired — sort finished"),
            Err(e) => assert_eq!(
                e.failed_ranks(),
                vec![victim],
                "kill({victim}, {at_op}): {e}"
            ),
        }
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "kill({victim}, {at_op}) took too long to unwind"
        );
    }
}

/// A hostile delivery schedule — random delays, reordered sends, duplicated
/// collective payloads — must leave the sorted result bit-identical to the
/// clean run (which itself matches the sequential reference, per the unit
/// tests in `disttreesort.rs`).
#[test]
fn chaos_schedule_does_not_change_sort_result() {
    let clean = sorted_under(None, 4).expect("clean run");
    for seed in [7u64, 99, 4242] {
        let stressed = sorted_under(Some(FaultPlan::chaos(seed)), 4)
            .unwrap_or_else(|e| panic!("chaos seed {seed} broke the run: {e}"));
        assert_eq!(stressed, clean, "chaos seed {seed} changed the result");
    }
}

/// Chaos plus a kill: the hostile schedule must not mask the structured
/// root-cause report.
#[test]
fn chaos_with_kill_still_names_the_victim() {
    let err = sorted_under(Some(FaultPlan::chaos(17).with_kill(1, 4)), 4)
        .expect_err("killed rank must fail the run under chaos too");
    assert_eq!(err.failed_ranks(), vec![1]);
}
