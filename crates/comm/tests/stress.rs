//! Stress and adversarial-input tests for the simulated-MPI substrate:
//! many ranks, empty payloads, duplicate-heavy and ancestor-chain octant
//! inputs — the failure modes a distributed sort meets in practice.

use carve_comm::{dist_tree_sort, run_spmd, Comm, ReduceOp};
use carve_sfc::{sfc_cmp, Curve, Octant};

#[test]
fn sixteen_ranks_interleaved_collectives() {
    let res = run_spmd(16, |c: &Comm| {
        let mut acc = 0u64;
        for round in 0..20 {
            let v = (c.rank() as u64 + round) % 7;
            acc += c.all_reduce_u64(v, ReduceOp::Sum);
            c.barrier();
            let g = c.all_gather(c.rank() as u64 * round);
            assert_eq!(g.len(), 16);
            let scan = c.exscan_u64(1);
            assert_eq!(scan, c.rank() as u64);
        }
        acc
    });
    // All ranks computed identical reductions.
    assert!(res.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn alltoallv_with_empty_and_fat_lanes() {
    let res = run_spmd(8, |c: &Comm| {
        // Rank r sends r copies of its id to rank (r+1)%8, nothing else.
        let mut sends: Vec<Vec<u64>> = (0..8).map(|_| Vec::new()).collect();
        sends[(c.rank() + 1) % 8] = vec![c.rank() as u64; c.rank()];
        let recv = c.all_to_allv(sends);
        // We receive from (rank+7)%8: that many copies of its id.
        let from = (c.rank() + 7) % 8;
        let lane: Vec<u64> = recv[from].clone();
        assert_eq!(lane.len(), from);
        assert!(lane.iter().all(|&x| x == from as u64));
        // Every other lane is empty.
        recv.iter()
            .enumerate()
            .filter(|(q, _)| *q != from)
            .for_each(|(_, l)| assert!(l.is_empty()));
        lane.len()
    });
    assert_eq!(res.iter().sum::<usize>(), (0..8).sum());
}

#[test]
fn dist_sort_all_duplicates() {
    // Every rank contributes the same handful of octants; the global result
    // must be the deduplicated set.
    let octs: Vec<Octant<2>> = vec![
        Octant::ROOT.child(0),
        Octant::ROOT.child(1),
        Octant::ROOT.child(0), // duplicate
        Octant::ROOT.child(3),
    ];
    let res = run_spmd(5, |c: &Comm| dist_tree_sort(c, octs.clone(), Curve::Morton));
    let flat: Vec<Octant<2>> = res.into_iter().flatten().collect();
    assert_eq!(
        flat,
        vec![
            Octant::<2>::ROOT.child(0),
            Octant::ROOT.child(1),
            Octant::ROOT.child(3)
        ]
    );
}

#[test]
fn dist_sort_ancestor_chains_keep_finest() {
    // A full ancestor chain split across ranks: only the deepest survives.
    let deepest = Octant::<2>::ROOT.child(2).child(1).child(3).child(0);
    let res = run_spmd(4, |c: &Comm| {
        // Rank r holds the ancestor at depth r+1.
        let mut o = Octant::<2>::ROOT;
        let path = [2usize, 1, 3, 0];
        for &p in path.iter().take(c.rank() + 1) {
            o = o.child(p);
        }
        dist_tree_sort(c, vec![o], Curve::Hilbert)
    });
    let flat: Vec<Octant<2>> = res.into_iter().flatten().collect();
    assert_eq!(flat, vec![deepest]);
}

#[test]
fn dist_sort_some_ranks_empty() {
    let res = run_spmd(6, |c: &Comm| {
        let local = if c.rank().is_multiple_of(2) {
            vec![Octant::<3>::ROOT.child(c.rank() % 8)]
        } else {
            Vec::new()
        };
        dist_tree_sort(c, local, Curve::Hilbert)
    });
    let flat: Vec<Octant<3>> = res.into_iter().flatten().collect();
    assert_eq!(flat.len(), 3);
    assert!(flat
        .windows(2)
        .all(|w| sfc_cmp(Curve::Hilbert, &w[0], &w[1]) == std::cmp::Ordering::Less));
}

#[test]
fn point_to_point_many_outstanding_messages() {
    // Flood a rank with out-of-order tags; the inbox must park and match
    // them all.
    let res = run_spmd(2, |c: &Comm| {
        if c.rank() == 0 {
            for tag in (0..50u64).rev() {
                c.send(1, tag, vec![tag]);
            }
            0
        } else {
            let mut sum = 0;
            for tag in 0..50u64 {
                sum += c.recv::<u64>(0, tag)[0];
            }
            sum
        }
    });
    assert_eq!(res[1], (0..50).sum::<u64>());
}
