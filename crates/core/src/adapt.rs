//! Dynamic adaptation of a distributed mesh: the
//! `mark → refine/coarsen → rebalance → repartition → patch` cycle that
//! turns the static construction pipeline into a transient-capable AMR
//! engine.
//!
//! Marking is the application's job (see `carve-fem`'s estimator); this
//! module takes the per-owned-element [`Adapt`] decisions and carries the
//! mesh through:
//!
//! 1. **refine** — a local split/merge pass over the owned slice (sibling
//!    runs crossing rank boundaries are blocked automatically, because a
//!    rank that cannot see every retained sibling never merges), followed
//!    by a distributed 2:1 **rebalance fixpoint**: each rank balances its
//!    owned ∪ ghost halo with [`construct_balanced`] and clips the result
//!    back to its splitter interval, iterating until no rank changes.
//!    Clipping is sound because a subtree occupies a contiguous SFC key
//!    interval, so the first-descendant key of any octant decides its rank
//!    uniquely and consistently on every rank that generates it.
//! 2. **repartition** — a collective load-imbalance check
//!    ([`carve_comm::load_imbalance`]); only when the imbalance exceeds
//!    `repart_tol` do elements migrate ([`rebalance_equal_counts`]) and the
//!    mesh pays for a full [`DistMesh::finish`] rebuild (counted under
//!    `full_rebuilds`).
//! 3. **patch** — the common case: ghosts, nodes, ownership, and the
//!    persistent [`carve_comm::ExchangeHandle`] neighbor lists are updated
//!    *in place*. Node ownership uses the interior fast path (only
//!    partition-surface nodes ride the broker protocol — counters
//!    `nodes_interior_fast` / `nodes_brokered` record the split) and the
//!    exchange handle is rebuilt lane-by-lane without resetting its frame
//!    sequence counter. The patched state is field-for-field identical to
//!    a from-scratch `finish` on the same owned elements.
//!
//! Every collective in the cycle is ordinary SPMD over the deterministic
//! simulated transport, so adapt traces are bitwise-stable across thread
//! counts and under chaos schedules.

use crate::balance::{construct_balanced, debug_assert_2to1};
use crate::dist::{
    boundary_elem_flags, descendant_key_range, exchange_ghost_layer, needed_node_set,
    node_ownership_plans, splitter_bin, DistMesh,
};
use crate::refine::{adapt_once, Adapt};
use carve_comm::{load_imbalance, rebalance_equal_counts, Comm, ReduceOp};
use carve_geom::Subdomain;
use carve_sfc::{sfc_cmp, Octant, MAX_LEVEL};
use std::collections::HashSet;

/// Knobs for one adaptation step.
#[derive(Clone, Copy, Debug)]
pub struct AdaptParams {
    /// Refine decisions on elements at this level are ignored.
    pub max_level: u8,
    /// Coarsen decisions on elements at or below this level are ignored.
    pub min_level: u8,
    /// Repartition when `load_imbalance` exceeds this factor (1.0 = perfect
    /// balance). Values `< 1.0` force migration every step; `f64::INFINITY`
    /// disables migration entirely.
    pub repart_tol: f64,
}

impl Default for AdaptParams {
    fn default() -> Self {
        AdaptParams {
            max_level: MAX_LEVEL - 2,
            min_level: 1,
            repart_tol: 1.5,
        }
    }
}

/// What one [`DistMesh::adapt`] call did (rank-local counts are summed
/// globally; `migrated` is collective).
#[derive(Clone, Copy, Debug, Default)]
pub struct AdaptOutcome {
    /// Elements split, summed over ranks.
    pub refined: u64,
    /// Elements merged away (children replaced by their parent), summed
    /// over ranks.
    pub coarsened: u64,
    /// Whether this step exceeded the imbalance tolerance and paid for a
    /// migration + full rebuild instead of the incremental patch.
    pub migrated: bool,
    /// Local owned-element count before/after the step.
    pub elems_before: usize,
    pub elems_after: usize,
    /// Iterations of the distributed 2:1 rebalance fixpoint.
    pub balance_rounds: u32,
}

impl<const DIM: usize> DistMesh<DIM> {
    /// One adaptation step driven by per-owned-element `decisions`
    /// (aligned with `self.elems[self.owned]`).
    ///
    /// Opens the `refine` / `repartition` / `patch` obs phases; callers
    /// wrap the whole step (marking included) in a `scope("adapt")` so the
    /// phase tree reads `adapt/{mark,refine,repartition,patch}`.
    pub fn adapt(
        &mut self,
        comm: &Comm,
        domain: &dyn Subdomain<DIM>,
        decisions: &[Adapt],
        params: &AdaptParams,
    ) -> AdaptOutcome {
        assert_eq!(
            decisions.len(),
            self.owned.len(),
            "one decision per owned element"
        );
        let my = comm.rank();
        let curve = self.curve;
        let elems_before = self.owned.len();

        // --- Phase 1: local refine/coarsen + distributed rebalance -------
        let (mut owned, refined_local, coarsened_local, balance_rounds) = {
            let _obs = carve_obs::scope("refine");
            let owned_slice = &self.elems[self.owned.clone()];
            // Level caps degrade out-of-range decisions to Keep.
            let capped: Vec<Adapt> = owned_slice
                .iter()
                .zip(decisions)
                .map(|(e, &d)| match d {
                    Adapt::Refine if e.level >= params.max_level => Adapt::Keep,
                    Adapt::Coarsen if e.level <= params.min_level => Adapt::Keep,
                    d => d,
                })
                .collect();
            let crit = |e: &Octant<DIM>| -> Adapt {
                match owned_slice.binary_search_by(|x| sfc_cmp(curve, x, e)) {
                    Ok(i) => capped[i],
                    Err(_) => Adapt::Keep,
                }
            };
            let adapted = adapt_once(domain, curve, owned_slice, &crit);
            // Count what actually happened (decisions can be blocked by
            // carving, level caps, or split sibling runs): an input element
            // missing from the output was either merged (its parent
            // survives) or split (its children do).
            let out_set: HashSet<Octant<DIM>> = adapted.iter().copied().collect();
            let mut refined_local = 0u64;
            let mut coarsened_local = 0u64;
            for e in owned_slice {
                if out_set.contains(e) {
                    continue;
                }
                if e.level > 0 && out_set.contains(&e.parent()) {
                    coarsened_local += 1;
                } else {
                    refined_local += 1;
                }
            }
            carve_obs::counter("elements_refined", refined_local);
            carve_obs::counter("elements_coarsened", coarsened_local);

            // Distributed 2:1 rebalance fixpoint. Each round: exchange the
            // ghost halo, balance the union locally, clip to the splitter
            // interval, and stop when no rank changed. Refinement forced by
            // balancing is monotone, so the loop terminates; at the
            // fixpoint any two touching leaves (possibly on different
            // ranks) are within one level, because a touching foreign leaf
            // is always inside the halo and a violation would have changed
            // the clipped tree.
            let mut owned = adapted;
            let mut balance_rounds = 0u32;
            loop {
                balance_rounds += 1;
                let splitters: Vec<Option<Octant<DIM>>> = comm.all_gather(owned.first().copied());
                let (all, _owned_range) = exchange_ghost_layer(comm, curve, &owned, &splitters);
                let new_owned: Vec<Octant<DIM>> = if owned.is_empty() {
                    // An empty rank owns no splitter interval; construct
                    // from nothing would fabricate the root.
                    Vec::new()
                } else {
                    construct_balanced(domain, curve, &all)
                        .into_iter()
                        .filter(|o| {
                            splitter_bin(&splitters, curve, &descendant_key_range(o).0) == my
                        })
                        .collect()
                };
                let changed = (new_owned != owned) as u64;
                owned = new_owned;
                if comm.all_reduce_u64(changed, ReduceOp::Max) == 0 {
                    break;
                }
            }
            (owned, refined_local, coarsened_local, balance_rounds)
        };

        let refined = comm.all_reduce_u64(refined_local, ReduceOp::Sum);
        let coarsened = comm.all_reduce_u64(coarsened_local, ReduceOp::Sum);

        // --- Phase 2: repartition check ----------------------------------
        let migrated = {
            let _obs = carve_obs::scope("repartition");
            let imb = load_imbalance(comm, owned.len() as u64);
            if imb > params.repart_tol {
                let before = std::mem::take(&mut owned);
                let new_owned = rebalance_equal_counts(comm, before.clone());
                if new_owned != before {
                    carve_obs::counter("ranks_migrated", 1);
                }
                carve_obs::counter("full_rebuilds", 1);
                let order = self.order;
                *self = DistMesh::finish(comm, domain, curve, new_owned, order);
                true
            } else {
                false
            }
        };

        // --- Phase 3: incremental patch ----------------------------------
        if !migrated {
            let _obs = carve_obs::scope("patch");
            let splitters: Vec<Option<Octant<DIM>>> = comm.all_gather(owned.first().copied());
            let (elems, owned_range) = exchange_ghost_layer(comm, curve, &owned, &splitters);
            debug_assert_2to1(&elems, "adapt patch (owned + ghost halo)");
            let nodes = needed_node_set(domain, &elems, owned_range.clone(), self.order);
            let own = node_ownership_plans(comm, curve, &splitters, &nodes, true);
            self.exchange
                .borrow_mut()
                .rebuild(&own.send_plan, &own.recv_plan);
            let boundary_elem =
                boundary_elem_flags(&elems, owned_range.clone(), &nodes, &own.owner, my);
            self.labels = elems
                .iter()
                .map(|e| crate::construct::classify_octant(domain, e))
                .collect();
            self.elems = elems;
            self.owned = owned_range;
            self.nodes = nodes;
            self.owner = own.owner;
            self.global_id = own.global_id;
            self.n_owned_nodes = own.n_owned_nodes;
            self.n_global_dofs = own.n_global_dofs;
            self.boundary_elem = boundary_elem;
        }

        AdaptOutcome {
            refined,
            coarsened,
            migrated,
            elems_before,
            elems_after: self.owned.len(),
            balance_rounds,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::balance::check_2to1;
    use crate::dist::GhostState;
    use crate::matvec::TraversalWorkspace;
    use carve_comm::{run_spmd, run_spmd_with, FaultPlan, SpmdOptions};
    use carve_geom::{CarvedSolids, Sphere};
    use carve_sfc::Curve;

    fn sphere_domain_2d() -> CarvedSolids<2> {
        CarvedSolids::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))])
    }

    /// Distance-to-circle criterion: refine a moving band, coarsen away
    /// from it. `phase` shifts the band so successive adapts both refine
    /// and coarsen.
    fn band_decisions<const DIM: usize>(
        mesh: &DistMesh<DIM>,
        center: f64,
        width: f64,
    ) -> Vec<Adapt> {
        mesh.elems[mesh.owned.clone()]
            .iter()
            .map(|e| {
                let c = e.center_unit();
                let d = c.iter().map(|x| (x - 0.5) * (x - 0.5)).sum::<f64>().sqrt();
                if (d - center).abs() < width {
                    Adapt::Refine
                } else {
                    Adapt::Coarsen
                }
            })
            .collect()
    }

    fn gather_leaves<const DIM: usize>(comm: &Comm, mesh: &DistMesh<DIM>) -> Vec<Octant<DIM>> {
        let mine: Vec<Octant<DIM>> = mesh.elems[mesh.owned.clone()].to_vec();
        comm.all_gather(mine).into_iter().flatten().collect()
    }

    #[test]
    fn adapt_keeps_union_balanced_and_covering() {
        let res = run_spmd(3, |c| {
            let domain = sphere_domain_2d();
            let mut dm = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 5, 1);
            let params = AdaptParams {
                repart_tol: f64::INFINITY,
                ..AdaptParams::default()
            };
            let mut sizes = Vec::new();
            for step in 0..3 {
                let center = 0.34 + 0.06 * step as f64;
                let d = band_decisions(&dm, center, 0.05);
                let out = dm.adapt(c, &domain, &d, &params);
                assert!(!out.migrated);
                let union = gather_leaves(c, &dm);
                check_2to1(&union).unwrap();
                crate::construct::check_tree_invariants(&domain, Curve::Hilbert, &union).unwrap();
                sizes.push((out.refined, out.coarsened, union.len()));
            }
            sizes
        });
        // Collective outcomes agree across ranks, and both refinement and
        // coarsening were exercised somewhere in the run.
        assert_eq!(res[0], res[1]);
        assert_eq!(res[0], res[2]);
        assert!(res[0].iter().any(|s| s.0 > 0), "refine exercised: {res:?}");
        assert!(res[0].iter().any(|s| s.1 > 0), "coarsen exercised: {res:?}");
    }

    #[test]
    fn adapted_mesh_equals_from_scratch_finish() {
        // Satellite: after adapting (patch path), every mesh field must be
        // bitwise identical to DistMesh::finish built from scratch on the
        // same owned leaves — the incremental patch hides no state drift.
        let res = run_spmd(3, |c| {
            let domain = sphere_domain_2d();
            let mut dm = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 5, 1);
            let params = AdaptParams {
                repart_tol: f64::INFINITY,
                ..AdaptParams::default()
            };
            for step in 0..2 {
                let d = band_decisions(&dm, 0.34 + 0.08 * step as f64, 0.05);
                dm.adapt(c, &domain, &d, &params);
            }
            let owned: Vec<Octant<2>> = dm.elems[dm.owned.clone()].to_vec();
            let fresh = DistMesh::finish(c, &domain, Curve::Hilbert, owned, 1);
            assert_eq!(dm.elems, fresh.elems);
            assert_eq!(dm.owned, fresh.owned);
            assert_eq!(dm.labels, fresh.labels);
            assert_eq!(dm.nodes.coords, fresh.nodes.coords);
            assert_eq!(dm.nodes.flags, fresh.nodes.flags);
            assert_eq!(dm.owner, fresh.owner);
            assert_eq!(dm.global_id, fresh.global_id);
            assert_eq!(dm.n_owned_nodes, fresh.n_owned_nodes);
            assert_eq!(dm.n_global_dofs, fresh.n_global_dofs);
            assert_eq!(dm.boundary_elem, fresh.boundary_elem);
            dm.n_global_dofs
        });
        assert_eq!(res[0], res[1]);
    }

    #[test]
    fn adapted_solve_matches_from_scratch_solve_bitwise() {
        // Satellite: a matvec on the adapted mesh equals the same matvec on
        // a from-scratch mesh with the same leaf set, bitwise, at any
        // thread count.
        let run = |threads: usize| {
            run_spmd(3, move |c| {
                let domain = sphere_domain_2d();
                let mut dm = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 5, 1);
                let params = AdaptParams {
                    repart_tol: f64::INFINITY,
                    ..AdaptParams::default()
                };
                for step in 0..2 {
                    let d = band_decisions(&dm, 0.36 + 0.07 * step as f64, 0.05);
                    dm.adapt(c, &domain, &d, &params);
                }
                let owned: Vec<Octant<2>> = dm.elems[dm.owned.clone()].to_vec();
                let fresh = DistMesh::finish(c, &domain, Curve::Hilbert, owned, 1);
                let field: Vec<f64> = dm.nodes.coords.iter().map(keyed).collect();
                let field_fresh: Vec<f64> = fresh.nodes.coords.iter().map(keyed).collect();
                let mut ws = TraversalWorkspace::with_threads(threads);
                let mut kernel = |e: &Octant<2>, vals: &[f64], out: &mut [f64]| {
                    let s = e.side() as f64;
                    for (o, v) in out.iter_mut().zip(vals) {
                        *o = s.mul_add(*v, *v);
                    }
                };
                let mut y1 = vec![0.0; dm.nodes.len()];
                dm.matvec_ws(
                    c,
                    &field,
                    &mut y1,
                    &mut ws,
                    GhostState::Ghosted,
                    &mut kernel,
                );
                let mut y2 = vec![0.0; fresh.nodes.len()];
                fresh.matvec_ws(
                    c,
                    &field_fresh,
                    &mut y2,
                    &mut ws,
                    GhostState::Ghosted,
                    &mut kernel,
                );
                let bits: Vec<u64> = y1.iter().map(|v| v.to_bits()).collect();
                let bits2: Vec<u64> = y2.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bits, bits2, "adapted vs from-scratch matvec");
                bits
            })
        };
        let t1 = run(1);
        let t4 = run(4);
        assert_eq!(t1, t4, "thread count must not change a single bit");
    }

    fn keyed<const DIM: usize>(coord: &[u64; DIM]) -> f64 {
        let h = coord.iter().fold(0x243F6A8885A308D3u64, |h, &c| {
            (h ^ c).wrapping_mul(0x9E3779B97F4A7C15)
        });
        ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    #[test]
    fn adapt_trace_is_stable_under_chaos() {
        // The whole adapt cycle must be bitwise deterministic under lossy
        // chaos: same decisions, same meshes, same outcomes.
        let run = |fault: Option<FaultPlan>| {
            let mut opts = SpmdOptions::default().timeout(std::time::Duration::from_secs(60));
            opts.fault = fault;
            run_spmd_with(3, opts, |c| {
                let domain = sphere_domain_2d();
                let mut dm = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 5, 1);
                let params = AdaptParams {
                    repart_tol: 1.3,
                    ..AdaptParams::default()
                };
                let mut trace = Vec::new();
                for step in 0..3 {
                    let d = band_decisions(&dm, 0.34 + 0.06 * step as f64, 0.05);
                    let out = dm.adapt(c, &domain, &d, &params);
                    let union = gather_leaves(c, &dm);
                    let h = union.iter().fold(0xcbf29ce484222325u64, |h, o| {
                        let mut h = h;
                        for a in o.anchor {
                            h = (h ^ a as u64).wrapping_mul(0x100000001b3);
                        }
                        (h ^ o.level as u64).wrapping_mul(0x100000001b3)
                    });
                    trace.push((out.refined, out.coarsened, out.migrated, h));
                }
                trace
            })
            .expect("chaos must not break the adapt cycle")
        };
        let clean = run(None);
        assert_eq!(run(Some(FaultPlan::lossy(29))), clean, "lossy seed 29");
        assert_eq!(run(Some(FaultPlan::chaos(11))), clean, "chaos seed 11");
    }

    #[test]
    fn forced_repartition_migrates_and_rebuilds() {
        // With a tolerance below 1.0 every step migrates: the outcome must
        // say so and the mesh must stay valid and balanced afterwards.
        let res = run_spmd(3, |c| {
            let domain = sphere_domain_2d();
            let mut dm = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 5, 1);
            let params = AdaptParams {
                repart_tol: 0.5,
                ..AdaptParams::default()
            };
            let d = band_decisions(&dm, 0.34, 0.05);
            let out = dm.adapt(c, &domain, &d, &params);
            assert!(out.migrated);
            let union = gather_leaves(c, &dm);
            check_2to1(&union).unwrap();
            // Equal-count repartition: every rank within one element of the
            // mean.
            let total = union.len();
            let lo = total / 3;
            assert!(
                dm.owned.len() >= lo && dm.owned.len() <= lo + 1,
                "rank {} holds {} of {}",
                c.rank(),
                dm.owned.len(),
                total
            );
            dm.owned.len()
        });
        let max = res.iter().max().unwrap();
        let min = res.iter().min().unwrap();
        assert!(max - min <= 1, "equal-count partition: {res:?}");
    }
}
