//! 2:1 balancing: Algorithms 4 and 5.
//!
//! Bottom-up seed propagation (Sundar et al. \[56\] style): for every octant,
//! the neighbors of its parent are added one level coarser; after all levels
//! are processed, re-running the constrained construction over the enlarged
//! seed set yields a 2:1-balanced tree.
//!
//! §3.3's correctness subtlety is honored: carved octants generated as
//! neighbors-of-parents are **not** discarded during seeding — pruning only
//! happens in the final `ConstructConstrained` pass — otherwise two leaves
//! of ratio ≥ 4:1 could meet across a carved region.

use crate::construct::construct_constrained;
use carve_geom::Subdomain;
use carve_sfc::{Curve, Octant, MAX_LEVEL};
use std::collections::HashSet;

/// Algorithm 5 — `BottomUpConstrainNeighbors`: expands a set of seed leaves
/// into a balanced seed set (no `F` applied, per the paper).
pub fn bottom_up_constrain_neighbors<const DIM: usize>(leaves: &[Octant<DIM>]) -> Vec<Octant<DIM>> {
    let _obs = carve_obs::scope("balance");
    // Stratify by level, finest to coarsest.
    let mut by_level: Vec<HashSet<Octant<DIM>>> =
        (0..=MAX_LEVEL as usize).map(|_| HashSet::new()).collect();
    for o in leaves {
        by_level[o.level as usize].insert(*o);
    }
    for l in (2..=MAX_LEVEL as usize).rev() {
        if by_level[l].is_empty() {
            continue;
        }
        let this_level: Vec<Octant<DIM>> = by_level[l].iter().copied().collect();
        for t in this_level {
            let parent = t.parent();
            for n in parent.neighbors() {
                // add_unique; do NOT apply F (carved seeds must survive).
                by_level[l - 1].insert(n);
            }
        }
    }
    let mut out: Vec<Octant<DIM>> = by_level.into_iter().flatten().collect();
    carve_sfc::treesort(&mut out, Curve::Morton);
    out.dedup();
    out
}

/// Algorithm 4 — construct a 2:1-balanced incomplete tree from seed octants
/// (sequential version; see `dist` for the distributed one).
pub fn construct_balanced<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    curve: Curve,
    seeds: &[Octant<DIM>],
) -> Vec<Octant<DIM>> {
    let mut s = seeds.to_vec();
    carve_sfc::treesort(&mut s, curve);
    let t1 = construct_constrained(domain, curve, &s);
    let mut t2 = bottom_up_constrain_neighbors(&t1);
    carve_sfc::treesort(&mut t2, curve);
    construct_constrained(domain, curve, &t2)
}

/// Verifies the 2:1 balance property over the *retained* leaves: any two
/// leaves whose closed regions touch differ by at most one level.
pub fn check_2to1<const DIM: usize>(tree: &[Octant<DIM>]) -> Result<(), String> {
    // Hash the leaf set for ancestor queries.
    let set: HashSet<Octant<DIM>> = tree.iter().copied().collect();
    for o in tree {
        if o.level < 2 {
            continue;
        }
        // If any neighbor of the grandparent-level ancestor region is
        // occupied by a leaf at level <= o.level - 2 touching o, balance is
        // violated. Equivalently: check that no leaf coarser by >= 2 levels
        // touches o. Search candidate coarse leaves among ancestors of o's
        // neighbor regions.
        for n in o.neighbors() {
            // The leaf covering region n (if any) is n or an ancestor.
            let mut anc = n;
            loop {
                if set.contains(&anc) {
                    if (anc.level as i32) < o.level as i32 - 1 {
                        return Err(format!("2:1 violation: {o:?} touches {anc:?}"));
                    }
                    break;
                }
                if anc.level == 0 {
                    break; // region carved: nothing covers it
                }
                anc = anc.parent();
            }
        }
    }
    Ok(())
}

/// Debug-build 2:1 assertion (no-op in release). Coarsening can silently
/// break balance — a merged parent may now touch a leaf two levels finer —
/// so every adapt path asserts through this after its rebalance step.
#[inline]
pub fn debug_assert_2to1<const DIM: usize>(tree: &[Octant<DIM>], context: &str) {
    if cfg!(debug_assertions) {
        if let Err(e) = check_2to1(tree) {
            panic!("{context}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{check_tree_invariants, construct_boundary_refined};
    use carve_geom::{CarvedSolids, FullDomain, RetainBox, Sphere};

    #[test]
    fn single_deep_seed_gets_graded_neighborhood() {
        let deep = Octant::<2>::ROOT
            .child(0)
            .child(0)
            .child(0)
            .child(0)
            .child(0);
        let tree = construct_balanced(&FullDomain, Curve::Morton, &[deep]);
        check_tree_invariants(&FullDomain, Curve::Morton, &tree).unwrap();
        check_2to1(&tree).unwrap();
        assert!(tree.contains(&deep));
        // Coverage of the unit square.
        let area: f64 = tree
            .iter()
            .map(|o| {
                let s = o.bounds_unit().1;
                s * s
            })
            .sum();
        assert!((area - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_refined_disk_balances() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.3))]);
        let adaptive = construct_boundary_refined(&domain, Curve::Hilbert, 2, 6);
        let tree = construct_balanced(&domain, Curve::Hilbert, &adaptive);
        check_tree_invariants(&domain, Curve::Hilbert, &tree).unwrap();
        check_2to1(&tree).unwrap();
        // Balance may only refine: at least as many leaves.
        assert!(tree.len() >= adaptive.len());
    }

    #[test]
    fn balance_holds_across_carved_regions() {
        // A thin carved wall between a very fine region and a coarse one:
        // the §3.3 pitfall. Carve a narrow vertical slab and refine on one
        // side only; leaves on opposite sides of the slab share edges at the
        // slab's ends if the slab is thinner than the elements.
        let domain = CarvedSolids::<2>::new(vec![Box::new(carve_geom::AxisBox::new(
            [0.49, 0.0],
            [0.51, 0.75],
        ))]);
        let adaptive = construct_boundary_refined(&domain, Curve::Morton, 2, 7);
        let tree = construct_balanced(&domain, Curve::Morton, &adaptive);
        check_tree_invariants(&domain, Curve::Morton, &tree).unwrap();
        check_2to1(&tree).unwrap();
    }

    #[test]
    fn balance_3d_sphere() {
        let domain = CarvedSolids::<3>::new(vec![Box::new(Sphere::new([0.5; 3], 0.25))]);
        let adaptive = construct_boundary_refined(&domain, Curve::Hilbert, 2, 4);
        let tree = construct_balanced(&domain, Curve::Hilbert, &adaptive);
        check_tree_invariants(&domain, Curve::Hilbert, &tree).unwrap();
        check_2to1(&tree).unwrap();
    }

    #[test]
    fn balanced_tree_is_idempotent() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.3, 0.7], 0.2))]);
        let adaptive = construct_boundary_refined(&domain, Curve::Morton, 2, 5);
        let t1 = construct_balanced(&domain, Curve::Morton, &adaptive);
        let t2 = construct_balanced(&domain, Curve::Morton, &t1);
        assert_eq!(t1, t2, "balancing twice must be a fixed point");
    }

    #[test]
    fn channel_balance() {
        let domain = RetainBox::<3>::channel([1.0, 0.25, 0.25]);
        let adaptive = construct_boundary_refined(&domain, Curve::Hilbert, 2, 4);
        let tree = construct_balanced(&domain, Curve::Hilbert, &adaptive);
        check_2to1(&tree).unwrap();
        check_tree_invariants(&domain, Curve::Hilbert, &tree).unwrap();
    }
}
