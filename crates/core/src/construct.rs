//! Incomplete-octree construction: Algorithms 1 and 2 of the paper.
//!
//! Both algorithms traverse top-down in SFC order and *prune carved subtrees
//! before recursing* — the crucial departure from build-complete-then-filter
//! approaches \[66\]. A propagated `RetainInternal` flag additionally skips
//! re-evaluating `F` inside regions known to be fully retained (§3.1.1:
//! "if an octant is non-intercepted, so are all its children").

use carve_geom::{RegionLabel, Subdomain};
use carve_sfc::{Curve, Octant, SfcState};

/// Evaluates `F(ē)` for an octant against the subdomain.
pub fn classify_octant<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    oct: &Octant<DIM>,
) -> RegionLabel {
    let (min, side) = oct.bounds_unit();
    domain.classify_region(&min, side)
}

/// Algorithm 1 — `ConstructUniform`: all leaves at `level`, covering the
/// subdomain (carved subtrees pruned during descent), SFC-sorted.
pub fn construct_uniform<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    curve: Curve,
    level: u8,
) -> Vec<Octant<DIM>> {
    let _obs = carve_obs::scope("construct");
    let mut out = Vec::new();
    rec_uniform(
        domain,
        curve,
        Octant::ROOT,
        SfcState::ROOT,
        level,
        false,
        &mut out,
    );
    out
}

fn rec_uniform<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    curve: Curve,
    s: Octant<DIM>,
    st: SfcState,
    level: u8,
    known_internal: bool,
    out: &mut Vec<Octant<DIM>>,
) {
    let known_internal = known_internal || {
        match classify_octant(domain, &s) {
            RegionLabel::Carved => return, // prune
            RegionLabel::RetainInternal => true,
            RegionLabel::RetainBoundary => false,
        }
    };
    if s.level >= level {
        out.push(s);
        return;
    }
    for r in 0..(1usize << DIM) {
        let m = st.sfc_to_morton(curve, DIM, r);
        rec_uniform(
            domain,
            curve,
            s.child(m),
            st.child(curve, DIM, r),
            level,
            known_internal,
            out,
        );
    }
}

/// Algorithm 2 — `ConstructConstrained`: leaves no coarser than the seed
/// octants `b`, covering the subdomain, SFC-sorted. `b` must be SFC-sorted.
///
/// The seeds are bucketed to SFC-ordered children at every level (counts →
/// permute → scan → slice), exactly as in the paper's listing.
pub fn construct_constrained<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    curve: Curve,
    seeds: &[Octant<DIM>],
) -> Vec<Octant<DIM>> {
    let _obs = carve_obs::scope("construct");
    let mut out = Vec::new();
    rec_constrained(
        domain,
        curve,
        Octant::ROOT,
        SfcState::ROOT,
        seeds,
        false,
        &mut out,
    );
    out
}

fn rec_constrained<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    curve: Curve,
    s: Octant<DIM>,
    st: SfcState,
    seeds: &[Octant<DIM>],
    known_internal: bool,
    out: &mut Vec<Octant<DIM>>,
) {
    let known_internal = known_internal || {
        match classify_octant(domain, &s) {
            RegionLabel::Carved => return, // prune
            RegionLabel::RetainInternal => true,
            RegionLabel::RetainBoundary => false,
        }
    };
    // Finest seed level; leaf if this subtree is at least as deep as every
    // remaining seed.
    let finest = seeds.iter().map(|b| b.level).max();
    match finest {
        None => {
            out.push(s);
            return;
        }
        Some(l) if s.level >= l => {
            out.push(s);
            return;
        }
        _ => {}
    }
    // Bucket seeds to SFC-sorted children of s. Seeds at this subtree's own
    // level (== s) impose no further constraint below child granularity and
    // are absorbed (they are already satisfied by any refinement).
    let child_level = s.level + 1;
    let nch = 1usize << DIM;
    let mut counts = vec![0usize; nch];
    for b in seeds {
        if b.level >= child_level {
            counts[st.morton_to_sfc(curve, DIM, b.child_bits_at(child_level))] += 1;
        }
    }
    let mut offsets = vec![0usize; nch + 1];
    for r in 0..nch {
        offsets[r + 1] = offsets[r] + counts[r];
    }
    // The seeds slice is SFC-sorted, so per-child seeds are contiguous after
    // skipping the (at most one) seed equal to `s` itself at the front.
    let skip = seeds.iter().take_while(|b| b.level < child_level).count();
    let body = &seeds[skip..];
    for r in 0..nch {
        let m = st.sfc_to_morton(curve, DIM, r);
        let slice = &body[offsets[r]..offsets[r + 1]];
        rec_constrained(
            domain,
            curve,
            s.child(m),
            st.child(curve, DIM, r),
            slice,
            known_internal,
            out,
        );
    }
}

/// Adaptive refinement driver: starts from a uniform incomplete tree at
/// `base_level` and repeatedly splits every *intercepted* leaf until all
/// intercepted leaves reach `boundary_level` (carved children pruned as they
/// appear). This is the paper's standard two-level experimental setup
/// ("base refinement" / "boundary refinement").
pub fn construct_boundary_refined<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    curve: Curve,
    base_level: u8,
    boundary_level: u8,
) -> Vec<Octant<DIM>> {
    assert!(boundary_level >= base_level);
    let mut tree = construct_uniform(domain, curve, base_level);
    let _obs = carve_obs::scope("refine");
    loop {
        // The In/Out tests dominate this loop for mesh-based geometry
        // (ray tracing per octant, §5) — classify in parallel, splice
        // serially to keep the output deterministic.
        let split_lists: Vec<Option<Vec<Octant<DIM>>>> = crate::par::par_map(&tree, |oct| {
            let needs_split = oct.level < boundary_level
                && classify_octant(domain, oct) == RegionLabel::RetainBoundary;
            if !needs_split {
                return None;
            }
            let mut children = Vec::with_capacity(1 << DIM);
            for c in 0..(1usize << DIM) {
                let ch = oct.child(c);
                if classify_octant(domain, &ch) != RegionLabel::Carved {
                    children.push(ch);
                }
            }
            Some(children)
        });
        let changed = split_lists.iter().any(|s| s.is_some());
        let mut next = Vec::with_capacity(tree.len());
        for (oct, split) in tree.iter().zip(split_lists) {
            match split {
                Some(children) => next.extend(children),
                None => next.push(*oct),
            }
        }
        tree = next;
        if !changed {
            break;
        }
    }
    carve_sfc::treesort(&mut tree, curve);
    tree
}

/// Checks construction invariants: SFC-sorted, unique, non-overlapping, no
/// carved leaves, and (for uniform trees) full coverage of the retained set.
pub fn check_tree_invariants<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    curve: Curve,
    tree: &[Octant<DIM>],
) -> Result<(), String> {
    for w in tree.windows(2) {
        if carve_sfc::sfc_cmp(curve, &w[0], &w[1]) != std::cmp::Ordering::Less {
            return Err(format!("not strictly SFC-sorted: {:?} !< {:?}", w[0], w[1]));
        }
        if w[0].is_ancestor_of(&w[1]) {
            return Err(format!("overlap: {:?} is ancestor of {:?}", w[0], w[1]));
        }
    }
    for o in tree {
        if classify_octant(domain, o) == RegionLabel::Carved {
            return Err(format!("carved leaf in output: {o:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_geom::{CarvedSolids, FullDomain, RetainBox, Sphere};

    #[test]
    fn uniform_full_domain_is_complete() {
        for curve in [Curve::Morton, Curve::Hilbert] {
            let tree = construct_uniform::<2>(&FullDomain, curve, 3);
            assert_eq!(tree.len(), 64);
            check_tree_invariants(&FullDomain, curve, &tree).unwrap();
        }
        let tree3 = construct_uniform::<3>(&FullDomain, Curve::Hilbert, 2);
        assert_eq!(tree3.len(), 64);
    }

    #[test]
    fn uniform_carved_disk_removes_interior() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.3))]);
        let tree = construct_uniform(&domain, Curve::Morton, 5);
        // Carved area fraction ≈ π r² ≈ 0.2827; retained leaves < full grid.
        let full = 1usize << (2 * 5);
        assert!(tree.len() < full);
        // All retained leaves are non-carved; count of removed ≈ carved area.
        let removed = full - tree.len();
        let carved_frac = removed as f64 / full as f64;
        assert!((carved_frac - std::f64::consts::PI * 0.09).abs() < 0.05);
        check_tree_invariants(&domain, Curve::Morton, &tree).unwrap();
    }

    #[test]
    fn channel_prunes_outside() {
        // Retain [0,1]x[0,1/4]: three quarters of the square carved.
        let domain = RetainBox::<2>::channel([1.0, 0.25]);
        let tree = construct_uniform(&domain, Curve::Hilbert, 4);
        // 16x4 = 64 cells retained.
        assert_eq!(tree.len(), 64);
        check_tree_invariants(&domain, Curve::Hilbert, &tree).unwrap();
    }

    #[test]
    fn constrained_matches_seed_resolution() {
        let domain = FullDomain;
        // Seed: a single level-4 octant in a corner. Output: leaves no
        // coarser than the seed *at the seed's location*.
        let seed = Octant::<2>::ROOT.child(0).child(0).child(0).child(0);
        let mut seeds = vec![seed];
        carve_sfc::treesort(&mut seeds, Curve::Morton);
        let tree = construct_constrained(&domain, Curve::Morton, &seeds);
        check_tree_invariants(&domain, Curve::Morton, &tree).unwrap();
        // The seed octant itself must appear as a leaf.
        assert!(tree.contains(&seed));
        // Coverage: areas sum to 1.
        let area: f64 = tree
            .iter()
            .map(|o| {
                let s = o.bounds_unit().1;
                s * s
            })
            .sum();
        assert!((area - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constrained_prunes_carved_seed_regions() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.25, 0.25], 0.2))]);
        // Seed deep inside the carved disk ([0.25,0.3125]^2, max corner
        // distance 0.088 < r): output must NOT contain it.
        let deep = Octant::<2>::ROOT.child(0).child(3).child(0).child(0);
        let mut seeds = vec![deep];
        carve_sfc::treesort(&mut seeds, Curve::Morton);
        let tree = construct_constrained(&domain, Curve::Morton, &seeds);
        assert!(!tree.contains(&deep));
        check_tree_invariants(&domain, Curve::Morton, &tree).unwrap();
    }

    #[test]
    fn boundary_refined_two_levels() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.3))]);
        let tree = construct_boundary_refined(&domain, Curve::Hilbert, 3, 6);
        check_tree_invariants(&domain, Curve::Hilbert, &tree).unwrap();
        let min_level = tree.iter().map(|o| o.level).min().unwrap();
        let max_level = tree.iter().map(|o| o.level).max().unwrap();
        assert_eq!(min_level, 3);
        assert_eq!(max_level, 6);
        // Every intercepted leaf is at the boundary level.
        for o in &tree {
            if classify_octant(&domain, o) == RegionLabel::RetainBoundary {
                assert_eq!(o.level, 6, "intercepted leaf not fully refined: {o:?}");
            }
        }
    }

    #[test]
    fn proactive_pruning_never_visits_carved_subtrees() {
        // Count F evaluations: with pruning, the deep interior of the disk
        // is evaluated once (at the subtree root), not once per descendant.
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting<'a> {
            inner: &'a CarvedSolids<2>,
            count: &'a AtomicUsize,
        }
        impl<'a> Subdomain<2> for Counting<'a> {
            fn classify_region(&self, min: &[f64; 2], side: f64) -> RegionLabel {
                self.count.fetch_add(1, Ordering::Relaxed);
                self.inner.classify_region(min, side)
            }
            fn point_in_carved(&self, p: &[f64; 2]) -> bool {
                self.inner.point_in_carved(p)
            }
        }
        let disk = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.4))]);
        let count = AtomicUsize::new(0);
        let domain = Counting {
            inner: &disk,
            count: &count,
        };
        let level = 6;
        let tree = construct_uniform(&domain, Curve::Morton, level);
        let evals = count.load(Ordering::Relaxed);
        let complete = 1usize << (2 * level as usize);
        // Far fewer F evaluations than a build-complete-then-filter pass
        // would need (which evaluates all 4^6 leaves plus internals).
        assert!(evals < complete, "evals {evals} vs complete {complete}");
        assert!(!tree.is_empty());
    }
}
