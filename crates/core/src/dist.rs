//! Distributed incomplete-octree meshes: Algorithm 3
//! (`DistributedConstructConstrained`) plus ghost elements, node ownership,
//! ghost exchange, and the distributed traversal MATVEC.
//!
//! Partitioning only ever sees the *active* (retained) octants — the paper's
//! central load-balancing argument versus complete-tree frameworks — because
//! carved subtrees were pruned during construction and `DistTreeSort`
//! operates on whatever it is given.
//!
//! Node ownership uses a two-round broker protocol: every rank routes each
//! needed nodal coordinate to a deterministic *broker* rank (by SFC bin of
//! the coordinate's finest containing cell); brokers elect the minimum
//! requesting rank as owner and reply; a final round with the owners
//! assigns global DOF ids and builds the ghost send/recv plans. Ownership is
//! therefore derived from actual users, so every ghost node is guaranteed
//! to exist on its owner.

use crate::balance::bottom_up_constrain_neighbors;
use crate::construct::{construct_constrained, construct_uniform};
use crate::matvec::{
    traversal_matvec_overlap_par, traversal_matvec_overlap_ws, traversal_matvec_par,
    traversal_matvec_ws, TraversalWorkspace,
};
use crate::nodes::{
    elem_node_coord, enumerate_nodes, lattice_index, nodes_per_elem, resolve_slot, NodeSet, SlotRef,
};
use carve_comm::{
    dist_tree_sort, run_spmd_with, Comm, ExchangeHandle, ReduceOp, SpmdError, SpmdOptions,
};
use carve_geom::{RegionLabel, Subdomain};
use carve_la::{Reduce, SolveCheckpoint};
use carve_sfc::morton::{finest_cell_of_point, point_cmp_morton};
use carve_sfc::{sfc_cmp, Curve, Octant};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Mutex;

/// Requested consistency of a distributed operation's output vector.
///
/// `Ghosted` finishes with the trailing owner→user ghost read, so every
/// rank ends up holding correct values for every node it can address.
/// `OwnedOnly` skips that round: owned entries are authoritative, ghost
/// entries are left zeroed by the accumulate. Krylov iterations want
/// `OwnedOnly` — their inner products mask to owned entries anyway (see
/// [`DistReduce`]), so each matvec saves a full exchange round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GhostState {
    OwnedOnly,
    Ghosted,
}

/// Per-rank ghost statistics (Fig. 11's raw data).
#[derive(Clone, Copy, Debug, Default)]
pub struct GhostStats {
    pub owned_nodes: usize,
    pub ghost_nodes: usize,
    pub owned_elems: usize,
    pub ghost_elems: usize,
    /// Bytes exchanged per ghost-read of one scalar field.
    pub ghost_read_bytes: u64,
    /// Ranks this rank exchanges ghost data with (send or receive lanes).
    pub neighbors: usize,
}

impl GhostStats {
    /// η = N_G / N_L (the ratio the paper shows behaves like 1/(p+1)).
    pub fn eta(&self) -> f64 {
        if self.owned_nodes == 0 {
            0.0
        } else {
            self.ghost_nodes as f64 / self.owned_nodes as f64
        }
    }
}

/// A distributed, 2:1-balanced incomplete-octree mesh on one rank.
pub struct DistMesh<const DIM: usize> {
    pub curve: Curve,
    pub order: u64,
    /// Owned + ghost elements, SFC-sorted; owned are the contiguous `owned`
    /// range (ghosts sort strictly before/after by the splitter property).
    pub elems: Vec<Octant<DIM>>,
    pub owned: Range<usize>,
    /// Per-element subdomain labels (aligned with `elems`).
    pub labels: Vec<RegionLabel>,
    /// Needed nodes (owned + ghost), point-Morton sorted.
    pub nodes: NodeSet<DIM>,
    /// Owning rank per node.
    pub owner: Vec<u32>,
    /// Global DOF id per node.
    pub global_id: Vec<u32>,
    pub n_owned_nodes: usize,
    pub n_global_dofs: usize,
    /// Persistent neighbor-sparse exchange built once from the send/recv
    /// plans (`send_plan[q]` = local indices of owned nodes rank `q` reads;
    /// `recv_plan[q]` = local indices of ghost nodes owned by `q`, ordered
    /// to match `q`'s send plan). `RefCell` because the exchange mutates
    /// its lane buffers while the mesh stays logically immutable; the
    /// communicator is per-rank single-threaded by design, so no exchange
    /// ever runs concurrently with another on the same mesh.
    pub(crate) exchange: RefCell<ExchangeHandle>,
    /// Per-element flag aligned with `elems`: `true` iff the element is
    /// owned and its stencil closure (direct or hanging) reads at least one
    /// ghost-owned node — i.e. it must wait for the ghost exchange in the
    /// overlapped matvec. Ghost elements are always `false`.
    pub boundary_elem: Vec<bool>,
}

/// Bin of an octant key among rank splitters: the largest rank whose
/// splitter is `<=` the key. Ranks without elements never win a bin.
pub fn splitter_bin<const DIM: usize>(
    splitters: &[Option<Octant<DIM>>],
    curve: Curve,
    key: &Octant<DIM>,
) -> usize {
    let mut bin = 0usize;
    for (r, s) in splitters.iter().enumerate() {
        if let Some(s) = s {
            if sfc_cmp(curve, s, key) != Ordering::Greater {
                bin = r;
            } else {
                break;
            }
        }
    }
    bin
}

/// SFC range of leaf-level keys covered by subtree `n`:
/// `[first_descendant, last_descendant]`.
pub fn descendant_key_range<const DIM: usize>(n: &Octant<DIM>) -> (Octant<DIM>, Octant<DIM>) {
    let first = Octant {
        anchor: n.anchor,
        level: carve_sfc::MAX_LEVEL,
    };
    let mut last_anchor = n.anchor;
    let side = n.side();
    for a in last_anchor.iter_mut() {
        *a += side - 1;
    }
    let last = Octant {
        anchor: last_anchor,
        level: carve_sfc::MAX_LEVEL,
    };
    (first, last)
}

impl<const DIM: usize> DistMesh<DIM> {
    /// Distributed mesh construction: Algorithm 4 over Algorithm 3, then
    /// ghost elements, nodal enumeration, ownership, and exchange plans.
    pub fn build(
        comm: &Comm,
        domain: &dyn Subdomain<DIM>,
        curve: Curve,
        base_level: u8,
        boundary_level: u8,
        order: u64,
    ) -> Self {
        // --- Local adaptive seed generation -----------------------------
        // Deterministic global adaptive refinement, sliced by rank: every
        // rank refines its slice of the base tree near the boundary.
        let base = construct_uniform(domain, curve, base_level);
        let p = comm.size();
        let r = comm.rank();
        let lo = r * base.len() / p;
        let hi = (r + 1) * base.len() / p;
        let mut local: Vec<Octant<DIM>> = base[lo..hi].to_vec();
        // Refine intercepted leaves to the boundary level (children pruned
        // when carved).
        let _obs = carve_obs::scope("refine");
        loop {
            let mut next = Vec::with_capacity(local.len());
            let mut changed = false;
            for oct in &local {
                if oct.level < boundary_level
                    && crate::construct::classify_octant(domain, oct) == RegionLabel::RetainBoundary
                {
                    changed = true;
                    for c in 0..(1usize << DIM) {
                        let ch = oct.child(c);
                        if crate::construct::classify_octant(domain, &ch) != RegionLabel::Carved {
                            next.push(ch);
                        }
                    }
                } else {
                    next.push(*oct);
                }
            }
            local = next;
            if !changed {
                break;
            }
        }
        drop(_obs);
        Self::build_from_seeds(comm, domain, curve, local, order)
    }

    /// Algorithm 4 distributed: balance the given distributed seed leaves
    /// and build the mesh.
    pub fn build_from_seeds(
        comm: &Comm,
        domain: &dyn Subdomain<DIM>,
        curve: Curve,
        local_seeds: Vec<Octant<DIM>>,
        order: u64,
    ) -> Self {
        // T1 = DistributedConstructConstrained(seeds)
        let t1 = dist_construct_constrained(comm, domain, curve, local_seeds);
        // T2 = BottomUpConstrainNeighbors(T1)   (F not applied)
        let t2 = bottom_up_constrain_neighbors(&t1);
        // T3 = DistributedConstructConstrained(T2)
        let owned_elems = dist_construct_constrained(comm, domain, curve, t2);
        Self::finish(comm, domain, curve, owned_elems, order)
    }

    /// Ghost elements + nodes + ownership for an already-partitioned,
    /// balanced owned-element list.
    pub fn finish(
        comm: &Comm,
        domain: &dyn Subdomain<DIM>,
        curve: Curve,
        owned_elems: Vec<Octant<DIM>>,
        order: u64,
    ) -> Self {
        let my = comm.rank();
        let splitters: Vec<Option<Octant<DIM>>> = comm.all_gather(owned_elems.first().copied());

        // --- Ghost element exchange --------------------------------------
        let (elems, owned) = exchange_ghost_layer(comm, curve, &owned_elems, &splitters);

        // --- Nodes --------------------------------------------------------
        let nodes = needed_node_set(domain, &elems, owned.clone(), order);

        // --- Ownership, global ids, exchange plans -------------------------
        // The full (all-coords) broker protocol: the incremental patch path
        // uses the interior fast path instead, which is provably identical.
        let own = node_ownership_plans(comm, curve, &splitters, &nodes, false);

        // --- Interior/boundary element split ------------------------------
        let boundary_elem = boundary_elem_flags(&elems, owned.clone(), &nodes, &own.owner, my);

        let labels = elems
            .iter()
            .map(|e| crate::construct::classify_octant(domain, e))
            .collect();
        DistMesh {
            curve,
            order,
            elems,
            owned,
            labels,
            nodes,
            owner: own.owner,
            global_id: own.global_id,
            n_owned_nodes: own.n_owned_nodes,
            n_global_dofs: own.n_global_dofs,
            exchange: RefCell::new(ExchangeHandle::new(&own.send_plan, &own.recv_plan)),
            boundary_elem,
        }
    }

    pub fn num_owned_elems(&self) -> usize {
        self.owned.len()
    }

    /// Refreshes ghost node entries of `values` from their owners through
    /// the persistent neighbor-sparse exchange (recycled lane buffers, only
    /// actual neighbors). Returns bytes sent by this rank. A 1-rank mesh is
    /// a zero-comm fast path: no tag tick, no messages, no obs phase.
    pub fn ghost_read(&self, comm: &Comm, values: &mut [f64]) -> u64 {
        if comm.size() == 1 {
            return 0;
        }
        let _obs = carve_obs::scope("ghost_read");
        self.exchange.borrow_mut().read(comm, values)
    }

    /// Sends ghost partial sums to their owners and adds them there; ghost
    /// entries are zeroed locally (their authoritative value now lives at
    /// the owner). Same neighbor-sparse path and 1-rank fast path as
    /// [`Self::ghost_read`].
    pub fn ghost_accumulate(&self, comm: &Comm, values: &mut [f64]) -> u64 {
        if comm.size() == 1 {
            return 0;
        }
        let _obs = carve_obs::scope("ghost_accumulate");
        self.exchange.borrow_mut().accumulate(comm, values)
    }

    /// Distributed MATVEC `y = A x` on local vectors (indexed like
    /// `self.nodes`): post the ghost-read of `x`, traverse interior
    /// elements while it is in flight, wait (`matvec/ghost_wait`), traverse
    /// boundary elements, ghost-accumulate `y`, and finish with a ghost-read
    /// of `y` so every rank holds consistent values ([`GhostState::Ghosted`]
    /// semantics). Phase timings report through `carve-obs`.
    pub fn matvec<K>(&self, comm: &Comm, x: &[f64], y: &mut [f64], kernel: &mut K)
    where
        K: crate::matvec::LeafKernel<DIM>,
    {
        let mut ws = TraversalWorkspace::with_threads(1);
        self.matvec_ws(comm, x, y, &mut ws, GhostState::Ghosted, kernel);
    }

    /// [`Self::matvec`] reusing a caller-held [`TraversalWorkspace`] (no
    /// per-apply allocation: the ghosted input lives in the workspace) with
    /// an explicit output [`GhostState`]. `OwnedOnly` skips the trailing
    /// consistency read — the right choice inside Krylov loops.
    pub fn matvec_ws<K>(
        &self,
        comm: &Comm,
        x: &[f64],
        y: &mut [f64],
        ws: &mut TraversalWorkspace<DIM>,
        ghost: GhostState,
        kernel: &mut K,
    ) where
        K: crate::matvec::LeafKernel<DIM>,
    {
        let mut xg = ws.take_ghost_scratch();
        xg.clear();
        xg.extend_from_slice(x);
        y.iter_mut().for_each(|v| *v = 0.0);
        if comm.size() == 1 {
            // Zero-comm fast path: no exchange posted, no tag ticked.
            traversal_matvec_ws(
                &self.elems,
                self.owned.clone(),
                self.curve,
                &self.nodes,
                &xg,
                y,
                ws,
                kernel,
            );
            ws.restore_ghost_scratch(xg);
            return;
        }
        {
            let mut ex = self.exchange.borrow_mut();
            let pending = {
                let _obs = carve_obs::scope("ghost_read");
                ex.post_read(comm, &xg)
            };
            let wait = move |v: &mut [f64]| {
                ex.wait_read(comm, pending, v);
            };
            traversal_matvec_overlap_ws(
                &self.elems,
                self.owned.clone(),
                self.curve,
                &self.nodes,
                &mut xg,
                y,
                ws,
                &self.boundary_elem,
                wait,
                kernel,
            );
        }
        ws.restore_ghost_scratch(xg);
        self.ghost_accumulate(comm, y);
        if matches!(ghost, GhostState::Ghosted) {
            self.ghost_read(comm, y);
        }
    }

    /// Fork-join [`Self::matvec`]: interior subtree tasks run on up to
    /// `ws.threads()` workers *while this thread waits on the ghost
    /// exchange*, then boundary tasks fork after the payloads land. Output
    /// is bitwise identical for any thread count and to [`Self::matvec_ws`].
    pub fn matvec_par<K, F>(
        &self,
        comm: &Comm,
        x: &[f64],
        y: &mut [f64],
        ws: &mut TraversalWorkspace<DIM>,
        ghost: GhostState,
        make_kernel: &F,
    ) where
        K: crate::matvec::LeafKernel<DIM>,
        F: Fn() -> K + Sync,
    {
        let mut xg = ws.take_ghost_scratch();
        xg.clear();
        xg.extend_from_slice(x);
        y.iter_mut().for_each(|v| *v = 0.0);
        if comm.size() == 1 {
            traversal_matvec_par(
                &self.elems,
                self.owned.clone(),
                self.curve,
                &self.nodes,
                &xg,
                y,
                ws,
                make_kernel,
            );
            ws.restore_ghost_scratch(xg);
            return;
        }
        {
            let mut ex = self.exchange.borrow_mut();
            let pending = {
                let _obs = carve_obs::scope("ghost_read");
                ex.post_read(comm, &xg)
            };
            let wait = move |v: &mut [f64]| {
                ex.wait_read(comm, pending, v);
            };
            traversal_matvec_overlap_par(
                &self.elems,
                self.owned.clone(),
                self.curve,
                &self.nodes,
                &mut xg,
                y,
                ws,
                &self.boundary_elem,
                wait,
                make_kernel,
            );
        }
        ws.restore_ghost_scratch(xg);
        self.ghost_accumulate(comm, y);
        if matches!(ghost, GhostState::Ghosted) {
            self.ghost_read(comm, y);
        }
    }

    /// A [`Reduce`] backend over this mesh's node ownership: hand it to
    /// `cg_with` / `bicgstab_with` so each batch of inner products rides
    /// one fused all-reduce.
    pub fn reducer<'a>(&'a self, comm: &'a Comm) -> DistReduce<'a> {
        DistReduce {
            comm,
            owner: &self.owner,
        }
    }

    /// Ghost statistics for Fig. 11.
    pub fn ghost_stats(&self) -> GhostStats {
        let ghost_nodes = self.nodes.len() - self.n_owned_nodes;
        GhostStats {
            owned_nodes: self.n_owned_nodes,
            ghost_nodes,
            owned_elems: self.owned.len(),
            ghost_elems: self.elems.len() - self.owned.len(),
            ghost_read_bytes: self.exchange.borrow().read_bytes(),
            neighbors: self.exchange.borrow().neighbor_count(),
        }
    }
}

/// Distributed [`Reduce`] backend: each batch of inner products is computed
/// as owned-masked partial sums and globally summed with **one** fused
/// all-reduce message per batch (`all_reduce_f64_many`), instead of one
/// blocking reduction per dot/norm. Batches of more than one pair bump the
/// `reductions_fused` obs counter by the number of messages saved.
pub struct DistReduce<'a> {
    comm: &'a Comm,
    /// Owning rank per local node (ghost entries are skipped in the partial
    /// sums so every value is counted exactly once cluster-wide).
    owner: &'a [u32],
}

impl Reduce for DistReduce<'_> {
    fn dots(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
        let my = self.comm.rank() as u32;
        for (o, (u, v)) in out.iter_mut().zip(pairs) {
            debug_assert_eq!(u.len(), self.owner.len());
            debug_assert_eq!(v.len(), self.owner.len());
            *o = u
                .iter()
                .zip(v.iter())
                .zip(self.owner)
                .filter(|&(_, &ow)| ow == my)
                .map(|((a, b), _)| a * b)
                .sum();
        }
        let global = self.comm.all_reduce_f64_many(out, ReduceOp::Sum);
        out.copy_from_slice(&global);
        if pairs.len() > 1 {
            carve_obs::counter("reductions_fused", (pairs.len() - 1) as u64);
        }
    }
}

/// Adds `reductions_fused` accounting to any [`Reduce`] backend that lacks
/// it: every multi-pair batch bumps the counter by the rounds it saved over
/// issuing one reduction per pair, exactly like [`DistReduce`] does
/// natively. The serving engine's single-rank multigrid path wraps
/// [`carve_la::LocalReduce`] with this so the fusion discipline of the
/// preconditioned cycle shows up in the obs report (and in the
/// seed-determinism gate) even when no communicator is involved.
///
/// Do **not** wrap [`DistReduce`] — it already counts, and the wrapper
/// would double-bump.
pub struct FusedReduce<'a, R: Reduce + ?Sized>(pub &'a R);

impl<R: Reduce + ?Sized> Reduce for FusedReduce<'_, R> {
    fn dots(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
        self.0.dots(pairs, out);
        if pairs.len() > 1 {
            carve_obs::counter("reductions_fused", (pairs.len() - 1) as u64);
        }
    }
}

// --- Solve supervision: cross-attempt checkpoints + retrying SPMD driver ---

/// Per-rank [`SolveCheckpoint`] slots that outlive SPMD attempts: the rank
/// threads of a killed cluster die, but snapshots flushed here (via
/// `Checkpointer::with_sink`) survive for the supervisor's next attempt.
///
/// Restart consistency: each rank restores its *own* latest snapshot. Under
/// an asynchronous abort, ranks can be one iteration apart in what they
/// managed to flush; a Krylov restart from mixed-iteration owned values is
/// still just a fresh solve from a valid initial guess (ghost values are
/// re-read from owners on the first matvec), so correctness never depends
/// on snapshot alignment. Callers that also need a *deterministic* retry
/// trajectory (the bench recovery stage) arrange the kill away from a
/// checkpoint-cadence boundary, which pins every rank's latest flushed
/// snapshot to the same iteration.
pub struct CheckpointStore {
    slots: Mutex<Vec<Option<SolveCheckpoint>>>,
}

impl CheckpointStore {
    pub fn new(nranks: usize) -> Self {
        CheckpointStore {
            slots: Mutex::new(vec![None; nranks]),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Option<SolveCheckpoint>>> {
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Saves `rank`'s latest snapshot (overwrites the previous one).
    pub fn save(&self, rank: usize, ckpt: &SolveCheckpoint) {
        self.lock()[rank] = Some(ckpt.clone());
    }

    /// This rank's latest surviving snapshot, if any attempt got far enough
    /// to flush one.
    pub fn load(&self, rank: usize) -> Option<SolveCheckpoint> {
        self.lock()[rank].clone()
    }

    /// Number of ranks holding a snapshot.
    pub fn saved_count(&self) -> usize {
        self.lock().iter().filter(|s| s.is_some()).count()
    }

    /// Drops all snapshots (e.g. between independent solves).
    pub fn clear(&self) {
        for slot in self.lock().iter_mut() {
            *slot = None;
        }
    }
}

/// Runs an SPMD solve under a retry policy: on [`SpmdError`] (rank kill,
/// watchdog timeout, contained panic) the cluster is relaunched up to
/// `max_retries` times, with the rank closure told which attempt it is on
/// so it can restore from a [`CheckpointStore`]. A deterministic fault-plan
/// kill is stripped before the first retry — the killed node has been
/// "replaced" — while ambient delay/loss probabilities stay in force, so
/// retries are exercised under the same chaos that killed the first run.
///
/// Each retry is recorded on the supervising thread under the
/// `recovery/retry` obs phase (counter `solve_retries`); rank closures are
/// expected to record their restores under `recovery/restore`.
pub fn supervise_spmd<R, F>(
    nranks: usize,
    mut opts: SpmdOptions,
    max_retries: usize,
    f: F,
) -> Result<Vec<R>, SpmdError>
where
    R: Send,
    F: Fn(&Comm, usize) -> R + Send + Sync,
{
    let mut attempt = 0usize;
    loop {
        let fref = &f;
        match run_spmd_with(nranks, opts.clone(), move |c| fref(c, attempt)) {
            Ok(v) => return Ok(v),
            Err(err) => {
                if attempt >= max_retries {
                    return Err(err);
                }
                let _recovery = carve_obs::scope("recovery");
                let _retry = carve_obs::scope("retry");
                carve_obs::counter("solve_retries", 1);
                if let Some(fault) = &mut opts.fault {
                    fault.kill = None;
                }
                attempt += 1;
            }
        }
    }
}

/// Ghost-element exchange: the region-request protocol shared by
/// [`DistMesh::finish`], the distributed balance fixpoint, and the
/// incremental adapt patch. Request regions are the same-level neighbors of
/// each owned element and of its ancestors up to three levels (covers
/// hanging-source chains); owners reply with every owned element overlapping
/// a requested region. Returns the merged, SFC-sorted `(elems, owned)` pair
/// with the owned elements occupying the contiguous `owned` range.
pub(crate) fn exchange_ghost_layer<const DIM: usize>(
    comm: &Comm,
    curve: Curve,
    owned_elems: &[Octant<DIM>],
    splitters: &[Option<Octant<DIM>>],
) -> (Vec<Octant<DIM>>, Range<usize>) {
    let p = comm.size();
    let my = comm.rank();
    let _obs = carve_obs::scope("ghost_elems");
    let mut regions: Vec<Octant<DIM>> = Vec::new();
    for e in owned_elems {
        let mut a = *e;
        for _ in 0..4 {
            regions.push(a);
            for n in a.neighbors() {
                regions.push(n);
            }
            if a.level == 0 {
                break;
            }
            a = a.parent();
        }
    }
    carve_sfc::treesort(&mut regions, curve);
    regions.dedup();
    // Route each region to the rank bins covering its descendant range.
    let mut requests: Vec<Vec<Octant<DIM>>> = (0..p).map(|_| Vec::new()).collect();
    for n in &regions {
        let (first, last) = descendant_key_range(n);
        let b0 = splitter_bin(splitters, curve, &first);
        let b1 = splitter_bin(splitters, curve, &last);
        for (b, lane) in requests.iter_mut().enumerate().take(b1 + 1).skip(b0) {
            if b != my {
                lane.push(*n);
            }
        }
    }
    let incoming = comm.all_to_allv(requests);
    // Reply with owned elements overlapping any requested region.
    let mut replies: Vec<Vec<Octant<DIM>>> = (0..p).map(|_| Vec::new()).collect();
    for (q, regs) in incoming.iter().enumerate() {
        if regs.is_empty() {
            continue;
        }
        for e in owned_elems {
            if regs.iter().any(|n| {
                n.is_ancestor_or_self(e) || e.is_ancestor_or_self(n) || e.closed_regions_touch(n)
            }) {
                replies[q].push(*e);
            }
        }
    }
    let ghost_in = comm.all_to_allv(replies);
    let mut elems = owned_elems.to_vec();
    for v in ghost_in {
        elems.extend(v);
    }
    carve_sfc::treesort(&mut elems, curve);
    elems.dedup();
    // Owned range within the merged list.
    let owned_start = elems
        .iter()
        .position(|e| Some(e) == owned_elems.first())
        .unwrap_or(0);
    let owned = owned_start..owned_start + owned_elems.len();
    debug_assert_eq!(&elems[owned.clone()], owned_elems);
    (elems, owned)
}

/// Enumerates nodes over `elems` and filters down to the *needed* set:
/// coords referenced by owned elements directly or via hanging stencils.
pub(crate) fn needed_node_set<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    elems: &[Octant<DIM>],
    owned: Range<usize>,
    order: u64,
) -> NodeSet<DIM> {
    let full_nodes = enumerate_nodes(domain, elems, order);
    let mut needed = vec![false; full_nodes.len()];
    let npe = nodes_per_elem::<DIM>(order);
    for e in &elems[owned] {
        for lin in 0..npe {
            let idx = lattice_index::<DIM>(lin, order);
            let c = elem_node_coord(e, order, &idx);
            match resolve_slot(&full_nodes, e, &c) {
                SlotRef::Direct(i) => needed[i] = true,
                SlotRef::Hanging(st) => {
                    for (i, _) in st {
                        needed[i] = true;
                    }
                }
            }
        }
    }
    let mut coords = Vec::new();
    let mut flags = Vec::new();
    for (i, &need) in needed.iter().enumerate() {
        if need {
            coords.push(full_nodes.coords[i]);
            flags.push(full_nodes.flags[i]);
        }
    }
    NodeSet {
        order,
        coords,
        flags,
    }
}

/// Everything the broker protocol decides for a node set.
pub(crate) struct OwnershipPlans {
    pub owner: Vec<u32>,
    pub global_id: Vec<u32>,
    pub n_owned_nodes: usize,
    pub n_global_dofs: usize,
    pub send_plan: Vec<Vec<u32>>,
    pub recv_plan: Vec<Vec<u32>>,
}

/// Node ownership election + global DOF ids + ghost exchange plans.
///
/// With `fast_interior` set, a node whose adjacent finest cells *all* bin to
/// this rank is owned locally without any broker traffic: such a node's
/// broker is this rank (its primary cell bins here) and no other rank can
/// use it (any user's element covers one of the adjacent cells, and an
/// element covering a cell binned here is owned here — SFC subtree intervals
/// are contiguous), so the full protocol would elect this rank anyway.
/// Only *surface* nodes ride the two broker rounds, which is what makes the
/// incremental adapt patch O(partition surface) in node traffic instead of
/// O(volume). The elected owners and ids are bitwise identical either way.
pub(crate) fn node_ownership_plans<const DIM: usize>(
    comm: &Comm,
    curve: Curve,
    splitters: &[Option<Octant<DIM>>],
    nodes: &NodeSet<DIM>,
    fast_interior: bool,
) -> OwnershipPlans {
    let p = comm.size();
    let my = comm.rank();
    let order = nodes.order;
    let _obs = carve_obs::scope("ownership");
    // Broker of a coord = splitter bin of its finest containing cell.
    let broker_of = |c: &[u64; DIM]| -> usize {
        let mut pt = [0u64; DIM];
        for k in 0..DIM {
            pt[k] = c[k] / order;
        }
        splitter_bin(splitters, curve, &finest_cell_of_point(&pt))
    };
    // Interior classification: every adjacent finest cell bins to this rank.
    // Every user of a coord computes the same verdict from the shared
    // splitters, so the broker rounds below stay globally consistent.
    let is_interior = |c: &[u64; DIM]| -> bool {
        let mut pt = [0u64; DIM];
        for k in 0..DIM {
            pt[k] = c[k] / order;
        }
        adjacent_cells_of_node(&pt)
            .iter()
            .all(|cell| splitter_bin(splitters, curve, cell) == my)
    };
    let surface: Vec<bool> = if fast_interior {
        let s: Vec<bool> = nodes.coords.iter().map(|c| !is_interior(c)).collect();
        let n_surface = s.iter().filter(|&&x| x).count();
        carve_obs::counter("nodes_interior_fast", (s.len() - n_surface) as u64);
        carve_obs::counter("nodes_brokered", n_surface as u64);
        s
    } else {
        vec![true; nodes.len()]
    };
    let mut to_broker: Vec<Vec<[u64; DIM]>> = (0..p).map(|_| Vec::new()).collect();
    for (c, &surf) in nodes.coords.iter().zip(&surface) {
        if surf {
            to_broker[broker_of(c)].push(*c);
        }
    }
    let broker_in = comm.all_to_allv(to_broker);
    // Elect owners: the broker rank itself when it is a user of the
    // node (the natural SFC owner — the broker is the rank whose
    // splitter range contains the node's cell), otherwise the minimum
    // requesting rank.
    let mut owner_map: HashMap<[u64; DIM], u32> = HashMap::new();
    for (q, cs) in broker_in.iter().enumerate() {
        for c in cs {
            if q == my {
                owner_map.insert(*c, my as u32);
            } else {
                owner_map
                    .entry(*c)
                    .and_modify(|o| {
                        if *o != my as u32 {
                            *o = (*o).min(q as u32)
                        }
                    })
                    .or_insert(q as u32);
            }
        }
    }
    // Reply to each requester with owners, in request order.
    let replies: Vec<Vec<u32>> = broker_in
        .iter()
        .map(|cs| cs.iter().map(|c| owner_map[c]).collect())
        .collect();
    let owner_replies = comm.all_to_allv(replies);
    // Scatter owner ranks back to node order (interior nodes are this
    // rank's without a round trip).
    let mut owner = vec![u32::MAX; nodes.len()];
    {
        let mut cursors = vec![0usize; p];
        for (i, c) in nodes.coords.iter().enumerate() {
            if !surface[i] {
                owner[i] = my as u32;
                continue;
            }
            let b = broker_of(c);
            owner[i] = owner_replies[b][cursors[b]];
            cursors[b] += 1;
        }
    }

    // --- Global ids ----------------------------------------------------
    let n_owned_nodes = owner.iter().filter(|&&o| o == my as u32).count();
    let offset = comm.exscan_u64(n_owned_nodes as u64) as u32;
    let n_global_dofs =
        comm.all_reduce_u64(n_owned_nodes as u64, carve_comm::ReduceOp::Sum) as usize;
    let mut global_id = vec![u32::MAX; nodes.len()];
    {
        let mut next = offset;
        for i in 0..nodes.len() {
            if owner[i] == my as u32 {
                global_id[i] = next;
                next += 1;
            }
        }
    }
    // Ghosts: request ids from owners.
    let mut ghost_req: Vec<Vec<[u64; DIM]>> = (0..p).map(|_| Vec::new()).collect();
    let mut ghost_req_idx: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
    for (i, &ow) in owner.iter().enumerate() {
        let o = ow as usize;
        if o != my {
            ghost_req[o].push(nodes.coords[i]);
            ghost_req_idx[o].push(i as u32);
        }
    }
    let req_in = comm.all_to_allv(ghost_req);
    // Owners answer with global ids and record send plans.
    let mut send_plan: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
    let mut id_replies: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
    for (q, cs) in req_in.iter().enumerate() {
        for c in cs {
            let li = nodes
                .coords
                .binary_search_by(|x| point_cmp_morton(x, c))
                // A structured protocol error aborts the whole cluster;
                // a bare panic here used to deadlock the other ranks
                // inside the next all_to_allv.
                .unwrap_or_else(|_| {
                    comm.protocol_error(format!(
                        "owner rank {my} missing requested node {c:?} (broker routed a node to a non-user)"
                    ))
                });
            debug_assert_eq!(owner[li], my as u32, "request routed to non-owner");
            send_plan[q].push(li as u32);
            id_replies[q].push(global_id[li]);
        }
    }
    let id_in = comm.all_to_allv(id_replies);
    for q in 0..p {
        for (slot, &gid) in ghost_req_idx[q].iter().zip(&id_in[q]) {
            global_id[*slot as usize] = gid;
        }
    }
    let recv_plan = ghost_req_idx;
    debug_assert!(global_id.iter().all(|&g| g != u32::MAX));
    OwnershipPlans {
        owner,
        global_id,
        n_owned_nodes,
        n_global_dofs,
        send_plan,
        recv_plan,
    }
}

/// The finest-level cells adjacent to cell point `pt` (up to `2^DIM`): the
/// point's own finest cell plus every down-nudged combination along the
/// axes. Nudges below the low edge are skipped; points on the high edge
/// clamp inward inside `finest_cell_of_point`, so high-boundary duplicates
/// collapse onto real cells.
pub(crate) fn adjacent_cells_of_node<const DIM: usize>(pt: &[u64; DIM]) -> Vec<Octant<DIM>> {
    let mut cells = Vec::with_capacity(1 << DIM);
    'combo: for combo in 0..(1usize << DIM) {
        let mut pt2 = *pt;
        for (k, v) in pt2.iter_mut().enumerate() {
            if (combo >> k) & 1 == 1 {
                if *v == 0 {
                    continue 'combo;
                }
                *v -= 1;
            }
        }
        cells.push(finest_cell_of_point(&pt2));
    }
    cells
}

/// Flags owned elements whose stencil closure (direct or hanging) reads at
/// least one ghost-owned node — they must wait for the ghost exchange in
/// the overlapped matvec. Ghost elements are always `false`.
pub(crate) fn boundary_elem_flags<const DIM: usize>(
    elems: &[Octant<DIM>],
    owned: Range<usize>,
    nodes: &NodeSet<DIM>,
    owner: &[u32],
    my: usize,
) -> Vec<bool> {
    let npe = nodes_per_elem::<DIM>(nodes.order);
    let mut boundary_elem = vec![false; elems.len()];
    for (ei, e) in elems.iter().enumerate() {
        if !owned.contains(&ei) {
            continue;
        }
        'lattice: for lin in 0..npe {
            let idx = lattice_index::<DIM>(lin, nodes.order);
            let c = elem_node_coord(e, nodes.order, &idx);
            match resolve_slot(nodes, e, &c) {
                SlotRef::Direct(i) => {
                    if owner[i] != my as u32 {
                        boundary_elem[ei] = true;
                        break 'lattice;
                    }
                }
                SlotRef::Hanging(st) => {
                    for (i, _) in st {
                        if owner[i] != my as u32 {
                            boundary_elem[ei] = true;
                            break 'lattice;
                        }
                    }
                }
            }
        }
    }
    boundary_elem
}

/// Algorithm 3 — `DistributedConstructConstrained`: sorts/partitions the
/// seeds, constructs each rank's constrained tree, then globally sorts,
/// dedups, and resolves overlaps keeping finer octants.
pub fn dist_construct_constrained<const DIM: usize>(
    comm: &Comm,
    domain: &dyn Subdomain<DIM>,
    curve: Curve,
    local_seeds: Vec<Octant<DIM>>,
) -> Vec<Octant<DIM>> {
    let seeds = dist_tree_sort(comm, local_seeds, curve);
    // Graceful incompleteness (§3.5): a rank left without seeds (more ranks
    // than octants) must still join every collective, but running Algorithm 2
    // with zero constraints would emit the root octant and shadow-cover the
    // whole domain; it contributes nothing instead.
    let t_tmp = if seeds.is_empty() {
        Vec::new()
    } else {
        construct_constrained(domain, curve, &seeds)
    };
    dist_tree_sort(comm, t_tmp, curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matvec::traversal_matvec;
    use crate::mesh::Mesh;
    use carve_comm::run_spmd;
    use carve_geom::{CarvedSolids, FullDomain, RetainBox, Sphere};
    use rand::{Rng, SeedableRng};

    fn sphere_domain_2d() -> CarvedSolids<2> {
        CarvedSolids::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))])
    }

    #[test]
    fn dist_construction_matches_sequential_union() {
        for p in [1usize, 2, 4] {
            let union: Vec<Octant<2>> = run_spmd(p, |c| {
                let domain = sphere_domain_2d();
                let m = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 5, 1);
                m.elems[m.owned.clone()].to_vec()
            })
            .into_iter()
            .flatten()
            .collect();
            let domain = sphere_domain_2d();
            let seq = Mesh::build(&domain, Curve::Hilbert, 3, 5, 1);
            assert_eq!(union, seq.elems, "p={p}");
        }
    }

    #[test]
    fn dist_global_dof_count_matches_sequential() {
        for p in [1usize, 3] {
            let counts: Vec<usize> = run_spmd(p, |c| {
                let domain = sphere_domain_2d();
                let m = DistMesh::<2>::build(c, &domain, Curve::Morton, 3, 5, 2);
                m.n_global_dofs
            });
            let domain = sphere_domain_2d();
            let seq = Mesh::build(&domain, Curve::Morton, 3, 5, 2);
            for n in counts {
                assert_eq!(n, seq.num_dofs(), "p={p}");
            }
        }
    }

    fn toy_kernel<const DIM: usize>() -> impl FnMut(&Octant<DIM>, &[f64], &mut [f64]) {
        |e: &Octant<DIM>, u: &[f64], v: &mut [f64]| {
            let h = e.bounds_unit().1;
            let scale = h.powi(DIM as i32);
            let npe = u.len();
            let sum: f64 = u.iter().sum();
            for i in 0..npe {
                v[i] = scale * (2.0 * u[i] + sum / npe as f64);
            }
        }
    }

    fn check_dist_matvec(p: usize, order: u64, curve: Curve) {
        // Sequential reference.
        let domain = sphere_domain_2d();
        let seq = Mesh::build(&domain, curve, 3, 5, order);
        let n = seq.num_dofs();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let x_global: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y_ref = vec![0.0; n];
        traversal_matvec(
            &seq.elems,
            0..seq.elems.len(),
            curve,
            &seq.nodes,
            &x_global,
            &mut y_ref,
            &mut toy_kernel::<2>(),
        );
        // Distributed: global ids on the distributed side must map onto the
        // sequential node order for comparison; both sides sort nodes by
        // point-Morton, and owned ranges follow rank order, so the global id
        // ordering is a permutation we can recover via coordinates.
        let results: Vec<Vec<([u64; 2], f64)>> = run_spmd(p, |c| {
            let domain = sphere_domain_2d();
            let m = DistMesh::<2>::build(c, &domain, curve, 3, 5, order);
            // Fill x from the same global field by coordinate lookup.
            let seq_nodes = &m.nodes;
            let x_local: Vec<f64> = (0..seq_nodes.len())
                .map(|i| {
                    // deterministic pseudo-random keyed by coordinate
                    let c = seq_nodes.coords[i];
                    let h = c[0].wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(c[1]);
                    ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
                })
                .collect();
            let mut y = vec![0.0; x_local.len()];
            m.matvec(c, &x_local, &mut y, &mut toy_kernel::<2>());
            // Report owned node results keyed by coordinate.
            (0..m.nodes.len())
                .filter(|&i| m.owner[i] as usize == c.rank())
                .map(|i| (m.nodes.coords[i], y[i]))
                .collect()
        });
        // Rebuild the same coordinate-keyed input on the sequential mesh.
        let x_keyed: Vec<f64> = (0..n)
            .map(|i| {
                let c = seq.nodes.coords[i];
                let h = c[0].wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(c[1]);
                ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect();
        let mut y_keyed = vec![0.0; n];
        traversal_matvec(
            &seq.elems,
            0..seq.elems.len(),
            curve,
            &seq.nodes,
            &x_keyed,
            &mut y_keyed,
            &mut toy_kernel::<2>(),
        );
        let mut seen = 0;
        for per_rank in &results {
            for (coord, val) in per_rank {
                let i = seq.nodes.find(coord).expect("dist node exists in seq");
                assert!(
                    (val - y_keyed[i]).abs() < 1e-11 * (1.0 + y_keyed[i].abs()),
                    "p={p} order={order} coord {coord:?}: {val} vs {}",
                    y_keyed[i]
                );
                seen += 1;
            }
        }
        assert_eq!(seen, n, "every global DOF owned exactly once");
    }

    #[test]
    fn dist_matvec_matches_sequential_linear() {
        for p in [2usize, 3] {
            check_dist_matvec(p, 1, Curve::Hilbert);
        }
    }

    #[test]
    fn dist_matvec_matches_sequential_quadratic() {
        check_dist_matvec(2, 2, Curve::Morton);
        check_dist_matvec(4, 2, Curve::Hilbert);
    }

    #[test]
    fn ghost_read_then_accumulate_roundtrip() {
        let p = 3;
        let sums: Vec<f64> = run_spmd(p, |c| {
            let domain = RetainBox::<2>::channel([1.0, 0.5]);
            let m = DistMesh::<2>::build(c, &domain, Curve::Morton, 3, 3, 1);
            // Set every owned node to 1, ghosts to 0; read makes ghosts 1;
            // accumulate-of-ones then gives each owned node (1 + #users).
            let mut v: Vec<f64> = (0..m.nodes.len())
                .map(|i| {
                    if m.owner[i] as usize == c.rank() {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            m.ghost_read(c, &mut v);
            assert!(v.iter().all(|&x| (x - 1.0).abs() < 1e-15));
            m.ghost_accumulate(c, &mut v);
            // Sum over owned nodes of v  = n_owned + total ghost instances.
            (0..m.nodes.len())
                .filter(|&i| m.owner[i] as usize == c.rank())
                .map(|i| v[i])
                .sum()
        });
        let total: f64 = sums.iter().sum();
        assert!(total > 0.0);
    }

    #[test]
    fn zero_octant_rank_participates_gracefully() {
        // Graceful incompleteness (§3.5): more ranks than elements. A level-1
        // uniform 2D mesh has 4 elements; over 5 ranks at least one rank owns
        // nothing, yet construction and both ghost exchanges must complete
        // without deadlock and the global mesh must stay intact.
        let p = 5;
        let results: Vec<(usize, usize, f64)> = run_spmd(p, |c| {
            let domain = FullDomain;
            let m = DistMesh::<2>::build(c, &domain, Curve::Morton, 1, 1, 1);
            let mut v: Vec<f64> = (0..m.nodes.len())
                .map(|i| {
                    if m.owner[i] as usize == c.rank() {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            m.ghost_read(c, &mut v);
            m.ghost_accumulate(c, &mut v);
            let owned_sum: f64 = (0..m.nodes.len())
                .filter(|&i| m.owner[i] as usize == c.rank())
                .map(|i| v[i])
                .sum();
            (m.num_owned_elems(), m.n_global_dofs, owned_sum)
        });
        let total_elems: usize = results.iter().map(|r| r.0).sum();
        assert_eq!(total_elems, 4, "{results:?}");
        assert!(
            results.iter().any(|r| r.0 == 0),
            "at least one rank must own zero octants: {results:?}"
        );
        // Level-1 uniform 2D grid has 3x3 nodes, and every rank agrees.
        for (_, ndofs, owned_sum) in &results {
            assert_eq!(*ndofs, 9, "{results:?}");
            assert!(owned_sum.is_finite());
        }
    }

    #[test]
    fn chaos_schedule_leaves_dist_construction_and_ghosts_exact() {
        // Hostile delivery schedules (delays, reorders, duplicated collective
        // payloads) must not change a single bit of the distributed build or
        // the ghost exchanges.
        use carve_comm::{run_spmd_with, FaultPlan, SpmdOptions};
        let p = 4;
        let run = |fault: Option<FaultPlan>| -> Vec<(Vec<Octant<2>>, usize, Vec<f64>)> {
            let mut opts = SpmdOptions::default().timeout(std::time::Duration::from_secs(20));
            opts.fault = fault;
            run_spmd_with(p, opts, |c| {
                let domain = sphere_domain_2d();
                let m = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 5, 1);
                let mut v: Vec<f64> = (0..m.nodes.len())
                    .map(|i| {
                        if m.owner[i] as usize == c.rank() {
                            1.0
                        } else {
                            0.0
                        }
                    })
                    .collect();
                m.ghost_read(c, &mut v);
                m.ghost_accumulate(c, &mut v);
                let owned: Vec<f64> = (0..m.nodes.len())
                    .filter(|&i| m.owner[i] as usize == c.rank())
                    .map(|i| v[i])
                    .collect();
                (m.elems[m.owned.clone()].to_vec(), m.n_global_dofs, owned)
            })
            .expect("chaos schedule must not break the run")
        };
        let clean = run(None);
        for seed in [3u64, 271] {
            assert_eq!(run(Some(FaultPlan::chaos(seed))), clean, "seed {seed}");
        }
    }

    #[test]
    fn killed_rank_during_dist_build_is_reported_not_deadlocked() {
        // A rank dying inside dist_construct_constrained's collectives must
        // surface as a structured error naming it — the survivors unwind on
        // the abort flag instead of waiting on a dead peer.
        use carve_comm::{run_spmd_with, FaultPlan, SpmdOptions};
        let opts = SpmdOptions::with_fault(FaultPlan::kill_rank(1, 2))
            .timeout(std::time::Duration::from_secs(20));
        let err = run_spmd_with(3, opts, |c| {
            let domain = sphere_domain_2d();
            DistMesh::<2>::build(c, &domain, Curve::Morton, 3, 5, 1).n_global_dofs
        })
        .expect_err("killed rank must fail the build");
        assert_eq!(err.failed_ranks(), vec![1], "{err}");
    }

    #[test]
    fn ghost_stats_reasonable() {
        let p = 4;
        let stats: Vec<GhostStats> = run_spmd(p, |c| {
            let domain = FullDomain;
            let m = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 4, 4, 1);
            m.ghost_stats()
        });
        let owned_total: usize = stats.iter().map(|s| s.owned_nodes).sum();
        assert_eq!(owned_total, 17 * 17); // level-4 uniform 2D grid
                                          // Under SFC ownership the rank at the domain's max corner may own
                                          // every node it touches; but most ranks must carry ghosts.
        let with_ghosts = stats.iter().filter(|s| s.ghost_nodes > 0).count();
        assert!(with_ghosts >= p - 1, "stats {stats:?}");
        for s in &stats {
            assert!(s.eta() < 1.0, "eta should be far from the 1-elem limit");
        }
    }

    /// Coordinate-keyed pseudo-random field, identical across ranks for any
    /// node the ranks share (same recipe as `check_dist_matvec`).
    fn keyed_field<const DIM: usize>(m: &DistMesh<DIM>) -> Vec<f64> {
        (0..m.nodes.len())
            .map(|i| {
                let c = m.nodes.coords[i];
                let h = c.iter().fold(0u64, |acc, &v| {
                    acc.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(v)
                });
                ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn overlapped_matvec_bitwise_identical_across_threads() {
        // The interior/boundary overlap split (sequential and fork-join, any
        // worker count, cold and warm workspaces) must reproduce the plain
        // distributed MATVEC bit for bit.
        let p = 3;
        let splits: Vec<(usize, usize)> = run_spmd(p, |c| {
            let domain = sphere_domain_2d();
            let m = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 5, 2);
            let x = keyed_field(&m);
            let bits = |v: &[f64]| -> Vec<u64> { v.iter().map(|f| f.to_bits()).collect() };
            let mut ws = TraversalWorkspace::with_threads(1);
            let mut y_ref = vec![0.0; x.len()];
            m.matvec_ws(
                c,
                &x,
                &mut y_ref,
                &mut ws,
                GhostState::OwnedOnly,
                &mut toy_kernel::<2>(),
            );
            let mut y_warm = vec![0.0; x.len()];
            m.matvec_ws(
                c,
                &x,
                &mut y_warm,
                &mut ws,
                GhostState::OwnedOnly,
                &mut toy_kernel::<2>(),
            );
            assert_eq!(bits(&y_ref), bits(&y_warm), "warm matvec_ws drifted");
            let mk = || toy_kernel::<2>();
            for t in [1usize, 2, 8] {
                let mut wst = TraversalWorkspace::with_threads(t);
                for pass in 0..2 {
                    let mut y = vec![0.0; x.len()];
                    m.matvec_par(c, &x, &mut y, &mut wst, GhostState::OwnedOnly, &mk);
                    assert_eq!(
                        bits(&y_ref),
                        bits(&y),
                        "threads={t} pass={pass} rank={}",
                        c.rank()
                    );
                }
            }
            let nb = m.owned.clone().filter(|&ei| m.boundary_elem[ei]).count();
            (m.num_owned_elems() - nb, nb)
        });
        // The split must be non-trivial somewhere: interior work is what the
        // overlap hides latency behind, boundary work is what exercises the
        // deferred ghost path.
        assert!(splits.iter().any(|&(int, _)| int > 0), "{splits:?}");
        assert!(splits.iter().any(|&(_, bnd)| bnd > 0), "{splits:?}");
    }

    #[test]
    fn overlapped_matvec_unchanged_under_chaos_delay_and_reorder() {
        // Seeded delay/reorder/duplication in the transport must not move a
        // bit of the overlapped fork-join MATVEC: the interior phase never
        // touches in-flight data and the wait point is a hard barrier.
        use carve_comm::{run_spmd_with, FaultPlan, SpmdOptions};
        let p = 4;
        let run = |fault: Option<FaultPlan>| -> Vec<Vec<([u64; 2], u64)>> {
            let mut opts = SpmdOptions::default().timeout(std::time::Duration::from_secs(20));
            opts.fault = fault;
            run_spmd_with(p, opts, |c| {
                let domain = sphere_domain_2d();
                let m = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 5, 1);
                let x = keyed_field(&m);
                let mut ws = TraversalWorkspace::with_threads(4);
                let mut y = vec![0.0; x.len()];
                let mk = || toy_kernel::<2>();
                m.matvec_par(c, &x, &mut y, &mut ws, GhostState::Ghosted, &mk);
                (0..m.nodes.len())
                    .filter(|&i| m.owner[i] as usize == c.rank())
                    .map(|i| (m.nodes.coords[i], y[i].to_bits()))
                    .collect()
            })
            .expect("chaos schedule must not break the overlapped matvec")
        };
        let clean = run(None);
        for seed in [11u64, 97] {
            assert_eq!(run(Some(FaultPlan::chaos(seed))), clean, "seed {seed}");
        }
    }

    #[test]
    fn single_rank_matvec_and_ghost_ops_are_zero_comm() {
        // On one rank every ghost path must collapse to a no-op: no message,
        // no tag tick, no exchange round — the traversal runs directly on the
        // caller's vector copied into the workspace scratch.
        run_spmd(1, |c| {
            let domain = sphere_domain_2d();
            let m = DistMesh::<2>::build(c, &domain, Curve::Morton, 3, 5, 2);
            let before = c.stats().messages;
            let x = keyed_field(&m);
            let mut y = vec![0.0; x.len()];
            let mut ws = TraversalWorkspace::with_threads(2);
            m.matvec_ws(
                c,
                &x,
                &mut y,
                &mut ws,
                GhostState::Ghosted,
                &mut toy_kernel::<2>(),
            );
            assert!(y.iter().all(|v| v.is_finite()));
            let mk = || toy_kernel::<2>();
            m.matvec_par(c, &x, &mut y, &mut ws, GhostState::Ghosted, &mk);
            let mut v = x.clone();
            assert_eq!(m.ghost_read(c, &mut v), 0);
            assert_eq!(m.ghost_accumulate(c, &mut v), 0);
            assert_eq!(
                c.stats().messages,
                before,
                "1-rank fast path must send nothing"
            );
        });
    }

    #[test]
    fn dist_cg_with_fused_reducer_converges() {
        // End-to-end Krylov stack: `cg_with` over the overlapped OwnedOnly
        // MATVEC and the mesh's `DistReduce` (owned-masked partials, one
        // fused all-reduce per batch). Every rank must agree on the iteration
        // trajectory and the distributed residual must actually be small.
        use carve_la::{cg_with, IdentityPrecond};
        let p = 3;
        let results: Vec<(bool, usize, f64, f64)> = run_spmd(p, |c| {
            let domain = sphere_domain_2d();
            let m = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 4, 1);
            let n = m.nodes.len();
            let b = keyed_field(&m);
            let ws = std::cell::RefCell::new(TraversalWorkspace::with_threads(1));
            let op = (n, |xv: &[f64], yv: &mut [f64]| {
                m.matvec_ws(
                    c,
                    xv,
                    yv,
                    &mut ws.borrow_mut(),
                    GhostState::OwnedOnly,
                    &mut toy_kernel::<2>(),
                );
            });
            let mut x = vec![0.0; n];
            let rd = m.reducer(c);
            let res = cg_with(&op, &b, &mut x, &IdentityPrecond, 1e-10, 0.0, 500, &rd);
            // Independent residual check through the distributed operator.
            let mut ax = vec![0.0; n];
            m.matvec_ws(
                c,
                &x,
                &mut ax,
                &mut ws.borrow_mut(),
                GhostState::OwnedOnly,
                &mut toy_kernel::<2>(),
            );
            let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
            let mut out = [0.0; 2];
            rd.dots(&[(&r, &r), (&b, &b)], &mut out);
            (res.converged, res.iterations, out[0].sqrt(), out[1].sqrt())
        });
        let it0 = results[0].1;
        for (converged, iters, rn, bn) in &results {
            assert!(*converged, "{results:?}");
            assert_eq!(*iters, it0, "ranks disagreed on the CG trajectory");
            assert!(*bn > 0.0);
            assert!(rn <= &(1e-8 * bn), "residual {rn} vs rhs norm {bn}");
        }
    }

    #[test]
    fn supervised_solve_with_rank_kill_recovers_from_checkpoint() {
        // The acceptance property of the recovery stack: a distributed CG
        // whose cluster loses one rank mid-solve is relaunched by the
        // supervisor, restores from the surviving checkpoints, and converges
        // to the same answer as the uninterrupted solve — doing *fewer*
        // iterations on the retry than a from-scratch solve would.
        use carve_la::{cg_checkpointed, Checkpointer, IdentityPrecond};
        use std::sync::Arc;

        let p = 3;
        // Rank closure: distributed CG over the traversal matvec, snapshot
        // every 5 iterations into the cross-attempt store, restore on retry.
        let solve = |c: &Comm, attempt: usize, store: &CheckpointStore| {
            let domain = sphere_domain_2d();
            let m = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 4, 1);
            let n = m.nodes.len();
            let b = keyed_field(&m);
            let ws = std::cell::RefCell::new(TraversalWorkspace::with_threads(1));
            let op = (n, |xv: &[f64], yv: &mut [f64]| {
                m.matvec_ws(
                    c,
                    xv,
                    yv,
                    &mut ws.borrow_mut(),
                    GhostState::OwnedOnly,
                    &mut toy_kernel::<2>(),
                );
            });
            let rank = c.rank();
            let mut x = vec![0.0; n];
            let mut ck = Checkpointer::new(5)
                .with_sink(|snap: &carve_la::SolveCheckpoint| store.save(rank, snap));
            if attempt > 0 {
                if let Some(snap) = store.load(rank) {
                    let _restore = carve_obs::scope("recovery");
                    let _r2 = carve_obs::scope("restore");
                    carve_obs::counter("ranks_restored", 1);
                    x.copy_from_slice(&snap.x);
                    ck = Checkpointer::new(5)
                        .with_sink(|snap: &carve_la::SolveCheckpoint| store.save(rank, snap))
                        .resume_from(&snap);
                }
            }
            let rd = m.reducer(c);
            let res = cg_checkpointed(
                &op,
                &b,
                &mut x,
                &IdentityPrecond,
                1e-10,
                0.0,
                500,
                &rd,
                &mut ck,
            );
            let owned: Vec<f64> = x
                .iter()
                .zip(&m.owner)
                .filter(|&(_, &ow)| ow == c.rank() as u32)
                .map(|(v, _)| *v)
                .collect();
            (res.converged, res.iterations, owned)
        };

        // Uninterrupted reference (also measures ops to place the kill).
        let probe_store = CheckpointStore::new(p);
        let probe = run_spmd(p, |c| {
            let ops_before = c.op_count();
            let out = solve(c, 0, &probe_store);
            (ops_before, c.op_count(), out)
        });
        let full_iters = probe[0].2 .1;
        let x_full: Vec<Vec<f64>> = probe.iter().map(|(_, _, o)| o.2.clone()).collect();
        assert!(probe[0].2 .0, "reference solve converged");
        assert!(full_iters > 12, "need room for a mid-solve kill");

        // Kill rank 1 roughly 60% through its solve ops: past checkpoint
        // iteration 10, before the end.
        let (ops_lo, ops_hi) = (probe[1].0, probe[1].1);
        let kill_at = ops_lo + (ops_hi - ops_lo) * 6 / 10;

        let store = Arc::new(CheckpointStore::new(p));
        let opts = SpmdOptions {
            fault: Some(carve_comm::FaultPlan::kill_rank(1, kill_at)),
            ..SpmdOptions::default()
        };
        let results = {
            let store = Arc::clone(&store);
            supervise_spmd(p, opts, 2, move |c, attempt| solve(c, attempt, &store))
        }
        .expect("supervisor must recover the solve");

        for (r, (converged, iters, owned)) in results.iter().enumerate() {
            assert!(*converged, "rank {r} converged after recovery");
            // The retry restored mid-solve state: it must finish in fewer
            // iterations than the full solve took.
            assert!(
                *iters < full_iters,
                "rank {r}: retry took {iters} vs full {full_iters} — checkpoint not used"
            );
            assert_eq!(owned.len(), x_full[r].len(), "rank {r} owned layout");
            let scale = x_full[r].iter().map(|v| v.abs()).fold(1.0f64, f64::max);
            for (a, b) in owned.iter().zip(&x_full[r]) {
                assert!(
                    (a - b).abs() <= 1e-7 * scale,
                    "rank {r}: {a} vs {b} after recovery"
                );
            }
        }
        assert_eq!(store.saved_count(), p, "every rank checkpointed");
    }

    #[test]
    fn warm_dist_matvec_reuses_ghost_scratch_allocation() {
        // The ghosted input buffer lives in the workspace; a warm second
        // apply must reuse the exact allocation (no per-apply `to_vec`).
        run_spmd(2, |c| {
            let domain = sphere_domain_2d();
            let m = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 4, 1);
            let x = keyed_field(&m);
            let mut y = vec![0.0; x.len()];
            let mut ws = TraversalWorkspace::with_threads(1);
            m.matvec_ws(
                c,
                &x,
                &mut y,
                &mut ws,
                GhostState::OwnedOnly,
                &mut toy_kernel::<2>(),
            );
            let s = ws.take_ghost_scratch();
            let (ptr, cap) = (s.as_ptr() as usize, s.capacity());
            assert!(cap >= x.len());
            ws.restore_ghost_scratch(s);
            m.matvec_ws(
                c,
                &x,
                &mut y,
                &mut ws,
                GhostState::OwnedOnly,
                &mut toy_kernel::<2>(),
            );
            let s = ws.take_ghost_scratch();
            assert_eq!(
                s.as_ptr() as usize,
                ptr,
                "warm apply must not reallocate the ghosted input"
            );
            assert_eq!(s.capacity(), cap);
            ws.restore_ghost_scratch(s);
        });
    }

    /// Back-to-back served solves: the same warm workspace *and* the same
    /// [`carve_la::KrylovScratch`] pool must hand back the identical buffer
    /// allocations on the second solve (the serving path's repeat-request
    /// contract), and the scratch-backed solve must be bitwise identical to
    /// the allocating one.
    #[test]
    fn warm_back_to_back_solves_reuse_krylov_scratch() {
        run_spmd(2, |c| {
            let domain = sphere_domain_2d();
            let m = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 4, 1);
            let b = keyed_field(&m);
            let n = m.nodes.len();
            let ws_cell = std::cell::RefCell::new(TraversalWorkspace::with_threads(1));
            let op = (n, |xv: &[f64], yv: &mut [f64]| {
                m.matvec_ws(
                    c,
                    xv,
                    yv,
                    &mut ws_cell.borrow_mut(),
                    GhostState::OwnedOnly,
                    &mut toy_kernel::<2>(),
                );
            });
            let rd = m.reducer(c);

            let mut x_fresh = vec![0.0; n];
            carve_la::cg_with(
                &op,
                &b,
                &mut x_fresh,
                &carve_la::IdentityPrecond,
                0.0,
                0.0,
                6,
                &rd,
            );

            let mut scratch = carve_la::KrylovScratch::new();
            let mut first: Option<Vec<usize>> = None;
            for round in 0..2 {
                let mut x = vec![0.0; n];
                carve_la::cg_with_scratch(
                    &op,
                    &b,
                    &mut x,
                    &carve_la::IdentityPrecond,
                    0.0,
                    0.0,
                    6,
                    &rd,
                    &mut scratch,
                );
                for (a, bb) in x.iter().zip(&x_fresh) {
                    assert_eq!(a.to_bits(), bb.to_bits(), "scratch solve drifted");
                }
                assert_eq!(scratch.pooled(), 4, "r/z/p/Ap parked between solves");
                // Drain/restore to read the pooled addresses in LIFO order.
                let bufs: Vec<Vec<f64>> = (0..4).map(|_| scratch.take(n)).collect();
                let ptrs: Vec<usize> = bufs.iter().map(|v| v.as_ptr() as usize).collect();
                for v in bufs.into_iter().rev() {
                    scratch.put(v);
                }
                match &first {
                    None => first = Some(ptrs),
                    Some(p0) => assert_eq!(
                        &ptrs, p0,
                        "round {round}: warm solve must reuse the exact Krylov buffers"
                    ),
                }
            }
        });
    }
}
