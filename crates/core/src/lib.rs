//! `carve-core`: the paper's primary contribution.
//!
//! Incomplete-octree mesh generation for arbitrary carved geometries and
//! matrix-free finite-element computation on it:
//!
//! * [`construct`] — Algorithms 1–2: top-down SFC construction with
//!   proactive pruning of carved subtrees.
//! * [`balance`] — Algorithms 4–5: bottom-up 2:1 balancing that keeps carved
//!   auxiliary seeds so grading holds across carved regions.
//! * [`nodes`] — §3.4: nodal enumeration with cancellation-node hanging
//!   detection and carved/cube boundary tagging.
//! * [`matvec`] — §3.5/§3.6: traversal-based matrix-free MATVEC and
//!   traversal-based sparse assembly (no element-to-node maps anywhere).
//! * [`dist`] — Algorithm 3 and the distributed mesh: DistTreeSort
//!   partitioning of the *active* octants only, ghost elements/nodes, and
//!   the distributed MATVEC with ghost exchange.
//! * [`mesh`] — the sequential convenience wrapper.

pub mod adapt;
pub mod balance;
pub mod construct;
pub mod dist;
pub mod matvec;
pub mod mesh;
pub mod nodes;
pub mod par;
pub mod refine;

pub use adapt::{AdaptOutcome, AdaptParams};
pub use balance::{
    bottom_up_constrain_neighbors, check_2to1, construct_balanced, debug_assert_2to1,
};
pub use construct::{
    check_tree_invariants, classify_octant, construct_boundary_refined, construct_constrained,
    construct_uniform,
};
pub use dist::{
    descendant_key_range, splitter_bin, supervise_spmd, CheckpointStore, DistMesh, DistReduce,
    FusedReduce, GhostState, GhostStats,
};
pub use matvec::{
    traversal_assemble, traversal_assemble_par, traversal_assemble_ws, traversal_matvec,
    traversal_matvec_overlap_par, traversal_matvec_overlap_ws, traversal_matvec_par,
    traversal_matvec_ws, AssemblyKernel, LeafKernel, TraversalWorkspace,
};
pub use mesh::{find_leaf, Mesh};
pub use nodes::{enumerate_nodes, resolve_slot, NodeFlags, NodeSet, SlotRef};
pub use par::par_map;
pub use refine::{adapt_balanced, adapt_once, construct_from_points, Adapt};
