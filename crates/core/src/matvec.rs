//! Traversal-based matrix-free MATVEC (§3.5) and matrix assembly (§3.6).
//!
//! No element-to-node map exists anywhere. Instead, top-down traversal of
//! the (incomplete) octree buckets nodal data into child subtrees — a node
//! incident on several children is *duplicated* — until each leaf holds its
//! elemental nodes contiguously; the elemental operator is applied there;
//! the bottom-up phase accumulates duplicated contributions back to single
//! values. Hanging lattice slots are interpolated from ancestor buckets on
//! the way down and transposed (scattered with the same weights) on the way
//! up, so the operator equals the assembled constrained matrix to machine
//! precision.
//!
//! The traversal only descends into subtrees containing *owned* elements, so
//! incomplete trees and distributed ownership need no special treatment —
//! the property the paper calls "gracefully handles incomplete octrees".
//!
//! # Execution model (DESIGN.md §6d)
//!
//! The engine splits the tree at a fixed *spine* depth into SFC-contiguous
//! subtree **tasks**. The spine buckets are built serially; tasks then run
//! either inline or fork-joined across scoped worker threads
//! (`CARVE_PAR_THREADS` / `available_parallelism` via
//! [`crate::par::thread_budget`]). A task owns its subtree's bucket stack;
//! writes that would land in a shared ancestor bucket (hanging-node
//! scatters) are appended to a per-task **scatter log** and replayed on the
//! main thread at join time, in SFC task order, interleaved with the
//! bottom-up bucket merges exactly where the sequential traversal would
//! have performed them. Every floating-point accumulation therefore happens
//! in the *same order for any thread count* (and any split depth): results
//! are bitwise identical to the sequential engine by construction.
//!
//! All bucket vectors come from a [`TraversalWorkspace`] arena that pools
//! them across recursion levels *and* across repeated calls (Krylov
//! iterations), and leaves resolve their lattice slots with one merge-sweep
//! over the (Morton-sorted) bucket instead of `npe` binary searches.
//! Observability: `par_workers`, `arena_alloc`, `arena_reuse`, and
//! `slot_sweep_hits` counters join the existing `leaves` / `node_copies`.
//!
//! # Batched leaf panels (DESIGN.md §6h)
//!
//! Inside a task, maximal runs of SFC-consecutive same-level sibling leaves
//! are processed as one structure-of-arrays panel (`npe × batch`, element
//! lane innermost) when the elemental kernel opts in via
//! [`LeafKernel::supports_panels`]: each leaf of the run gets its own
//! merge-sweep slot map, the gathers are hoisted ahead of the batched apply
//! (they only read `vin`, which the traversal never writes), the kernel
//! runs once over the whole panel, and the per-leaf scatters + bottom-up
//! merges then replay in exact SFC element order — scatter of leaf `b+1`
//! can hit the same parent slots as the merge of leaf `b` through hanging
//! sources on shared faces, so the two stay interleaved per element exactly
//! like the scalar path. The result is therefore bitwise identical to the
//! scalar engine for any batch width (`CARVE_BATCH_WIDTH`), thread count,
//! and chaos schedule. Counters: `batched_leaves`, `batch_count`,
//! `scalar_leaves`.

use crate::nodes::{elem_node_coord, lattice_index, lattice_linear, nodes_per_elem, NodeSet};
use crate::par;
use carve_la::CooBuilder;
use carve_la::DenseMatrix;
use carve_sfc::morton::point_cmp_morton;
use carve_sfc::{Curve, Octant, SfcState};
use std::ops::Range;

// Phase taxonomy (see DESIGN.md §"Observability"): the traversal engine
// reports through `carve-obs` under its caller's root scope — `"matvec"`
// for the operator apply, `"assemble"` for sparse assembly — with nested
// `top_down` / `leaf` / `bottom_up` phases (the Figs. 7–10 breakdown).
// Worker threads record detached and are re-absorbed into the calling
// rank's recorder (`carve_obs::absorb_rebased`), so per-rank snapshots
// stay complete under fork-join execution.

/// Scatter-log entry `(ancestor depth | row, bucket slot | col, value)`:
/// the matvec path logs deferred ancestor-bucket accumulations, the
/// assembly path reuses the same buffer for global `(row, col, val)`
/// triplets. Either way the log is replayed in SFC task order.
type OutLog = Vec<(u32, u32, f64)>;

/// One level's worth of bucketed nodal data along the current traversal
/// path. `parent_slot[i]` is the index of entry `i` in the parent bucket.
#[derive(Default)]
struct Bucket<const DIM: usize> {
    coords: Vec<[u64; DIM]>,
    parent_slot: Vec<u32>,
    ids: Vec<u32>,
    vin: Vec<f64>,
    vout: Vec<f64>,
}

impl<const DIM: usize> Bucket<DIM> {
    fn find(&self, coord: &[u64; DIM]) -> Option<usize> {
        self.coords
            .binary_search_by(|c| point_cmp_morton(c, coord))
            .ok()
    }

    /// Empties contents, keeping capacity (arena reuse).
    fn clear(&mut self) {
        self.coords.clear();
        self.parent_slot.clear();
        self.ids.clear();
        self.vin.clear();
        self.vout.clear();
    }
}

// --- Workspace arena ------------------------------------------------------

/// Per-worker scratch: a bucket free-list for the task-local recursion, the
/// hanging-source arena stack, and the depth stack container itself. Lives
/// in the workspace so repeated matvecs (Krylov iterations) allocate
/// nothing after warm-up.
#[derive(Default)]
struct WorkerScratch<const DIM: usize> {
    buckets: Vec<Bucket<DIM>>,
    own_stack: Vec<Bucket<DIM>>,
    /// Per-sibling buckets of the leaf run currently processed as a panel.
    panel_stack: Vec<Bucket<DIM>>,
    /// SoA panel values (`npe × batch`, element lane innermost) and the
    /// per-leaf slot maps of the run — pooled here so steady-state batched
    /// applies allocate nothing.
    panel_in: Vec<f64>,
    panel_out: Vec<f64>,
    panel_slots: Vec<u32>,
    srcs: Vec<([u64; DIM], f64)>,
    alloc: u64,
    reuse: u64,
}

/// Reusable arena for the traversal engine: bucket vectors, scatter logs,
/// and per-worker scratch pooled across recursion levels and across calls.
/// Also carries the intra-rank thread budget (`CARVE_PAR_THREADS` env or
/// `available_parallelism`) and the spine split depth (`CARVE_PAR_SPLIT`
/// env, default 1). Results never depend on either knob — see the module
/// docs — only wall-clock does.
/// Default panel width: one full sibling group in 3D (`2^3`), the natural
/// maximum run length the traversal produces.
const DEFAULT_BATCH_WIDTH: usize = 8;

pub struct TraversalWorkspace<const DIM: usize> {
    threads: usize,
    split_depth: u8,
    /// Maximum leaf-panel width (`CARVE_BATCH_WIDTH` env, default 8;
    /// 1 disables batching). Results never depend on it.
    batch_width: usize,
    bucket_pool: Vec<Bucket<DIM>>,
    log_pool: Vec<OutLog>,
    scratch: Vec<WorkerScratch<DIM>>,
    /// Persistent ghosted copy of the matvec input vector, so repeated
    /// applies (Krylov iterations) never re-allocate the `x.to_vec()` they
    /// used to. Borrowed via [`Self::take_ghost_scratch`].
    ghost_scratch: Vec<f64>,
    /// Pooled per-task interior/boundary flags for the overlapped matvec.
    task_flags: Vec<bool>,
    alloc: u64,
    reuse: u64,
}

impl<const DIM: usize> TraversalWorkspace<DIM> {
    /// Workspace with the environment-resolved thread budget.
    pub fn new() -> Self {
        let split = std::env::var("CARVE_PAR_SPLIT")
            .ok()
            .and_then(|v| v.parse::<u8>().ok())
            .filter(|&d| d >= 1)
            .unwrap_or(1)
            .min(8);
        let batch = std::env::var("CARVE_BATCH_WIDTH")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or(DEFAULT_BATCH_WIDTH)
            .min(64);
        Self::build(par::thread_budget(), split, batch)
    }

    /// Workspace with an explicit thread count (tests; avoids racy env
    /// mutation under a parallel test harness).
    pub fn with_threads(threads: usize) -> Self {
        Self::build(threads, 1, DEFAULT_BATCH_WIDTH)
    }

    /// Sets the maximum leaf-panel width (builder style; tests). `1`
    /// disables batching entirely.
    pub fn with_batch_width(mut self, width: usize) -> Self {
        self.batch_width = width.max(1);
        self
    }

    /// The maximum leaf-panel width batch-capable kernels will see.
    pub fn batch_width(&self) -> usize {
        self.batch_width
    }

    fn build(threads: usize, split_depth: u8, batch_width: usize) -> Self {
        Self {
            threads: threads.max(1),
            split_depth: split_depth.max(1),
            batch_width: batch_width.max(1),
            bucket_pool: Vec::new(),
            log_pool: Vec::new(),
            scratch: Vec::new(),
            ghost_scratch: Vec::new(),
            task_flags: Vec::new(),
            alloc: 0,
            reuse: 0,
        }
    }

    /// Takes the persistent ghosted-input scratch vector (empty the first
    /// time, with its grown capacity afterwards). Callers fill it with the
    /// ghosted input, run the traversal, and hand it back via
    /// [`Self::restore_ghost_scratch`] so the next apply is allocation-free.
    pub fn take_ghost_scratch(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.ghost_scratch)
    }

    /// Returns the ghosted-input scratch for reuse by the next apply.
    pub fn restore_ghost_scratch(&mut self, v: Vec<f64>) {
        self.ghost_scratch = v;
    }

    /// The intra-rank thread budget this workspace will fork up to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn acquire_bucket(&mut self) -> Bucket<DIM> {
        match self.bucket_pool.pop() {
            Some(mut b) => {
                b.clear();
                self.reuse += 1;
                b
            }
            None => {
                self.alloc += 1;
                Bucket::default()
            }
        }
    }

    fn acquire_log(&mut self) -> OutLog {
        let mut l = self.log_pool.pop().unwrap_or_default();
        l.clear();
        l
    }

    fn ensure_scratch(&mut self, n: usize) {
        while self.scratch.len() < n {
            self.scratch.push(WorkerScratch::default());
        }
    }

    fn release_plan(&mut self, plan: SpinePlan<DIM>) {
        for t in plan.tasks {
            self.bucket_pool.push(t.bucket);
            let mut log = t.out_log;
            log.clear();
            self.log_pool.push(log);
        }
        for n in plan.interior {
            self.bucket_pool.push(n.bucket);
        }
    }

    /// Emits and resets the arena's alloc/reuse tallies (engine + workers)
    /// under the currently open obs scope.
    fn emit_arena_counters(&mut self) {
        let mut a = std::mem::take(&mut self.alloc);
        let mut r = std::mem::take(&mut self.reuse);
        for s in &mut self.scratch {
            a += std::mem::take(&mut s.alloc);
            r += std::mem::take(&mut s.reuse);
        }
        if a > 0 {
            carve_obs::counter("arena_alloc", a);
        }
        if r > 0 {
            carve_obs::counter("arena_reuse", r);
        }
    }
}

impl<const DIM: usize> Default for TraversalWorkspace<DIM> {
    fn default() -> Self {
        Self::new()
    }
}

// --- Task-local bucket stack view -----------------------------------------

/// A task's view of the bucket stack: shared read-only ancestor prefix
/// (spine buckets), the task's own base bucket, and the task-local stack of
/// deeper buckets. Writes below the prefix boundary are deferred to the
/// scatter log; everything else accumulates in place.
struct Ctx<'a, const DIM: usize> {
    prefix: &'a [&'a Bucket<DIM>],
    base: &'a mut Bucket<DIM>,
    own: Vec<Bucket<DIM>>,
    log: &'a mut OutLog,
    free: &'a mut Vec<Bucket<DIM>>,
    /// Buckets of the sibling run currently processed as a leaf panel.
    panel: &'a mut Vec<Bucket<DIM>>,
    /// SoA panel value buffers and per-leaf slot maps (workspace arena).
    panel_in: &'a mut Vec<f64>,
    panel_out: &'a mut Vec<f64>,
    panel_slots: &'a mut Vec<u32>,
    alloc: &'a mut u64,
    reuse: &'a mut u64,
}

impl<const DIM: usize> Ctx<'_, DIM> {
    #[inline]
    fn top_depth(&self) -> usize {
        self.prefix.len() + self.own.len()
    }

    #[inline]
    fn bucket(&self, depth: usize) -> &Bucket<DIM> {
        let pl = self.prefix.len();
        if depth < pl {
            self.prefix[depth]
        } else if depth == pl {
            self.base
        } else {
            &self.own[depth - pl - 1]
        }
    }

    #[inline]
    fn top_bucket(&self) -> &Bucket<DIM> {
        self.bucket(self.top_depth())
    }

    /// Adds `val` into `vout[slot]` of the depth-`depth` bucket — directly
    /// when the bucket is task-owned, via the scatter log when it is a
    /// shared spine ancestor (replayed in order at join).
    #[inline]
    fn vout_add(&mut self, depth: usize, slot: usize, val: f64) {
        let pl = self.prefix.len();
        if depth < pl {
            self.log.push((depth as u32, slot as u32, val));
        } else if depth == pl {
            self.base.vout[slot] += val;
        } else {
            self.own[depth - pl - 1].vout[slot] += val;
        }
    }

    fn acquire(&mut self) -> Bucket<DIM> {
        match self.free.pop() {
            Some(mut b) => {
                b.clear();
                *self.reuse += 1;
                b
            }
            None => {
                *self.alloc += 1;
                Bucket::default()
            }
        }
    }
}

// --- Hanging-node resolution ----------------------------------------------

/// Pushes the one-level-up interpolation sources for a hanging coordinate
/// onto the arena stack `srcs`: `coord` belongs to the p-lattice of `oct`
/// but is not a real node; the sources live on the minimal face of
/// `parent(oct)` containing it, with tensor-Lagrange weights. Callers
/// record `srcs.len()` before the call and truncate back after consuming
/// their segment, so recursive chains share one allocation.
fn push_hanging_sources<const DIM: usize>(
    oct: &Octant<DIM>,
    coord: &[u64; DIM],
    p: u64,
    srcs: &mut Vec<([u64; DIM], f64)>,
) {
    assert!(
        oct.level > 0,
        "hanging coordinate at the root: invalid mesh"
    );
    let parent = oct.parent();
    let pside = parent.side() as u64;
    let mut fixed = [false; DIM];
    let mut t = [0.0f64; DIM];
    for k in 0..DIM {
        let off = coord[k] - parent.anchor[k] as u64 * p;
        if off == 0 || off == p * pside {
            fixed[k] = true;
        }
        t[k] = off as f64 / pside as f64;
    }
    debug_assert!(fixed.iter().any(|&f| f));
    let mut free_axes = [0usize; DIM];
    let mut n_free = 0;
    for (k, &fx) in fixed.iter().enumerate() {
        if !fx {
            free_axes[n_free] = k;
            n_free += 1;
        }
    }
    let combos = (p + 1).pow(n_free as u32);
    for combo in 0..combos {
        let mut rem = combo;
        let mut w = 1.0;
        let mut src = *coord;
        for &k in &free_axes[..n_free] {
            let j = rem % (p + 1);
            rem /= p + 1;
            w *= crate::nodes::lagrange_1d(p, j, t[k]);
            src[k] = parent.anchor[k] as u64 * p + j * pside;
        }
        if w != 0.0 {
            srcs.push((src, w));
        }
    }
}

/// Evaluates the FE value at `coord` (p-lattice of the level-`depth`
/// ancestor of `leaf`) from the bucket stack, resolving hanging chains.
fn eval_coord<const DIM: usize>(
    ctx: &Ctx<'_, DIM>,
    leaf: &Octant<DIM>,
    depth: usize,
    coord: &[u64; DIM],
    p: u64,
    srcs: &mut Vec<([u64; DIM], f64)>,
) -> f64 {
    let b = ctx.bucket(depth);
    if let Some(i) = b.find(coord) {
        return b.vin[i];
    }
    let oct = leaf.ancestor_at(depth as u8);
    let base = srcs.len();
    push_hanging_sources(&oct, coord, p, srcs);
    let end = srcs.len();
    let mut v = 0.0;
    for k in base..end {
        let (src, w) = srcs[k];
        v += w * eval_coord(ctx, leaf, depth - 1, &src, p, srcs);
    }
    srcs.truncate(base);
    v
}

/// Transpose of [`eval_coord`]: scatters `val` into the bucket stack.
fn scatter_coord<const DIM: usize>(
    ctx: &mut Ctx<'_, DIM>,
    leaf: &Octant<DIM>,
    depth: usize,
    coord: &[u64; DIM],
    val: f64,
    p: u64,
    srcs: &mut Vec<([u64; DIM], f64)>,
) {
    if let Some(i) = ctx.bucket(depth).find(coord) {
        ctx.vout_add(depth, i, val);
        return;
    }
    let oct = leaf.ancestor_at(depth as u8);
    let base = srcs.len();
    push_hanging_sources(&oct, coord, p, srcs);
    let end = srcs.len();
    for k in base..end {
        let (src, w) = srcs[k];
        scatter_coord(ctx, leaf, depth - 1, &src, w * val, p, srcs);
    }
    srcs.truncate(base);
}

/// Resolves `coord` into a `(global id, weight)` stencil (assembly path).
#[allow(clippy::too_many_arguments)]
fn stencil_coord<const DIM: usize>(
    ctx: &Ctx<'_, DIM>,
    leaf: &Octant<DIM>,
    depth: usize,
    coord: &[u64; DIM],
    weight: f64,
    p: u64,
    srcs: &mut Vec<([u64; DIM], f64)>,
    out: &mut Vec<(u32, f64)>,
) {
    let b = ctx.bucket(depth);
    if let Some(i) = b.find(coord) {
        out.push((b.ids[i], weight));
        return;
    }
    let oct = leaf.ancestor_at(depth as u8);
    let base = srcs.len();
    push_hanging_sources(&oct, coord, p, srcs);
    let end = srcs.len();
    for k in base..end {
        let (src, w) = srcs[k];
        stencil_coord(ctx, leaf, depth - 1, &src, weight * w, p, srcs, out);
    }
    srcs.truncate(base);
}

// --- Spine / task decomposition -------------------------------------------

/// Immutable per-call traversal parameters.
struct Env<'a, const DIM: usize> {
    elems: &'a [Octant<DIM>],
    owned: Range<usize>,
    curve: Curve,
    p: u64,
    carry_values: bool,
    carry_ids: bool,
    /// Maximum leaf-panel width (workspace `batch_width`); the effective
    /// width is additionally capped by the visitor's [`LeafVisitor::
    /// panel_width`] and the natural sibling-run length.
    batch: usize,
}

/// A spine node: a bucket on the serial prefix of the tree, shared
/// read-only by the tasks below it.
struct SpineNode<const DIM: usize> {
    bucket: Bucket<DIM>,
    kids: Vec<SpineChild>,
}

#[derive(Clone, Copy)]
enum SpineChild {
    Interior(u32),
    Task(u32),
}

/// An independent SFC-contiguous subtree of work.
struct Task<const DIM: usize> {
    oct: Octant<DIM>,
    st: SfcState,
    range: Range<usize>,
    /// Spine indices of the ancestor buckets, root first; the last entry is
    /// this task's parent. `len()` equals the task bucket's depth.
    ancestors: Vec<u32>,
    /// The task is itself a leaf element (no further descent).
    is_leaf: bool,
    bucket: Bucket<DIM>,
    out_log: OutLog,
}

struct SpinePlan<const DIM: usize> {
    interior: Vec<SpineNode<DIM>>,
    tasks: Vec<Task<DIM>>,
}

/// Builds the spine buckets serially down to `split_depth` and carves the
/// remaining subtrees into tasks (SFC order).
fn build_spine<const DIM: usize>(
    env: &Env<'_, DIM>,
    split_depth: u8,
    root_bucket: Bucket<DIM>,
    ws: &mut TraversalWorkspace<DIM>,
) -> SpinePlan<DIM> {
    let mut plan = SpinePlan {
        interior: Vec::new(),
        tasks: Vec::new(),
    };
    let all = 0..env.elems.len();
    if all.len() == 1 && env.elems[0] == Octant::ROOT {
        // Degenerate single-element tree: the root bucket is the task.
        plan.tasks.push(Task {
            oct: Octant::ROOT,
            st: SfcState::ROOT,
            range: all,
            ancestors: Vec::new(),
            is_leaf: true,
            bucket: root_bucket,
            out_log: ws.acquire_log(),
        });
        return plan;
    }
    plan.interior.push(SpineNode {
        bucket: root_bucket,
        kids: Vec::new(),
    });
    let mut path = vec![0u32];
    grow(
        env,
        split_depth,
        0,
        Octant::ROOT,
        SfcState::ROOT,
        all,
        &mut path,
        &mut plan,
        ws,
    );
    plan
}

#[allow(clippy::too_many_arguments)]
fn grow<const DIM: usize>(
    env: &Env<'_, DIM>,
    split_depth: u8,
    node: u32,
    subtree: Octant<DIM>,
    st: SfcState,
    range: Range<usize>,
    path: &mut Vec<u32>,
    plan: &mut SpinePlan<DIM>,
    ws: &mut TraversalWorkspace<DIM>,
) {
    let child_level = subtree.level + 1;
    let mut lo = range.start;
    for r in 0..(1usize << DIM) {
        let mut hi = lo;
        while hi < range.end
            && st.morton_to_sfc(env.curve, DIM, env.elems[hi].child_bits_at(child_level)) == r
        {
            hi += 1;
        }
        if hi == lo {
            continue;
        }
        // Skip subtrees with no owned elements (distributed restriction).
        if lo >= env.owned.end || hi <= env.owned.start {
            lo = hi;
            continue;
        }
        let m = st.sfc_to_morton(env.curve, DIM, r);
        let child_oct = subtree.child(m);
        let child_st = st.child(env.curve, DIM, r);
        let obs_td = carve_obs::scope("top_down");
        let mut b = ws.acquire_bucket();
        fill_child_bucket(
            &plan.interior[node as usize].bucket,
            &child_oct,
            env.p,
            env.carry_values,
            env.carry_ids,
            &mut b,
        );
        carve_obs::counter("node_copies", b.coords.len() as u64);
        drop(obs_td);
        let single_leaf = hi - lo == 1 && env.elems[lo] == child_oct;
        if single_leaf || child_level >= split_depth {
            let ti = plan.tasks.len() as u32;
            plan.tasks.push(Task {
                oct: child_oct,
                st: child_st,
                range: lo..hi,
                ancestors: path.clone(),
                is_leaf: single_leaf,
                bucket: b,
                out_log: ws.acquire_log(),
            });
            plan.interior[node as usize].kids.push(SpineChild::Task(ti));
        } else {
            let ci = plan.interior.len() as u32;
            plan.interior.push(SpineNode {
                bucket: b,
                kids: Vec::new(),
            });
            plan.interior[node as usize]
                .kids
                .push(SpineChild::Interior(ci));
            path.push(ci);
            grow(
                env,
                split_depth,
                ci,
                child_oct,
                child_st,
                lo..hi,
                path,
                plan,
                ws,
            );
            path.pop();
        }
        lo = hi;
    }
    debug_assert_eq!(lo, range.end, "elements not fully bucketed");
}

/// Buckets the parent's nodes incident on `child_oct`'s closed region into
/// `out` (which the arena has already cleared).
fn fill_child_bucket<const DIM: usize>(
    parent: &Bucket<DIM>,
    child_oct: &Octant<DIM>,
    p: u64,
    carry_values: bool,
    carry_ids: bool,
    out: &mut Bucket<DIM>,
) {
    let side = child_oct.side() as u64;
    for (i, c) in parent.coords.iter().enumerate() {
        let mut incident = true;
        for (&ck, &ak) in c.iter().zip(&child_oct.anchor) {
            let a = ak as u64 * p;
            if ck < a || ck > a + side * p {
                incident = false;
                break;
            }
        }
        if incident {
            out.coords.push(*c);
            out.parent_slot.push(i as u32);
            if carry_ids {
                out.ids.push(parent.ids[i]);
            }
            if carry_values {
                out.vin.push(parent.vin[i]);
            }
        }
    }
    if carry_values {
        out.vout.resize(out.coords.len(), 0.0);
    }
}

// --- Elemental kernel traits ----------------------------------------------

/// Elemental operator for the matvec traversal. `apply` is the scalar
/// per-element kernel; kernels that can consume structure-of-arrays panels
/// of SFC-consecutive same-level siblings opt in via
/// [`Self::supports_panels`] + [`Self::apply_panel`].
///
/// Implemented for every `FnMut(&Octant<DIM>, &[f64], &mut [f64])` closure
/// (scalar-only), so plain-closure call sites need no changes.
pub trait LeafKernel<const DIM: usize> {
    /// `v_e += K_e u_e` on one element (`v_e` arrives zeroed).
    fn apply(&mut self, e: &Octant<DIM>, u: &[f64], v: &mut [f64]);

    /// Whether [`Self::apply_panel`] is implemented; when `false` the
    /// traversal stays on the scalar per-leaf path.
    fn supports_panels(&self) -> bool {
        false
    }

    /// Applies the operator to a panel of `elems.len()` same-level elements
    /// in SoA layout: node `lin` of element `b` lives at
    /// `[lin * batch + b]` (`v` arrives zeroed). Implementations must
    /// perform each element's floating-point operations in exactly the
    /// order of [`Self::apply`] so batched and scalar traversals agree
    /// bitwise.
    fn apply_panel(&mut self, elems: &[Octant<DIM>], u: &[f64], v: &mut [f64]) {
        let _ = (elems, u, v);
        unreachable!("apply_panel called on a kernel without panel support")
    }
}

impl<const DIM: usize, F> LeafKernel<DIM> for F
where
    F: FnMut(&Octant<DIM>, &[f64], &mut [f64]),
{
    fn apply(&mut self, e: &Octant<DIM>, u: &[f64], v: &mut [f64]) {
        self(e, u, v)
    }
}

/// Elemental matrix source for the assembly traversal. Caching kernels
/// (e.g. per-level matrices on axis-aligned octrees) return a borrow via
/// [`Self::matrix_ref`] so the traversal skips the per-leaf build + clone;
/// the emitted triplet stream is identical either way.
///
/// Implemented for every `FnMut(&Octant<DIM>) -> DenseMatrix` closure.
pub trait AssemblyKernel<const DIM: usize> {
    /// The elemental matrix `K_e` (owned).
    fn matrix(&mut self, e: &Octant<DIM>) -> DenseMatrix;

    /// Borrowing variant for caching kernels; `None` means "use
    /// [`Self::matrix`]". Must hold the same values as `matrix`.
    fn matrix_ref(&mut self, e: &Octant<DIM>) -> Option<&DenseMatrix> {
        let _ = e;
        None
    }

    /// Whether same-level sibling runs should be processed as panels (the
    /// stencil sweeps batch and the obs counters record it; the triplet
    /// stream is unchanged either way).
    fn supports_panels(&self) -> bool {
        false
    }
}

impl<const DIM: usize, F> AssemblyKernel<DIM> for F
where
    F: FnMut(&Octant<DIM>) -> DenseMatrix,
{
    fn matrix(&mut self, e: &Octant<DIM>) -> DenseMatrix {
        self(e)
    }
}

// --- Task execution -------------------------------------------------------

/// What to do at each owned leaf. Visitors that can consume sibling runs as
/// panels report a `panel_width() > 1` and implement the three-phase panel
/// protocol (`gather×B → apply → scatter per leaf in SFC order`).
trait LeafVisitor<const DIM: usize> {
    fn leaf(
        &mut self,
        leaf: &Octant<DIM>,
        ctx: &mut Ctx<'_, DIM>,
        srcs: &mut Vec<([u64; DIM], f64)>,
        p: u64,
    );

    /// Maximum sibling-run width this visitor consumes as one panel
    /// (1 = scalar only).
    fn panel_width(&self) -> usize {
        1
    }

    /// Reads element `b` of a `batch`-wide panel into the visitor's panel
    /// buffers (must not write any traversal state).
    fn panel_gather(
        &mut self,
        b: usize,
        batch: usize,
        leaf: &Octant<DIM>,
        ctx: &mut Ctx<'_, DIM>,
        srcs: &mut Vec<([u64; DIM], f64)>,
        p: u64,
    ) {
        let _ = (b, batch, leaf, ctx, srcs, p);
        unreachable!("panel_gather requires panel_width() > 1")
    }

    /// Applies the batched operator to the gathered panel.
    fn panel_apply(&mut self, leaves: &[Octant<DIM>], ctx: &mut Ctx<'_, DIM>, p: u64) {
        let _ = (leaves, ctx, p);
        unreachable!("panel_apply requires panel_width() > 1")
    }

    /// Writes element `b`'s results back; called once per element in SFC
    /// order, interleaved with the bottom-up merges.
    fn panel_scatter(
        &mut self,
        b: usize,
        batch: usize,
        leaf: &Octant<DIM>,
        ctx: &mut Ctx<'_, DIM>,
        srcs: &mut Vec<([u64; DIM], f64)>,
        p: u64,
    ) {
        let _ = (b, batch, leaf, ctx, srcs, p);
        unreachable!("panel_scatter requires panel_width() > 1")
    }
}

/// Runs one task to completion against its ancestor prefix.
fn run_task<const DIM: usize, V: LeafVisitor<DIM>>(
    env: &Env<'_, DIM>,
    task: &mut Task<DIM>,
    interior: &[SpineNode<DIM>],
    scr: &mut WorkerScratch<DIM>,
    visitor: &mut V,
) {
    let prefix: Vec<&Bucket<DIM>> = task
        .ancestors
        .iter()
        .map(|&i| &interior[i as usize].bucket)
        .collect();
    let WorkerScratch {
        buckets,
        own_stack,
        panel_stack,
        panel_in,
        panel_out,
        panel_slots,
        srcs,
        alloc,
        reuse,
    } = scr;
    let mut ctx = Ctx {
        prefix: &prefix,
        base: &mut task.bucket,
        own: std::mem::take(own_stack),
        log: &mut task.out_log,
        free: buckets,
        panel: panel_stack,
        panel_in,
        panel_out,
        panel_slots,
        alloc,
        reuse,
    };
    if task.is_leaf {
        if env.owned.contains(&task.range.start) {
            let _obs = carve_obs::scope("leaf");
            carve_obs::counter("leaves", 1);
            carve_obs::counter("scalar_leaves", 1);
            visitor.leaf(&task.oct, &mut ctx, srcs, env.p);
        }
    } else {
        rec(
            env,
            task.oct,
            task.st,
            task.range.clone(),
            &mut ctx,
            srcs,
            visitor,
        );
    }
    debug_assert!(ctx.own.is_empty());
    *own_stack = ctx.own;
}

/// The recursive top-down / bottom-up sweep inside one task.
fn rec<const DIM: usize, V: LeafVisitor<DIM>>(
    env: &Env<'_, DIM>,
    subtree: Octant<DIM>,
    st: SfcState,
    range: Range<usize>,
    ctx: &mut Ctx<'_, DIM>,
    srcs: &mut Vec<([u64; DIM], f64)>,
    visitor: &mut V,
) {
    debug_assert!(!range.is_empty());
    if range.len() == 1 && env.elems[range.start] == subtree {
        if env.owned.contains(&range.start) {
            let _obs = carve_obs::scope("leaf");
            carve_obs::counter("leaves", 1);
            carve_obs::counter("scalar_leaves", 1);
            visitor.leaf(&subtree, ctx, srcs, env.p);
        }
        return;
    }
    // Partition the (SFC-sorted) element range by SFC child rank; the
    // runs are contiguous and in rank order.
    let child_level = subtree.level + 1;
    let bw = env.batch.min(visitor.panel_width());
    let mut lo = range.start;
    for r in 0..(1usize << DIM) {
        let mut hi = lo;
        while hi < range.end
            && st.morton_to_sfc(env.curve, DIM, env.elems[hi].child_bits_at(child_level)) == r
        {
            hi += 1;
        }
        if hi == lo {
            continue;
        }
        if lo >= env.owned.end || hi <= env.owned.start {
            lo = hi;
            continue;
        }
        // Batched leaf panels: an element at exactly `child_level` IS one
        // whole child of this subtree, so a run of consecutive such owned
        // elements is a run of sibling leaves (distinct, ascending SFC
        // ranks). Consume it as one SoA panel; the for-loop then naturally
        // skips the ranks the panel covered, because runs are re-scanned
        // from the advanced `lo`.
        if bw >= 2 && hi - lo == 1 && env.elems[lo].level == child_level {
            let mut q = lo + 1;
            while q - lo < bw
                && q < range.end
                && q < env.owned.end
                && env.elems[q].level == child_level
            {
                q += 1;
            }
            if q - lo >= 2 {
                panel_run(env, lo, q - lo, ctx, srcs, visitor);
                lo = q;
                continue;
            }
        }
        let m = st.sfc_to_morton(env.curve, DIM, r);
        let child_oct = subtree.child(m);
        let child_st = st.child(env.curve, DIM, r);
        // Top-down: bucket nodes incident on the child's closed region.
        let obs_td = carve_obs::scope("top_down");
        let mut child = ctx.acquire();
        fill_child_bucket(
            ctx.top_bucket(),
            &child_oct,
            env.p,
            env.carry_values,
            env.carry_ids,
            &mut child,
        );
        carve_obs::counter("node_copies", child.coords.len() as u64);
        drop(obs_td);
        ctx.own.push(child);
        rec(env, child_oct, child_st, lo..hi, ctx, srcs, visitor);
        // Bottom-up: accumulate duplicated node contributions.
        let _obs_bu = carve_obs::scope("bottom_up");
        let child = ctx.own.pop().expect("child bucket");
        if env.carry_values {
            let pd = ctx.top_depth();
            for (i, &ps) in child.parent_slot.iter().enumerate() {
                ctx.vout_add(pd, ps as usize, child.vout[i]);
            }
        }
        ctx.free.push(child);
        lo = hi;
    }
    debug_assert_eq!(lo, range.end, "elements not fully bucketed");
}

/// Processes `batch` consecutive sibling leaves (`env.elems[lo..lo+batch]`)
/// as one SoA panel: per-leaf bucket fills, hoisted gathers, one batched
/// kernel apply, then per-leaf scatter + bottom-up merge in SFC order.
///
/// Bitwise identity with the scalar path: the hoisted phases (bucket fill,
/// merge-sweep, gather) only *read* traversal state (`vin`, coords), which
/// no leaf ever writes, so moving them ahead of sibling scatters changes no
/// input value. The write phases — scatter of leaf `b` followed by its
/// bottom-up merge — stay interleaved per element in SFC order, because
/// scatter of leaf `b+1` can accumulate into the same parent slots as the
/// merge of leaf `b` (hanging sources on shared sibling faces recurse into
/// the parent bucket). Every floating-point accumulation therefore happens
/// in exactly the scalar order.
fn panel_run<const DIM: usize, V: LeafVisitor<DIM>>(
    env: &Env<'_, DIM>,
    lo: usize,
    batch: usize,
    ctx: &mut Ctx<'_, DIM>,
    srcs: &mut Vec<([u64; DIM], f64)>,
    visitor: &mut V,
) {
    debug_assert!(ctx.panel.is_empty());
    let pd = ctx.top_depth();
    // Top-down: fill every sibling's bucket from the shared parent.
    for b in 0..batch {
        let obs_td = carve_obs::scope("top_down");
        let mut bkt = ctx.acquire();
        fill_child_bucket(
            ctx.top_bucket(),
            &env.elems[lo + b],
            env.p,
            env.carry_values,
            env.carry_ids,
            &mut bkt,
        );
        carve_obs::counter("node_copies", bkt.coords.len() as u64);
        drop(obs_td);
        ctx.panel.push(bkt);
    }
    {
        let _obs = carve_obs::scope("leaf");
        carve_obs::counter("leaves", batch as u64);
        carve_obs::counter("batched_leaves", batch as u64);
        carve_obs::counter("batch_count", 1);
        for b in 0..batch {
            // Temporarily put sibling `b`'s bucket on the own-stack so the
            // visitor sees the same depth-indexed view as the scalar path.
            let bkt = std::mem::take(&mut ctx.panel[b]);
            ctx.own.push(bkt);
            visitor.panel_gather(b, batch, &env.elems[lo + b], ctx, srcs, env.p);
            let bkt = ctx.own.pop().expect("panel bucket");
            ctx.panel[b] = bkt;
        }
        visitor.panel_apply(&env.elems[lo..lo + batch], ctx, env.p);
    }
    // Scatter + merge per leaf, in SFC order (see the ordering argument in
    // the doc comment above).
    for b in 0..batch {
        let leaf = env.elems[lo + b];
        let bkt = {
            let _obs = carve_obs::scope("leaf");
            let bkt = std::mem::take(&mut ctx.panel[b]);
            ctx.own.push(bkt);
            visitor.panel_scatter(b, batch, &leaf, ctx, srcs, env.p);
            ctx.own.pop().expect("panel bucket")
        };
        if env.carry_values {
            let _obs = carve_obs::scope("bottom_up");
            for (i, &ps) in bkt.parent_slot.iter().enumerate() {
                ctx.vout_add(pd, ps as usize, bkt.vout[i]);
            }
        }
        ctx.free.push(bkt);
    }
    ctx.panel.clear();
}

// --- Join (ordered merge) -------------------------------------------------

/// Replays each task's deferred ancestor writes and merges bucket `vout`s
/// up the spine, walking the spine tree in DFS (SFC) order so every
/// accumulation happens exactly where the sequential traversal would have
/// performed it. Only meaningful for the matvec path (`carry_values`).
fn join_spine<const DIM: usize>(plan: &mut SpinePlan<DIM>) {
    if !plan.interior.is_empty() {
        join_rec(plan, 0);
    }
}

fn join_rec<const DIM: usize>(plan: &mut SpinePlan<DIM>, node: u32) {
    let kids = std::mem::take(&mut plan.interior[node as usize].kids);
    for k in &kids {
        match *k {
            SpineChild::Task(ti) => {
                let _obs = carve_obs::scope("bottom_up");
                let SpinePlan { interior, tasks } = plan;
                let t = &mut tasks[ti as usize];
                for &(d, slot, val) in t.out_log.iter() {
                    let anc = t.ancestors[d as usize] as usize;
                    interior[anc].bucket.vout[slot as usize] += val;
                }
                t.out_log.clear();
                let pb = &mut interior[node as usize].bucket;
                for (i, &ps) in t.bucket.parent_slot.iter().enumerate() {
                    pb.vout[ps as usize] += t.bucket.vout[i];
                }
            }
            SpineChild::Interior(ci) => {
                join_rec(plan, ci);
                let _obs = carve_obs::scope("bottom_up");
                let b = std::mem::take(&mut plan.interior[ci as usize].bucket);
                let pb = &mut plan.interior[node as usize].bucket;
                for (i, &ps) in b.parent_slot.iter().enumerate() {
                    pb.vout[ps as usize] += b.vout[i];
                }
                plan.interior[ci as usize].bucket = b;
            }
        }
    }
    plan.interior[node as usize].kids = kids;
}

// --- Leaf visitors --------------------------------------------------------

struct MatvecVisitor<'k, const DIM: usize, K> {
    kernel: &'k mut K,
    in_vals: Vec<f64>,
    out_vals: Vec<f64>,
    slots: Vec<u32>,
}

impl<'k, const DIM: usize, K> MatvecVisitor<'k, DIM, K> {
    fn new(kernel: &'k mut K, npe: usize) -> Self {
        Self {
            kernel,
            in_vals: Vec::with_capacity(npe),
            out_vals: Vec::with_capacity(npe),
            slots: Vec::with_capacity(npe),
        }
    }
}

/// Sentinel for "lattice slot not in the leaf bucket" (hanging node).
const NO_SLOT: u32 = u32::MAX;

impl<const DIM: usize, K> LeafVisitor<DIM> for MatvecVisitor<'_, DIM, K>
where
    K: LeafKernel<DIM>,
{
    fn leaf(
        &mut self,
        leaf: &Octant<DIM>,
        ctx: &mut Ctx<'_, DIM>,
        srcs: &mut Vec<([u64; DIM], f64)>,
        p: u64,
    ) {
        let npe = nodes_per_elem::<DIM>(p);
        let depth = leaf.level as usize;
        debug_assert_eq!(ctx.top_depth(), depth);
        self.slots.clear();
        self.slots.resize(npe, NO_SLOT);
        self.in_vals.resize(npe, 0.0);
        self.out_vals.resize(npe, 0.0);
        // Merge-sweep: one pass over the (Morton-sorted) leaf bucket maps
        // every on-lattice node to its slot; the map is injective, so this
        // replaces npe binary searches with bucket_len divisibility checks.
        let mut hits = 0u64;
        for (i, c) in ctx.bucket(depth).coords.iter().enumerate() {
            if let Some(lin) = lattice_linear(leaf, p, c) {
                self.slots[lin] = i as u32;
                hits += 1;
            }
        }
        carve_obs::counter("slot_sweep_hits", hits);
        for lin in 0..npe {
            let s = self.slots[lin];
            self.in_vals[lin] = if s != NO_SLOT {
                ctx.bucket(depth).vin[s as usize]
            } else {
                let idx = lattice_index::<DIM>(lin, p);
                let c = elem_node_coord(leaf, p, &idx);
                eval_coord(ctx, leaf, depth, &c, p, srcs)
            };
            self.out_vals[lin] = 0.0;
        }
        self.kernel.apply(leaf, &self.in_vals, &mut self.out_vals);
        for lin in 0..npe {
            let s = self.slots[lin];
            if s != NO_SLOT {
                ctx.vout_add(depth, s as usize, self.out_vals[lin]);
            } else {
                let idx = lattice_index::<DIM>(lin, p);
                let c = elem_node_coord(leaf, p, &idx);
                scatter_coord(ctx, leaf, depth, &c, self.out_vals[lin], p, srcs);
            }
        }
    }

    fn panel_width(&self) -> usize {
        if self.kernel.supports_panels() {
            usize::MAX
        } else {
            1
        }
    }

    fn panel_gather(
        &mut self,
        b: usize,
        batch: usize,
        leaf: &Octant<DIM>,
        ctx: &mut Ctx<'_, DIM>,
        srcs: &mut Vec<([u64; DIM], f64)>,
        p: u64,
    ) {
        let npe = nodes_per_elem::<DIM>(p);
        let depth = leaf.level as usize;
        debug_assert_eq!(ctx.top_depth(), depth);
        // The panel buffers live in the workspace arena; take them out so
        // the bucket reads below don't conflict with the writes.
        let mut slots = std::mem::take(ctx.panel_slots);
        let mut pin = std::mem::take(ctx.panel_in);
        let mut pout = std::mem::take(ctx.panel_out);
        if b == 0 {
            slots.clear();
            slots.resize(npe * batch, NO_SLOT);
            pin.clear();
            pin.resize(npe * batch, 0.0);
            pout.clear();
            pout.resize(npe * batch, 0.0);
        }
        let my_slots = &mut slots[b * npe..(b + 1) * npe];
        let mut hits = 0u64;
        for (i, c) in ctx.bucket(depth).coords.iter().enumerate() {
            if let Some(lin) = lattice_linear(leaf, p, c) {
                my_slots[lin] = i as u32;
                hits += 1;
            }
        }
        carve_obs::counter("slot_sweep_hits", hits);
        for (lin, &s) in my_slots.iter().enumerate() {
            // SoA: node `lin` of element `b` at `lin * batch + b`.
            pin[lin * batch + b] = if s != NO_SLOT {
                ctx.bucket(depth).vin[s as usize]
            } else {
                let idx = lattice_index::<DIM>(lin, p);
                let c = elem_node_coord(leaf, p, &idx);
                eval_coord(ctx, leaf, depth, &c, p, srcs)
            };
        }
        *ctx.panel_slots = slots;
        *ctx.panel_in = pin;
        *ctx.panel_out = pout;
    }

    fn panel_apply(&mut self, leaves: &[Octant<DIM>], ctx: &mut Ctx<'_, DIM>, p: u64) {
        let n = nodes_per_elem::<DIM>(p) * leaves.len();
        self.kernel
            .apply_panel(leaves, &ctx.panel_in[..n], &mut ctx.panel_out[..n]);
    }

    fn panel_scatter(
        &mut self,
        b: usize,
        batch: usize,
        leaf: &Octant<DIM>,
        ctx: &mut Ctx<'_, DIM>,
        srcs: &mut Vec<([u64; DIM], f64)>,
        p: u64,
    ) {
        let npe = nodes_per_elem::<DIM>(p);
        let depth = leaf.level as usize;
        debug_assert_eq!(ctx.top_depth(), depth);
        let slots = std::mem::take(ctx.panel_slots);
        let pout = std::mem::take(ctx.panel_out);
        for lin in 0..npe {
            let s = slots[b * npe + lin];
            let val = pout[lin * batch + b];
            if s != NO_SLOT {
                ctx.vout_add(depth, s as usize, val);
            } else {
                let idx = lattice_index::<DIM>(lin, p);
                let c = elem_node_coord(leaf, p, &idx);
                scatter_coord(ctx, leaf, depth, &c, val, p, srcs);
            }
        }
        *ctx.panel_slots = slots;
        *ctx.panel_out = pout;
    }
}

struct AssemblyVisitor<'k, const DIM: usize, K> {
    kernel: &'k mut K,
    stencils: Vec<Vec<(u32, f64)>>,
    slots: Vec<u32>,
}

impl<'k, const DIM: usize, K> AssemblyVisitor<'k, DIM, K> {
    fn new(kernel: &'k mut K, npe: usize) -> Self {
        Self {
            kernel,
            stencils: (0..npe).map(|_| Vec::with_capacity(4)).collect(),
            slots: Vec::with_capacity(npe),
        }
    }
}

/// Emits `W^T K_e W` into the triplet log: every (row stencil) × (col
/// stencil) product, skipping structural zeros. Shared by the scalar and
/// panel assembly paths, so the triplet sequence is identical.
fn emit_triplets(stencils: &[Vec<(u32, f64)>], ke: &DenseMatrix, npe: usize, log: &mut OutLog) {
    debug_assert_eq!(ke.rows, npe);
    debug_assert_eq!(ke.cols, npe);
    for i in 0..npe {
        for j in 0..npe {
            let v = ke[(i, j)];
            if v == 0.0 {
                continue;
            }
            for &(ri, rw) in &stencils[i] {
                for &(cj, cw) in &stencils[j] {
                    log.push((ri, cj, rw * cw * v));
                }
            }
        }
    }
}

impl<const DIM: usize, K> AssemblyVisitor<'_, DIM, K>
where
    K: AssemblyKernel<DIM>,
{
    /// Resolves the `npe` lattice stencils of `leaf` into
    /// `self.stencils[base..base + npe]` (reads only traversal state).
    fn gather_stencils(
        &mut self,
        base: usize,
        leaf: &Octant<DIM>,
        ctx: &Ctx<'_, DIM>,
        srcs: &mut Vec<([u64; DIM], f64)>,
        p: u64,
    ) {
        let npe = nodes_per_elem::<DIM>(p);
        let depth = leaf.level as usize;
        if self.stencils.len() < base + npe {
            self.stencils.resize_with(base + npe, Vec::new);
        }
        self.slots.clear();
        self.slots.resize(npe, NO_SLOT);
        let mut hits = 0u64;
        for (i, c) in ctx.bucket(depth).coords.iter().enumerate() {
            if let Some(lin) = lattice_linear(leaf, p, c) {
                self.slots[lin] = i as u32;
                hits += 1;
            }
        }
        carve_obs::counter("slot_sweep_hits", hits);
        for lin in 0..npe {
            self.stencils[base + lin].clear();
            let s = self.slots[lin];
            if s != NO_SLOT {
                let b = ctx.bucket(depth);
                self.stencils[base + lin].push((b.ids[s as usize], 1.0));
            } else {
                let idx = lattice_index::<DIM>(lin, p);
                let c = elem_node_coord(leaf, p, &idx);
                stencil_coord(
                    ctx,
                    leaf,
                    depth,
                    &c,
                    1.0,
                    p,
                    srcs,
                    &mut self.stencils[base + lin],
                );
            }
        }
    }

    /// Fetches `K_e` (borrowed from caching kernels, built otherwise) and
    /// emits the stencil products for the element at `base`.
    fn emit_elem(&mut self, base: usize, leaf: &Octant<DIM>, log: &mut OutLog, npe: usize) {
        let stencils = &self.stencils[base..base + npe];
        if let Some(ke) = self.kernel.matrix_ref(leaf) {
            emit_triplets(stencils, ke, npe, log);
        } else {
            let ke = self.kernel.matrix(leaf);
            emit_triplets(stencils, &ke, npe, log);
        }
    }
}

impl<const DIM: usize, K> LeafVisitor<DIM> for AssemblyVisitor<'_, DIM, K>
where
    K: AssemblyKernel<DIM>,
{
    fn leaf(
        &mut self,
        leaf: &Octant<DIM>,
        ctx: &mut Ctx<'_, DIM>,
        srcs: &mut Vec<([u64; DIM], f64)>,
        p: u64,
    ) {
        let npe = nodes_per_elem::<DIM>(p);
        self.gather_stencils(0, leaf, ctx, srcs, p);
        self.emit_elem(0, leaf, ctx.log, npe);
    }

    fn panel_width(&self) -> usize {
        if self.kernel.supports_panels() {
            usize::MAX
        } else {
            1
        }
    }

    fn panel_gather(
        &mut self,
        b: usize,
        _batch: usize,
        leaf: &Octant<DIM>,
        ctx: &mut Ctx<'_, DIM>,
        srcs: &mut Vec<([u64; DIM], f64)>,
        p: u64,
    ) {
        let npe = nodes_per_elem::<DIM>(p);
        self.gather_stencils(b * npe, leaf, ctx, srcs, p);
    }

    fn panel_apply(&mut self, _leaves: &[Octant<DIM>], _ctx: &mut Ctx<'_, DIM>, _p: u64) {
        // Nothing to batch here: the elemental matrices are emitted
        // per-leaf at scatter time (caching kernels make the fetch O(1)
        // within a same-level run).
    }

    fn panel_scatter(
        &mut self,
        b: usize,
        _batch: usize,
        leaf: &Octant<DIM>,
        ctx: &mut Ctx<'_, DIM>,
        _srcs: &mut Vec<([u64; DIM], f64)>,
        p: u64,
    ) {
        let npe = nodes_per_elem::<DIM>(p);
        self.emit_elem(b * npe, leaf, ctx.log, npe);
    }
}

// --- Public entry points: MATVEC ------------------------------------------

/// Applies the global operator `y += A x` matrix-free via octree traversal.
///
/// * `elems` — SFC-sorted leaf elements (owned + ghost in the distributed
///   case); `owned` restricts which leaves apply their elemental kernel.
/// * `kernel(e, u_e, v_e)` — the elemental operator (`v_e = K_e u_e`).
///
/// Convenience wrapper over [`traversal_matvec_ws`] with a throwaway
/// workspace; hot loops (Krylov iterations) should hold a
/// [`TraversalWorkspace`] and call the `_ws` / `_par` variants.
pub fn traversal_matvec<const DIM: usize, K>(
    elems: &[Octant<DIM>],
    owned: Range<usize>,
    curve: Curve,
    nodes: &NodeSet<DIM>,
    x: &[f64],
    y: &mut [f64],
    kernel: &mut K,
) where
    K: LeafKernel<DIM>,
{
    let mut ws = TraversalWorkspace::with_threads(1);
    traversal_matvec_ws(elems, owned, curve, nodes, x, y, &mut ws, kernel);
}

/// Sequential matvec reusing `ws`'s bucket arena across calls. Output is
/// bitwise identical to [`traversal_matvec_par`] at any thread count.
#[allow(clippy::too_many_arguments)]
pub fn traversal_matvec_ws<const DIM: usize, K>(
    elems: &[Octant<DIM>],
    owned: Range<usize>,
    curve: Curve,
    nodes: &NodeSet<DIM>,
    x: &[f64],
    y: &mut [f64],
    ws: &mut TraversalWorkspace<DIM>,
    kernel: &mut K,
) where
    K: LeafKernel<DIM>,
{
    assert_eq!(x.len(), nodes.len());
    assert_eq!(y.len(), nodes.len());
    if elems.is_empty() || owned.is_empty() {
        return;
    }
    let _obs = carve_obs::scope("matvec");
    let env = Env {
        elems,
        owned,
        curve,
        p: nodes.order,
        carry_values: true,
        carry_ids: false,
        batch: ws.batch_width,
    };
    let mut plan = build_spine(&env, ws.split_depth, matvec_root(ws, nodes, x), ws);
    carve_obs::counter("par_workers", 1);
    ws.ensure_scratch(1);
    {
        let SpinePlan { interior, tasks } = &mut plan;
        let scr = &mut ws.scratch[0];
        let mut vis = MatvecVisitor::new(kernel, nodes_per_elem::<DIM>(env.p));
        for t in tasks.iter_mut() {
            run_task(&env, t, interior, scr, &mut vis);
        }
    }
    finish_matvec(&mut plan, y);
    ws.release_plan(plan);
    ws.emit_arena_counters();
}

/// Fork-join matvec: subtree tasks are partitioned SFC-contiguously across
/// up to `ws.threads()` scoped workers, each building its kernel from
/// `make_kernel`. Deferred ancestor writes replay in SFC order at join, so
/// the output is **bitwise identical for any thread count** (and equal to
/// the sequential variants).
#[allow(clippy::too_many_arguments)]
pub fn traversal_matvec_par<const DIM: usize, K, F>(
    elems: &[Octant<DIM>],
    owned: Range<usize>,
    curve: Curve,
    nodes: &NodeSet<DIM>,
    x: &[f64],
    y: &mut [f64],
    ws: &mut TraversalWorkspace<DIM>,
    make_kernel: &F,
) where
    K: LeafKernel<DIM>,
    F: Fn() -> K + Sync,
{
    assert_eq!(x.len(), nodes.len());
    assert_eq!(y.len(), nodes.len());
    if elems.is_empty() || owned.is_empty() {
        return;
    }
    let _obs = carve_obs::scope("matvec");
    let env = Env {
        elems,
        owned,
        curve,
        p: nodes.order,
        carry_values: true,
        carry_ids: false,
        batch: ws.batch_width,
    };
    let npe = nodes_per_elem::<DIM>(env.p);
    let mut plan = build_spine(&env, ws.split_depth, matvec_root(ws, nodes, x), ws);
    let (chunk, n_workers) = chunking(plan.tasks.len(), ws.threads);
    carve_obs::counter("par_workers", n_workers as u64);
    ws.ensure_scratch(n_workers);
    {
        let SpinePlan { interior, tasks } = &mut plan;
        let interior: &[SpineNode<DIM>] = interior;
        if n_workers <= 1 {
            let scr = &mut ws.scratch[0];
            let mut kernel = make_kernel();
            let mut vis = MatvecVisitor::new(&mut kernel, npe);
            for t in tasks.iter_mut() {
                run_task(&env, t, interior, scr, &mut vis);
            }
        } else {
            let env = &env;
            let snaps: Vec<carve_obs::Snapshot> = std::thread::scope(|s| {
                let handles: Vec<_> = tasks
                    .chunks_mut(chunk)
                    .zip(ws.scratch.iter_mut())
                    .map(|(tchunk, scr)| {
                        s.spawn(move || {
                            carve_obs::detach_thread();
                            let mut kernel = make_kernel();
                            let mut vis = MatvecVisitor::new(&mut kernel, npe);
                            for t in tchunk.iter_mut() {
                                run_task(env, t, interior, scr, &mut vis);
                            }
                            carve_obs::thread_snapshot()
                        })
                    })
                    .collect();
                handles.into_iter().map(join_worker).collect()
            });
            for snap in &snaps {
                carve_obs::absorb_rebased(snap);
            }
        }
    }
    finish_matvec(&mut plan, y);
    ws.release_plan(plan);
    ws.emit_arena_counters();
}

/// True iff any *owned* element in the task's range touches a ghost node
/// (per the caller's element classification): such a task must not run
/// until the ghost exchange has landed.
fn task_touches_ghosts<const DIM: usize>(
    t: &Task<DIM>,
    owned: &Range<usize>,
    boundary_elem: &[bool],
) -> bool {
    let lo = t.range.start.max(owned.start);
    let hi = t.range.end.min(owned.end);
    lo < hi && boundary_elem[lo..hi].iter().any(|&b| b)
}

/// Re-seeds the input values (`vin`) of the spine buckets and the flagged
/// boundary-task base buckets from the now-complete ghosted vector `xg`,
/// walking the spine in pre-order (parents precede children by
/// construction). Only `vin` is touched: interior tasks have already run
/// and their pending output lives in `vout`s and scatter logs, which this
/// pass never reads or writes — so the subsequent boundary sweep + ordered
/// join reproduce the sequential result bit for bit.
fn refresh_vin<const DIM: usize>(plan: &mut SpinePlan<DIM>, xg: &[f64], flags: &[bool]) {
    if plan.interior.is_empty() {
        // Degenerate single-root-element plan: the lone task IS the root
        // bucket, seeded directly from the input vector.
        if flags[0] {
            plan.tasks[0].bucket.vin.copy_from_slice(xg);
        }
        return;
    }
    plan.interior[0].bucket.vin.copy_from_slice(xg);
    for node in 0..plan.interior.len() {
        let kids = std::mem::take(&mut plan.interior[node].kids);
        for k in &kids {
            match *k {
                SpineChild::Interior(ci) => {
                    let mut b = std::mem::take(&mut plan.interior[ci as usize].bucket);
                    let pb = &plan.interior[node].bucket;
                    for (i, &ps) in b.parent_slot.iter().enumerate() {
                        b.vin[i] = pb.vin[ps as usize];
                    }
                    plan.interior[ci as usize].bucket = b;
                }
                SpineChild::Task(ti) => {
                    if !flags[ti as usize] {
                        continue;
                    }
                    let SpinePlan { interior, tasks } = plan;
                    let t = &mut tasks[ti as usize];
                    let pb = &interior[node].bucket;
                    for (i, &ps) in t.bucket.parent_slot.iter().enumerate() {
                        t.bucket.vin[i] = pb.vin[ps as usize];
                    }
                }
            }
        }
        plan.interior[node].kids = kids;
    }
}

/// Sequential overlapped-exchange matvec (§3.5). The caller has already
/// *posted* the nonblocking ghost-read of `xg`'s owned entries; this
/// traversal runs every interior task (owned elements whose stencil closure
/// is rank-local) against the stale vector, then calls `wait` — under a
/// `ghost_wait` sub-phase — to complete the exchange into `xg`, re-seeds
/// the spine and boundary-task `vin`s (`refresh_vin`), and only then
/// runs the boundary tasks. The ordered join is unchanged, so the result
/// is bitwise identical to [`traversal_matvec_ws`] on the post-exchange
/// vector.
///
/// `wait` is invoked exactly once on every path, including empty-owned
/// ranks — it carries the exchange's collective tag discipline.
#[allow(clippy::too_many_arguments)]
pub fn traversal_matvec_overlap_ws<const DIM: usize, K, W>(
    elems: &[Octant<DIM>],
    owned: Range<usize>,
    curve: Curve,
    nodes: &NodeSet<DIM>,
    xg: &mut [f64],
    y: &mut [f64],
    ws: &mut TraversalWorkspace<DIM>,
    boundary_elem: &[bool],
    wait: W,
    kernel: &mut K,
) where
    K: LeafKernel<DIM>,
    W: FnOnce(&mut [f64]),
{
    assert_eq!(xg.len(), nodes.len());
    assert_eq!(y.len(), nodes.len());
    assert_eq!(boundary_elem.len(), elems.len());
    let _obs = carve_obs::scope("matvec");
    if elems.is_empty() || owned.is_empty() {
        let _w = carve_obs::scope("ghost_wait");
        wait(xg);
        return;
    }
    let env = Env {
        elems,
        owned,
        curve,
        p: nodes.order,
        carry_values: true,
        carry_ids: false,
        batch: ws.batch_width,
    };
    let mut plan = build_spine(&env, ws.split_depth, matvec_root(ws, nodes, xg), ws);
    let mut flags = std::mem::take(&mut ws.task_flags);
    flags.clear();
    flags.extend(
        plan.tasks
            .iter()
            .map(|t| task_touches_ghosts(t, &env.owned, boundary_elem)),
    );
    carve_obs::counter("par_workers", 1);
    ws.ensure_scratch(1);
    {
        let SpinePlan { interior, tasks } = &mut plan;
        let interior: &[SpineNode<DIM>] = interior;
        let scr = &mut ws.scratch[0];
        let mut vis = MatvecVisitor::new(kernel, nodes_per_elem::<DIM>(env.p));
        for (t, _) in tasks.iter_mut().zip(&flags).filter(|(_, b)| !**b) {
            run_task(&env, t, interior, scr, &mut vis);
        }
    }
    {
        let _w = carve_obs::scope("ghost_wait");
        wait(xg);
    }
    refresh_vin(&mut plan, xg, &flags);
    {
        let SpinePlan { interior, tasks } = &mut plan;
        let interior: &[SpineNode<DIM>] = interior;
        let scr = &mut ws.scratch[0];
        let mut vis = MatvecVisitor::new(kernel, nodes_per_elem::<DIM>(env.p));
        for (t, _) in tasks.iter_mut().zip(&flags).filter(|(_, b)| **b) {
            run_task(&env, t, interior, scr, &mut vis);
        }
    }
    ws.task_flags = flags;
    finish_matvec(&mut plan, y);
    ws.release_plan(plan);
    ws.emit_arena_counters();
}

/// Fork-join overlapped-exchange matvec: like
/// [`traversal_matvec_overlap_ws`], but the interior tasks run on scoped
/// workers *while the main thread blocks on the ghost exchange* (the
/// communicator is single-threaded by design, so the wait stays on the
/// spawning thread — which is exactly what gives the overlap), and the
/// boundary tasks fork again after the refresh. Bitwise identical to every
/// other matvec variant at any thread count.
#[allow(clippy::too_many_arguments)]
pub fn traversal_matvec_overlap_par<const DIM: usize, K, F, W>(
    elems: &[Octant<DIM>],
    owned: Range<usize>,
    curve: Curve,
    nodes: &NodeSet<DIM>,
    xg: &mut [f64],
    y: &mut [f64],
    ws: &mut TraversalWorkspace<DIM>,
    boundary_elem: &[bool],
    wait: W,
    make_kernel: &F,
) where
    K: LeafKernel<DIM>,
    F: Fn() -> K + Sync,
    W: FnOnce(&mut [f64]),
{
    assert_eq!(xg.len(), nodes.len());
    assert_eq!(y.len(), nodes.len());
    assert_eq!(boundary_elem.len(), elems.len());
    let _obs = carve_obs::scope("matvec");
    if elems.is_empty() || owned.is_empty() {
        let _w = carve_obs::scope("ghost_wait");
        wait(xg);
        return;
    }
    let env = Env {
        elems,
        owned,
        curve,
        p: nodes.order,
        carry_values: true,
        carry_ids: false,
        batch: ws.batch_width,
    };
    let npe = nodes_per_elem::<DIM>(env.p);
    let mut plan = build_spine(&env, ws.split_depth, matvec_root(ws, nodes, xg), ws);
    let mut flags = std::mem::take(&mut ws.task_flags);
    flags.clear();
    flags.extend(
        plan.tasks
            .iter()
            .map(|t| task_touches_ghosts(t, &env.owned, boundary_elem)),
    );
    let n_interior = flags.iter().filter(|&&b| !b).count();
    let n_boundary = flags.len() - n_interior;
    let n_workers = chunking(n_interior.max(1), ws.threads)
        .1
        .max(chunking(n_boundary.max(1), ws.threads).1);
    carve_obs::counter("par_workers", n_workers as u64);
    ws.ensure_scratch(n_workers);
    {
        let SpinePlan { interior, tasks } = &mut plan;
        let interior: &[SpineNode<DIM>] = interior;
        let mut intr: Vec<&mut Task<DIM>> = tasks
            .iter_mut()
            .zip(&flags)
            .filter(|(_, b)| !**b)
            .map(|(t, _)| t)
            .collect();
        let (chunk, nw) = chunking(intr.len(), ws.threads);
        if intr.is_empty() || nw <= 1 {
            if !intr.is_empty() {
                let scr = &mut ws.scratch[0];
                let mut kernel = make_kernel();
                let mut vis = MatvecVisitor::new(&mut kernel, npe);
                for t in intr.iter_mut() {
                    run_task(&env, t, interior, scr, &mut vis);
                }
            }
            let _w = carve_obs::scope("ghost_wait");
            wait(xg);
        } else {
            let env = &env;
            let snaps: Vec<carve_obs::Snapshot> = std::thread::scope(|s| {
                let handles: Vec<_> = intr
                    .chunks_mut(chunk)
                    .zip(ws.scratch.iter_mut())
                    .map(|(tchunk, scr)| {
                        s.spawn(move || {
                            carve_obs::detach_thread();
                            let mut kernel = make_kernel();
                            let mut vis = MatvecVisitor::new(&mut kernel, npe);
                            for t in tchunk.iter_mut() {
                                run_task(env, t, interior, scr, &mut vis);
                            }
                            carve_obs::thread_snapshot()
                        })
                    })
                    .collect();
                // The workers chew on interior subtrees while this thread
                // blocks on the ghost payloads: this is the overlap window.
                {
                    let _w = carve_obs::scope("ghost_wait");
                    wait(xg);
                }
                handles.into_iter().map(join_worker).collect()
            });
            for snap in &snaps {
                carve_obs::absorb_rebased(snap);
            }
        }
    }
    refresh_vin(&mut plan, xg, &flags);
    {
        let SpinePlan { interior, tasks } = &mut plan;
        let interior: &[SpineNode<DIM>] = interior;
        let mut bnd: Vec<&mut Task<DIM>> = tasks
            .iter_mut()
            .zip(&flags)
            .filter(|(_, b)| **b)
            .map(|(t, _)| t)
            .collect();
        let (chunk, nw) = chunking(bnd.len(), ws.threads);
        if !bnd.is_empty() {
            if nw <= 1 {
                let scr = &mut ws.scratch[0];
                let mut kernel = make_kernel();
                let mut vis = MatvecVisitor::new(&mut kernel, npe);
                for t in bnd.iter_mut() {
                    run_task(&env, t, interior, scr, &mut vis);
                }
            } else {
                let env = &env;
                let snaps: Vec<carve_obs::Snapshot> = std::thread::scope(|s| {
                    let handles: Vec<_> = bnd
                        .chunks_mut(chunk)
                        .zip(ws.scratch.iter_mut())
                        .map(|(tchunk, scr)| {
                            s.spawn(move || {
                                carve_obs::detach_thread();
                                let mut kernel = make_kernel();
                                let mut vis = MatvecVisitor::new(&mut kernel, npe);
                                for t in tchunk.iter_mut() {
                                    run_task(env, t, interior, scr, &mut vis);
                                }
                                carve_obs::thread_snapshot()
                            })
                        })
                        .collect();
                    handles.into_iter().map(join_worker).collect()
                });
                for snap in &snaps {
                    carve_obs::absorb_rebased(snap);
                }
            }
        }
    }
    ws.task_flags = flags;
    finish_matvec(&mut plan, y);
    ws.release_plan(plan);
    ws.emit_arena_counters();
}

/// Seeds the root bucket (full node set + input vector) from the arena.
fn matvec_root<const DIM: usize>(
    ws: &mut TraversalWorkspace<DIM>,
    nodes: &NodeSet<DIM>,
    x: &[f64],
) -> Bucket<DIM> {
    let mut root = ws.acquire_bucket();
    root.coords.extend_from_slice(&nodes.coords);
    root.vin.extend_from_slice(x);
    root.vout.resize(nodes.len(), 0.0);
    root
}

/// Contiguous chunk size and worker count for `n_tasks` under `budget`.
fn chunking(n_tasks: usize, budget: usize) -> (usize, usize) {
    let workers = par::worker_count(n_tasks, budget);
    let chunk = n_tasks.div_ceil(workers).max(1);
    (chunk, n_tasks.div_ceil(chunk).max(1))
}

fn join_worker<T>(h: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match h.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn finish_matvec<const DIM: usize>(plan: &mut SpinePlan<DIM>, y: &mut [f64]) {
    join_spine(plan);
    let root_vout = if plan.interior.is_empty() {
        &plan.tasks[0].bucket.vout
    } else {
        &plan.interior[0].bucket.vout
    };
    for (yi, vo) in y.iter_mut().zip(root_vout) {
        *yi += vo;
    }
}

// --- Public entry points: assembly ----------------------------------------

/// Assembles the global sparse matrix via octree traversal (§3.6): node
/// *ids* are bucketed instead of values; at each leaf the elemental matrix
/// entries are emitted with global indices (duplicates merge by addition in
/// the builder, the PETSc `ADD_VALUES` contract). No bottom-up phase.
///
/// Convenience wrapper over [`traversal_assemble_ws`].
pub fn traversal_assemble<const DIM: usize, K>(
    elems: &[Octant<DIM>],
    owned: Range<usize>,
    curve: Curve,
    nodes: &NodeSet<DIM>,
    global_ids: &[u32],
    coo: &mut CooBuilder,
    kernel: &mut K,
) where
    K: AssemblyKernel<DIM>,
{
    let mut ws = TraversalWorkspace::with_threads(1);
    traversal_assemble_ws(elems, owned, curve, nodes, global_ids, coo, &mut ws, kernel);
}

/// Sequential assembly reusing `ws`'s arena.
#[allow(clippy::too_many_arguments)]
pub fn traversal_assemble_ws<const DIM: usize, K>(
    elems: &[Octant<DIM>],
    owned: Range<usize>,
    curve: Curve,
    nodes: &NodeSet<DIM>,
    global_ids: &[u32],
    coo: &mut CooBuilder,
    ws: &mut TraversalWorkspace<DIM>,
    kernel: &mut K,
) where
    K: AssemblyKernel<DIM>,
{
    assert_eq!(global_ids.len(), nodes.len());
    if elems.is_empty() || owned.is_empty() {
        return;
    }
    let _obs = carve_obs::scope("assemble");
    let env = Env {
        elems,
        owned,
        curve,
        p: nodes.order,
        carry_values: false,
        carry_ids: true,
        batch: ws.batch_width,
    };
    let npe = nodes_per_elem::<DIM>(env.p);
    let mut plan = build_spine(
        &env,
        ws.split_depth,
        assemble_root(ws, nodes, global_ids),
        ws,
    );
    carve_obs::counter("par_workers", 1);
    ws.ensure_scratch(1);
    reserve_triplets(&env, npe, coo);
    {
        let SpinePlan { interior, tasks } = &mut plan;
        let scr = &mut ws.scratch[0];
        let mut vis = AssemblyVisitor::new(kernel, npe);
        for t in tasks.iter_mut() {
            run_task(&env, t, interior, scr, &mut vis);
            drain_log(&mut t.out_log, coo);
        }
    }
    ws.release_plan(plan);
    ws.emit_arena_counters();
}

/// Fork-join assembly; per-task triplet buffers are concatenated in SFC
/// task order, so the emitted triplet sequence — and hence the built CSR —
/// is identical for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn traversal_assemble_par<const DIM: usize, K, F>(
    elems: &[Octant<DIM>],
    owned: Range<usize>,
    curve: Curve,
    nodes: &NodeSet<DIM>,
    global_ids: &[u32],
    coo: &mut CooBuilder,
    ws: &mut TraversalWorkspace<DIM>,
    make_kernel: &F,
) where
    K: AssemblyKernel<DIM>,
    F: Fn() -> K + Sync,
{
    assert_eq!(global_ids.len(), nodes.len());
    if elems.is_empty() || owned.is_empty() {
        return;
    }
    let _obs = carve_obs::scope("assemble");
    let env = Env {
        elems,
        owned,
        curve,
        p: nodes.order,
        carry_values: false,
        carry_ids: true,
        batch: ws.batch_width,
    };
    let npe = nodes_per_elem::<DIM>(env.p);
    let mut plan = build_spine(
        &env,
        ws.split_depth,
        assemble_root(ws, nodes, global_ids),
        ws,
    );
    let (chunk, n_workers) = chunking(plan.tasks.len(), ws.threads);
    carve_obs::counter("par_workers", n_workers as u64);
    ws.ensure_scratch(n_workers);
    reserve_triplets(&env, npe, coo);
    {
        let SpinePlan { interior, tasks } = &mut plan;
        let interior: &[SpineNode<DIM>] = interior;
        if n_workers <= 1 {
            let scr = &mut ws.scratch[0];
            let mut kernel = make_kernel();
            let mut vis = AssemblyVisitor::new(&mut kernel, npe);
            for t in tasks.iter_mut() {
                run_task(&env, t, interior, scr, &mut vis);
                drain_log(&mut t.out_log, coo);
            }
        } else {
            let env = &env;
            let snaps: Vec<carve_obs::Snapshot> = std::thread::scope(|s| {
                let handles: Vec<_> = tasks
                    .chunks_mut(chunk)
                    .zip(ws.scratch.iter_mut())
                    .map(|(tchunk, scr)| {
                        s.spawn(move || {
                            carve_obs::detach_thread();
                            let mut kernel = make_kernel();
                            let mut vis = AssemblyVisitor::new(&mut kernel, npe);
                            for t in tchunk.iter_mut() {
                                run_task(env, t, interior, scr, &mut vis);
                            }
                            carve_obs::thread_snapshot()
                        })
                    })
                    .collect();
                handles.into_iter().map(join_worker).collect()
            });
            for snap in &snaps {
                carve_obs::absorb_rebased(snap);
            }
            for t in tasks.iter_mut() {
                drain_log(&mut t.out_log, coo);
            }
        }
    }
    ws.release_plan(plan);
    ws.emit_arena_counters();
}

/// Seeds the root bucket (full node set + global ids) from the arena.
fn assemble_root<const DIM: usize>(
    ws: &mut TraversalWorkspace<DIM>,
    nodes: &NodeSet<DIM>,
    global_ids: &[u32],
) -> Bucket<DIM> {
    let mut root = ws.acquire_bucket();
    root.coords.extend_from_slice(&nodes.coords);
    root.ids.extend_from_slice(global_ids);
    root
}

/// Capacity hint for the assembled triplet stream: `owned leaves × npe²`.
fn reserve_triplets<const DIM: usize>(env: &Env<'_, DIM>, npe: usize, coo: &mut CooBuilder) {
    let owned_leaves = env
        .owned
        .end
        .min(env.elems.len())
        .saturating_sub(env.owned.start);
    coo.reserve(owned_leaves * npe * npe);
}

/// Moves one task's triplet buffer into the builder. Sequential paths call
/// this right after the task runs, while its log is still cache-hot; the
/// threaded path drains all logs afterwards in SFC task order. Either way
/// the builder sees the identical triplet sequence.
fn drain_log(log: &mut OutLog, coo: &mut CooBuilder) {
    for &(ri, cj, v) in log.iter() {
        coo.add(ri as usize, cj as usize, v);
    }
    log.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::construct_balanced;
    use crate::construct::{construct_boundary_refined, construct_uniform};
    use crate::nodes::enumerate_nodes;
    use carve_geom::{CarvedSolids, FullDomain, Sphere, Subdomain};
    use rand::{Rng, SeedableRng};

    /// A simple symmetric elemental "mass-like" kernel: K_e = h^DIM *
    /// (I + ones/npe), giving a well-defined global SPD operator.
    fn toy_kernel<const DIM: usize>(_p: u64) -> impl FnMut(&Octant<DIM>, &[f64], &mut [f64]) {
        move |e: &Octant<DIM>, u: &[f64], v: &mut [f64]| {
            let h = e.bounds_unit().1;
            let scale = h.powi(DIM as i32);
            let npe = u.len();
            let sum: f64 = u.iter().sum();
            for i in 0..npe {
                v[i] = scale * (u[i] + sum / npe as f64);
            }
        }
    }

    fn toy_matrix<const DIM: usize>(p: u64) -> impl FnMut(&Octant<DIM>) -> DenseMatrix {
        move |e: &Octant<DIM>| {
            let h = e.bounds_unit().1;
            let scale = h.powi(DIM as i32);
            let npe = nodes_per_elem::<DIM>(p);
            let mut m = DenseMatrix::zeros(npe, npe);
            for i in 0..npe {
                for j in 0..npe {
                    m[(i, j)] = scale * (if i == j { 1.0 } else { 0.0 } + 1.0 / npe as f64);
                }
            }
            m
        }
    }

    fn matvec_equals_assembled<const DIM: usize>(
        domain: &dyn Subdomain<DIM>,
        elems: &[Octant<DIM>],
        p: u64,
        curve: Curve,
        seed: u64,
    ) {
        let nodes = enumerate_nodes(domain, elems, p);
        let n = nodes.len();
        assert!(n > 0);
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut coo = CooBuilder::new(n);
        traversal_assemble(
            elems,
            0..elems.len(),
            curve,
            &nodes,
            &ids,
            &mut coo,
            &mut toy_matrix::<DIM>(p),
        );
        let a = coo.build();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..3 {
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut y_mf = vec![0.0; n];
            traversal_matvec(
                elems,
                0..elems.len(),
                curve,
                &nodes,
                &x,
                &mut y_mf,
                &mut toy_kernel::<DIM>(p),
            );
            let mut y_as = vec![0.0; n];
            a.matvec(&x, &mut y_as);
            for (i, (a, b)) in y_mf.iter().zip(&y_as).enumerate() {
                assert!(
                    (a - b).abs() < 1e-11 * (1.0 + b.abs()),
                    "mismatch at node {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn matvec_matches_assembly_uniform_2d() {
        for p in [1u64, 2] {
            for curve in [Curve::Morton, Curve::Hilbert] {
                let elems = construct_uniform::<2>(&FullDomain, curve, 3);
                matvec_equals_assembled(&FullDomain, &elems, p, curve, 1);
            }
        }
    }

    #[test]
    fn matvec_matches_assembly_adaptive_carved_2d() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))]);
        for p in [1u64, 2] {
            for curve in [Curve::Morton, Curve::Hilbert] {
                let t = construct_boundary_refined(&domain, curve, 2, 5);
                let elems = construct_balanced(&domain, curve, &t);
                matvec_equals_assembled(&domain, &elems, p, curve, 7);
            }
        }
    }

    #[test]
    fn matvec_matches_assembly_adaptive_3d() {
        let domain = CarvedSolids::<3>::new(vec![Box::new(Sphere::new([0.5; 3], 0.3))]);
        for p in [1u64, 2] {
            let t = construct_boundary_refined(&domain, Curve::Hilbert, 2, 4);
            let elems = construct_balanced(&domain, Curve::Hilbert, &t);
            matvec_equals_assembled(&domain, &elems, p, Curve::Hilbert, 11);
        }
    }

    #[test]
    fn hanging_interpolation_preserves_constants() {
        // For a partition-of-unity kernel (mass-like), A·1 must equal the
        // row sums of the assembled matrix — and more fundamentally, the
        // hanging interpolation of a constant vector is the same constant.
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.3, 0.6], 0.2))]);
        let t = construct_boundary_refined(&domain, Curve::Morton, 2, 5);
        let elems = construct_balanced(&domain, Curve::Morton, &t);
        let nodes = enumerate_nodes(&domain, &elems, 1);
        let n = nodes.len();
        let ones = vec![1.0; n];
        let mut y = vec![0.0; n];
        // Kernel returning the input (identity on elemental nodes): the
        // output at each node is then Σ_elems (interp weights), and for a
        // constant input every elemental value must be exactly 1.
        let mut probe = |_e: &Octant<2>, u: &[f64], v: &mut [f64]| {
            for ui in u {
                assert!((ui - 1.0).abs() < 1e-13, "hanging interp broke constants");
            }
            v.copy_from_slice(u);
        };
        traversal_matvec(
            &elems,
            0..elems.len(),
            Curve::Morton,
            &nodes,
            &ones,
            &mut y,
            &mut probe,
        );
    }

    #[test]
    fn owned_subrange_sums_to_full() {
        // Splitting the element list into owned ranges and summing the
        // partial MATVECs must reproduce the full MATVEC (the distributed
        // decomposition property).
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.25))]);
        let t = construct_boundary_refined(&domain, Curve::Hilbert, 2, 4);
        let elems = construct_balanced(&domain, Curve::Hilbert, &t);
        let nodes = enumerate_nodes(&domain, &elems, 2);
        let n = nodes.len();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y_full = vec![0.0; n];
        traversal_matvec(
            &elems,
            0..elems.len(),
            Curve::Hilbert,
            &nodes,
            &x,
            &mut y_full,
            &mut toy_kernel::<2>(2),
        );
        let mid = elems.len() / 3;
        let mut y_parts = vec![0.0; n];
        for range in [0..mid, mid..elems.len()] {
            traversal_matvec(
                &elems,
                range,
                Curve::Hilbert,
                &nodes,
                &x,
                &mut y_parts,
                &mut toy_kernel::<2>(2),
            );
        }
        for (a, b) in y_full.iter().zip(&y_parts) {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn obs_phases_are_populated() {
        let _e = carve_obs::force_enabled();
        let elems = construct_uniform::<2>(&FullDomain, Curve::Morton, 4);
        let nodes = enumerate_nodes(&FullDomain, &elems, 1);
        let n = nodes.len();
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        let before = carve_obs::thread_snapshot();
        traversal_matvec(
            &elems,
            0..elems.len(),
            Curve::Morton,
            &nodes,
            &x,
            &mut y,
            &mut toy_kernel::<2>(1),
        );
        let d = carve_obs::thread_snapshot().diff(&before);
        let leaf = &d.phases["matvec/leaf"];
        assert_eq!(leaf.calls, elems.len() as u64);
        assert_eq!(leaf.counters["leaves"], elems.len() as u64);
        assert!(leaf.counters["slot_sweep_hits"] > 0);
        let td = &d.phases["matvec/top_down"];
        assert!(td.counters["node_copies"] > 0);
        assert_eq!(d.phases["matvec"].calls, 1);
        assert_eq!(d.phases["matvec"].counters["par_workers"], 1);
        assert!(d.phases["matvec"].counters["arena_alloc"] > 0);
        assert!(d.phases.contains_key("matvec/bottom_up"));
    }

    #[test]
    fn matvec_bitwise_identical_across_thread_counts() {
        // The ISSUE's determinism property: an adaptive carved 3D mesh,
        // p ∈ {1, 2}, CARVE_PAR_THREADS ∈ {1, 2, 8} — outputs must agree
        // bit for bit, with each other AND with the legacy sequential
        // entry point, including on workspace reuse.
        let domain = CarvedSolids::<3>::new(vec![Box::new(Sphere::new([0.5; 3], 0.3))]);
        let t = construct_boundary_refined(&domain, Curve::Hilbert, 2, 4);
        let elems = construct_balanced(&domain, Curve::Hilbert, &t);
        for p in [1u64, 2] {
            let nodes = enumerate_nodes(&domain, &elems, p);
            let n = nodes.len();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17 + p);
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut y_ref = vec![0.0; n];
            traversal_matvec(
                &elems,
                0..elems.len(),
                Curve::Hilbert,
                &nodes,
                &x,
                &mut y_ref,
                &mut toy_kernel::<3>(p),
            );
            for threads in [1usize, 2, 8] {
                let mut ws = TraversalWorkspace::with_threads(threads);
                for round in 0..2 {
                    let mut y = vec![0.0; n];
                    traversal_matvec_par(
                        &elems,
                        0..elems.len(),
                        Curve::Hilbert,
                        &nodes,
                        &x,
                        &mut y,
                        &mut ws,
                        &|| toy_kernel::<3>(p),
                    );
                    for (i, (a, b)) in y_ref.iter().zip(&y).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "threads={threads} p={p} round={round} node {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn assembly_identical_across_thread_counts() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))]);
        let t = construct_boundary_refined(&domain, Curve::Hilbert, 2, 4);
        let elems = construct_balanced(&domain, Curve::Hilbert, &t);
        let p = 2u64;
        let nodes = enumerate_nodes(&domain, &elems, p);
        let n = nodes.len();
        let ids: Vec<u32> = (0..n as u32).collect();
        let build = |threads: usize| {
            let mut ws = TraversalWorkspace::with_threads(threads);
            let mut coo = CooBuilder::new(n);
            traversal_assemble_par(
                &elems,
                0..elems.len(),
                Curve::Hilbert,
                &nodes,
                &ids,
                &mut coo,
                &mut ws,
                &|| toy_matrix::<2>(p),
            );
            coo.build()
        };
        let a1 = build(1);
        for threads in [2usize, 8] {
            let at = build(threads);
            assert_eq!(a1.row_ptr, at.row_ptr, "threads={threads}");
            assert_eq!(a1.cols, at.cols, "threads={threads}");
            assert_eq!(a1.vals.len(), at.vals.len());
            for (i, (v1, vt)) in a1.vals.iter().zip(&at.vals).enumerate() {
                assert_eq!(v1.to_bits(), vt.to_bits(), "threads={threads} nz {i}");
            }
        }
    }

    /// Panel-capable twin of [`toy_kernel`]: the scalar apply is the same
    /// code, and the panel apply performs each element's additions in the
    /// same order over the SoA layout — so batched and scalar traversals
    /// must agree bit for bit.
    struct ToyBatchKernel<const DIM: usize>;

    impl<const DIM: usize> LeafKernel<DIM> for ToyBatchKernel<DIM> {
        fn apply(&mut self, e: &Octant<DIM>, u: &[f64], v: &mut [f64]) {
            let h = e.bounds_unit().1;
            let scale = h.powi(DIM as i32);
            let npe = u.len();
            let sum: f64 = u.iter().sum();
            for i in 0..npe {
                v[i] = scale * (u[i] + sum / npe as f64);
            }
        }

        fn supports_panels(&self) -> bool {
            true
        }

        fn apply_panel(&mut self, elems: &[Octant<DIM>], u: &[f64], v: &mut [f64]) {
            let batch = elems.len();
            let npe = u.len() / batch;
            let h = elems[0].bounds_unit().1;
            let scale = h.powi(DIM as i32);
            for b in 0..batch {
                let mut sum = 0.0;
                for lin in 0..npe {
                    sum += u[lin * batch + b];
                }
                for lin in 0..npe {
                    v[lin * batch + b] = scale * (u[lin * batch + b] + sum / npe as f64);
                }
            }
        }
    }

    /// Panel-capable twin of [`toy_matrix`] with a per-level matrix cache
    /// (the toy matrix depends on the octant only through `h`, i.e. level).
    struct ToyBatchMatrix<const DIM: usize> {
        p: u64,
        levels: Vec<Option<DenseMatrix>>,
    }

    impl<const DIM: usize> ToyBatchMatrix<DIM> {
        fn new(p: u64) -> Self {
            Self {
                p,
                levels: vec![None; carve_sfc::MAX_LEVEL as usize + 1],
            }
        }
    }

    impl<const DIM: usize> AssemblyKernel<DIM> for ToyBatchMatrix<DIM> {
        fn matrix(&mut self, e: &Octant<DIM>) -> DenseMatrix {
            toy_matrix::<DIM>(self.p)(e)
        }

        fn matrix_ref(&mut self, e: &Octant<DIM>) -> Option<&DenseMatrix> {
            let slot = &mut self.levels[e.level as usize];
            if slot.is_none() {
                *slot = Some(toy_matrix::<DIM>(self.p)(e));
            }
            slot.as_ref()
        }

        fn supports_panels(&self) -> bool {
            true
        }
    }

    fn check_batched_matvec_matrix<const DIM: usize>(domain: &dyn Subdomain<DIM>, seed: u64) {
        let t = construct_boundary_refined(domain, Curve::Hilbert, 2, 4);
        let elems = construct_balanced(domain, Curve::Hilbert, &t);
        // Node enumeration supports orders 1 and 2; p = 3 panel coverage
        // lives in carve-fem's batched-apply tests.
        for p in [1u64, 2] {
            let nodes = enumerate_nodes(domain, &elems, p);
            let n = nodes.len();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed + p);
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut y_ref = vec![0.0; n];
            traversal_matvec(
                &elems,
                0..elems.len(),
                Curve::Hilbert,
                &nodes,
                &x,
                &mut y_ref,
                &mut toy_kernel::<DIM>(p),
            );
            for threads in [1usize, 2, 8] {
                for width in [1usize, 2, 3, 4, 8] {
                    let mut ws = TraversalWorkspace::with_threads(threads).with_batch_width(width);
                    for round in 0..2 {
                        let mut y = vec![0.0; n];
                        traversal_matvec_par(
                            &elems,
                            0..elems.len(),
                            Curve::Hilbert,
                            &nodes,
                            &x,
                            &mut y,
                            &mut ws,
                            &|| ToyBatchKernel::<DIM>,
                        );
                        for (i, (a, b)) in y_ref.iter().zip(&y).enumerate() {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "DIM={DIM} p={p} threads={threads} width={width} \
                                 round={round} node {i}: {a} vs {b}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batched_matvec_bitwise_matches_scalar_2d() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))]);
        check_batched_matvec_matrix(&domain, 23);
    }

    #[test]
    fn batched_matvec_bitwise_matches_scalar_3d() {
        let domain = CarvedSolids::<3>::new(vec![Box::new(Sphere::new([0.5; 3], 0.3))]);
        check_batched_matvec_matrix(&domain, 31);
    }

    #[test]
    fn batched_assembly_bitwise_matches_scalar() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))]);
        let t = construct_boundary_refined(&domain, Curve::Hilbert, 2, 4);
        let elems = construct_balanced(&domain, Curve::Hilbert, &t);
        for p in [1u64, 2] {
            let nodes = enumerate_nodes(&domain, &elems, p);
            let n = nodes.len();
            let ids: Vec<u32> = (0..n as u32).collect();
            let mut coo = CooBuilder::new(n);
            traversal_assemble(
                &elems,
                0..elems.len(),
                Curve::Hilbert,
                &nodes,
                &ids,
                &mut coo,
                &mut toy_matrix::<2>(p),
            );
            let a_ref = coo.build();
            for threads in [1usize, 2, 8] {
                for width in [1usize, 4, 8] {
                    let mut ws = TraversalWorkspace::with_threads(threads).with_batch_width(width);
                    let mut coo = CooBuilder::new(n);
                    traversal_assemble_par(
                        &elems,
                        0..elems.len(),
                        Curve::Hilbert,
                        &nodes,
                        &ids,
                        &mut coo,
                        &mut ws,
                        &|| ToyBatchMatrix::<2>::new(p),
                    );
                    let a = coo.build();
                    assert_eq!(a_ref.row_ptr, a.row_ptr, "p={p} threads={threads}");
                    assert_eq!(a_ref.cols, a.cols, "p={p} threads={threads}");
                    for (i, (v1, v2)) in a_ref.vals.iter().zip(&a.vals).enumerate() {
                        assert_eq!(
                            v1.to_bits(),
                            v2.to_bits(),
                            "p={p} threads={threads} width={width} nz {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_counters_reconcile_with_leaf_total() {
        // On a uniform mesh with panels enabled, most leaves batch; the
        // batched/scalar split must account for every leaf exactly, and
        // disabling panels (width 1) must route everything scalar.
        let _e = carve_obs::force_enabled();
        let elems = construct_uniform::<2>(&FullDomain, Curve::Hilbert, 4);
        let nodes = enumerate_nodes(&FullDomain, &elems, 1);
        let n = nodes.len();
        let x = vec![1.0; n];
        let run = |width: usize| {
            let mut ws = TraversalWorkspace::with_threads(1).with_batch_width(width);
            let before = carve_obs::thread_snapshot();
            let mut y = vec![0.0; n];
            traversal_matvec_par(
                &elems,
                0..elems.len(),
                Curve::Hilbert,
                &nodes,
                &x,
                &mut y,
                &mut ws,
                &|| ToyBatchKernel::<2>,
            );
            carve_obs::thread_snapshot().diff(&before)
        };
        let d = run(4);
        let leaf = &d.phases["matvec/leaf"].counters;
        assert!(leaf["batched_leaves"] > 0, "no panels fired: {leaf:?}");
        assert!(leaf["batch_count"] > 0);
        assert_eq!(
            leaf["batched_leaves"] + leaf.get("scalar_leaves").copied().unwrap_or(0),
            leaf["leaves"],
            "batched + scalar must cover every leaf: {leaf:?}"
        );
        let d1 = run(1);
        let leaf1 = &d1.phases["matvec/leaf"].counters;
        assert!(!leaf1.contains_key("batched_leaves"), "{leaf1:?}");
        assert_eq!(leaf1["scalar_leaves"], leaf1["leaves"]);
    }

    #[test]
    fn workspace_reuse_allocates_no_new_buckets() {
        // Two consecutive matvecs through one workspace: the second must be
        // served entirely from the arena (`arena_alloc` absent, only
        // `arena_reuse`), for both the sequential and fork-join paths.
        let _e = carve_obs::force_enabled();
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))]);
        let t = construct_boundary_refined(&domain, Curve::Hilbert, 2, 4);
        let elems = construct_balanced(&domain, Curve::Hilbert, &t);
        let nodes = enumerate_nodes(&domain, &elems, 1);
        let n = nodes.len();
        let x = vec![1.0; n];
        for threads in [1usize, 4] {
            let mut ws = TraversalWorkspace::with_threads(threads);
            let run = |ws: &mut TraversalWorkspace<2>| {
                let before = carve_obs::thread_snapshot();
                let mut y = vec![0.0; n];
                traversal_matvec_par(
                    &elems,
                    0..elems.len(),
                    Curve::Hilbert,
                    &nodes,
                    &x,
                    &mut y,
                    ws,
                    &|| toy_kernel::<2>(1),
                );
                carve_obs::thread_snapshot().diff(&before)
            };
            let d1 = run(&mut ws);
            assert!(
                d1.phases["matvec"].counters["arena_alloc"] > 0,
                "cold workspace must allocate (threads={threads})"
            );
            let d2 = run(&mut ws);
            let c2 = &d2.phases["matvec"].counters;
            assert!(
                !c2.contains_key("arena_alloc"),
                "warm workspace allocated bucket vectors (threads={threads}): {c2:?}"
            );
            assert!(
                c2["arena_reuse"] > 0,
                "warm workspace must reuse the arena (threads={threads})"
            );
        }
    }
}
