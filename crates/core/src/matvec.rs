//! Traversal-based matrix-free MATVEC (§3.5) and matrix assembly (§3.6).
//!
//! No element-to-node map exists anywhere. Instead, top-down traversal of
//! the (incomplete) octree buckets nodal data into child subtrees — a node
//! incident on several children is *duplicated* — until each leaf holds its
//! elemental nodes contiguously; the elemental operator is applied there;
//! the bottom-up phase accumulates duplicated contributions back to single
//! values. Hanging lattice slots are interpolated from ancestor buckets on
//! the way down and transposed (scattered with the same weights) on the way
//! up, so the operator equals the assembled constrained matrix to machine
//! precision.
//!
//! The traversal only descends into subtrees containing *owned* elements, so
//! incomplete trees and distributed ownership need no special treatment —
//! the property the paper calls "gracefully handles incomplete octrees".

use crate::nodes::{elem_node_coord, lattice_index, nodes_per_elem, NodeSet};
use carve_la::CooBuilder;
use carve_la::DenseMatrix;
use carve_sfc::morton::point_cmp_morton;
use carve_sfc::{Curve, Octant, SfcState};
use std::ops::Range;

// Phase taxonomy (see DESIGN.md §"Observability"): the traversal engine
// reports through `carve-obs` under its caller's root scope — `"matvec"`
// for the operator apply, `"assemble"` for sparse assembly — with nested
// `top_down` / `leaf` / `bottom_up` phases (the Figs. 7–10 breakdown), a
// `leaves` counter on the leaf phase, and a `node_copies` counter (the
// bucketing memory-traffic proxy) on the top-down phase.

/// One level's worth of bucketed nodal data along the current traversal
/// path. `parent_slot[i]` is the index of entry `i` in the parent bucket.
struct Bucket<const DIM: usize> {
    coords: Vec<[u64; DIM]>,
    parent_slot: Vec<u32>,
    ids: Vec<u32>,
    vin: Vec<f64>,
    vout: Vec<f64>,
}

impl<const DIM: usize> Bucket<DIM> {
    fn find(&self, coord: &[u64; DIM]) -> Option<usize> {
        self.coords
            .binary_search_by(|c| point_cmp_morton(c, coord))
            .ok()
    }
}

/// What to do at each owned leaf.
trait LeafVisitor<const DIM: usize> {
    fn leaf(&mut self, leaf: &Octant<DIM>, stack: &mut [Bucket<DIM>], p: u64);
}

/// Generates the one-level-up interpolation sources for a hanging
/// coordinate: `coord` belongs to the p-lattice of `oct` but is not a real
/// node; the sources live on the minimal face of `parent(oct)` containing
/// it, with tensor-Lagrange weights.
fn hanging_sources<const DIM: usize>(
    oct: &Octant<DIM>,
    coord: &[u64; DIM],
    p: u64,
) -> Vec<([u64; DIM], f64)> {
    assert!(
        oct.level > 0,
        "hanging coordinate at the root: invalid mesh"
    );
    let parent = oct.parent();
    let pside = parent.side() as u64;
    let mut fixed = [false; DIM];
    let mut t = [0.0f64; DIM];
    for k in 0..DIM {
        let off = coord[k] - parent.anchor[k] as u64 * p;
        if off == 0 || off == p * pside {
            fixed[k] = true;
        }
        t[k] = off as f64 / pside as f64;
    }
    debug_assert!(fixed.iter().any(|&f| f));
    let free_axes: Vec<usize> = (0..DIM).filter(|&k| !fixed[k]).collect();
    let combos = (p + 1).pow(free_axes.len() as u32);
    let mut out = Vec::with_capacity(combos as usize);
    for combo in 0..combos {
        let mut rem = combo;
        let mut w = 1.0;
        let mut src = *coord;
        for &k in &free_axes {
            let j = rem % (p + 1);
            rem /= p + 1;
            w *= crate::nodes::lagrange_1d(p, j, t[k]);
            src[k] = parent.anchor[k] as u64 * p + j * pside;
        }
        if w != 0.0 {
            out.push((src, w));
        }
    }
    out
}

/// Evaluates the FE value at `coord` (p-lattice of the level-`depth`
/// ancestor of `leaf`) from the bucket stack, resolving hanging chains.
fn eval_coord<const DIM: usize>(
    stack: &[Bucket<DIM>],
    leaf: &Octant<DIM>,
    depth: usize,
    coord: &[u64; DIM],
    p: u64,
) -> f64 {
    if let Some(i) = stack[depth].find(coord) {
        return stack[depth].vin[i];
    }
    let oct = leaf.ancestor_at(depth as u8);
    let mut v = 0.0;
    for (src, w) in hanging_sources(&oct, coord, p) {
        v += w * eval_coord(stack, leaf, depth - 1, &src, p);
    }
    v
}

/// Transpose of [`eval_coord`]: scatters `val` into the bucket stack.
fn scatter_coord<const DIM: usize>(
    stack: &mut [Bucket<DIM>],
    leaf: &Octant<DIM>,
    depth: usize,
    coord: &[u64; DIM],
    val: f64,
    p: u64,
) {
    if let Some(i) = stack[depth].find(coord) {
        stack[depth].vout[i] += val;
        return;
    }
    let oct = leaf.ancestor_at(depth as u8);
    for (src, w) in hanging_sources(&oct, coord, p) {
        scatter_coord(stack, leaf, depth - 1, &src, w * val, p);
    }
}

/// Resolves `coord` into a `(global id, weight)` stencil (assembly path).
fn stencil_coord<const DIM: usize>(
    stack: &[Bucket<DIM>],
    leaf: &Octant<DIM>,
    depth: usize,
    coord: &[u64; DIM],
    weight: f64,
    p: u64,
    out: &mut Vec<(u32, f64)>,
) {
    if let Some(i) = stack[depth].find(coord) {
        out.push((stack[depth].ids[i], weight));
        return;
    }
    let oct = leaf.ancestor_at(depth as u8);
    for (src, w) in hanging_sources(&oct, coord, p) {
        stencil_coord(stack, leaf, depth - 1, &src, weight * w, p, out);
    }
}

/// The shared top-down / bottom-up engine.
struct Traversal<'a, const DIM: usize, V: LeafVisitor<DIM>> {
    elems: &'a [Octant<DIM>],
    owned: Range<usize>,
    curve: Curve,
    p: u64,
    visitor: V,
    carry_values: bool,
    carry_ids: bool,
}

impl<'a, const DIM: usize, V: LeafVisitor<DIM>> Traversal<'a, DIM, V> {
    fn run(&mut self, root_bucket: Bucket<DIM>) -> Bucket<DIM> {
        let mut stack = vec![root_bucket];
        let all = 0..self.elems.len();
        self.rec(Octant::ROOT, SfcState::ROOT, all, &mut stack);
        stack.pop().expect("root bucket survives")
    }

    fn rec(
        &mut self,
        subtree: Octant<DIM>,
        st: SfcState,
        range: Range<usize>,
        stack: &mut Vec<Bucket<DIM>>,
    ) {
        debug_assert!(!range.is_empty());
        if range.len() == 1 && self.elems[range.start] == subtree {
            if self.owned.contains(&range.start) {
                let _obs = carve_obs::scope("leaf");
                carve_obs::counter("leaves", 1);
                self.visitor.leaf(&subtree, stack, self.p);
            }
            return;
        }
        // Partition the (SFC-sorted) element range by SFC child rank; the
        // runs are contiguous and in rank order.
        let child_level = subtree.level + 1;
        let mut lo = range.start;
        for r in 0..(1usize << DIM) {
            let mut hi = lo;
            while hi < range.end
                && st.morton_to_sfc(self.curve, DIM, self.elems[hi].child_bits_at(child_level)) == r
            {
                hi += 1;
            }
            if hi == lo {
                continue;
            }
            // Skip subtrees with no owned elements (distributed restriction).
            if lo >= self.owned.end || hi <= self.owned.start {
                lo = hi;
                continue;
            }
            let m = st.sfc_to_morton(self.curve, DIM, r);
            let child_oct = subtree.child(m);
            let child_st = st.child(self.curve, DIM, r);
            // Top-down: bucket nodes incident on the child's closed region.
            let obs_td = carve_obs::scope("top_down");
            let parent = stack.last().expect("bucket stack nonempty");
            let mut coords = Vec::new();
            let mut parent_slot = Vec::new();
            let mut ids = Vec::new();
            let mut vin = Vec::new();
            let side = child_oct.side() as u64;
            let p = self.p;
            for (i, c) in parent.coords.iter().enumerate() {
                let mut incident = true;
                for (&ck, &ak) in c.iter().zip(&child_oct.anchor) {
                    let a = ak as u64 * p;
                    if ck < a || ck > a + side * p {
                        incident = false;
                        break;
                    }
                }
                if incident {
                    coords.push(*c);
                    parent_slot.push(i as u32);
                    if self.carry_ids {
                        ids.push(parent.ids[i]);
                    }
                    if self.carry_values {
                        vin.push(parent.vin[i]);
                    }
                }
            }
            carve_obs::counter("node_copies", coords.len() as u64);
            let n = coords.len();
            let child_bucket = Bucket {
                coords,
                parent_slot,
                ids,
                vin,
                vout: if self.carry_values {
                    vec![0.0; n]
                } else {
                    Vec::new()
                },
            };
            drop(obs_td);
            stack.push(child_bucket);
            self.rec(child_oct, child_st, lo..hi, stack);
            // Bottom-up: accumulate duplicated node contributions.
            let _obs_bu = carve_obs::scope("bottom_up");
            let child = stack.pop().expect("child bucket");
            if self.carry_values {
                let parent = stack.last_mut().expect("parent bucket");
                for (i, &ps) in child.parent_slot.iter().enumerate() {
                    parent.vout[ps as usize] += child.vout[i];
                }
            }
            lo = hi;
        }
        debug_assert_eq!(lo, range.end, "elements not fully bucketed");
    }
}

struct MatvecVisitor<'k, const DIM: usize, K> {
    kernel: &'k mut K,
    in_vals: Vec<f64>,
    out_vals: Vec<f64>,
    slots: Vec<Option<usize>>,
}

impl<'k, const DIM: usize, K> LeafVisitor<DIM> for MatvecVisitor<'k, DIM, K>
where
    K: FnMut(&Octant<DIM>, &[f64], &mut [f64]),
{
    fn leaf(&mut self, leaf: &Octant<DIM>, stack: &mut [Bucket<DIM>], p: u64) {
        let npe = nodes_per_elem::<DIM>(p);
        let depth = leaf.level as usize;
        debug_assert_eq!(stack.len(), depth + 1);
        self.in_vals.resize(npe, 0.0);
        self.out_vals.resize(npe, 0.0);
        self.slots.resize(npe, None);
        for lin in 0..npe {
            let idx = lattice_index::<DIM>(lin, p);
            let c = elem_node_coord(leaf, p, &idx);
            match stack[depth].find(&c) {
                Some(i) => {
                    self.slots[lin] = Some(i);
                    self.in_vals[lin] = stack[depth].vin[i];
                }
                None => {
                    self.slots[lin] = None;
                    self.in_vals[lin] = eval_coord(stack, leaf, depth, &c, p);
                }
            }
            self.out_vals[lin] = 0.0;
        }
        (self.kernel)(leaf, &self.in_vals, &mut self.out_vals);
        for lin in 0..npe {
            match self.slots[lin] {
                Some(i) => stack[depth].vout[i] += self.out_vals[lin],
                None => {
                    let idx = lattice_index::<DIM>(lin, p);
                    let c = elem_node_coord(leaf, p, &idx);
                    scatter_coord(stack, leaf, depth, &c, self.out_vals[lin], p);
                }
            }
        }
    }
}

/// Applies the global operator `y += A x` matrix-free via octree traversal.
///
/// * `elems` — SFC-sorted leaf elements (owned + ghost in the distributed
///   case); `owned` restricts which leaves apply their elemental kernel.
/// * `kernel(e, u_e, v_e)` — the elemental operator (`v_e = K_e u_e`).
pub fn traversal_matvec<const DIM: usize, K>(
    elems: &[Octant<DIM>],
    owned: Range<usize>,
    curve: Curve,
    nodes: &NodeSet<DIM>,
    x: &[f64],
    y: &mut [f64],
    kernel: &mut K,
) where
    K: FnMut(&Octant<DIM>, &[f64], &mut [f64]),
{
    assert_eq!(x.len(), nodes.len());
    assert_eq!(y.len(), nodes.len());
    if elems.is_empty() || owned.is_empty() {
        return;
    }
    let _obs = carve_obs::scope("matvec");
    let root = Bucket {
        coords: nodes.coords.clone(),
        parent_slot: Vec::new(),
        ids: Vec::new(),
        vin: x.to_vec(),
        vout: vec![0.0; nodes.len()],
    };
    let visitor = MatvecVisitor::<DIM, K> {
        kernel,
        in_vals: Vec::new(),
        out_vals: Vec::new(),
        slots: Vec::new(),
    };
    let mut tr = Traversal {
        elems,
        owned,
        curve,
        p: nodes.order,
        visitor,
        carry_values: true,
        carry_ids: false,
    };
    let root = tr.run(root);
    for (yi, vo) in y.iter_mut().zip(&root.vout) {
        *yi += vo;
    }
}

struct AssemblyVisitor<'k, const DIM: usize, K> {
    kernel: &'k mut K,
    coo: &'k mut CooBuilder,
    stencils: Vec<Vec<(u32, f64)>>,
}

impl<'k, const DIM: usize, K> LeafVisitor<DIM> for AssemblyVisitor<'k, DIM, K>
where
    K: FnMut(&Octant<DIM>) -> DenseMatrix,
{
    fn leaf(&mut self, leaf: &Octant<DIM>, stack: &mut [Bucket<DIM>], p: u64) {
        let npe = nodes_per_elem::<DIM>(p);
        let depth = leaf.level as usize;
        self.stencils.resize(npe, Vec::new());
        for lin in 0..npe {
            let idx = lattice_index::<DIM>(lin, p);
            let c = elem_node_coord(leaf, p, &idx);
            self.stencils[lin].clear();
            stencil_coord(stack, leaf, depth, &c, 1.0, p, &mut self.stencils[lin]);
        }
        let ke = (self.kernel)(leaf);
        debug_assert_eq!(ke.rows, npe);
        debug_assert_eq!(ke.cols, npe);
        // Emit W^T K_e W: every (row stencil) x (col stencil) product.
        for i in 0..npe {
            for j in 0..npe {
                let v = ke[(i, j)];
                if v == 0.0 {
                    continue;
                }
                for &(ri, rw) in &self.stencils[i] {
                    for &(cj, cw) in &self.stencils[j] {
                        self.coo.add(ri as usize, cj as usize, rw * cw * v);
                    }
                }
            }
        }
    }
}

/// Assembles the global sparse matrix via octree traversal (§3.6): node
/// *ids* are bucketed instead of values; at each leaf the elemental matrix
/// entries are emitted with global indices (duplicates merge by addition in
/// the builder, the PETSc `ADD_VALUES` contract). No bottom-up phase.
pub fn traversal_assemble<const DIM: usize, K>(
    elems: &[Octant<DIM>],
    owned: Range<usize>,
    curve: Curve,
    nodes: &NodeSet<DIM>,
    global_ids: &[u32],
    coo: &mut CooBuilder,
    kernel: &mut K,
) where
    K: FnMut(&Octant<DIM>) -> DenseMatrix,
{
    assert_eq!(global_ids.len(), nodes.len());
    if elems.is_empty() || owned.is_empty() {
        return;
    }
    let _obs = carve_obs::scope("assemble");
    let root = Bucket {
        coords: nodes.coords.clone(),
        parent_slot: Vec::new(),
        ids: global_ids.to_vec(),
        vin: Vec::new(),
        vout: Vec::new(),
    };
    let visitor = AssemblyVisitor::<DIM, K> {
        kernel,
        coo,
        stencils: Vec::new(),
    };
    let mut tr = Traversal {
        elems,
        owned,
        curve,
        p: nodes.order,
        visitor,
        carry_values: false,
        carry_ids: true,
    };
    tr.run(root);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::construct_balanced;
    use crate::construct::{construct_boundary_refined, construct_uniform};
    use crate::nodes::enumerate_nodes;
    use carve_geom::{CarvedSolids, FullDomain, Sphere, Subdomain};
    use rand::{Rng, SeedableRng};

    /// A simple symmetric elemental "mass-like" kernel: K_e = h^DIM *
    /// (I + ones/npe), giving a well-defined global SPD operator.
    fn toy_kernel<const DIM: usize>(_p: u64) -> impl FnMut(&Octant<DIM>, &[f64], &mut [f64]) {
        move |e: &Octant<DIM>, u: &[f64], v: &mut [f64]| {
            let h = e.bounds_unit().1;
            let scale = h.powi(DIM as i32);
            let npe = u.len();
            let sum: f64 = u.iter().sum();
            for i in 0..npe {
                v[i] = scale * (u[i] + sum / npe as f64);
            }
        }
    }

    fn toy_matrix<const DIM: usize>(p: u64) -> impl FnMut(&Octant<DIM>) -> DenseMatrix {
        move |e: &Octant<DIM>| {
            let h = e.bounds_unit().1;
            let scale = h.powi(DIM as i32);
            let npe = nodes_per_elem::<DIM>(p);
            let mut m = DenseMatrix::zeros(npe, npe);
            for i in 0..npe {
                for j in 0..npe {
                    m[(i, j)] = scale * (if i == j { 1.0 } else { 0.0 } + 1.0 / npe as f64);
                }
            }
            m
        }
    }

    fn matvec_equals_assembled<const DIM: usize>(
        domain: &dyn Subdomain<DIM>,
        elems: &[Octant<DIM>],
        p: u64,
        curve: Curve,
        seed: u64,
    ) {
        let nodes = enumerate_nodes(domain, elems, p);
        let n = nodes.len();
        assert!(n > 0);
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut coo = CooBuilder::new(n);
        traversal_assemble(
            elems,
            0..elems.len(),
            curve,
            &nodes,
            &ids,
            &mut coo,
            &mut toy_matrix::<DIM>(p),
        );
        let a = coo.build();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..3 {
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut y_mf = vec![0.0; n];
            traversal_matvec(
                elems,
                0..elems.len(),
                curve,
                &nodes,
                &x,
                &mut y_mf,
                &mut toy_kernel::<DIM>(p),
            );
            let mut y_as = vec![0.0; n];
            a.matvec(&x, &mut y_as);
            for (i, (a, b)) in y_mf.iter().zip(&y_as).enumerate() {
                assert!(
                    (a - b).abs() < 1e-11 * (1.0 + b.abs()),
                    "mismatch at node {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn matvec_matches_assembly_uniform_2d() {
        for p in [1u64, 2] {
            for curve in [Curve::Morton, Curve::Hilbert] {
                let elems = construct_uniform::<2>(&FullDomain, curve, 3);
                matvec_equals_assembled(&FullDomain, &elems, p, curve, 1);
            }
        }
    }

    #[test]
    fn matvec_matches_assembly_adaptive_carved_2d() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))]);
        for p in [1u64, 2] {
            for curve in [Curve::Morton, Curve::Hilbert] {
                let t = construct_boundary_refined(&domain, curve, 2, 5);
                let elems = construct_balanced(&domain, curve, &t);
                matvec_equals_assembled(&domain, &elems, p, curve, 7);
            }
        }
    }

    #[test]
    fn matvec_matches_assembly_adaptive_3d() {
        let domain = CarvedSolids::<3>::new(vec![Box::new(Sphere::new([0.5; 3], 0.3))]);
        for p in [1u64, 2] {
            let t = construct_boundary_refined(&domain, Curve::Hilbert, 2, 4);
            let elems = construct_balanced(&domain, Curve::Hilbert, &t);
            matvec_equals_assembled(&domain, &elems, p, Curve::Hilbert, 11);
        }
    }

    #[test]
    fn hanging_interpolation_preserves_constants() {
        // For a partition-of-unity kernel (mass-like), A·1 must equal the
        // row sums of the assembled matrix — and more fundamentally, the
        // hanging interpolation of a constant vector is the same constant.
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.3, 0.6], 0.2))]);
        let t = construct_boundary_refined(&domain, Curve::Morton, 2, 5);
        let elems = construct_balanced(&domain, Curve::Morton, &t);
        let nodes = enumerate_nodes(&domain, &elems, 1);
        let n = nodes.len();
        let ones = vec![1.0; n];
        let mut y = vec![0.0; n];
        // Kernel returning the input (identity on elemental nodes): the
        // output at each node is then Σ_elems (interp weights), and for a
        // constant input every elemental value must be exactly 1.
        let mut probe = |_e: &Octant<2>, u: &[f64], v: &mut [f64]| {
            for ui in u {
                assert!((ui - 1.0).abs() < 1e-13, "hanging interp broke constants");
            }
            v.copy_from_slice(u);
        };
        traversal_matvec(
            &elems,
            0..elems.len(),
            Curve::Morton,
            &nodes,
            &ones,
            &mut y,
            &mut probe,
        );
    }

    #[test]
    fn owned_subrange_sums_to_full() {
        // Splitting the element list into owned ranges and summing the
        // partial MATVECs must reproduce the full MATVEC (the distributed
        // decomposition property).
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.25))]);
        let t = construct_boundary_refined(&domain, Curve::Hilbert, 2, 4);
        let elems = construct_balanced(&domain, Curve::Hilbert, &t);
        let nodes = enumerate_nodes(&domain, &elems, 2);
        let n = nodes.len();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y_full = vec![0.0; n];
        traversal_matvec(
            &elems,
            0..elems.len(),
            Curve::Hilbert,
            &nodes,
            &x,
            &mut y_full,
            &mut toy_kernel::<2>(2),
        );
        let mid = elems.len() / 3;
        let mut y_parts = vec![0.0; n];
        for range in [0..mid, mid..elems.len()] {
            traversal_matvec(
                &elems,
                range,
                Curve::Hilbert,
                &nodes,
                &x,
                &mut y_parts,
                &mut toy_kernel::<2>(2),
            );
        }
        for (a, b) in y_full.iter().zip(&y_parts) {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn obs_phases_are_populated() {
        let _e = carve_obs::force_enabled();
        let elems = construct_uniform::<2>(&FullDomain, Curve::Morton, 4);
        let nodes = enumerate_nodes(&FullDomain, &elems, 1);
        let n = nodes.len();
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        let before = carve_obs::thread_snapshot();
        traversal_matvec(
            &elems,
            0..elems.len(),
            Curve::Morton,
            &nodes,
            &x,
            &mut y,
            &mut toy_kernel::<2>(1),
        );
        let d = carve_obs::thread_snapshot().diff(&before);
        let leaf = &d.phases["matvec/leaf"];
        assert_eq!(leaf.calls, elems.len() as u64);
        assert_eq!(leaf.counters["leaves"], elems.len() as u64);
        let td = &d.phases["matvec/top_down"];
        assert!(td.counters["node_copies"] > 0);
        assert_eq!(d.phases["matvec"].calls, 1);
        assert!(d.phases.contains_key("matvec/bottom_up"));
    }
}
