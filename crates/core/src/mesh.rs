//! Convenience mesh type tying construction, balancing, and nodal
//! enumeration together — the sequential "distributed array" of the
//! framework.

use crate::balance::construct_balanced;
use crate::construct::{classify_octant, construct_boundary_refined};
use crate::nodes::{enumerate_nodes, NodeSet};
use carve_geom::{RegionLabel, Subdomain};
use carve_sfc::{Curve, Octant};

/// A 2:1-balanced incomplete-octree FEM mesh with enumerated DOFs.
#[derive(Clone, Debug)]
pub struct Mesh<const DIM: usize> {
    pub curve: Curve,
    /// Element order `p`.
    pub order: u64,
    /// SFC-sorted leaf elements (all retained).
    pub elems: Vec<Octant<DIM>>,
    /// Per-element subdomain label (`RetainBoundary` = intercepted).
    pub labels: Vec<RegionLabel>,
    /// Unique non-hanging nodes.
    pub nodes: NodeSet<DIM>,
}

impl<const DIM: usize> Mesh<DIM> {
    /// Builds a 2:1-balanced mesh with `base_level` background refinement
    /// and `boundary_level` refinement on intercepted octants — the paper's
    /// standard two-level experimental setup.
    pub fn build(
        domain: &dyn Subdomain<DIM>,
        curve: Curve,
        base_level: u8,
        boundary_level: u8,
        order: u64,
    ) -> Self {
        let adaptive = construct_boundary_refined(domain, curve, base_level, boundary_level);
        let elems = construct_balanced(domain, curve, &adaptive);
        Self::from_balanced_elems(domain, curve, elems, order)
    }

    /// Wraps an already balanced, SFC-sorted element list.
    pub fn from_balanced_elems(
        domain: &dyn Subdomain<DIM>,
        curve: Curve,
        elems: Vec<Octant<DIM>>,
        order: u64,
    ) -> Self {
        let labels = elems.iter().map(|e| classify_octant(domain, e)).collect();
        let nodes = enumerate_nodes(domain, &elems, order);
        Mesh {
            curve,
            order,
            elems,
            labels,
            nodes,
        }
    }

    pub fn num_elems(&self) -> usize {
        self.elems.len()
    }

    /// Number of DOFs (independent, non-hanging nodes).
    pub fn num_dofs(&self) -> usize {
        self.nodes.len()
    }

    /// Indices of intercepted (subdomain-boundary) elements.
    pub fn intercepted_elems(&self) -> Vec<usize> {
        (0..self.elems.len())
            .filter(|&i| self.labels[i] == RegionLabel::RetainBoundary)
            .collect()
    }

    /// Physical element size of element `i`, given the physical side length
    /// of the root cube (domain scaling).
    pub fn elem_size(&self, i: usize, domain_scale: f64) -> f64 {
        self.elems[i].bounds_unit().1 * domain_scale
    }
}

/// Finds the leaf (index into the SFC-sorted `elems`) whose region contains
/// the given finest-level cell, if any — the coverage probe used for
/// surrogate-boundary-face detection and point location.
pub fn find_leaf<const DIM: usize>(
    elems: &[Octant<DIM>],
    curve: Curve,
    cell: &Octant<DIM>,
) -> Option<usize> {
    use std::cmp::Ordering;
    let idx = elems.partition_point(|e| carve_sfc::sfc_cmp(curve, e, cell) != Ordering::Greater);
    if idx == 0 {
        return None;
    }
    let cand = &elems[idx - 1];
    if cand.is_ancestor_or_self(cell) {
        Some(idx - 1)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_geom::{CarvedSolids, FullDomain, Sphere};

    #[test]
    fn find_leaf_locates_points() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.3))]);
        let mesh = Mesh::build(&domain, Curve::Hilbert, 3, 5, 1);
        // Center of the disk: carved, no leaf.
        let center_cell = carve_sfc::morton::finest_cell_of_point(&[
            (carve_sfc::octant::ROOT_SIDE / 2) as u64,
            (carve_sfc::octant::ROOT_SIDE / 2) as u64,
        ]);
        assert!(find_leaf(&mesh.elems, mesh.curve, &center_cell).is_none());
        // A corner point: retained.
        let corner_cell = carve_sfc::morton::finest_cell_of_point(&[1, 1]);
        let leaf = find_leaf(&mesh.elems, mesh.curve, &corner_cell).unwrap();
        assert!(mesh.elems[leaf].closed_contains_point(&[1, 1]));
        // Every element finds itself via its center cell.
        for (i, e) in mesh.elems.iter().enumerate() {
            let side = e.side() as u64;
            let c = [e.anchor[0] as u64 + side / 2, e.anchor[1] as u64 + side / 2];
            let cell = carve_sfc::morton::finest_cell_of_point(&c);
            assert_eq!(find_leaf(&mesh.elems, mesh.curve, &cell), Some(i));
        }
    }

    #[test]
    fn build_pipeline_produces_consistent_mesh() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.3))]);
        let mesh = Mesh::build(&domain, Curve::Hilbert, 3, 5, 1);
        assert!(mesh.num_elems() > 0);
        assert!(mesh.num_dofs() > mesh.num_elems() / 2);
        assert_eq!(mesh.labels.len(), mesh.num_elems());
        crate::balance::check_2to1(&mesh.elems).unwrap();
        assert!(!mesh.intercepted_elems().is_empty());
    }

    #[test]
    fn uniform_mesh_dof_count() {
        let mesh = Mesh::<3>::build(&FullDomain, Curve::Morton, 2, 2, 1);
        assert_eq!(mesh.num_elems(), 64);
        assert_eq!(mesh.num_dofs(), 5 * 5 * 5);
    }
}
