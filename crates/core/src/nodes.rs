//! Nodal enumeration on incomplete trees (§3.4).
//!
//! Every leaf element carries a `(p+1)^DIM` Lagrange node lattice. Shared
//! nodes are deduplicated by sorting nodal coordinates (TreeSort-style order:
//! point Morton); *hanging* nodes are detected with the paper's cancellation
//! trick: each element also emits temporary *cancellation nodes* at the
//! half-lattice positions on its boundary (where hypothetical finer
//! neighbors would put nodes). After sorting, any coordinate carrying a
//! cancellation instance is incident on a coarser face/edge and therefore
//! hanging — it is discarded. The survivors are exactly the independent
//! DOFs of the continuous-Galerkin grid.
//!
//! Nodal coordinates live on the integer lattice `[0, p·2^MAX_LEVEL]^DIM`
//! (element anchor × p + offset × side), which is exact for `p ≤ 2` and
//! `level ≤ MAX_LEVEL - 1`.

use carve_geom::Subdomain;
use carve_sfc::morton::point_cmp_morton;
use carve_sfc::{Octant, MAX_LEVEL};
use std::cmp::Ordering;

/// Per-node classification flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NodeFlags(u8);

impl NodeFlags {
    /// Node lies in the closed carved set `C` (on or inside the immersed
    /// object / outside the retained region) — a subdomain-boundary node
    /// where Dirichlet data is imposed (directly or via SBM).
    pub const CARVED_BOUNDARY: u8 = 1;
    /// Node lies on the boundary of the root cube.
    pub const CUBE_BOUNDARY: u8 = 2;

    pub fn is_carved_boundary(self) -> bool {
        self.0 & Self::CARVED_BOUNDARY != 0
    }
    pub fn is_cube_boundary(self) -> bool {
        self.0 & Self::CUBE_BOUNDARY != 0
    }
    pub fn is_any_boundary(self) -> bool {
        self.0 != 0
    }
}

/// The unique, non-hanging nodes of a (local or global) element list.
#[derive(Clone, Debug)]
pub struct NodeSet<const DIM: usize> {
    /// Element order `p` (1 = linear, 2 = quadratic).
    pub order: u64,
    /// Node lattice coordinates, sorted by point-Morton order.
    pub coords: Vec<[u64; DIM]>,
    pub flags: Vec<NodeFlags>,
}

/// Iterates the multi-indices of a `(q+1)^DIM` lattice, x-fastest.
#[inline]
pub fn lattice_index<const DIM: usize>(linear: usize, q: u64) -> [u64; DIM] {
    let base = q + 1;
    let mut rem = linear as u64;
    let mut idx = [0u64; DIM];
    for slot in idx.iter_mut() {
        *slot = rem % base;
        rem /= base;
    }
    idx
}

/// Number of nodes per element for order `p`.
#[inline]
pub fn nodes_per_elem<const DIM: usize>(p: u64) -> usize {
    ((p + 1) as usize).pow(DIM as u32)
}

/// Inverse of [`lattice_index`] ∘ [`elem_node_coord`]: maps a nodal
/// coordinate back to the linear lattice slot of element `e`, or `None`
/// when the coordinate is not on `e`'s `p`-lattice (a hanging node owned
/// by a finer neighbor). One divisibility check per axis — the merge-sweep
/// leaf resolution uses this instead of per-slot binary searches.
#[inline]
pub fn lattice_linear<const DIM: usize>(
    e: &Octant<DIM>,
    p: u64,
    coord: &[u64; DIM],
) -> Option<usize> {
    let side = e.side() as u64;
    let mut lin = 0usize;
    let mut stride = 1usize;
    for (&ck, &ak) in coord.iter().zip(&e.anchor) {
        let off = ck.checked_sub(ak as u64 * p)?;
        if off % side != 0 {
            return None;
        }
        let j = off / side;
        if j > p {
            return None;
        }
        lin += j as usize * stride;
        stride *= (p + 1) as usize;
    }
    Some(lin)
}

/// Coordinate of lattice point `idx` (each component `0..=p`) of element `e`.
#[inline]
pub fn elem_node_coord<const DIM: usize>(e: &Octant<DIM>, p: u64, idx: &[u64; DIM]) -> [u64; DIM] {
    let side = e.side() as u64;
    let mut c = [0u64; DIM];
    for k in 0..DIM {
        c[k] = e.anchor[k] as u64 * p + idx[k] * side;
    }
    c
}

/// Converts a nodal lattice coordinate to unit-cube coordinates.
#[inline]
pub fn node_unit_coords<const DIM: usize>(coord: &[u64; DIM], p: u64) -> [f64; DIM] {
    let scale = 1.0 / (p as f64 * (1u64 << MAX_LEVEL) as f64);
    let mut out = [0.0; DIM];
    for k in 0..DIM {
        out[k] = coord[k] as f64 * scale;
    }
    out
}

/// Enumerates unique non-hanging nodes for a 2:1-balanced element list
/// (Algorithm of §3.4: generate + cancellation + sort + filter + tag).
pub fn enumerate_nodes<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    elems: &[Octant<DIM>],
    p: u64,
) -> NodeSet<DIM> {
    assert!(p == 1 || p == 2, "orders 1 and 2 supported");
    let _obs = carve_obs::scope("nodes");
    let npe = nodes_per_elem::<DIM>(p);
    // (coord, is_cancellation)
    let mut pts: Vec<([u64; DIM], bool)> = Vec::with_capacity(elems.len() * npe * 2);
    for e in elems {
        assert!(
            e.level < MAX_LEVEL,
            "elements at MAX_LEVEL cannot host cancellation lattices"
        );
        // Ordinary nodes.
        for lin in 0..npe {
            let idx = lattice_index::<DIM>(lin, p);
            pts.push((elem_node_coord(e, p, &idx), false));
        }
        // Cancellation nodes: the (2p)-lattice points on ∂e that are not
        // p-lattice points (at least one odd component; at least one
        // component on a face).
        let side = e.side() as u64;
        let half = side / 2;
        let q = 2 * p;
        let n2 = ((q + 1) as usize).pow(DIM as u32);
        for lin in 0..n2 {
            let idx = lattice_index::<DIM>(lin, q);
            let mut on_boundary = false;
            let mut any_odd = false;
            for &ik in idx.iter().take(DIM) {
                if ik == 0 || ik == q {
                    on_boundary = true;
                }
                if ik % 2 == 1 {
                    any_odd = true;
                }
            }
            if on_boundary && any_odd {
                let mut c = [0u64; DIM];
                for k in 0..DIM {
                    c[k] = e.anchor[k] as u64 * p + idx[k] * half;
                }
                pts.push((c, true));
            }
        }
    }
    // Sort by coordinate (point-Morton), cancellation instances
    // tie-broken after ordinary so a single pass can scan groups.
    pts.sort_unstable_by(|a, b| match point_cmp_morton(&a.0, &b.0) {
        Ordering::Equal => a.1.cmp(&b.1),
        o => o,
    });
    let mut coords = Vec::new();
    let mut i = 0;
    while i < pts.len() {
        let c = pts[i].0;
        let mut has_ordinary = false;
        let mut has_cancel = false;
        let mut j = i;
        while j < pts.len() && pts[j].0 == c {
            if pts[j].1 {
                has_cancel = true;
            } else {
                has_ordinary = true;
            }
            j += 1;
        }
        if has_ordinary && !has_cancel {
            coords.push(c);
        }
        i = j;
    }
    // Tag nodes.
    let cube_max = p * (1u64 << MAX_LEVEL);
    let flags = coords
        .iter()
        .map(|c| {
            let mut f = 0u8;
            let unit = node_unit_coords(c, p);
            if domain.point_in_carved(&unit) {
                f |= NodeFlags::CARVED_BOUNDARY;
            }
            if c.iter().any(|&x| x == 0 || x == cube_max) {
                f |= NodeFlags::CUBE_BOUNDARY;
            }
            NodeFlags(f)
        })
        .collect();
    NodeSet {
        order: p,
        coords,
        flags,
    }
}

impl<const DIM: usize> NodeSet<DIM> {
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Binary search for a coordinate; `None` means hanging (or absent).
    pub fn find(&self, coord: &[u64; DIM]) -> Option<usize> {
        self.coords
            .binary_search_by(|c| point_cmp_morton(c, coord))
            .ok()
    }

    /// Unit-cube position of node `i`.
    pub fn unit_coords(&self, i: usize) -> [f64; DIM] {
        node_unit_coords(&self.coords[i], self.order)
    }

    /// Indices of nodes carrying any boundary flag.
    pub fn boundary_nodes(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.flags[i].is_any_boundary())
            .collect()
    }
}

/// Resolution of one element lattice slot against the global node set:
/// either a real DOF or a hanging point with its (recursively resolved)
/// interpolation stencil.
#[derive(Clone, Debug)]
pub enum SlotRef {
    Direct(usize),
    /// `(node index, weight)` pairs; weights sum to 1.
    Hanging(Vec<(usize, f64)>),
}

/// Resolves the hanging-node constraint for lattice coordinate `coord` of an
/// octant at `level` (i.e. `coord` belongs to the p-lattice of an ancestor
/// path octant at that level). Standard conforming constraint: interpolate
/// on the minimal containing face of the *parent* octant, recursing when a
/// source is itself hanging.
pub fn resolve_slot<const DIM: usize>(
    nodes: &NodeSet<DIM>,
    elem: &Octant<DIM>,
    coord: &[u64; DIM],
) -> SlotRef {
    if let Some(i) = nodes.find(coord) {
        return SlotRef::Direct(i);
    }
    let mut acc: Vec<(usize, f64)> = Vec::new();
    accumulate_hanging(nodes, elem, coord, 1.0, &mut acc);
    // Merge duplicate node indices.
    acc.sort_unstable_by_key(|e| e.0);
    let mut merged: Vec<(usize, f64)> = Vec::with_capacity(acc.len());
    for (i, w) in acc {
        if let Some(last) = merged.last_mut() {
            if last.0 == i {
                last.1 += w;
                continue;
            }
        }
        merged.push((i, w));
    }
    SlotRef::Hanging(merged)
}

fn accumulate_hanging<const DIM: usize>(
    nodes: &NodeSet<DIM>,
    oct: &Octant<DIM>,
    coord: &[u64; DIM],
    weight: f64,
    acc: &mut Vec<(usize, f64)>,
) {
    if let Some(i) = nodes.find(coord) {
        acc.push((i, weight));
        return;
    }
    assert!(
        oct.level > 0,
        "hanging coordinate {coord:?} unresolved at the root"
    );
    let p = nodes.order;
    let parent = oct.parent();
    let pside = parent.side() as u64;
    // Axis role: fixed if the coordinate lies on a parent lattice plane at
    // the parent's face (offset 0 or p·side); free otherwise.
    // Parametric position t_k in [0, p] on the parent lattice.
    let mut fixed = [false; DIM];
    let mut t = [0.0f64; DIM];
    for k in 0..DIM {
        let off = coord[k] - parent.anchor[k] as u64 * p;
        debug_assert!(off <= p * pside);
        if off == 0 || off == p * pside {
            fixed[k] = true;
        }
        t[k] = off as f64 / pside as f64; // in [0, p]
    }
    debug_assert!(
        fixed.iter().any(|&f| f),
        "hanging coordinate must lie on the parent boundary"
    );
    // Tensor-product Lagrange weights over free axes at the p-lattice of the
    // parent restricted to the minimal face.
    let free_axes: Vec<usize> = (0..DIM).filter(|&k| !fixed[k]).collect();
    let nfree = free_axes.len();
    let combos = (p + 1).pow(nfree as u32);
    for combo in 0..combos {
        let mut rem = combo;
        let mut w = weight;
        let mut src = *coord;
        for &k in &free_axes {
            let j = rem % (p + 1);
            rem /= p + 1;
            w *= lagrange_1d(p, j, t[k]);
            src[k] = parent.anchor[k] as u64 * p + j * pside;
        }
        if w.abs() < 1e-300 {
            continue;
        }
        accumulate_hanging(nodes, &parent, &src, w, acc);
    }
}

/// 1D Lagrange basis `L_j(t)` on the nodes `{0, 1, ..., p}` evaluated at `t`.
#[inline]
pub fn lagrange_1d(p: u64, j: u64, t: f64) -> f64 {
    let mut w = 1.0;
    for m in 0..=p {
        if m != j {
            w *= (t - m as f64) / (j as f64 - m as f64);
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::construct_balanced;
    use crate::construct::{construct_boundary_refined, construct_uniform};
    use carve_geom::{CarvedSolids, FullDomain, RetainBox, Sphere};
    use carve_sfc::Curve;

    #[test]
    fn lattice_linear_inverts_lattice_index() {
        let e = Octant::<3>::ROOT.child(5).child(2);
        for p in [1u64, 2] {
            for lin in 0..nodes_per_elem::<3>(p) {
                let idx = lattice_index::<3>(lin, p);
                let c = elem_node_coord(&e, p, &idx);
                assert_eq!(lattice_linear(&e, p, &c), Some(lin), "p={p} lin={lin}");
            }
            // Off-lattice coordinates (half-spacing offsets from a finer
            // neighbor, or outside the closed region) must map to None.
            let side = e.side() as u64;
            let mut c = elem_node_coord(&e, p, &[0; 3]);
            c[0] += side / 2;
            assert_eq!(lattice_linear(&e, p, &c), None);
            let mut below = elem_node_coord(&e, p, &[0; 3]);
            below[1] -= side;
            assert_eq!(lattice_linear(&e, p, &below), None);
            let mut beyond = elem_node_coord(&e, p, &[p; 3]);
            beyond[2] += side;
            assert_eq!(lattice_linear(&e, p, &beyond), None);
        }
    }

    #[test]
    fn uniform_grid_node_count_2d() {
        // Uniform level-L quadtree with order p: (p·2^L + 1)^2 nodes.
        for (l, p) in [(3u8, 1u64), (3, 2), (4, 1)] {
            let tree = construct_uniform::<2>(&FullDomain, Curve::Morton, l);
            let nodes = enumerate_nodes(&FullDomain, &tree, p);
            let n1d = p * (1 << l) + 1;
            assert_eq!(nodes.len() as u64, n1d * n1d, "l={l} p={p}");
        }
    }

    #[test]
    fn uniform_grid_node_count_3d() {
        let tree = construct_uniform::<3>(&FullDomain, Curve::Hilbert, 2);
        let nodes = enumerate_nodes(&FullDomain, &tree, 2);
        let n1d = 2u64 * 4 + 1;
        assert_eq!(nodes.len() as u64, n1d.pow(3));
    }

    #[test]
    fn hanging_nodes_are_dropped_2d() {
        // One refined quadrant next to coarse ones: the classic 2:1 pattern.
        let root = Octant::<2>::ROOT;
        let mut elems = vec![
            root.child(0).child(0),
            root.child(0).child(1),
            root.child(0).child(2),
            root.child(0).child(3),
            root.child(1),
            root.child(2),
            root.child(3),
        ];
        carve_sfc::treesort(&mut elems, Curve::Morton);
        let nodes = enumerate_nodes(&FullDomain, &elems, 1);
        // Full level-2 grid in quadrant 0: 3x3; level-1 grid: 3x3 over the
        // square = 9; shared/hanging accounting: total unique non-hanging:
        // quadrant0 contributes 9 nodes; other corners add (0.5,1),(1,0.5),
        // (1,1),(0.5,0.5) dups... Count explicitly: level-1 lattice nodes:
        // (0,0),(h,0),(1,0),(0,h),(h,h),(1,h),(0,1),(h,1),(1,1) = 9.
        // Level-2 lattice inside quadrant0: 3x3=9, overlapping 4 of the
        // level-1 nodes; of the remaining 5, the two at (0.25 on the
        // interface... coordinates (0.5,0.25),(0.25,0.5) are interface
        // midpoints: NOT hanging because both sides are level 2? The right
        // neighbor of quadrant0 at x=0.5 is child(1) at level 1 — coarser!
        // So (0.5,0.25) IS hanging. (0.25,0.5) likewise.
        // Unique non-hanging = 9 + (9 - 4 - 2) = 12.
        assert_eq!(nodes.len(), 12);
        // The hanging coordinates must be absent.
        let p = 1u64;
        let side2 = root.child(0).child(0).side() as u64;
        let hang1 = [2 * side2 * p, side2 * p]; // (0.5, 0.25) scaled
        assert!(nodes.find(&hang1).is_none());
    }

    #[test]
    fn hanging_resolution_weights_sum_to_one() {
        let root = Octant::<2>::ROOT;
        let mut elems = vec![
            root.child(0).child(0),
            root.child(0).child(1),
            root.child(0).child(2),
            root.child(0).child(3),
            root.child(1),
            root.child(2),
            root.child(3),
        ];
        carve_sfc::treesort(&mut elems, Curve::Morton);
        let nodes = enumerate_nodes(&FullDomain, &elems, 1);
        let e = root.child(0).child(1); // has hanging node on its right face
        let side = e.side() as u64;
        let hang = [2 * side, side]; // (0.5, 0.25)
        match resolve_slot(&nodes, &e, &hang) {
            SlotRef::Hanging(stencil) => {
                let total: f64 = stencil.iter().map(|s| s.1).sum();
                assert!((total - 1.0).abs() < 1e-14);
                assert_eq!(stencil.len(), 2, "midpoint of a linear edge");
                for (_, w) in &stencil {
                    assert!((w - 0.5).abs() < 1e-14);
                }
            }
            SlotRef::Direct(_) => panic!("expected hanging"),
        }
    }

    #[test]
    fn carved_boundary_nodes_are_tagged() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.3))]);
        let tree = construct_boundary_refined(&domain, Curve::Morton, 3, 5);
        let tree = construct_balanced(&domain, Curve::Morton, &tree);
        let nodes = enumerate_nodes(&domain, &tree, 1);
        let n_carved = nodes
            .flags
            .iter()
            .filter(|f| f.is_carved_boundary())
            .count();
        assert!(n_carved > 0, "intercepted elements leave carved nodes");
        // Every carved-tagged node is inside/on the disk; every untagged
        // node is strictly outside.
        for i in 0..nodes.len() {
            let u = nodes.unit_coords(i);
            let r = ((u[0] - 0.5).powi(2) + (u[1] - 0.5).powi(2)).sqrt();
            if nodes.flags[i].is_carved_boundary() {
                assert!(r <= 0.3 + 1e-12);
            } else {
                assert!(r > 0.3 - 1e-12);
            }
        }
    }

    #[test]
    fn channel_wall_nodes_are_boundary() {
        let domain = RetainBox::<2>::channel([1.0, 0.25]);
        let tree = construct_uniform(&domain, Curve::Morton, 4);
        let nodes = enumerate_nodes(&domain, &tree, 1);
        // Channel: 16x4 elements → 17x5 nodes.
        assert_eq!(nodes.len(), 17 * 5);
        for i in 0..nodes.len() {
            let u = nodes.unit_coords(i);
            let on_wall = u[0] < 1e-12 || u[0] > 1.0 - 1e-12 || u[1] < 1e-12 || u[1] > 0.25 - 1e-12;
            assert_eq!(
                nodes.flags[i].is_carved_boundary() || nodes.flags[i].is_cube_boundary(),
                on_wall,
                "node {u:?}"
            );
        }
    }

    #[test]
    fn no_hanging_node_on_carved_boundary() {
        // §3.4: "ensuring the absence of hanging nodes at the carved
        // boundary is essential". Boundary refinement puts every intercepted
        // element at the finest level, so lattice points lying in the closed
        // carved set (the subdomain-boundary nodes) are shared between
        // same-level elements and must all be real (non-hanging) DOFs.
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.29))]);
        let tree = construct_boundary_refined(&domain, Curve::Morton, 3, 6);
        let tree = construct_balanced(&domain, Curve::Morton, &tree);
        let nodes = enumerate_nodes(&domain, &tree, 1);
        let mut checked = 0;
        for e in &tree {
            if crate::construct::classify_octant(&domain, e)
                == carve_geom::RegionLabel::RetainBoundary
            {
                for lin in 0..nodes_per_elem::<2>(1) {
                    let idx = lattice_index::<2>(lin, 1);
                    let c = elem_node_coord(e, 1, &idx);
                    let unit = node_unit_coords(&c, 1);
                    if domain.point_in_carved(&unit) {
                        assert!(
                            nodes.find(&c).is_some(),
                            "hanging node {c:?} on the carved boundary of {e:?}"
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 0, "test must exercise carved-boundary nodes");
    }

    #[test]
    fn quadratic_lagrange_partition_of_unity() {
        for p in [1u64, 2] {
            for t in [0.0, 0.3, 1.0, 1.7, 2.0f64.min(p as f64)] {
                let s: f64 = (0..=p).map(|j| lagrange_1d(p, j, t)).sum();
                assert!((s - 1.0).abs() < 1e-13, "p={p} t={t}");
            }
            // Kronecker property.
            for j in 0..=p {
                for m in 0..=p {
                    let v = lagrange_1d(p, j, m as f64);
                    let want = if j == m { 1.0 } else { 0.0 };
                    assert!((v - want).abs() < 1e-13);
                }
            }
        }
    }
}
