//! Minimal data-parallel map over OS threads.
//!
//! The only data-parallel hot spot in this crate is the In/Out
//! classification pass of `construct_boundary_refined` (ray tracing per
//! octant for mesh-based geometry, §5), which was previously a `rayon`
//! `par_iter`. The build environment has no registry access, and one call
//! site does not justify a work-stealing pool, so this is a chunked
//! fork-join over `std::thread::scope`: deterministic output order,
//! `available_parallelism` workers, sequential fallback for small inputs.

use std::num::NonZeroUsize;

/// Smallest input worth forking for: below this the thread spawn overhead
/// dwarfs the work.
const MIN_PAR_LEN: usize = 64;

/// Resolves the intra-rank thread budget: `CARVE_PAR_THREADS` when set to a
/// positive integer, else the machine's `available_parallelism`. Shared by
/// [`par_map`] and the traversal engine's fork-join so one knob governs all
/// intra-rank parallelism (and CI can pin it for reproducible runs).
pub fn thread_budget() -> usize {
    std::env::var("CARVE_PAR_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Workers to actually fork for `len` units of work under `budget` threads:
/// never more workers than units, never fewer than one.
pub fn worker_count(len: usize, budget: usize) -> usize {
    budget.max(1).min(len.max(1))
}

/// Maps `f` over `items`, preserving order, splitting the slice into one
/// contiguous chunk per worker thread. `f` runs exactly once per item.
pub fn par_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: F) -> Vec<R> {
    let workers = worker_count(items.len(), thread_budget());
    if workers <= 1 || items.len() < MIN_PAR_LEN {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let f = &f;
    std::thread::scope(|s| {
        // Pair each input chunk with its output chunk; disjoint &mut slices
        // let every worker write results in place without locking.
        let mut rest = out.as_mut_slice();
        for piece in items.chunks(chunk) {
            let (head, tail) = rest.split_at_mut(piece.len());
            rest = tail;
            s.spawn(move || {
                for (slot, item) in head.iter_mut().zip(piece) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| match r {
            Some(v) => v,
            // Unreachable: every slot is paired with exactly one input item.
            None => unreachable!("par_map worker skipped a slot"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_and_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let par = par_map(&items, |x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn small_and_empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], |x| x + 1), vec![8]);
        let small: Vec<u32> = (0..10).collect();
        assert_eq!(
            par_map(&small, |x| x * 2),
            (0..20).step_by(2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uneven_chunking() {
        // Lengths around the MIN_PAR_LEN threshold and non-divisible counts.
        for n in [63usize, 64, 65, 127, 129, 1001] {
            let items: Vec<usize> = (0..n).collect();
            let got = par_map(&items, |x| x + 3);
            assert_eq!(got, (3..n + 3).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn obs_counters_accumulate_across_workers() {
        // Counters bumped inside worker threads land in the *global*
        // snapshot (each worker registers its own thread-local recorder),
        // so a fork-join map must conserve the total count.
        let _e = carve_obs::force_enabled();
        let items: Vec<u64> = (0..1000).collect();
        let key = "par_map_test_tally";
        let before = carve_obs::snapshot();
        let got = par_map(&items, |x| {
            carve_obs::counter(key, *x);
            *x
        });
        assert_eq!(got, items);
        let d = carve_obs::snapshot().diff(&before);
        let total: u64 = d
            .phases
            .values()
            .filter_map(|ph| ph.counters.get(key))
            .sum();
        assert_eq!(total, items.iter().sum::<u64>());
    }
}
