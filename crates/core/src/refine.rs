//! On-the-fly refinement and coarsening of incomplete octrees, and
//! point-cloud-driven construction — the "capable of on-the-fly refinement
//! and coarsening that matches the arbitrary function within the refinement
//! tolerance" and the "containing more than a maximal number of points from
//! an initial point cloud distribution" criteria the paper mentions
//! alongside Algorithms 1–2.

use crate::construct::classify_octant;
use carve_geom::{RegionLabel, Subdomain};
use carve_sfc::{sfc_cmp, Curve, Octant, MAX_LEVEL};
use std::cmp::Ordering;

/// Per-element adaptation decision returned by the application's criterion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Adapt {
    Refine,
    Keep,
    /// Coarsen: honored only when all retained siblings agree and the
    /// parent is not carved.
    Coarsen,
}

/// One adaptation pass: splits elements flagged `Refine` (pruning carved
/// children), merges complete sibling groups unanimously flagged `Coarsen`
/// (only when the parent region is not carved and no sibling is missing for
/// a non-carve reason), leaves the rest. The result is SFC-sorted but *not*
/// rebalanced — run [`crate::balance::construct_balanced`] afterwards.
pub fn adapt_once<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    curve: Curve,
    elems: &[Octant<DIM>],
    criterion: &dyn Fn(&Octant<DIM>) -> Adapt,
) -> Vec<Octant<DIM>> {
    let _obs = carve_obs::scope("refine");
    let nch = 1usize << DIM;
    let mut out: Vec<Octant<DIM>> = Vec::with_capacity(elems.len());
    let mut i = 0;
    while i < elems.len() {
        let e = &elems[i];
        let decision = criterion(e);
        // Try to coarsen a full sibling run: all retained children of the
        // parent must be contiguous in SFC order and unanimously Coarsen.
        // (The run may start at any child number — child 0 can be carved.)
        let first_of_run = e.level > 0
            && (i == 0
                || elems[i - 1].level < e.level
                || elems[i - 1].ancestor_at(e.level - 1) != e.parent());
        if decision == Adapt::Coarsen && first_of_run {
            // Gather the retained-sibling run starting here. Note: with
            // carving, some siblings may legitimately be absent (carved);
            // the group may still be merged iff every *retained* sibling is
            // present, flagged Coarsen, and the parent is retained.
            let parent = e.parent();
            let mut j = i;
            let mut present = Vec::with_capacity(nch);
            while j < elems.len()
                && elems[j].level == e.level
                && elems[j].ancestor_at(e.level - 1) == parent
            {
                present.push(j);
                j += 1;
            }
            let all_coarsen = present
                .iter()
                .all(|&k| criterion(&elems[k]) == Adapt::Coarsen);
            // Every non-carved child slot must be present (a child absent
            // for structural reasons — e.g. refined further — blocks the
            // merge; refined descendants would not match `level`).
            let retained_children = (0..nch)
                .filter(|&c| classify_octant(domain, &parent.child(c)) != RegionLabel::Carved)
                .count();
            let parent_ok = classify_octant(domain, &parent) != RegionLabel::Carved;
            if all_coarsen && parent_ok && present.len() == retained_children {
                out.push(parent);
                i = j;
                continue;
            }
        }
        match decision {
            Adapt::Refine if e.level < MAX_LEVEL - 1 => {
                for c in 0..nch {
                    let ch = e.child(c);
                    if classify_octant(domain, &ch) != RegionLabel::Carved {
                        out.push(ch);
                    }
                }
            }
            _ => out.push(*e),
        }
        i += 1;
    }
    carve_sfc::treesort(&mut out, curve);
    out.dedup();
    out
}

/// [`adapt_once`] followed by a 2:1 rebalance — the safe single-rank adapt
/// entry point. Coarsening alone can violate balance (a merged parent may
/// touch leaves two levels finer across a refinement front); this re-runs
/// [`crate::balance::construct_balanced`] and debug-asserts the invariant
/// on the result.
pub fn adapt_balanced<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    curve: Curve,
    elems: &[Octant<DIM>],
    criterion: &dyn Fn(&Octant<DIM>) -> Adapt,
) -> Vec<Octant<DIM>> {
    let adapted = adapt_once(domain, curve, elems, criterion);
    let balanced = crate::balance::construct_balanced(domain, curve, &adapted);
    crate::balance::debug_assert_2to1(&balanced, "adapt_balanced");
    balanced
}

/// Constructs an incomplete tree from a point cloud: leaves are refined
/// until no leaf holds more than `max_points` points (and carved leaves are
/// pruned even if points fall inside them — e.g. sensor noise inside the
/// body). Points are unit-cube coordinates.
pub fn construct_from_points<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    curve: Curve,
    points: &[[f64; DIM]],
    max_points: usize,
    max_level: u8,
) -> Vec<Octant<DIM>> {
    assert!(max_points >= 1);
    // Seed octants: the finest-permitted cell of each point; constrained
    // construction then guarantees coverage, and we coarsen level by level
    // via a top-down counting pass instead: simple recursive build.
    let mut out = Vec::new();
    let idx: Vec<usize> = (0..points.len()).collect();
    rec_points(
        domain,
        Octant::ROOT,
        points,
        idx,
        max_points,
        max_level,
        &mut out,
    );
    carve_sfc::treesort(&mut out, curve);
    out
}

#[allow(clippy::too_many_arguments)]
fn rec_points<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    s: Octant<DIM>,
    points: &[[f64; DIM]],
    mine: Vec<usize>,
    max_points: usize,
    max_level: u8,
    out: &mut Vec<Octant<DIM>>,
) {
    if classify_octant(domain, &s) == RegionLabel::Carved {
        return; // prune, points inside notwithstanding
    }
    if mine.len() <= max_points || s.level >= max_level {
        out.push(s);
        return;
    }
    let (min, side) = s.bounds_unit();
    let half = side * 0.5;
    let mut buckets: Vec<Vec<usize>> = (0..(1 << DIM)).map(|_| Vec::new()).collect();
    for i in mine {
        let p = &points[i];
        let mut c = 0usize;
        for k in 0..DIM {
            if p[k] >= min[k] + half {
                c |= 1 << k;
            }
        }
        buckets[c].push(i);
    }
    for (c, bucket) in buckets.into_iter().enumerate() {
        rec_points(
            domain,
            s.child(c),
            points,
            bucket,
            max_points,
            max_level,
            out,
        );
    }
}

/// Checks that `tree` covers every retained point of a probe set and that
/// levels respect the given bounds (used by adaptation tests).
pub fn covers_point<const DIM: usize>(tree: &[Octant<DIM>], curve: Curve, p: &[f64; DIM]) -> bool {
    let side = carve_sfc::octant::ROOT_SIDE as f64;
    let mut pt = [0u64; DIM];
    for k in 0..DIM {
        pt[k] = (p[k] * side) as u64;
    }
    let cell = carve_sfc::morton::finest_cell_of_point(&pt);
    let idx = tree.partition_point(|e| sfc_cmp(curve, e, &cell) != Ordering::Greater);
    idx > 0 && tree[idx - 1].is_ancestor_or_self(&cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{check_2to1, construct_balanced};
    use crate::construct::{check_tree_invariants, construct_uniform};
    use carve_geom::{CarvedSolids, FullDomain, Sphere};

    #[test]
    fn refine_then_coarsen_roundtrips() {
        let domain = FullDomain;
        let base = construct_uniform::<2>(&domain, Curve::Morton, 3);
        // Refine everything once, then coarsen everything: back to start.
        let refined = adapt_once(&domain, Curve::Morton, &base, &|_| Adapt::Refine);
        assert_eq!(refined.len(), base.len() * 4);
        let coarsened = adapt_once(&domain, Curve::Morton, &refined, &|_| Adapt::Coarsen);
        assert_eq!(coarsened, base);
    }

    #[test]
    fn coarsen_blocked_by_partial_agreement() {
        let domain = FullDomain;
        let base = construct_uniform::<2>(&domain, Curve::Morton, 2);
        // Only half the elements want to coarsen: sibling groups with mixed
        // votes must stay.
        let crit = |e: &Octant<2>| {
            if e.anchor[0] < carve_sfc::octant::ROOT_SIDE / 2 {
                Adapt::Coarsen
            } else {
                Adapt::Keep
            }
        };
        let adapted = adapt_once(&domain, Curve::Morton, &base, &crit);
        // Left half (x < 0.5): whole sibling groups lie in the left half at
        // level 2 (groups are level-1 quadrants): quadrants 0 and 2 merge.
        assert!(adapted.len() < base.len());
        assert!(adapted.len() > base.len() / 4);
        check_tree_invariants(&domain, Curve::Morton, &adapted).unwrap();
    }

    #[test]
    fn coarsen_respects_carved_regions() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.3))]);
        let tree = construct_uniform(&domain, Curve::Hilbert, 4);
        let coarsened = adapt_once(&domain, Curve::Hilbert, &tree, &|_| Adapt::Coarsen);
        check_tree_invariants(&domain, Curve::Hilbert, &coarsened).unwrap();
        // No carved leaf appeared, and area is preserved... coarsening near
        // the disk may recover area that the level-4 carving removed, so
        // area can only grow (coarser staircase hugs the circle less
        // tightly).
        let area = |t: &[Octant<2>]| -> f64 {
            t.iter()
                .map(|o| {
                    let s = o.bounds_unit().1;
                    s * s
                })
                .sum()
        };
        assert!(area(&coarsened) >= area(&tree) - 1e-12);
    }

    #[test]
    fn adapt_then_balance_is_valid() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.3, 0.6], 0.2))]);
        let mut tree = construct_uniform(&domain, Curve::Hilbert, 3);
        // Refine elements near the disk twice, then coarsen far ones.
        for _ in 0..2 {
            tree = adapt_once(&domain, Curve::Hilbert, &tree, &|e: &Octant<2>| {
                let c = e.center_unit();
                let d = ((c[0] - 0.3f64).powi(2) + (c[1] - 0.6).powi(2)).sqrt();
                if d < 0.3 {
                    Adapt::Refine
                } else if d > 0.6 {
                    Adapt::Coarsen
                } else {
                    Adapt::Keep
                }
            });
        }
        let balanced = construct_balanced(&domain, Curve::Hilbert, &tree);
        check_tree_invariants(&domain, Curve::Hilbert, &balanced).unwrap();
        check_2to1(&balanced).unwrap();
    }

    #[test]
    fn coarsening_next_to_refinement_front_restores_balance() {
        // Regression: start from a balanced tree with a refinement front,
        // then coarsen the cells right next to the front. adapt_once alone
        // yields merged parents touching leaves two levels finer — a 2:1
        // violation — which adapt_balanced must repair.
        let domain = FullDomain;
        let base = construct_uniform::<2>(&domain, Curve::Morton, 3);
        // Build the front: refine the left column twice.
        let mut tree = base;
        for _ in 0..2 {
            tree = adapt_balanced(&domain, Curve::Morton, &tree, &|e: &Octant<2>| {
                if e.center_unit()[0] < 0.125 {
                    Adapt::Refine
                } else {
                    Adapt::Keep
                }
            });
        }
        check_2to1(&tree).unwrap();
        // Coarsen everything right of the front; the band adjacent to the
        // fine column merges to level 2 while the column stays at level 5.
        let crit = |e: &Octant<2>| {
            if e.center_unit()[0] > 0.2 {
                Adapt::Coarsen
            } else {
                Adapt::Keep
            }
        };
        let raw = adapt_once(&domain, Curve::Morton, &tree, &crit);
        assert!(
            check_2to1(&raw).is_err(),
            "scenario must actually break balance without the rebalance step"
        );
        let repaired = adapt_balanced(&domain, Curve::Morton, &tree, &crit);
        check_2to1(&repaired).unwrap();
        check_tree_invariants(&domain, Curve::Morton, &repaired).unwrap();
        // The repair is stable: adapting again with all-Keep is identity.
        let again = adapt_balanced(&domain, Curve::Morton, &repaired, &|_| Adapt::Keep);
        assert_eq!(again, repaired);
    }

    #[test]
    fn point_cloud_construction_bounds_occupancy() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        // Clustered points around two hot spots.
        let mut pts: Vec<[f64; 2]> = Vec::new();
        for _ in 0..500 {
            pts.push([
                (0.2 + 0.05 * rng.gen::<f64>()).min(0.999),
                (0.7 + 0.05 * rng.gen::<f64>()).min(0.999),
            ]);
        }
        for _ in 0..100 {
            pts.push([rng.gen(), rng.gen()]);
        }
        let domain = FullDomain;
        let tree = construct_from_points(&domain, Curve::Morton, &pts, 20, 9);
        check_tree_invariants(&domain, Curve::Morton, &tree).unwrap();
        // Occupancy bound: count points per leaf.
        for e in &tree {
            if e.level >= 9 {
                continue; // level cap may exceed occupancy
            }
            let (min, side) = e.bounds_unit();
            let inside = pts
                .iter()
                .filter(|p| (0..2).all(|k| p[k] >= min[k] && p[k] < min[k] + side))
                .count();
            assert!(inside <= 20, "leaf {e:?} holds {inside} points");
        }
        // Hot spots produce deeper refinement than the sparse region.
        let depth_at = |x: f64, y: f64| -> u8 {
            tree.iter()
                .find(|e| {
                    let (min, side) = e.bounds_unit();
                    x >= min[0] && x < min[0] + side && y >= min[1] && y < min[1] + side
                })
                .map(|e| e.level)
                .unwrap_or(0)
        };
        assert!(depth_at(0.22, 0.72) > depth_at(0.8, 0.2));
    }

    #[test]
    fn point_cloud_prunes_carved_even_with_points_inside() {
        let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.25))]);
        let pts: Vec<[f64; 2]> = (0..64)
            .map(|i| {
                let t = i as f64 / 64.0 * std::f64::consts::TAU;
                [0.5 + 0.1 * t.cos(), 0.5 + 0.1 * t.sin()] // all inside disk
            })
            .collect();
        let tree = construct_from_points(&domain, Curve::Hilbert, &pts, 4, 8);
        check_tree_invariants(&domain, Curve::Hilbert, &tree).unwrap();
        assert!(!covers_point(&tree, Curve::Hilbert, &[0.5, 0.5]));
        assert!(covers_point(&tree, Curve::Hilbert, &[0.05, 0.05]));
    }
}
