//! 1D Lagrange bases on the unit interval and Gauss–Legendre quadrature.
//!
//! Reference element is `\[0,1\]^DIM`; order-`p` nodes sit at `i/p`,
//! enumerated x-fastest to match `carve_core::nodes::lattice_index`.

/// A 1D quadrature rule on `\[0,1\]`.
#[derive(Clone, Debug)]
pub struct Quadrature {
    pub points: Vec<f64>,
    pub weights: Vec<f64>,
}

/// Gauss–Legendre rule with `n` points on `\[0,1\]` (exact for degree
/// `2n - 1`). Supports `n = 1..=5`.
pub fn gauss_rule(n: usize) -> Quadrature {
    // Abscissae/weights on [-1,1], mapped to [0,1].
    let (x, w): (Vec<f64>, Vec<f64>) = match n {
        1 => (vec![0.0], vec![2.0]),
        2 => {
            let a = 1.0 / 3.0f64.sqrt();
            (vec![-a, a], vec![1.0, 1.0])
        }
        3 => {
            let a = (3.0f64 / 5.0).sqrt();
            (vec![-a, 0.0, a], vec![5.0 / 9.0, 8.0 / 9.0, 5.0 / 9.0])
        }
        4 => {
            let a = (3.0f64 / 7.0 - 2.0 / 7.0 * (6.0f64 / 5.0).sqrt()).sqrt();
            let b = (3.0f64 / 7.0 + 2.0 / 7.0 * (6.0f64 / 5.0).sqrt()).sqrt();
            let wa = (18.0 + 30.0f64.sqrt()) / 36.0;
            let wb = (18.0 - 30.0f64.sqrt()) / 36.0;
            (vec![-b, -a, a, b], vec![wb, wa, wa, wb])
        }
        5 => {
            let a = 1.0 / 3.0 * (5.0f64 - 2.0 * (10.0f64 / 7.0).sqrt()).sqrt();
            let b = 1.0 / 3.0 * (5.0f64 + 2.0 * (10.0f64 / 7.0).sqrt()).sqrt();
            let wa = (322.0 + 13.0 * 70.0f64.sqrt()) / 900.0;
            let wb = (322.0 - 13.0 * 70.0f64.sqrt()) / 900.0;
            (vec![-b, -a, 0.0, a, b], vec![wb, wa, 128.0 / 225.0, wa, wb])
        }
        _ => panic!("gauss_rule supports 1..=5 points"),
    };
    Quadrature {
        points: x.iter().map(|xi| 0.5 * (xi + 1.0)).collect(),
        weights: w.iter().map(|wi| 0.5 * wi).collect(),
    }
}

/// Order-`p` Lagrange basis `φ_j` (nodes at `i/p` on `\[0,1\]`) at `t`.
#[inline]
pub fn lagrange_eval_unit(p: usize, j: usize, t: f64) -> f64 {
    let mut v = 1.0;
    let pj = j as f64 / p as f64;
    for m in 0..=p {
        if m != j {
            let pm = m as f64 / p as f64;
            v *= (t - pm) / (pj - pm);
        }
    }
    v
}

/// Derivative `φ_j'(t)` on `\[0,1\]`.
#[inline]
pub fn lagrange_deriv_unit(p: usize, j: usize, t: f64) -> f64 {
    let pj = j as f64 / p as f64;
    let mut sum = 0.0;
    for l in 0..=p {
        if l == j {
            continue;
        }
        let pl = l as f64 / p as f64;
        let mut term = 1.0 / (pj - pl);
        for m in 0..=p {
            if m != j && m != l {
                let pm = m as f64 / p as f64;
                term *= (t - pm) / (pj - pm);
            }
        }
        sum += term;
    }
    sum
}

/// Tabulated 1D basis values and derivatives at quadrature points:
/// `b[q][j] = φ_j(x_q)`, `g[q][j] = φ_j'(x_q)`.
#[derive(Clone, Debug)]
pub struct Tabulated {
    pub nq: usize,
    pub nb: usize,
    pub b: Vec<f64>,
    pub g: Vec<f64>,
    pub quad: Quadrature,
}

impl Tabulated {
    pub fn new(p: usize, nq: usize) -> Self {
        let quad = gauss_rule(nq);
        let nb = p + 1;
        let mut b = vec![0.0; nq * nb];
        let mut g = vec![0.0; nq * nb];
        for (q, &x) in quad.points.iter().enumerate() {
            for j in 0..nb {
                b[q * nb + j] = lagrange_eval_unit(p, j, x);
                g[q * nb + j] = lagrange_deriv_unit(p, j, x);
            }
        }
        Self { nq, nb, b, g, quad }
    }

    #[inline]
    pub fn basis(&self, q: usize, j: usize) -> f64 {
        self.b[q * self.nb + j]
    }

    #[inline]
    pub fn deriv(&self, q: usize, j: usize) -> f64 {
        self.g[q * self.nb + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauss_rules_integrate_polynomials_exactly() {
        for n in 1..=5usize {
            let q = gauss_rule(n);
            assert!((q.weights.iter().sum::<f64>() - 1.0).abs() < 1e-14);
            // Exact for x^k, k <= 2n-1: ∫_0^1 x^k = 1/(k+1).
            for k in 0..=(2 * n - 1) {
                let integral: f64 = q
                    .points
                    .iter()
                    .zip(&q.weights)
                    .map(|(x, w)| w * x.powi(k as i32))
                    .sum();
                assert!(
                    (integral - 1.0 / (k as f64 + 1.0)).abs() < 1e-13,
                    "n={n} k={k}: {integral}"
                );
            }
        }
    }

    #[test]
    fn lagrange_kronecker_and_partition() {
        for p in [1usize, 2, 3] {
            for j in 0..=p {
                for i in 0..=p {
                    let v = lagrange_eval_unit(p, j, i as f64 / p as f64);
                    let want = if i == j { 1.0 } else { 0.0 };
                    assert!((v - want).abs() < 1e-13);
                }
            }
            for t in [0.0, 0.2, 0.55, 1.0] {
                let s: f64 = (0..=p).map(|j| lagrange_eval_unit(p, j, t)).sum();
                assert!((s - 1.0).abs() < 1e-13);
                let ds: f64 = (0..=p).map(|j| lagrange_deriv_unit(p, j, t)).sum();
                assert!(ds.abs() < 1e-12, "derivative of partition of unity");
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-6;
        for p in [1usize, 2] {
            for j in 0..=p {
                for t in [0.13, 0.5, 0.78] {
                    let fd = (lagrange_eval_unit(p, j, t + h) - lagrange_eval_unit(p, j, t - h))
                        / (2.0 * h);
                    let an = lagrange_deriv_unit(p, j, t);
                    assert!((fd - an).abs() < 1e-7, "p={p} j={j} t={t}");
                }
            }
        }
    }

    #[test]
    fn tabulated_consistency() {
        let tab = Tabulated::new(2, 3);
        assert_eq!(tab.nq, 3);
        assert_eq!(tab.nb, 3);
        for q in 0..3 {
            let s: f64 = (0..3).map(|j| tab.basis(q, j)).sum();
            assert!((s - 1.0).abs() < 1e-13);
        }
    }
}
