//! Discretization-error norms against a manufactured/exact solution,
//! computed by element quadrature restricted to the true (non-carved)
//! domain.

use crate::basis::{gauss_rule, lagrange_eval_unit};
use carve_core::{resolve_slot, Mesh, SlotRef};
use carve_geom::Subdomain;
use carve_sfc::Octant;

/// L2 and L∞ errors plus mesh metadata for convergence tables.
#[derive(Clone, Copy, Debug)]
pub struct ErrorNorms {
    pub l2: f64,
    pub linf: f64,
    /// Finest element size (unit-cube units × scale).
    pub h_min: f64,
    pub dofs: usize,
}

/// Extracts the element-local nodal values of a grid vector, resolving
/// hanging slots through their interpolation stencils.
pub fn elem_values<const DIM: usize>(mesh: &Mesh<DIM>, u: &[f64], e: &Octant<DIM>) -> Vec<f64> {
    let p = mesh.order;
    let npe = carve_core::nodes::nodes_per_elem::<DIM>(p);
    let mut vals = vec![0.0; npe];
    for (lin, v) in vals.iter_mut().enumerate().take(npe) {
        let idx = carve_core::nodes::lattice_index::<DIM>(lin, p);
        let c = carve_core::nodes::elem_node_coord(e, p, &idx);
        *v = match resolve_slot(&mesh.nodes, e, &c) {
            SlotRef::Direct(i) => u[i],
            SlotRef::Hanging(st) => st.iter().map(|(i, w)| u[*i] * w).sum(),
        };
    }
    vals
}

/// Evaluates the FE solution at reference coordinates `tref ∈ \[0,1\]^DIM`
/// inside element `e`, given its local nodal values.
pub fn eval_local<const DIM: usize>(p: usize, vals: &[f64], tref: &[f64; DIM]) -> f64 {
    let nb = p + 1;
    let mut out = 0.0;
    for (lin, v) in vals.iter().enumerate() {
        let mut r = lin;
        let mut b = 1.0;
        for &tk in tref.iter().take(DIM) {
            let j = r % nb;
            r /= nb;
            b *= lagrange_eval_unit(p, j, tk);
        }
        out += v * b;
    }
    out
}

/// Computes ‖u_h − u‖ in L2 and L∞ over the retained domain, skipping
/// quadrature points that fall in the carved set (where the PDE is not
/// posed). Positions passed to `exact` are unit-cube coordinates scaled by
/// `scale`.
pub fn l2_linf_error<const DIM: usize>(
    mesh: &Mesh<DIM>,
    domain: &dyn Subdomain<DIM>,
    u: &[f64],
    exact: &dyn Fn(&[f64; DIM]) -> f64,
    scale: f64,
) -> ErrorNorms {
    let p = mesh.order as usize;
    let quad = gauss_rule((p + 2).min(5));
    let nq1 = quad.points.len();
    let nqs = nq1.pow(DIM as u32);
    let mut l2 = 0.0;
    let mut linf = 0.0f64;
    let mut h_min = f64::INFINITY;
    for e in &mesh.elems {
        let (emin, h) = e.bounds_unit();
        h_min = h_min.min(h * scale);
        let vals = elem_values(mesh, u, e);
        let vol_scale = (h * scale).powi(DIM as i32);
        for qlin in 0..nqs {
            let mut rem = qlin;
            let mut tref = [0.0; DIM];
            let mut w = 1.0;
            for tk in tref.iter_mut().take(DIM) {
                let qi = rem % nq1;
                rem /= nq1;
                *tk = quad.points[qi];
                w *= quad.weights[qi];
            }
            let mut x_unit = [0.0; DIM];
            let mut x_phys = [0.0; DIM];
            for k in 0..DIM {
                x_unit[k] = emin[k] + h * tref[k];
                x_phys[k] = x_unit[k] * scale;
            }
            if domain.point_in_carved(&x_unit) {
                continue; // outside the true domain
            }
            let uh = eval_local(mesh.order as usize, &vals, &tref);
            let diff = uh - exact(&x_phys);
            l2 += vol_scale * w * diff * diff;
            linf = linf.max(diff.abs());
        }
    }
    // Also check the nodal values on retained nodes (standard L∞ probe).
    for (i, &ui) in u.iter().enumerate() {
        if mesh.nodes.flags[i].is_carved_boundary() {
            continue;
        }
        let xu = mesh.nodes.unit_coords(i);
        let mut xp = [0.0; DIM];
        for (xpk, &xuk) in xp.iter_mut().zip(&xu) {
            *xpk = xuk * scale;
        }
        linf = linf.max((ui - exact(&xp)).abs());
    }
    ErrorNorms {
        l2: l2.sqrt(),
        linf,
        h_min,
        dofs: mesh.num_dofs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_geom::FullDomain;
    use carve_sfc::Curve;

    #[test]
    fn interpolant_of_linear_function_has_zero_error() {
        let mesh = Mesh::<2>::build(&FullDomain, Curve::Morton, 3, 3, 1);
        let exact = |x: &[f64; 2]| 2.0 * x[0] - 0.5 * x[1] + 1.0;
        let u: Vec<f64> = (0..mesh.num_dofs())
            .map(|i| exact(&mesh.nodes.unit_coords(i)))
            .collect();
        let norms = l2_linf_error(&mesh, &FullDomain, &u, &exact, 1.0);
        assert!(norms.l2 < 1e-13, "{norms:?}");
        assert!(norms.linf < 1e-13);
    }

    #[test]
    fn quadratic_interpolant_exact_for_p2() {
        let mesh = Mesh::<2>::build(&FullDomain, Curve::Morton, 2, 2, 2);
        let exact = |x: &[f64; 2]| x[0] * x[0] + 3.0 * x[0] * x[1] - x[1] * x[1];
        let u: Vec<f64> = (0..mesh.num_dofs())
            .map(|i| exact(&mesh.nodes.unit_coords(i)))
            .collect();
        let norms = l2_linf_error(&mesh, &FullDomain, &u, &exact, 1.0);
        assert!(norms.l2 < 1e-12, "{norms:?}");
    }

    #[test]
    fn interpolation_error_scales_second_order_p1() {
        let exact = |x: &[f64; 2]| (3.0 * x[0]).sin() * (2.0 * x[1]).cos();
        let mut errs = Vec::new();
        for l in [3u8, 4, 5] {
            let mesh = Mesh::<2>::build(&FullDomain, Curve::Morton, l, l, 1);
            let u: Vec<f64> = (0..mesh.num_dofs())
                .map(|i| exact(&mesh.nodes.unit_coords(i)))
                .collect();
            let norms = l2_linf_error(&mesh, &FullDomain, &u, &exact, 1.0);
            errs.push(norms.l2);
        }
        let rate1 = (errs[0] / errs[1]).log2();
        let rate2 = (errs[1] / errs[2]).log2();
        assert!(rate1 > 1.8 && rate1 < 2.2, "rate {rate1}");
        assert!(rate2 > 1.8 && rate2 < 2.2, "rate {rate2}");
    }
}
