//! Per-element error estimation and marking for the dynamic AMR cycle.
//!
//! The indicator is the element's *energy seminorm* of the discrete field,
//! `η_e = sqrt(uₑᵀ Kₑ uₑ) = |u|_{H¹(e)}`: cheap (one sum-factorized
//! elemental apply per owned element with per-level geometric factors from
//! [`LevelScales`], no extra communication), and for the transient heat
//! runs it concentrates exactly where the solution has gradient content —
//! fronts get refined, flat wakes get coarsened. Marking uses the classic
//! maximum strategy: refine above `θ_r · max η`, coarsen below
//! `θ_c · max η`, with a single `all_reduce` supplying the global maximum
//! so every rank marks against the same scale.
//!
//! Both passes are sequential per rank and the reduction is the
//! deterministic simulated collective, so marks — and therefore whole adapt
//! traces — are bitwise reproducible across thread counts and chaos
//! schedules.

use crate::poisson::{ElementCache, LevelScales};
use carve_comm::{Comm, ReduceOp};
use carve_core::nodes::{elem_node_coord, lattice_index, nodes_per_elem};
use carve_core::{resolve_slot, Adapt, DistMesh, SlotRef};
use carve_sfc::Octant;

/// Gathers the elemental DOF values of `e` from a (ghost-consistent) nodal
/// field on a distributed mesh, expanding hanging slots through their
/// stencils.
pub fn elem_values_dist<const DIM: usize>(
    dm: &DistMesh<DIM>,
    u: &[f64],
    e: &Octant<DIM>,
) -> Vec<f64> {
    let p = dm.order;
    let npe = nodes_per_elem::<DIM>(p);
    let mut vals = Vec::with_capacity(npe);
    for lin in 0..npe {
        let idx = lattice_index::<DIM>(lin, p);
        let c = elem_node_coord(e, p, &idx);
        let v = match resolve_slot(&dm.nodes, e, &c) {
            SlotRef::Direct(i) => u[i],
            SlotRef::Hanging(st) => st.iter().map(|&(i, w)| w * u[i]).sum(),
        };
        vals.push(v);
    }
    vals
}

/// Energy-seminorm indicators `η_e = sqrt(uₑᵀ Kₑ uₑ)` for every *owned*
/// element. `u` must be ghost-consistent (run `ghost_read` after the
/// solve); `scale` is the physical side length of the unit cube.
pub fn energy_error_indicators<const DIM: usize>(
    dm: &DistMesh<DIM>,
    cache: &mut ElementCache<DIM>,
    u: &[f64],
    scale: f64,
) -> Vec<f64> {
    let npe = nodes_per_elem::<DIM>(dm.order);
    let scales = LevelScales::new::<DIM>(scale);
    let mut eta = Vec::with_capacity(dm.owned.len());
    let mut ku = vec![0.0; npe];
    for e in &dm.elems[dm.owned.clone()] {
        let mut vals = elem_values_dist(dm, u, e);
        // The seminorm is invariant under constant shifts, but Kref only
        // annihilates constants analytically — shift so a flat element
        // yields exactly zero instead of accumulated rounding.
        let shift = vals[0];
        vals.iter_mut().for_each(|v| *v -= shift);
        ku.iter_mut().for_each(|v| *v = 0.0);
        cache.apply_stiffness_tensor_scaled(scales.stiffness(e.level), &vals, &mut ku);
        let energy: f64 = vals.iter().zip(&ku).map(|(a, b)| a * b).sum();
        eta.push(energy.max(0.0).sqrt());
    }
    eta
}

/// Maximum-strategy marking: `Refine` where `η > θ_r · max η`, `Coarsen`
/// where `η < θ_c · max η`, `Keep` between. The maximum is global
/// (collective), so all ranks mark against one scale; a nonpositive global
/// maximum (identically flat field) keeps everything.
pub fn mark_max_strategy<const DIM: usize>(
    comm: &Comm,
    dm: &DistMesh<DIM>,
    eta: &[f64],
    theta_refine: f64,
    theta_coarsen: f64,
) -> Vec<Adapt> {
    assert_eq!(eta.len(), dm.owned.len());
    let local_max = eta.iter().cloned().fold(0.0f64, f64::max);
    let gmax = comm.all_reduce_f64(local_max, ReduceOp::Max);
    if gmax <= 0.0 {
        return vec![Adapt::Keep; eta.len()];
    }
    eta.iter()
        .map(|&e| {
            if e > theta_refine * gmax {
                Adapt::Refine
            } else if e < theta_coarsen * gmax {
                Adapt::Coarsen
            } else {
                Adapt::Keep
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use carve_comm::run_spmd;
    use carve_geom::{CarvedSolids, Sphere};
    use carve_sfc::Curve;

    #[test]
    fn indicators_flag_gradient_content_and_marks_agree() {
        let res = run_spmd(2, |c| {
            let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))]);
            let dm = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 4, 1);
            let mut cache = ElementCache::<2>::new(1);
            // A field varying only for x < 0.5: indicators must vanish on
            // elements strictly right of the ramp.
            let u: Vec<f64> = (0..dm.nodes.len())
                .map(|i| {
                    let x = dm.nodes.unit_coords(i)[0];
                    (0.5 - x).max(0.0)
                })
                .collect();
            let eta = energy_error_indicators(&dm, &mut cache, &u, 1.0);
            for (e, &et) in dm.elems[dm.owned.clone()].iter().zip(&eta) {
                let (min, _side) = e.bounds_unit();
                if min[0] >= 0.5 {
                    assert!(et < 1e-12, "flat element {e:?} has η = {et}");
                }
            }
            let marks = mark_max_strategy(c, &dm, &eta, 0.5, 0.1);
            // The global max lives on the ramp: at least one rank refines,
            // and every flat element coarsens.
            let n_refine = marks.iter().filter(|m| **m == Adapt::Refine).count();
            for (e, m) in dm.elems[dm.owned.clone()].iter().zip(&marks) {
                if e.bounds_unit().0[0] >= 0.5 {
                    assert_eq!(*m, Adapt::Coarsen);
                }
            }
            n_refine
        });
        assert!(res.iter().sum::<usize>() > 0, "nobody refined: {res:?}");
    }

    #[test]
    fn flat_field_keeps_everything() {
        run_spmd(2, |c| {
            let domain = CarvedSolids::<2>::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))]);
            let dm = DistMesh::<2>::build(c, &domain, Curve::Hilbert, 3, 4, 1);
            let mut cache = ElementCache::<2>::new(1);
            let u = vec![3.25; dm.nodes.len()];
            let eta = energy_error_indicators(&dm, &mut cache, &u, 1.0);
            assert!(eta.iter().all(|e| *e < 1e-12));
            let marks = mark_max_strategy(c, &dm, &eta, 0.5, 0.1);
            assert!(marks.iter().all(|m| *m == Adapt::Keep));
        });
    }
}
