//! Point evaluation of an FE field on a (distributed) octree mesh.
//!
//! Shared by the transient stepper's field transfer (integer nodal-lattice
//! points, [`NudgePolicy::AnyAxis`]) and the serving engine's
//! [`crate::serve::ServedField`] reads (arbitrary unit-cube points,
//! [`NudgePolicy::FaceOnly`]). One implementation, two nudge disciplines:
//!
//! * **Coordinates** are given on the *nodal lattice*: the unit cube scaled
//!   by `p · 2^MAX_LEVEL`, so every node of every admissible element sits on
//!   an exact integer. Integer lattice coordinates below `2^53` are exactly
//!   representable in `f64`, and the reference-coordinate arithmetic
//!   (`latt − p·anchor`, then the scale to `[0, p]`) is bit-for-bit the
//!   same as the historical `i64` path — the transfer wrapper stays bitwise
//!   identical to its pre-refactor behavior, which the adapt-determinism CI
//!   stage pins.
//! * **Nudging.** A point on a cell face borders up to `2^DIM` cells, and
//!   the `++` side cell may be carved away or remote. `AnyAxis` tries every
//!   down-nudge combination on every axis — the transfer discipline, where
//!   all queried points are mesh nodes and any adjacent cell evaluates them
//!   consistently. `FaceOnly` nudges only along axes where the point sits
//!   *exactly* on a face: for interior points the covering leaf is then
//!   unique, so the evaluated polynomial is the one whose element actually
//!   contains the point — never an extrapolation from a neighbor — which
//!   keeps served point reads independent of the rank layout.

use carve_core::nodes::{elem_node_coord, lagrange_1d, lattice_index, nodes_per_elem};
use carve_core::{find_leaf, resolve_slot, splitter_bin, NodeSet, SlotRef};
use carve_sfc::morton::finest_cell_of_point;
use carve_sfc::{Curve, Octant};
use std::ops::Range;

/// Down-nudge discipline for points on cell faces (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NudgePolicy {
    /// Try every down-nudge combination on every axis (field-transfer
    /// semantics: nodes only, any adjacent cell agrees).
    AnyAxis,
    /// Nudge only along axes where the point lies exactly on a cell face
    /// (serving semantics: the covering leaf contains the point).
    FaceOnly,
}

/// Borrowed view of an FE field and the mesh it lives on — enough to
/// evaluate at a point through this rank's owned leaves. Both `Mesh`-like
/// snapshots (the transfer's `OldMesh`) and live [`carve_core::DistMesh`]es
/// project onto this.
pub struct FieldView<'a, const DIM: usize> {
    pub curve: Curve,
    pub elems: &'a [Octant<DIM>],
    /// Owned leaf range: evaluation only uses owned leaves, whose stencil
    /// closures are fully resolvable in the local node set.
    pub owned: Range<usize>,
    pub nodes: &'a NodeSet<DIM>,
    pub u: &'a [f64],
}

/// Finest-level cell-grid coordinate of lattice point `latt` along one
/// axis, plus whether the point sits exactly on a cell face. Exact: cell
/// coordinates are below `2^21·8`, far inside `f64`'s integer range, and
/// the quotient's distance to the nearest integer is at least `1/p` when
/// nonzero — rounding can never carry `floor` across an integer.
#[inline]
fn cell_of(latt: f64, p: u64) -> (u64, bool) {
    let q = latt / p as f64;
    let fl = q.floor();
    (fl as u64, q == fl)
}

/// Evaluates `fv`'s field at nodal-lattice coordinate `latt` using only the
/// view's owned leaves. `None`: the covering leaf is remote, or the point
/// is not covered by the (carved) mesh at all.
pub fn eval_field_lattice<const DIM: usize>(
    fv: &FieldView<'_, DIM>,
    latt: &[f64; DIM],
    policy: NudgePolicy,
) -> Option<f64> {
    let p = fv.nodes.order;
    let mut pt = [0u64; DIM];
    let mut on_face = [false; DIM];
    for k in 0..DIM {
        (pt[k], on_face[k]) = cell_of(latt[k], p);
    }
    let mut li = None;
    'combo: for combo in 0..(1usize << DIM) {
        let mut pt2 = pt;
        for (k, v) in pt2.iter_mut().enumerate() {
            if (combo >> k) & 1 == 1 {
                if *v == 0 || (policy == NudgePolicy::FaceOnly && !on_face[k]) {
                    continue 'combo;
                }
                *v -= 1;
            }
        }
        if let Some(i) = find_leaf(fv.elems, fv.curve, &finest_cell_of_point(&pt2)) {
            if fv.owned.contains(&i) {
                li = Some(i);
                break;
            }
        }
    }
    let leaf = &fv.elems[li?];
    // Reference coordinates inside the leaf, then tensor-Lagrange through
    // the leaf's (possibly hanging) lattice — the `build_transfer` recipe.
    let side = leaf.side() as u64;
    let npe = nodes_per_elem::<DIM>(p);
    let mut tref = [0.0f64; DIM];
    for k in 0..DIM {
        let off = latt[k] - (leaf.anchor[k] as u64 * p) as f64;
        tref[k] = off / (side * p) as f64 * p as f64;
    }
    let mut val = 0.0;
    for lin in 0..npe {
        let idx = lattice_index::<DIM>(lin, p);
        let mut w = 1.0;
        for k in 0..DIM {
            w *= lagrange_1d(p, idx[k], tref[k]);
        }
        if w.abs() < 1e-14 {
            continue;
        }
        let c = elem_node_coord(leaf, p, &idx);
        let s = match resolve_slot(fv.nodes, leaf, &c) {
            SlotRef::Direct(j) => fv.u[j],
            SlotRef::Hanging(st) => st.iter().map(|&(j, wj)| wj * fv.u[j]).sum(),
        };
        val += w * s;
    }
    Some(val)
}

/// Candidate owner ranks for lattice point `latt` under `splitters`: the
/// splitter bins of every cell the nudge policy may probe, ascending and
/// deduplicated. The rank owning the covering leaf is always among them (a
/// leaf's descendant keys bin to its owner), so probing these ranks in
/// order makes remote evaluation deterministic — the lowest rank that
/// evaluates wins.
pub fn candidate_bins<const DIM: usize>(
    splitters: &[Option<Octant<DIM>>],
    curve: Curve,
    p: u64,
    latt: &[f64; DIM],
    policy: NudgePolicy,
) -> Vec<usize> {
    let mut pt = [0u64; DIM];
    let mut on_face = [false; DIM];
    for k in 0..DIM {
        (pt[k], on_face[k]) = cell_of(latt[k], p);
    }
    let mut bins: Vec<usize> = Vec::new();
    'combo: for combo in 0..(1usize << DIM) {
        let mut pt2 = pt;
        for (k, v) in pt2.iter_mut().enumerate() {
            if (combo >> k) & 1 == 1 {
                if *v == 0 || (policy == NudgePolicy::FaceOnly && !on_face[k]) {
                    continue 'combo;
                }
                *v -= 1;
            }
        }
        bins.push(splitter_bin(splitters, curve, &finest_cell_of_point(&pt2)));
    }
    bins.sort_unstable();
    bins.dedup();
    bins
}
