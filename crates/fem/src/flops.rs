//! FLOP and byte accounting for the roofline study (Fig. 12).
//!
//! The paper quotes MATVEC compute complexity `O(d(p+1)^{d+1})` per element
//! (sum-factorized tensor kernels) against data movement `O((p+1)^d)`, so
//! arithmetic intensity rises with order — the mechanism behind AI(p=2) >
//! AI(p=1) and the memory-bound placement of both.

/// Running FLOP/byte counters for a kernel sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlopCount {
    pub flops: u64,
    pub bytes: u64,
}

impl FlopCount {
    /// Arithmetic intensity (FLOP per byte).
    pub fn ai(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }

    pub fn add(&mut self, other: FlopCount) {
        self.flops += other.flops;
        self.bytes += other.bytes;
    }
}

/// FLOPs of one sum-factorized stiffness apply in `dim` dimensions at order
/// `p`: `d` directional passes, each `2d` 1D contractions of cost
/// `2(p+1)^{d+1}`, plus the quadrature scaling.
pub fn tensor_apply_flops(dim: usize, p: usize) -> u64 {
    let nb = (p + 1) as u64;
    let pass = 2 * nb.pow(dim as u32 + 1); // one 1D contraction
    let per_axis = 2 * dim as u64 * pass + 2 * nb.pow(dim as u32);
    dim as u64 * per_axis
}

/// FLOPs of one dense elemental apply: `2·npe²`.
pub fn dense_apply_flops(dim: usize, p: usize) -> u64 {
    let npe = ((p + 1) as u64).pow(dim as u32);
    2 * npe * npe
}

/// Bytes moved per elemental apply (input + output nodal values, plus the
/// per-node bucket copy traffic of the traversal — `copies` per node
/// averaged over the tree depth is accounted by the caller).
pub fn elemental_bytes(dim: usize, p: usize) -> u64 {
    let npe = ((p + 1) as u64).pow(dim as u32);
    // read u_e, write v_e, read/write accumulators.
    4 * 8 * npe
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ai_increases_with_order() {
        // The paper's observation: AI(p=2) > AI(p=1) in 3D.
        let ai1 = tensor_apply_flops(3, 1) as f64 / elemental_bytes(3, 1) as f64;
        let ai2 = tensor_apply_flops(3, 2) as f64 / elemental_bytes(3, 2) as f64;
        assert!(ai2 > ai1, "{ai1} vs {ai2}");
        // And the ratio of work per element between p=2 and p=1 sits near
        // the paper's measured 4.2x (theoretical bound d(p+1)^{d+1}: 81/16 ≈ 5).
        let ratio = tensor_apply_flops(3, 2) as f64 / tensor_apply_flops(3, 1) as f64;
        assert!(ratio > 3.0 && ratio < 6.5, "ratio {ratio}");
    }

    #[test]
    fn counters_accumulate() {
        let mut c = FlopCount::default();
        c.add(FlopCount {
            flops: 10,
            bytes: 5,
        });
        c.add(FlopCount {
            flops: 30,
            bytes: 15,
        });
        assert_eq!(c.flops, 40);
        assert_eq!(c.ai(), 2.0);
    }
}
