//! Finite-element layer: Lagrange bases, Gauss quadrature, elemental
//! operators for the Poisson/mass/advection–diffusion problems, the Shifted
//! Boundary Method (SBM) of §4.3, Dirichlet handling, error norms, and FLOP
//! accounting for the roofline study (Fig. 12).
//!
//! Elements are axis-aligned cubes (the whole point of carving instead of
//! stretching), so the reference-to-physical map is a uniform scaling by the
//! element side `h`: stiffness scales as `h^{d-2}`, mass as `h^d`, and one
//! reference matrix per (dimension, order) serves every element of a given
//! level — the per-level elemental cache the scaling benchmarks rely on.

pub mod basis;
pub mod error;
pub mod estimator;
pub mod fieldeval;
pub mod flops;
pub mod multigrid;
pub mod poisson;
pub mod sbm;
pub mod serve;
pub mod solver;
pub mod transient;

pub use basis::{gauss_rule, lagrange_deriv_unit, lagrange_eval_unit, Quadrature};
pub use error::{l2_linf_error, ErrorNorms};
pub use estimator::{elem_values_dist, energy_error_indicators, mark_max_strategy};
pub use fieldeval::{candidate_bins, eval_field_lattice, FieldView, NudgePolicy};
pub use flops::FlopCount;
pub use multigrid::{build_transfer, mg_pcg, Multigrid, Transfer};
pub use poisson::{
    apply_stiffness_tensor, load_vector, mass_matrix, stiffness_matrix, ElementCache, HeatKernel,
    LevelScales, MassKernel, StiffnessKernel, StiffnessMatrixKernel,
};
pub use sbm::{sbm_face_terms, surrogate_faces, SbmParams, SurrogateFace};
pub use serve::{
    coord_field, geometry_hash, CacheStats, ScenarioCache, ScenarioEntry, ScenarioSpec, ServedField,
};
pub use solver::{
    solve_poisson, solve_poisson_supervised, AttemptReport, BcMode, EscalatedSolver,
    PoissonProblem, PoissonSolution, RankDiagnostic, SolveFailed, SupervisedSolve, Supervisor,
};
pub use transient::{run_transient, AdaptiveTimeStepper, TransientConfig, TransientResult};
