//! Matrix-free geometric multigrid on incomplete-octree hierarchies.
//!
//! The framework descends from Dendro ("parallel algorithms for multigrid
//! and AMR methods on 2:1 balanced octrees", Sampath et al. \[51\]); this
//! module supplies the corresponding solver layer for carved domains:
//!
//! * a **grid hierarchy** built by repeatedly coarsening the finest carved
//!   mesh (clamping the boundary level, re-carving, re-balancing — every
//!   level is itself a valid incomplete octree);
//! * **prolongation** by FE interpolation: evaluate the coarse-grid
//!   function at every fine node (point location via [`find_leaf`] + local
//!   tensor-Lagrange evaluation + the same hanging-stencil resolution used
//!   everywhere else);
//! * **restriction** as the exact transpose;
//! * a **V-cycle** with damped-Jacobi smoothing over the matrix-free
//!   traversal MATVEC, and a coarse-grid dense LU;
//! * [`mg_pcg`]: conjugate gradients preconditioned with one V-cycle. The
//!   payoff is h-independent iteration counts — the conditioning story of
//!   Table 1 taken to its conclusion.

use crate::poisson::{StiffnessKernel, StiffnessMatrixKernel};
use carve_core::{
    find_leaf, resolve_slot, traversal_assemble_ws, traversal_matvec_ws, Mesh, SlotRef,
    TraversalWorkspace,
};
use carve_geom::Subdomain;
use carve_la::{CooBuilder, KrylovResult, LuFactors};
use carve_sfc::morton::finest_cell_of_point;
use std::sync::Mutex;

/// Sparse interpolation operator stored row-wise (rows = fine nodes,
/// entries = coarse nodes × weights).
pub struct Transfer {
    pub rows: Vec<Vec<(u32, f64)>>,
    pub n_coarse: usize,
}

impl Transfer {
    /// `fine += P * coarse`.
    pub fn prolong(&self, coarse: &[f64], fine: &mut [f64]) {
        assert_eq!(coarse.len(), self.n_coarse);
        for (row, out) in self.rows.iter().zip(fine.iter_mut()) {
            let mut s = 0.0;
            for &(j, w) in row {
                s += w * coarse[j as usize];
            }
            *out += s;
        }
    }

    /// `coarse += Pᵀ * fine`.
    pub fn restrict(&self, fine: &[f64], coarse: &mut [f64]) {
        assert_eq!(coarse.len(), self.n_coarse);
        for (row, &f) in self.rows.iter().zip(fine.iter()) {
            for &(j, w) in row {
                coarse[j as usize] += w * f;
            }
        }
    }
}

/// Builds the FE interpolation from `coarse` onto the nodes of `fine`.
///
/// Every fine node lies inside (or on the boundary of) some coarse leaf;
/// its value is the coarse FE function there: tensor-Lagrange in the leaf's
/// reference coordinates, with the leaf's hanging lattice slots expanded
/// through their stencils.
pub fn build_transfer<const DIM: usize>(coarse: &Mesh<DIM>, fine: &Mesh<DIM>) -> Transfer {
    let p = coarse.order;
    assert_eq!(p, fine.order, "same order across the hierarchy");
    let npe = carve_core::nodes::nodes_per_elem::<DIM>(p);
    let mut rows = Vec::with_capacity(fine.num_dofs());
    for i in 0..fine.num_dofs() {
        let coord = fine.nodes.coords[i];
        // Containing coarse leaf: clamp the (scaled) point to a cell key.
        let mut pt = [0u64; DIM];
        for k in 0..DIM {
            pt[k] = coord[k] / p;
        }
        // A node on an element's upper face maps to the cell on its ++ side,
        // which can be carved; try every combination of nudging axes down by
        // one cell (the node borders up to 2^DIM cells).
        let li = (0..(1usize << DIM))
            .find_map(|combo| {
                let mut pt2 = pt;
                for (k, p2) in pt2.iter_mut().enumerate() {
                    if (combo >> k) & 1 == 1 {
                        if *p2 == 0 {
                            return None;
                        }
                        *p2 -= 1;
                    }
                }
                find_leaf(&coarse.elems, coarse.curve, &finest_cell_of_point(&pt2))
            })
            .unwrap_or_else(|| panic!("fine node {coord:?} not covered by coarse mesh"));
        let leaf = &coarse.elems[li];
        // Reference coordinates of the fine node inside the coarse leaf.
        let side = leaf.side() as u64;
        let mut tref = [0.0f64; DIM];
        for k in 0..DIM {
            let off = coord[k] as i64 - (leaf.anchor[k] as u64 * p) as i64;
            tref[k] = off as f64 / (side * p) as f64 * p as f64; // in [0, p]
        }
        // Tensor-Lagrange weights over the leaf's lattice, expanded through
        // hanging stencils.
        let mut row: Vec<(u32, f64)> = Vec::new();
        for lin in 0..npe {
            let idx = carve_core::nodes::lattice_index::<DIM>(lin, p);
            let mut w = 1.0;
            for k in 0..DIM {
                w *= carve_core::nodes::lagrange_1d(p, idx[k], tref[k]);
            }
            if w.abs() < 1e-14 {
                continue;
            }
            let c = carve_core::nodes::elem_node_coord(leaf, p, &idx);
            match resolve_slot(&coarse.nodes, leaf, &c) {
                SlotRef::Direct(j) => row.push((j as u32, w)),
                SlotRef::Hanging(st) => {
                    for (j, wj) in st {
                        row.push((j as u32, w * wj));
                    }
                }
            }
        }
        // Merge duplicates.
        row.sort_unstable_by_key(|e| e.0);
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(row.len());
        for (j, w) in row {
            if let Some(last) = merged.last_mut() {
                if last.0 == j {
                    last.1 += w;
                    continue;
                }
            }
            merged.push((j, w));
        }
        rows.push(merged);
    }
    Transfer {
        rows,
        n_coarse: coarse.num_dofs(),
    }
}

/// One multigrid level: mesh, Dirichlet mask, diagonal (for Jacobi), and
/// the transfer from the next-coarser level.
struct Level<const DIM: usize> {
    mesh: Mesh<DIM>,
    constrained: Vec<bool>,
    inv_diag: Vec<f64>,
    /// Transfer from level `l+1` (coarser) onto this level; `None` on the
    /// coarsest.
    from_coarser: Option<Transfer>,
}

/// Mutable solver state shared by the `&self` operator applications: the
/// panel-capable stiffness kernel (tensor-apply scratch is `&mut`) and the
/// traversal workspace. One lock per V-cycle smoother apply is noise next
/// to the traversal itself, and it spares every apply a cache + bucket
/// rebuild.
struct MgWork<const DIM: usize> {
    kernel: StiffnessKernel<DIM>,
    ws: TraversalWorkspace<DIM>,
    /// Constrained-input scratch: `apply` masks Dirichlet entries of `x`
    /// before the traversal, and recycling this buffer keeps the smoother's
    /// inner loop free of per-apply allocation.
    xf: Vec<f64>,
}

/// Matrix-free geometric-multigrid Poisson solver on a carved mesh
/// hierarchy (strong Dirichlet at carved and/or cube boundary nodes).
pub struct Multigrid<const DIM: usize> {
    levels: Vec<Level<DIM>>, // [0] = finest
    coarse_lu: LuFactors,
    coarse_constrained: Vec<bool>,
    pub nu_pre: usize,
    pub nu_post: usize,
    pub omega: f64,
    work: Mutex<MgWork<DIM>>,
}

impl<const DIM: usize> Multigrid<DIM> {
    /// Builds a hierarchy by lowering the boundary-refinement level one step
    /// per grid until `min_level`, re-carving each coarse grid from the
    /// domain. `constrain` marks strong-Dirichlet nodes (by flags).
    pub fn new(
        domain: &dyn Subdomain<DIM>,
        finest_base: u8,
        finest_boundary: u8,
        min_level: u8,
        order: u64,
        scale: f64,
        constrain: &dyn Fn(carve_core::NodeFlags) -> bool,
    ) -> Self {
        assert!(min_level >= 1 && min_level <= finest_base);
        let mut meshes = Vec::new();
        let mut boundary = finest_boundary;
        let mut base = finest_base;
        loop {
            meshes.push(Mesh::build(
                domain,
                carve_sfc::Curve::Hilbert,
                base,
                boundary,
                order,
            ));
            if base == min_level && boundary == min_level {
                break;
            }
            boundary = boundary.saturating_sub(1).max(min_level);
            base = base.min(boundary).max(min_level);
            if meshes.len() > 12 {
                break;
            }
        }
        // Per-level stiffness matrices (h is a function of level only) shared
        // by the diagonal pass and the coarse assembly below.
        let mut mat_kernel = StiffnessMatrixKernel::<DIM>::new(order as usize, scale);
        let mut levels: Vec<Level<DIM>> = Vec::with_capacity(meshes.len());
        for (li, mesh) in meshes.into_iter().enumerate() {
            let constrained: Vec<bool> = mesh.nodes.flags.iter().map(|f| constrain(*f)).collect();
            // Diagonal of the constrained operator via assembly of the
            // diagonal only (cheap: per-element diagonal entries).
            let mut diag = vec![0.0; mesh.num_dofs()];
            let npe = carve_core::nodes::nodes_per_elem::<DIM>(order);
            for e in &mesh.elems {
                let ke = mat_kernel.level_matrix(e.level);
                for lin in 0..npe {
                    let idx = carve_core::nodes::lattice_index::<DIM>(lin, order);
                    let c = carve_core::nodes::elem_node_coord(e, order, &idx);
                    match resolve_slot(&mesh.nodes, e, &c) {
                        SlotRef::Direct(i) => diag[i] += ke[(lin, lin)],
                        SlotRef::Hanging(st) => {
                            for (i, w) in st {
                                diag[i] += w * w * ke[(lin, lin)];
                            }
                        }
                    }
                }
            }
            let inv_diag = diag
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    if constrained[i] || d.abs() < 1e-300 {
                        1.0
                    } else {
                        1.0 / d
                    }
                })
                .collect();
            let from_coarser = None;
            levels.push(Level {
                mesh,
                constrained,
                inv_diag,
                from_coarser,
            });
            let _ = li;
        }
        // Transfers: level l gets the interpolation from level l+1.
        for l in 0..levels.len() - 1 {
            let t = build_transfer(&levels[l + 1].mesh, &levels[l].mesh);
            levels[l].from_coarser = Some(t);
        }
        // Coarse operator: assembled + LU.
        let coarse = levels.last().expect("nonempty hierarchy");
        let n = coarse.mesh.num_dofs();
        let npe = carve_core::nodes::nodes_per_elem::<DIM>(order);
        let mut coo = CooBuilder::with_capacity(n, coarse.mesh.elems.len() * npe * npe);
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut ws = TraversalWorkspace::with_threads(1);
        traversal_assemble_ws(
            &coarse.mesh.elems,
            0..coarse.mesh.elems.len(),
            coarse.mesh.curve,
            &coarse.mesh.nodes,
            &ids,
            &mut coo,
            &mut ws,
            &mut mat_kernel,
        );
        let mut a = coo.build().to_dense();
        for i in 0..n {
            if coarse.constrained[i] {
                // Rows only (columns keep their entries, SPD-ish).
                for j in 0..n {
                    a[(i, j)] = if i == j { 1.0 } else { 0.0 };
                }
            }
        }
        let coarse_lu = a.lu().expect("coarse operator invertible");
        let coarse_constrained = coarse.constrained.clone();
        Multigrid {
            levels,
            coarse_lu,
            coarse_constrained,
            nu_pre: 2,
            nu_post: 2,
            omega: 0.7,
            work: Mutex::new(MgWork {
                kernel: StiffnessKernel::new(order as usize, scale),
                ws,
                xf: Vec::new(),
            }),
        }
    }

    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Applies the finest-level constrained operator `y = A x` (the same
    /// operator [`Multigrid::solve`] iterates on) — public so escalation
    /// policies and diagnostics can measure residuals without a solve.
    pub fn apply_finest(&self, x: &[f64], y: &mut [f64]) {
        self.apply(0, x, y);
    }

    /// One V-cycle as a preconditioner application: `z ≈ A⁻¹ r` on the
    /// finest level, starting from zero.
    pub fn precondition(&self, r: &[f64], z: &mut [f64]) {
        z.iter_mut().for_each(|v| *v = 0.0);
        self.vcycle(0, z, r);
    }

    /// Doubles the pre/post smoothing sweeps: the escalation knob the solve
    /// supervisor turns when the Krylov ladder has failed — more smoothing
    /// buys a stronger (slower) V-cycle without rebuilding the hierarchy.
    pub fn tighten_smoothing(&mut self) {
        self.nu_pre *= 2;
        self.nu_post *= 2;
    }

    pub fn finest(&self) -> &Mesh<DIM> {
        &self.levels[0].mesh
    }

    /// Applies the constrained operator at level `l` (matrix-free traversal;
    /// constrained rows act as identity).
    fn apply(&self, l: usize, x: &[f64], y: &mut [f64]) {
        let lev = &self.levels[l];
        y.iter_mut().for_each(|v| *v = 0.0);
        let mut guard = self.work.lock().unwrap_or_else(|e| e.into_inner());
        let MgWork { kernel, ws, xf } = &mut *guard;
        // Zero constrained inputs so they don't pollute interior rows, then
        // emit identity on constrained rows.
        xf.clear();
        xf.extend_from_slice(x);
        for (i, &c) in lev.constrained.iter().enumerate() {
            if c {
                xf[i] = 0.0;
            }
        }
        traversal_matvec_ws(
            &lev.mesh.elems,
            0..lev.mesh.elems.len(),
            lev.mesh.curve,
            &lev.mesh.nodes,
            xf,
            y,
            ws,
            kernel,
        );
        drop(guard);
        for (i, &c) in lev.constrained.iter().enumerate() {
            if c {
                y[i] = x[i];
            }
        }
    }

    /// Damped-Jacobi smoothing sweeps: `x += ω D⁻¹ (b − A x)`.
    fn smooth(&self, l: usize, x: &mut [f64], b: &[f64], sweeps: usize) {
        let n = x.len();
        let mut ax = vec![0.0; n];
        for _ in 0..sweeps {
            self.apply(l, x, &mut ax);
            for i in 0..n {
                x[i] += self.omega * self.levels[l].inv_diag[i] * (b[i] - ax[i]);
            }
        }
    }

    /// One V-cycle at level `l` for `A x = b`.
    fn vcycle(&self, l: usize, x: &mut [f64], b: &[f64]) {
        if l == self.levels.len() - 1 {
            let mut sol = b.to_vec();
            for (i, &c) in self.coarse_constrained.iter().enumerate() {
                if c {
                    sol[i] = b[i];
                }
            }
            self.coarse_lu.solve(&mut sol);
            x.copy_from_slice(&sol);
            return;
        }
        self.smooth(l, x, b, self.nu_pre);
        // Residual, restricted to the coarser level.
        let n = x.len();
        let mut r = vec![0.0; n];
        self.apply(l, x, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        // Constrained rows carry no residual.
        for (i, &c) in self.levels[l].constrained.iter().enumerate() {
            if c {
                r[i] = 0.0;
            }
        }
        let transfer = self.levels[l].from_coarser.as_ref().expect("transfer");
        let nc = transfer.n_coarse;
        let mut rc = vec![0.0; nc];
        transfer.restrict(&r, &mut rc);
        for (i, &c) in self.levels[l + 1].constrained.iter().enumerate() {
            if c {
                rc[i] = 0.0;
            }
        }
        let mut ec = vec![0.0; nc];
        self.vcycle(l + 1, &mut ec, &rc);
        for (i, &c) in self.levels[l + 1].constrained.iter().enumerate() {
            if c {
                ec[i] = 0.0;
            }
        }
        transfer.prolong(&ec, x);
        self.smooth(l, x, b, self.nu_post);
    }

    /// Solves `A x = b` on the finest level with V-cycle-preconditioned CG.
    /// Dirichlet values must already sit in `b` at constrained nodes.
    pub fn solve(&self, b: &[f64], x: &mut [f64], rtol: f64, max_iter: usize) -> KrylovResult {
        self.solve_with(b, x, rtol, max_iter, &carve_la::LocalReduce)
    }

    /// [`Multigrid::solve`] with an explicit [`carve_la::Reduce`] backend:
    /// the outer CG's per-iteration inner products ride the backend's fused
    /// batches (`(p·Ap)` and the paired `(r·z, r·r)` — 2 rounds per
    /// iteration instead of 3 unfused), so a distributed or counting
    /// reducer sees the preconditioned cycle's reduction discipline
    /// directly. With [`carve_la::LocalReduce`] this is bitwise identical
    /// to [`Multigrid::solve`].
    pub fn solve_with<R: carve_la::Reduce + ?Sized>(
        &self,
        b: &[f64],
        x: &mut [f64],
        rtol: f64,
        max_iter: usize,
        rd: &R,
    ) -> KrylovResult {
        struct MgOp<'a, const DIM: usize>(&'a Multigrid<DIM>);
        impl<'a, const DIM: usize> carve_la::LinOp for MgOp<'a, DIM> {
            fn size(&self) -> usize {
                self.0.levels[0].mesh.num_dofs()
            }
            fn apply(&self, x: &[f64], y: &mut [f64]) {
                self.0.apply(0, x, y);
            }
        }
        struct MgPre<'a, const DIM: usize>(&'a Multigrid<DIM>);
        impl<'a, const DIM: usize> carve_la::Precond for MgPre<'a, DIM> {
            fn apply(&self, r: &[f64], z: &mut [f64]) {
                z.iter_mut().for_each(|v| *v = 0.0);
                self.0.vcycle(0, z, r);
            }
        }
        carve_la::cg_with(&MgOp(self), b, x, &MgPre(self), rtol, 1e-14, max_iter, rd)
    }
}

impl<const DIM: usize> crate::solver::EscalatedSolver for Multigrid<DIM> {
    fn tighten(&mut self) {
        self.tighten_smoothing();
    }

    fn solve_escalated(
        &self,
        b: &[f64],
        x: &mut [f64],
        rtol: f64,
        max_iter: usize,
    ) -> KrylovResult {
        self.solve(b, x, rtol, max_iter)
    }
}

/// Convenience: multigrid-preconditioned CG for `−Δu = f` with zero
/// Dirichlet data on the selected boundary. Returns (solution, report,
/// levels).
#[allow(clippy::too_many_arguments)]
pub fn mg_pcg<const DIM: usize>(
    domain: &dyn Subdomain<DIM>,
    base: u8,
    boundary: u8,
    min_level: u8,
    order: u64,
    scale: f64,
    f: &dyn Fn(&[f64; DIM]) -> f64,
    rtol: f64,
) -> (Multigrid<DIM>, Vec<f64>, KrylovResult) {
    let constrain = |fl: carve_core::NodeFlags| fl.is_any_boundary();
    let mg = Multigrid::new(domain, base, boundary, min_level, order, scale, &constrain);
    let mesh = mg.finest();
    let n = mesh.num_dofs();
    let mut rhs = vec![0.0; n];
    let p = order as usize;
    let npe = carve_core::nodes::nodes_per_elem::<DIM>(order);
    for e in &mesh.elems {
        let (emin_u, h_u) = e.bounds_unit();
        let mut emin = [0.0; DIM];
        for k in 0..DIM {
            emin[k] = emin_u[k] * scale;
        }
        let local = crate::poisson::load_vector::<DIM>(p, &emin, h_u * scale, f, p + 2);
        for (lin, &lv) in local.iter().enumerate().take(npe) {
            let idx = carve_core::nodes::lattice_index::<DIM>(lin, order);
            let c = carve_core::nodes::elem_node_coord(e, order, &idx);
            match resolve_slot(&mesh.nodes, e, &c) {
                SlotRef::Direct(i) => rhs[i] += lv,
                SlotRef::Hanging(st) => {
                    for (i, w) in st {
                        rhs[i] += w * lv;
                    }
                }
            }
        }
    }
    for (i, r) in rhs.iter_mut().enumerate() {
        if mesh.nodes.flags[i].is_any_boundary() {
            *r = 0.0;
        }
    }
    let mut x = vec![0.0; n];
    let rep = mg.solve(&rhs, &mut x, rtol, 200);
    (mg, x, rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_geom::{FullDomain, RetainSolid, Sphere};
    use std::f64::consts::PI;

    #[test]
    fn transfer_reproduces_linears() {
        // Interpolating a linear function from coarse to fine is exact.
        let domain = FullDomain;
        let coarse = Mesh::<2>::build(&domain, carve_sfc::Curve::Hilbert, 3, 3, 1);
        let fine = Mesh::<2>::build(&domain, carve_sfc::Curve::Hilbert, 4, 4, 1);
        let t = build_transfer(&coarse, &fine);
        let lin = |x: &[f64; 2]| 1.5 * x[0] - 0.7 * x[1] + 0.3;
        let uc: Vec<f64> = (0..coarse.num_dofs())
            .map(|i| lin(&coarse.nodes.unit_coords(i)))
            .collect();
        let mut uf = vec![0.0; fine.num_dofs()];
        t.prolong(&uc, &mut uf);
        for (i, &ufi) in uf.iter().enumerate() {
            let want = lin(&fine.nodes.unit_coords(i));
            assert!((ufi - want).abs() < 1e-12, "node {i}: {ufi} vs {want}");
        }
    }

    #[test]
    fn transfer_partition_of_unity() {
        // Rows sum to 1 (interpolation of constants).
        let disk = RetainSolid::new(Sphere::<2>::new([0.5, 0.5], 0.4));
        let coarse = Mesh::build(&disk, carve_sfc::Curve::Morton, 4, 4, 1);
        let fine = Mesh::build(&disk, carve_sfc::Curve::Morton, 4, 5, 1);
        let t = build_transfer(&coarse, &fine);
        for (i, row) in t.rows.iter().enumerate() {
            let s: f64 = row.iter().map(|e| e.1).sum();
            assert!((s - 1.0).abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn vcycle_reduces_residual_monotonically() {
        let domain = FullDomain;
        let constrain = |fl: carve_core::NodeFlags| fl.is_any_boundary();
        let mg = Multigrid::<2>::new(&domain, 4, 4, 2, 1, 1.0, &constrain);
        assert!(mg.num_levels() >= 2);
        let n = mg.finest().num_dofs();
        let b: Vec<f64> = (0..n)
            .map(|i| {
                if mg.finest().nodes.flags[i].is_any_boundary() {
                    0.0
                } else {
                    (i as f64 * 0.31).sin()
                }
            })
            .collect();
        let mut x = vec![0.0; n];
        let mut res_prev = f64::INFINITY;
        for _ in 0..4 {
            mg.vcycle(0, &mut x, &b);
            let mut ax = vec![0.0; n];
            mg.apply(0, &x, &mut ax);
            let res: f64 = ax
                .iter()
                .zip(&b)
                .map(|(a, bb)| (a - bb) * (a - bb))
                .sum::<f64>()
                .sqrt();
            assert!(res < 0.6 * res_prev, "V-cycle stalled: {res} vs {res_prev}");
            res_prev = res;
        }
    }

    /// Dots-round wrapper for asserting the outer CG's fusion discipline.
    struct CountingReduce {
        calls: std::cell::RefCell<usize>,
        pairs: std::cell::RefCell<usize>,
    }

    impl carve_la::Reduce for CountingReduce {
        fn dots(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
            *self.calls.borrow_mut() += 1;
            *self.pairs.borrow_mut() += pairs.len();
            carve_la::LocalReduce.dots(pairs, out);
        }
    }

    fn smoke_mg_problem() -> (Multigrid<2>, Vec<f64>) {
        let domain = FullDomain;
        let constrain = |fl: carve_core::NodeFlags| fl.is_any_boundary();
        let mg = Multigrid::<2>::new(&domain, 4, 4, 2, 1, 1.0, &constrain);
        let n = mg.finest().num_dofs();
        let b: Vec<f64> = (0..n)
            .map(|i| {
                if mg.finest().nodes.flags[i].is_any_boundary() {
                    0.0
                } else {
                    (i as f64 * 0.31).sin()
                }
            })
            .collect();
        (mg, b)
    }

    #[test]
    fn solve_with_issues_two_fused_batches_per_iteration() {
        // The MG-preconditioned outer CG must pay exactly 2 reduction
        // rounds per iteration (p·Ap, then the fused (r·z, r·r) pair) plus
        // 2 setup rounds — the ROADMAP item-2 fusion contract — and stay
        // bitwise identical to the LocalReduce path of `solve`.
        let (mg, b) = smoke_mg_problem();
        let n = b.len();
        let iters = 5;

        let mut x_plain = vec![0.0; n];
        mg.solve(&b, &mut x_plain, 0.0, iters);

        let rd = CountingReduce {
            calls: std::cell::RefCell::new(0),
            pairs: std::cell::RefCell::new(0),
        };
        let mut x = vec![0.0; n];
        let res = mg.solve_with(&b, &mut x, 0.0, iters, &rd);
        assert_eq!(res.iterations, iters);
        assert_eq!(*rd.calls.borrow(), 2 + 2 * iters);
        // bnorm (1 pair) + init (2) + per iteration pap (1) + rz/rr (2).
        assert_eq!(*rd.pairs.borrow(), 3 + 3 * iters);
        for (a, bb) in x.iter().zip(&x_plain) {
            assert_eq!(a.to_bits(), bb.to_bits());
        }
    }

    #[test]
    fn solve_with_fused_reduce_records_saved_rounds() {
        // Through `carve_core::FusedReduce` the same solve records the
        // rounds fusion saved: one per 2-pair batch = max_iter + 1.
        let (mg, b) = smoke_mg_problem();
        let iters = 5;
        let snap = std::thread::spawn(move || {
            let _on = carve_obs::force_enabled();
            let mut x = vec![0.0; b.len()];
            mg.solve_with(
                &b,
                &mut x,
                0.0,
                iters,
                &carve_core::FusedReduce(&carve_la::LocalReduce),
            );
            carve_obs::thread_snapshot()
        })
        .join()
        .unwrap();
        let fused: u64 = snap
            .phases
            .values()
            .filter_map(|st| st.counters.get("reductions_fused"))
            .sum();
        assert_eq!(fused as usize, iters + 1);
    }

    #[test]
    fn mg_pcg_iterations_are_h_independent() {
        // The multigrid payoff: iteration counts stay ~constant as the mesh
        // refines (plain CG grows like 1/h).
        let f = |x: &[f64; 2]| (PI * x[0]).sin() * (PI * x[1]).sin();
        let mut iters = Vec::new();
        for lvl in [4u8, 5, 6] {
            let domain = FullDomain;
            let (_, _, rep) = mg_pcg(&domain, lvl, lvl, 2, 1, 1.0, &f, 1e-8);
            assert!(rep.converged, "{rep:?}");
            iters.push(rep.iterations);
        }
        assert!(
            iters[2] <= iters[0] + 4,
            "iterations must not grow with refinement: {iters:?}"
        );
        assert!(iters[2] < 25, "MG-PCG should converge fast: {iters:?}");
    }

    #[test]
    fn mg_pcg_on_carved_disk() {
        // Multigrid on an *incomplete* hierarchy: the disk domain.
        let disk = RetainSolid::new(Sphere::<2>::new([0.5, 0.5], 0.45));
        let one = |_: &[f64; 2]| 1.0;
        let (mg, x, rep) = mg_pcg(&disk, 5, 5, 3, 1, 1.0, &one, 1e-8);
        assert!(rep.converged, "{rep:?}");
        assert!(rep.iterations < 40, "iters {}", rep.iterations);
        // Solution is positive inside, zero-ish at the boundary nodes.
        let mesh = mg.finest();
        let mut interior_max = 0.0f64;
        for (i, &xi) in x.iter().enumerate() {
            if !mesh.nodes.flags[i].is_any_boundary() {
                interior_max = interior_max.max(xi);
            } else {
                assert!(xi.abs() < 1e-9);
            }
        }
        assert!(interior_max > 0.0);
    }
}
