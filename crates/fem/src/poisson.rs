//! Elemental operators for the Poisson problem on axis-aligned cube
//! elements: reference stiffness/mass matrices, per-order caches, load
//! vectors, and the sum-factorized (tensor) stiffness application whose
//! `O(d(p+1)^{d+1})` complexity the paper quotes for its MATVEC.

use crate::basis::Tabulated;
use carve_core::{AssemblyKernel, LeafKernel};
use carve_la::DenseMatrix;
use carve_sfc::{Octant, MAX_LEVEL};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Process-wide memo of reference stiffness/mass pairs keyed `(DIM, p)`.
/// Building them is `O(npe² · nq^DIM)` quadrature work — far more than the
/// `O(npe²)` clone a cache hit costs — and solver loops construct
/// [`ElementCache`]s freely (multigrid levels, per-thread kernel factories),
/// so the first construction pays and every later one copies.
type RefOpsMemo = Mutex<HashMap<(usize, usize), (DenseMatrix, DenseMatrix)>>;

fn ref_ops_memo() -> &'static RefOpsMemo {
    static MEMO: OnceLock<RefOpsMemo> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Memoized [`Tabulated::new`] (keyed `(p, nq)`): quadrature abscissae and
/// basis tabulations are tiny but rebuilt per element by [`load_vector`],
/// which is quadratic-cost noise once meshes reach bench sizes.
pub(crate) fn tabulated_memo(p: usize, nq: usize) -> Tabulated {
    static MEMO: OnceLock<Mutex<HashMap<(usize, usize), Tabulated>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let mut m = memo.lock().unwrap_or_else(|e| e.into_inner());
    m.entry((p, nq))
        .or_insert_with(|| Tabulated::new(p, nq))
        .clone()
}

/// Number of element nodes for order `p` in `DIM` dimensions.
#[inline]
pub fn npe<const DIM: usize>(p: usize) -> usize {
    (p + 1).pow(DIM as u32)
}

fn lattice<const DIM: usize>(linear: usize, base: usize) -> [usize; DIM] {
    let mut rem = linear;
    let mut idx = [0usize; DIM];
    for slot in idx.iter_mut() {
        *slot = rem % base;
        rem /= base;
    }
    idx
}

/// Reference stiffness matrix on `\[0,1\]^DIM`:
/// `K[i][j] = ∫ ∇φ_i · ∇φ_j`. Physical stiffness is `h^{DIM-2} · K`.
pub fn reference_stiffness<const DIM: usize>(p: usize) -> DenseMatrix {
    let tab = tabulated_memo(p, p + 1);
    let n = npe::<DIM>(p);
    let nq1 = tab.nq;
    let nqs = nq1.pow(DIM as u32);
    let mut k = DenseMatrix::zeros(n, n);
    for qlin in 0..nqs {
        let q = lattice::<DIM>(qlin, nq1);
        let mut w = 1.0;
        for &qk in &q {
            w *= tab.quad.weights[qk];
        }
        for i in 0..n {
            let li = lattice::<DIM>(i, p + 1);
            for j in 0..n {
                let lj = lattice::<DIM>(j, p + 1);
                let mut dot = 0.0;
                for axis in 0..DIM {
                    let mut gi = 1.0;
                    let mut gj = 1.0;
                    for m in 0..DIM {
                        if m == axis {
                            gi *= tab.deriv(q[m], li[m]);
                            gj *= tab.deriv(q[m], lj[m]);
                        } else {
                            gi *= tab.basis(q[m], li[m]);
                            gj *= tab.basis(q[m], lj[m]);
                        }
                    }
                    dot += gi * gj;
                }
                k[(i, j)] += w * dot;
            }
        }
    }
    k
}

/// Reference mass matrix on `\[0,1\]^DIM` (physical: `h^DIM · M`).
pub fn reference_mass<const DIM: usize>(p: usize) -> DenseMatrix {
    let tab = tabulated_memo(p, p + 1);
    let n = npe::<DIM>(p);
    let nq1 = tab.nq;
    let nqs = nq1.pow(DIM as u32);
    let mut mm = DenseMatrix::zeros(n, n);
    for qlin in 0..nqs {
        let q = lattice::<DIM>(qlin, nq1);
        let mut w = 1.0;
        for &qk in &q {
            w *= tab.quad.weights[qk];
        }
        for i in 0..n {
            let li = lattice::<DIM>(i, p + 1);
            let mut bi = 1.0;
            for m in 0..DIM {
                bi *= tab.basis(q[m], li[m]);
            }
            for j in 0..n {
                let lj = lattice::<DIM>(j, p + 1);
                let mut bj = 1.0;
                for m in 0..DIM {
                    bj *= tab.basis(q[m], lj[m]);
                }
                mm[(i, j)] += w * bi * bj;
            }
        }
    }
    mm
}

/// Cache of reference operators for one (dimension, order): every element of
/// side `h` shares them up to a power of `h`. Construction hits the
/// process-wide reference-operator memo, so `new` is cheap after the first
/// call per `(DIM, p)` — worker-thread kernel factories and multigrid
/// levels can build their own without re-running quadrature.
#[derive(Clone)]
pub struct ElementCache<const DIM: usize> {
    pub p: usize,
    pub kref: DenseMatrix,
    pub mref: DenseMatrix,
    tab: Tabulated,
    scratch_a: Vec<f64>,
    scratch_b: Vec<f64>,
    grads: Vec<f64>,
    /// SoA panel scratch for the batched applies (`npe × batch`), grown on
    /// demand and reused across panels.
    panel_a: Vec<f64>,
    panel_b: Vec<f64>,
    panel_g: Vec<f64>,
}

impl<const DIM: usize> ElementCache<DIM> {
    pub fn new(p: usize) -> Self {
        let (kref, mref) = {
            let mut memo = ref_ops_memo().lock().unwrap_or_else(|e| e.into_inner());
            memo.entry((DIM, p))
                .or_insert_with(|| (reference_stiffness::<DIM>(p), reference_mass::<DIM>(p)))
                .clone()
        };
        let tab = tabulated_memo(p, p + 1);
        let nq = (p + 1).pow(DIM as u32);
        Self {
            p,
            kref,
            mref,
            tab,
            scratch_a: vec![0.0; nq],
            scratch_b: vec![0.0; nq],
            grads: vec![0.0; nq],
            panel_a: Vec::new(),
            panel_b: Vec::new(),
            panel_g: Vec::new(),
        }
    }

    fn ensure_panel_scratch(&mut self, n: usize) {
        if self.panel_a.len() < n {
            self.panel_a.resize(n, 0.0);
            self.panel_b.resize(n, 0.0);
            self.panel_g.resize(n, 0.0);
        }
    }

    /// Physical stiffness matrix for an element of side `h`.
    pub fn stiffness(&self, h: f64) -> DenseMatrix {
        let scale = h.powi(DIM as i32 - 2);
        let mut k = self.kref.clone();
        for v in k.data.iter_mut() {
            *v *= scale;
        }
        k
    }

    /// Physical mass matrix for an element of side `h`.
    pub fn mass(&self, h: f64) -> DenseMatrix {
        let scale = h.powi(DIM as i32);
        let mut m = self.mref.clone();
        for v in m.data.iter_mut() {
            *v *= scale;
        }
        m
    }

    /// Dense stiffness apply `v += h^{d-2} K_ref u` (2·npe² flops).
    pub fn apply_stiffness_dense(&self, h: f64, u: &[f64], v: &mut [f64]) {
        let scale = h.powi(DIM as i32 - 2);
        let n = u.len();
        for (i, vi) in v.iter_mut().enumerate().take(n) {
            let row = &self.kref.data[i * n..(i + 1) * n];
            let mut s = 0.0;
            for (a, b) in row.iter().zip(u) {
                s += a * b;
            }
            *vi += scale * s;
        }
    }

    /// Sum-factorized stiffness apply: `v += h^{d-2} Σ_k C_kᵀ (W ∘ C_k u)`
    /// where `C_k` differentiates along axis `k` at the tensor quadrature
    /// points — `O(d²(p+1)^{d+1})` work instead of `O((p+1)^{2d})`.
    pub fn apply_stiffness_tensor(&mut self, h: f64, u: &[f64], v: &mut [f64]) {
        self.apply_stiffness_tensor_scaled(h.powi(DIM as i32 - 2), u, v)
    }

    /// [`Self::apply_stiffness_tensor`] with the geometric factor
    /// `h^{d-2}` already resolved — the form the per-level scale tables
    /// ([`LevelScales`]) feed. Bitwise equal to the `h`-taking variant.
    pub fn apply_stiffness_tensor_scaled(&mut self, scale: f64, u: &[f64], v: &mut [f64]) {
        let p = self.p;
        let nb = p + 1;
        let n = nb.pow(DIM as u32);
        debug_assert_eq!(u.len(), n);
        for axis in 0..DIM {
            // Forward: C_axis u (contract each axis with B, except `axis`
            // with G). nb == nq so extents stay constant.
            self.scratch_a[..n].copy_from_slice(u);
            for m in 0..DIM {
                contract_axis::<DIM>(
                    &self.scratch_a,
                    &mut self.scratch_b,
                    if m == axis { &self.tab.g } else { &self.tab.b },
                    nb,
                    m,
                    false,
                );
                std::mem::swap(&mut self.scratch_a, &mut self.scratch_b);
            }
            // Quadrature weights at tensor points.
            for (ql, g) in self.grads.iter_mut().enumerate() {
                let q = lattice::<DIM>(ql, nb);
                let mut w = 1.0;
                for &qk in &q {
                    w *= self.tab.quad.weights[qk];
                }
                *g = w * self.scratch_a[ql];
            }
            // Transpose: C_axisᵀ.
            self.scratch_a[..n].copy_from_slice(&self.grads);
            for m in 0..DIM {
                contract_axis::<DIM>(
                    &self.scratch_a,
                    &mut self.scratch_b,
                    if m == axis { &self.tab.g } else { &self.tab.b },
                    nb,
                    m,
                    true,
                );
                std::mem::swap(&mut self.scratch_a, &mut self.scratch_b);
            }
            for (vi, &si) in v.iter_mut().zip(&self.scratch_a) {
                *vi += scale * si;
            }
        }
    }

    /// Batched sum-factorized stiffness apply over an SoA panel of `batch`
    /// same-scale elements: node `lin` of element `b` lives at
    /// `[lin * batch + b]`. The contractions run with the element lane as
    /// the contiguous inner dimension (`contract_axis_batch`), so the
    /// inner loops auto-vectorize on stable Rust while each element's
    /// floating-point operation sequence stays exactly that of
    /// [`Self::apply_stiffness_tensor_scaled`] — batched and scalar results
    /// agree bitwise.
    pub fn apply_stiffness_tensor_batched(
        &mut self,
        scale: f64,
        batch: usize,
        u: &[f64],
        v: &mut [f64],
    ) {
        let p = self.p;
        let nb = p + 1;
        let n = nb.pow(DIM as u32);
        let nt = n * batch;
        debug_assert_eq!(u.len(), nt);
        debug_assert_eq!(v.len(), nt);
        self.ensure_panel_scratch(nt);
        for axis in 0..DIM {
            self.panel_a[..nt].copy_from_slice(u);
            for m in 0..DIM {
                contract_axis_batch::<DIM>(
                    &self.panel_a,
                    &mut self.panel_b,
                    if m == axis { &self.tab.g } else { &self.tab.b },
                    nb,
                    m,
                    false,
                    batch,
                );
                std::mem::swap(&mut self.panel_a, &mut self.panel_b);
            }
            // Quadrature weights at tensor points, one weight per point
            // broadcast across the element lanes.
            for ql in 0..n {
                let q = lattice::<DIM>(ql, nb);
                let mut w = 1.0;
                for &qk in &q {
                    w *= self.tab.quad.weights[qk];
                }
                for b in 0..batch {
                    self.panel_g[ql * batch + b] = w * self.panel_a[ql * batch + b];
                }
            }
            self.panel_a[..nt].copy_from_slice(&self.panel_g[..nt]);
            for m in 0..DIM {
                contract_axis_batch::<DIM>(
                    &self.panel_a,
                    &mut self.panel_b,
                    if m == axis { &self.tab.g } else { &self.tab.b },
                    nb,
                    m,
                    true,
                    batch,
                );
                std::mem::swap(&mut self.panel_a, &mut self.panel_b);
            }
            for (vi, &si) in v.iter_mut().zip(&self.panel_a[..nt]) {
                *vi += scale * si;
            }
        }
    }

    /// Dense mass apply `v += scale · M_ref u` (row dots) — the scalar
    /// counterpart of [`Self::apply_mass_batched`].
    pub fn apply_mass_scaled(&self, scale: f64, u: &[f64], v: &mut [f64]) {
        let n = u.len();
        for (i, vi) in v.iter_mut().enumerate().take(n) {
            let row = &self.mref.data[i * n..(i + 1) * n];
            let mut s = 0.0;
            for (m, x) in row.iter().zip(u) {
                s += m * x;
            }
            *vi += scale * s;
        }
    }

    /// Batched dense mass apply over an SoA panel (the dense fallback for
    /// operators without a tensor form). Bitwise equal per element to
    /// [`Self::apply_mass_scaled`].
    pub fn apply_mass_batched(&mut self, scale: f64, batch: usize, u: &[f64], v: &mut [f64]) {
        let n = u.len() / batch.max(1);
        self.ensure_panel_scratch(batch);
        for i in 0..n {
            let row = &self.mref.data[i * n..(i + 1) * n];
            let acc = &mut self.panel_g[..batch];
            acc.iter_mut().for_each(|a| *a = 0.0);
            for (j, m) in row.iter().enumerate() {
                let uj = &u[j * batch..(j + 1) * batch];
                for (a, x) in acc.iter_mut().zip(uj) {
                    *a += m * x;
                }
            }
            for (b, &a) in acc.iter().enumerate() {
                v[i * batch + b] += scale * a;
            }
        }
    }

    /// Fused backward-Euler heat apply `v += hm·M_ref u + hk·K_ref u`
    /// (row dots, one pass) — the scalar counterpart of
    /// [`Self::apply_heat_batched`].
    pub fn apply_heat_scaled(&self, hm: f64, hk: f64, u: &[f64], v: &mut [f64]) {
        let n = u.len();
        for (i, vi) in v.iter_mut().enumerate().take(n) {
            let mrow = &self.mref.data[i * n..(i + 1) * n];
            let krow = &self.kref.data[i * n..(i + 1) * n];
            let mut sm = 0.0;
            let mut sk = 0.0;
            for ((m, k), x) in mrow.iter().zip(krow).zip(u) {
                sm += m * x;
                sk += k * x;
            }
            *vi += hm * sm + hk * sk;
        }
    }

    /// Batched fused heat apply over an SoA panel. Bitwise equal per
    /// element to [`Self::apply_heat_scaled`] (independent accumulators
    /// added in the same row order).
    pub fn apply_heat_batched(&mut self, hm: f64, hk: f64, batch: usize, u: &[f64], v: &mut [f64]) {
        let n = u.len() / batch.max(1);
        self.ensure_panel_scratch(2 * batch);
        let (accm, rest) = self.panel_g.split_at_mut(batch);
        let acck = &mut rest[..batch];
        for i in 0..n {
            let mrow = &self.mref.data[i * n..(i + 1) * n];
            let krow = &self.kref.data[i * n..(i + 1) * n];
            accm.iter_mut().for_each(|a| *a = 0.0);
            acck.iter_mut().for_each(|a| *a = 0.0);
            for (j, (m, k)) in mrow.iter().zip(krow).enumerate() {
                let uj = &u[j * batch..(j + 1) * batch];
                for (a, x) in accm.iter_mut().zip(uj) {
                    *a += m * x;
                }
                for (a, x) in acck.iter_mut().zip(uj) {
                    *a += k * x;
                }
            }
            for b in 0..batch {
                v[i * batch + b] += hm * accm[b] + hk * acck[b];
            }
        }
    }
}

/// Contracts axis `m` of a `DIM`-dimensional tensor (extent `nb` per axis,
/// x-fastest layout) with the `nb × nb` matrix `mat[q*nb + j]`
/// (`transpose = true` applies `matᵀ`).
fn contract_axis<const DIM: usize>(
    input: &[f64],
    output: &mut [f64],
    mat: &[f64],
    nb: usize,
    m: usize,
    transpose: bool,
) {
    let n = nb.pow(DIM as u32);
    let stride = nb.pow(m as u32);
    output[..n].iter_mut().for_each(|x| *x = 0.0);
    // Iterate all indices; for each position, its axis-m digit.
    let block = stride * nb;
    let mut base = 0;
    while base < n {
        for inner in 0..stride {
            let off = base + inner;
            for out_d in 0..nb {
                let mut s = 0.0;
                for in_d in 0..nb {
                    let m_entry = if transpose {
                        mat[in_d * nb + out_d]
                    } else {
                        mat[out_d * nb + in_d]
                    };
                    s += m_entry * input[off + in_d * stride];
                }
                output[off + out_d * stride] = s;
            }
        }
        base += block;
    }
}

/// Batched [`contract_axis`]: the tensor carries a trailing contiguous
/// element lane of width `batch` (`position = tensor_index * batch + b`),
/// so the effective stride of axis `m` is `nb^m · batch` and the innermost
/// loop runs over `stride` contiguous positions — a multiply-add the
/// compiler auto-vectorizes. Each output position accumulates its `in_d`
/// products in the same order as the scalar register accumulation, so the
/// per-element results are bitwise identical.
fn contract_axis_batch<const DIM: usize>(
    input: &[f64],
    output: &mut [f64],
    mat: &[f64],
    nb: usize,
    m: usize,
    transpose: bool,
    batch: usize,
) {
    let n = nb.pow(DIM as u32) * batch;
    let stride = nb.pow(m as u32) * batch;
    output[..n].iter_mut().for_each(|x| *x = 0.0);
    let block = stride * nb;
    let mut base = 0;
    while base < n {
        for out_d in 0..nb {
            let orow = base + out_d * stride;
            for in_d in 0..nb {
                let m_entry = if transpose {
                    mat[in_d * nb + out_d]
                } else {
                    mat[out_d * nb + in_d]
                };
                let irow = base + in_d * stride;
                let (iseg, oseg) = (
                    &input[irow..irow + stride],
                    &mut output[orow..orow + stride],
                );
                for (o, x) in oseg.iter_mut().zip(iseg) {
                    *o += m_entry * x;
                }
            }
        }
        base += block;
    }
}

/// Elemental load vector `∫ φ_i f dx` for an element with physical minimum
/// corner `min` and side `h`, using an `nq`-point tensor Gauss rule.
pub fn load_vector<const DIM: usize>(
    p: usize,
    min: &[f64; DIM],
    h: f64,
    f: &dyn Fn(&[f64; DIM]) -> f64,
    nq: usize,
) -> Vec<f64> {
    let tab = tabulated_memo(p, nq.max(p + 1));
    let quad = &tab.quad;
    let n = npe::<DIM>(p);
    let nq1 = quad.points.len();
    let nqs = nq1.pow(DIM as u32);
    let mut out = vec![0.0; n];
    let vol = h.powi(DIM as i32);
    for qlin in 0..nqs {
        let q = lattice::<DIM>(qlin, nq1);
        let mut w = 1.0;
        let mut x = [0.0; DIM];
        for k in 0..DIM {
            w *= quad.weights[q[k]];
            x[k] = min[k] + h * quad.points[q[k]];
        }
        let fx = f(&x);
        for (i, oi) in out.iter_mut().enumerate().take(n) {
            let li = lattice::<DIM>(i, p + 1);
            let mut bi = 1.0;
            for k in 0..DIM {
                bi *= tab.basis(q[k], li[k]);
            }
            *oi += vol * w * fx * bi;
        }
    }
    out
}

/// Stiffness matrix of a *stretched* (anisotropic) brick element with side
/// `h[k]` along axis `k` — what complete-octree codes must use when a
/// coordinate transform squeezes the cube onto an elongated channel, and
/// the cause of the condition-number blowup in Table 1.
pub fn stiffness_matrix_anisotropic<const DIM: usize>(p: usize, h: &[f64; DIM]) -> DenseMatrix {
    let tab = tabulated_memo(p, p + 1);
    let n = npe::<DIM>(p);
    let nq1 = tab.nq;
    let nqs = nq1.pow(DIM as u32);
    let vol: f64 = h.iter().product();
    let mut k = DenseMatrix::zeros(n, n);
    for qlin in 0..nqs {
        let q = lattice::<DIM>(qlin, nq1);
        let mut w = 1.0;
        for &qk in &q {
            w *= tab.quad.weights[qk];
        }
        for i in 0..n {
            let li = lattice::<DIM>(i, p + 1);
            for j in 0..n {
                let lj = lattice::<DIM>(j, p + 1);
                let mut dot = 0.0;
                for (axis, &ha) in h.iter().enumerate().take(DIM) {
                    let mut gi = 1.0;
                    let mut gj = 1.0;
                    for m in 0..DIM {
                        if m == axis {
                            gi *= tab.deriv(q[m], li[m]);
                            gj *= tab.deriv(q[m], lj[m]);
                        } else {
                            gi *= tab.basis(q[m], li[m]);
                            gj *= tab.basis(q[m], lj[m]);
                        }
                    }
                    // Physical gradients pick up 1/h_axis each.
                    dot += gi * gj / (ha * ha);
                }
                k[(i, j)] += w * vol * dot;
            }
        }
    }
    k
}

/// Convenience free functions mirroring the cache methods.
pub fn stiffness_matrix<const DIM: usize>(p: usize, h: f64) -> DenseMatrix {
    ElementCache::<DIM>::new(p).stiffness(h)
}

pub fn mass_matrix<const DIM: usize>(p: usize, h: f64) -> DenseMatrix {
    ElementCache::<DIM>::new(p).mass(h)
}

/// Free-function tensor apply (allocates a cache; prefer [`ElementCache`]).
pub fn apply_stiffness_tensor<const DIM: usize>(p: usize, h: f64, u: &[f64], v: &mut [f64]) {
    ElementCache::<DIM>::new(p).apply_stiffness_tensor(h, u, v)
}

// --- Per-level geometric factors -------------------------------------------
//
// Octants are axis-aligned cubes, so the element size `h` — and with it every
// geometric factor the Poisson operators need — is a pure function of the
// octant's refinement level: `h(l) = scale / 2^l` exactly in f64 (power-of-two
// division is exact). Precomputing the `h^{DIM-2}` stiffness and `h^DIM` mass
// scales once per table therefore yields values bitwise identical to calling
// `bounds_unit().1 * scale` and `powi` per leaf, while removing that work from
// the innermost traversal loop.

/// Table of per-level geometric scale factors for a `DIM`-dimensional mesh
/// with domain scale `scale` (physical root side length).
#[derive(Debug, Clone)]
pub struct LevelScales {
    h: [f64; MAX_LEVEL as usize + 1],
    stiff: [f64; MAX_LEVEL as usize + 1],
    mass: [f64; MAX_LEVEL as usize + 1],
}

impl LevelScales {
    /// Build the table. Each entry is computed exactly as the per-leaf code
    /// did (`bounds_unit().1 * scale`, then `powi`), so substituting a table
    /// lookup for the inline computation preserves every bit.
    pub fn new<const DIM: usize>(scale: f64) -> Self {
        let mut h = [0.0; MAX_LEVEL as usize + 1];
        let mut stiff = [0.0; MAX_LEVEL as usize + 1];
        let mut mass = [0.0; MAX_LEVEL as usize + 1];
        for l in 0..=MAX_LEVEL as usize {
            let side = Octant::<DIM>::new([0; DIM], l as u8).bounds_unit().1;
            let hl = side * scale;
            h[l] = hl;
            stiff[l] = hl.powi(DIM as i32 - 2);
            mass[l] = hl.powi(DIM as i32);
        }
        Self { h, stiff, mass }
    }

    /// Physical element size at `level`.
    #[inline]
    pub fn h(&self, level: u8) -> f64 {
        self.h[level as usize]
    }

    /// Stiffness scale `h^{DIM-2}` at `level`.
    #[inline]
    pub fn stiffness(&self, level: u8) -> f64 {
        self.stiff[level as usize]
    }

    /// Mass scale `h^DIM` at `level`.
    #[inline]
    pub fn mass(&self, level: u8) -> f64 {
        self.mass[level as usize]
    }
}

// --- Batched leaf kernels ---------------------------------------------------
//
// Kernel structs implementing the traversal engine's `LeafKernel` /
// `AssemblyKernel` traits with `supports_panels() == true`, so runs of
// same-level SFC-contiguous leaves flow through the SoA panel path
// (DESIGN.md §6h). Each scalar `apply` reproduces the closure it replaces
// bit for bit; each `apply_panel` reuses the batched tensor/mass applies,
// whose per-element op sequence equals the scalar one.

/// Stiffness (Poisson) leaf kernel: `v += h^{DIM-2} · K_ref · u`.
pub struct StiffnessKernel<const DIM: usize> {
    cache: ElementCache<DIM>,
    scales: LevelScales,
}

impl<const DIM: usize> StiffnessKernel<DIM> {
    pub fn new(p: usize, scale: f64) -> Self {
        Self {
            cache: ElementCache::new(p),
            scales: LevelScales::new::<DIM>(scale),
        }
    }
}

impl<const DIM: usize> LeafKernel<DIM> for StiffnessKernel<DIM> {
    fn apply(&mut self, elem: &Octant<DIM>, u: &[f64], v: &mut [f64]) {
        self.cache
            .apply_stiffness_tensor_scaled(self.scales.stiffness(elem.level), u, v);
    }

    fn supports_panels(&self) -> bool {
        true
    }

    fn apply_panel(&mut self, elems: &[Octant<DIM>], u: &[f64], v: &mut [f64]) {
        debug_assert!(elems.iter().all(|e| e.level == elems[0].level));
        self.cache.apply_stiffness_tensor_batched(
            self.scales.stiffness(elems[0].level),
            elems.len(),
            u,
            v,
        );
    }
}

/// Mass leaf kernel: `v += h^DIM · M_ref · u`.
pub struct MassKernel<const DIM: usize> {
    cache: ElementCache<DIM>,
    scales: LevelScales,
}

impl<const DIM: usize> MassKernel<DIM> {
    pub fn new(p: usize, scale: f64) -> Self {
        Self {
            cache: ElementCache::new(p),
            scales: LevelScales::new::<DIM>(scale),
        }
    }
}

impl<const DIM: usize> LeafKernel<DIM> for MassKernel<DIM> {
    fn apply(&mut self, elem: &Octant<DIM>, u: &[f64], v: &mut [f64]) {
        self.cache
            .apply_mass_scaled(self.scales.mass(elem.level), u, v);
    }

    fn supports_panels(&self) -> bool {
        true
    }

    fn apply_panel(&mut self, elems: &[Octant<DIM>], u: &[f64], v: &mut [f64]) {
        debug_assert!(elems.iter().all(|e| e.level == elems[0].level));
        self.cache
            .apply_mass_batched(self.scales.mass(elems[0].level), elems.len(), u, v);
    }
}

/// Backward-Euler heat leaf kernel: `v += (h^DIM · M + dt · h^{DIM-2} · K) u`,
/// fused so each input value is loaded once per row pair.
pub struct HeatKernel<const DIM: usize> {
    cache: ElementCache<DIM>,
    scales: LevelScales,
    dt: f64,
}

impl<const DIM: usize> HeatKernel<DIM> {
    pub fn new(p: usize, scale: f64, dt: f64) -> Self {
        Self {
            cache: ElementCache::new(p),
            scales: LevelScales::new::<DIM>(scale),
            dt,
        }
    }
}

impl<const DIM: usize> LeafKernel<DIM> for HeatKernel<DIM> {
    fn apply(&mut self, elem: &Octant<DIM>, u: &[f64], v: &mut [f64]) {
        let hm = self.scales.mass(elem.level);
        let hk = self.dt * self.scales.stiffness(elem.level);
        self.cache.apply_heat_scaled(hm, hk, u, v);
    }

    fn supports_panels(&self) -> bool {
        true
    }

    fn apply_panel(&mut self, elems: &[Octant<DIM>], u: &[f64], v: &mut [f64]) {
        debug_assert!(elems.iter().all(|e| e.level == elems[0].level));
        let hm = self.scales.mass(elems[0].level);
        let hk = self.dt * self.scales.stiffness(elems[0].level);
        self.cache.apply_heat_batched(hm, hk, elems.len(), u, v);
    }
}

/// Assembly kernel producing the physical stiffness matrix per leaf, with a
/// lazily-built per-level matrix cache: since `h` depends only on `level`,
/// two leaves at the same level share one `DenseMatrix` and
/// [`AssemblyKernel::matrix_ref`] hands the traversal a borrow instead of a
/// clone.
pub struct StiffnessMatrixKernel<const DIM: usize> {
    cache: ElementCache<DIM>,
    scales: LevelScales,
    levels: Vec<Option<DenseMatrix>>,
}

impl<const DIM: usize> StiffnessMatrixKernel<DIM> {
    pub fn new(p: usize, scale: f64) -> Self {
        Self {
            cache: ElementCache::new(p),
            scales: LevelScales::new::<DIM>(scale),
            levels: vec![None; MAX_LEVEL as usize + 1],
        }
    }

    /// The shared physical stiffness matrix for `level`, built on first use.
    pub fn level_matrix(&mut self, level: u8) -> &DenseMatrix {
        let slot = &mut self.levels[level as usize];
        if slot.is_none() {
            *slot = Some(self.cache.stiffness(self.scales.h(level)));
        }
        slot.as_ref().unwrap()
    }
}

impl<const DIM: usize> AssemblyKernel<DIM> for StiffnessMatrixKernel<DIM> {
    fn matrix(&mut self, elem: &Octant<DIM>) -> DenseMatrix {
        self.level_matrix(elem.level).clone()
    }

    fn matrix_ref(&mut self, elem: &Octant<DIM>) -> Option<&DenseMatrix> {
        Some(self.level_matrix(elem.level))
    }

    fn supports_panels(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stiffness_1d_linear_is_classic() {
        // [1 -1; -1 1] / h in 1D... our DIM >= 2 cases: check 2D p=1 known
        // matrix: K = 1/6 * [[4,-1,-1,-2],[-1,4,-2,-1],[-1,-2,4,-1],[-2,-1,-1,4]].
        let k = reference_stiffness::<2>(1);
        let expect = [
            [4.0, -1.0, -1.0, -2.0],
            [-1.0, 4.0, -2.0, -1.0],
            [-1.0, -2.0, 4.0, -1.0],
            [-2.0, -1.0, -1.0, 4.0],
        ];
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (k[(i, j)] - expect[i][j] / 6.0).abs() < 1e-13,
                    "K[{i}][{j}] = {}",
                    k[(i, j)]
                );
            }
        }
    }

    #[test]
    fn stiffness_rows_sum_to_zero() {
        // ∇(constant) = 0 ⇒ K·1 = 0.
        for p in [1usize, 2] {
            let k2 = reference_stiffness::<2>(p);
            let k3 = reference_stiffness::<3>(p);
            for (k, n) in [(&k2, npe::<2>(p)), (&k3, npe::<3>(p))] {
                for i in 0..n {
                    let row: f64 = (0..n).map(|j| k[(i, j)]).sum();
                    assert!(row.abs() < 1e-12, "p={p} row {i}: {row}");
                }
            }
        }
    }

    #[test]
    fn mass_total_is_volume() {
        for p in [1usize, 2] {
            let m = reference_mass::<3>(p);
            let n = npe::<3>(p);
            let total: f64 = (0..n)
                .flat_map(|i| (0..n).map(move |j| (i, j)))
                .map(|(i, j)| m[(i, j)])
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "p={p}: {total}");
        }
    }

    #[test]
    fn tensor_apply_matches_dense() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        for p in [1usize, 2] {
            let mut cache2 = ElementCache::<2>::new(p);
            let mut cache3 = ElementCache::<3>::new(p);
            for h in [1.0, 0.125] {
                let n2 = npe::<2>(p);
                let u2: Vec<f64> = (0..n2).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let mut vd = vec![0.0; n2];
                let mut vt = vec![0.0; n2];
                cache2.apply_stiffness_dense(h, &u2, &mut vd);
                cache2.apply_stiffness_tensor(h, &u2, &mut vt);
                for (a, b) in vd.iter().zip(&vt) {
                    assert!((a - b).abs() < 1e-11, "2D p={p}: {a} vs {b}");
                }
                let n3 = npe::<3>(p);
                let u3: Vec<f64> = (0..n3).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let mut vd = vec![0.0; n3];
                let mut vt = vec![0.0; n3];
                cache3.apply_stiffness_dense(h, &u3, &mut vd);
                cache3.apply_stiffness_tensor(h, &u3, &mut vt);
                for (a, b) in vd.iter().zip(&vt) {
                    assert!((a - b).abs() < 1e-11, "3D p={p}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn load_vector_constant_source_sums_to_volume() {
        let load = load_vector::<3>(2, &[0.0; 3], 0.5, &|_| 1.0, 3);
        let total: f64 = load.iter().sum();
        assert!((total - 0.125).abs() < 1e-13);
        // Linear f integrates exactly too: f = x -> ∫ x over [0,0.5]^3 =
        // 0.5^3 * 0.25 = 0.03125.
        let loadx = load_vector::<3>(2, &[0.0; 3], 0.5, &|x| x[0], 3);
        let total: f64 = loadx.iter().sum();
        assert!((total - 0.03125).abs() < 1e-13);
    }

    #[test]
    fn physical_scaling_powers() {
        // 2D stiffness is h-independent; 3D scales like h.
        let k2a = stiffness_matrix::<2>(1, 1.0);
        let k2b = stiffness_matrix::<2>(1, 0.25);
        assert!((k2a[(0, 0)] - k2b[(0, 0)]).abs() < 1e-14);
        let k3a = stiffness_matrix::<3>(1, 1.0);
        let k3b = stiffness_matrix::<3>(1, 0.5);
        assert!((k3a[(0, 0)] * 0.5 - k3b[(0, 0)]).abs() < 1e-14);
    }

    #[test]
    fn level_scales_match_per_leaf_computation() {
        for scale in [1.0, 2.5, 0.37] {
            let s2 = LevelScales::new::<2>(scale);
            let s3 = LevelScales::new::<3>(scale);
            for l in 0..=MAX_LEVEL {
                let h2 = Octant::<2>::new([0; 2], l).bounds_unit().1 * scale;
                let h3 = Octant::<3>::new([0; 3], l).bounds_unit().1 * scale;
                assert_eq!(s2.h(l).to_bits(), h2.to_bits());
                assert_eq!(s2.stiffness(l).to_bits(), h2.powi(0).to_bits());
                assert_eq!(s2.mass(l).to_bits(), h2.powi(2).to_bits());
                assert_eq!(s3.h(l).to_bits(), h3.to_bits());
                assert_eq!(s3.stiffness(l).to_bits(), h3.powi(1).to_bits());
                assert_eq!(s3.mass(l).to_bits(), h3.powi(3).to_bits());
            }
        }
    }

    /// Runs one batched apply against `batch` scalar applies on the same
    /// per-element data and demands bitwise equality.
    fn check_batched_bitwise<const DIM: usize>(p: usize, batch: usize) {
        use rand::{Rng, SeedableRng};
        let mut rng =
            rand_chacha::ChaCha8Rng::seed_from_u64(90 + (DIM * 10 + p) as u64 + batch as u64);
        let n = npe::<DIM>(p);
        let mut cache = ElementCache::<DIM>::new(p);
        // SoA panel: node lin of element b at [lin * batch + b].
        let panel_u: Vec<f64> = (0..n * batch).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for (scale, hm, hk) in [(1.0, 0.125, 0.03), (0.4782, 2.0, 0.9)] {
            let mut panel_v = vec![0.0; n * batch];
            cache.apply_stiffness_tensor_batched(scale, batch, &panel_u, &mut panel_v);
            for b in 0..batch {
                let u: Vec<f64> = (0..n).map(|lin| panel_u[lin * batch + b]).collect();
                let mut v = vec![0.0; n];
                cache.apply_stiffness_tensor_scaled(scale, &u, &mut v);
                for (lin, x) in v.iter().enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        panel_v[lin * batch + b].to_bits(),
                        "stiffness DIM={DIM} p={p} batch={batch} b={b} lin={lin}"
                    );
                }
            }
            let mut panel_v = vec![0.0; n * batch];
            cache.apply_mass_batched(scale, batch, &panel_u, &mut panel_v);
            for b in 0..batch {
                let u: Vec<f64> = (0..n).map(|lin| panel_u[lin * batch + b]).collect();
                let mut v = vec![0.0; n];
                cache.apply_mass_scaled(scale, &u, &mut v);
                for (lin, x) in v.iter().enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        panel_v[lin * batch + b].to_bits(),
                        "mass DIM={DIM} p={p} batch={batch} b={b} lin={lin}"
                    );
                }
            }
            let mut panel_v = vec![0.0; n * batch];
            cache.apply_heat_batched(hm, hk, batch, &panel_u, &mut panel_v);
            for b in 0..batch {
                let u: Vec<f64> = (0..n).map(|lin| panel_u[lin * batch + b]).collect();
                let mut v = vec![0.0; n];
                cache.apply_heat_scaled(hm, hk, &u, &mut v);
                for (lin, x) in v.iter().enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        panel_v[lin * batch + b].to_bits(),
                        "heat DIM={DIM} p={p} batch={batch} b={b} lin={lin}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_applies_bitwise_match_scalar() {
        for p in [1usize, 2, 3] {
            for batch in [1usize, 3, 4, 8] {
                check_batched_bitwise::<2>(p, batch);
                check_batched_bitwise::<3>(p, batch);
            }
        }
    }

    #[test]
    fn stiffness_kernel_matches_closure() {
        use carve_core::LeafKernel as _;
        let scale = 1.75;
        let p = 2;
        let mut kern = StiffnessKernel::<3>::new(p, scale);
        let mut cache = ElementCache::<3>::new(p);
        let n = npe::<3>(p);
        let u: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        for level in [0u8, 3, 11] {
            let e = Octant::<3>::new([0; 3], level);
            let mut va = vec![0.0; n];
            let mut vb = vec![0.0; n];
            kern.apply(&e, &u, &mut va);
            let h = e.bounds_unit().1 * scale;
            cache.apply_stiffness_tensor(h, &u, &mut vb);
            for (a, b) in va.iter().zip(&vb) {
                assert_eq!(a.to_bits(), b.to_bits(), "level {level}");
            }
        }
    }

    #[test]
    fn matrix_kernel_levels_share_storage() {
        use carve_core::AssemblyKernel as _;
        let mut kern = StiffnessMatrixKernel::<3>::new(1, 1.0);
        let e = Octant::<3>::new([0; 3], 4);
        let owned = kern.matrix(&e);
        let cache = ElementCache::<3>::new(1);
        let expect = cache.stiffness(LevelScales::new::<3>(1.0).h(4));
        for i in 0..owned.rows {
            for j in 0..owned.rows {
                assert_eq!(owned[(i, j)].to_bits(), expect[(i, j)].to_bits());
            }
        }
        let r = kern.matrix_ref(&e).expect("cached");
        assert_eq!(r[(0, 0)].to_bits(), owned[(0, 0)].to_bits());
    }
}
