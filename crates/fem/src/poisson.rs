//! Elemental operators for the Poisson problem on axis-aligned cube
//! elements: reference stiffness/mass matrices, per-order caches, load
//! vectors, and the sum-factorized (tensor) stiffness application whose
//! `O(d(p+1)^{d+1})` complexity the paper quotes for its MATVEC.

use crate::basis::Tabulated;
use carve_la::DenseMatrix;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Process-wide memo of reference stiffness/mass pairs keyed `(DIM, p)`.
/// Building them is `O(npe² · nq^DIM)` quadrature work — far more than the
/// `O(npe²)` clone a cache hit costs — and solver loops construct
/// [`ElementCache`]s freely (multigrid levels, per-thread kernel factories),
/// so the first construction pays and every later one copies.
type RefOpsMemo = Mutex<HashMap<(usize, usize), (DenseMatrix, DenseMatrix)>>;

fn ref_ops_memo() -> &'static RefOpsMemo {
    static MEMO: OnceLock<RefOpsMemo> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Memoized [`Tabulated::new`] (keyed `(p, nq)`): quadrature abscissae and
/// basis tabulations are tiny but rebuilt per element by [`load_vector`],
/// which is quadratic-cost noise once meshes reach bench sizes.
pub(crate) fn tabulated_memo(p: usize, nq: usize) -> Tabulated {
    static MEMO: OnceLock<Mutex<HashMap<(usize, usize), Tabulated>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let mut m = memo.lock().unwrap_or_else(|e| e.into_inner());
    m.entry((p, nq))
        .or_insert_with(|| Tabulated::new(p, nq))
        .clone()
}

/// Number of element nodes for order `p` in `DIM` dimensions.
#[inline]
pub fn npe<const DIM: usize>(p: usize) -> usize {
    (p + 1).pow(DIM as u32)
}

fn lattice<const DIM: usize>(linear: usize, base: usize) -> [usize; DIM] {
    let mut rem = linear;
    let mut idx = [0usize; DIM];
    for slot in idx.iter_mut() {
        *slot = rem % base;
        rem /= base;
    }
    idx
}

/// Reference stiffness matrix on `\[0,1\]^DIM`:
/// `K[i][j] = ∫ ∇φ_i · ∇φ_j`. Physical stiffness is `h^{DIM-2} · K`.
pub fn reference_stiffness<const DIM: usize>(p: usize) -> DenseMatrix {
    let tab = tabulated_memo(p, p + 1);
    let n = npe::<DIM>(p);
    let nq1 = tab.nq;
    let nqs = nq1.pow(DIM as u32);
    let mut k = DenseMatrix::zeros(n, n);
    for qlin in 0..nqs {
        let q = lattice::<DIM>(qlin, nq1);
        let mut w = 1.0;
        for &qk in &q {
            w *= tab.quad.weights[qk];
        }
        for i in 0..n {
            let li = lattice::<DIM>(i, p + 1);
            for j in 0..n {
                let lj = lattice::<DIM>(j, p + 1);
                let mut dot = 0.0;
                for axis in 0..DIM {
                    let mut gi = 1.0;
                    let mut gj = 1.0;
                    for m in 0..DIM {
                        if m == axis {
                            gi *= tab.deriv(q[m], li[m]);
                            gj *= tab.deriv(q[m], lj[m]);
                        } else {
                            gi *= tab.basis(q[m], li[m]);
                            gj *= tab.basis(q[m], lj[m]);
                        }
                    }
                    dot += gi * gj;
                }
                k[(i, j)] += w * dot;
            }
        }
    }
    k
}

/// Reference mass matrix on `\[0,1\]^DIM` (physical: `h^DIM · M`).
pub fn reference_mass<const DIM: usize>(p: usize) -> DenseMatrix {
    let tab = tabulated_memo(p, p + 1);
    let n = npe::<DIM>(p);
    let nq1 = tab.nq;
    let nqs = nq1.pow(DIM as u32);
    let mut mm = DenseMatrix::zeros(n, n);
    for qlin in 0..nqs {
        let q = lattice::<DIM>(qlin, nq1);
        let mut w = 1.0;
        for &qk in &q {
            w *= tab.quad.weights[qk];
        }
        for i in 0..n {
            let li = lattice::<DIM>(i, p + 1);
            let mut bi = 1.0;
            for m in 0..DIM {
                bi *= tab.basis(q[m], li[m]);
            }
            for j in 0..n {
                let lj = lattice::<DIM>(j, p + 1);
                let mut bj = 1.0;
                for m in 0..DIM {
                    bj *= tab.basis(q[m], lj[m]);
                }
                mm[(i, j)] += w * bi * bj;
            }
        }
    }
    mm
}

/// Cache of reference operators for one (dimension, order): every element of
/// side `h` shares them up to a power of `h`. Construction hits the
/// process-wide reference-operator memo, so `new` is cheap after the first
/// call per `(DIM, p)` — worker-thread kernel factories and multigrid
/// levels can build their own without re-running quadrature.
#[derive(Clone)]
pub struct ElementCache<const DIM: usize> {
    pub p: usize,
    pub kref: DenseMatrix,
    pub mref: DenseMatrix,
    tab: Tabulated,
    scratch_a: Vec<f64>,
    scratch_b: Vec<f64>,
    grads: Vec<f64>,
}

impl<const DIM: usize> ElementCache<DIM> {
    pub fn new(p: usize) -> Self {
        let (kref, mref) = {
            let mut memo = ref_ops_memo().lock().unwrap_or_else(|e| e.into_inner());
            memo.entry((DIM, p))
                .or_insert_with(|| (reference_stiffness::<DIM>(p), reference_mass::<DIM>(p)))
                .clone()
        };
        let tab = tabulated_memo(p, p + 1);
        let nq = (p + 1).pow(DIM as u32);
        Self {
            p,
            kref,
            mref,
            tab,
            scratch_a: vec![0.0; nq],
            scratch_b: vec![0.0; nq],
            grads: vec![0.0; nq],
        }
    }

    /// Physical stiffness matrix for an element of side `h`.
    pub fn stiffness(&self, h: f64) -> DenseMatrix {
        let scale = h.powi(DIM as i32 - 2);
        let mut k = self.kref.clone();
        for v in k.data.iter_mut() {
            *v *= scale;
        }
        k
    }

    /// Physical mass matrix for an element of side `h`.
    pub fn mass(&self, h: f64) -> DenseMatrix {
        let scale = h.powi(DIM as i32);
        let mut m = self.mref.clone();
        for v in m.data.iter_mut() {
            *v *= scale;
        }
        m
    }

    /// Dense stiffness apply `v += h^{d-2} K_ref u` (2·npe² flops).
    pub fn apply_stiffness_dense(&self, h: f64, u: &[f64], v: &mut [f64]) {
        let scale = h.powi(DIM as i32 - 2);
        let n = u.len();
        for (i, vi) in v.iter_mut().enumerate().take(n) {
            let row = &self.kref.data[i * n..(i + 1) * n];
            let mut s = 0.0;
            for (a, b) in row.iter().zip(u) {
                s += a * b;
            }
            *vi += scale * s;
        }
    }

    /// Sum-factorized stiffness apply: `v += h^{d-2} Σ_k C_kᵀ (W ∘ C_k u)`
    /// where `C_k` differentiates along axis `k` at the tensor quadrature
    /// points — `O(d²(p+1)^{d+1})` work instead of `O((p+1)^{2d})`.
    pub fn apply_stiffness_tensor(&mut self, h: f64, u: &[f64], v: &mut [f64]) {
        let p = self.p;
        let nb = p + 1;
        let scale = h.powi(DIM as i32 - 2);
        let n = nb.pow(DIM as u32);
        debug_assert_eq!(u.len(), n);
        for axis in 0..DIM {
            // Forward: C_axis u (contract each axis with B, except `axis`
            // with G). nb == nq so extents stay constant.
            self.scratch_a[..n].copy_from_slice(u);
            for m in 0..DIM {
                contract_axis::<DIM>(
                    &self.scratch_a,
                    &mut self.scratch_b,
                    if m == axis { &self.tab.g } else { &self.tab.b },
                    nb,
                    m,
                    false,
                );
                std::mem::swap(&mut self.scratch_a, &mut self.scratch_b);
            }
            // Quadrature weights at tensor points.
            for (ql, g) in self.grads.iter_mut().enumerate() {
                let q = lattice::<DIM>(ql, nb);
                let mut w = 1.0;
                for &qk in &q {
                    w *= self.tab.quad.weights[qk];
                }
                *g = w * self.scratch_a[ql];
            }
            // Transpose: C_axisᵀ.
            self.scratch_a[..n].copy_from_slice(&self.grads);
            for m in 0..DIM {
                contract_axis::<DIM>(
                    &self.scratch_a,
                    &mut self.scratch_b,
                    if m == axis { &self.tab.g } else { &self.tab.b },
                    nb,
                    m,
                    true,
                );
                std::mem::swap(&mut self.scratch_a, &mut self.scratch_b);
            }
            for (vi, &si) in v.iter_mut().zip(&self.scratch_a) {
                *vi += scale * si;
            }
        }
    }
}

/// Contracts axis `m` of a `DIM`-dimensional tensor (extent `nb` per axis,
/// x-fastest layout) with the `nb × nb` matrix `mat[q*nb + j]`
/// (`transpose = true` applies `matᵀ`).
fn contract_axis<const DIM: usize>(
    input: &[f64],
    output: &mut [f64],
    mat: &[f64],
    nb: usize,
    m: usize,
    transpose: bool,
) {
    let n = nb.pow(DIM as u32);
    let stride = nb.pow(m as u32);
    output[..n].iter_mut().for_each(|x| *x = 0.0);
    // Iterate all indices; for each position, its axis-m digit.
    let block = stride * nb;
    let mut base = 0;
    while base < n {
        for inner in 0..stride {
            let off = base + inner;
            for out_d in 0..nb {
                let mut s = 0.0;
                for in_d in 0..nb {
                    let m_entry = if transpose {
                        mat[in_d * nb + out_d]
                    } else {
                        mat[out_d * nb + in_d]
                    };
                    s += m_entry * input[off + in_d * stride];
                }
                output[off + out_d * stride] = s;
            }
        }
        base += block;
    }
}

/// Elemental load vector `∫ φ_i f dx` for an element with physical minimum
/// corner `min` and side `h`, using an `nq`-point tensor Gauss rule.
pub fn load_vector<const DIM: usize>(
    p: usize,
    min: &[f64; DIM],
    h: f64,
    f: &dyn Fn(&[f64; DIM]) -> f64,
    nq: usize,
) -> Vec<f64> {
    let tab = tabulated_memo(p, nq.max(p + 1));
    let quad = &tab.quad;
    let n = npe::<DIM>(p);
    let nq1 = quad.points.len();
    let nqs = nq1.pow(DIM as u32);
    let mut out = vec![0.0; n];
    let vol = h.powi(DIM as i32);
    for qlin in 0..nqs {
        let q = lattice::<DIM>(qlin, nq1);
        let mut w = 1.0;
        let mut x = [0.0; DIM];
        for k in 0..DIM {
            w *= quad.weights[q[k]];
            x[k] = min[k] + h * quad.points[q[k]];
        }
        let fx = f(&x);
        for (i, oi) in out.iter_mut().enumerate().take(n) {
            let li = lattice::<DIM>(i, p + 1);
            let mut bi = 1.0;
            for k in 0..DIM {
                bi *= tab.basis(q[k], li[k]);
            }
            *oi += vol * w * fx * bi;
        }
    }
    out
}

/// Stiffness matrix of a *stretched* (anisotropic) brick element with side
/// `h[k]` along axis `k` — what complete-octree codes must use when a
/// coordinate transform squeezes the cube onto an elongated channel, and
/// the cause of the condition-number blowup in Table 1.
pub fn stiffness_matrix_anisotropic<const DIM: usize>(p: usize, h: &[f64; DIM]) -> DenseMatrix {
    let tab = tabulated_memo(p, p + 1);
    let n = npe::<DIM>(p);
    let nq1 = tab.nq;
    let nqs = nq1.pow(DIM as u32);
    let vol: f64 = h.iter().product();
    let mut k = DenseMatrix::zeros(n, n);
    for qlin in 0..nqs {
        let q = lattice::<DIM>(qlin, nq1);
        let mut w = 1.0;
        for &qk in &q {
            w *= tab.quad.weights[qk];
        }
        for i in 0..n {
            let li = lattice::<DIM>(i, p + 1);
            for j in 0..n {
                let lj = lattice::<DIM>(j, p + 1);
                let mut dot = 0.0;
                for (axis, &ha) in h.iter().enumerate().take(DIM) {
                    let mut gi = 1.0;
                    let mut gj = 1.0;
                    for m in 0..DIM {
                        if m == axis {
                            gi *= tab.deriv(q[m], li[m]);
                            gj *= tab.deriv(q[m], lj[m]);
                        } else {
                            gi *= tab.basis(q[m], li[m]);
                            gj *= tab.basis(q[m], lj[m]);
                        }
                    }
                    // Physical gradients pick up 1/h_axis each.
                    dot += gi * gj / (ha * ha);
                }
                k[(i, j)] += w * vol * dot;
            }
        }
    }
    k
}

/// Convenience free functions mirroring the cache methods.
pub fn stiffness_matrix<const DIM: usize>(p: usize, h: f64) -> DenseMatrix {
    ElementCache::<DIM>::new(p).stiffness(h)
}

pub fn mass_matrix<const DIM: usize>(p: usize, h: f64) -> DenseMatrix {
    ElementCache::<DIM>::new(p).mass(h)
}

/// Free-function tensor apply (allocates a cache; prefer [`ElementCache`]).
pub fn apply_stiffness_tensor<const DIM: usize>(p: usize, h: f64, u: &[f64], v: &mut [f64]) {
    ElementCache::<DIM>::new(p).apply_stiffness_tensor(h, u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stiffness_1d_linear_is_classic() {
        // [1 -1; -1 1] / h in 1D... our DIM >= 2 cases: check 2D p=1 known
        // matrix: K = 1/6 * [[4,-1,-1,-2],[-1,4,-2,-1],[-1,-2,4,-1],[-2,-1,-1,4]].
        let k = reference_stiffness::<2>(1);
        let expect = [
            [4.0, -1.0, -1.0, -2.0],
            [-1.0, 4.0, -2.0, -1.0],
            [-1.0, -2.0, 4.0, -1.0],
            [-2.0, -1.0, -1.0, 4.0],
        ];
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (k[(i, j)] - expect[i][j] / 6.0).abs() < 1e-13,
                    "K[{i}][{j}] = {}",
                    k[(i, j)]
                );
            }
        }
    }

    #[test]
    fn stiffness_rows_sum_to_zero() {
        // ∇(constant) = 0 ⇒ K·1 = 0.
        for p in [1usize, 2] {
            let k2 = reference_stiffness::<2>(p);
            let k3 = reference_stiffness::<3>(p);
            for (k, n) in [(&k2, npe::<2>(p)), (&k3, npe::<3>(p))] {
                for i in 0..n {
                    let row: f64 = (0..n).map(|j| k[(i, j)]).sum();
                    assert!(row.abs() < 1e-12, "p={p} row {i}: {row}");
                }
            }
        }
    }

    #[test]
    fn mass_total_is_volume() {
        for p in [1usize, 2] {
            let m = reference_mass::<3>(p);
            let n = npe::<3>(p);
            let total: f64 = (0..n)
                .flat_map(|i| (0..n).map(move |j| (i, j)))
                .map(|(i, j)| m[(i, j)])
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "p={p}: {total}");
        }
    }

    #[test]
    fn tensor_apply_matches_dense() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        for p in [1usize, 2] {
            let mut cache2 = ElementCache::<2>::new(p);
            let mut cache3 = ElementCache::<3>::new(p);
            for h in [1.0, 0.125] {
                let n2 = npe::<2>(p);
                let u2: Vec<f64> = (0..n2).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let mut vd = vec![0.0; n2];
                let mut vt = vec![0.0; n2];
                cache2.apply_stiffness_dense(h, &u2, &mut vd);
                cache2.apply_stiffness_tensor(h, &u2, &mut vt);
                for (a, b) in vd.iter().zip(&vt) {
                    assert!((a - b).abs() < 1e-11, "2D p={p}: {a} vs {b}");
                }
                let n3 = npe::<3>(p);
                let u3: Vec<f64> = (0..n3).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let mut vd = vec![0.0; n3];
                let mut vt = vec![0.0; n3];
                cache3.apply_stiffness_dense(h, &u3, &mut vd);
                cache3.apply_stiffness_tensor(h, &u3, &mut vt);
                for (a, b) in vd.iter().zip(&vt) {
                    assert!((a - b).abs() < 1e-11, "3D p={p}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn load_vector_constant_source_sums_to_volume() {
        let load = load_vector::<3>(2, &[0.0; 3], 0.5, &|_| 1.0, 3);
        let total: f64 = load.iter().sum();
        assert!((total - 0.125).abs() < 1e-13);
        // Linear f integrates exactly too: f = x -> ∫ x over [0,0.5]^3 =
        // 0.5^3 * 0.25 = 0.03125.
        let loadx = load_vector::<3>(2, &[0.0; 3], 0.5, &|x| x[0], 3);
        let total: f64 = loadx.iter().sum();
        assert!((total - 0.03125).abs() < 1e-13);
    }

    #[test]
    fn physical_scaling_powers() {
        // 2D stiffness is h-independent; 3D scales like h.
        let k2a = stiffness_matrix::<2>(1, 1.0);
        let k2b = stiffness_matrix::<2>(1, 0.25);
        assert!((k2a[(0, 0)] - k2b[(0, 0)]).abs() < 1e-14);
        let k3a = stiffness_matrix::<3>(1, 1.0);
        let k3b = stiffness_matrix::<3>(1, 0.5);
        assert!((k3a[(0, 0)] * 0.5 - k3b[(0, 0)]).abs() < 1e-14);
    }
}
