//! The Shifted Boundary Method (§4.3): weak Dirichlet conditions on the
//! *surrogate* (voxelated) boundary Γ̃, shifted to the true boundary Γ with a
//! second-order Taylor correction through the distance vector `d`.
//!
//! The added weak-form terms (paper's equation, Main & Scovazzi / Atallah et
//! al.):
//!
//! ```text
//! −(w, ∇u·ñ)_Γ̃ − (∇w·ñ, u + ∇u·d − u_D)_Γ̃ + (α/h)(w + ∇w·d, u + ∇u·d − u_D)_Γ̃
//! ```
//!
//! Without these terms (imposing `u = u_D` at voxel-boundary nodes), Fig. 6
//! shows first-order convergence; with them, second order is recovered.

use crate::basis::gauss_rule;
use carve_core::{find_leaf, Mesh};
use carve_la::DenseMatrix;
use carve_sfc::morton::finest_cell_of_point;

/// One face of a retained element whose across-face region is carved: part
/// of the surrogate boundary Γ̃.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SurrogateFace {
    pub elem: usize,
    pub axis: usize,
    /// `true` if the outward normal is +axis.
    pub positive: bool,
}

/// SBM parameters.
#[derive(Clone, Copy, Debug)]
pub struct SbmParams {
    /// Nitsche penalty α (the paper's `α`; 4–10 is typical).
    pub alpha: f64,
    /// Face quadrature points per direction.
    pub nq: usize,
}

impl Default for SbmParams {
    fn default() -> Self {
        Self { alpha: 10.0, nq: 3 }
    }
}

/// Detects the surrogate boundary: faces of retained elements whose
/// same-level across-face region is not covered by any retained leaf.
///
/// `include_cube_boundary` controls faces on the root-cube boundary: when
/// the carved geometry reaches the cube edge (the Fig. 6 disk of R = 0.5 is
/// tangent to all four edges; channel walls coincide with cube faces) those
/// faces belong to Γ̃ too (with `d = 0` they reduce to Nitsche conditions).
/// Pass `false` when the cube boundary carries strong Dirichlet data
/// instead.
pub fn surrogate_faces<const DIM: usize>(
    mesh: &Mesh<DIM>,
    include_cube_boundary: bool,
) -> Vec<SurrogateFace> {
    let mut faces = Vec::new();
    for (i, e) in mesh.elems.iter().enumerate() {
        let side = e.side();
        for axis in 0..DIM {
            for positive in [false, true] {
                // Same-level neighbor across this face.
                let mut anchor_i = [0i64; DIM];
                for (ai, &ea) in anchor_i.iter_mut().zip(&e.anchor) {
                    *ai = ea as i64;
                }
                anchor_i[axis] += if positive {
                    side as i64
                } else {
                    -(side as i64)
                };
                if anchor_i[axis] < 0 || anchor_i[axis] >= carve_sfc::octant::ROOT_SIDE as i64 {
                    if include_cube_boundary {
                        faces.push(SurrogateFace {
                            elem: i,
                            axis,
                            positive,
                        });
                    }
                    continue;
                }
                // Probe just across the face center: the finest-level cell
                // touching the middle of the face from the neighbor side.
                // (Probing the neighbor's *center* would misclassify coarse
                // elements whose same-level neighbor region is partially
                // covered by finer leaves.)
                let mut probe = [0u64; DIM];
                for (pk, &ea) in probe.iter_mut().zip(&e.anchor) {
                    *pk = ea as u64 + (side as u64) / 2;
                }
                probe[axis] = if positive {
                    e.anchor[axis] as u64 + side as u64
                } else {
                    e.anchor[axis] as u64 - 1
                };
                let cell = finest_cell_of_point(&probe);
                if find_leaf(&mesh.elems, mesh.curve, &cell).is_none() {
                    faces.push(SurrogateFace {
                        elem: i,
                        axis,
                        positive,
                    });
                }
            }
        }
    }
    faces
}

/// Computes the SBM face matrix and right-hand-side contributions for one
/// surrogate face of an element with physical min-corner `min` and side `h`.
///
/// * `map_to_true(x)` returns the closest point on the true boundary Γ
///   (so `d = map_to_true(x) − x`).
/// * `u_d(x_gamma)` is the Dirichlet data evaluated *on Γ*.
pub fn sbm_face_terms<const DIM: usize>(
    p: usize,
    min: &[f64; DIM],
    h: f64,
    face: (usize, bool),
    params: &SbmParams,
    map_to_true: &dyn Fn(&[f64; DIM]) -> [f64; DIM],
    u_d: &dyn Fn(&[f64; DIM]) -> f64,
) -> (DenseMatrix, Vec<f64>) {
    let (axis, positive) = face;
    let nb = p + 1;
    let n = nb.pow(DIM as u32);
    let tab = crate::poisson::tabulated_memo(p, p + 1);
    let quad = gauss_rule(params.nq.clamp(p + 1, 5));
    let nq1 = quad.points.len();
    let free: Vec<usize> = (0..DIM).filter(|&k| k != axis).collect();
    let nqs = nq1.pow(free.len() as u32);
    let mut a = DenseMatrix::zeros(n, n);
    let mut b = vec![0.0; n];
    // ñ: outward unit normal of the voxel domain.
    let mut normal = [0.0; DIM];
    normal[axis] = if positive { 1.0 } else { -1.0 };
    let area = h.powi(DIM as i32 - 1);
    let alpha_h = params.alpha / h;
    // Reference coordinate on the face along `axis`.
    let t_axis = if positive { 1.0 } else { 0.0 };
    let mut phi = vec![0.0; n];
    let mut grad = vec![[0.0; DIM]; n];
    for qlin in 0..nqs {
        // Reference point.
        let mut tref = [0.0; DIM];
        tref[axis] = t_axis;
        let mut w = 1.0;
        let mut rem = qlin;
        for &k in &free {
            let qi = rem % nq1;
            rem /= nq1;
            tref[k] = quad.points[qi];
            w *= quad.weights[qi];
        }
        let ds = w * area;
        // Physical point, distance vector, boundary data.
        let mut x = [0.0; DIM];
        for k in 0..DIM {
            x[k] = min[k] + h * tref[k];
        }
        let x_gamma = map_to_true(&x);
        let mut d = [0.0; DIM];
        for k in 0..DIM {
            d[k] = x_gamma[k] - x[k];
        }
        let ud = u_d(&x_gamma);
        // Basis values and physical gradients at tref.
        for i in 0..n {
            let mut li = [0usize; DIM];
            let mut r = i;
            for slot in li.iter_mut() {
                *slot = r % nb;
                r /= nb;
            }
            let mut v = 1.0;
            for k in 0..DIM {
                v *= crate::basis::lagrange_eval_unit(p, li[k], tref[k]);
            }
            phi[i] = v;
            for (k, gk) in grad[i].iter_mut().enumerate() {
                let mut g = 1.0;
                for m in 0..DIM {
                    if m == k {
                        g *= crate::basis::lagrange_deriv_unit(p, li[m], tref[m]);
                    } else {
                        g *= crate::basis::lagrange_eval_unit(p, li[m], tref[m]);
                    }
                }
                *gk = g / h;
            }
        }
        let _ = &tab; // tabulation kept for parity with volume kernels
        for i in 0..n {
            let gn_i: f64 = (0..DIM).map(|k| grad[i][k] * normal[k]).sum();
            let gd_i: f64 = (0..DIM).map(|k| grad[i][k] * d[k]).sum();
            let wi = phi[i] + gd_i; // w + ∇w·d
            for j in 0..n {
                let gn_j: f64 = (0..DIM).map(|k| grad[j][k] * normal[k]).sum();
                let gd_j: f64 = (0..DIM).map(|k| grad[j][k] * d[k]).sum();
                let uj = phi[j] + gd_j; // u + ∇u·d
                a[(i, j)] += ds * (-phi[i] * gn_j - gn_i * uj + alpha_h * wi * uj);
            }
            b[i] += ds * (-gn_i * ud + alpha_h * wi * ud);
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_geom::{RetainSolid, Sphere};
    use carve_sfc::Curve;

    #[test]
    fn disk_mesh_has_closed_surrogate_boundary() {
        let domain = RetainSolid::new(Sphere::<2>::new([0.5, 0.5], 0.35));
        let mesh = Mesh::build(&domain, Curve::Morton, 3, 5, 1);
        let faces = surrogate_faces(&mesh, false);
        assert!(!faces.is_empty());
        // All surrogate faces belong to intercepted elements... or at least
        // to elements near the circle; check each face's owning element
        // touches the carved region (outward probe is carved).
        for f in &faces {
            let e = &mesh.elems[f.elem];
            let (emin, h) = e.bounds_unit();
            // Face center, nudged outward, must be outside the disk.
            let mut x = [emin[0] + 0.5 * h, emin[1] + 0.5 * h];
            x[f.axis] = if f.positive {
                emin[f.axis] + h
            } else {
                emin[f.axis]
            };
            let mut probe = x;
            probe[f.axis] += if f.positive { 1e-9 } else { -1e-9 };
            let r = ((probe[0] - 0.5f64).powi(2) + (probe[1] - 0.5).powi(2)).sqrt();
            assert!(r > 0.35 - 1e-6, "surrogate face points into the disk");
        }
        // Total surrogate perimeter ≈ circle circumference (voxelated, so
        // between 4/π and ~1.6 times 2πR; the staircase length for a circle
        // is exactly 8R in the fine limit... just check the right scale).
        let perim: f64 = faces
            .iter()
            .map(|f| mesh.elems[f.elem].bounds_unit().1)
            .sum();
        let circ = 2.0 * std::f64::consts::PI * 0.35;
        assert!(
            perim > circ * 0.9 && perim < circ * 1.5,
            "perimeter {perim}"
        );
    }

    #[test]
    fn face_matrix_consistency_constant_solution() {
        // For u ≡ u_D = const and d arbitrary: residual contribution must
        // vanish: A·1 == b when u_D = 1 (consistency of the SBM terms).
        let p = 1;
        let params = SbmParams::default();
        let map = |x: &[f64; 2]| [x[0] + 0.03, x[1] - 0.02];
        let ud = |_: &[f64; 2]| 1.0;
        let (a, b) = sbm_face_terms::<2>(p, &[0.0, 0.0], 0.25, (0, true), &params, &map, &ud);
        let ones = vec![1.0; 4];
        let mut a1 = vec![0.0; 4];
        a.matvec(&ones, &mut a1);
        for (ai, bi) in a1.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-12, "{ai} vs {bi}");
        }
    }

    #[test]
    fn face_matrix_consistency_linear_solution() {
        // For u(x) = c·x with u_D(x_Γ) = c·x_Γ, the SBM residual terms
        // vanish exactly (the Taylor shift is exact for linears), leaving
        // only the consistency term −(φ_i, ∇u·ñ)_face — the piece that
        // cancels against the volume integration by parts. Verify
        // A·u − b == −(∇u·ñ) ∫ φ_i dS.
        let p = 1;
        let params = SbmParams { alpha: 6.0, nq: 3 };
        let c = [0.7, -0.4];
        let map = |x: &[f64; 2]| [x[0] + 0.05, x[1] + 0.02];
        let ud = move |x: &[f64; 2]| c[0] * x[0] + c[1] * x[1];
        let h = 0.5;
        let min = [0.25, 0.25];
        // Face (axis=1, negative): normal (0,-1), so ∇u·ñ = −c[1] = 0.4.
        let (a, b) = sbm_face_terms::<2>(p, &min, h, (1, false), &params, &map, &ud);
        let mut u = vec![0.0; 4];
        for (i, ui) in u.iter_mut().enumerate() {
            let xi = [min[0] + h * (i % 2) as f64, min[1] + h * (i / 2) as f64];
            *ui = c[0] * xi[0] + c[1] * xi[1];
        }
        let mut au = vec![0.0; 4];
        a.matvec(&u, &mut au);
        let grad_n = -c[1];
        // ∫φ_i over the face y = min[1]: h/2 for the two face nodes (0, 1),
        // zero for the opposite nodes (2, 3).
        let expected = [-grad_n * h / 2.0, -grad_n * h / 2.0, 0.0, 0.0];
        for i in 0..4 {
            let resid = au[i] - b[i];
            assert!(
                (resid - expected[i]).abs() < 1e-12,
                "node {i}: {resid} vs {}",
                expected[i]
            );
        }
    }
}
