//! Many-query serving engine (ROADMAP item 5: the "millions of users"
//! path).
//!
//! The octree+SBM pipeline amortizes expensive setup — carving, 2:1
//! balance, node ownership, assembly — over a single solve. A resident
//! service answering many requests against a handful of *scenarios*
//! (geometry × refinement × order) should pay that setup once per scenario
//! and keep it warm:
//!
//! * [`ScenarioCache`] — built [`DistMesh`] + assembled CSR + consistent
//!   Jacobi diagonal + optional multigrid hierarchy + warm
//!   [`TraversalWorkspace`] and Krylov scratch, keyed by [`ScenarioSpec`]
//!   (geometry hash, refinement spec, order), LRU-evicted by resident
//!   bytes (`CARVE_CACHE_BYTES`, default 256 MiB). Counters: `cache_hits`,
//!   `cache_misses`, `cache_evictions`, `cache_bytes` (cumulative admitted
//!   bytes).
//! * [`ScenarioEntry::solve`] / [`ScenarioEntry::block_solve`] — warm
//!   Jacobi-CG over the traversal MATVEC; the block variant runs k RHS in
//!   lockstep through [`carve_la::block_cg_with`]'s fused reduction rounds
//!   (2 collective rounds per iteration regardless of k).
//! * [`ServedField::eval_points`] — point reads on a solved field: SFC
//!   owner lookup + tensor-Lagrange evaluation through the hanging-stencil
//!   lattice (the field-transfer eval path), with one `all_to_allv` round
//!   trip for points whose covering leaf is remote. Thousands of reads,
//!   zero re-solves.
//!
//! **Determinism.** Cache-hit and cache-miss solves run the identical code
//! path over identical cached state, so their results are bitwise equal.
//! Point evaluation uses [`NudgePolicy::FaceOnly`]: the evaluating leaf
//! always contains the point, so values are independent of the rank
//! layout for interior points, and the lowest-ranked owner wins the remote
//! round deterministically.

use crate::fieldeval::{candidate_bins, eval_field_lattice, FieldView, NudgePolicy};
use crate::multigrid::Multigrid;
use crate::poisson::{StiffnessKernel, StiffnessMatrixKernel};
use carve_comm::Comm;
use carve_core::{traversal_assemble_par, DistMesh, FusedReduce, GhostState, TraversalWorkspace};
use carve_geom::Subdomain;
use carve_la::{
    block_cg_scratch, cg_with_scratch, CooBuilder, CsrMatrix, JacobiPrecond, KrylovResult,
    KrylovScratch, LocalReduce,
};
use carve_sfc::{Curve, Octant, MAX_LEVEL};
use std::cell::RefCell;
use std::mem::size_of;

/// Environment override for the scenario cache's resident-byte budget.
pub const CACHE_BYTES_ENV: &str = "CARVE_CACHE_BYTES";

const DEFAULT_CACHE_BYTES: usize = 256 << 20;

/// FNV-1a over a canonical geometry description — the `geometry` component
/// of a [`ScenarioSpec`]. Callers hash whatever uniquely names their
/// domain (shape kind, centers, radii, extents).
pub fn geometry_hash(desc: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in desc.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cache key + build recipe for one scenario: which geometry (by hash),
/// how it is refined, and the discretization order. Two requests with
/// equal specs share one cached [`ScenarioEntry`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Canonical geometry hash ([`geometry_hash`]); the cache trusts it to
    /// name the `&dyn Subdomain` passed alongside.
    pub geometry: u64,
    pub curve: Curve,
    pub base_level: u8,
    pub boundary_level: u8,
    /// Polynomial order `p`.
    pub order: u64,
    /// Physical size of the root cube.
    pub scale: f64,
    /// `Some(min_level)`: also build (and cache) the sequential multigrid
    /// hierarchy down to `min_level` for [`ScenarioEntry::mg_solve`].
    pub mg_min_level: Option<u8>,
}

/// Cumulative cache statistics (process-local, mirrored into obs
/// counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Total bytes ever admitted (monotone, like the `cache_bytes`
    /// counter — resident bytes are [`ScenarioCache::resident_bytes`]).
    pub admitted_bytes: u64,
}

/// Everything a scenario needs to answer requests without re-running
/// setup: the distributed mesh, the assembled stiffness CSR, the
/// globally-consistent Jacobi preconditioner, optionally the multigrid
/// hierarchy, and the warm per-request state (traversal workspace with its
/// ghosted-input scratch and exchange lanes, Krylov buffer pool).
pub struct ScenarioEntry<const DIM: usize> {
    pub spec: ScenarioSpec,
    pub dm: DistMesh<DIM>,
    /// Locally-assembled stiffness rows (owned-element contributions over
    /// local node indices; accumulate across ranks for global rows).
    pub csr: CsrMatrix,
    /// Jacobi preconditioner over the ghost-accumulated (globally
    /// consistent) diagonal.
    jacobi: JacobiPrecond,
    /// Sequential V-cycle hierarchy, when the spec asked for one.
    mg: Option<Multigrid<DIM>>,
    /// Warm traversal workspace: bucket arena, ghosted-input scratch, SoA
    /// leaf panels. Reused by every solve on this entry.
    ws: RefCell<TraversalWorkspace<DIM>>,
    /// Pooled Krylov work vectors, reused across solves (LIFO, so repeat
    /// same-size solves are pointer-stable).
    scratch: RefCell<KrylovScratch>,
    /// Resident-byte estimate used for LRU accounting.
    pub bytes: usize,
}

fn estimate_bytes<const DIM: usize>(dm: &DistMesh<DIM>, csr: &CsrMatrix) -> usize {
    dm.elems.len() * size_of::<Octant<DIM>>()
        + dm.nodes.coords.len() * (DIM * 8 + 2)
        + dm.owner.len() * 4
        + dm.global_id.len() * 4
        + csr.vals.len() * (8 + 4)
        + csr.row_ptr.len() * 8
        + csr.n * 8 // jacobi inverse diagonal
}

impl<const DIM: usize> ScenarioEntry<DIM> {
    /// Cache-miss path: build the mesh, assemble the CSR through the
    /// (shared, capacity-reusing) triplet builder, derive the consistent
    /// Jacobi diagonal, optionally build the multigrid hierarchy.
    fn build(
        comm: &Comm,
        domain: &dyn Subdomain<DIM>,
        spec: ScenarioSpec,
        coo: &mut CooBuilder,
    ) -> Self {
        let dm = DistMesh::<DIM>::build(
            comm,
            domain,
            spec.curve,
            spec.base_level,
            spec.boundary_level,
            spec.order,
        );
        let n = dm.nodes.len();
        let p = dm.order as usize;
        let npe = carve_core::nodes::nodes_per_elem::<DIM>(dm.order);
        coo.reset(n);
        coo.reserve(dm.owned.len() * npe * npe);
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut ws = TraversalWorkspace::new();
        let make_kernel = || StiffnessMatrixKernel::<DIM>::new(p, spec.scale);
        traversal_assemble_par(
            &dm.elems,
            dm.owned.clone(),
            dm.curve,
            &dm.nodes,
            &ids,
            coo,
            &mut ws,
            &make_kernel,
        );
        let csr = coo.build_and_clear();
        // Globally consistent diagonal: partition-surface rows get their
        // remote contributions, ghost entries mirror their owners.
        let mut diag = csr.diagonal();
        dm.ghost_accumulate(comm, &mut diag);
        dm.ghost_read(comm, &mut diag);
        let jacobi = JacobiPrecond::new(&diag);
        let mg = spec.mg_min_level.map(|ml| {
            let constrain = |fl: carve_core::NodeFlags| fl.is_any_boundary();
            Multigrid::new(
                domain,
                spec.base_level,
                spec.boundary_level,
                ml,
                spec.order,
                spec.scale,
                &constrain,
            )
        });
        let bytes = estimate_bytes(&dm, &csr);
        ScenarioEntry {
            spec,
            dm,
            csr,
            jacobi,
            mg,
            ws: RefCell::new(ws),
            scratch: RefCell::new(KrylovScratch::new()),
            bytes,
        }
    }

    /// Warm Jacobi-CG solve of the scenario operator through the traversal
    /// MATVEC. The trailing ghost read leaves `x` consistent at ghost
    /// nodes, so the result can go straight to [`ServedField`] reads.
    /// Cache-hit and cache-miss solves run this identical path — bitwise
    /// identical results.
    pub fn solve(
        &self,
        comm: &Comm,
        b: &[f64],
        x: &mut [f64],
        rtol: f64,
        max_iter: usize,
    ) -> KrylovResult {
        carve_obs::counter("serve_solves", 1);
        let res = cg_with_scratch(
            &self.op(comm),
            b,
            x,
            &self.jacobi,
            rtol,
            0.0,
            max_iter,
            &self.dm.reducer(comm),
            &mut self.scratch.borrow_mut(),
        );
        self.dm.ghost_read(comm, x);
        res
    }

    /// Multi-RHS batch: k lockstep CG recurrences sharing every reduction
    /// round ([`carve_la::block_cg_with`] — 2 collective rounds per
    /// iteration regardless of k). Per-lane results are bitwise identical
    /// to k sequential [`ScenarioEntry::solve`] calls.
    pub fn block_solve(
        &self,
        comm: &Comm,
        bs: &[&[f64]],
        xs: &mut [&mut [f64]],
        rtol: f64,
        max_iter: usize,
    ) -> Vec<KrylovResult> {
        carve_obs::counter("block_solves", 1);
        carve_obs::counter("block_rhs", bs.len() as u64);
        let res = block_cg_scratch(
            &self.op(comm),
            bs,
            xs,
            &self.jacobi,
            rtol,
            0.0,
            max_iter,
            &self.dm.reducer(comm),
            &mut self.scratch.borrow_mut(),
        );
        for x in xs.iter_mut() {
            self.dm.ghost_read(comm, x);
        }
        res
    }

    /// The cached sequential multigrid hierarchy, when the spec built one.
    pub fn mg(&self) -> Option<&Multigrid<DIM>> {
        self.mg.as_ref()
    }

    /// V-cycle-preconditioned CG on the cached hierarchy's finest mesh
    /// (its own sequential DOF numbering — a per-rank replica service, not
    /// the distributed operator). Rides [`FusedReduce`] so the fusion
    /// discipline lands in the `reductions_fused` counter.
    pub fn mg_solve(&self, b: &[f64], x: &mut [f64], rtol: f64, max_iter: usize) -> KrylovResult {
        let mg = self.mg.as_ref().expect("spec.mg_min_level was None");
        mg.solve_with(b, x, rtol, max_iter, &FusedReduce(&LocalReduce))
    }

    /// The serving operator: traversal MATVEC over the warm workspace,
    /// owned-only output (the Krylov contract; reductions mask to owned).
    fn op<'a>(&'a self, comm: &'a Comm) -> (usize, impl Fn(&[f64], &mut [f64]) + 'a) {
        let p = self.dm.order as usize;
        let scale = self.spec.scale;
        (self.dm.nodes.len(), move |xv: &[f64], yv: &mut [f64]| {
            let make_kernel = || StiffnessKernel::<DIM>::new(p, scale);
            self.dm.matvec_par(
                comm,
                xv,
                yv,
                &mut self.ws.borrow_mut(),
                GhostState::OwnedOnly,
                &make_kernel,
            );
        })
    }

    fn field_view<'a>(&'a self, u: &'a [f64]) -> FieldView<'a, DIM> {
        FieldView {
            curve: self.dm.curve,
            elems: &self.dm.elems,
            owned: self.dm.owned.clone(),
            nodes: &self.dm.nodes,
            u,
        }
    }
}

/// LRU scenario cache (recency-ordered, most recent last), byte-bounded by
/// `CARVE_CACHE_BYTES`. The triplet builder is shared across builds so
/// repeated cache misses reuse its grown capacity.
pub struct ScenarioCache<const DIM: usize> {
    entries: Vec<ScenarioEntry<DIM>>,
    cap_bytes: usize,
    coo: CooBuilder,
    stats: CacheStats,
}

impl<const DIM: usize> Default for ScenarioCache<DIM> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const DIM: usize> ScenarioCache<DIM> {
    /// Cache with the environment's byte budget (`CARVE_CACHE_BYTES`,
    /// default 256 MiB).
    pub fn new() -> Self {
        let cap = std::env::var(CACHE_BYTES_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_CACHE_BYTES);
        Self::with_cap_bytes(cap)
    }

    pub fn with_cap_bytes(cap_bytes: usize) -> Self {
        ScenarioCache {
            entries: Vec::new(),
            cap_bytes,
            coo: CooBuilder::new(0),
            stats: CacheStats::default(),
        }
    }

    /// Shrinks (or grows) the byte budget; evicts LRU entries immediately
    /// if the resident set no longer fits.
    pub fn set_cap_bytes(&mut self, cap_bytes: usize) {
        self.cap_bytes = cap_bytes;
        self.evict_to_fit(0);
    }

    pub fn cap_bytes(&self) -> usize {
        self.cap_bytes
    }

    pub fn resident_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn contains(&self, spec: &ScenarioSpec) -> bool {
        self.entries.iter().any(|e| e.spec == *spec)
    }

    /// The serving entry point: returns the cached entry for `spec`,
    /// building (and admitting) it on a miss. A hit refreshes the entry's
    /// recency; an admission evicts least-recently-used entries until the
    /// budget fits (the newest entry itself is always admitted, even
    /// over-budget — a cache that cannot hold one scenario still serves,
    /// it just stops retaining).
    pub fn get_or_build(
        &mut self,
        comm: &Comm,
        domain: &dyn Subdomain<DIM>,
        spec: ScenarioSpec,
    ) -> &ScenarioEntry<DIM> {
        if let Some(pos) = self.entries.iter().position(|e| e.spec == spec) {
            self.stats.hits += 1;
            carve_obs::counter("cache_hits", 1);
            let e = self.entries.remove(pos);
            self.entries.push(e);
        } else {
            self.stats.misses += 1;
            carve_obs::counter("cache_misses", 1);
            let e = ScenarioEntry::build(comm, domain, spec, &mut self.coo);
            self.evict_to_fit(e.bytes);
            self.stats.admitted_bytes += e.bytes as u64;
            carve_obs::counter("cache_bytes", e.bytes as u64);
            self.entries.push(e);
        }
        self.entries.last().expect("just ensured")
    }

    fn evict_to_fit(&mut self, incoming: usize) {
        while !self.entries.is_empty() && self.resident_bytes() + incoming > self.cap_bytes {
            self.entries.remove(0);
            self.stats.evictions += 1;
            carve_obs::counter("cache_evictions", 1);
        }
    }
}

/// A solved field on a cached scenario, ready for point reads. `u` must be
/// ghost-consistent — [`ScenarioEntry::solve`]'s output is.
pub struct ServedField<'a, const DIM: usize> {
    pub entry: &'a ScenarioEntry<DIM>,
    pub u: &'a [f64],
}

impl<const DIM: usize> ServedField<'_, DIM> {
    /// Evaluates the field at unit-cube points. Local points resolve with
    /// zero communication; points whose covering leaf is remote ride one
    /// `all_to_allv` request/reply round to their candidate owners (the
    /// lowest-ranked rank that evaluates wins, deterministically). Points
    /// outside the carved mesh evaluate to `0.0` and count into the
    /// `eval_misses` counter.
    ///
    /// Collective: every rank must call this, with its own point set.
    pub fn eval_points(&self, comm: &Comm, pts: &[[f64; DIM]]) -> Vec<f64> {
        carve_obs::counter("eval_points", pts.len() as u64);
        let dm = &self.entry.dm;
        let p = dm.order;
        let lat_scale = ((1u64 << MAX_LEVEL) * p) as f64;
        // Nodal-lattice coordinates, snapped onto exact integers when the
        // round trip through f64 lands within 1e-6 lattice units — nodal
        // reads then evaluate on the exact lattice (bitwise `u[node]`).
        let latts: Vec<[f64; DIM]> = pts
            .iter()
            .map(|x| {
                let mut latt = [0.0f64; DIM];
                for k in 0..DIM {
                    let l = x[k] * lat_scale;
                    let r = l.round();
                    latt[k] = if (l - r).abs() < 1e-6 { r } else { l };
                }
                latt
            })
            .collect();
        let fv = self.entry.field_view(self.u);
        let mut out = vec![0.0f64; pts.len()];
        let mut unresolved: Vec<usize> = Vec::new();
        for (i, latt) in latts.iter().enumerate() {
            match eval_field_lattice(&fv, latt, NudgePolicy::FaceOnly) {
                Some(v) => out[i] = v,
                None => unresolved.push(i),
            }
        }
        if comm.size() == 1 {
            if !unresolved.is_empty() {
                carve_obs::counter("eval_misses", unresolved.len() as u64);
            }
            return out;
        }
        // Remote round: probe the splitter bins of every cell the nudge
        // policy may touch (the covering leaf's owner is among them).
        let pnum = comm.size();
        let my = comm.rank();
        let splitters: Vec<Option<Octant<DIM>>> =
            comm.all_gather(dm.elems[dm.owned.clone()].first().copied());
        let mut requests: Vec<Vec<[f64; DIM]>> = (0..pnum).map(|_| Vec::new()).collect();
        let mut point_bins: Vec<Vec<usize>> = Vec::with_capacity(unresolved.len());
        for &i in &unresolved {
            let bins = candidate_bins(&splitters, dm.curve, p, &latts[i], NudgePolicy::FaceOnly);
            for &b in &bins {
                if b != my {
                    requests[b].push(latts[i]);
                }
            }
            point_bins.push(bins);
        }
        let incoming = comm.all_to_allv(requests);
        let replies: Vec<Vec<(bool, f64)>> = incoming
            .iter()
            .map(|cs| {
                cs.iter()
                    .map(
                        |latt| match eval_field_lattice(&fv, latt, NudgePolicy::FaceOnly) {
                            Some(v) => (true, v),
                            None => (false, 0.0),
                        },
                    )
                    .collect()
            })
            .collect();
        let reply_in = comm.all_to_allv(replies);
        let mut cursors = vec![0usize; pnum];
        let mut misses = 0u64;
        for (&i, bins) in unresolved.iter().zip(&point_bins) {
            let mut val: Option<f64> = None;
            for &b in bins {
                if b == my {
                    continue; // local evaluation already failed
                }
                let (found, v) = reply_in[b][cursors[b]];
                cursors[b] += 1;
                if val.is_none() && found {
                    val = Some(v);
                }
            }
            if val.is_none() {
                misses += 1;
            }
            out[i] = val.unwrap_or(0.0);
        }
        if misses > 0 {
            carve_obs::counter("eval_misses", misses);
        }
        out
    }
}

/// Owned-element range view used by tests and the bench to build
/// rank-independent fields: `f(unit coords)` at every local node.
pub fn coord_field<const DIM: usize>(
    dm: &DistMesh<DIM>,
    f: &dyn Fn(&[f64; DIM]) -> f64,
) -> Vec<f64> {
    (0..dm.nodes.len())
        .map(|i| f(&dm.nodes.unit_coords(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_comm::run_spmd;
    use carve_geom::{CarvedSolids, Sphere};

    fn sphere_spec(mg: Option<u8>) -> (CarvedSolids<2>, ScenarioSpec) {
        let domain = CarvedSolids::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.2))]);
        let spec = ScenarioSpec {
            geometry: geometry_hash("carved-sphere2d:0.5,0.5,r0.2"),
            curve: Curve::Hilbert,
            base_level: 3,
            boundary_level: 4,
            order: 1,
            scale: 1.0,
            mg_min_level: mg,
        };
        (domain, spec)
    }

    fn smooth(x: &[f64; 2]) -> f64 {
        (3.1 * x[0]).sin() * (2.3 * x[1]).cos() + 0.25 * x[0]
    }

    /// RHS keyed by node coordinates: identical across rank layouts and
    /// ghost-consistent by construction.
    fn rhs_field(dm: &DistMesh<2>) -> Vec<f64> {
        coord_field(dm, &|x| smooth(x) + 1.0)
    }

    const ITERS: usize = 8;

    #[test]
    fn cache_hit_solve_is_bitwise_identical_to_miss() {
        run_spmd(2, |c| {
            let (domain, spec) = sphere_spec(None);
            let mut cache = ScenarioCache::<2>::with_cap_bytes(64 << 20);

            let miss_u = {
                let e = cache.get_or_build(c, &domain, spec);
                let b = rhs_field(&e.dm);
                let mut x = vec![0.0; b.len()];
                e.solve(c, &b, &mut x, 0.0, ITERS);
                x
            };
            assert_eq!(cache.stats().misses, 1);

            let hit_u = {
                let e = cache.get_or_build(c, &domain, spec);
                let b = rhs_field(&e.dm);
                let mut x = vec![0.0; b.len()];
                e.solve(c, &b, &mut x, 0.0, ITERS);
                x
            };
            assert_eq!(cache.stats().hits, 1);
            assert_eq!(cache.stats().evictions, 0);
            for (a, b) in hit_u.iter().zip(&miss_u) {
                assert_eq!(a.to_bits(), b.to_bits(), "hit vs miss solve drifted");
            }
        });
    }

    #[test]
    fn cache_evicts_lru_by_bytes() {
        run_spmd(1, |c| {
            let (domain, spec_a) = sphere_spec(None);
            let spec_b = ScenarioSpec {
                boundary_level: 5,
                ..spec_a
            };
            let mut cache = ScenarioCache::<2>::with_cap_bytes(usize::MAX);
            cache.get_or_build(c, &domain, spec_a);
            let a_bytes = cache.resident_bytes();
            cache.get_or_build(c, &domain, spec_b);
            assert_eq!(cache.len(), 2);
            // Budget for exactly the resident set: nothing evicts.
            cache.set_cap_bytes(cache.resident_bytes());
            assert_eq!(cache.len(), 2);
            // Re-touch A (now most recent), then shrink below both: B (now
            // LRU) must go first.
            cache.get_or_build(c, &domain, spec_a);
            cache.set_cap_bytes(a_bytes);
            assert_eq!(cache.len(), 1);
            assert!(cache.contains(&spec_a) && !cache.contains(&spec_b));
            assert_eq!(cache.stats().evictions, 1);
            // Zero budget: everything out, but a build still serves.
            cache.set_cap_bytes(0);
            assert!(cache.is_empty());
            let e = cache.get_or_build(c, &domain, spec_b);
            assert!(e.bytes > 0);
            assert_eq!(cache.stats().misses, 3, "B rebuilt after eviction");
        });
    }

    #[test]
    fn block_solve_matches_sequential_bitwise_and_fuses_rounds() {
        run_spmd(2, |c| {
            let (domain, spec) = sphere_spec(None);
            let mut cache = ScenarioCache::<2>::with_cap_bytes(64 << 20);
            let e = cache.get_or_build(c, &domain, spec);
            let n = e.dm.nodes.len();
            let base = rhs_field(&e.dm);
            let k = 4;
            let bs: Vec<Vec<f64>> = (0..k)
                .map(|j| base.iter().map(|v| v * (1.0 + j as f64 * 0.5)).collect())
                .collect();

            // Sequential baseline + its collective-round cost.
            let seq_calls0 = c.stats().collective_calls;
            let mut seq_x: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
            for j in 0..k {
                e.solve(c, &bs[j], &mut seq_x[j], 0.0, ITERS);
            }
            let seq_rounds = c.stats().collective_calls - seq_calls0;

            // Lockstep batch.
            let blk_calls0 = c.stats().collective_calls;
            let mut blk_x: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
            {
                let b_refs: Vec<&[f64]> = bs.iter().map(|b| b.as_slice()).collect();
                let mut x_refs: Vec<&mut [f64]> =
                    blk_x.iter_mut().map(|x| x.as_mut_slice()).collect();
                e.block_solve(c, &b_refs, &mut x_refs, 0.0, ITERS);
            }
            let blk_rounds = c.stats().collective_calls - blk_calls0;

            for j in 0..k {
                for i in 0..n {
                    assert_eq!(
                        blk_x[j][i].to_bits(),
                        seq_x[j][i].to_bits(),
                        "lane {j} node {i}"
                    );
                }
            }
            // Acceptance bar: k=4 must cost ≤ 1/3 the all-reduce rounds.
            assert!(
                3 * blk_rounds <= seq_rounds,
                "block {blk_rounds} vs sequential {seq_rounds} rounds"
            );
        });
    }

    #[test]
    fn eval_points_reproduces_nodal_values_bitwise() {
        run_spmd(2, |c| {
            let (domain, spec) = sphere_spec(None);
            let mut cache = ScenarioCache::<2>::with_cap_bytes(64 << 20);
            let e = cache.get_or_build(c, &domain, spec);
            // A ghost-consistent coordinate-keyed "solution".
            let u = coord_field(&e.dm, &smooth);
            let sf = ServedField { entry: e, u: &u };
            // Every local node — owned and ghost, including nodes whose
            // elements carry hanging stencils.
            let pts: Vec<[f64; 2]> = (0..e.dm.nodes.len())
                .map(|i| e.dm.nodes.unit_coords(i))
                .collect();
            let vals = sf.eval_points(c, &pts);
            for (i, v) in vals.iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    u[i].to_bits(),
                    "node {i} at {:?}",
                    e.dm.nodes.unit_coords(i)
                );
            }
        });
    }

    #[test]
    fn eval_points_is_rank_layout_independent_on_interior_points() {
        // Strictly-interior points (never exactly on a cell face) have a
        // unique covering leaf under FaceOnly nudging, so the evaluated
        // bits cannot depend on how the mesh is partitioned.
        let probe: Vec<[f64; 2]> = (0..40)
            .map(|i| {
                let t = i as f64 / 40.0;
                [
                    0.5 + 0.23 * (6.3 * t).cos() * t,
                    0.5 + 0.21 * (5.1 * t).sin() * t,
                ]
            })
            .collect();
        let eval_on = |ranks: usize| {
            let probe = probe.clone();
            run_spmd(ranks, move |c| {
                let (domain, spec) = sphere_spec(None);
                let mut cache = ScenarioCache::<2>::with_cap_bytes(64 << 20);
                let e = cache.get_or_build(c, &domain, spec);
                let u = coord_field(&e.dm, &smooth);
                let sf = ServedField { entry: e, u: &u };
                sf.eval_points(c, &probe)
            })
        };
        let one = eval_on(1);
        let two = eval_on(2);
        for r in &two {
            for (i, v) in r.iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    one[0][i].to_bits(),
                    "point {i} {:?} differs across rank layouts",
                    probe[i]
                );
            }
        }
    }

    #[test]
    fn served_solves_reuse_workspace_and_scratch_pointers() {
        run_spmd(2, |c| {
            let (domain, spec) = sphere_spec(None);
            let mut cache = ScenarioCache::<2>::with_cap_bytes(64 << 20);
            let e = cache.get_or_build(c, &domain, spec);
            let b = rhs_field(&e.dm);
            let n = b.len();

            let mut x = vec![0.0; n];
            e.solve(c, &b, &mut x, 0.0, ITERS);
            let ghost_ptr = {
                let mut ws = e.ws.borrow_mut();
                let s = ws.take_ghost_scratch();
                let p = s.as_ptr() as usize;
                ws.restore_ghost_scratch(s);
                p
            };
            let krylov_ptrs: Vec<usize> = {
                let mut sc = e.scratch.borrow_mut();
                assert_eq!(sc.pooled(), 4);
                let bufs: Vec<Vec<f64>> = (0..4).map(|_| sc.take(n)).collect();
                let ptrs = bufs.iter().map(|v| v.as_ptr() as usize).collect();
                for v in bufs.into_iter().rev() {
                    sc.put(v);
                }
                ptrs
            };

            let mut x2 = vec![0.0; n];
            e.solve(c, &b, &mut x2, 0.0, ITERS);
            {
                let mut ws = e.ws.borrow_mut();
                let s = ws.take_ghost_scratch();
                assert_eq!(
                    s.as_ptr() as usize,
                    ghost_ptr,
                    "warm solve reallocated the ghosted input"
                );
                ws.restore_ghost_scratch(s);
            }
            {
                let mut sc = e.scratch.borrow_mut();
                let bufs: Vec<Vec<f64>> = (0..4).map(|_| sc.take(n)).collect();
                let ptrs: Vec<usize> = bufs.iter().map(|v| v.as_ptr() as usize).collect();
                for v in bufs.into_iter().rev() {
                    sc.put(v);
                }
                assert_eq!(ptrs, krylov_ptrs, "warm solve reallocated Krylov buffers");
            }
            for (a, bb) in x.iter().zip(&x2) {
                assert_eq!(a.to_bits(), bb.to_bits());
            }
        });
    }

    #[test]
    fn cached_multigrid_solves_with_fused_reductions() {
        run_spmd(1, |c| {
            let (domain, spec) = sphere_spec(Some(2));
            let mut cache = ScenarioCache::<2>::with_cap_bytes(64 << 20);
            let e = cache.get_or_build(c, &domain, spec);
            let mg = e.mg().expect("spec requested a hierarchy");
            let n = mg.finest().num_dofs();
            let b: Vec<f64> = (0..n)
                .map(|i| {
                    if mg.finest().nodes.flags[i].is_any_boundary() {
                        0.0
                    } else {
                        smooth(&mg.finest().nodes.unit_coords(i))
                    }
                })
                .collect();
            let mut x = vec![0.0; n];
            let res = e.mg_solve(&b, &mut x, 1e-10, 50);
            assert!(res.converged, "{res:?}");
            // Bitwise identical to the plain LocalReduce path.
            let mut x2 = vec![0.0; n];
            mg.solve(&b, &mut x2, 1e-10, 50);
            for (a, bb) in x.iter().zip(&x2) {
                assert_eq!(a.to_bits(), bb.to_bits());
            }
        });
    }
}
