//! Poisson solve driver on carved meshes: traversal assembly, boundary
//! treatment (naive nodal Dirichlet vs SBM), Krylov solve, error norms.

use crate::poisson::{load_vector, ElementCache};
use crate::sbm::{sbm_face_terms, surrogate_faces, SbmParams};
use carve_core::{resolve_slot, traversal_assemble_par, Mesh, SlotRef, TraversalWorkspace};
use carve_geom::Subdomain;
use carve_la::{bicgstab, AsmPrecond, CooBuilder, JacobiPrecond, KrylovResult};
use std::collections::HashMap;

/// How Dirichlet data is imposed on the carved (voxelated) boundary.
#[derive(Clone, Copy, Debug)]
pub enum BcMode {
    /// Impose `u = u_D` strongly at the voxel-boundary nodes: the right
    /// condition at the wrong place, first-order accurate (Fig. 6, "naive").
    Naive,
    /// Shifted Boundary Method: weak conditions on Γ̃ shifted to Γ —
    /// recovers second order for linear elements.
    Sbm(SbmParams),
}

/// Closest-point map onto the true boundary Γ (physical coordinates).
pub type ClosestBoundaryMap<'a, const DIM: usize> = &'a dyn Fn(&[f64; DIM]) -> [f64; DIM];

/// Problem data; positions are unit-cube coordinates × `scale`.
pub struct PoissonProblem<'a, const DIM: usize> {
    /// Physical size of the root cube.
    pub scale: f64,
    /// Source term.
    pub f: &'a dyn Fn(&[f64; DIM]) -> f64,
    /// Dirichlet data (extended off Γ for the naive mode; evaluated on Γ
    /// through the closest-point map for SBM).
    pub dirichlet: &'a dyn Fn(&[f64; DIM]) -> f64,
    /// Closest point on the true boundary Γ (physical coordinates); only
    /// required for SBM.
    pub closest_boundary: Option<ClosestBoundaryMap<'a, DIM>>,
    /// Impose `dirichlet` strongly at root-cube boundary nodes.
    pub strong_cube_bc: bool,
    pub bc: BcMode,
}

/// Solution + solver report.
pub struct PoissonSolution {
    pub u: Vec<f64>,
    pub krylov: KrylovResult,
    pub nnz: usize,
}

/// Assembles and solves `−Δu = f` on the carved mesh.
pub fn solve_poisson<const DIM: usize>(
    mesh: &Mesh<DIM>,
    domain: &dyn Subdomain<DIM>,
    prob: &PoissonProblem<DIM>,
) -> PoissonSolution {
    let n = mesh.num_dofs();
    let p = mesh.order as usize;
    let scale = prob.scale;
    let cache = ElementCache::<DIM>::new(p);

    // Precompute SBM face contributions per element.
    let mut face_mats: HashMap<usize, (carve_la::DenseMatrix, Vec<f64>)> = HashMap::new();
    if let BcMode::Sbm(params) = prob.bc {
        let map = prob
            .closest_boundary
            .expect("SBM requires the closest-boundary map");
        for f in surrogate_faces(mesh, !prob.strong_cube_bc) {
            let e = &mesh.elems[f.elem];
            let (emin_u, h_u) = e.bounds_unit();
            let mut emin = [0.0; DIM];
            for k in 0..DIM {
                emin[k] = emin_u[k] * scale;
            }
            let h = h_u * scale;
            let (a, b) = sbm_face_terms::<DIM>(
                p,
                &emin,
                h,
                (f.axis, f.positive),
                &params,
                map,
                prob.dirichlet,
            );
            match face_mats.entry(f.elem) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let (am, bm) = o.get_mut();
                    for (x, y) in am.data.iter_mut().zip(&a.data) {
                        *x += y;
                    }
                    for (x, y) in bm.iter_mut().zip(&b) {
                        *x += y;
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert((a, b));
                }
            }
        }
    }

    // Assemble the matrix via traversal (§3.6), fork-joined across the
    // intra-rank thread budget; the triplet buffer is pre-sized to the
    // exact `leaves × npe²` emission count.
    let npe_a = carve_core::nodes::nodes_per_elem::<DIM>(mesh.order);
    let mut coo = CooBuilder::with_capacity(n, mesh.elems.len() * npe_a * npe_a);
    let ids: Vec<u32> = (0..n as u32).collect();
    let cache_ref = &cache;
    let face_ref = &face_mats;
    let make_kernel = || {
        move |e: &carve_sfc::Octant<DIM>| {
            let h = e.bounds_unit().1 * scale;
            let mut ke = cache_ref.stiffness(h);
            // Locate the element index for face lookups.
            if !face_ref.is_empty() {
                if let Ok(idx) = mesh
                    .elems
                    .binary_search_by(|x| carve_sfc::sfc_cmp(mesh.curve, x, e))
                {
                    if let Some((fa, _)) = face_ref.get(&idx) {
                        for (x, y) in ke.data.iter_mut().zip(&fa.data) {
                            *x += y;
                        }
                    }
                }
            }
            ke
        }
    };
    let mut ws = TraversalWorkspace::new();
    traversal_assemble_par(
        &mesh.elems,
        0..mesh.elems.len(),
        mesh.curve,
        &mesh.nodes,
        &ids,
        &mut coo,
        &mut ws,
        &make_kernel,
    );

    // Right-hand side: volume load + SBM face loads, scattered through
    // hanging stencils.
    let mut rhs = vec![0.0; n];
    let npe = carve_core::nodes::nodes_per_elem::<DIM>(mesh.order);
    for (ei, e) in mesh.elems.iter().enumerate() {
        let (emin_u, h_u) = e.bounds_unit();
        let mut emin = [0.0; DIM];
        for k in 0..DIM {
            emin[k] = emin_u[k] * scale;
        }
        let h = h_u * scale;
        let mut local = load_vector::<DIM>(p, &emin, h, prob.f, p + 2);
        if let Some((_, fb)) = face_mats.get(&ei) {
            for (x, y) in local.iter_mut().zip(fb) {
                *x += y;
            }
        }
        for (lin, &lv) in local.iter().enumerate().take(npe) {
            let idx = carve_core::nodes::lattice_index::<DIM>(lin, mesh.order);
            let c = carve_core::nodes::elem_node_coord(e, mesh.order, &idx);
            match resolve_slot(&mesh.nodes, e, &c) {
                SlotRef::Direct(i) => rhs[i] += lv,
                SlotRef::Hanging(st) => {
                    for (i, w) in st {
                        rhs[i] += w * lv;
                    }
                }
            }
        }
    }

    let mut a = coo.build();

    // Strong Dirichlet rows.
    let mut constrained = vec![false; n];
    for (i, ci) in constrained.iter_mut().enumerate() {
        let fl = mesh.nodes.flags[i];
        let naive = matches!(prob.bc, BcMode::Naive);
        if (naive && fl.is_carved_boundary()) || (prob.strong_cube_bc && fl.is_cube_boundary()) {
            *ci = true;
        }
    }
    for i in 0..n {
        if constrained[i] {
            // Zero the row, unit diagonal.
            let (lo, hi) = (a.row_ptr[i], a.row_ptr[i + 1]);
            let mut has_diag = false;
            for k in lo..hi {
                if a.cols[k] as usize == i {
                    a.vals[k] = 1.0;
                    has_diag = true;
                } else {
                    a.vals[k] = 0.0;
                }
            }
            assert!(has_diag, "constrained node {i} missing diagonal");
            let xu = mesh.nodes.unit_coords(i);
            let mut xp = [0.0; DIM];
            for k in 0..DIM {
                xp[k] = xu[k] * scale;
            }
            rhs[i] = (prob.dirichlet)(&xp);
        }
    }

    // Divergence guard: a NaN/Inf in the assembled system (bad boundary
    // data, degenerate SBM map) poisons every Krylov iterate; bail out with
    // a structured `diverged` report instead of burning 50k iterations.
    if !rhs.iter().all(|v| v.is_finite()) || !a.vals.iter().all(|v| v.is_finite()) {
        return PoissonSolution {
            u: vec![0.0; n],
            krylov: KrylovResult::divergence(0, f64::NAN),
            nnz: a.nnz(),
        };
    }

    // The paper's solver configuration: BiCGStab with additive Schwarz.
    let mut u = vec![0.0; n];
    let obs_krylov = carve_obs::scope("krylov");
    let krylov = if n > 2000 {
        let pre = AsmPrecond::new(&a, (n / 400).max(2), 8);
        bicgstab(&a, &rhs, &mut u, &pre, 1e-12, 1e-14, 50_000)
    } else {
        let pre = JacobiPrecond::from_matrix(&a);
        bicgstab(&a, &rhs, &mut u, &pre, 1e-12, 1e-14, 50_000)
    };
    carve_obs::counter("iterations", krylov.iterations as u64);
    drop(obs_krylov);
    let _ = domain;
    PoissonSolution {
        u,
        krylov,
        nnz: a.nnz(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::l2_linf_error;
    use carve_geom::{FullDomain, RetainSolid, Solid, Sphere};
    use carve_sfc::Curve;
    use std::f64::consts::PI;

    #[test]
    fn manufactured_solution_unit_square_converges_second_order() {
        let exact = |x: &[f64; 2]| (PI * x[0]).sin() * (PI * x[1]).sin();
        let f = move |x: &[f64; 2]| 2.0 * PI * PI * (PI * x[0]).sin() * (PI * x[1]).sin();
        let zero = |_: &[f64; 2]| 0.0;
        let mut errs = Vec::new();
        for l in [3u8, 4, 5] {
            let mesh = Mesh::<2>::build(&FullDomain, Curve::Morton, l, l, 1);
            let prob = PoissonProblem {
                scale: 1.0,
                f: &f,
                dirichlet: &zero,
                closest_boundary: None,
                strong_cube_bc: true,
                bc: BcMode::Naive,
            };
            let sol = solve_poisson(&mesh, &FullDomain, &prob);
            assert!(sol.krylov.converged, "{:?}", sol.krylov);
            let norms = l2_linf_error(&mesh, &FullDomain, &sol.u, &exact, 1.0);
            errs.push(norms.l2);
        }
        let rate = (errs[1] / errs[2]).log2();
        assert!(rate > 1.8 && rate < 2.3, "rate {rate}, errs {errs:?}");
    }

    #[test]
    fn quadratic_elements_converge_third_order_l2() {
        let exact = |x: &[f64; 2]| (PI * x[0]).sin() * (PI * x[1]).sin();
        let f = move |x: &[f64; 2]| 2.0 * PI * PI * (PI * x[0]).sin() * (PI * x[1]).sin();
        let zero = |_: &[f64; 2]| 0.0;
        let mut errs = Vec::new();
        for l in [2u8, 3, 4] {
            let mesh = Mesh::<2>::build(&FullDomain, Curve::Morton, l, l, 2);
            let prob = PoissonProblem {
                scale: 1.0,
                f: &f,
                dirichlet: &zero,
                closest_boundary: None,
                strong_cube_bc: true,
                bc: BcMode::Naive,
            };
            let sol = solve_poisson(&mesh, &FullDomain, &prob);
            let norms = l2_linf_error(&mesh, &FullDomain, &sol.u, &exact, 1.0);
            errs.push(norms.l2);
        }
        let rate = (errs[1] / errs[2]).log2();
        assert!(rate > 2.7 && rate < 3.4, "rate {rate}, errs {errs:?}");
    }

    /// The Fig. 6 disk problem: −Δu = 1 on the disk R=0.5 at (0.5,0.5),
    /// u=0 on the circle; exact u = (R² − r²)/4.
    fn disk_errors(bc: BcMode, levels: &[u8]) -> Vec<f64> {
        let disk = Sphere::<2>::new([0.5, 0.5], 0.5);
        let domain = RetainSolid::new(disk);
        let one = |_: &[f64; 2]| 1.0;
        let zero = |_: &[f64; 2]| 0.0;
        let closest = move |x: &[f64; 2]| disk.closest_boundary_point(x);
        let exact = |x: &[f64; 2]| {
            let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
            0.25 * (0.25 - r2)
        };
        let mut out = Vec::new();
        for &l in levels {
            let mesh = Mesh::build(&domain, Curve::Morton, l, l, 1);
            let prob = PoissonProblem {
                scale: 1.0,
                f: &one,
                dirichlet: &zero,
                closest_boundary: Some(&closest),
                strong_cube_bc: false,
                bc,
            };
            let sol = solve_poisson(&mesh, &domain, &prob);
            assert!(sol.krylov.converged, "{:?}", sol.krylov);
            let norms = l2_linf_error(&mesh, &domain, &sol.u, &exact, 1.0);
            out.push(norms.l2);
        }
        out
    }

    #[test]
    fn nan_boundary_data_reports_divergence_not_hang() {
        // NaN Dirichlet data poisons the right-hand side; the solver must
        // return a structured diverged report instead of iterating on NaN.
        let f = |_: &[f64; 2]| 1.0;
        let bad = |_: &[f64; 2]| f64::NAN;
        let mesh = Mesh::<2>::build(&FullDomain, Curve::Morton, 3, 3, 1);
        let prob = PoissonProblem {
            scale: 1.0,
            f: &f,
            dirichlet: &bad,
            closest_boundary: None,
            strong_cube_bc: true,
            bc: BcMode::Naive,
        };
        let sol = solve_poisson(&mesh, &FullDomain, &prob);
        assert!(sol.krylov.diverged, "{:?}", sol.krylov);
        assert!(!sol.krylov.converged);
        assert_eq!(sol.krylov.iterations, 0, "guard must fire before iterating");
    }

    #[test]
    fn disk_naive_bc_is_first_order() {
        let errs = disk_errors(BcMode::Naive, &[4, 5, 6]);
        let rate = (errs[1] / errs[2]).log2();
        assert!(
            rate < 1.6,
            "naive should be ~1st order, got {rate} ({errs:?})"
        );
    }

    #[test]
    fn disk_sbm_recovers_second_order() {
        let errs = disk_errors(BcMode::Sbm(SbmParams::default()), &[4, 5, 6]);
        let rate = (errs[1] / errs[2]).log2();
        assert!(
            rate > 1.6,
            "SBM should be ~2nd order, got {rate} ({errs:?})"
        );
        // And SBM beats naive in absolute error at the finest level.
        let naive = disk_errors(BcMode::Naive, &[6]);
        assert!(errs[2] < naive[0], "sbm {} vs naive {}", errs[2], naive[0]);
    }
}
