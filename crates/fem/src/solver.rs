//! Poisson solve driver on carved meshes: traversal assembly, boundary
//! treatment (naive nodal Dirichlet vs SBM), Krylov solve, error norms —
//! plus the solve [`Supervisor`], the escalation policy that turns a
//! non-converging Krylov iteration into a recovered solve (restart from
//! checkpoint → BiCGStab → tightened multigrid) or a structured
//! [`SolveFailed`] report.

use crate::poisson::{load_vector, StiffnessMatrixKernel};
use crate::sbm::{sbm_face_terms, surrogate_faces, SbmParams};
use carve_core::{
    resolve_slot, traversal_assemble_par, AssemblyKernel, Mesh, SlotRef, TraversalWorkspace,
};
use carve_geom::Subdomain;
use carve_la::{
    bicgstab, bicgstab_checkpointed, cg_checkpointed, default_ckpt_every, AsmPrecond, Checkpointer,
    CooBuilder, CsrMatrix, DenseMatrix, JacobiPrecond, KrylovResult, LinOp, LocalReduce, Precond,
    SolveCheckpoint,
};
use carve_sfc::Octant;
use std::collections::HashMap;
use std::fmt;

/// Per-element SBM face contributions, keyed by the octant itself so the
/// assembly kernel looks them up by value — no per-leaf `binary_search_by`
/// over the element array.
type FaceMats<const DIM: usize> = HashMap<Octant<DIM>, (DenseMatrix, Vec<f64>)>;

/// Assembly kernel for the Poisson system: the per-level stiffness matrix
/// (shared across same-level leaves via [`StiffnessMatrixKernel`]) plus the
/// element's precomputed SBM face matrix when it has one. `matrix_ref`
/// hands the traversal a borrow — of the level matrix directly, or of a
/// scratch sum for the few boundary elements with face terms — so the
/// common path never clones.
struct PoissonAssemblyKernel<'a, const DIM: usize> {
    levels: StiffnessMatrixKernel<DIM>,
    faces: &'a FaceMats<DIM>,
    combined: DenseMatrix,
}

impl<'a, const DIM: usize> PoissonAssemblyKernel<'a, DIM> {
    fn new(p: usize, scale: f64, faces: &'a FaceMats<DIM>) -> Self {
        let npe = crate::poisson::npe::<DIM>(p);
        Self {
            levels: StiffnessMatrixKernel::new(p, scale),
            faces,
            combined: DenseMatrix::zeros(npe, npe),
        }
    }
}

impl<const DIM: usize> AssemblyKernel<DIM> for PoissonAssemblyKernel<'_, DIM> {
    fn matrix(&mut self, e: &Octant<DIM>) -> DenseMatrix {
        let mut ke = self.levels.level_matrix(e.level).clone();
        if let Some((fa, _)) = self.faces.get(e) {
            for (x, y) in ke.data.iter_mut().zip(&fa.data) {
                *x += y;
            }
        }
        ke
    }

    fn matrix_ref(&mut self, e: &Octant<DIM>) -> Option<&DenseMatrix> {
        if let Some((fa, _)) = self.faces.get(e) {
            self.combined.clone_from(self.levels.level_matrix(e.level));
            for (x, y) in self.combined.data.iter_mut().zip(&fa.data) {
                *x += y;
            }
            Some(&self.combined)
        } else {
            Some(self.levels.level_matrix(e.level))
        }
    }

    fn supports_panels(&self) -> bool {
        true
    }
}

/// How Dirichlet data is imposed on the carved (voxelated) boundary.
#[derive(Clone, Copy, Debug)]
pub enum BcMode {
    /// Impose `u = u_D` strongly at the voxel-boundary nodes: the right
    /// condition at the wrong place, first-order accurate (Fig. 6, "naive").
    Naive,
    /// Shifted Boundary Method: weak conditions on Γ̃ shifted to Γ —
    /// recovers second order for linear elements.
    Sbm(SbmParams),
}

/// Closest-point map onto the true boundary Γ (physical coordinates).
pub type ClosestBoundaryMap<'a, const DIM: usize> = &'a dyn Fn(&[f64; DIM]) -> [f64; DIM];

/// Problem data; positions are unit-cube coordinates × `scale`.
pub struct PoissonProblem<'a, const DIM: usize> {
    /// Physical size of the root cube.
    pub scale: f64,
    /// Source term.
    pub f: &'a dyn Fn(&[f64; DIM]) -> f64,
    /// Dirichlet data (extended off Γ for the naive mode; evaluated on Γ
    /// through the closest-point map for SBM).
    pub dirichlet: &'a dyn Fn(&[f64; DIM]) -> f64,
    /// Closest point on the true boundary Γ (physical coordinates); only
    /// required for SBM.
    pub closest_boundary: Option<ClosestBoundaryMap<'a, DIM>>,
    /// Impose `dirichlet` strongly at root-cube boundary nodes.
    pub strong_cube_bc: bool,
    pub bc: BcMode,
}

/// Solution + solver report.
pub struct PoissonSolution {
    pub u: Vec<f64>,
    pub krylov: KrylovResult,
    pub nnz: usize,
}

/// Assembles the constrained linear system for `−Δu = f` on the carved
/// mesh: traversal-assembled stiffness (+ SBM face terms), volume + face
/// loads, strong Dirichlet rows. Shared by [`solve_poisson`] and
/// [`solve_poisson_supervised`].
fn assemble_poisson_system<const DIM: usize>(
    mesh: &Mesh<DIM>,
    prob: &PoissonProblem<DIM>,
) -> (CsrMatrix, Vec<f64>) {
    let n = mesh.num_dofs();
    let p = mesh.order as usize;
    let scale = prob.scale;

    // Precompute SBM face contributions per element, keyed by octant.
    let mut face_mats: FaceMats<DIM> = HashMap::new();
    if let BcMode::Sbm(params) = prob.bc {
        let map = prob
            .closest_boundary
            .expect("SBM requires the closest-boundary map");
        for f in surrogate_faces(mesh, !prob.strong_cube_bc) {
            let e = &mesh.elems[f.elem];
            let (emin_u, h_u) = e.bounds_unit();
            let mut emin = [0.0; DIM];
            for k in 0..DIM {
                emin[k] = emin_u[k] * scale;
            }
            let h = h_u * scale;
            let (a, b) = sbm_face_terms::<DIM>(
                p,
                &emin,
                h,
                (f.axis, f.positive),
                &params,
                map,
                prob.dirichlet,
            );
            match face_mats.entry(*e) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let (am, bm) = o.get_mut();
                    for (x, y) in am.data.iter_mut().zip(&a.data) {
                        *x += y;
                    }
                    for (x, y) in bm.iter_mut().zip(&b) {
                        *x += y;
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert((a, b));
                }
            }
        }
    }

    // Assemble the matrix via traversal (§3.6), fork-joined across the
    // intra-rank thread budget; the triplet buffer is pre-sized to the
    // exact `leaves × npe²` emission count.
    let npe_a = carve_core::nodes::nodes_per_elem::<DIM>(mesh.order);
    let mut coo = CooBuilder::with_capacity(n, mesh.elems.len() * npe_a * npe_a);
    let ids: Vec<u32> = (0..n as u32).collect();
    let face_ref = &face_mats;
    let make_kernel = || PoissonAssemblyKernel::<DIM>::new(p, scale, face_ref);
    let mut ws = TraversalWorkspace::new();
    traversal_assemble_par(
        &mesh.elems,
        0..mesh.elems.len(),
        mesh.curve,
        &mesh.nodes,
        &ids,
        &mut coo,
        &mut ws,
        &make_kernel,
    );

    // Right-hand side: volume load + SBM face loads, scattered through
    // hanging stencils.
    let mut rhs = vec![0.0; n];
    let npe = carve_core::nodes::nodes_per_elem::<DIM>(mesh.order);
    for e in mesh.elems.iter() {
        let (emin_u, h_u) = e.bounds_unit();
        let mut emin = [0.0; DIM];
        for k in 0..DIM {
            emin[k] = emin_u[k] * scale;
        }
        let h = h_u * scale;
        let mut local = load_vector::<DIM>(p, &emin, h, prob.f, p + 2);
        if let Some((_, fb)) = face_mats.get(e) {
            for (x, y) in local.iter_mut().zip(fb) {
                *x += y;
            }
        }
        for (lin, &lv) in local.iter().enumerate().take(npe) {
            let idx = carve_core::nodes::lattice_index::<DIM>(lin, mesh.order);
            let c = carve_core::nodes::elem_node_coord(e, mesh.order, &idx);
            match resolve_slot(&mesh.nodes, e, &c) {
                SlotRef::Direct(i) => rhs[i] += lv,
                SlotRef::Hanging(st) => {
                    for (i, w) in st {
                        rhs[i] += w * lv;
                    }
                }
            }
        }
    }

    let mut a = coo.build();

    // Strong Dirichlet rows.
    let mut constrained = vec![false; n];
    for (i, ci) in constrained.iter_mut().enumerate() {
        let fl = mesh.nodes.flags[i];
        let naive = matches!(prob.bc, BcMode::Naive);
        if (naive && fl.is_carved_boundary()) || (prob.strong_cube_bc && fl.is_cube_boundary()) {
            *ci = true;
        }
    }
    for i in 0..n {
        if constrained[i] {
            // Zero the row, unit diagonal.
            let (lo, hi) = (a.row_ptr[i], a.row_ptr[i + 1]);
            let mut has_diag = false;
            for k in lo..hi {
                if a.cols[k] as usize == i {
                    a.vals[k] = 1.0;
                    has_diag = true;
                } else {
                    a.vals[k] = 0.0;
                }
            }
            assert!(has_diag, "constrained node {i} missing diagonal");
            let xu = mesh.nodes.unit_coords(i);
            let mut xp = [0.0; DIM];
            for k in 0..DIM {
                xp[k] = xu[k] * scale;
            }
            rhs[i] = (prob.dirichlet)(&xp);
        }
    }

    (a, rhs)
}

/// The default preconditioner ladder rung: additive Schwarz past ~2k DOFs,
/// Jacobi below (block setup costs more than it saves on small systems).
fn default_precond(a: &CsrMatrix) -> Box<dyn Precond> {
    let n = a.n;
    if n > 2000 {
        Box::new(AsmPrecond::new(a, (n / 400).max(2), 8))
    } else {
        Box::new(JacobiPrecond::from_matrix(a))
    }
}

/// The assembled system contains a NaN/Inf (bad boundary data, degenerate
/// SBM map): every Krylov iterate would be poisoned.
fn system_is_poisoned(a: &CsrMatrix, rhs: &[f64]) -> bool {
    !rhs.iter().all(|v| v.is_finite()) || !a.vals.iter().all(|v| v.is_finite())
}

/// Assembles and solves `−Δu = f` on the carved mesh.
pub fn solve_poisson<const DIM: usize>(
    mesh: &Mesh<DIM>,
    domain: &dyn Subdomain<DIM>,
    prob: &PoissonProblem<DIM>,
) -> PoissonSolution {
    let n = mesh.num_dofs();
    let (a, rhs) = assemble_poisson_system(mesh, prob);

    // Divergence guard: bail out with a structured `diverged` report
    // instead of burning 50k iterations on NaN.
    if system_is_poisoned(&a, &rhs) {
        return PoissonSolution {
            u: vec![0.0; n],
            krylov: KrylovResult::divergence(0, f64::NAN),
            nnz: a.nnz(),
        };
    }

    // The paper's solver configuration: BiCGStab with additive Schwarz.
    let mut u = vec![0.0; n];
    let obs_krylov = carve_obs::scope("krylov");
    let pre = default_precond(&a);
    let krylov = bicgstab(&a, &rhs, &mut u, &pre.as_ref(), 1e-12, 1e-14, 50_000);
    carve_obs::counter("iterations", krylov.iterations as u64);
    drop(obs_krylov);
    let _ = domain;
    PoissonSolution {
        u,
        krylov,
        nnz: a.nnz(),
    }
}

/// A stronger solver the [`Supervisor`] can escalate to after the Krylov
/// ladder (CG → checkpoint-restarted CG → BiCGStab) has failed.
/// [`crate::multigrid::Multigrid`] implements it by doubling its smoothing
/// sweeps and re-solving with V-cycle-preconditioned CG.
pub trait EscalatedSolver {
    /// Strengthen the solver before the escalated attempt (e.g. tighten
    /// multigrid smoothing). Called exactly once, before `solve_escalated`.
    fn tighten(&mut self);
    /// Solve `A x = b` starting from the supplied iterate.
    fn solve_escalated(&self, b: &[f64], x: &mut [f64], rtol: f64, max_iter: usize)
        -> KrylovResult;
}

/// One rung of the supervisor's ladder, as attempted.
#[derive(Clone, Copy, Debug)]
pub struct AttemptReport {
    /// `"cg"`, `"cg_restart"`, `"bicgstab"`, or `"mg_tightened"`.
    pub stage: &'static str,
    pub iterations: usize,
    pub residual: f64,
    pub last_finite_residual: Option<f64>,
    pub converged: bool,
    pub diverged: bool,
}

impl AttemptReport {
    fn from_result(stage: &'static str, k: &KrylovResult) -> Self {
        AttemptReport {
            stage,
            iterations: k.iterations,
            residual: k.residual,
            last_finite_residual: k.last_finite_residual,
            converged: k.converged,
            diverged: k.diverged,
        }
    }
}

/// Per-rank state at the point the supervisor gave up. A sequential solve
/// reports a single rank 0; distributed callers push one entry per rank.
#[derive(Clone, Debug)]
pub struct RankDiagnostic {
    pub rank: usize,
    /// Final residual norm on this rank (may be non-finite for a diverged
    /// iteration — `last_finite_residual` keeps the usable magnitude).
    pub residual: f64,
    pub last_finite_residual: Option<f64>,
    /// Iteration of the newest checkpoint this rank holds, if any.
    pub checkpoint_iteration: Option<usize>,
}

/// Structured failure report: every rung of the escalation ladder that was
/// attempted, plus per-rank diagnostics for postmortems.
#[derive(Clone, Debug)]
pub struct SolveFailed {
    pub attempts: Vec<AttemptReport>,
    pub ranks: Vec<RankDiagnostic>,
}

impl fmt::Display for SolveFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "solve failed after {} attempt(s):", self.attempts.len())?;
        for a in &self.attempts {
            writeln!(
                f,
                "  {:>12}: {} iteration(s), residual {:e}{}",
                a.stage,
                a.iterations,
                a.residual,
                if a.diverged { " (diverged)" } else { "" }
            )?;
        }
        for r in &self.ranks {
            writeln!(
                f,
                "  rank {}: residual {:e}, last finite {:?}, checkpoint at {:?}",
                r.rank, r.residual, r.last_finite_residual, r.checkpoint_iteration
            )?;
        }
        Ok(())
    }
}

/// A recovered (or first-try) solve, with the trail of attempts.
#[derive(Debug)]
pub struct SupervisedSolve {
    pub krylov: KrylovResult,
    pub attempts: Vec<AttemptReport>,
    /// `true` when any rung past the first was needed.
    pub recovered: bool,
}

/// The solve supervisor: wraps a Krylov solve in a checkpointed escalation
/// policy. The ladder, climbed only as far as needed:
///
/// 1. **`cg`** — preconditioned CG with periodic [`SolveCheckpoint`]
///    snapshots (`CARVE_CKPT_EVERY` cadence by default).
/// 2. **`cg_restart`** — restore the iterate from the newest checkpoint and
///    restart CG with a fresh Krylov space (recovers from stalls and from
///    divergence whose damage postdates the snapshot).
/// 3. **`bicgstab`** — switch methods from the restored iterate: handles
///    the mildly-nonsymmetric systems (SBM face terms) CG cannot.
/// 4. **`mg_tightened`** — if an [`EscalatedSolver`] is supplied, tighten
///    its smoothing and re-solve from the restored iterate.
///
/// Every recovery action is scoped under the `recovery/{retry, escalate,
/// restore}` observability phases. A ladder that runs out of rungs returns
/// a [`SolveFailed`] report rather than a panic.
#[derive(Clone, Debug)]
pub struct Supervisor {
    pub rtol: f64,
    pub atol: f64,
    /// Per-rung iteration budget.
    pub max_iter: usize,
    /// Checkpoint cadence in iterations.
    pub ckpt_every: usize,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            rtol: 1e-12,
            atol: 1e-14,
            max_iter: 50_000,
            ckpt_every: default_ckpt_every(),
        }
    }
}

/// Restores `x` from the newest checkpoint (or to zero when no snapshot was
/// taken yet — a diverged iterate must not leak into the next rung).
fn restore_iterate(x: &mut [f64], latest: Option<&SolveCheckpoint>) -> Option<usize> {
    let _restore = carve_obs::scope("restore");
    match latest {
        Some(snap) => {
            carve_obs::counter("checkpoint_restores", 1);
            x.copy_from_slice(&snap.x);
            Some(snap.iteration)
        }
        None => {
            x.iter_mut().for_each(|v| *v = 0.0);
            None
        }
    }
}

impl Supervisor {
    /// Climbs the escalation ladder for `A x = b`. On success returns the
    /// final Krylov report plus the attempt trail; when every rung fails,
    /// returns the structured [`SolveFailed`] report (boxed: it carries the
    /// full trail).
    pub fn solve(
        &self,
        op: &dyn LinOp,
        b: &[f64],
        x: &mut [f64],
        pre: &dyn Precond,
        mut escalate: Option<&mut dyn EscalatedSolver>,
    ) -> Result<SupervisedSolve, Box<SolveFailed>> {
        let opw = (op.size(), |xv: &[f64], yv: &mut [f64]| op.apply(xv, yv));
        let mut attempts = Vec::new();

        // Rung 1: checkpointed CG.
        let mut ck = Checkpointer::new(self.ckpt_every);
        let k = cg_checkpointed(
            &opw,
            b,
            x,
            &pre,
            self.rtol,
            self.atol,
            self.max_iter,
            &LocalReduce,
            &mut ck,
        );
        attempts.push(AttemptReport::from_result("cg", &k));
        if k.converged {
            return Ok(SupervisedSolve {
                krylov: k,
                attempts,
                recovered: false,
            });
        }

        let _recovery = carve_obs::scope("recovery");

        // Rung 2: restart CG from the newest checkpoint.
        let k = {
            restore_iterate(x, ck.latest());
            if let Some(snap) = ck.latest().cloned() {
                ck = Checkpointer::new(self.ckpt_every).resume_from(&snap);
            }
            let _retry = carve_obs::scope("retry");
            carve_obs::counter("solve_restarts", 1);
            cg_checkpointed(
                &opw,
                b,
                x,
                &pre,
                self.rtol,
                self.atol,
                self.max_iter,
                &LocalReduce,
                &mut ck,
            )
        };
        attempts.push(AttemptReport::from_result("cg_restart", &k));
        if k.converged {
            return Ok(SupervisedSolve {
                krylov: k,
                attempts,
                recovered: true,
            });
        }

        // Rung 3: change methods — BiCGStab from the restored iterate.
        let k = {
            restore_iterate(x, ck.latest());
            if let Some(snap) = ck.latest().cloned() {
                ck = Checkpointer::new(self.ckpt_every).resume_from(&snap);
            }
            let _esc = carve_obs::scope("escalate");
            carve_obs::counter("solve_escalations", 1);
            bicgstab_checkpointed(
                &opw,
                b,
                x,
                &pre,
                self.rtol,
                self.atol,
                self.max_iter,
                &LocalReduce,
                &mut ck,
            )
        };
        attempts.push(AttemptReport::from_result("bicgstab", &k));
        if k.converged {
            return Ok(SupervisedSolve {
                krylov: k,
                attempts,
                recovered: true,
            });
        }

        // Rung 4: tightened multigrid, when the caller supplied one.
        if let Some(mg) = escalate.take() {
            let k = {
                restore_iterate(x, ck.latest());
                let _esc = carve_obs::scope("escalate");
                carve_obs::counter("solve_escalations", 1);
                mg.tighten();
                mg.solve_escalated(b, x, self.rtol, self.max_iter)
            };
            attempts.push(AttemptReport::from_result("mg_tightened", &k));
            if k.converged {
                return Ok(SupervisedSolve {
                    krylov: k,
                    attempts,
                    recovered: true,
                });
            }
        }

        let last = attempts.last().expect("at least one attempt");
        Err(Box::new(SolveFailed {
            ranks: vec![RankDiagnostic {
                rank: 0,
                residual: last.residual,
                last_finite_residual: last.last_finite_residual,
                checkpoint_iteration: ck.latest().map(|s| s.iteration),
            }],
            attempts,
        }))
    }
}

/// A [`solve_poisson`] that climbs the supervisor's escalation ladder
/// instead of trusting a single Krylov configuration.
pub fn solve_poisson_supervised<const DIM: usize>(
    mesh: &Mesh<DIM>,
    domain: &dyn Subdomain<DIM>,
    prob: &PoissonProblem<DIM>,
    sup: &Supervisor,
) -> Result<(PoissonSolution, SupervisedSolve), Box<SolveFailed>> {
    let n = mesh.num_dofs();
    let (a, rhs) = assemble_poisson_system(mesh, prob);
    if system_is_poisoned(&a, &rhs) {
        let k = KrylovResult::divergence(0, f64::NAN);
        return Err(Box::new(SolveFailed {
            attempts: vec![AttemptReport::from_result("assembly", &k)],
            ranks: vec![RankDiagnostic {
                rank: 0,
                residual: f64::NAN,
                last_finite_residual: None,
                checkpoint_iteration: None,
            }],
        }));
    }
    let mut u = vec![0.0; n];
    let pre = default_precond(&a);
    let obs_krylov = carve_obs::scope("krylov");
    let out = sup.solve(&a, &rhs, &mut u, pre.as_ref(), None)?;
    carve_obs::counter("iterations", out.krylov.iterations as u64);
    drop(obs_krylov);
    let _ = domain;
    Ok((
        PoissonSolution {
            u,
            krylov: out.krylov,
            nnz: a.nnz(),
        },
        out,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::l2_linf_error;
    use carve_geom::{FullDomain, RetainSolid, Solid, Sphere};
    use carve_sfc::Curve;
    use std::f64::consts::PI;

    #[test]
    fn manufactured_solution_unit_square_converges_second_order() {
        let exact = |x: &[f64; 2]| (PI * x[0]).sin() * (PI * x[1]).sin();
        let f = move |x: &[f64; 2]| 2.0 * PI * PI * (PI * x[0]).sin() * (PI * x[1]).sin();
        let zero = |_: &[f64; 2]| 0.0;
        let mut errs = Vec::new();
        for l in [3u8, 4, 5] {
            let mesh = Mesh::<2>::build(&FullDomain, Curve::Morton, l, l, 1);
            let prob = PoissonProblem {
                scale: 1.0,
                f: &f,
                dirichlet: &zero,
                closest_boundary: None,
                strong_cube_bc: true,
                bc: BcMode::Naive,
            };
            let sol = solve_poisson(&mesh, &FullDomain, &prob);
            assert!(sol.krylov.converged, "{:?}", sol.krylov);
            let norms = l2_linf_error(&mesh, &FullDomain, &sol.u, &exact, 1.0);
            errs.push(norms.l2);
        }
        let rate = (errs[1] / errs[2]).log2();
        assert!(rate > 1.8 && rate < 2.3, "rate {rate}, errs {errs:?}");
    }

    #[test]
    fn quadratic_elements_converge_third_order_l2() {
        let exact = |x: &[f64; 2]| (PI * x[0]).sin() * (PI * x[1]).sin();
        let f = move |x: &[f64; 2]| 2.0 * PI * PI * (PI * x[0]).sin() * (PI * x[1]).sin();
        let zero = |_: &[f64; 2]| 0.0;
        let mut errs = Vec::new();
        for l in [2u8, 3, 4] {
            let mesh = Mesh::<2>::build(&FullDomain, Curve::Morton, l, l, 2);
            let prob = PoissonProblem {
                scale: 1.0,
                f: &f,
                dirichlet: &zero,
                closest_boundary: None,
                strong_cube_bc: true,
                bc: BcMode::Naive,
            };
            let sol = solve_poisson(&mesh, &FullDomain, &prob);
            let norms = l2_linf_error(&mesh, &FullDomain, &sol.u, &exact, 1.0);
            errs.push(norms.l2);
        }
        let rate = (errs[1] / errs[2]).log2();
        assert!(rate > 2.7 && rate < 3.4, "rate {rate}, errs {errs:?}");
    }

    /// The Fig. 6 disk problem: −Δu = 1 on the disk R=0.5 at (0.5,0.5),
    /// u=0 on the circle; exact u = (R² − r²)/4.
    fn disk_errors(bc: BcMode, levels: &[u8]) -> Vec<f64> {
        let disk = Sphere::<2>::new([0.5, 0.5], 0.5);
        let domain = RetainSolid::new(disk);
        let one = |_: &[f64; 2]| 1.0;
        let zero = |_: &[f64; 2]| 0.0;
        let closest = move |x: &[f64; 2]| disk.closest_boundary_point(x);
        let exact = |x: &[f64; 2]| {
            let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
            0.25 * (0.25 - r2)
        };
        let mut out = Vec::new();
        for &l in levels {
            let mesh = Mesh::build(&domain, Curve::Morton, l, l, 1);
            let prob = PoissonProblem {
                scale: 1.0,
                f: &one,
                dirichlet: &zero,
                closest_boundary: Some(&closest),
                strong_cube_bc: false,
                bc,
            };
            let sol = solve_poisson(&mesh, &domain, &prob);
            assert!(sol.krylov.converged, "{:?}", sol.krylov);
            let norms = l2_linf_error(&mesh, &domain, &sol.u, &exact, 1.0);
            out.push(norms.l2);
        }
        out
    }

    #[test]
    fn nan_boundary_data_reports_divergence_not_hang() {
        // NaN Dirichlet data poisons the right-hand side; the solver must
        // return a structured diverged report instead of iterating on NaN.
        let f = |_: &[f64; 2]| 1.0;
        let bad = |_: &[f64; 2]| f64::NAN;
        let mesh = Mesh::<2>::build(&FullDomain, Curve::Morton, 3, 3, 1);
        let prob = PoissonProblem {
            scale: 1.0,
            f: &f,
            dirichlet: &bad,
            closest_boundary: None,
            strong_cube_bc: true,
            bc: BcMode::Naive,
        };
        let sol = solve_poisson(&mesh, &FullDomain, &prob);
        assert!(sol.krylov.diverged, "{:?}", sol.krylov);
        assert!(!sol.krylov.converged);
        assert_eq!(sol.krylov.iterations, 0, "guard must fire before iterating");
    }

    /// 1-D Laplacian as an assembled SPD test matrix.
    fn laplace_1d(n: usize) -> CsrMatrix {
        let mut coo = CooBuilder::with_capacity(n, 3 * n);
        for i in 0..n {
            coo.add(i, i, 2.0);
            if i > 0 {
                coo.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.add(i, i + 1, -1.0);
            }
        }
        coo.build()
    }

    #[test]
    fn supervisor_converges_first_try_on_easy_system() {
        let a = laplace_1d(40);
        let b = vec![1.0; 40];
        let mut x = vec![0.0; 40];
        let sup = Supervisor::default();
        let out = sup
            .solve(&a, &b, &mut x, &carve_la::IdentityPrecond, None)
            .expect("easy SPD system");
        assert!(out.krylov.converged);
        assert!(!out.recovered);
        assert_eq!(out.attempts.len(), 1);
        assert_eq!(out.attempts[0].stage, "cg");
    }

    #[test]
    fn supervisor_ladder_reaches_escalated_solver_and_recovers() {
        // An iteration budget far too small for unpreconditioned CG on a
        // stiff system forces the whole Krylov ladder to fail; the supplied
        // escalated solver (a stand-in for tightened multigrid that solves
        // directly) then recovers the solve.
        struct DirectSolve {
            a: CsrMatrix,
            tightened: bool,
        }
        impl EscalatedSolver for DirectSolve {
            fn tighten(&mut self) {
                self.tightened = true;
            }
            fn solve_escalated(
                &self,
                b: &[f64],
                x: &mut [f64],
                rtol: f64,
                max_iter: usize,
            ) -> KrylovResult {
                assert!(self.tightened, "tighten() must precede the attempt");
                // A strong inner solver: plenty of CG iterations.
                carve_la::cg(
                    &self.a,
                    b,
                    x,
                    &JacobiPrecond::from_matrix(&self.a),
                    rtol,
                    1e-14,
                    max_iter * 1000,
                )
            }
        }

        let n = 120;
        let a = laplace_1d(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut x = vec![0.0; n];
        let sup = Supervisor {
            rtol: 1e-12,
            atol: 1e-14,
            max_iter: 4,
            ckpt_every: 2,
        };
        let mut mg = DirectSolve {
            a: laplace_1d(n),
            tightened: false,
        };
        let out = sup
            .solve(&a, &b, &mut x, &carve_la::IdentityPrecond, Some(&mut mg))
            .expect("escalated solver must recover");
        assert!(out.recovered);
        assert!(out.krylov.converged);
        let stages: Vec<_> = out.attempts.iter().map(|s| s.stage).collect();
        assert_eq!(stages, ["cg", "cg_restart", "bicgstab", "mg_tightened"]);
        // Every Krylov rung genuinely failed before escalation.
        for a in &out.attempts[..3] {
            assert!(!a.converged, "{a:?}");
        }
        // The answer is right: residual check against the operator.
        let mut ax = vec![0.0; n];
        a.apply(&x, &mut ax);
        let res: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum();
        assert!(res.sqrt() < 1e-8, "residual {}", res.sqrt());
    }

    #[test]
    fn supervisor_reports_structured_failure_with_rank_diagnostics() {
        let n = 120;
        let a = laplace_1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let sup = Supervisor {
            rtol: 1e-12,
            atol: 1e-14,
            max_iter: 4,
            ckpt_every: 2,
        };
        let err = sup
            .solve(&a, &b, &mut x, &carve_la::IdentityPrecond, None)
            .expect_err("budget too small — must fail");
        let stages: Vec<_> = err.attempts.iter().map(|s| s.stage).collect();
        assert_eq!(stages, ["cg", "cg_restart", "bicgstab"]);
        assert_eq!(err.ranks.len(), 1);
        let diag = &err.ranks[0];
        assert_eq!(diag.rank, 0);
        assert!(diag.residual.is_finite());
        assert_eq!(diag.last_finite_residual, Some(diag.residual));
        // Checkpoints were taken (cadence 2 < budget 4) and reported.
        let ckpt = diag.checkpoint_iteration.expect("checkpoint taken");
        assert!(
            ckpt > 0 && ckpt.is_multiple_of(2),
            "cadence-aligned, got {ckpt}"
        );
        // The Display form is a usable postmortem.
        let text = err.to_string();
        assert!(
            text.contains("cg_restart") && text.contains("rank 0"),
            "{text}"
        );
    }

    #[test]
    fn supervisor_escalates_to_real_tightened_multigrid() {
        // Unpreconditioned CG with a starved iteration budget cannot solve
        // the level-5 Poisson system; tightened MG-PCG (h-independent)
        // converges well inside the same budget.
        use crate::multigrid::Multigrid;
        use carve_geom::FullDomain;

        let constrain = |fl: carve_core::NodeFlags| fl.is_any_boundary();
        let mg = Multigrid::<2>::new(&FullDomain, 5, 5, 2, 1, 1.0, &constrain);
        let (nu_pre0, nu_post0) = (mg.nu_pre, mg.nu_post);
        let n = mg.finest().num_dofs();
        let b: Vec<f64> = (0..n)
            .map(|i| {
                if mg.finest().nodes.flags[i].is_any_boundary() {
                    0.0
                } else {
                    (i as f64 * 0.23).sin()
                }
            })
            .collect();
        let op = {
            struct FinestOp<'a>(&'a Multigrid<2>, usize);
            impl carve_la::LinOp for FinestOp<'_> {
                fn size(&self) -> usize {
                    self.1
                }
                fn apply(&self, x: &[f64], y: &mut [f64]) {
                    self.0.apply_finest(x, y);
                }
            }
            FinestOp(&mg, n)
        };
        let sup = Supervisor {
            rtol: 1e-10,
            atol: 1e-14,
            max_iter: 30,
            ckpt_every: 10,
        };
        let mut x = vec![0.0; n];
        // Safety: `op` borrows `mg` immutably while the ladder also needs
        // `&mut mg` — clone the operator's data path instead: multigrid's
        // finest apply is reentrant, but the borrow checker can't see that.
        // So run the ladder against a second, identical hierarchy.
        let mut mg2 = Multigrid::<2>::new(&FullDomain, 5, 5, 2, 1, 1.0, &constrain);
        let out = sup
            .solve(&op, &b, &mut x, &carve_la::IdentityPrecond, Some(&mut mg2))
            .expect("tightened multigrid must recover");
        assert!(out.recovered);
        assert_eq!(out.attempts.last().unwrap().stage, "mg_tightened");
        assert!(out.krylov.converged, "{:?}", out.krylov);
        // Smoothing was actually tightened.
        assert_eq!(mg2.nu_pre, 2 * nu_pre0);
        assert_eq!(mg2.nu_post, 2 * nu_post0);
        // And the recovered answer satisfies the finest-level system.
        let mut ax = vec![0.0; n];
        mg.apply_finest(&x, &mut ax);
        let rn: f64 = ax
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(rn <= 1e-8 * bn, "residual {rn} vs rhs {bn}");
    }

    #[test]
    fn supervised_poisson_matches_plain_solver() {
        let f = |x: &[f64; 2]| 2.0 * PI * PI * (PI * x[0]).sin() * (PI * x[1]).sin();
        let zero = |_: &[f64; 2]| 0.0;
        let mesh = Mesh::<2>::build(&FullDomain, Curve::Morton, 4, 4, 1);
        let prob = PoissonProblem {
            scale: 1.0,
            f: &f,
            dirichlet: &zero,
            closest_boundary: None,
            strong_cube_bc: true,
            bc: BcMode::Naive,
        };
        let plain = solve_poisson(&mesh, &FullDomain, &prob);
        let (sup_sol, trail) =
            solve_poisson_supervised(&mesh, &FullDomain, &prob, &Supervisor::default())
                .expect("supervised solve");
        assert!(sup_sol.krylov.converged);
        assert!(!trail.recovered, "SPD system must not need the ladder");
        assert_eq!(sup_sol.nnz, plain.nnz);
        let scale = plain.u.iter().map(|v| v.abs()).fold(1.0f64, f64::max);
        for (a, b) in sup_sol.u.iter().zip(&plain.u) {
            assert!((a - b).abs() < 1e-9 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn disk_naive_bc_is_first_order() {
        let errs = disk_errors(BcMode::Naive, &[4, 5, 6]);
        let rate = (errs[1] / errs[2]).log2();
        assert!(
            rate < 1.6,
            "naive should be ~1st order, got {rate} ({errs:?})"
        );
    }

    #[test]
    fn disk_sbm_recovers_second_order() {
        let errs = disk_errors(BcMode::Sbm(SbmParams::default()), &[4, 5, 6]);
        let rate = (errs[1] / errs[2]).log2();
        assert!(
            rate > 1.6,
            "SBM should be ~2nd order, got {rate} ({errs:?})"
        );
        // And SBM beats naive in absolute error at the finest level.
        let naive = disk_errors(BcMode::Naive, &[6]);
        assert!(errs[2] < naive[0], "sbm {} vs naive {}", errs[2], naive[0]);
    }
}
