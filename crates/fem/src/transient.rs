//! The adaptive time stepper: backward-Euler heat (mass + dt·stiffness) on
//! a dynamically adapting distributed mesh.
//!
//! Each step solves `(M + dt·K) uⁿ⁺¹ = M uⁿ` with homogeneous Dirichlet
//! conditions on the carved and cube boundaries, via distributed CG over
//! the overlapped traversal MATVEC. Every `adapt_every` steps the
//! energy-seminorm estimator marks elements, [`DistMesh::adapt`] carries
//! the mesh through refine → rebalance → repartition-or-patch, and the
//! field is transferred onto the new mesh by FE interpolation from the old
//! one (prolongation onto refined children, restriction-by-interpolation
//! onto merged parents).
//!
//! **Field transfer across ranks.** Each new node is first evaluated
//! against the *old* mesh's locally-owned leaves (the interpolation recipe
//! of `build_transfer`, which handles hanging slots). Nodes whose old
//! covering leaf lives on another rank — migration and refinement move the
//! partition surface — ride one `all_to_allv` round to the candidate
//! owners (the splitter bins of the node's up-to-`2^DIM` adjacent cells
//! under the *old* splitters); the lowest-ranked rank that can evaluate
//! wins, deterministically. A node not evaluable anywhere lies in region
//! the old mesh did not cover (coarsening near the carved boundary can
//! recover area the finer staircase had pruned) and starts at zero.
//!
//! Every operation is either rank-sequential arithmetic or a deterministic
//! collective, so the recorded [`AdaptTrace`] — element counts, DOF
//! counts, and order-fixed FNV hashes of the global leaf set and solution
//! bits — is bitwise identical across `CARVE_PAR_THREADS` settings and
//! chaos schedules. The CI adapt-determinism stage diffs exactly this
//! serialized trace.

use crate::estimator::{energy_error_indicators, mark_max_strategy};
use crate::fieldeval::{candidate_bins, eval_field_lattice, FieldView, NudgePolicy};
use crate::poisson::{ElementCache, HeatKernel, MassKernel};
use carve_comm::{Comm, ReduceOp};
use carve_core::{AdaptParams, DistMesh, GhostState, NodeSet, TraversalWorkspace};
use carve_geom::Subdomain;
use carve_io::{AdaptCycleRecord, AdaptTrace};
use carve_la::{cg_with, IdentityPrecond};
use carve_sfc::{Curve, Octant};
use std::cell::RefCell;
use std::ops::Range;

/// Configuration of an adaptive transient run.
#[derive(Clone, Copy, Debug)]
pub struct TransientConfig {
    pub curve: Curve,
    /// Polynomial order (1 or 2, like the rest of the stack).
    pub order: u64,
    /// Initial mesh: uniform base + boundary refinement.
    pub base_level: u8,
    pub boundary_level: u8,
    /// Backward-Euler step size.
    pub dt: f64,
    /// Number of time steps.
    pub steps: u64,
    /// Adapt every this many steps (0 disables adaptation).
    pub adapt_every: u64,
    /// Maximum-strategy thresholds (fractions of the global max indicator).
    pub theta_refine: f64,
    pub theta_coarsen: f64,
    /// Level corridor for the adapt cycle.
    pub max_level: u8,
    pub min_level: u8,
    /// Repartition when `load_imbalance` exceeds this.
    pub repart_tol: f64,
    /// Physical side length of the unit cube.
    pub scale: f64,
    pub cg_rtol: f64,
    pub cg_maxit: usize,
    /// Traversal threads; 0 reads `CARVE_PAR_THREADS` from the environment.
    pub threads: usize,
}

impl Default for TransientConfig {
    fn default() -> Self {
        TransientConfig {
            curve: Curve::Hilbert,
            order: 1,
            base_level: 3,
            boundary_level: 5,
            dt: 1e-3,
            steps: 6,
            adapt_every: 2,
            theta_refine: 0.3,
            theta_coarsen: 0.05,
            max_level: 7,
            min_level: 2,
            repart_tol: 1.25,
            scale: 1.0,
            cg_rtol: 1e-10,
            cg_maxit: 2000,
            threads: 0,
        }
    }
}

/// What a transient run produced on this rank.
pub struct TransientResult {
    /// The per-cycle adapt record (identical on every rank).
    pub trace: AdaptTrace,
    pub steps_done: u64,
    /// Global DOF count of the final mesh.
    pub dofs_final: u64,
    /// Final nodal field on this rank's mesh (ghost-consistent).
    pub u: Vec<f64>,
}

/// The adaptive time stepper of the dynamic-AMR loop: a configured
/// transient driver. Thin, reusable handle over [`run_transient`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AdaptiveTimeStepper {
    pub cfg: TransientConfig,
}

impl AdaptiveTimeStepper {
    pub fn new(cfg: TransientConfig) -> Self {
        AdaptiveTimeStepper { cfg }
    }

    /// Runs the configured transient problem on `domain` from the initial
    /// condition `init` (unit-cube coordinates).
    pub fn run<const DIM: usize>(
        &self,
        comm: &Comm,
        domain: &dyn Subdomain<DIM>,
        init: &dyn Fn(&[f64; DIM]) -> f64,
    ) -> TransientResult {
        run_transient(comm, domain, &self.cfg, init)
    }
}

/// Snapshot of the mesh a field lived on, kept alive across an adapt step
/// so the field can be interpolated onto the successor mesh.
struct OldMesh<const DIM: usize> {
    curve: Curve,
    elems: Vec<Octant<DIM>>,
    owned: Range<usize>,
    nodes: NodeSet<DIM>,
    splitters: Vec<Option<Octant<DIM>>>,
    u: Vec<f64>,
}

impl<const DIM: usize> OldMesh<DIM> {
    fn view(&self) -> FieldView<'_, DIM> {
        FieldView {
            curve: self.curve,
            elems: &self.elems,
            owned: self.owned.clone(),
            nodes: &self.nodes,
            u: &self.u,
        }
    }
}

/// Evaluates the old FE field at nodal-lattice coordinate `coord`, using
/// only this rank's *owned* old leaves (their stencil closures are fully
/// resolvable in the local node set). `None`: the covering leaf is remote
/// or the point was not covered at all. Nodal lattice coordinates are exact
/// in `f64`, so routing through [`eval_field_lattice`] is bitwise identical
/// to the historical integer path (the adapt-determinism stage pins this).
fn eval_old<const DIM: usize>(old: &OldMesh<DIM>, coord: &[u64; DIM]) -> Option<f64> {
    let mut latt = [0.0f64; DIM];
    for k in 0..DIM {
        latt[k] = coord[k] as f64;
    }
    eval_field_lattice(&old.view(), &latt, NudgePolicy::AnyAxis)
}

/// Interpolates the old field onto the new mesh's nodes: local evaluation
/// where the old covering leaf is owned here, one collective fallback round
/// for partition-surface nodes. Deterministic: candidate ranks are probed
/// in ascending order and the lowest rank that evaluates wins.
fn transfer_field<const DIM: usize>(
    comm: &Comm,
    old: &OldMesh<DIM>,
    dm: &DistMesh<DIM>,
) -> Vec<f64> {
    let pnum = comm.size();
    let my = comm.rank();
    let p = dm.order;
    let mut u = vec![0.0; dm.nodes.len()];
    let mut unresolved: Vec<usize> = Vec::new();
    for (i, coord) in dm.nodes.coords.iter().enumerate() {
        match eval_old(old, coord) {
            Some(v) => u[i] = v,
            None => unresolved.push(i),
        }
    }
    // Fallback round: ask the ranks whose old splitter intervals contain
    // any cell adjacent to the node. The owner of the old covering leaf is
    // always among them (a leaf's descendant keys bin to its owner).
    let mut requests: Vec<Vec<[u64; DIM]>> = (0..pnum).map(|_| Vec::new()).collect();
    let mut node_bins: Vec<Vec<usize>> = Vec::with_capacity(unresolved.len());
    for &i in &unresolved {
        let coord = dm.nodes.coords[i];
        let mut latt = [0.0f64; DIM];
        for k in 0..DIM {
            latt[k] = coord[k] as f64;
        }
        let bins = candidate_bins(&old.splitters, old.curve, p, &latt, NudgePolicy::AnyAxis);
        for &b in &bins {
            if b != my {
                requests[b].push(coord);
            }
        }
        node_bins.push(bins);
    }
    let incoming = comm.all_to_allv(requests);
    let replies: Vec<Vec<(bool, f64)>> = incoming
        .iter()
        .map(|cs| {
            cs.iter()
                .map(|c| match eval_old(old, c) {
                    Some(v) => (true, v),
                    None => (false, 0.0),
                })
                .collect()
        })
        .collect();
    let reply_in = comm.all_to_allv(replies);
    let mut cursors = vec![0usize; pnum];
    for (&i, bins) in unresolved.iter().zip(&node_bins) {
        let mut val: Option<f64> = None;
        for &b in bins {
            if b == my {
                continue; // local evaluation already failed
            }
            let (found, v) = reply_in[b][cursors[b]];
            cursors[b] += 1;
            if val.is_none() && found {
                val = Some(v);
            }
        }
        // No rank covers the point: it lies in area the old mesh had
        // pruned (coarsening recovered it). Start from zero there.
        u[i] = val.unwrap_or(0.0);
    }
    u
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Folds per-rank hashes in rank order into one global hash (collective).
fn fold_ranks(comm: &Comm, local: u64) -> u64 {
    comm.all_gather(local).into_iter().fold(FNV_OFFSET, fnv)
}

/// Order-fixed hash of the global leaf set (owned anchors + levels, folded
/// in rank order).
fn global_leaf_hash<const DIM: usize>(comm: &Comm, dm: &DistMesh<DIM>) -> u64 {
    let mut h = FNV_OFFSET;
    for e in &dm.elems[dm.owned.clone()] {
        for a in e.anchor {
            h = fnv(h, a as u64);
        }
        h = fnv(h, e.level as u64);
    }
    fold_ranks(comm, h)
}

/// Order-fixed hash of the solution: every owned node's coordinate and the
/// exact bit pattern of its value, folded in rank order.
fn global_field_hash<const DIM: usize>(comm: &Comm, dm: &DistMesh<DIM>, u: &[f64]) -> u64 {
    let my = comm.rank() as u32;
    let mut h = FNV_OFFSET;
    for (i, c) in dm.nodes.coords.iter().enumerate() {
        if dm.owner[i] != my {
            continue;
        }
        for &x in c {
            h = fnv(h, x);
        }
        h = fnv(h, u[i].to_bits());
    }
    fold_ranks(comm, h)
}

/// Runs the adaptive transient heat problem. `init` is the initial
/// condition in unit-cube coordinates; homogeneous Dirichlet values are
/// enforced on all carved/cube boundary nodes.
pub fn run_transient<const DIM: usize>(
    comm: &Comm,
    domain: &dyn Subdomain<DIM>,
    cfg: &TransientConfig,
    init: &dyn Fn(&[f64; DIM]) -> f64,
) -> TransientResult {
    let p = cfg.order as usize;
    let mut dm = DistMesh::<DIM>::build(
        comm,
        domain,
        cfg.curve,
        cfg.base_level,
        cfg.boundary_level,
        cfg.order,
    );
    let ws = RefCell::new(if cfg.threads == 0 {
        TraversalWorkspace::new()
    } else {
        TraversalWorkspace::with_threads(cfg.threads)
    });
    let mut cache = ElementCache::<DIM>::new(p);
    let params = AdaptParams {
        max_level: cfg.max_level,
        min_level: cfg.min_level,
        repart_tol: cfg.repart_tol,
    };

    // Backward-Euler operator (M + dt·K) and mass-RHS kernels, built per
    // worker thread by the parallel traversal. The panel-capable kernel
    // structs reproduce the old inline closures bit for bit (the fused
    // row-dot op order and per-level scales are identical) while letting
    // same-level leaf runs flow through the batched SoA path.
    let dt = cfg.dt;
    let scale = cfg.scale;
    let heat_factory = move || HeatKernel::<DIM>::new(p, scale, dt);
    let mass_factory = move || MassKernel::<DIM>::new(p, scale);

    let constrained_of = |dm: &DistMesh<DIM>| -> Vec<bool> {
        dm.nodes.flags.iter().map(|f| f.is_any_boundary()).collect()
    };
    let mut constrained = constrained_of(&dm);
    let mut u: Vec<f64> = (0..dm.nodes.len())
        .map(|i| {
            if constrained[i] {
                0.0
            } else {
                init(&dm.nodes.unit_coords(i))
            }
        })
        .collect();

    let mut trace = AdaptTrace {
        ranks: comm.size() as u64,
        cycles: Vec::new(),
    };
    for step in 1..=cfg.steps {
        // --- One backward-Euler step: (M + dt·K) u_new = M u_old ---------
        let n = dm.nodes.len();
        let mut b = vec![0.0; n];
        dm.matvec_par(
            comm,
            &u,
            &mut b,
            &mut ws.borrow_mut(),
            GhostState::OwnedOnly,
            &mass_factory,
        );
        for (bi, &c) in b.iter_mut().zip(&constrained) {
            if c {
                *bi = 0.0; // homogeneous Dirichlet rows: identity, rhs 0
            }
        }
        let scratch = RefCell::new(vec![0.0; n]);
        let op = (n, |x: &[f64], y: &mut [f64]| {
            let mut xm = scratch.borrow_mut();
            xm.copy_from_slice(x);
            for (v, &c) in xm.iter_mut().zip(&constrained) {
                if c {
                    *v = 0.0;
                }
            }
            dm.matvec_par(
                comm,
                &xm,
                y,
                &mut ws.borrow_mut(),
                GhostState::OwnedOnly,
                &heat_factory,
            );
            for ((yi, &xi), &c) in y.iter_mut().zip(x).zip(&constrained) {
                if c {
                    *yi = xi;
                }
            }
        });
        let rd = dm.reducer(comm);
        let res = cg_with(
            &op,
            &b,
            &mut u,
            &IdentityPrecond,
            cfg.cg_rtol,
            0.0,
            cfg.cg_maxit,
            &rd,
        );
        carve_obs::counter("iterations", res.iterations as u64);
        assert!(
            res.converged,
            "transient CG stalled at step {step}: {res:?}"
        );
        dm.ghost_read(comm, &mut u);

        // --- Adapt cycle -------------------------------------------------
        if cfg.adapt_every > 0 && step % cfg.adapt_every == 0 {
            let _adapt = carve_obs::scope("adapt");
            let decisions = {
                let _mark = carve_obs::scope("mark");
                let eta = energy_error_indicators(&dm, &mut cache, &u, cfg.scale);
                mark_max_strategy(comm, &dm, &eta, cfg.theta_refine, cfg.theta_coarsen)
            };
            let old = OldMesh {
                curve: dm.curve,
                elems: dm.elems.clone(),
                owned: dm.owned.clone(),
                nodes: dm.nodes.clone(),
                splitters: comm.all_gather(dm.elems[dm.owned.clone()].first().copied()),
                u: std::mem::take(&mut u),
            };
            let outcome = dm.adapt(comm, domain, &decisions, &params);
            u = transfer_field(comm, &old, &dm);
            constrained = constrained_of(&dm);
            for (v, &c) in u.iter_mut().zip(&constrained) {
                if c {
                    *v = 0.0;
                }
            }
            dm.ghost_read(comm, &mut u);
            let elems_before = comm.all_reduce_u64(outcome.elems_before as u64, ReduceOp::Sum);
            let elems_after = comm.all_reduce_u64(outcome.elems_after as u64, ReduceOp::Sum);
            trace.cycles.push(AdaptCycleRecord {
                step,
                elems_before,
                elems_after,
                refined: outcome.refined,
                coarsened: outcome.coarsened,
                migrated: outcome.migrated,
                dofs: dm.n_global_dofs as u64,
                leaf_hash: global_leaf_hash(comm, &dm),
                field_hash: global_field_hash(comm, &dm, &u),
            });
        }
    }
    TransientResult {
        trace,
        steps_done: cfg.steps,
        dofs_final: dm.n_global_dofs as u64,
        u,
    }
}
