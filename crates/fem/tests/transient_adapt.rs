//! Acceptance tests for the dynamic AMR loop (ISSUE 7): a transient heat
//! run on the carved sphere must complete several adapt cycles exercising
//! both refinement and coarsening, produce a bitwise-identical serialized
//! `carve-adapt-trace-v1` across traversal thread counts and under lossy
//! chaos, and patch ghost/ownership state incrementally (no full rebuild
//! on non-migrating cycles, interior fast-path active).

use carve_comm::{run_spmd, run_spmd_with, FaultPlan, SpmdOptions};
use carve_fem::{run_transient, AdaptiveTimeStepper, TransientConfig};
use carve_geom::{CarvedSolids, Sphere};
use carve_io::adapt_trace_to_json;

fn sphere_domain() -> CarvedSolids<2> {
    CarvedSolids::new(vec![Box::new(Sphere::new([0.5, 0.5], 0.28))])
}

fn canonical_cfg(threads: usize) -> TransientConfig {
    TransientConfig {
        steps: 6,
        adapt_every: 2,
        base_level: 3,
        boundary_level: 5,
        max_level: 6,
        min_level: 2,
        theta_refine: 0.3,
        theta_coarsen: 0.05,
        repart_tol: 2.0,
        dt: 2e-3,
        threads,
        ..TransientConfig::default()
    }
}

/// A hot bump in the lower-left corner, away from the carved sphere: it
/// diffuses outward, so the front refines while its flattened wake — and
/// the over-refined carved boundary far from the bump — coarsens.
fn bump(p: &[f64; 2]) -> f64 {
    let dx = p[0] - 0.18;
    let dy = p[1] - 0.18;
    (-(dx * dx + dy * dy) / 0.008).exp()
}

/// Runs the canonical transient on 3 ranks and returns the serialized
/// adapt trace (asserting every rank serialized the identical text).
fn run_canonical(threads: usize, fault: Option<FaultPlan>) -> String {
    let opts = SpmdOptions {
        fault,
        ..SpmdOptions::default()
    };
    let texts = run_spmd_with(3, opts, move |c| {
        let domain = sphere_domain();
        let res = run_transient(c, &domain, &canonical_cfg(threads), &bump);
        adapt_trace_to_json(&res.trace).to_string_pretty()
    })
    .expect("spmd transient run failed");
    for t in &texts[1..] {
        assert_eq!(*t, texts[0], "ranks disagree on the adapt trace");
    }
    texts.into_iter().next().unwrap()
}

#[test]
fn transient_heat_completes_adapt_cycles_with_refine_and_coarsen() {
    let text = run_canonical(1, None);
    let json = carve_io::Json::parse(&text).expect("trace parses");
    let trace = carve_io::adapt_trace_from_json(&json).expect("trace decodes");
    assert_eq!(trace.ranks, 3);
    assert!(
        trace.cycles.len() >= 3,
        "expected >= 3 adapt cycles, got {}",
        trace.cycles.len()
    );
    let refined: u64 = trace.cycles.iter().map(|c| c.refined).sum();
    let coarsened: u64 = trace.cycles.iter().map(|c| c.coarsened).sum();
    assert!(refined > 0, "no refinement over the whole run:\n{text}");
    assert!(coarsened > 0, "no coarsening over the whole run:\n{text}");
    // Cycles are chained: each starts from the previous element count.
    for w in trace.cycles.windows(2) {
        assert_eq!(w[1].elems_before, w[0].elems_after);
    }
}

#[test]
fn adapt_trace_bitwise_stable_across_threads_and_chaos() {
    let base = run_canonical(1, None);
    let par = run_canonical(4, None);
    assert_eq!(par, base, "trace differs between 1 and 4 threads");
    let lossy = run_canonical(1, Some(FaultPlan::lossy(29)));
    assert_eq!(lossy, base, "trace differs under lossy chaos");
    let par_lossy = run_canonical(4, Some(FaultPlan::lossy(29)));
    assert_eq!(par_lossy, base, "trace differs under threads + chaos");
}

#[test]
fn adapt_patches_exchange_incrementally() {
    let results = run_spmd(3, |c| {
        let _obs = carve_obs::force_enabled();
        let domain = sphere_domain();
        let stepper = AdaptiveTimeStepper::new(canonical_cfg(1));
        let res = stepper.run(c, &domain, &bump);
        (res.trace, carve_obs::thread_snapshot())
    });
    let (trace, _) = &results[0];
    let migrated = trace.cycles.iter().filter(|c| c.migrated).count() as u64;
    assert!(
        trace.cycles.iter().any(|c| !c.migrated),
        "every cycle migrated; the incremental patch path never ran"
    );
    for (_, snap) in &results {
        let patch = snap
            .phases
            .iter()
            .find(|(path, _)| path.contains("adapt/patch"))
            .map(|(_, s)| s);
        assert!(patch.is_some(), "no adapt/patch phase recorded");
        // Non-migrating cycles must go through the in-place patch, never a
        // full reconstruct: full_rebuilds counts exactly the migrations.
        let full_rebuilds: u64 = snap
            .phases
            .values()
            .map(|s| s.counters.get("full_rebuilds").copied().unwrap_or(0))
            .sum();
        assert_eq!(
            full_rebuilds, migrated,
            "full rebuilds ({full_rebuilds}) != migrated cycles ({migrated})"
        );
        // The patch ownership pass must use the interior fast path.
        let interior_fast: u64 = snap
            .phases
            .iter()
            .filter(|(path, _)| path.contains("adapt/patch"))
            .map(|(_, s)| s.counters.get("nodes_interior_fast").copied().unwrap_or(0))
            .sum();
        assert!(interior_fast > 0, "interior ownership fast path unused");
        // Refine/coarsen activity is accounted under the refine phase.
        let refined_ctr: u64 = snap
            .phases
            .values()
            .map(|s| s.counters.get("elements_refined").copied().unwrap_or(0))
            .sum();
        let coarsened_ctr: u64 = snap
            .phases
            .values()
            .map(|s| s.counters.get("elements_coarsened").copied().unwrap_or(0))
            .sum();
        let refined_trace: u64 = trace.cycles.iter().map(|c| c.refined).sum();
        let coarsened_trace: u64 = trace.cycles.iter().map(|c| c.coarsened).sum();
        assert!(refined_ctr <= refined_trace && coarsened_ctr <= coarsened_trace);
    }
    // Per-rank counters sum to the collective totals in the trace.
    let refined_all: u64 = results
        .iter()
        .flat_map(|(_, s)| s.phases.values())
        .map(|s| s.counters.get("elements_refined").copied().unwrap_or(0))
        .sum();
    let refined_trace: u64 = trace.cycles.iter().map(|c| c.refined).sum();
    assert_eq!(refined_all, refined_trace);
}
