//! A bounding-volume hierarchy over triangles: closest-point and ray
//! queries, used for STL In/Out tests (ray parity) and signed distance
//! (Fig. 5 / Appendix B.1).

/// Axis-aligned bounding box in 3D.
#[derive(Clone, Copy, Debug)]
pub struct Aabb {
    pub min: [f64; 3],
    pub max: [f64; 3],
}

impl Aabb {
    pub const EMPTY: Self = Self {
        min: [f64::INFINITY; 3],
        max: [f64::NEG_INFINITY; 3],
    };

    pub fn grow(&mut self, p: &[f64; 3]) {
        for (k, &pk) in p.iter().enumerate() {
            self.min[k] = self.min[k].min(pk);
            self.max[k] = self.max[k].max(pk);
        }
    }

    pub fn merge(&mut self, other: &Aabb) {
        for k in 0..3 {
            self.min[k] = self.min[k].min(other.min[k]);
            self.max[k] = self.max[k].max(other.max[k]);
        }
    }

    pub fn center(&self) -> [f64; 3] {
        [
            0.5 * (self.min[0] + self.max[0]),
            0.5 * (self.min[1] + self.max[1]),
            0.5 * (self.min[2] + self.max[2]),
        ]
    }

    /// Squared distance from a point to the box (0 inside).
    pub fn dist2(&self, p: &[f64; 3]) -> f64 {
        let mut d2 = 0.0;
        for (k, &pk) in p.iter().enumerate() {
            let d = (self.min[k] - pk).max(0.0).max(pk - self.max[k]);
            d2 += d * d;
        }
        d2
    }

    /// Slab test: does the ray `o + t*dir`, `t >= 0`, hit the box?
    pub fn hit_by_ray(&self, o: &[f64; 3], inv_dir: &[f64; 3]) -> bool {
        let mut tmin = 0.0f64;
        let mut tmax = f64::INFINITY;
        for k in 0..3 {
            let t1 = (self.min[k] - o[k]) * inv_dir[k];
            let t2 = (self.max[k] - o[k]) * inv_dir[k];
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            tmin = tmin.max(lo);
            tmax = tmax.min(hi);
            if tmin > tmax {
                return false;
            }
        }
        true
    }
}

enum Node {
    Leaf {
        bounds: Aabb,
        start: usize,
        count: usize,
    },
    Inner {
        bounds: Aabb,
        left: usize,
        right: usize,
    },
}

/// Median-split BVH over a triangle soup.
pub struct Bvh {
    nodes: Vec<Node>,
    /// Triangle indices permuted so leaves reference contiguous ranges.
    pub order: Vec<u32>,
    root: usize,
}

const LEAF_SIZE: usize = 8;

impl Bvh {
    /// Builds over triangle bounding boxes & centroids.
    pub fn build(tri_bounds: &[Aabb]) -> Self {
        let n = tri_bounds.len();
        assert!(n > 0, "empty mesh");
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(2 * n / LEAF_SIZE + 2);
        let root = Self::build_rec(tri_bounds, &mut order, 0, n, &mut nodes);
        Self { nodes, order, root }
    }

    fn build_rec(
        tb: &[Aabb],
        order: &mut [u32],
        start: usize,
        end: usize,
        nodes: &mut Vec<Node>,
    ) -> usize {
        let mut bounds = Aabb::EMPTY;
        for &t in &order[start..end] {
            bounds.merge(&tb[t as usize]);
        }
        if end - start <= LEAF_SIZE {
            nodes.push(Node::Leaf {
                bounds,
                start,
                count: end - start,
            });
            return nodes.len() - 1;
        }
        // Split along the widest axis at the median centroid.
        let mut widest = 0;
        let mut wid = -1.0;
        for k in 0..3 {
            let w = bounds.max[k] - bounds.min[k];
            if w > wid {
                wid = w;
                widest = k;
            }
        }
        let mid = (start + end) / 2;
        order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
            tb[a as usize].center()[widest]
                .partial_cmp(&tb[b as usize].center()[widest])
                .unwrap()
        });
        let left = Self::build_rec(tb, order, start, mid, nodes);
        let right = Self::build_rec(tb, order, mid, end, nodes);
        nodes.push(Node::Inner {
            bounds,
            left,
            right,
        });
        nodes.len() - 1
    }

    /// Visits every triangle range whose box passes `accept`; prunes the rest.
    fn visit<A: FnMut(&Aabb) -> bool, V: FnMut(usize, usize)>(
        &self,
        accept: &mut A,
        visit_leaf: &mut V,
    ) {
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id] {
                Node::Leaf {
                    bounds,
                    start,
                    count,
                } => {
                    if accept(bounds) {
                        visit_leaf(*start, *count);
                    }
                }
                Node::Inner {
                    bounds,
                    left,
                    right,
                } => {
                    if accept(bounds) {
                        stack.push(*left);
                        stack.push(*right);
                    }
                }
            }
        }
    }

    /// Finds the triangle minimizing `tri_dist2` (squared distance from a
    /// query point to triangle `i`), with best-first pruning on box distance.
    pub fn closest<F: FnMut(u32) -> f64>(&self, p: &[f64; 3], mut tri_dist2: F) -> (u32, f64) {
        let mut best = (u32::MAX, f64::INFINITY);
        // Best-first via sorted stack would be ideal; a pruned DFS is fine
        // at our mesh sizes.
        self.closest_rec(self.root, p, &mut tri_dist2, &mut best);
        best
    }

    fn closest_rec<F: FnMut(u32) -> f64>(
        &self,
        id: usize,
        p: &[f64; 3],
        tri_dist2: &mut F,
        best: &mut (u32, f64),
    ) {
        match &self.nodes[id] {
            Node::Leaf {
                bounds,
                start,
                count,
            } => {
                if bounds.dist2(p) >= best.1 {
                    return;
                }
                for &t in &self.order[*start..*start + *count] {
                    let d2 = tri_dist2(t);
                    if d2 < best.1 {
                        *best = (t, d2);
                    }
                }
            }
            Node::Inner {
                bounds,
                left,
                right,
            } => {
                if bounds.dist2(p) >= best.1 {
                    return;
                }
                // Descend nearer child first.
                let (bl, br) = (self.node_bounds(*left), self.node_bounds(*right));
                if bl.dist2(p) <= br.dist2(p) {
                    self.closest_rec(*left, p, tri_dist2, best);
                    self.closest_rec(*right, p, tri_dist2, best);
                } else {
                    self.closest_rec(*right, p, tri_dist2, best);
                    self.closest_rec(*left, p, tri_dist2, best);
                }
            }
        }
    }

    fn node_bounds(&self, id: usize) -> &Aabb {
        match &self.nodes[id] {
            Node::Leaf { bounds, .. } => bounds,
            Node::Inner { bounds, .. } => bounds,
        }
    }

    /// Calls `hit(t)` for every triangle whose leaf box is hit by the ray.
    pub fn ray_candidates<F: FnMut(u32)>(&self, o: &[f64; 3], dir: &[f64; 3], mut hit: F) {
        let inv = [1.0 / dir[0], 1.0 / dir[1], 1.0 / dir[2]];
        let order = &self.order;
        self.visit(
            &mut |b: &Aabb| b.hit_by_ray(o, &inv),
            &mut |start, count| {
                for &t in &order[start..start + count] {
                    hit(t);
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aabb_dist2() {
        let mut b = Aabb::EMPTY;
        b.grow(&[0.0, 0.0, 0.0]);
        b.grow(&[1.0, 1.0, 1.0]);
        assert_eq!(b.dist2(&[0.5, 0.5, 0.5]), 0.0);
        assert!((b.dist2(&[2.0, 0.5, 0.5]) - 1.0).abs() < 1e-15);
        assert!((b.dist2(&[2.0, 2.0, 0.5]) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn aabb_ray() {
        let mut b = Aabb::EMPTY;
        b.grow(&[0.0; 3]);
        b.grow(&[1.0; 3]);
        let inv = [1.0 / 1.0, 1.0 / 1e-30, 1.0 / 1e-30];
        assert!(b.hit_by_ray(&[-1.0, 0.5, 0.5], &inv));
        assert!(!b.hit_by_ray(&[-1.0, 2.5, 0.5], &inv));
        // Pointing away.
        let inv_neg = [-1.0, 1.0 / 1e-30, 1.0 / 1e-30];
        assert!(!b.hit_by_ray(&[-1.0, 0.5, 0.5], &inv_neg));
    }

    #[test]
    fn bvh_closest_brute_force_agreement() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        // Random "triangles" as points (distance to centroid) — exercises
        // the tree search logic.
        let pts: Vec<[f64; 3]> = (0..200)
            .map(|_| [rng.gen(), rng.gen(), rng.gen()])
            .collect();
        let boxes: Vec<Aabb> = pts
            .iter()
            .map(|p| {
                let mut b = Aabb::EMPTY;
                b.grow(p);
                b
            })
            .collect();
        let bvh = Bvh::build(&boxes);
        for _ in 0..50 {
            let q = [rng.gen(), rng.gen(), rng.gen()];
            let d2 = |t: u32| {
                let p = &pts[t as usize];
                (0..3).map(|k| (p[k] - q[k]) * (p[k] - q[k])).sum::<f64>()
            };
            let (ti, td) = bvh.closest(&q, d2);
            let (bi, bd) = (0..200u32)
                .map(|t| (t, d2(t)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert_eq!(ti, bi);
            assert!((td - bd).abs() < 1e-15);
        }
    }
}
