//! The procedural classroom scene of §5: complex furniture, seated students
//! (optionally with monitors), and a standing instructor, inside a room of
//! physical size `4.83 × 3.34 × 1` (lengths non-dimensionalized by room
//! height). One student is "infected" and acts as the viral-load source for
//! the scalar-transport application.
//!
//! Coordinates: the scene is authored in *physical* units and embedded into
//! the unit cube by dividing by [`ClassroomScene::scale`] (= the longest room
//! extent). The octree lives on the unit cube; everything outside the room
//! box is carved — exactly the anisotropic-domain situation incomplete
//! octrees exist for.

use crate::domain::{CarvedSolids, CompositeDomain, RetainBox, Solid};
use crate::shapes::{AxisBox, Capsule, Sphere};

/// Room extents in physical units (paper: 4.83 × 3.34 × 1).
pub const ROOM: [f64; 3] = [4.83, 3.34, 1.0];

/// Fraction of room height at which the infected student's mouth sits.
const MOUTH_HEIGHT: f64 = 0.80;

/// Scene description + the subdomain function for the octree builder.
pub struct ClassroomScene {
    /// The composite subdomain: retain the room box, carve the contents.
    pub domain: CompositeDomain<3>,
    /// Physical-to-unit scale (unit cube side in physical units).
    pub scale: f64,
    /// Monitors present? (Fig. 16 compares both scenarios.)
    pub with_monitors: bool,
    /// Viral-load source center, unit-cube coordinates.
    pub source_center: [f64; 3],
    /// Source radius (unit-cube units).
    pub source_radius: f64,
    /// Ceiling inlet strips (x ranges, physical), full width in y.
    inlets_x: Vec<(f64, f64)>,
    /// Ceiling outlet strips (x ranges, physical).
    outlets_x: Vec<(f64, f64)>,
}

/// Desk grid: 3 columns (x) × 3 rows (y).
const DESK_X: [f64; 3] = [1.5, 2.6, 3.7];
const DESK_Y: [f64; 3] = [0.70, 1.67, 2.64];

impl ClassroomScene {
    /// Builds the scene. `infected` selects the student by (column, row) in
    /// the 3×3 desk grid (paper: one specific seated mannequin is marked).
    pub fn new(with_monitors: bool, infected: (usize, usize)) -> Self {
        let scale = ROOM[0]; // 4.83: unit cube side in physical units
        let mut solids: Vec<Box<dyn Solid<3>>> = Vec::new();
        let s = scale;
        let u = |p: [f64; 3]| [p[0] / s, p[1] / s, p[2] / s];

        let mut source_center = [0.0; 3];
        for (ci, &dx) in DESK_X.iter().enumerate() {
            for (ri, &dy) in DESK_Y.iter().enumerate() {
                // Desk tabletop.
                solids.push(Box::new(AxisBox::new(
                    u([dx - 0.30, dy - 0.25, 0.40]),
                    u([dx + 0.30, dy + 0.25, 0.44]),
                )));
                // Seated student behind (+x of) the desk: torso, head, legs.
                let px = dx + 0.45;
                solids.push(Box::new(Capsule::new(
                    u([px, dy, 0.45]),
                    u([px, dy, 0.72]),
                    0.10 / s,
                )));
                let head = [px, dy, MOUTH_HEIGHT + 0.04];
                solids.push(Box::new(Sphere::new(u(head), 0.075 / s)));
                // Thighs toward the desk.
                solids.push(Box::new(Capsule::new(
                    u([px, dy - 0.07, 0.42]),
                    u([px - 0.35, dy - 0.07, 0.42]),
                    0.05 / s,
                )));
                solids.push(Box::new(Capsule::new(
                    u([px, dy + 0.07, 0.42]),
                    u([px - 0.35, dy + 0.07, 0.42]),
                    0.05 / s,
                )));
                // Chair seat.
                solids.push(Box::new(AxisBox::new(
                    u([px - 0.15, dy - 0.18, 0.36]),
                    u([px + 0.15, dy + 0.18, 0.40]),
                )));
                if with_monitors {
                    // Thin monitor standing on the desk, facing the student.
                    solids.push(Box::new(AxisBox::new(
                        u([dx - 0.05, dy - 0.22, 0.44]),
                        u([dx - 0.01, dy + 0.22, 0.78]),
                    )));
                }
                if (ci, ri) == infected {
                    source_center = u([px + 0.09, dy, MOUTH_HEIGHT]);
                }
            }
        }
        // Standing instructor at the front (low x).
        let ix = 0.55;
        let iy = 1.67;
        solids.push(Box::new(Capsule::new(
            u([ix, iy, 0.05]),
            u([ix, iy, 0.80]),
            0.11 / s,
        )));
        solids.push(Box::new(Sphere::new(u([ix, iy, 0.90]), 0.08 / s)));
        // Teacher's table.
        solids.push(Box::new(AxisBox::new(
            u([0.85, 1.25, 0.40]),
            u([1.15, 2.09, 0.44]),
        )));

        let retain = RetainBox::new([0.0; 3], [ROOM[0] / s, ROOM[1] / s, ROOM[2] / s]);
        ClassroomScene {
            domain: CompositeDomain {
                retain,
                carved: CarvedSolids::new(solids),
            },
            scale,
            with_monitors,
            source_center,
            source_radius: 0.08 / s,
            inlets_x: vec![(0.6, 1.1), (2.3, 2.8)],
            outlets_x: vec![(1.45, 1.95), (3.6, 4.1)],
        }
    }

    /// Converts a unit-cube point to physical coordinates.
    pub fn to_physical(&self, p: &[f64; 3]) -> [f64; 3] {
        [p[0] * self.scale, p[1] * self.scale, p[2] * self.scale]
    }

    /// True if the physical point lies on a ceiling *velocity inlet* strip
    /// (inlet velocity (0,0,-1), §5).
    pub fn is_inlet(&self, phys: &[f64; 3]) -> bool {
        self.on_ceiling(phys)
            && self
                .inlets_x
                .iter()
                .any(|&(lo, hi)| phys[0] >= lo && phys[0] <= hi)
    }

    /// True if the physical point lies on a ceiling *pressure outlet* strip.
    pub fn is_outlet(&self, phys: &[f64; 3]) -> bool {
        self.on_ceiling(phys)
            && self
                .outlets_x
                .iter()
                .any(|&(lo, hi)| phys[0] >= lo && phys[0] <= hi)
    }

    fn on_ceiling(&self, phys: &[f64; 3]) -> bool {
        (phys[2] - ROOM[2]).abs() < 1e-9 * self.scale + 1e-12 || (phys[2] - ROOM[2]).abs() < 1e-6
    }

    /// Number of carved solids (scene complexity measure).
    pub fn solid_count(&self) -> usize {
        self.domain.carved.solids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{RegionLabel, Subdomain};

    #[test]
    fn scene_has_expected_complexity() {
        let scene = ClassroomScene::new(true, (1, 1));
        // 9 desks * 7 solids (desk, torso, head, 2 legs, chair, monitor)
        // + instructor (2) + teacher table (1).
        assert_eq!(scene.solid_count(), 9 * 7 + 3);
        let no_mon = ClassroomScene::new(false, (1, 1));
        assert_eq!(no_mon.solid_count(), 9 * 6 + 3);
    }

    #[test]
    fn room_interior_is_retained_and_outside_carved() {
        let scene = ClassroomScene::new(false, (0, 0));
        // A point in free air inside the room.
        let free = [2.0 / scene.scale, 1.0 / scene.scale, 0.95 / scene.scale];
        assert!(!scene.domain.point_in_carved(&free));
        // Above the room (rest of the unit cube): carved.
        let above = [0.5, 0.5, 0.9];
        assert!(scene.domain.point_in_carved(&above));
        assert_eq!(
            scene.domain.classify_region(&[0.5, 0.5, 0.5], 0.2),
            RegionLabel::Carved
        );
    }

    #[test]
    fn furniture_is_carved() {
        let scene = ClassroomScene::new(true, (0, 0));
        let s = scene.scale;
        // Inside the first desk top.
        let in_desk = [1.5 / s, 0.70 / s, 0.42 / s];
        assert!(scene.domain.point_in_carved(&in_desk));
        // Inside the infected student's head.
        let in_head = [(1.5 + 0.45) / s, 0.70 / s, 0.84 / s];
        assert!(scene.domain.point_in_carved(&in_head));
    }

    #[test]
    fn source_sits_in_free_air() {
        for infected in [(0usize, 0usize), (1, 1), (2, 2)] {
            let scene = ClassroomScene::new(true, infected);
            assert!(
                !scene.domain.point_in_carved(&scene.source_center),
                "source must be outside all solids for {infected:?}"
            );
        }
    }

    #[test]
    fn inlets_and_outlets_disjoint() {
        let scene = ClassroomScene::new(false, (0, 0));
        for x in 0..100 {
            let p = [x as f64 * ROOM[0] / 100.0, 1.0, ROOM[2]];
            assert!(
                !(scene.is_inlet(&p) && scene.is_outlet(&p)),
                "overlap at {p:?}"
            );
        }
        assert!(scene.is_inlet(&[0.8, 1.0, ROOM[2]]));
        assert!(scene.is_outlet(&[1.7, 1.0, ROOM[2]]));
        assert!(!scene.is_inlet(&[0.8, 1.0, 0.5]));
    }
}
