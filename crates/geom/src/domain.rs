//! The subdomain abstraction `F(ē)` of §3.1.

/// Classification of a closed cube region against the carved set `C`.
///
/// The convention matters for correctness (§3.1.1): `C` is *closed* (it
/// contains its boundary `∂C`), `C'` is *open*. A region flush against `∂C`
/// is therefore `RetainBoundary`, while a *point* on `∂C` is inside `C`
/// ("carved" — which is how boundary nodes get tagged).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionLabel {
    /// `ē ⊂ C`: fully inside the carved (discarded) set.
    Carved,
    /// Intercepted by `∂C`: retained, marked as a subdomain-boundary octant.
    RetainBoundary,
    /// `ē ⊂ C'`: fully in the retained open complement.
    RetainInternal,
}

/// The application-supplied subdomain: classifies octant regions and points.
///
/// Implementations must be *conservative in the safe direction*: `Carved`
/// and `RetainInternal` may be reported only when certain; when in doubt
/// report `RetainBoundary` (this can only cost unnecessary refinement, never
/// correctness).
pub trait Subdomain<const DIM: usize>: Sync {
    /// Classifies the closed cube `[min, min + side]^DIM` (unit-cube
    /// coordinates).
    fn classify_region(&self, min: &[f64; DIM], side: f64) -> RegionLabel;

    /// True if the point lies in the closed carved set `C` (hence a point on
    /// `∂C` returns `true` — such nodal points become subdomain-boundary
    /// nodes).
    fn point_in_carved(&self, p: &[f64; DIM]) -> bool;
}

/// An implicit solid: a closed point set that can be carved from the domain.
pub trait Solid<const DIM: usize>: Sync + Send {
    /// True if `p` lies in the closed solid.
    fn contains(&self, p: &[f64; DIM]) -> bool;

    /// Exact-or-conservative classification of the closed cube against this
    /// solid (treated as the carved set `C`).
    fn classify_region(&self, min: &[f64; DIM], side: f64) -> RegionLabel;

    /// Signed distance to the solid surface; **positive inside** (the
    /// paper's Appendix B.1 convention), negative outside.
    fn signed_distance(&self, p: &[f64; DIM]) -> f64;

    /// Closest point on the solid boundary `∂C` to `p`; used by the Shifted
    /// Boundary Method to build the distance vector `d`.
    fn closest_boundary_point(&self, p: &[f64; DIM]) -> [f64; DIM];
}

/// The trivial subdomain: nothing carved (a complete octree).
pub struct FullDomain;

impl<const DIM: usize> Subdomain<DIM> for FullDomain {
    fn classify_region(&self, _min: &[f64; DIM], _side: f64) -> RegionLabel {
        RegionLabel::RetainInternal
    }
    fn point_in_carved(&self, _p: &[f64; DIM]) -> bool {
        false
    }
}

/// Subdomain that carves out the union of a set of solids (objects immersed
/// in the domain; e.g. the sphere, the dragon, classroom furniture).
///
/// For the union, `Carved` is reported when any solid fully covers the
/// region, `RetainInternal` when every solid reports internal — a safe,
/// exact-for-disjoint-objects approximation (overlapping objects degrade
/// only to extra `RetainBoundary` labels).
pub struct CarvedSolids<const DIM: usize> {
    pub solids: Vec<Box<dyn Solid<DIM>>>,
}

impl<const DIM: usize> CarvedSolids<DIM> {
    pub fn new(solids: Vec<Box<dyn Solid<DIM>>>) -> Self {
        Self { solids }
    }

    /// Signed distance to the union (positive inside any solid): the maximum
    /// of the member signed distances.
    pub fn signed_distance(&self, p: &[f64; DIM]) -> f64 {
        self.solids
            .iter()
            .map(|s| s.signed_distance(p))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Closest boundary point among all member solids.
    pub fn closest_boundary_point(&self, p: &[f64; DIM]) -> [f64; DIM] {
        let mut best = None;
        let mut best_d = f64::INFINITY;
        for s in &self.solids {
            let q = s.closest_boundary_point(p);
            let d: f64 = (0..DIM).map(|k| (q[k] - p[k]) * (q[k] - p[k])).sum();
            if d < best_d {
                best_d = d;
                best = Some(q);
            }
        }
        best.expect("at least one solid")
    }
}

impl<const DIM: usize> Subdomain<DIM> for CarvedSolids<DIM> {
    fn classify_region(&self, min: &[f64; DIM], side: f64) -> RegionLabel {
        let mut all_internal = true;
        for s in &self.solids {
            match s.classify_region(min, side) {
                RegionLabel::Carved => return RegionLabel::Carved,
                RegionLabel::RetainBoundary => all_internal = false,
                RegionLabel::RetainInternal => {}
            }
        }
        if all_internal {
            RegionLabel::RetainInternal
        } else {
            RegionLabel::RetainBoundary
        }
    }

    fn point_in_carved(&self, p: &[f64; DIM]) -> bool {
        self.solids.iter().any(|s| s.contains(p))
    }
}

/// Subdomain that *retains* an axis-aligned box and carves everything else —
/// the anisotropic-domain case (elongated channels) that complete octrees
/// can only reach by stretching elements (Table 1).
///
/// The retained set is the open box; the carved set `C` is the closed
/// complement, so points on the channel walls are tagged as boundary nodes.
pub struct RetainBox<const DIM: usize> {
    pub min: [f64; DIM],
    pub max: [f64; DIM],
}

impl<const DIM: usize> RetainBox<DIM> {
    pub fn new(min: [f64; DIM], max: [f64; DIM]) -> Self {
        Self { min, max }
    }

    /// A channel `[0, extent0] x [0, extent1] x ...` inside the unit cube;
    /// extents must be `<= 1`.
    pub fn channel(extents: [f64; DIM]) -> Self {
        Self {
            min: [0.0; DIM],
            max: extents,
        }
    }
}

impl<const DIM: usize> Subdomain<DIM> for RetainBox<DIM> {
    fn classify_region(&self, min: &[f64; DIM], side: f64) -> RegionLabel {
        let eps = 1e-12;
        // inside: the closed cube lies strictly within the open box, i.e.
        // never touches a wall. outside: the closed cube does not intersect
        // the open box at all (it is within the closed carved complement).
        let mut inside = true;
        let mut intersects_open = true;
        for ((&lo, &blo), &bhi) in min.iter().zip(&self.min).zip(&self.max) {
            let hi = lo + side;
            if !(lo > blo + eps && hi < bhi - eps) {
                inside = false;
            }
            if hi <= blo + eps || lo >= bhi - eps {
                intersects_open = false;
            }
        }
        let outside = !intersects_open;
        if inside {
            RegionLabel::RetainInternal
        } else if outside {
            RegionLabel::Carved
        } else {
            RegionLabel::RetainBoundary
        }
    }

    fn point_in_carved(&self, p: &[f64; DIM]) -> bool {
        // Carved set is the closed complement of the open box: a point on
        // the wall is carved (it is a boundary node).
        let eps = 1e-12;
        for ((&pk, &blo), &bhi) in p.iter().zip(&self.min).zip(&self.max) {
            if pk <= blo + eps || pk >= bhi - eps {
                return true;
            }
        }
        false
    }
}

/// Subdomain that *retains the inside* of a solid and carves everything
/// else — e.g. the Fig. 6 Poisson problem posed on a disk. The carved set is
/// the closed complement of the solid's interior, so points on the solid
/// surface are tagged as boundary nodes.
pub struct RetainSolid<const DIM: usize, S: Solid<DIM>> {
    pub solid: S,
}

impl<const DIM: usize, S: Solid<DIM>> RetainSolid<DIM, S> {
    pub fn new(solid: S) -> Self {
        Self { solid }
    }
}

impl<const DIM: usize, S: Solid<DIM>> Subdomain<DIM> for RetainSolid<DIM, S> {
    fn classify_region(&self, min: &[f64; DIM], side: f64) -> RegionLabel {
        // Invert the solid's classification: inside the solid = retained.
        match self.solid.classify_region(min, side) {
            RegionLabel::Carved => RegionLabel::RetainInternal,
            RegionLabel::RetainInternal => RegionLabel::Carved,
            RegionLabel::RetainBoundary => RegionLabel::RetainBoundary,
        }
    }

    fn point_in_carved(&self, p: &[f64; DIM]) -> bool {
        // Positive-inside convention: carved iff not strictly inside.
        self.solid.signed_distance(p) <= 1e-14
    }
}

/// Combines a retained outer region with carved solids inside it (e.g. the
/// classroom: retain the room box, carve furniture and mannequins).
pub struct CompositeDomain<const DIM: usize> {
    pub retain: RetainBox<DIM>,
    pub carved: CarvedSolids<DIM>,
}

impl<const DIM: usize> Subdomain<DIM> for CompositeDomain<DIM> {
    fn classify_region(&self, min: &[f64; DIM], side: f64) -> RegionLabel {
        match self.retain.classify_region(min, side) {
            RegionLabel::Carved => RegionLabel::Carved,
            outer => match self.carved.classify_region(min, side) {
                RegionLabel::Carved => RegionLabel::Carved,
                RegionLabel::RetainBoundary => RegionLabel::RetainBoundary,
                RegionLabel::RetainInternal => outer,
            },
        }
    }

    fn point_in_carved(&self, p: &[f64; DIM]) -> bool {
        self.retain.point_in_carved(p) || self.carved.point_in_carved(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::Sphere;

    #[test]
    fn full_domain_retains_everything() {
        let d = FullDomain;
        assert_eq!(
            Subdomain::<3>::classify_region(&d, &[0.0; 3], 1.0),
            RegionLabel::RetainInternal
        );
        assert!(!Subdomain::<3>::point_in_carved(&d, &[0.5; 3]));
    }

    #[test]
    fn retain_box_channel() {
        // Channel occupying [0,1] x [0,0.25] of the unit square.
        let d = RetainBox::<2>::channel([1.0, 0.25]);
        // Fully inside the channel: [0.4,0.5]x[0.05,0.15] is strictly inside
        // the open box (0,1)x(0,0.25).
        assert_eq!(
            d.classify_region(&[0.4, 0.05], 0.1),
            RegionLabel::RetainInternal
        );
        // Fully above the channel: carved.
        assert_eq!(d.classify_region(&[0.4, 0.5], 0.1), RegionLabel::Carved);
        // Straddling the channel wall: boundary.
        assert_eq!(
            d.classify_region(&[0.4, 0.2], 0.1),
            RegionLabel::RetainBoundary
        );
        // An element flush with the wall from inside: boundary (C is closed).
        assert_eq!(
            d.classify_region(&[0.0, 0.0], 0.125),
            RegionLabel::RetainBoundary
        );
        // Points: wall points are carved (they become boundary nodes).
        assert!(d.point_in_carved(&[0.5, 0.25]));
        assert!(d.point_in_carved(&[0.0, 0.1]));
        assert!(!d.point_in_carved(&[0.5, 0.1]));
    }

    #[test]
    fn carved_sphere_union() {
        let s1 = Sphere::<2>::new([0.25, 0.25], 0.1);
        let s2 = Sphere::<2>::new([0.75, 0.75], 0.1);
        let d = CarvedSolids::new(vec![Box::new(s1), Box::new(s2)]);
        assert_eq!(d.classify_region(&[0.2, 0.2], 0.05), RegionLabel::Carved);
        assert_eq!(
            d.classify_region(&[0.45, 0.45], 0.1),
            RegionLabel::RetainInternal
        );
        assert!(d.point_in_carved(&[0.25, 0.25]));
        assert!(d.point_in_carved(&[0.75, 0.8])); // near second sphere, inside
        assert!(!d.point_in_carved(&[0.5, 0.5]));
        // Union signed distance: positive inside either solid.
        assert!(d.signed_distance(&[0.25, 0.25]) > 0.0);
        assert!(d.signed_distance(&[0.5, 0.5]) < 0.0);
    }

    #[test]
    fn point_on_sphere_surface_is_carved() {
        let s = Sphere::<2>::new([0.5, 0.5], 0.25);
        let d = CarvedSolids::new(vec![Box::new(s)]);
        assert!(d.point_in_carved(&[0.75, 0.5]));
    }
}
