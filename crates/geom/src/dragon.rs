//! A procedural stand-in for the Stanford dragon (Fig. 5).
//!
//! The paper voxelizes the dragon STL and measures the signed-distance error
//! of boundary nodes vs refinement. Any watertight, non-convex, curved body
//! with high surface-to-volume ratio exercises the same code path; this
//! module generates one deterministically: a bumpy tube swept around a
//! closed undulating spine (torus topology — watertight by construction),
//! with radius modulation producing concavities, ridges, and a tapering
//! "tail". A real `dragon.stl` can be substituted via [`crate::stl::read_stl`].

use crate::trimesh::TriMesh;
use std::f64::consts::TAU;

/// Parameters of the procedural body.
#[derive(Clone, Copy, Debug)]
pub struct DragonParams {
    /// Segments along the spine.
    pub n_spine: usize,
    /// Segments around the tube circumference.
    pub n_ring: usize,
    /// Center of the body in the unit cube.
    pub center: [f64; 3],
    /// Overall radius of the spine loop (unit-cube units).
    pub loop_radius: f64,
    /// Base tube radius.
    pub tube_radius: f64,
}

impl Default for DragonParams {
    fn default() -> Self {
        Self {
            n_spine: 160,
            n_ring: 32,
            center: [0.5, 0.5, 0.5],
            loop_radius: 0.27,
            tube_radius: 0.085,
        }
    }
}

fn normalize(v: [f64; 3]) -> [f64; 3] {
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    [v[0] / n, v[1] / n, v[2] / n]
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

/// Spine curve: a loop around the z-axis with radial and vertical
/// undulation (periodic in `t ∈ [0, 2π)`).
fn spine(p: &DragonParams, t: f64) -> [f64; 3] {
    let r = p.loop_radius * (1.0 + 0.18 * (2.0 * t).sin() + 0.07 * (3.0 * t).cos());
    [
        p.center[0] + r * t.cos(),
        p.center[1] + r * t.sin(),
        p.center[2] + 0.16 * (3.0 * t).sin() * p.loop_radius / 0.27,
    ]
}

fn spine_tangent(p: &DragonParams, t: f64) -> [f64; 3] {
    let h = 1e-5;
    let a = spine(p, t + h);
    let b = spine(p, t - h);
    normalize([
        (a[0] - b[0]) / (2.0 * h),
        (a[1] - b[1]) / (2.0 * h),
        (a[2] - b[2]) / (2.0 * h),
    ])
}

/// Tube radius with "scales" and a tapering tail: strictly positive,
/// periodic in both parameters.
fn tube_radius(p: &DragonParams, t: f64, theta: f64) -> f64 {
    let taper = 1.0 - 0.55 * (0.5 * t).sin().powi(2); // thick "head", thin "tail"
    let scales = 1.0
        + 0.22 * (6.0 * t).sin()
        + 0.10 * (9.0 * t + 2.0 * theta).sin()
        + 0.08 * (3.0 * theta).cos();
    (p.tube_radius * taper * scales).max(0.25 * p.tube_radius)
}

/// Generates the watertight procedural body.
pub fn dragon_mesh(p: &DragonParams) -> TriMesh {
    let ns = p.n_spine;
    let nc = p.n_ring;
    assert!(ns >= 8 && nc >= 6);
    let mut vertices = Vec::with_capacity(ns * nc);
    for i in 0..ns {
        let t = TAU * i as f64 / ns as f64;
        let c = spine(p, t);
        let tan = spine_tangent(p, t);
        // Periodic frame from the cylindrical radial direction: every
        // ingredient is 2π-periodic in t, so the seam closes exactly.
        let e_r = [t.cos(), t.sin(), 0.0];
        let n1 = {
            // Component of e_r orthogonal to the tangent.
            let d = e_r[0] * tan[0] + e_r[1] * tan[1] + e_r[2] * tan[2];
            normalize([
                e_r[0] - d * tan[0],
                e_r[1] - d * tan[1],
                e_r[2] - d * tan[2],
            ])
        };
        let n2 = normalize(cross(tan, n1));
        for j in 0..nc {
            let theta = TAU * j as f64 / nc as f64;
            let r = tube_radius(p, t, theta);
            vertices.push([
                c[0] + r * (theta.cos() * n1[0] + theta.sin() * n2[0]),
                c[1] + r * (theta.cos() * n1[1] + theta.sin() * n2[1]),
                c[2] + r * (theta.cos() * n1[2] + theta.sin() * n2[2]),
            ]);
        }
    }
    let idx = |i: usize, j: usize| -> u32 { ((i % ns) * nc + (j % nc)) as u32 };
    let mut tris = Vec::with_capacity(2 * ns * nc);
    for i in 0..ns {
        for j in 0..nc {
            let a = idx(i, j);
            let b = idx(i + 1, j);
            let c = idx(i + 1, j + 1);
            let d = idx(i, j + 1);
            tris.push([a, b, c]);
            tris.push([a, c, d]);
        }
    }
    let mut mesh = TriMesh::new(vertices, tris);
    // Guarantee outward orientation (positive volume).
    if mesh.signed_volume() < 0.0 {
        for t in mesh.tris.iter_mut() {
            t.swap(1, 2);
        }
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Solid;
    use crate::trimesh::TriMeshSolid;

    #[test]
    fn dragon_is_watertight_and_oriented() {
        let m = dragon_mesh(&DragonParams::default());
        assert!(m.is_watertight());
        assert!(m.signed_volume() > 0.0);
        assert!(m.vertices.len() > 1000);
    }

    #[test]
    fn dragon_fits_in_unit_cube() {
        let m = dragon_mesh(&DragonParams::default());
        let b = m.bounds();
        for k in 0..3 {
            assert!(b.min[k] > 0.0 && b.max[k] < 1.0, "bounds {b:?}");
        }
    }

    #[test]
    fn dragon_has_high_surface_to_volume() {
        // The paper's point about the dragon: large surface area relative to
        // volume (compare with a sphere of equal volume: ratio >> 1).
        let m = dragon_mesh(&DragonParams::default());
        let vol = m.signed_volume();
        let area = m.area();
        let r_eq = (3.0 * vol / (4.0 * std::f64::consts::PI)).cbrt();
        let sphere_area = 4.0 * std::f64::consts::PI * r_eq * r_eq;
        assert!(
            area / sphere_area > 2.0,
            "area ratio {}",
            area / sphere_area
        );
    }

    #[test]
    fn dragon_in_out_center_of_tube_is_inside() {
        let p = DragonParams {
            n_spine: 64,
            n_ring: 16,
            ..Default::default()
        };
        let m = dragon_mesh(&p);
        let solid = TriMeshSolid::new(m);
        // A point on the spine is inside; the cube corner is outside.
        let on_spine = super::spine(&p, 1.0);
        assert!(solid.contains(&on_spine));
        assert!(!solid.contains(&[0.02, 0.02, 0.02]));
        assert!(!solid.contains(&p.center), "loop center is in the hole");
    }
}
