//! Geometry substrate: the subdomain abstraction of §3.1 and every In/Out
//! oracle the paper's experiments need.
//!
//! The octree algorithms never see geometry directly — they call a
//! user-supplied classification function `F(ē)` on closed cubes (octant
//! regions or points):
//!
//! ```text
//! F(ē) = Carved          if ē ⊂ C        (the closed carved set)
//!        RetainInternal  if ē ⊂ C'       (the open retained complement)
//!        RetainBoundary  otherwise       (intercepted by ∂C)
//! ```
//!
//! This crate provides [`Subdomain`] (that function), implicit solids with
//! exact region classification where possible (sphere, box, capsule),
//! triangle meshes with BVH-accelerated ray-cast In/Out tests and signed
//! distances (for STL geometry à la the Stanford dragon), and the procedural
//! scenes used by the reproduction: a dragon-like watertight body and the
//! classroom of §5.

pub mod bvh;
pub mod classroom;
pub mod domain;
pub mod dragon;
pub mod shapes;
pub mod stl;
pub mod trimesh;

pub use domain::{
    CarvedSolids, CompositeDomain, FullDomain, RegionLabel, RetainBox, RetainSolid, Solid,
    Subdomain,
};
pub use shapes::{AxisBox, Capsule, Sphere};
pub use trimesh::{TriMesh, TriMeshSolid};
