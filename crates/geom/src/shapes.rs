//! Analytic implicit solids with *exact* cube-region classification.

use crate::domain::{RegionLabel, Solid};

#[inline]
fn norm<const DIM: usize>(v: &[f64; DIM]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// A solid ball (disk in 2D, sphere in 3D).
#[derive(Clone, Copy, Debug)]
pub struct Sphere<const DIM: usize> {
    pub center: [f64; DIM],
    pub radius: f64,
}

impl<const DIM: usize> Sphere<DIM> {
    pub fn new(center: [f64; DIM], radius: f64) -> Self {
        assert!(radius > 0.0);
        Self { center, radius }
    }

    /// Minimum and maximum distance from the sphere center to the closed
    /// cube `[min, min+side]^DIM` — both exact, enabling exact octant
    /// classification.
    fn dist_range_to_cube(&self, min: &[f64; DIM], side: f64) -> (f64, f64) {
        let mut dmin2 = 0.0;
        let mut dmax2 = 0.0;
        for (&lo, &c) in min.iter().zip(&self.center) {
            let hi = lo + side;
            let dlo = (lo - c).abs();
            let dhi = (hi - c).abs();
            dmax2 += dlo.max(dhi).powi(2);
            if c < lo {
                dmin2 += (lo - c) * (lo - c);
            } else if c > hi {
                dmin2 += (c - hi) * (c - hi);
            }
        }
        (dmin2.sqrt(), dmax2.sqrt())
    }
}

impl<const DIM: usize> Solid<DIM> for Sphere<DIM> {
    fn contains(&self, p: &[f64; DIM]) -> bool {
        let mut d = [0.0; DIM];
        for k in 0..DIM {
            d[k] = p[k] - self.center[k];
        }
        norm(&d) <= self.radius * (1.0 + 1e-14) + 1e-300
    }

    fn classify_region(&self, min: &[f64; DIM], side: f64) -> RegionLabel {
        let (dmin, dmax) = self.dist_range_to_cube(min, side);
        if dmax <= self.radius {
            RegionLabel::Carved
        } else if dmin >= self.radius {
            // dmin == radius: cube touches ∂C (closed), hence intercepted
            // only at measure-zero contact — still classified internal only
            // when strictly outside.
            if dmin > self.radius {
                RegionLabel::RetainInternal
            } else {
                RegionLabel::RetainBoundary
            }
        } else {
            RegionLabel::RetainBoundary
        }
    }

    fn signed_distance(&self, p: &[f64; DIM]) -> f64 {
        let mut d = [0.0; DIM];
        for k in 0..DIM {
            d[k] = p[k] - self.center[k];
        }
        self.radius - norm(&d) // positive inside
    }

    fn closest_boundary_point(&self, p: &[f64; DIM]) -> [f64; DIM] {
        let mut d = [0.0; DIM];
        for k in 0..DIM {
            d[k] = p[k] - self.center[k];
        }
        let n = norm(&d);
        let mut q = self.center;
        if n < 1e-300 {
            // Degenerate: pick any direction.
            q[0] += self.radius;
            return q;
        }
        for k in 0..DIM {
            q[k] = self.center[k] + d[k] / n * self.radius;
        }
        q
    }
}

/// An axis-aligned solid box (a carved obstacle: tables, monitors, walls).
#[derive(Clone, Copy, Debug)]
pub struct AxisBox<const DIM: usize> {
    pub min: [f64; DIM],
    pub max: [f64; DIM],
}

impl<const DIM: usize> AxisBox<DIM> {
    pub fn new(min: [f64; DIM], max: [f64; DIM]) -> Self {
        for k in 0..DIM {
            assert!(min[k] < max[k]);
        }
        Self { min, max }
    }
}

impl<const DIM: usize> Solid<DIM> for AxisBox<DIM> {
    fn contains(&self, p: &[f64; DIM]) -> bool {
        (0..DIM).all(|k| p[k] >= self.min[k] - 1e-14 && p[k] <= self.max[k] + 1e-14)
    }

    fn classify_region(&self, min: &[f64; DIM], side: f64) -> RegionLabel {
        let mut cube_inside_box = true;
        let mut disjoint = false;
        for ((&lo, &blo), &bhi) in min.iter().zip(&self.min).zip(&self.max) {
            let hi = lo + side;
            if !(lo >= blo && hi <= bhi) {
                cube_inside_box = false;
            }
            if hi < blo || lo > bhi {
                disjoint = true;
            }
        }
        if cube_inside_box {
            RegionLabel::Carved
        } else if disjoint {
            RegionLabel::RetainInternal
        } else {
            RegionLabel::RetainBoundary
        }
    }

    fn signed_distance(&self, p: &[f64; DIM]) -> f64 {
        // Positive inside.
        let mut outside2 = 0.0;
        let mut inside = f64::INFINITY;
        for ((&pk, &blo), &bhi) in p.iter().zip(&self.min).zip(&self.max) {
            let lo = blo - pk; // >0 when p below box
            let hi = pk - bhi; // >0 when p above box
            let out = lo.max(hi);
            if out > 0.0 {
                outside2 += out * out;
            } else {
                inside = inside.min(-out);
            }
        }
        if outside2 > 0.0 {
            -outside2.sqrt()
        } else {
            inside
        }
    }

    fn closest_boundary_point(&self, p: &[f64; DIM]) -> [f64; DIM] {
        let inside = self.contains(p);
        let mut q = *p;
        if !inside {
            for k in 0..DIM {
                q[k] = p[k].clamp(self.min[k], self.max[k]);
            }
            q
        } else {
            // Project to the nearest face.
            let mut best_axis = 0;
            let mut best_val = f64::INFINITY;
            let mut snap = 0.0;
            for (k, &pk) in p.iter().enumerate() {
                let dlo = pk - self.min[k];
                let dhi = self.max[k] - pk;
                if dlo < best_val {
                    best_val = dlo;
                    best_axis = k;
                    snap = self.min[k];
                }
                if dhi < best_val {
                    best_val = dhi;
                    best_axis = k;
                    snap = self.max[k];
                }
            }
            q[best_axis] = snap;
            q
        }
    }
}

/// A capsule: all points within `radius` of the segment `[a, b]` (limbs and
/// torsos of the classroom mannequins).
#[derive(Clone, Copy, Debug)]
pub struct Capsule<const DIM: usize> {
    pub a: [f64; DIM],
    pub b: [f64; DIM],
    pub radius: f64,
}

impl<const DIM: usize> Capsule<DIM> {
    pub fn new(a: [f64; DIM], b: [f64; DIM], radius: f64) -> Self {
        assert!(radius > 0.0);
        Self { a, b, radius }
    }

    fn dist_to_axis(&self, p: &[f64; DIM]) -> f64 {
        let mut ab = [0.0; DIM];
        let mut ap = [0.0; DIM];
        for k in 0..DIM {
            ab[k] = self.b[k] - self.a[k];
            ap[k] = p[k] - self.a[k];
        }
        let ab2: f64 = ab.iter().map(|x| x * x).sum();
        let t = if ab2 > 0.0 {
            (ap.iter().zip(&ab).map(|(x, y)| x * y).sum::<f64>() / ab2).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mut d = [0.0; DIM];
        for k in 0..DIM {
            d[k] = p[k] - (self.a[k] + t * ab[k]);
        }
        norm(&d)
    }
}

impl<const DIM: usize> Solid<DIM> for Capsule<DIM> {
    fn contains(&self, p: &[f64; DIM]) -> bool {
        self.dist_to_axis(p) <= self.radius + 1e-14
    }

    fn classify_region(&self, min: &[f64; DIM], side: f64) -> RegionLabel {
        // Conservative via the Lipschitz-1 property of the distance field:
        // compare the center distance against the cube half-diagonal.
        let mut c = [0.0; DIM];
        for k in 0..DIM {
            c[k] = min[k] + 0.5 * side;
        }
        let rho = 0.5 * side * (DIM as f64).sqrt();
        let d = self.dist_to_axis(&c);
        if d + rho <= self.radius {
            RegionLabel::Carved
        } else if d - rho >= self.radius {
            RegionLabel::RetainInternal
        } else {
            RegionLabel::RetainBoundary
        }
    }

    fn signed_distance(&self, p: &[f64; DIM]) -> f64 {
        self.radius - self.dist_to_axis(p)
    }

    fn closest_boundary_point(&self, p: &[f64; DIM]) -> [f64; DIM] {
        // Walk from p along the gradient of the axis distance.
        let mut ab = [0.0; DIM];
        let mut ap = [0.0; DIM];
        for k in 0..DIM {
            ab[k] = self.b[k] - self.a[k];
            ap[k] = p[k] - self.a[k];
        }
        let ab2: f64 = ab.iter().map(|x| x * x).sum();
        let t = if ab2 > 0.0 {
            (ap.iter().zip(&ab).map(|(x, y)| x * y).sum::<f64>() / ab2).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mut axis_pt = [0.0; DIM];
        for k in 0..DIM {
            axis_pt[k] = self.a[k] + t * ab[k];
        }
        let mut d = [0.0; DIM];
        for k in 0..DIM {
            d[k] = p[k] - axis_pt[k];
        }
        let n = norm(&d);
        let mut q = axis_pt;
        if n < 1e-300 {
            q[0] += self.radius;
            return q;
        }
        for k in 0..DIM {
            q[k] = axis_pt[k] + d[k] / n * self.radius;
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_classify_exact() {
        let s = Sphere::<3>::new([0.5; 3], 0.25);
        assert_eq!(s.classify_region(&[0.45; 3], 0.1), RegionLabel::Carved);
        assert_eq!(
            s.classify_region(&[0.0; 3], 0.1),
            RegionLabel::RetainInternal
        );
        assert_eq!(
            s.classify_region(&[0.2, 0.45, 0.45], 0.1),
            RegionLabel::RetainBoundary
        );
        // Whole domain: intercepted.
        assert_eq!(
            s.classify_region(&[0.0; 3], 1.0),
            RegionLabel::RetainBoundary
        );
    }

    #[test]
    fn sphere_sdf_sign_convention() {
        // Paper's B.1: positive inside.
        let s = Sphere::<3>::new([0.5; 3], 0.25);
        assert!(s.signed_distance(&[0.5; 3]) > 0.0);
        assert!((s.signed_distance(&[0.5; 3]) - 0.25).abs() < 1e-15);
        assert!(s.signed_distance(&[0.0; 3]) < 0.0);
        assert!(s.signed_distance(&[0.75, 0.5, 0.5]).abs() < 1e-15);
    }

    #[test]
    fn sphere_closest_point_on_surface() {
        let s = Sphere::<2>::new([0.5, 0.5], 0.25);
        let q = s.closest_boundary_point(&[0.9, 0.5]);
        assert!((q[0] - 0.75).abs() < 1e-14 && (q[1] - 0.5).abs() < 1e-14);
        let q2 = s.closest_boundary_point(&[0.5, 0.6]); // from inside
        assert!((q2[1] - 0.75).abs() < 1e-14);
    }

    #[test]
    fn axis_box_classify_and_sdf() {
        let b = AxisBox::<3>::new([0.25; 3], [0.75; 3]);
        assert_eq!(b.classify_region(&[0.3; 3], 0.2), RegionLabel::Carved);
        assert_eq!(
            b.classify_region(&[0.8; 3], 0.1),
            RegionLabel::RetainInternal
        );
        assert_eq!(
            b.classify_region(&[0.2; 3], 0.2),
            RegionLabel::RetainBoundary
        );
        assert!((b.signed_distance(&[0.5; 3]) - 0.25).abs() < 1e-15);
        assert!((b.signed_distance(&[1.0, 0.5, 0.5]) + 0.25).abs() < 1e-15);
        // Outside diagonal distance.
        let d = b.signed_distance(&[1.0, 1.0, 0.5]);
        assert!((d + (2.0f64 * 0.25 * 0.25).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn box_closest_boundary_point() {
        let b = AxisBox::<2>::new([0.0, 0.0], [1.0, 1.0]);
        let q = b.closest_boundary_point(&[1.5, 0.5]);
        assert_eq!(q, [1.0, 0.5]);
        let q_in = b.closest_boundary_point(&[0.9, 0.5]);
        assert_eq!(q_in, [1.0, 0.5]);
    }

    #[test]
    fn capsule_basics() {
        let c = Capsule::<3>::new([0.3, 0.5, 0.5], [0.7, 0.5, 0.5], 0.1);
        assert!(c.contains(&[0.5, 0.5, 0.55]));
        assert!(!c.contains(&[0.5, 0.5, 0.65]));
        assert!((c.signed_distance(&[0.5, 0.5, 0.5]) - 0.1).abs() < 1e-15);
        // Beyond the cap.
        assert!((c.signed_distance(&[0.9, 0.5, 0.5]) + 0.1).abs() < 1e-15);
        assert_eq!(
            c.classify_region(&[0.45, 0.48, 0.48], 0.02),
            RegionLabel::Carved
        );
        assert_eq!(
            c.classify_region(&[0.0; 3], 0.05),
            RegionLabel::RetainInternal
        );
        let q = c.closest_boundary_point(&[0.5, 0.5, 0.8]);
        assert!((q[2] - 0.6).abs() < 1e-14);
    }
}
