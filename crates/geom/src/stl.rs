//! STL reading/writing (binary and ASCII), so real scan geometry (e.g. the
//! Stanford dragon) drops into the Fig. 5 pipeline unchanged.

use crate::trimesh::TriMesh;
use std::io::{self, Read, Write};
use std::path::Path;

/// Reads an STL file, auto-detecting binary vs ASCII.
pub fn read_stl(path: &Path) -> io::Result<TriMesh> {
    let bytes = std::fs::read(path)?;
    parse_stl(&bytes)
}

/// Parses STL bytes, auto-detecting the variant.
pub fn parse_stl(bytes: &[u8]) -> io::Result<TriMesh> {
    // ASCII files start with "solid" AND actually contain "facet"; binary
    // files may also start with "solid" in the comment header, so check the
    // size invariant too.
    let looks_ascii = bytes.starts_with(b"solid")
        && std::str::from_utf8(&bytes[..bytes.len().min(1024)])
            .map(|s| s.contains("facet"))
            .unwrap_or(false);
    if looks_ascii {
        parse_ascii(bytes)
    } else {
        parse_binary(bytes)
    }
}

fn parse_binary(bytes: &[u8]) -> io::Result<TriMesh> {
    if bytes.len() < 84 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated STL"));
    }
    let n = u32::from_le_bytes(bytes[80..84].try_into().unwrap()) as usize;
    let expected = 84 + n * 50;
    if bytes.len() < expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("binary STL claims {n} tris but file is short"),
        ));
    }
    let mut mesh = TriMesh::default();
    let mut cursor = 84;
    for _ in 0..n {
        // Skip the normal (12 bytes); read 3 vertices.
        let mut idx = [0u32; 3];
        for (k, slot) in idx.iter_mut().enumerate() {
            let off = cursor + 12 + k * 12;
            let mut v = [0.0f64; 3];
            for a in 0..3 {
                let f = f32::from_le_bytes(bytes[off + 4 * a..off + 4 * a + 4].try_into().unwrap());
                v[a] = f as f64;
            }
            mesh.vertices.push(v);
            *slot = (mesh.vertices.len() - 1) as u32;
        }
        mesh.tris.push(idx);
        cursor += 50;
    }
    Ok(weld(mesh))
}

fn parse_ascii(bytes: &[u8]) -> io::Result<TriMesh> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut mesh = TriMesh::default();
    let mut current: Vec<[f64; 3]> = Vec::with_capacity(3);
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("vertex") {
            let mut it = rest.split_whitespace();
            let mut v = [0.0; 3];
            for x in v.iter_mut() {
                *x = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad vertex"))?;
            }
            current.push(v);
        } else if line.starts_with("endfacet") {
            if current.len() != 3 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "facet without 3 vertices",
                ));
            }
            let base = mesh.vertices.len() as u32;
            mesh.vertices.append(&mut current);
            mesh.tris.push([base, base + 1, base + 2]);
        }
    }
    Ok(weld(mesh))
}

/// Welds duplicate vertices (exact bit match after rounding to f32 grid),
/// so STL soup becomes an indexed, watertight-checkable mesh.
fn weld(mesh: TriMesh) -> TriMesh {
    use std::collections::HashMap;
    let mut map: HashMap<[u64; 3], u32> = HashMap::new();
    let mut vertices = Vec::new();
    let mut remap = Vec::with_capacity(mesh.vertices.len());
    for v in &mesh.vertices {
        let key = [v[0].to_bits(), v[1].to_bits(), v[2].to_bits()];
        let id = *map.entry(key).or_insert_with(|| {
            vertices.push(*v);
            (vertices.len() - 1) as u32
        });
        remap.push(id);
    }
    let tris = mesh
        .tris
        .iter()
        .map(|t| {
            [
                remap[t[0] as usize],
                remap[t[1] as usize],
                remap[t[2] as usize],
            ]
        })
        .collect();
    TriMesh { vertices, tris }
}

/// Writes a binary STL.
pub fn write_stl(path: &Path, mesh: &TriMesh) -> io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut header = [0u8; 80];
    header[..14].copy_from_slice(b"carve-stl-mesh");
    f.write_all(&header)?;
    f.write_all(&(mesh.tris.len() as u32).to_le_bytes())?;
    for t in 0..mesh.tris.len() {
        let [a, b, c] = mesh.tri_vertices(t);
        // Face normal.
        let u = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
        let v = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
        let mut n = [
            u[1] * v[2] - u[2] * v[1],
            u[2] * v[0] - u[0] * v[2],
            u[0] * v[1] - u[1] * v[0],
        ];
        let len = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
        if len > 0.0 {
            for x in n.iter_mut() {
                *x /= len;
            }
        }
        for x in n {
            f.write_all(&(x as f32).to_le_bytes())?;
        }
        for p in [a, b, c] {
            for x in p {
                f.write_all(&(x as f32).to_le_bytes())?;
            }
        }
        f.write_all(&0u16.to_le_bytes())?;
    }
    f.flush()
}

/// Reads any reader fully then parses (convenience for tests).
pub fn read_stl_from<R: Read>(mut r: R) -> io::Result<TriMesh> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    parse_stl(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trimesh::cube_mesh;

    #[test]
    fn binary_roundtrip_preserves_topology() {
        let m = cube_mesh(0.0, 1.0);
        let dir = std::env::temp_dir().join("carve_stl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("cube.stl");
        write_stl(&p, &m).unwrap();
        let m2 = read_stl(&p).unwrap();
        assert_eq!(m2.tris.len(), 12);
        assert_eq!(m2.vertices.len(), 8, "weld should merge shared vertices");
        assert!(m2.is_watertight());
        assert!((m2.signed_volume() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ascii_parse() {
        let ascii = r#"solid tri
facet normal 0 0 1
 outer loop
  vertex 0 0 0
  vertex 1 0 0
  vertex 0 1 0
 endloop
endfacet
endsolid tri
"#;
        let m = parse_stl(ascii.as_bytes()).unwrap();
        assert_eq!(m.tris.len(), 1);
        assert_eq!(m.vertices.len(), 3);
        assert!((m.area() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_truncated_binary() {
        let bytes = vec![0u8; 50];
        assert!(parse_stl(&bytes).is_err());
    }
}
