//! Triangle meshes: the geometry representation behind STL input, with
//! BVH-accelerated ray-cast In/Out tests and signed distances.

use crate::bvh::{Aabb, Bvh};
use crate::domain::{RegionLabel, Solid};

/// An indexed triangle mesh (counter-clockwise triangles, outward normals).
#[derive(Clone, Debug, Default)]
pub struct TriMesh {
    pub vertices: Vec<[f64; 3]>,
    pub tris: Vec<[u32; 3]>,
}

impl TriMesh {
    pub fn new(vertices: Vec<[f64; 3]>, tris: Vec<[u32; 3]>) -> Self {
        Self { vertices, tris }
    }

    pub fn tri_vertices(&self, t: usize) -> [[f64; 3]; 3] {
        let [a, b, c] = self.tris[t];
        [
            self.vertices[a as usize],
            self.vertices[b as usize],
            self.vertices[c as usize],
        ]
    }

    pub fn bounds(&self) -> Aabb {
        let mut b = Aabb::EMPTY;
        for v in &self.vertices {
            b.grow(v);
        }
        b
    }

    /// Total surface area.
    pub fn area(&self) -> f64 {
        (0..self.tris.len())
            .map(|t| {
                let [a, b, c] = self.tri_vertices(t);
                let u = sub(&b, &a);
                let v = sub(&c, &a);
                0.5 * norm(&cross(&u, &v))
            })
            .sum()
    }

    /// Signed volume via the divergence theorem (positive for outward
    /// orientation).
    pub fn signed_volume(&self) -> f64 {
        (0..self.tris.len())
            .map(|t| {
                let [a, b, c] = self.tri_vertices(t);
                dot(&a, &cross(&b, &c)) / 6.0
            })
            .sum()
    }

    /// Watertightness: every undirected edge is used by exactly two
    /// triangles, with opposite directions (2-manifold, consistently
    /// oriented).
    pub fn is_watertight(&self) -> bool {
        use std::collections::HashMap;
        let mut dir_edges: HashMap<(u32, u32), i32> = HashMap::new();
        for t in &self.tris {
            for e in 0..3 {
                let a = t[e];
                let b = t[(e + 1) % 3];
                if a == b {
                    return false;
                }
                *dir_edges.entry((a.min(b), a.max(b))).or_insert(0) += if a < b { 1 } else { -1 };
            }
        }
        // Each undirected edge must be traversed once in each direction, and
        // exactly twice total. Count totals separately.
        let mut counts: HashMap<(u32, u32), u32> = HashMap::new();
        for t in &self.tris {
            for e in 0..3 {
                let a = t[e];
                let b = t[(e + 1) % 3];
                *counts.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
        counts.values().all(|&c| c == 2) && dir_edges.values().all(|&s| s == 0)
    }
}

#[inline]
fn sub(a: &[f64; 3], b: &[f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}
#[inline]
fn cross(a: &[f64; 3], b: &[f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}
#[inline]
fn dot(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}
#[inline]
fn norm(a: &[f64; 3]) -> f64 {
    dot(a, a).sqrt()
}

/// Closest point on triangle `(a,b,c)` to `p` (Ericson, *Real-Time Collision
/// Detection*, §5.1.5).
pub fn closest_point_on_triangle(
    p: &[f64; 3],
    a: &[f64; 3],
    b: &[f64; 3],
    c: &[f64; 3],
) -> [f64; 3] {
    let ab = sub(b, a);
    let ac = sub(c, a);
    let ap = sub(p, a);
    let d1 = dot(&ab, &ap);
    let d2 = dot(&ac, &ap);
    if d1 <= 0.0 && d2 <= 0.0 {
        return *a;
    }
    let bp = sub(p, b);
    let d3 = dot(&ab, &bp);
    let d4 = dot(&ac, &bp);
    if d3 >= 0.0 && d4 <= d3 {
        return *b;
    }
    let vc = d1 * d4 - d3 * d2;
    if vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0 {
        let v = d1 / (d1 - d3);
        return [a[0] + v * ab[0], a[1] + v * ab[1], a[2] + v * ab[2]];
    }
    let cp = sub(p, c);
    let d5 = dot(&ab, &cp);
    let d6 = dot(&ac, &cp);
    if d6 >= 0.0 && d5 <= d6 {
        return *c;
    }
    let vb = d5 * d2 - d1 * d6;
    if vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0 {
        let w = d2 / (d2 - d6);
        return [a[0] + w * ac[0], a[1] + w * ac[1], a[2] + w * ac[2]];
    }
    let va = d3 * d6 - d5 * d4;
    if va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0 {
        let w = (d4 - d3) / ((d4 - d3) + (d5 - d6));
        return [
            b[0] + w * (c[0] - b[0]),
            b[1] + w * (c[1] - b[1]),
            b[2] + w * (c[2] - b[2]),
        ];
    }
    let denom = 1.0 / (va + vb + vc);
    let v = vb * denom;
    let w = vc * denom;
    [
        a[0] + ab[0] * v + ac[0] * w,
        a[1] + ab[1] * v + ac[1] * w,
        a[2] + ab[2] * v + ac[2] * w,
    ]
}

/// Möller–Trumbore ray/triangle intersection; returns `t` if the ray
/// `o + t·dir` (t > eps) hits the triangle's interior.
pub fn ray_triangle(
    o: &[f64; 3],
    dir: &[f64; 3],
    a: &[f64; 3],
    b: &[f64; 3],
    c: &[f64; 3],
) -> Option<f64> {
    let e1 = sub(b, a);
    let e2 = sub(c, a);
    let pvec = cross(dir, &e2);
    let det = dot(&e1, &pvec);
    if det.abs() < 1e-14 {
        return None;
    }
    let inv_det = 1.0 / det;
    let tvec = sub(o, a);
    let u = dot(&tvec, &pvec) * inv_det;
    if !(0.0..=1.0).contains(&u) {
        return None;
    }
    let qvec = cross(&tvec, &e1);
    let v = dot(dir, &qvec) * inv_det;
    if v < 0.0 || u + v > 1.0 {
        return None;
    }
    let t = dot(&e2, &qvec) * inv_det;
    if t > 1e-12 {
        Some(t)
    } else {
        None
    }
}

/// A watertight triangle mesh as an implicit solid: In/Out by ray-parity
/// voting, unsigned distance by BVH closest-triangle, sign by containment.
///
/// This is the "ray-tracing based In/Out test" the classroom pipeline uses
/// (§5), and the signed-distance oracle of Fig. 5 / Appendix B.1.
pub struct TriMeshSolid {
    pub mesh: TriMesh,
    bvh: Bvh,
}

impl TriMeshSolid {
    pub fn new(mesh: TriMesh) -> Self {
        let boxes: Vec<Aabb> = (0..mesh.tris.len())
            .map(|t| {
                let vs = mesh.tri_vertices(t);
                let mut b = Aabb::EMPTY;
                for v in &vs {
                    b.grow(v);
                }
                b
            })
            .collect();
        let bvh = Bvh::build(&boxes);
        Self { mesh, bvh }
    }

    /// Counts crossings of a ray from `p` in direction `dir`.
    fn ray_parity(&self, p: &[f64; 3], dir: &[f64; 3]) -> usize {
        let mut hits = 0usize;
        self.bvh.ray_candidates(p, dir, |t| {
            let [a, b, c] = self.mesh.tri_vertices(t as usize);
            if ray_triangle(p, dir, &a, &b, &c).is_some() {
                hits += 1;
            }
        });
        hits
    }

    /// Unsigned distance and closest surface point.
    pub fn closest_surface_point(&self, p: &[f64; 3]) -> ([f64; 3], f64) {
        let (t, d2) = self.bvh.closest(p, |t| {
            let [a, b, c] = self.mesh.tri_vertices(t as usize);
            let q = closest_point_on_triangle(p, &a, &b, &c);
            (0..3).map(|k| (q[k] - p[k]) * (q[k] - p[k])).sum::<f64>()
        });
        let [a, b, c] = self.mesh.tri_vertices(t as usize);
        let q = closest_point_on_triangle(p, &a, &b, &c);
        (q, d2.sqrt())
    }
}

impl Solid<3> for TriMeshSolid {
    fn contains(&self, p: &[f64; 3]) -> bool {
        // Majority vote over three skew rays — robust against edge grazing.
        let dirs = [
            [0.577_215_664, 0.301_047_317, 0.757_872_156],
            [-0.693_128_947, 0.482_426_149, 0.535_533_905],
            [0.141_421_356, -0.866_025_403, 0.479_425_538],
        ];
        let mut inside_votes = 0;
        for d in &dirs {
            if self.ray_parity(p, d) % 2 == 1 {
                inside_votes += 1;
            }
        }
        inside_votes >= 2
    }

    fn classify_region(&self, min: &[f64; 3], side: f64) -> RegionLabel {
        // Lipschitz-1 argument on the unsigned distance field: if the region
        // center is farther from the surface than the half-diagonal, the
        // whole closed cube is on one side.
        let c = [
            min[0] + 0.5 * side,
            min[1] + 0.5 * side,
            min[2] + 0.5 * side,
        ];
        let rho = 0.5 * side * 3.0f64.sqrt();
        let (_, d) = self.closest_surface_point(&c);
        if d <= rho {
            return RegionLabel::RetainBoundary;
        }
        if self.contains(&c) {
            RegionLabel::Carved
        } else {
            RegionLabel::RetainInternal
        }
    }

    fn signed_distance(&self, p: &[f64; 3]) -> f64 {
        let (_, d) = self.closest_surface_point(p);
        if self.contains(p) {
            d // positive inside (paper's convention)
        } else {
            -d
        }
    }

    fn closest_boundary_point(&self, p: &[f64; 3]) -> [f64; 3] {
        self.closest_surface_point(p).0
    }
}

/// A unit-ish cube test mesh `[lo, hi]^3` (12 triangles, outward normals).
pub fn cube_mesh(lo: f64, hi: f64) -> TriMesh {
    let v = |x: u32| -> [f64; 3] {
        [
            if x & 1 == 1 { hi } else { lo },
            if x & 2 == 2 { hi } else { lo },
            if x & 4 == 4 { hi } else { lo },
        ]
    };
    let vertices: Vec<[f64; 3]> = (0..8).map(v).collect();
    // Each face as two CCW triangles viewed from outside.
    let tris: Vec<[u32; 3]> = vec![
        // -z (normal (0,0,-1)): viewed from below, order 0,2,3,1
        [0, 2, 3],
        [0, 3, 1],
        // +z
        [4, 5, 7],
        [4, 7, 6],
        // -y
        [0, 1, 5],
        [0, 5, 4],
        // +y
        [2, 6, 7],
        [2, 7, 3],
        // -x
        [0, 4, 6],
        [0, 6, 2],
        // +x
        [1, 3, 7],
        [1, 7, 5],
    ];
    TriMesh::new(vertices, tris)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_mesh_is_watertight_and_oriented() {
        let m = cube_mesh(0.0, 1.0);
        assert!(m.is_watertight());
        assert!(
            (m.signed_volume() - 1.0).abs() < 1e-12,
            "v={}",
            m.signed_volume()
        );
        assert!((m.area() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn closest_point_on_triangle_regions() {
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, 0.0, 0.0];
        let c = [0.0, 1.0, 0.0];
        // Interior projection.
        let q = closest_point_on_triangle(&[0.25, 0.25, 1.0], &a, &b, &c);
        assert!((q[0] - 0.25).abs() < 1e-14 && (q[1] - 0.25).abs() < 1e-14 && q[2].abs() < 1e-14);
        // Vertex region.
        let q = closest_point_on_triangle(&[-1.0, -1.0, 0.0], &a, &b, &c);
        assert_eq!(q, a);
        // Edge region.
        let q = closest_point_on_triangle(&[0.5, -1.0, 0.0], &a, &b, &c);
        assert!((q[0] - 0.5).abs() < 1e-14 && q[1].abs() < 1e-14);
        // Hypotenuse edge region.
        let q = closest_point_on_triangle(&[1.0, 1.0, 0.0], &a, &b, &c);
        assert!((q[0] - 0.5).abs() < 1e-14 && (q[1] - 0.5).abs() < 1e-14);
    }

    #[test]
    fn ray_triangle_hit_and_miss() {
        let a = [0.0, 0.0, 1.0];
        let b = [1.0, 0.0, 1.0];
        let c = [0.0, 1.0, 1.0];
        let t = ray_triangle(&[0.2, 0.2, 0.0], &[0.0, 0.0, 1.0], &a, &b, &c);
        assert!((t.unwrap() - 1.0).abs() < 1e-14);
        assert!(ray_triangle(&[0.9, 0.9, 0.0], &[0.0, 0.0, 1.0], &a, &b, &c).is_none());
        // Behind the origin.
        assert!(ray_triangle(&[0.2, 0.2, 2.0], &[0.0, 0.0, 1.0], &a, &b, &c).is_none());
    }

    #[test]
    fn cube_solid_in_out_and_sdf() {
        let solid = TriMeshSolid::new(cube_mesh(0.25, 0.75));
        assert!(solid.contains(&[0.5, 0.5, 0.5]));
        assert!(!solid.contains(&[0.9, 0.5, 0.5]));
        assert!(!solid.contains(&[0.1, 0.1, 0.1]));
        // Signed distance: positive inside, matches box distance.
        assert!((solid.signed_distance(&[0.5, 0.5, 0.5]) - 0.25).abs() < 1e-12);
        assert!((solid.signed_distance(&[1.0, 0.5, 0.5]) + 0.25).abs() < 1e-12);
        let (q, d) = solid.closest_surface_point(&[0.5, 0.5, 0.9]);
        assert!((d - 0.15).abs() < 1e-12);
        assert!((q[2] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cube_solid_classify_region() {
        let solid = TriMeshSolid::new(cube_mesh(0.25, 0.75));
        assert_eq!(
            solid.classify_region(&[0.45, 0.45, 0.45], 0.05),
            RegionLabel::Carved
        );
        assert_eq!(
            solid.classify_region(&[0.0, 0.0, 0.0], 0.05),
            RegionLabel::RetainInternal
        );
        assert_eq!(
            solid.classify_region(&[0.2, 0.45, 0.45], 0.1),
            RegionLabel::RetainBoundary
        );
    }
}
