//! JSON (de)serialization of transient adapt traces — the artifact the CI
//! adapt-determinism stage diffs bitwise across thread counts and chaos
//! schedules.
//!
//! Schema:
//!
//! ```json
//! {
//!   "schema": "carve-adapt-trace-v1",
//!   "ranks": 3,
//!   "cycles": [
//!     {
//!       "step": 4, "elems_before": 620, "elems_after": 688,
//!       "refined": 24, "coarsened": 8, "migrated": false,
//!       "dofs": 812,
//!       "leaf_hash": "f1d2d2f924e986ac",
//!       "field_hash": "86f7e437faa5a7fc"
//!     }
//!   ]
//! }
//! ```
//!
//! The two hashes fold the global leaf set and the solution field
//! (including every `f64` bit pattern) in rank order, so a single flipped
//! bit anywhere in the run changes the serialized trace. Hashes travel as
//! zero-padded hex *strings*: JSON numbers are f64 and cannot carry 64 bits
//! losslessly.

use crate::json::Json;

/// Schema tag stamped into every serialized adapt trace.
pub const ADAPT_TRACE_SCHEMA: &str = "carve-adapt-trace-v1";

/// One adapt cycle of a transient run, as recorded by the time stepper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdaptCycleRecord {
    /// Time step index at which the adapt fired.
    pub step: u64,
    /// Global element count entering / leaving the cycle.
    pub elems_before: u64,
    pub elems_after: u64,
    /// Globally summed split / merge counts.
    pub refined: u64,
    pub coarsened: u64,
    /// Whether this cycle repartitioned (full rebuild) instead of patching.
    pub migrated: bool,
    /// Global DOF count after the cycle.
    pub dofs: u64,
    /// Order-fixed FNV fold of the global leaf set (anchors + levels).
    pub leaf_hash: u64,
    /// Order-fixed FNV fold of node coords + solution bit patterns.
    pub field_hash: u64,
}

/// A whole transient run's adapt history.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct AdaptTrace {
    pub ranks: u64,
    pub cycles: Vec<AdaptCycleRecord>,
}

fn hex64(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

/// Encodes a trace as a self-describing JSON object.
pub fn adapt_trace_to_json(trace: &AdaptTrace) -> Json {
    let cycles = trace
        .cycles
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("step".into(), num(c.step)),
                ("elems_before".into(), num(c.elems_before)),
                ("elems_after".into(), num(c.elems_after)),
                ("refined".into(), num(c.refined)),
                ("coarsened".into(), num(c.coarsened)),
                ("migrated".into(), Json::Bool(c.migrated)),
                ("dofs".into(), num(c.dofs)),
                ("leaf_hash".into(), hex64(c.leaf_hash)),
                ("field_hash".into(), hex64(c.field_hash)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str(ADAPT_TRACE_SCHEMA.into())),
        ("ranks".into(), num(trace.ranks)),
        ("cycles".into(), Json::Arr(cycles)),
    ])
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite() && *v >= 0.0)
        .map(|v| v as u64)
        .ok_or_else(|| format!("adapt trace: missing number field {key:?}"))
}

fn get_hex64(j: &Json, key: &str) -> Result<u64, String> {
    let s = j
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("adapt trace: missing string field {key:?}"))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("adapt trace: bad hash {key:?}: {e}"))
}

/// Decodes a trace written by [`adapt_trace_to_json`], validating the
/// schema tag.
pub fn adapt_trace_from_json(j: &Json) -> Result<AdaptTrace, String> {
    match j.get("schema").and_then(Json::as_str) {
        Some(ADAPT_TRACE_SCHEMA) => {}
        Some(other) => return Err(format!("adapt trace: unknown schema {other:?}")),
        None => return Err("adapt trace: missing string field \"schema\"".into()),
    }
    let ranks = get_u64(j, "ranks")?;
    let cycles = match j.get("cycles") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|c| {
                Ok(AdaptCycleRecord {
                    step: get_u64(c, "step")?,
                    elems_before: get_u64(c, "elems_before")?,
                    elems_after: get_u64(c, "elems_after")?,
                    refined: get_u64(c, "refined")?,
                    coarsened: get_u64(c, "coarsened")?,
                    migrated: c
                        .get("migrated")
                        .and_then(Json::as_bool)
                        .ok_or("adapt trace: missing bool field \"migrated\"")?,
                    dofs: get_u64(c, "dofs")?,
                    leaf_hash: get_hex64(c, "leaf_hash")?,
                    field_hash: get_hex64(c, "field_hash")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("adapt trace: missing array field \"cycles\"".into()),
    };
    Ok(AdaptTrace { ranks, cycles })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AdaptTrace {
        AdaptTrace {
            ranks: 3,
            cycles: vec![
                AdaptCycleRecord {
                    step: 2,
                    elems_before: 620,
                    elems_after: 688,
                    refined: 24,
                    coarsened: 8,
                    migrated: false,
                    dofs: 812,
                    leaf_hash: 0xf1d2_d2f9_24e9_86ac,
                    field_hash: 0x0000_0000_0000_0001, // leading zeros must survive
                },
                AdaptCycleRecord {
                    step: 4,
                    elems_before: 688,
                    elems_after: 652,
                    refined: 4,
                    coarsened: 40,
                    migrated: true,
                    dofs: 771,
                    leaf_hash: u64::MAX,
                    field_hash: 0x86f7_e437_faa5_a7fc,
                },
            ],
        }
    }

    #[test]
    fn adapt_trace_roundtrips_exactly() {
        let trace = sample();
        let text = adapt_trace_to_json(&trace).to_string_pretty();
        let parsed = Json::parse(&text).expect("valid json");
        let back = adapt_trace_from_json(&parsed).expect("valid trace");
        assert_eq!(back, trace);
        // And the serialization itself is stable (the CI stage diffs text).
        assert_eq!(adapt_trace_to_json(&back).to_string_pretty(), text);
    }

    #[test]
    fn adapt_trace_rejects_malformed_input() {
        let mut j = adapt_trace_to_json(&sample());
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::Str("bogus-v9".into());
        }
        assert!(adapt_trace_from_json(&j).is_err());
        assert!(adapt_trace_from_json(&Json::Num(4.0)).is_err());
        // A corrupted hash string must fail loudly, not decode to 0.
        let mut j = adapt_trace_to_json(&sample());
        if let Json::Obj(fields) = &mut j {
            if let Json::Arr(cycles) = &mut fields[2].1 {
                if let Json::Obj(c) = &mut cycles[0] {
                    c[7].1 = Json::Str("not-hex".into());
                }
            }
        }
        assert!(adapt_trace_from_json(&j).is_err());
    }
}
