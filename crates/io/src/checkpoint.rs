//! JSON (de)serialization of Krylov [`SolveCheckpoint`]s, so a solve
//! interrupted by a process-level failure can restart in a *different*
//! process from its last snapshot (the in-process supervisor keeps
//! checkpoints in memory; this is the durable escape hatch).
//!
//! Schema:
//!
//! ```json
//! {
//!   "schema": "carve-solve-checkpoint-v1",
//!   "method": "cg",
//!   "iteration": 150,
//!   "residual": 3.2e-7,
//!   "residual_tail": [5.1e-7, 4.0e-7, 3.2e-7],
//!   "x": [ ... ],
//!   "r": [ ... ]
//! }
//! ```
//!
//! Numbers are written with Rust's shortest-roundtrip `f64` formatting, so
//! the decoded state is bit-identical to the snapshot for every nonzero
//! finite value (negative zero decodes as `0.0`, numerically identical; the
//! JSON writer encodes non-finite values as `null`, but a checkpoint never
//! contains them: the checkpointer only snapshots finite residual states).

use crate::json::Json;
use carve_la::SolveCheckpoint;

/// Schema tag stamped into every serialized checkpoint.
pub const CHECKPOINT_SCHEMA: &str = "carve-solve-checkpoint-v1";

fn vec_to_json(v: &[f64]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::Num(x)).collect())
}

fn vec_from_json(j: &Json, key: &str) -> Result<Vec<f64>, String> {
    match j.get(key) {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|it| {
                it.as_f64()
                    .ok_or_else(|| format!("checkpoint: non-number in {key:?}"))
            })
            .collect(),
        _ => Err(format!("checkpoint: missing array field {key:?}")),
    }
}

/// Encodes a [`SolveCheckpoint`] as a self-describing JSON object.
pub fn checkpoint_to_json(ckpt: &SolveCheckpoint) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(CHECKPOINT_SCHEMA.into())),
        ("method".into(), Json::Str(ckpt.method.clone())),
        ("iteration".into(), Json::Num(ckpt.iteration as f64)),
        ("residual".into(), Json::Num(ckpt.residual)),
        ("residual_tail".into(), vec_to_json(&ckpt.residual_tail)),
        ("x".into(), vec_to_json(&ckpt.x)),
        ("r".into(), vec_to_json(&ckpt.r)),
    ])
}

/// Decodes a checkpoint written by [`checkpoint_to_json`], validating the
/// schema tag and the basic shape invariants (`x` and `r` same length).
pub fn checkpoint_from_json(j: &Json) -> Result<SolveCheckpoint, String> {
    match j.get("schema").and_then(Json::as_str) {
        Some(CHECKPOINT_SCHEMA) => {}
        Some(other) => return Err(format!("checkpoint: unknown schema {other:?}")),
        None => return Err("checkpoint: missing string field \"schema\"".into()),
    }
    let method = j
        .get("method")
        .and_then(Json::as_str)
        .ok_or("checkpoint: missing string field \"method\"")?
        .to_string();
    let iteration = j
        .get("iteration")
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or("checkpoint: missing number field \"iteration\"")? as usize;
    let residual = j
        .get("residual")
        .and_then(Json::as_f64)
        .ok_or("checkpoint: missing number field \"residual\"")?;
    let residual_tail = vec_from_json(j, "residual_tail")?;
    let x = vec_from_json(j, "x")?;
    let r = vec_from_json(j, "r")?;
    if x.len() != r.len() {
        return Err(format!(
            "checkpoint: x has {} entries but r has {}",
            x.len(),
            r.len()
        ));
    }
    Ok(SolveCheckpoint {
        method,
        iteration,
        residual,
        x,
        r,
        residual_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn sample() -> SolveCheckpoint {
        SolveCheckpoint {
            method: "cg".into(),
            iteration: 150,
            residual: 3.25e-7,
            x: vec![1.0, -2.5, 0.1 + 0.2, f64::MIN_POSITIVE],
            r: vec![1e-300, 2.0f64.powi(-52), -3.5e18, 7.125],
            residual_tail: vec![5.1e-7, 4.0e-7, 3.25e-7],
        }
    }

    #[test]
    fn checkpoint_roundtrips_bit_exactly() {
        let ckpt = sample();
        let text = checkpoint_to_json(&ckpt).to_string_pretty();
        let parsed = Json::parse(&text).expect("valid json");
        let back = checkpoint_from_json(&parsed).expect("valid checkpoint");
        assert_eq!(back.method, ckpt.method);
        assert_eq!(back.iteration, ckpt.iteration);
        assert_eq!(back.residual.to_bits(), ckpt.residual.to_bits());
        assert_eq!(back.x.len(), ckpt.x.len());
        for (a, b) in back.x.iter().zip(&ckpt.x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in back.r.iter().zip(&ckpt.r) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.residual_tail, ckpt.residual_tail);
    }

    #[test]
    fn checkpoint_rejects_malformed_input() {
        // Wrong schema.
        let mut j = checkpoint_to_json(&sample());
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::Str("bogus-v9".into());
        }
        assert!(checkpoint_from_json(&j).is_err());
        // Mismatched x/r lengths.
        let mut ckpt = sample();
        ckpt.r.pop();
        let j = checkpoint_to_json(&ckpt);
        assert!(checkpoint_from_json(&j).is_err());
        // Not even an object.
        assert!(checkpoint_from_json(&Json::Num(4.0)).is_err());
    }
}
