//! Minimal JSON tree, writer, and parser.
//!
//! Replaces the `serde_json` dependency (unavailable offline) for the one
//! structure this crate persists ([`crate::ExperimentRecord`]). The wire
//! format matches what serde produced for that type — tuples as arrays,
//! structs as objects, non-finite floats as `null` — so records written by
//! earlier builds still load.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (no duplicate-key handling: last one wins on
    /// lookup is not needed for our schema, `get` returns the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// First value under `key` in an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number, with `null` read back as NaN (the writer encodes non-finite
    /// floats as `null`, as serde_json did).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline-free
    /// body, like `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Inf; serde_json wrote null.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Integral values print without the exponent/decimals `{}` may add.
        let _ = write!(out, "{}.0", x.trunc() as i64);
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves pos after the digits; skip the
                            // outer advance below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = match std::str::from_utf8(&self.bytes[self.pos..]) {
                        Ok(r) => r,
                        Err(_) => return Err(self.err("invalid utf-8")),
                    };
                    match rest.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
            }
        }
    }

    /// Reads exactly four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Json::Obj(vec![
            ("id".into(), Json::Str("fig6".into())),
            (
                "points".into(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::Num(4.0), Json::Num(3.99e-3)]),
                    Json::Arr(vec![Json::Num(-5.5), Json::Num(2.42e-3)]),
                ]),
            ),
            ("passed".into(), Json::Bool(true)),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("nothing".into(), Json::Null),
        ]);
        let s = v.to_string_pretty();
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let tricky = "a\"b\\c\nd\te\r\u{0001}∂";
        let v = Json::Str(tricky.into());
        let s = v.to_string_pretty();
        assert_eq!(Json::parse(&s).unwrap(), v);
        // And escapes written by other tools parse too.
        assert_eq!(Json::parse(r#""éA😀""#).unwrap(), Json::Str("éA😀".into()));
    }

    #[test]
    fn numbers_roundtrip_exactly() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -17.0,
            3.99e-3,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            6.02214076e23,
        ] {
            let s = Json::Num(x).to_string_pretty();
            match Json::parse(&s).unwrap() {
                Json::Num(y) => assert_eq!(x, y, "{s}"),
                other => panic!("{other:?}"),
            }
        }
        // Non-finite encodes as null (reads back as NaN via as_f64).
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null");
        assert!(Json::parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "nul",
            "{\"a\" 1}",
            "[1] x",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
