//! Output utilities: fixed-width result tables (every `repro_*` binary
//! prints through these), CSV/JSON result files, and legacy-ASCII VTK
//! unstructured-grid output for visualization (Fig. 14/16 style dumps).

pub mod adapt_trace;
pub mod checkpoint;
pub mod json;
pub mod obs_report;
pub mod results;
pub mod scaling_report;
pub mod serve_report;
pub mod table;
pub mod vtk;

pub use adapt_trace::{
    adapt_trace_from_json, adapt_trace_to_json, AdaptCycleRecord, AdaptTrace, ADAPT_TRACE_SCHEMA,
};
pub use checkpoint::{checkpoint_from_json, checkpoint_to_json, CHECKPOINT_SCHEMA};
pub use json::Json;
pub use obs_report::{report_from_json, report_to_json};
pub use results::{ExperimentRecord, Series, ShapeCheck};
pub use scaling_report::{
    scaling_report_from_json, scaling_report_to_json, ModelConstants, ScalingCase, ScalingPoint,
    ScalingReport, SCALING_REPORT_SCHEMA,
};
pub use serve_report::{
    serve_report_from_json, serve_report_strip_latency, serve_report_to_json, ServeClassStats,
    ServeReport, SERVE_REPORT_SCHEMA,
};
pub use table::{write_csv, Table};
pub use vtk::write_vtk_mesh;
