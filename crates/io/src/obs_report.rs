//! JSON (de)serialization of observability [`Report`]s.
//!
//! This is the `BENCH_*.json` schema consumed by `scripts/bench_gate.sh`:
//!
//! ```json
//! {
//!   "ranks": 2,
//!   "phases": {
//!     "matvec/leaf": {
//!       "calls": 96,
//!       "ranks": 2,
//!       "secs": { "min": 0.001, "mean": 0.002, "max": 0.003 },
//!       "counters": { "leaves": 96 }
//!     }
//!   }
//! }
//! ```
//!
//! Phases and counters are `BTreeMap`-ordered on the Rust side and written
//! in that order, so the output is deterministic modulo the `secs` values.

use crate::json::Json;
use carve_obs::{AggPhase, Report, SecsSummary};

fn num(x: u64) -> Json {
    // u64 counters in this workspace stay far below 2^53, where f64 is exact.
    Json::Num(x as f64)
}

/// Encodes a [`Report`] as the `BENCH_*.json` phase-report object.
pub fn report_to_json(report: &Report) -> Json {
    let phases = report
        .phases
        .iter()
        .map(|(path, p)| {
            let secs = Json::Obj(vec![
                ("min".into(), Json::Num(p.secs.min)),
                ("mean".into(), Json::Num(p.secs.mean)),
                ("max".into(), Json::Num(p.secs.max)),
            ]);
            let counters = Json::Obj(
                p.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), num(*v)))
                    .collect(),
            );
            let obj = Json::Obj(vec![
                ("calls".into(), num(p.calls)),
                ("ranks".into(), num(p.ranks)),
                ("secs".into(), secs),
                ("counters".into(), counters),
            ]);
            (path.clone(), obj)
        })
        .collect();
    Json::Obj(vec![
        ("ranks".into(), num(report.ranks)),
        ("phases".into(), Json::Obj(phases)),
    ])
}

fn get_f64(j: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: missing number field {key:?}"))
}

fn get_u64(j: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    Ok(get_f64(j, key, ctx)? as u64)
}

/// Decodes a phase-report object written by [`report_to_json`].
pub fn report_from_json(j: &Json) -> Result<Report, String> {
    let mut report = Report {
        ranks: get_u64(j, "ranks", "report")?,
        ..Report::default()
    };
    let phases = match j.get("phases") {
        Some(Json::Obj(fields)) => fields,
        _ => return Err("report: missing object field \"phases\"".into()),
    };
    for (path, pj) in phases {
        let ctx = format!("phase {path:?}");
        let sj = pj
            .get("secs")
            .ok_or_else(|| format!("{ctx}: missing object field \"secs\""))?;
        let secs = SecsSummary {
            min: get_f64(sj, "min", &ctx)?,
            mean: get_f64(sj, "mean", &ctx)?,
            max: get_f64(sj, "max", &ctx)?,
        };
        let mut counters = std::collections::BTreeMap::new();
        if let Some(Json::Obj(cs)) = pj.get("counters") {
            for (k, v) in cs {
                let c = v
                    .as_f64()
                    .ok_or_else(|| format!("{ctx}: counter {k:?} is not a number"))?;
                counters.insert(k.clone(), c as u64);
            }
        }
        report.phases.insert(
            path.clone(),
            AggPhase {
                calls: get_u64(pj, "calls", &ctx)?,
                ranks: get_u64(pj, "ranks", &ctx)?,
                secs,
                counters,
            },
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_obs::{aggregate, PhaseStats, Snapshot};
    use std::collections::BTreeMap;

    fn sample_report() -> Report {
        let mk = |secs: f64, calls: u64, bytes: u64| {
            let mut s = Snapshot::default();
            s.phases.insert(
                "matvec".into(),
                PhaseStats {
                    calls,
                    secs: secs * 3.0,
                    counters: BTreeMap::new(),
                },
            );
            s.phases.insert(
                "matvec/leaf".into(),
                PhaseStats {
                    calls: calls * 8,
                    secs,
                    counters: BTreeMap::from([("leaves".to_string(), calls * 8)]),
                },
            );
            s.phases.insert(
                "ghost_read".into(),
                PhaseStats {
                    calls,
                    secs: secs / 2.0,
                    counters: BTreeMap::from([("bytes_sent".to_string(), bytes)]),
                },
            );
            s
        };
        aggregate(&[mk(0.25, 3, 1024), mk(0.5, 4, 2048)])
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let j = report_to_json(&report);
        let text = j.to_string_pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        let back = report_from_json(&parsed).expect("valid schema");
        assert_eq!(back, report);
    }

    #[test]
    fn serialization_is_deterministic() {
        let report = sample_report();
        assert_eq!(
            report_to_json(&report).to_string_pretty(),
            report_to_json(&report).to_string_pretty()
        );
    }

    #[test]
    fn malformed_reports_are_rejected() {
        assert!(report_from_json(&Json::Obj(vec![])).is_err());
        let no_phases = Json::Obj(vec![("ranks".into(), Json::Num(2.0))]);
        assert!(report_from_json(&no_phases).is_err());
        let bad_phase =
            Json::parse(r#"{"ranks": 1, "phases": {"x": {"calls": 1, "ranks": 1}}}"#).unwrap();
        assert!(report_from_json(&bad_phase).unwrap_err().contains("secs"));
    }
}
