//! Structured experiment records (JSON via serde): every `repro_*` binary
//! can persist a machine-readable record next to its CSV, so runs are
//! diffable across machines and commits.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// One reproduction run of a paper table/figure.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ExperimentRecord {
    /// Paper artifact id, e.g. "fig6", "table1".
    pub id: String,
    /// Human description of the workload.
    pub description: String,
    /// Free-form parameters (mesh levels, orders, rank counts...).
    pub params: Vec<(String, String)>,
    /// Data series: name → (x, y) pairs.
    pub series: Vec<Series>,
    /// Shape criteria checked by the harness, with outcomes.
    pub checks: Vec<ShapeCheck>,
}

#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ShapeCheck {
    /// E.g. "SBM L2 rate in [1.6, 2.4]".
    pub criterion: String,
    pub passed: bool,
    pub measured: f64,
}

impl ExperimentRecord {
    pub fn new(id: &str, description: &str) -> Self {
        Self {
            id: id.to_string(),
            description: description.to_string(),
            params: Vec::new(),
            series: Vec::new(),
            checks: Vec::new(),
        }
    }

    pub fn param(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    pub fn series(&mut self, name: &str, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push(Series {
            name: name.to_string(),
            points,
        });
        self
    }

    /// Records a shape check: `lo <= measured <= hi`.
    pub fn check_range(&mut self, criterion: &str, measured: f64, lo: f64, hi: f64) -> bool {
        let passed = measured >= lo && measured <= hi;
        self.checks.push(ShapeCheck {
            criterion: format!("{criterion} in [{lo}, {hi}]"),
            passed,
            measured,
        });
        passed
    }

    /// All shape checks passed?
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Writes the record as pretty JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        f.write_all(json.as_bytes())?;
        f.flush()
    }

    /// Loads a record back.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        serde_json::from_str(&s)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let mut rec = ExperimentRecord::new("fig6", "disk convergence");
        rec.param("order", 1)
            .param("levels", "4..7")
            .series("naive_l2", vec![(4.0, 3.99e-3), (5.0, 2.42e-3)]);
        assert!(rec.check_range("naive rate", 0.84, 0.5, 1.5));
        assert!(!rec.check_range("sbm rate (broken on purpose)", 0.5, 1.6, 2.4));
        assert!(!rec.all_passed());
        let dir = std::env::temp_dir().join("carve_results_test");
        let p = dir.join("fig6.json");
        rec.save(&p).unwrap();
        let back = ExperimentRecord::load(&p).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn check_range_boundaries_inclusive() {
        let mut rec = ExperimentRecord::new("x", "y");
        assert!(rec.check_range("lo edge", 1.0, 1.0, 2.0));
        assert!(rec.check_range("hi edge", 2.0, 1.0, 2.0));
        assert!(rec.all_passed());
    }
}
