//! Structured experiment records (JSON via the in-crate [`crate::json`]
//! module): every `repro_*` binary can persist a machine-readable record
//! next to its CSV, so runs are diffable across machines and commits. The
//! on-disk format is unchanged from the earlier serde-based builds.

use crate::json::Json;
use std::io::Write;
use std::path::Path;

/// One reproduction run of a paper table/figure.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentRecord {
    /// Paper artifact id, e.g. "fig6", "table1".
    pub id: String,
    /// Human description of the workload.
    pub description: String,
    /// Free-form parameters (mesh levels, orders, rank counts...).
    pub params: Vec<(String, String)>,
    /// Data series: name → (x, y) pairs.
    pub series: Vec<Series>,
    /// Shape criteria checked by the harness, with outcomes.
    pub checks: Vec<ShapeCheck>,
}

#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

#[derive(Clone, Debug, PartialEq)]
pub struct ShapeCheck {
    /// E.g. "SBM L2 rate in [1.6, 2.4]".
    pub criterion: String,
    pub passed: bool,
    pub measured: f64,
}

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

fn field<'a>(j: &'a Json, key: &str) -> std::io::Result<&'a Json> {
    j.get(key)
        .ok_or_else(|| invalid(format!("missing field '{key}'")))
}

fn str_field(j: &Json, key: &str) -> std::io::Result<String> {
    field(j, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| invalid(format!("field '{key}' is not a string")))
}

fn pair_f64(j: &Json) -> std::io::Result<(f64, f64)> {
    match j.as_arr() {
        Some([a, b]) => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok((x, y)),
            _ => Err(invalid("point entries must be numbers")),
        },
        _ => Err(invalid("point must be a two-element array")),
    }
}

impl Series {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "points".into(),
                Json::Arr(
                    self.points
                        .iter()
                        .map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(j: &Json) -> std::io::Result<Self> {
        let points = field(j, "points")?
            .as_arr()
            .ok_or_else(|| invalid("'points' is not an array"))?
            .iter()
            .map(pair_f64)
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Series {
            name: str_field(j, "name")?,
            points,
        })
    }
}

impl ShapeCheck {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("criterion".into(), Json::Str(self.criterion.clone())),
            ("passed".into(), Json::Bool(self.passed)),
            ("measured".into(), Json::Num(self.measured)),
        ])
    }

    fn from_json(j: &Json) -> std::io::Result<Self> {
        Ok(ShapeCheck {
            criterion: str_field(j, "criterion")?,
            passed: field(j, "passed")?
                .as_bool()
                .ok_or_else(|| invalid("'passed' is not a bool"))?,
            measured: field(j, "measured")?
                .as_f64()
                .ok_or_else(|| invalid("'measured' is not a number"))?,
        })
    }
}

impl ExperimentRecord {
    pub fn new(id: &str, description: &str) -> Self {
        Self {
            id: id.to_string(),
            description: description.to_string(),
            params: Vec::new(),
            series: Vec::new(),
            checks: Vec::new(),
        }
    }

    pub fn param(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    pub fn series(&mut self, name: &str, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push(Series {
            name: name.to_string(),
            points,
        });
        self
    }

    /// Records a shape check: `lo <= measured <= hi`.
    pub fn check_range(&mut self, criterion: &str, measured: f64, lo: f64, hi: f64) -> bool {
        let passed = measured >= lo && measured <= hi;
        self.checks.push(ShapeCheck {
            criterion: format!("{criterion} in [{lo}, {hi}]"),
            passed,
            measured,
        });
        passed
    }

    /// All shape checks passed?
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("description".into(), Json::Str(self.description.clone())),
            (
                "params".into(),
                Json::Arr(
                    self.params
                        .iter()
                        .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Str(v.clone())]))
                        .collect(),
                ),
            ),
            (
                "series".into(),
                Json::Arr(self.series.iter().map(Series::to_json).collect()),
            ),
            (
                "checks".into(),
                Json::Arr(self.checks.iter().map(ShapeCheck::to_json).collect()),
            ),
        ])
    }

    fn from_json(j: &Json) -> std::io::Result<Self> {
        let params = field(j, "params")?
            .as_arr()
            .ok_or_else(|| invalid("'params' is not an array"))?
            .iter()
            .map(|p| match p.as_arr() {
                Some([k, v]) => match (k.as_str(), v.as_str()) {
                    (Some(k), Some(v)) => Ok((k.to_string(), v.to_string())),
                    _ => Err(invalid("param entries must be strings")),
                },
                _ => Err(invalid("param must be a two-element array")),
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let series = field(j, "series")?
            .as_arr()
            .ok_or_else(|| invalid("'series' is not an array"))?
            .iter()
            .map(Series::from_json)
            .collect::<std::io::Result<Vec<_>>>()?;
        let checks = field(j, "checks")?
            .as_arr()
            .ok_or_else(|| invalid("'checks' is not an array"))?
            .iter()
            .map(ShapeCheck::from_json)
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ExperimentRecord {
            id: str_field(j, "id")?,
            description: str_field(j, "description")?,
            params,
            series,
            checks,
        })
    }

    /// Writes the record as pretty JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(self.to_json().to_string_pretty().as_bytes())?;
        f.flush()
    }

    /// Loads a record back.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        let j = Json::parse(&s).map_err(|e| invalid(e.to_string()))?;
        Self::from_json(&j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let mut rec = ExperimentRecord::new("fig6", "disk convergence");
        rec.param("order", 1)
            .param("levels", "4..7")
            .series("naive_l2", vec![(4.0, 3.99e-3), (5.0, 2.42e-3)]);
        assert!(rec.check_range("naive rate", 0.84, 0.5, 1.5));
        assert!(!rec.check_range("sbm rate (broken on purpose)", 0.5, 1.6, 2.4));
        assert!(!rec.all_passed());
        let dir = std::env::temp_dir().join("carve_results_test");
        let p = dir.join("fig6.json");
        rec.save(&p).unwrap();
        let back = ExperimentRecord::load(&p).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn check_range_boundaries_inclusive() {
        let mut rec = ExperimentRecord::new("x", "y");
        assert!(rec.check_range("lo edge", 1.0, 1.0, 2.0));
        assert!(rec.check_range("hi edge", 2.0, 1.0, 2.0));
        assert!(rec.all_passed());
    }

    #[test]
    fn load_rejects_malformed_records() {
        let dir = std::env::temp_dir().join("carve_results_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("broken.json");
        std::fs::write(&p, "{\"id\": \"x\"}").unwrap();
        let err = ExperimentRecord::load(&p).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::write(&p, "not json at all").unwrap();
        assert!(ExperimentRecord::load(&p).is_err());
    }

    #[test]
    fn record_with_special_characters_roundtrips() {
        let mut rec = ExperimentRecord::new("t\"1", "line\nbreak \\ tab\t π");
        rec.param("geometry", "carved \"sphere\"");
        let dir = std::env::temp_dir().join("carve_results_test");
        let p = dir.join("special.json");
        rec.save(&p).unwrap();
        assert_eq!(ExperimentRecord::load(&p).unwrap(), rec);
    }
}
